#include "attack/dos.h"

#include <cmath>

#include <gtest/gtest.h>

#include "agg/aggregate_function.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "attack/pollution.h"

namespace ipda::attack {
namespace {

// Synthetic oracle: round is accepted iff the polluter is excluded.
RoundFn OracleRound(net::NodeId polluter, size_t* rounds_run = nullptr) {
  return [polluter, rounds_run](const std::vector<net::NodeId>& excluded,
                                uint64_t) -> util::Result<bool> {
    if (rounds_run != nullptr) ++*rounds_run;
    for (net::NodeId id : excluded) {
      if (id == polluter) return true;
    }
    return false;
  };
}

TEST(PolluterLocalizer, FindsEveryPossiblePolluter) {
  const size_t n = 64;
  PolluterLocalizer localizer(n);
  for (net::NodeId polluter = 1; polluter < n; ++polluter) {
    auto result = localizer.Locate(OracleRound(polluter));
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->found);
    EXPECT_EQ(result->suspect, polluter);
  }
}

TEST(PolluterLocalizer, RoundsAreLogarithmic) {
  // §III-D claims O(log N) rounds.
  for (size_t n : {16u, 64u, 256u, 1024u}) {
    PolluterLocalizer localizer(n);
    size_t rounds = 0;
    auto result = localizer.Locate(OracleRound(n / 2, &rounds));
    ASSERT_TRUE(result.ok());
    EXPECT_TRUE(result->found);
    const double bound = std::ceil(std::log2(static_cast<double>(n))) + 1;
    EXPECT_LE(static_cast<double>(rounds), bound) << "n=" << n;
  }
}

TEST(PolluterLocalizer, SuspectSetShrinksMonotonically) {
  PolluterLocalizer localizer(128);
  auto result = localizer.Locate(OracleRound(77));
  ASSERT_TRUE(result.ok());
  for (size_t i = 1; i < result->suspect_sizes.size(); ++i) {
    EXPECT_LT(result->suspect_sizes[i], result->suspect_sizes[i - 1]);
  }
  EXPECT_EQ(result->suspect_sizes.back(), 1u);
}

TEST(PolluterLocalizer, MaxRoundsBoundsRunaway) {
  // An adversary violating the single-polluter assumption (rejects every
  // round) cannot loop forever.
  PolluterLocalizer localizer(1024);
  size_t rounds = 0;
  auto always_rejected = [&rounds](const std::vector<net::NodeId>&,
                                   uint64_t) -> util::Result<bool> {
    ++rounds;
    return false;
  };
  auto result = localizer.Locate(always_rejected, /*max_rounds=*/5);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(rounds, 5u);
  // With every round rejected, bisection still converges toward one
  // suspect but may not have reached it in 5 rounds of 1023 suspects.
  EXPECT_FALSE(result->found);
}

TEST(PolluterLocalizer, PropagatesRoundErrors) {
  PolluterLocalizer localizer(16);
  auto failing = [](const std::vector<net::NodeId>&,
                    uint64_t) -> util::Result<bool> {
    return util::UnavailableError("network down");
  };
  auto result = localizer.Locate(failing);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kUnavailable);
}

TEST(PolluterLocalizer, TwoNodeNetworkTrivial) {
  PolluterLocalizer localizer(2);
  auto result = localizer.Locate(OracleRound(1));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->found);
  EXPECT_EQ(result->suspect, 1u);
  EXPECT_EQ(result->rounds, 0u);  // Only one candidate: no rounds needed.
}

TEST(PolluterLocalizerEndToEnd, LocatesRealPolluterThroughSimulation) {
  // Full-stack version of §III-D: every round is an actual iPDA run with
  // the excluded set applied; the persistent polluter tampers whenever it
  // participates.
  constexpr net::NodeId kPolluter = 123;
  agg::RunConfig config;
  config.deployment.node_count = 400;
  config.seed = 2024;
  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);
  agg::IpdaConfig ipda;
  ipda.slice_range = 1.0;

  size_t rounds = 0;
  RoundFn run_round = [&](const std::vector<net::NodeId>& excluded,
                          uint64_t round) -> util::Result<bool> {
    ++rounds;
    PollutionConfig attack_config;
    attack_config.attackers = {kPolluter};
    attack_config.additive_delta = 50.0;
    agg::IpdaRunHooks hooks;
    hooks.pollution = MakePollutionHook(attack_config);
    hooks.excluded = excluded;
    agg::RunConfig round_config = config;
    round_config.seed = config.seed + round;  // Fresh round, same nodes?
    // Keep the same topology: the paper varies participants, not the
    // deployment. Seed only the protocol randomness via config.seed.
    round_config.seed = config.seed;
    auto result = agg::RunIpda(round_config, *function, *field, ipda,
                               hooks);
    IPDA_RETURN_IF_ERROR(result.status());
    return result->stats.decision.accepted;
  };

  PolluterLocalizer localizer(config.deployment.node_count);
  auto result = localizer.Locate(run_round);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_TRUE(result->found);
  EXPECT_EQ(result->suspect, kPolluter);
  EXPECT_LE(rounds, 10u);  // ceil(log2(399)) = 9.
}

}  // namespace
}  // namespace ipda::attack
