// Property sweep: the invariants the iPDA design guarantees, checked
// across many independent deployments (TEST_P over seeds).

#include <cmath>

#include <gtest/gtest.h>

#include "agg/aggregate_function.h"
#include "agg/ipda/protocol.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "sim/simulator.h"

namespace ipda::agg {
namespace {

class IpdaInvariants : public ::testing::TestWithParam<uint64_t> {
 protected:
  static constexpr size_t kNodes = 350;
};

TEST_P(IpdaInvariants, EndToEnd) {
  RunConfig config;
  config.deployment.node_count = kNodes;
  config.seed = GetParam();
  auto topology = BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  sim::Simulator simulator(config.seed);
  net::Network network(&simulator, std::move(*topology));
  auto function = MakeCount();
  IpdaConfig ipda;
  ipda.slice_range = 1.0;
  IpdaProtocol protocol(&network, function.get(), ipda);
  auto field = MakeConstantField(1.0);
  protocol.SetReadings(field->Sample(network.topology()));

  // Invariant instrumentation: per-node slice conservation.
  std::vector<double> slice_sum_red(kNodes, 0.0);
  std::vector<double> slice_sum_blue(kNodes, 0.0);
  protocol.SetSliceObserver([&](net::NodeId from, net::NodeId,
                                TreeColor color, const Vector& slice) {
    (color == TreeColor::kRed ? slice_sum_red : slice_sum_blue)[from] +=
        slice[0];
  });
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  const auto& stats = protocol.Finish();

  // 1. Role partition: every sensor has exactly one final role.
  size_t red = 0, blue = 0, other = 0;
  for (net::NodeId id = 1; id < kNodes; ++id) {
    switch (protocol.builder(id).role()) {
      case NodeRole::kRedAggregator:
        ++red;
        break;
      case NodeRole::kBlueAggregator:
        ++blue;
        break;
      default:
        ++other;
        break;
    }
  }
  EXPECT_EQ(red, stats.red_aggregators);
  EXPECT_EQ(blue, stats.blue_aggregators);
  EXPECT_EQ(red + blue + other, kNodes - 1);

  // 2. Tree disjointness: aggregators' parents carry the same color (or
  // are the base station), and no node parents on both trees.
  for (net::NodeId id = 1; id < kNodes; ++id) {
    const auto& builder = protocol.builder(id);
    const NodeRole role = builder.role();
    if (role != NodeRole::kRedAggregator &&
        role != NodeRole::kBlueAggregator) {
      continue;
    }
    const net::NodeId parent = builder.parent();
    if (parent != net::kBaseStationId) {
      const NodeRole parent_role = protocol.builder(parent).role();
      EXPECT_EQ(parent_role, role)
          << "node " << id << " parent " << parent;
    }
    // Parent must be a radio neighbor (trees follow real links).
    EXPECT_TRUE(network.topology().AreNeighbors(id, parent));
    // Hop consistency: child is exactly one deeper than some HELLO it
    // heard; at minimum deeper than 0 and finite.
    EXPECT_GE(builder.hop(), 1u);
    EXPECT_LT(builder.hop(), kNodes);
  }

  // 3. Slice conservation: every participant contributed exactly 1 to
  // each tree (its full COUNT contribution), non-participants 0.
  for (net::NodeId id = 1; id < kNodes; ++id) {
    if (protocol.participated(id)) {
      EXPECT_NEAR(slice_sum_red[id], 1.0, 1e-9) << id;
      EXPECT_NEAR(slice_sum_blue[id], 1.0, 1e-9) << id;
    } else {
      EXPECT_EQ(slice_sum_red[id], 0.0) << id;
      EXPECT_EQ(slice_sum_blue[id], 0.0) << id;
    }
  }

  // 4. Census consistency.
  EXPECT_LE(stats.participants, stats.covered_both);
  EXPECT_EQ(stats.excluded, 0u);

  // 5. No-attack acceptance, and both totals bounded by participation.
  EXPECT_TRUE(stats.decision.accepted);
  EXPECT_LE(stats.decision.acc_red[0],
            static_cast<double>(stats.participants) + 1e-6);
  EXPECT_LE(stats.decision.acc_blue[0],
            static_cast<double>(stats.participants) + 1e-6);

  // 6. Traffic sanity: slices counted match observer-visible sends.
  EXPECT_GT(stats.slices_sent, 0u);
  EXPECT_EQ(stats.slice_decrypt_failures, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IpdaInvariants,
                         ::testing::Values(11, 22, 33, 44, 55, 66, 77, 88,
                                           99, 110));

class IpdaAdaptiveInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(IpdaAdaptiveInvariants, AdaptiveRolesStillSound) {
  RunConfig config;
  config.deployment.node_count = 400;
  config.seed = GetParam();
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  IpdaConfig ipda;
  ipda.slice_range = 1.0;
  ipda.adaptive_roles = true;
  ipda.k = 4;
  auto result = RunIpda(config, *function, *field, ipda);
  ASSERT_TRUE(result.ok());
  // Leaves exist under the k-budget in a dense network...
  EXPECT_GT(result->stats.leaves, 0u);
  // ...and the round still works.
  EXPECT_TRUE(result->stats.decision.accepted);
  EXPECT_GT(result->accuracy, 0.9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, IpdaAdaptiveInvariants,
                         ::testing::Values(7, 14, 21, 28));

}  // namespace
}  // namespace ipda::agg
