// Run journal + resilient sweep executor: durability, corruption
// tolerance, kill-and-resume byte-identity, retry/degradation policy.

#include "exp/journal.h"

#include <cstdio>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/engine.h"
#include "exp/resilient.h"
#include "util/io.h"
#include "util/signal.h"

namespace ipda::exp {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "exp_journal_test_" + name + ".jsonl";
}

JournalHeader TestHeader() {
  JournalHeader header;
  header.experiment = "journal_test";
  header.config_hash = 0xDEADBEEF12345678ull;
  header.sweep_seed = 42;
  header.total_runs = 6;
  return header;
}

TEST(JsonEscape, RoundTripsSpecials) {
  const std::string nasty =
      "plain \"quoted\" back\\slash\nnewline\ttab\rret \x01 ctrl";
  const std::string escaped = JsonEscape(nasty);
  EXPECT_EQ(escaped.find('\n'), std::string::npos);
  EXPECT_EQ(escaped.find('\r'), std::string::npos);
  auto decoded = JsonUnescape(escaped);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, nasty);
}

TEST(JsonEscape, UnescapeRejectsMalformed) {
  EXPECT_FALSE(JsonUnescape("dangling\\").ok());
  EXPECT_FALSE(JsonUnescape("bad\\q").ok());
  EXPECT_FALSE(JsonUnescape("short\\u00").ok());
  EXPECT_FALSE(JsonUnescape("hex\\u00zz").ok());
}

TEST(Journal, WriterReaderRoundTrip) {
  const std::string path = TempPath("roundtrip");
  {
    auto writer = JournalWriter::Create(path, TestHeader());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(
        writer->WriteRun({0, 111, 1, true, "payload \"zero\";1,2"}).ok());
    ASSERT_TRUE(writer->WriteFailure({1, 0, 222, "hung: deadline"}).ok());
    ASSERT_TRUE(writer->WriteRun({1, 333, 2, true, "payload one"}).ok());
    ASSERT_TRUE(writer->WriteRun({2, 444, 3, false, "gave up"}).ok());
  }
  auto journal = JournalReader::Load(path);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(journal->header.experiment, "journal_test");
  EXPECT_EQ(journal->header.config_hash, TestHeader().config_hash);
  EXPECT_EQ(journal->header.sweep_seed, 42u);
  EXPECT_EQ(journal->header.total_runs, 6u);
  EXPECT_EQ(journal->corrupt_lines, 0u);
  ASSERT_EQ(journal->runs.size(), 3u);
  EXPECT_EQ(journal->runs.at(0).payload, "payload \"zero\";1,2");
  EXPECT_TRUE(journal->runs.at(0).ok);
  EXPECT_EQ(journal->runs.at(1).seed, 333u);
  EXPECT_EQ(journal->runs.at(1).attempts, 2u);
  EXPECT_FALSE(journal->runs.at(2).ok);
  EXPECT_EQ(journal->runs.at(2).payload, "gave up");
  ASSERT_EQ(journal->failures.size(), 1u);
  EXPECT_EQ(journal->failures[0].index, 1u);
  EXPECT_EQ(journal->failures[0].reason, "hung: deadline");
}

TEST(Journal, ChecksumCorruptionIsSkippedAndCounted) {
  const std::string path = TempPath("corrupt");
  {
    auto writer = JournalWriter::Create(path, TestHeader());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->WriteRun({0, 1, 1, true, "keep"}).ok());
    ASSERT_TRUE(writer->WriteRun({1, 2, 1, true, "corrupt-me"}).ok());
    ASSERT_TRUE(writer->WriteRun({2, 3, 1, true, "keep too"}).ok());
  }
  // Flip one payload byte of record 1 on disk; its crc no longer
  // matches, so the reader must drop exactly that record.
  auto contents = util::ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  const size_t pos = contents->find("corrupt-me");
  ASSERT_NE(pos, std::string::npos);
  (*contents)[pos] = 'X';
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fwrite(contents->data(), 1, contents->size(), f);
    std::fclose(f);
  }
  auto journal = JournalReader::Load(path);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(journal->corrupt_lines, 1u);
  EXPECT_EQ(journal->runs.size(), 2u);
  EXPECT_TRUE(journal->runs.count(0));
  EXPECT_FALSE(journal->runs.count(1));
  EXPECT_TRUE(journal->runs.count(2));
}

TEST(Journal, TornTailIsTolerated) {
  const std::string path = TempPath("torn");
  {
    auto writer = JournalWriter::Create(path, TestHeader());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->WriteRun({0, 1, 1, true, "whole"}).ok());
  }
  {
    // Simulate a SIGKILL mid-write: half a record, no newline.
    auto file = util::AppendFile::Open(path);
    ASSERT_TRUE(file.ok());
    // AppendLine always terminates, so write the torn bytes directly.
    std::FILE* f = std::fopen(path.c_str(), "a");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"type\":\"run\",\"index\":1,\"seed\":9", f);
    std::fclose(f);
  }
  auto journal = JournalReader::Load(path);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(journal->runs.size(), 1u);
  EXPECT_EQ(journal->corrupt_lines, 1u);
}

TEST(Journal, TornHeaderIsEmptyJournalNotError) {
  // Zero bytes: the writer was killed between open and the header write.
  const std::string empty_path = TempPath("zero_byte");
  {
    std::FILE* f = std::fopen(empty_path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fclose(f);
  }
  auto empty = JournalReader::Load(empty_path);
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty->torn_header);
  EXPECT_EQ(empty->runs.size(), 0u);
  EXPECT_EQ(empty->corrupt_lines, 0u);

  // Header torn mid-write (no newline ever landed): empty-and-torn, one
  // counted torn line.
  const std::string torn_path = TempPath("torn_header");
  {
    std::FILE* f = std::fopen(torn_path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"type\":\"header\",\"version\":1,\"config_ha", f);
    std::fclose(f);
  }
  auto torn = JournalReader::Load(torn_path);
  ASSERT_TRUE(torn.ok());
  EXPECT_TRUE(torn->torn_header);
  EXPECT_EQ(torn->runs.size(), 0u);
  EXPECT_EQ(torn->corrupt_lines, 1u);
}

TEST(Journal, CompleteButMalformedHeaderStillRejected) {
  // A COMPLETE first line that is not a parsable header stays a hard
  // error — only a torn (newline-less) header degrades to empty.
  const std::string path = TempPath("malformed_header");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"type\":\"header\",\"version\":1,\"garbage\":true}\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(JournalReader::Load(path).ok());
}

// Property test: a valid journal truncated at EVERY byte offset must
// load without error, never invent or double-count a record, replay only
// payload-exact prefixes of the original, and report exactly one torn
// line when (and only when) the cut landed mid-line.
TEST(Journal, TruncationAtEveryByteOffsetIsSafe) {
  const std::string path = TempPath("truncate_property");
  {
    auto writer = JournalWriter::Create(path, TestHeader());
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->WriteRun({0, 11, 1, true, "alpha \"quoted\""}).ok());
    ASSERT_TRUE(writer->WriteFailure({1, 0, 22, "flaky\nattempt"}).ok());
    ASSERT_TRUE(writer->WriteRun({1, 23, 2, true, "beta"}).ok());
    ASSERT_TRUE(writer->WriteRun({2, 33, 1, false, "gamma gave up"}).ok());
  }
  auto full_bytes = util::ReadFileToString(path);
  ASSERT_TRUE(full_bytes.ok());
  auto full = JournalReader::Load(path);
  ASSERT_TRUE(full.ok());
  ASSERT_EQ(full->runs.size(), 3u);

  const size_t header_end = full_bytes->find('\n');
  ASSERT_NE(header_end, std::string::npos);

  const std::string prefix_path = TempPath("truncate_prefix");
  for (size_t cut = 0; cut <= full_bytes->size(); ++cut) {
    {
      std::FILE* f = std::fopen(prefix_path.c_str(), "w");
      ASSERT_NE(f, nullptr);
      std::fwrite(full_bytes->data(), 1, cut, f);
      std::fclose(f);
    }
    auto loaded = JournalReader::Load(prefix_path);
    ASSERT_TRUE(loaded.ok()) << "cut at byte " << cut;
    const bool ends_mid_line = cut > 0 && (*full_bytes)[cut - 1] != '\n';
    EXPECT_EQ(loaded->corrupt_lines, ends_mid_line ? 1u : 0u)
        << "cut at byte " << cut;
    if (cut <= header_end) {
      // No complete header: provably empty, flagged torn, fresh start.
      EXPECT_TRUE(loaded->torn_header) << "cut at byte " << cut;
      EXPECT_EQ(loaded->runs.size(), 0u) << "cut at byte " << cut;
      continue;
    }
    EXPECT_FALSE(loaded->torn_header) << "cut at byte " << cut;
    EXPECT_EQ(loaded->header.config_hash, TestHeader().config_hash);
    // Every surviving record must be one of the originals, bit-exact —
    // never a paraphrase, never a duplicate (runs is keyed by index).
    EXPECT_LE(loaded->runs.size(), full->runs.size());
    for (const auto& [index, record] : loaded->runs) {
      const auto original = full->runs.find(index);
      ASSERT_NE(original, full->runs.end()) << "cut at byte " << cut;
      EXPECT_EQ(record.payload, original->second.payload);
      EXPECT_EQ(record.seed, original->second.seed);
      EXPECT_EQ(record.attempts, original->second.attempts);
      EXPECT_EQ(record.ok, original->second.ok);
    }
    // Records are recovered in order: a cut never drops record k but
    // keeps record k+1 (the journal is append-only).
    size_t newlines_seen = 0;
    for (size_t i = 0; i < cut; ++i) {
      if ((*full_bytes)[i] == '\n') ++newlines_seen;
    }
    // Lines: header, run0, failure, run1, run2 — complete lines in the
    // prefix determine exactly which runs must have survived.
    const size_t complete_lines = newlines_seen;
    size_t expect_runs = 0;
    if (complete_lines >= 2) ++expect_runs;  // run index 0.
    if (complete_lines >= 4) ++expect_runs;  // run index 1.
    if (complete_lines >= 5) ++expect_runs;  // run index 2.
    EXPECT_EQ(loaded->runs.size(), expect_runs) << "cut at byte " << cut;
    EXPECT_EQ(loaded->failures.size(), complete_lines >= 3 ? 1u : 0u);
  }
}

TEST(Journal, MissingHeaderRejected) {
  const std::string path = TempPath("headerless");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"type\":\"run\",\"index\":0}\n", f);
    std::fclose(f);
  }
  EXPECT_FALSE(JournalReader::Load(path).ok());
  EXPECT_FALSE(JournalReader::Load(TempPath("nonexistent")).ok());
}

// --- Resilient sweep executor ----------------------------------------

ResilientOptions BaseOptions(const std::string& journal) {
  ResilientOptions options;
  options.sweep_seed = 7;
  options.journal_path = journal;
  options.experiment = "journal_test";
  options.config_digest = "journal_test|fixture=1";
  options.drain_on_signal = false;
  return options;
}

const std::vector<std::string> kLabels = {"p0", "p1", "p2"};
constexpr size_t kRuns = 4;

// Deterministic body: payload encodes identity, so replay mismatches
// are visible.
util::Result<std::string> OkBody(const AttemptContext& ctx) {
  return "point=" + std::to_string(ctx.point) +
         ",run=" + std::to_string(ctx.run) +
         ",seed=" + std::to_string(ctx.seed);
}

std::vector<std::string> Payloads(const ResilientReport& report) {
  std::vector<std::string> out;
  for (const RunStatus& slot : report.runs) out.push_back(slot.payload);
  return out;
}

TEST(ResilientSweep, DrainThenResumeIsByteIdentical) {
  util::ResetDrainForTest();
  const std::string path = TempPath("drain_resume");
  Engine engine(1);  // Single worker: the drain point is deterministic.

  // Uninterrupted reference.
  auto clean =
      RunResilientSweep(engine, kLabels, kRuns, BaseOptions(""), OkBody);
  ASSERT_TRUE(clean.ok());
  ASSERT_EQ(clean->runs.size(), kLabels.size() * kRuns);
  EXPECT_EQ(clean->executed, clean->runs.size());

  // Interrupted: request drain (as the signal handler would) after the
  // fifth run completes.
  ResilientOptions interrupted = BaseOptions(path);
  interrupted.drain_on_signal = true;
  size_t completed = 0;
  auto draining_body =
      [&](const AttemptContext& ctx) -> util::Result<std::string> {
    if (++completed == 5) util::RequestDrain();
    return OkBody(ctx);
  };
  auto partial =
      RunResilientSweep(engine, kLabels, kRuns, interrupted, draining_body);
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE(partial->drained);
  EXPECT_EQ(partial->executed, 5u);
  EXPECT_EQ(partial->skipped, partial->runs.size() - 5);
  util::ResetDrainForTest();

  // Resume: replays the five journaled runs, executes the rest.
  ResilientOptions resume = BaseOptions("");
  resume.resume_path = path;
  auto resumed = RunResilientSweep(engine, kLabels, kRuns, resume, OkBody);
  ASSERT_TRUE(resumed.ok());
  EXPECT_FALSE(resumed->drained);
  EXPECT_EQ(resumed->replayed, 5u);
  EXPECT_EQ(resumed->executed, resumed->runs.size() - 5);
  EXPECT_EQ(Payloads(*resumed), Payloads(*clean));
}

TEST(ResilientSweep, ResumeFromCompleteJournalReplaysEverything) {
  util::ResetDrainForTest();
  const std::string path = TempPath("full_replay");
  Engine engine(2);
  auto first = RunResilientSweep(engine, kLabels, kRuns, BaseOptions(path),
                                 OkBody);
  ASSERT_TRUE(first.ok());

  ResilientOptions resume = BaseOptions("");
  resume.resume_path = path;
  size_t body_calls = 0;
  auto counting_body =
      [&](const AttemptContext& ctx) -> util::Result<std::string> {
    ++body_calls;
    return OkBody(ctx);
  };
  auto replayed =
      RunResilientSweep(engine, kLabels, kRuns, resume, counting_body);
  ASSERT_TRUE(replayed.ok());
  EXPECT_EQ(body_calls, 0u);  // Pure replay; nothing re-simulated.
  EXPECT_EQ(replayed->replayed, replayed->runs.size());
  EXPECT_EQ(Payloads(*replayed), Payloads(*first));
}

TEST(ResilientSweep, HeaderMismatchIsRejected) {
  util::ResetDrainForTest();
  const std::string path = TempPath("mismatch");
  Engine engine(1);
  ASSERT_TRUE(RunResilientSweep(engine, kLabels, kRuns, BaseOptions(path),
                                OkBody)
                  .ok());

  // Different flags → different digest → resume must refuse.
  ResilientOptions resume = BaseOptions("");
  resume.resume_path = path;
  resume.config_digest = "journal_test|fixture=2";
  auto swept = RunResilientSweep(engine, kLabels, kRuns, resume, OkBody);
  ASSERT_FALSE(swept.ok());
  EXPECT_EQ(swept.status().code(), util::StatusCode::kFailedPrecondition);

  // A different grid shape is refused too.
  ResilientOptions shape = BaseOptions("");
  shape.resume_path = path;
  EXPECT_FALSE(
      RunResilientSweep(engine, kLabels, kRuns + 1, shape, OkBody).ok());
}

TEST(ResilientSweep, RetrySucceedsWithForkedSeed) {
  util::ResetDrainForTest();
  const std::string path = TempPath("retry");
  Engine engine(1);
  ResilientOptions options = BaseOptions(path);
  options.max_retries = 2;
  // (point 1, run 2) fails on its first attempt only.
  auto flaky = [&](const AttemptContext& ctx) -> util::Result<std::string> {
    if (ctx.point == 1 && ctx.run == 2 && ctx.attempt == 0) {
      return util::UnavailableError("transient fault");
    }
    return OkBody(ctx);
  };
  auto report = RunResilientSweep(engine, kLabels, kRuns, options, flaky);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->failed, 0u);
  const RunStatus& slot = report->runs[1 * kRuns + 2];
  EXPECT_TRUE(slot.ok);
  EXPECT_EQ(slot.attempts, 2u);
  const uint64_t base = DeriveRunSeed(options.sweep_seed, kLabels[1], 2);
  EXPECT_EQ(slot.seed, ForkAttemptSeed(base, 1));
  EXPECT_NE(slot.seed, base);

  // The journal keeps the informational attempt-0 failure AND the
  // terminal success.
  auto journal = JournalReader::Load(path);
  ASSERT_TRUE(journal.ok());
  ASSERT_EQ(journal->failures.size(), 1u);
  EXPECT_EQ(journal->failures[0].index, 1 * kRuns + 2);
  EXPECT_EQ(journal->failures[0].attempt, 0u);
  EXPECT_EQ(journal->failures[0].reason, "transient fault");
  EXPECT_TRUE(journal->runs.at(1 * kRuns + 2).ok);
}

TEST(ResilientSweep, ExhaustedRetriesDegradeNotAbort) {
  util::ResetDrainForTest();
  const std::string path = TempPath("exhausted");
  Engine engine(2);
  ResilientOptions options = BaseOptions(path);
  options.max_retries = 1;
  auto doomed = [&](const AttemptContext& ctx) -> util::Result<std::string> {
    if (ctx.point == 0 && ctx.run == 0) {
      return util::UnavailableError("hopeless");
    }
    return OkBody(ctx);
  };
  auto report = RunResilientSweep(engine, kLabels, kRuns, options, doomed);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->failed, 1u);
  EXPECT_EQ(report->executed, report->runs.size());
  const RunStatus& slot = report->runs[0];
  EXPECT_FALSE(slot.ok);
  EXPECT_EQ(slot.attempts, 2u);  // 1 try + 1 retry.
  EXPECT_EQ(slot.payload, "hopeless");
  // Every other run completed: one bad point never aborts the grid.
  for (size_t i = 1; i < report->runs.size(); ++i) {
    EXPECT_TRUE(report->runs[i].ok) << i;
  }
  // The terminal failure is journaled, so a resume does NOT retry it.
  auto journal = JournalReader::Load(path);
  ASSERT_TRUE(journal.ok());
  EXPECT_FALSE(journal->runs.at(0).ok);
  ResilientOptions resume = BaseOptions("");
  resume.resume_path = path;
  resume.max_retries = 1;
  size_t calls = 0;
  auto counting = [&](const AttemptContext& ctx) -> util::Result<std::string> {
    ++calls;
    return OkBody(ctx);
  };
  auto resumed = RunResilientSweep(engine, kLabels, kRuns, resume, counting);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(calls, 0u);
  EXPECT_FALSE(resumed->runs[0].ok);
  EXPECT_EQ(resumed->failed, 1u);
}

TEST(ResilientSweep, ResumeFromTornHeaderJournalStartsFresh) {
  // Regression: a worker SIGKILLed before its header line was fully
  // fsync'd leaves a torn/empty journal. Resuming from it must start
  // fresh (and truncate the torn bytes), not refuse the sweep.
  util::ResetDrainForTest();
  const std::string path = TempPath("torn_header_resume");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"type\":\"header\",\"ver", f);  // No newline: torn.
    std::fclose(f);
  }
  Engine engine(1);
  auto clean =
      RunResilientSweep(engine, kLabels, kRuns, BaseOptions(""), OkBody);
  ASSERT_TRUE(clean.ok());

  ResilientOptions resume = BaseOptions(path);
  resume.resume_path = path;
  auto swept = RunResilientSweep(engine, kLabels, kRuns, resume, OkBody);
  ASSERT_TRUE(swept.ok());
  EXPECT_EQ(swept->replayed, 0u);
  EXPECT_EQ(swept->executed, swept->runs.size());
  EXPECT_EQ(Payloads(*swept), Payloads(*clean));

  // The rewritten journal is whole again: a second resume replays all.
  auto reloaded = JournalReader::Load(path);
  ASSERT_TRUE(reloaded.ok());
  EXPECT_FALSE(reloaded->torn_header);
  EXPECT_EQ(reloaded->runs.size(), swept->runs.size());
}

TEST(ResilientSweep, ShardWindowRestrictsExecution) {
  // Fabric workers sweep only their leased [lo, hi) slice; indices
  // outside stay untouched and uncounted, and the journal still pins the
  // full grid so shard journals share one identity.
  util::ResetDrainForTest();
  const std::string path = TempPath("shard_window");
  Engine engine(2);
  ResilientOptions options = BaseOptions(path);
  options.shard_lo = 3;
  options.shard_hi = 9;
  auto report = RunResilientSweep(engine, kLabels, kRuns, options, OkBody);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->executed, 6u);
  EXPECT_EQ(report->skipped, 0u);
  EXPECT_FALSE(report->drained);
  for (size_t i = 0; i < report->runs.size(); ++i) {
    EXPECT_EQ(report->runs[i].ok, i >= 3 && i < 9) << i;
  }
  auto journal = JournalReader::Load(path);
  ASSERT_TRUE(journal.ok());
  EXPECT_EQ(journal->header.total_runs, kLabels.size() * kRuns);
  EXPECT_EQ(journal->runs.size(), 6u);
  EXPECT_TRUE(journal->runs.count(3));
  EXPECT_FALSE(journal->runs.count(2));
  EXPECT_FALSE(journal->runs.count(9));
}

TEST(ResilientSweep, ForkAttemptSeedContract) {
  EXPECT_EQ(ForkAttemptSeed(123, 0), 123u);  // Attempt 0 = unchanged.
  EXPECT_NE(ForkAttemptSeed(123, 1), 123u);
  EXPECT_NE(ForkAttemptSeed(123, 1), ForkAttemptSeed(123, 2));
  EXPECT_EQ(ForkAttemptSeed(123, 1), ForkAttemptSeed(123, 1));
}

}  // namespace
}  // namespace ipda::exp
