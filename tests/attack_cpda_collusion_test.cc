// Protocol-level CPDA collusion: d+1 colluding co-members reconstruct a
// victim's private value; fewer cannot.

#include "attack/cpda_collusion.h"

#include <gtest/gtest.h>

#include "agg/cpda/interpolation.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "sim/simulator.h"

namespace ipda::attack {
namespace {

struct CollusionRun {
  CpdaCollusionReport report;
  std::vector<double> readings;
};

CollusionRun RunWithColluders(size_t colluder_count, uint64_t seed) {
  agg::RunConfig config;
  config.deployment.node_count = 400;
  config.seed = seed;
  auto topology = agg::BuildRunTopology(config);
  EXPECT_TRUE(topology.ok());
  sim::Simulator simulator(config.seed);
  net::Network network(&simulator, std::move(*topology));
  auto function = agg::MakeSum();
  agg::CpdaConfig cpda;
  cpda.coeff_range = 100.0;
  agg::CpdaProtocol protocol(&network, function.get(), cpda);

  // Colluders: a block of ids (likely to co-occur in clusters).
  std::vector<net::NodeId> colluders;
  util::Rng rng(seed * 3 + 1);
  for (size_t i = 0; i < colluder_count; ++i) {
    colluders.push_back(static_cast<net::NodeId>(
        1 + rng.UniformUint64(399)));
  }
  CpdaCollusionAnalysis analysis(colluders, cpda.poly_degree);
  protocol.SetShareObserver(analysis.Observer());

  auto field = agg::MakeUniformField(10.0, 20.0, seed);
  CollusionRun out;
  out.readings = field->Sample(network.topology());
  protocol.SetReadings(out.readings);
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  protocol.Finish();
  out.report = analysis.Evaluate();
  return out;
}

TEST(CpdaCollusion, ManyColludersExposeSomeVictimsExactly) {
  // 120 random colluders out of 399: clusters of ~5 frequently contain
  // >= 3 of them.
  const CollusionRun run = RunWithColluders(120, 77);
  EXPECT_GT(run.report.victims_observed, 0u);
  EXPECT_GT(run.report.victims_exposed, 0u);
  // Reconstructions are exact: the attack defeats the masking entirely.
  for (const auto& [victim, value] : run.report.reconstructed) {
    ASSERT_EQ(value.size(), 1u);
    EXPECT_NEAR(value[0], run.readings[victim], 1e-6)
        << "victim " << victim;
  }
}

TEST(CpdaCollusion, FewColludersExposeAlmostNothing) {
  // 10 colluders: three landing in one cluster is rare.
  const CollusionRun run = RunWithColluders(10, 78);
  EXPECT_LT(run.report.exposure_rate, 0.05);
}

TEST(CpdaCollusion, BelowThresholdPointsNeverReconstruct) {
  // Structural check: victims with fewer than deg+1 pooled points are
  // never in the reconstructed map.
  const CollusionRun run = RunWithColluders(120, 79);
  for (const auto& [victim, value] : run.report.reconstructed) {
    (void)value;
    // Every reconstructed victim must by construction have had >= 3
    // colluding co-members; verify exactness as the witness.
    EXPECT_NEAR(run.report.reconstructed.at(victim)[0],
                run.readings[victim], 1e-6);
  }
  EXPECT_LE(run.report.victims_exposed, run.report.victims_observed);
}

TEST(CpdaCollusion, ColludersOwnSharesIgnored) {
  CpdaCollusionAnalysis analysis({5, 6, 7}, 2);
  auto observer = analysis.Observer();
  // Colluder 5 sending to colluder 6: not a victim.
  observer(5, 6, agg::Vector{1.0});
  // Honest 9 keeping its own share: never observable.
  observer(9, 9, agg::Vector{2.0});
  // Honest 9 sending to honest 10: not seen by the coalition.
  observer(9, 10, agg::Vector{3.0});
  const auto report = analysis.Evaluate();
  EXPECT_EQ(report.victims_observed, 0u);
}

TEST(CpdaCollusion, ExactlyThresholdPointsSuffice) {
  // Synthetic: victim 9's degree-2 polynomial evaluated at colluders'
  // points 5, 6, 7 reconstructs the constant.
  CpdaCollusionAnalysis analysis({5, 6, 7}, 2);
  auto observer = analysis.Observer();
  util::Rng rng(1);
  agg::MaskingPolynomial poly(42.0, 2, 50.0, rng);
  for (net::NodeId to : {5u, 6u, 7u}) {
    observer(9, to,
             agg::Vector{poly.Evaluate(static_cast<double>(to))});
  }
  const auto report = analysis.Evaluate();
  ASSERT_EQ(report.victims_exposed, 1u);
  EXPECT_NEAR(report.reconstructed.at(9)[0], 42.0, 1e-9);
}

TEST(CpdaCollusion, OneFewerPointExposesNothing) {
  CpdaCollusionAnalysis analysis({5, 6}, 2);
  auto observer = analysis.Observer();
  util::Rng rng(2);
  agg::MaskingPolynomial poly(42.0, 2, 50.0, rng);
  for (net::NodeId to : {5u, 6u}) {
    observer(9, to,
             agg::Vector{poly.Evaluate(static_cast<double>(to))});
  }
  const auto report = analysis.Evaluate();
  EXPECT_EQ(report.victims_observed, 1u);
  EXPECT_EQ(report.victims_exposed, 0u);
}

}  // namespace
}  // namespace ipda::attack
