#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace ipda::util {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  size_t equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++equal;
  }
  EXPECT_LT(equal, 2u);
}

TEST(Rng, ForkByLabelIsDeterministicAndIndependent) {
  Rng root(7);
  Rng mac1 = root.Fork("mac");
  Rng mac2 = Rng(7).Fork("mac");
  Rng phy = root.Fork("phy");
  EXPECT_EQ(mac1.NextUint64(), mac2.NextUint64());
  EXPECT_NE(Rng(7).Fork("mac").NextUint64(), phy.NextUint64());
}

TEST(Rng, ForkByIndexDistinctStreams) {
  Rng root(9);
  EXPECT_NE(root.Fork(uint64_t{0}).NextUint64(),
            root.Fork(uint64_t{1}).NextUint64());
}

TEST(Rng, UniformDoubleInUnitInterval) {
  Rng rng(42);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.UniformDouble();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformDoubleMeanNearHalf) {
  Rng rng(43);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.UniformDouble();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(44);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformUint64RespectsBound) {
  Rng rng(45);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.UniformUint64(7), 7u);
  }
}

TEST(Rng, UniformUint64BoundOneIsAlwaysZero) {
  Rng rng(46);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformUint64(1), 0u);
}

TEST(Rng, BernoulliEdgeCases) {
  Rng rng(47);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(48);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(49);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / n, 2.0, 0.05);
}

TEST(Rng, NormalMeanAndSpread) {
  Rng rng(50);
  double sum = 0.0;
  double sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal(10.0, 3.0);
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 3.0, 0.05);
}

TEST(Rng, ShufflePreservesElements) {
  Rng rng(51);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> original = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(Rng, SampleWithoutReplacementIsDistinctAndInRange) {
  Rng rng(52);
  for (int trial = 0; trial < 100; ++trial) {
    auto sample = rng.SampleWithoutReplacement(20, 7);
    ASSERT_EQ(sample.size(), 7u);
    std::set<size_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), 7u);
    for (size_t s : sample) EXPECT_LT(s, 20u);
  }
}

TEST(Rng, SampleWithoutReplacementFullSet) {
  Rng rng(53);
  auto sample = rng.SampleWithoutReplacement(5, 5);
  std::set<size_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(Rng, SampleWithoutReplacementUniformity) {
  // Each element of [0,10) should appear in a 3-sample about 30% of the
  // time.
  Rng rng(54);
  std::vector<int> counts(10, 0);
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    for (size_t s : rng.SampleWithoutReplacement(10, 3)) ++counts[s];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.3, 0.02);
  }
}

TEST(SplitMix64, KnownSequenceIsStable) {
  uint64_t state = 0;
  const uint64_t first = SplitMix64(state);
  uint64_t state2 = 0;
  EXPECT_EQ(first, SplitMix64(state2));
  EXPECT_NE(SplitMix64(state), first);
}

TEST(Mix64, OrderSensitive) {
  EXPECT_NE(Mix64(1, 2), Mix64(2, 1));
  EXPECT_EQ(Mix64(1, 2), Mix64(1, 2));
}

TEST(HashLabel, DistinctLabelsDistinctHashes) {
  EXPECT_NE(HashLabel("mac"), HashLabel("phy"));
  EXPECT_EQ(HashLabel("mac"), HashLabel("mac"));
  EXPECT_NE(HashLabel(""), HashLabel("a"));
}

TEST(Rng, ChiSquareUniformityOfBytes) {
  // Coarse distribution check over 256 buckets.
  Rng rng(55);
  std::vector<int> buckets(256, 0);
  const int n = 256 * 200;
  for (int i = 0; i < n; ++i) {
    ++buckets[rng.NextUint64() & 0xff];
  }
  double chi2 = 0.0;
  const double expected = n / 256.0;
  for (int b : buckets) {
    const double d = b - expected;
    chi2 += d * d / expected;
  }
  // 255 dof: mean 255, stddev ~22.6. Accept a wide band.
  EXPECT_GT(chi2, 150.0);
  EXPECT_LT(chi2, 400.0);
}

}  // namespace
}  // namespace ipda::util
