// IpdaProtocol behaviour over small, controlled networks.

#include "agg/ipda/protocol.h"

#include <map>

#include <gtest/gtest.h>

#include "agg/aggregate_function.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "crypto/predistribution.h"
#include "sim/simulator.h"

namespace ipda::agg {
namespace {

agg::RunConfig SmallConfig(uint64_t seed, size_t n = 400) {
  agg::RunConfig config;
  config.deployment.node_count = n;
  config.seed = seed;
  return config;
}

IpdaConfig CountConfig(uint32_t l = 2) {
  IpdaConfig config;
  config.slice_count = l;
  config.slice_range = 1.0;
  return config;
}

TEST(IpdaProtocol, SliceObserverSeesConservedSlices) {
  // Sum of all observed slices per (node, color) equals the node's
  // contribution — the invariant behind Eqs. (3)-(6).
  const auto config = SmallConfig(101);
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  std::map<std::pair<net::NodeId, TreeColor>, double> sums;
  std::map<net::NodeId, size_t> slice_counts;
  IpdaRunHooks hooks;
  hooks.slice_observer = [&](net::NodeId from, net::NodeId to,
                             TreeColor color, const Vector& slice) {
    (void)to;
    sums[{from, color}] += slice[0];
    slice_counts[from] += 1;
  };
  auto result = RunIpda(config, *function, *field, CountConfig(2), hooks);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(result->stats.participants, 300u);
  size_t checked = 0;
  for (const auto& [key, sum] : sums) {
    EXPECT_NEAR(sum, 1.0, 1e-9) << "node " << key.first;
    ++checked;
  }
  EXPECT_EQ(checked, 2 * result->stats.participants);
  // Every participant produced exactly 2l slices (counting the kept one).
  for (const auto& [node, count] : slice_counts) {
    EXPECT_EQ(count, 4u);
  }
}

TEST(IpdaProtocol, SliceCountMatchesRoleFormula) {
  // Over-the-air slices = 2l per leaf participant, 2l-1 per aggregator
  // participant. Default config has no leaves, so slices_sent = (2l-1) *
  // participants.
  const auto config = SmallConfig(103);
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  auto result = RunIpda(config, *function, *field, CountConfig(2));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.slices_sent, 3 * result->stats.participants);
}

TEST(IpdaProtocol, WithoutLossTreesMatchTruthExactly) {
  // With ARQ and a dense network, every participant's contribution reaches
  // both trees: totals equal the participant count exactly.
  const auto config = SmallConfig(105, 300);
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  auto result = RunIpda(config, *function, *field, CountConfig(2));
  ASSERT_TRUE(result.ok());
  const double participants =
      static_cast<double>(result->stats.participants);
  EXPECT_NEAR(result->stats.decision.acc_red[0], participants, 1.0);
  EXPECT_NEAR(result->stats.decision.acc_blue[0], participants, 1.0);
}

TEST(IpdaProtocol, SumAggregationAccurate) {
  const auto config = SmallConfig(107, 300);
  auto function = MakeSum();
  auto field = MakeUniformField(20.0, 30.0, 5);
  IpdaConfig ipda;
  ipda.slice_count = 2;
  ipda.slice_range = 30.0;
  ipda.threshold = 60.0;  // Th scales with the data magnitude for SUM.
  auto result = RunIpda(config, *function, *field, ipda);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.decision.accepted);
  EXPECT_GT(result->accuracy, 0.9);
  EXPECT_LT(result->accuracy, 1.02);
}

TEST(IpdaProtocol, AverageFunctionFinalizes) {
  const auto config = SmallConfig(109, 300);
  auto function = MakeAverage();
  auto field = MakeConstantField(42.0);
  IpdaConfig ipda;
  ipda.slice_count = 2;
  ipda.slice_range = 42.0;
  ipda.threshold = 100.0;
  auto result = RunIpda(config, *function, *field, ipda);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->stats.decision.accepted);
  EXPECT_NEAR(result->result, 42.0, 1.0);
}

TEST(IpdaProtocol, SliceCountOneWorks) {
  const auto config = SmallConfig(111);
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  auto result = RunIpda(config, *function, *field, CountConfig(1));
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.decision.accepted);
  EXPECT_GT(result->accuracy, 0.9);
  // l=1: aggregators transmit 2l-1 = 1 slice each.
  EXPECT_EQ(result->stats.slices_sent, result->stats.participants);
}

TEST(IpdaProtocol, LargerSliceCountNeedsDenserNeighborhoods) {
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  auto l2 = RunIpda(SmallConfig(113, 250), *function, *field,
                    CountConfig(2));
  auto l4 = RunIpda(SmallConfig(113, 250), *function, *field,
                    CountConfig(4));
  ASSERT_TRUE(l2.ok());
  ASSERT_TRUE(l4.ok());
  // l=4 requires 4 aggregator neighbors per color: fewer nodes qualify
  // (loss factor (b) in §IV-B-3).
  EXPECT_LT(l4->stats.participants, l2->stats.participants);
}

TEST(IpdaProtocol, PlaintextModeStillAggregates) {
  const auto config = SmallConfig(115);
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  IpdaConfig ipda = CountConfig(2);
  ipda.encrypt_slices = false;
  auto result = RunIpda(config, *function, *field, ipda);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->stats.decision.accepted);
  EXPECT_GT(result->accuracy, 0.85);
}

TEST(IpdaProtocol, EncryptionCostsBytes) {
  const auto config = SmallConfig(117);
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  IpdaConfig plain = CountConfig(2);
  plain.encrypt_slices = false;
  auto encrypted = RunIpda(config, *function, *field, CountConfig(2));
  auto plaintext = RunIpda(config, *function, *field, plain);
  ASSERT_TRUE(encrypted.ok());
  ASSERT_TRUE(plaintext.ok());
  EXPECT_GT(encrypted->traffic.bytes_sent, plaintext->traffic.bytes_sent);
}

TEST(IpdaProtocol, ExternalPredistributionKeysWork) {
  const auto run_config = SmallConfig(119, 300);
  auto topology = BuildRunTopology(run_config);
  ASSERT_TRUE(topology.ok());
  sim::Simulator simulator(run_config.seed);
  net::Network network(&simulator, std::move(*topology));

  // Dense EG rings: nearly every link keyable.
  util::Rng rng(7);
  auto scheme = crypto::KeyPredistribution::Create(
      crypto::EgConfig{200, 60}, network.size(), 11, rng);
  ASSERT_TRUE(scheme.ok());
  std::vector<crypto::Link> links;
  for (net::NodeId a = 0; a < network.size(); ++a) {
    for (net::NodeId b : network.topology().neighbors(a)) {
      if (a < b) links.emplace_back(a, b);
    }
  }
  std::vector<crypto::LinkCrypto> cryptos;
  for (net::NodeId id = 0; id < network.size(); ++id) {
    cryptos.emplace_back(id);
  }
  const double secured = scheme->Provision(links, cryptos);
  EXPECT_GT(secured, 0.95);

  auto function = MakeCount();
  IpdaProtocol protocol(&network, function.get(), CountConfig(2));
  protocol.SetLinkCrypto(&cryptos);
  auto field = MakeConstantField(1.0);
  protocol.SetReadings(field->Sample(network.topology()));
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  const auto& stats = protocol.Finish();
  EXPECT_TRUE(stats.decision.accepted);
  EXPECT_GT(stats.participants, 250u);
  EXPECT_EQ(stats.slice_decrypt_failures, 0u);
}

TEST(IpdaProtocol, ExcludedNodesDoNotContribute) {
  const auto config = SmallConfig(121, 300);
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  auto baseline = RunIpda(config, *function, *field, CountConfig(2));
  ASSERT_TRUE(baseline.ok());

  IpdaRunHooks hooks;
  for (net::NodeId id = 1; id <= 60; ++id) hooks.excluded.push_back(id);
  auto reduced =
      RunIpda(config, *function, *field, CountConfig(2), hooks);
  ASSERT_TRUE(reduced.ok());
  EXPECT_EQ(reduced->stats.excluded, 60u);
  EXPECT_LT(reduced->stats.decision.acc_red[0],
            baseline->stats.decision.acc_red[0]);
  // Both trees lose the same contributions: still accepted.
  EXPECT_TRUE(reduced->stats.decision.accepted);
}

TEST(IpdaProtocol, PollutionOnBothTreesByDistinctAttackersStillDetected) {
  // Two independent (non-colluding) polluters on different trees tamper by
  // different amounts — §IV-A-4 says results still disagree.
  const auto config = SmallConfig(123, 300);
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  IpdaRunHooks hooks;
  hooks.pollution = [](net::NodeId node, TreeColor, Vector& partial) {
    if (node == 17) partial[0] += 40.0;
    if (node == 99) partial[0] += 90.0;
  };
  auto result = RunIpda(config, *function, *field, CountConfig(2), hooks);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->stats.decision.accepted);
}

TEST(IpdaProtocol, StartTwiceAborts) {
  const auto run_config = SmallConfig(125, 100);
  auto topology = BuildRunTopology(run_config);
  ASSERT_TRUE(topology.ok());
  sim::Simulator simulator(1);
  net::Network network(&simulator, std::move(*topology));
  auto function = MakeCount();
  IpdaProtocol protocol(&network, function.get(), CountConfig(2));
  protocol.Start();
  EXPECT_DEATH(protocol.Start(), "CHECK failed");
}

TEST(IpdaProtocol, FinishIsIdempotent) {
  const auto config = SmallConfig(127);
  auto topology = BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  sim::Simulator simulator(config.seed);
  net::Network network(&simulator, std::move(*topology));
  auto function = MakeCount();
  IpdaProtocol protocol(&network, function.get(), CountConfig(2));
  auto field = MakeConstantField(1.0);
  protocol.SetReadings(field->Sample(network.topology()));
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  const auto& first = protocol.Finish();
  const size_t participants = first.participants;
  const auto& second = protocol.Finish();
  EXPECT_EQ(second.participants, participants);
}

}  // namespace
}  // namespace ipda::agg
