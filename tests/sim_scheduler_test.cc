#include "sim/scheduler.h"

#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "sim/simulator.h"
#include "sim/time.h"
#include "util/random.h"

namespace ipda::sim {
namespace {

TEST(Time, ConversionHelpers) {
  EXPECT_EQ(Microseconds(1), Nanoseconds(1000));
  EXPECT_EQ(Milliseconds(1), Microseconds(1000));
  EXPECT_EQ(Seconds(1), Milliseconds(1000));
  EXPECT_EQ(SecondsF(0.5), Milliseconds(500));
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3)), 3.0);
}

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler sched;
  std::vector<int> order;
  sched.ScheduleAt(Milliseconds(30), [&] { order.push_back(3); });
  sched.ScheduleAt(Milliseconds(10), [&] { order.push_back(1); });
  sched.ScheduleAt(Milliseconds(20), [&] { order.push_back(2); });
  EXPECT_EQ(sched.RunAll(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sched.now(), Milliseconds(30));
}

TEST(Scheduler, TiesRunInSchedulingOrder) {
  Scheduler sched;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    sched.ScheduleAt(Milliseconds(5), [&order, i] { order.push_back(i); });
  }
  sched.RunAll();
  for (int i = 0; i < 8; ++i) EXPECT_EQ(order[i], i);
}

TEST(Scheduler, ScheduleAfterUsesCurrentTime) {
  Scheduler sched;
  SimTime fired_at = -1;
  sched.ScheduleAt(Milliseconds(10), [&] {
    sched.ScheduleAfter(Milliseconds(5), [&] { fired_at = sched.now(); });
  });
  sched.RunAll();
  EXPECT_EQ(fired_at, Milliseconds(15));
}

TEST(Scheduler, RunUntilStopsAtDeadlineInclusive) {
  Scheduler sched;
  int count = 0;
  sched.ScheduleAt(Milliseconds(10), [&] { ++count; });
  sched.ScheduleAt(Milliseconds(20), [&] { ++count; });
  sched.ScheduleAt(Milliseconds(30), [&] { ++count; });
  EXPECT_EQ(sched.RunUntil(Milliseconds(20)), 2u);
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sched.pending(), 1u);
  EXPECT_EQ(sched.RunAll(), 1u);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler sched;
  bool ran = false;
  EventId id = sched.ScheduleAt(Milliseconds(10), [&] { ran = true; });
  EXPECT_TRUE(sched.Cancel(id));
  sched.RunAll();
  EXPECT_FALSE(ran);
}

TEST(Scheduler, CancelTwiceFails) {
  Scheduler sched;
  EventId id = sched.ScheduleAt(Milliseconds(10), [] {});
  EXPECT_TRUE(sched.Cancel(id));
  EXPECT_FALSE(sched.Cancel(id));
}

TEST(Scheduler, CancelAfterRunFails) {
  Scheduler sched;
  EventId id = sched.ScheduleAt(Milliseconds(1), [] {});
  sched.RunAll();
  EXPECT_FALSE(sched.Cancel(id));
}

TEST(Scheduler, CancelUnknownIdFails) {
  Scheduler sched;
  EXPECT_FALSE(sched.Cancel(kInvalidEventId));
  EXPECT_FALSE(sched.Cancel(9999));
}

TEST(Scheduler, PendingCountExcludesCancelled) {
  Scheduler sched;
  EventId a = sched.ScheduleAt(Milliseconds(1), [] {});
  sched.ScheduleAt(Milliseconds(2), [] {});
  EXPECT_EQ(sched.pending(), 2u);
  sched.Cancel(a);
  EXPECT_EQ(sched.pending(), 1u);
  EXPECT_FALSE(sched.empty());
  sched.RunAll();
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(sched.cancelled_pending(), 0u);  // Tombstone purged at pop.
}

TEST(Scheduler, CancelledTombstonesStayBounded) {
  // A workload that cancels nearly everything it schedules (ARQ ack
  // timers) must not accumulate tombstones without bound: compaction
  // keeps them under the threshold even though the clock never reaches
  // the cancelled timestamps.
  Scheduler sched;
  for (int i = 0; i < 10000; ++i) {
    EventId id = sched.ScheduleAt(Milliseconds(1000 + i), [] {});
    sched.Cancel(id);
    EXPECT_LE(sched.cancelled_pending(), 64u);
  }
  EXPECT_TRUE(sched.empty());
  sched.RunAll();
  EXPECT_EQ(sched.cancelled_pending(), 0u);
  EXPECT_EQ(sched.events_run(), 0u);
}

TEST(Scheduler, CompactionPreservesLiveEventsAndOrder) {
  Scheduler sched;
  std::vector<int> order;
  std::vector<EventId> doomed;
  int cancelled_ran = 0;
  // Interleave survivors (some at a shared timestamp, to exercise seq
  // tie-breaking across a rebuild) with events that will be cancelled.
  for (int i = 0; i < 200; ++i) {
    const SimTime at = i < 100 ? Milliseconds(10 + i) : Milliseconds(500);
    sched.ScheduleAt(at, [&order, i] { order.push_back(i); });
    doomed.push_back(
        sched.ScheduleAt(Milliseconds(900 + i), [&] { ++cancelled_ran; }));
  }
  for (EventId id : doomed) sched.Cancel(id);  // Forces compaction.
  EXPECT_EQ(sched.cancelled_pending(), 0u);
  EXPECT_EQ(sched.pending(), 200u);
  sched.RunAll();
  EXPECT_EQ(cancelled_ran, 0);
  ASSERT_EQ(order.size(), 200u);
  for (int i = 0; i < 200; ++i) EXPECT_EQ(order[i], i);
  EXPECT_EQ(sched.cancelled_pending(), 0u);
}

TEST(Scheduler, CancelStaysCorrectAcrossCompaction) {
  // Ids cancelled before a compaction stay cancelled; ids still pending
  // afterwards can still be cancelled.
  Scheduler sched;
  std::vector<EventId> keep;
  int ran = 0;
  for (int i = 0; i < 300; ++i) {
    EventId id = sched.ScheduleAt(Milliseconds(10 + i), [&] { ++ran; });
    if (i % 2 == 0) {
      sched.Cancel(id);
    } else {
      keep.push_back(id);
    }
  }
  for (size_t i = 0; i < keep.size(); i += 2) {
    EXPECT_TRUE(sched.Cancel(keep[i]));
  }
  sched.RunAll();
  EXPECT_EQ(ran, 75);  // 300 - 150 - 75.
  EXPECT_EQ(sched.cancelled_pending(), 0u);
}

TEST(Scheduler, EventsScheduledDuringRunExecute) {
  Scheduler sched;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sched.ScheduleAfter(Milliseconds(1), recurse);
  };
  sched.ScheduleAt(Milliseconds(1), recurse);
  sched.RunAll();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sched.now(), Milliseconds(5));
}

TEST(Scheduler, RunOneReturnsFalseWhenEmpty) {
  Scheduler sched;
  EXPECT_FALSE(sched.RunOne());
  sched.ScheduleAt(Milliseconds(1), [] {});
  EXPECT_TRUE(sched.RunOne());
  EXPECT_FALSE(sched.RunOne());
}

TEST(Scheduler, EventsRunCounter) {
  Scheduler sched;
  for (int i = 0; i < 10; ++i) sched.ScheduleAt(Milliseconds(i + 1), [] {});
  sched.RunAll();
  EXPECT_EQ(sched.events_run(), 10u);
}

TEST(Scheduler, SchedulingInThePastAborts) {
  Scheduler sched;
  sched.ScheduleAt(Milliseconds(10), [] {});
  sched.RunAll();
  EXPECT_DEATH(sched.ScheduleAt(Milliseconds(5), [] {}), "CHECK failed");
}

TEST(Scheduler, CancelledHeadDoesNotBlockRunUntil) {
  Scheduler sched;
  bool second_ran = false;
  EventId head = sched.ScheduleAt(Milliseconds(1), [] {});
  sched.ScheduleAt(Milliseconds(2), [&] { second_ran = true; });
  sched.Cancel(head);
  EXPECT_EQ(sched.RunUntil(Milliseconds(5)), 1u);
  EXPECT_TRUE(second_ran);
}

TEST(Scheduler, StaleHandleAfterSlotReuseFails) {
  // Cancelling frees the slot; the next schedule reuses it under a bumped
  // generation. The stale handle must stay dead and must not be able to
  // cancel the new occupant.
  Scheduler sched;
  bool ran = false;
  EventId old_id = sched.ScheduleAt(Milliseconds(10), [] {});
  EXPECT_TRUE(sched.Cancel(old_id));
  EventId new_id = sched.ScheduleAt(Milliseconds(20), [&] { ran = true; });
  EXPECT_NE(old_id, new_id);
  EXPECT_FALSE(sched.Cancel(old_id));  // Stale generation.
  sched.RunAll();
  EXPECT_TRUE(ran);
}

TEST(Scheduler, SlotReuseSurvivesManyGenerations) {
  // Hammer a single slot through schedule/cancel cycles: every retired
  // handle stays invalid, every live one works exactly once.
  Scheduler sched;
  EventId prev = kInvalidEventId;
  for (int i = 0; i < 1000; ++i) {
    EventId id = sched.ScheduleAt(Milliseconds(10), [] {});
    EXPECT_NE(id, prev);
    EXPECT_FALSE(sched.Cancel(prev));
    EXPECT_TRUE(sched.Cancel(id));
    prev = id;
  }
  EXPECT_TRUE(sched.empty());
}

TEST(Scheduler, CancelHeavyRandomChurn) {
  // Randomized interleaving of schedule / cancel / run, the ARQ-timer
  // shape that motivated generation-tagged handles. Every event either
  // fires exactly once or is cancelled exactly once; double-cancels on
  // stale handles always fail.
  Scheduler sched;
  util::Rng rng(20240805);
  std::vector<EventId> live;
  int fired = 0;
  int scheduled = 0;
  int cancelled = 0;
  while (scheduled < 5000) {
    const uint64_t roll = rng.UniformUint64(100);
    if (roll < 60 || live.empty()) {
      live.push_back(sched.ScheduleAfter(
          Milliseconds(1 + static_cast<SimTime>(rng.UniformUint64(50))),
          [&fired] { ++fired; }));
      ++scheduled;
    } else if (roll < 90) {
      const size_t pick =
          static_cast<size_t>(rng.UniformUint64(live.size()));
      const EventId id = live[pick];
      if (sched.Cancel(id)) {
        ++cancelled;
        EXPECT_FALSE(sched.Cancel(id));  // Stale handle stays dead.
      }
      live.erase(live.begin() + pick);
    } else {
      sched.RunUntil(sched.now() + Milliseconds(5));
    }
  }
  sched.RunAll();
  EXPECT_TRUE(sched.empty());
  EXPECT_EQ(fired, scheduled - cancelled);
  EXPECT_EQ(sched.cancelled_pending(), 0u);
}

TEST(Scheduler, SteadyStateDispatchDoesNotAllocate) {
  // After warm-up, a schedule/dispatch cycle must reuse the heap array,
  // the slot free list, and the callback pool: no capacity growth, no
  // pool slabs, no operator-new fallbacks.
  Scheduler sched;
  int hits = 0;
  for (int i = 0; i < 256; ++i) {
    sched.ScheduleAfter(Milliseconds(1 + i % 7), [&hits] { ++hits; });
  }
  sched.RunAll();
  const Scheduler::AllocStats before = sched.alloc_stats();
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 256; ++i) {
      sched.ScheduleAfter(Milliseconds(1 + i % 7), [&hits] { ++hits; });
    }
    sched.RunAll();
  }
  const Scheduler::AllocStats after = sched.alloc_stats();
  EXPECT_EQ(after.heap_capacity, before.heap_capacity);
  EXPECT_EQ(after.slot_capacity, before.slot_capacity);
  EXPECT_EQ(after.overflow_slabs, before.overflow_slabs);
  EXPECT_EQ(after.callback_heap_fallbacks, before.callback_heap_fallbacks);
  EXPECT_EQ(hits, 256 * 101);
}

TEST(Scheduler, RegistryMirrorsAllocStatsShim) {
  // The metrics registry is the supported surface for the zero-alloc
  // referee (DESIGN.md §11); Scheduler::alloc_stats() survives as a
  // deprecated shim. Both must report the same numbers, and collection
  // must be idempotent.
  Simulator simulator(/*seed=*/7);
  Scheduler& sched = simulator.scheduler();
  std::vector<EventId> live;
  for (int i = 0; i < 512; ++i) {
    live.push_back(sched.ScheduleAfter(Milliseconds(1 + i % 13), [] {}));
  }
  for (size_t i = 0; i < live.size(); i += 2) {
    sched.Cancel(live[i]);  // Half go stale: exercises skip/prune paths.
  }
  sched.RunAll();

  simulator.CollectKernelMetrics();
  simulator.CollectKernelMetrics();  // Idempotent: Set, not Add.
  const obs::Snapshot snapshot = obs::TakeSnapshot(simulator.metrics());
  const Scheduler::AllocStats shim = sched.alloc_stats();
  EXPECT_EQ(snapshot.GaugeOr("sim.sched_heap_capacity", -1),
            static_cast<double>(shim.heap_capacity));
  EXPECT_EQ(snapshot.GaugeOr("sim.sched_slot_capacity", -1),
            static_cast<double>(shim.slot_capacity));
  EXPECT_EQ(snapshot.GaugeOr("sim.sched_overflow_slabs", -1),
            static_cast<double>(shim.overflow_slabs));
  EXPECT_EQ(snapshot.CounterOr("sim.callback_heap_fallbacks", -1),
            static_cast<double>(shim.callback_heap_fallbacks));
  EXPECT_EQ(snapshot.CounterOr("sim.sched_stale_skips", -1),
            static_cast<double>(sched.stale_skips()));
  EXPECT_EQ(snapshot.CounterOr("sim.sched_prunes", -1),
            static_cast<double>(sched.prune_passes()));
  EXPECT_GT(snapshot.CounterOr("sim.sched_stale_skips", 0) +
                snapshot.CounterOr("sim.sched_prunes", 0),
            0.0);  // The cancellations above must actually register.
}

TEST(Scheduler, EventBudgetStopsInfiniteReschedule) {
  // The deliberately-hung fixture: an event that always reschedules
  // itself. Without a budget RunUntil would spin forever; the budget
  // converts the hang into a clean interrupted return.
  Scheduler sched;
  sched.SetEventBudget(100);
  uint64_t fired = 0;
  std::function<void()> forever = [&] {
    ++fired;
    sched.ScheduleAfter(Milliseconds(1), forever);
  };
  sched.ScheduleAt(Milliseconds(1), forever);
  sched.RunUntil(Seconds(1000000));
  EXPECT_EQ(fired, 100u);
  EXPECT_TRUE(sched.interrupted());
  EXPECT_EQ(sched.interrupt_cause(), Scheduler::InterruptCause::kEventBudget);
}

TEST(Scheduler, EventBudgetCapsLifetimeEvents) {
  // The budget caps events_run() across calls, not per call: a second
  // RunUntil after an exhausted budget runs nothing.
  Scheduler sched;
  sched.SetEventBudget(5);
  int ran = 0;
  for (int i = 0; i < 10; ++i) {
    sched.ScheduleAt(Milliseconds(i + 1), [&] { ++ran; });
  }
  sched.RunUntil(Milliseconds(100));
  EXPECT_EQ(ran, 5);
  sched.RunUntil(Milliseconds(200));
  EXPECT_EQ(ran, 5);
  EXPECT_EQ(sched.interrupt_cause(), Scheduler::InterruptCause::kEventBudget);
}

TEST(Scheduler, CancelTokenStopsRunMidFlight) {
  Scheduler sched;
  CancelToken token;
  sched.SetCancelToken(&token);
  int ran = 0;
  for (int i = 0; i < 10; ++i) {
    sched.ScheduleAt(Milliseconds(i + 1), [&] {
      ++ran;
      if (ran == 3) token.RequestCancel(CancelReason::kDeadline);
    });
  }
  sched.RunUntil(Milliseconds(100));
  EXPECT_EQ(ran, 3);
  EXPECT_TRUE(sched.interrupted());
  EXPECT_EQ(sched.interrupt_cause(), Scheduler::InterruptCause::kCancel);
  EXPECT_EQ(token.reason(), CancelReason::kDeadline);
  EXPECT_EQ(sched.pending(), 7u);
}

TEST(Scheduler, InterruptCauseResetsOnNextRun) {
  Scheduler sched;
  CancelToken token;
  sched.SetCancelToken(&token);
  token.RequestCancel();
  sched.ScheduleAt(Milliseconds(1), [] {});
  sched.RunUntil(Milliseconds(10));
  EXPECT_TRUE(sched.interrupted());
  token.Reset();
  sched.RunUntil(Milliseconds(10));
  EXPECT_FALSE(sched.interrupted());
  EXPECT_EQ(sched.interrupt_cause(), Scheduler::InterruptCause::kNone);
  EXPECT_EQ(sched.pending(), 0u);
}

TEST(CancelTokenTest, FirstReasonWins) {
  CancelToken token;
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kNone);
  token.RequestCancel(CancelReason::kDrain);
  token.RequestCancel(CancelReason::kDeadline);  // Too late; drain wins.
  EXPECT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), CancelReason::kDrain);
  token.Reset();
  EXPECT_FALSE(token.cancelled());
}

TEST(Simulator, ForkRngIsStableAcrossInstances) {
  Simulator a(99);
  Simulator b(99);
  EXPECT_EQ(a.ForkRng("x").NextUint64(), b.ForkRng("x").NextUint64());
  EXPECT_NE(a.ForkRng("x").NextUint64(), a.ForkRng("y").NextUint64());
  EXPECT_EQ(a.ForkRng("n", 3).NextUint64(), b.ForkRng("n", 3).NextUint64());
  EXPECT_NE(a.ForkRng("n", 3).NextUint64(), a.ForkRng("n", 4).NextUint64());
}

TEST(Simulator, AtAndAfterDelegate) {
  Simulator sim(1);
  int hits = 0;
  sim.At(Milliseconds(5), [&] { ++hits; });
  sim.After(Milliseconds(2), [&] { ++hits; });
  sim.RunUntil(Milliseconds(10));
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(sim.now(), Milliseconds(5));
}

}  // namespace
}  // namespace ipda::sim
