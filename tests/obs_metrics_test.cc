// obs/metrics.h unit tests: instrument semantics, snapshot determinism,
// and the JSONL round trip that `ipda_sim --metrics` files rely on.

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace ipda::obs {
namespace {

TEST(Counter, IncAddSetSemantics) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Add(41);
  EXPECT_EQ(c.value(), 42u);
  // Set is idempotent mirroring for pull-model collectors: re-collection
  // must never double-count.
  c.Set(7);
  c.Set(7);
  EXPECT_EQ(c.value(), 7u);
}

TEST(Gauge, SetAndSetMax) {
  Gauge g;
  g.Set(2.5);
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.SetMax(1.0);  // Below the high-water mark: ignored.
  EXPECT_DOUBLE_EQ(g.value(), 2.5);
  g.SetMax(9.0);
  EXPECT_DOUBLE_EQ(g.value(), 9.0);
  g.Set(0.0);  // Plain Set still overwrites.
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
}

TEST(Histogram, BucketBoundariesAreInclusive) {
  Histogram h({10.0, 100.0});
  h.Observe(10.0);   // v <= bounds[0] -> bucket 0.
  h.Observe(10.5);   // -> bucket 1.
  h.Observe(100.0);  // -> bucket 1.
  h.Observe(1e6);    // -> overflow bucket.
  ASSERT_EQ(h.counts().size(), 3u);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[1], 2u);
  EXPECT_EQ(h.counts()[2], 1u);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0 + 10.5 + 100.0 + 1e6);
}

TEST(Registry, RegistrationIsIdempotentAndPointersAreStable) {
  Registry registry;
  Counter* a = registry.GetCounter("net.bytes_sent");
  Counter* b = registry.GetCounter("net.bytes_sent");
  EXPECT_EQ(a, b);
  a->Add(5);
  // Registering many more instruments must not move the first cell.
  for (int i = 0; i < 64; ++i) {
    std::string counter_name = "c";
    counter_name += std::to_string(i);
    registry.GetCounter(counter_name);
    std::string gauge_name = "g";
    gauge_name += std::to_string(i);
    registry.GetGauge(gauge_name);
  }
  EXPECT_EQ(registry.GetCounter("net.bytes_sent"), a);
  EXPECT_EQ(a->value(), 5u);

  // Histogram identity includes its bounds: re-registration ignores the
  // new bounds and returns the original cell.
  Histogram* h = registry.GetHistogram("net.node_bytes", {1.0, 2.0});
  EXPECT_EQ(registry.GetHistogram("net.node_bytes", {99.0}), h);
  EXPECT_EQ(h->bounds(), (std::vector<double>{1.0, 2.0}));
}

TEST(Snapshot, SortedByNameRegardlessOfRegistrationOrder) {
  Registry forward, reverse;
  forward.GetCounter("alpha")->Set(1);
  forward.GetCounter("beta")->Set(2);
  forward.GetGauge("gamma")->Set(3.0);
  reverse.GetGauge("gamma")->Set(3.0);
  reverse.GetCounter("beta")->Set(2);
  reverse.GetCounter("alpha")->Set(1);

  const Snapshot a = TakeSnapshot(forward);
  const Snapshot b = TakeSnapshot(reverse);
  EXPECT_EQ(SnapshotJsonFields(a), SnapshotJsonFields(b));
  ASSERT_EQ(a.counters.size(), 2u);
  EXPECT_EQ(a.counters[0].first, "alpha");
  EXPECT_EQ(a.counters[1].first, "beta");
}

TEST(Snapshot, LookupHelpersFallBackWhenAbsent) {
  Registry registry;
  registry.GetCounter("present")->Set(3);
  registry.GetGauge("level")->Set(0.5);
  const Snapshot snapshot = TakeSnapshot(registry);
  EXPECT_DOUBLE_EQ(snapshot.CounterOr("present", -1.0), 3.0);
  EXPECT_DOUBLE_EQ(snapshot.CounterOr("absent", -1.0), -1.0);
  EXPECT_DOUBLE_EQ(snapshot.GaugeOr("level", -1.0), 0.5);
  EXPECT_DOUBLE_EQ(snapshot.GaugeOr("absent", -1.0), -1.0);
}

TEST(Snapshot, JsonRoundTripPreservesEveryInstrument) {
  Registry registry;
  registry.GetCounter("sim.events_run")->Set(123456789);
  registry.GetGauge("agg.completeness_red")->Set(0.8125);
  registry.GetGauge("net.energy_total_j")->Set(0.1234567890123456789);
  Histogram* h = registry.GetHistogram("net.node_bytes", {64.0, 256.0});
  h->Observe(10.0);
  h->Observe(200.0);
  h->Observe(9000.0);
  Trace trace;
  trace.Span("ipda.slicing", 1000, 2000);
  trace.Span("ipda.assembly", 2000, 3500);

  const Snapshot snapshot = TakeSnapshot(registry, &trace);
  const std::string line = SnapshotJsonLine(snapshot, /*run=*/4, /*seed=*/99);
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.back(), '\n');

  ParsedLine parsed;
  std::string error;
  ASSERT_TRUE(ParseMetricsLine(line, parsed, &error)) << error;
  EXPECT_EQ(parsed.kind, "run_metrics");
  EXPECT_EQ(parsed.run, 4u);
  EXPECT_EQ(parsed.seed, 99u);
  ASSERT_EQ(parsed.snapshot.counters.size(), 1u);
  EXPECT_EQ(parsed.snapshot.counters[0].second, 123456789u);
  EXPECT_DOUBLE_EQ(parsed.snapshot.GaugeOr("agg.completeness_red", -1), 0.8125);
  // %.17g must round-trip doubles exactly.
  EXPECT_EQ(parsed.snapshot.GaugeOr("net.energy_total_j", -1),
            0.1234567890123456789);
  ASSERT_EQ(parsed.snapshot.histograms.size(), 1u);
  const HistogramData& hd = parsed.snapshot.histograms[0].second;
  EXPECT_EQ(hd.bounds, (std::vector<double>{64.0, 256.0}));
  EXPECT_EQ(hd.counts, (std::vector<uint64_t>{1, 1, 1}));
  EXPECT_EQ(hd.count, 3u);
  EXPECT_DOUBLE_EQ(hd.sum, 9210.0);
  ASSERT_EQ(parsed.snapshot.spans.size(), 2u);
  EXPECT_EQ(parsed.snapshot.spans[0].name, "ipda.slicing");
  EXPECT_EQ(parsed.snapshot.spans[0].begin_ns, 1000);
  EXPECT_EQ(parsed.snapshot.spans[1].end_ns, 3500);

  // Re-serializing the parsed snapshot reproduces the bytes: the format
  // is canonical, not merely parseable.
  EXPECT_EQ(SnapshotJsonLine(parsed.snapshot, 4, 99), line);
}

TEST(Snapshot, HeaderLineRoundTrip) {
  const std::string line = MetricsHeaderLine("ipda_sim", /*runs=*/12,
                                             /*seed=*/0xABC);
  ParsedLine parsed;
  std::string error;
  ASSERT_TRUE(ParseMetricsLine(line, parsed, &error)) << error;
  EXPECT_EQ(parsed.kind, "metrics_header");
  EXPECT_EQ(parsed.experiment, "ipda_sim");
  EXPECT_EQ(parsed.runs, 12u);
  EXPECT_EQ(parsed.seed, 0xABCu);
}

TEST(Snapshot, ParserRejectsMalformedLines) {
  ParsedLine parsed;
  std::string error;
  EXPECT_FALSE(ParseMetricsLine("", parsed, &error));
  EXPECT_FALSE(ParseMetricsLine("{}", parsed, &error));
  EXPECT_FALSE(ParseMetricsLine("{\"kind\":\"bogus\"}", parsed, &error));
  EXPECT_FALSE(
      ParseMetricsLine("{\"kind\":\"run_metrics\",\"run\":", parsed, &error));
  EXPECT_FALSE(error.empty());
}

TEST(Trace, SpansKeepRecordedOrder) {
  Trace trace;
  trace.Span("b", 10, 20);
  trace.Span("a", 0, 5);
  ASSERT_EQ(trace.spans().size(), 2u);
  EXPECT_EQ(trace.spans()[0].name, "b");
  EXPECT_EQ(trace.spans()[1].name, "a");
  trace.Clear();
  EXPECT_TRUE(trace.spans().empty());
}

}  // namespace
}  // namespace ipda::obs
