#include "attack/eavesdropper.h"

#include <gtest/gtest.h>

#include "agg/aggregate_function.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "crypto/link_security.h"
#include "util/random.h"

namespace ipda::attack {
namespace {

using agg::TreeColor;
using agg::Vector;

std::vector<crypto::Link> TopologyLinks(const net::Topology& topology) {
  std::vector<crypto::Link> links;
  for (net::NodeId a = 0; a < topology.node_count(); ++a) {
    for (net::NodeId b : topology.neighbors(a)) {
      if (a < b) links.emplace_back(a, b);
    }
  }
  return links;
}

// Hand-built scenario: node 5 is a leaf with l=2; slices go to red {1,2}
// and blue {3,4}.
class EavesdropperScenario : public ::testing::Test {
 protected:
  static constexpr size_t kNodes = 8;

  Eavesdropper MakeEve(std::vector<crypto::Link> broken_links) {
    std::vector<crypto::Link> links;
    std::vector<bool> broken;
    for (net::NodeId a = 0; a < kNodes; ++a) {
      for (net::NodeId b = static_cast<net::NodeId>(a + 1); b < kNodes;
           ++b) {
        links.emplace_back(a, b);
        bool is_broken = false;
        for (const auto& [x, y] : broken_links) {
          if ((x == a && y == b) || (x == b && y == a)) is_broken = true;
        }
        broken.push_back(is_broken);
      }
    }
    return Eavesdropper(kNodes, std::move(links), std::move(broken));
  }

  void FeedLeafSlices(Eavesdropper& eve) {
    auto observer = eve.Observer();
    // Red set sums to 10; blue set sums to 10.
    observer(5, 1, TreeColor::kRed, Vector{4.0});
    observer(5, 2, TreeColor::kRed, Vector{6.0});
    observer(5, 3, TreeColor::kBlue, Vector{-2.0});
    observer(5, 4, TreeColor::kBlue, Vector{12.0});
  }
};

TEST_F(EavesdropperScenario, NoBrokenLinksNoDisclosure) {
  Eavesdropper eve = MakeEve({});
  FeedLeafSlices(eve);
  const auto report = eve.Evaluate();
  EXPECT_EQ(report.disclosed_count, 0u);
  EXPECT_EQ(report.observed_count, 1u);
  EXPECT_EQ(report.disclosure_rate, 0.0);
}

TEST_F(EavesdropperScenario, PartialColorSetInsufficient) {
  // Only one of the two red slice links broken.
  Eavesdropper eve = MakeEve({{5, 1}});
  FeedLeafSlices(eve);
  EXPECT_EQ(eve.Evaluate().disclosed_count, 0u);
}

TEST_F(EavesdropperScenario, FullRedSetDisclosesLeaf) {
  Eavesdropper eve = MakeEve({{5, 1}, {5, 2}});
  FeedLeafSlices(eve);
  const auto report = eve.Evaluate();
  ASSERT_TRUE(report.disclosed[5]);
  EXPECT_EQ(report.disclosed_count, 1u);
  // Reconstructed value equals the true contribution 10.
  ASSERT_TRUE(report.reconstructed.count(5) > 0);
  EXPECT_DOUBLE_EQ(report.reconstructed.at(5)[0], 10.0);
}

TEST_F(EavesdropperScenario, FullBlueSetAlsoDiscloses) {
  Eavesdropper eve = MakeEve({{5, 3}, {5, 4}});
  FeedLeafSlices(eve);
  const auto report = eve.Evaluate();
  EXPECT_TRUE(report.disclosed[5]);
  EXPECT_DOUBLE_EQ(report.reconstructed.at(5)[0], 10.0);
}

TEST_F(EavesdropperScenario, MixedColorsDoNotCompose) {
  // One red link + one blue link: neither color set is complete.
  Eavesdropper eve = MakeEve({{5, 1}, {5, 3}});
  FeedLeafSlices(eve);
  EXPECT_EQ(eve.Evaluate().disclosed_count, 0u);
}

TEST_F(EavesdropperScenario, AggregatorKeptSliceNeedsIncomingLinks) {
  // Node 6 is a red aggregator: keeps one red slice, sends one red + two
  // blue. It also receives a slice from node 7.
  auto feed = [](Eavesdropper& eve) {
    auto observer = eve.Observer();
    observer(6, 6, TreeColor::kRed, Vector{3.0});   // Kept d_ii.
    observer(6, 1, TreeColor::kRed, Vector{5.0});
    observer(6, 3, TreeColor::kBlue, Vector{6.0});
    observer(6, 4, TreeColor::kBlue, Vector{2.0});
    observer(7, 6, TreeColor::kRed, Vector{1.0});   // Incoming to 6.
  };
  {
    // Breaking only the outgoing red link is NOT enough: the kept slice
    // needs the incoming link too.
    Eavesdropper eve = MakeEve({{6, 1}});
    feed(eve);
    EXPECT_FALSE(eve.Evaluate().disclosed[6]);
  }
  {
    // Outgoing red + all incoming: kept slice peeled, disclosure.
    Eavesdropper eve = MakeEve({{6, 1}, {7, 6}});
    feed(eve);
    const auto report = eve.Evaluate();
    EXPECT_TRUE(report.disclosed[6]);
    EXPECT_DOUBLE_EQ(report.reconstructed.at(6)[0], 8.0);
  }
  {
    // The other-color (blue) set avoids the kept slice entirely.
    Eavesdropper eve = MakeEve({{6, 3}, {6, 4}});
    feed(eve);
    const auto report = eve.Evaluate();
    EXPECT_TRUE(report.disclosed[6]);
    EXPECT_DOUBLE_EQ(report.reconstructed.at(6)[0], 8.0);
  }
}

TEST_F(EavesdropperScenario, LinkBrokenIsSymmetric) {
  Eavesdropper eve = MakeEve({{2, 5}});
  EXPECT_TRUE(eve.LinkBroken(5, 2));
  EXPECT_TRUE(eve.LinkBroken(2, 5));
  EXPECT_FALSE(eve.LinkBroken(1, 5));
}

TEST(EavesdropperEndToEnd, ReconstructionsMatchTrueContributions) {
  // Full protocol run; an adversary with px=0.5 must reconstruct exactly
  // the true COUNT contribution (1.0) for every disclosed node.
  agg::RunConfig config;
  config.deployment.node_count = 350;
  config.seed = 404;
  auto topology = agg::BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  auto links = TopologyLinks(*topology);
  util::Rng rng(9);
  auto compromise =
      crypto::UniformLinkCompromise(links.size(), 0.5, rng);
  std::vector<bool> broken(compromise.broken.begin(),
                           compromise.broken.end());
  Eavesdropper eve(topology->node_count(), links, broken);

  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);
  agg::IpdaConfig ipda;
  ipda.slice_range = 1.0;
  agg::IpdaRunHooks hooks;
  hooks.slice_observer = eve.Observer();
  auto result = agg::RunIpda(config, *function, *field, ipda, hooks);
  ASSERT_TRUE(result.ok());

  const auto report = eve.Evaluate();
  EXPECT_GT(report.observed_count, 300u);
  EXPECT_GT(report.disclosed_count, 0u);  // px=0.5 is a strong adversary.
  for (const auto& [node, value] : report.reconstructed) {
    ASSERT_EQ(value.size(), 1u);
    EXPECT_NEAR(value[0], 1.0, 1e-9) << "node " << node;
  }
}

TEST(EavesdropperEndToEnd, DisclosureRateGrowsWithPx) {
  agg::RunConfig config;
  config.deployment.node_count = 350;
  config.seed = 405;
  auto topology = agg::BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  auto links = TopologyLinks(*topology);
  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);

  double previous = -1.0;
  for (double px : {0.1, 0.4, 0.8}) {
    util::Rng rng(17);
    auto compromise =
        crypto::UniformLinkCompromise(links.size(), px, rng);
    std::vector<bool> broken(compromise.broken.begin(),
                             compromise.broken.end());
    Eavesdropper eve(topology->node_count(), links, broken);
    agg::IpdaConfig ipda;
    ipda.slice_range = 1.0;
    agg::IpdaRunHooks hooks;
    hooks.slice_observer = eve.Observer();
    auto result = agg::RunIpda(config, *function, *field, ipda, hooks);
    ASSERT_TRUE(result.ok());
    const double rate = eve.Evaluate().disclosure_rate;
    EXPECT_GT(rate, previous);
    previous = rate;
  }
  EXPECT_GT(previous, 0.3);  // px=0.8 discloses a lot.
}

TEST(EavesdropperEndToEnd, LowPxLowDisclosure) {
  // The paper's Fig. 5 regime: px = 0.05, l = 2 gives P_disclose well
  // under 5%.
  agg::RunConfig config;
  config.deployment.node_count = 400;
  config.seed = 406;
  auto topology = agg::BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  auto links = TopologyLinks(*topology);
  util::Rng rng(23);
  auto compromise =
      crypto::UniformLinkCompromise(links.size(), 0.05, rng);
  std::vector<bool> broken(compromise.broken.begin(),
                           compromise.broken.end());
  Eavesdropper eve(topology->node_count(), links, broken);
  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);
  agg::IpdaConfig ipda;
  ipda.slice_range = 1.0;
  agg::IpdaRunHooks hooks;
  hooks.slice_observer = eve.Observer();
  auto result = agg::RunIpda(config, *function, *field, ipda, hooks);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(eve.Evaluate().disclosure_rate, 0.05);
}

TEST(BrokenByColluders, IncidenceRule) {
  std::vector<crypto::Link> links{{0, 1}, {1, 2}, {2, 3}, {0, 3}};
  std::vector<bool> colluder{false, true, false, false};
  const auto broken = BrokenByColluders(links, colluder);
  EXPECT_EQ(broken,
            (std::vector<bool>{true, true, false, false}));
}

}  // namespace
}  // namespace ipda::attack
