// TreeBuilder (Phase I) state-machine tests with a hand-driven timer, no
// network involved.

#include "agg/ipda/tree_construction.h"

#include <functional>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

namespace ipda::agg {
namespace {

class TreeBuilderHarness {
 public:
  explicit TreeBuilderHarness(IpdaConfig config = {}, uint64_t seed = 1)
      : config_(config),
        builder_(/*self=*/10, &config_, util::Rng(seed),
                 [this](sim::SimTime delay, std::function<void()> fn) {
                   timers_.push_back({delay, std::move(fn)});
                 },
                 [this](const HelloMsg& hello) { joins_.push_back(hello); }) {
  }

  // Fires every pending timer (decide timers re-arm at most once here).
  void FireTimers() {
    auto timers = std::move(timers_);
    timers_.clear();
    for (auto& [delay, fn] : timers) fn();
  }

  IpdaConfig config_;
  std::vector<std::pair<sim::SimTime, std::function<void()>>> timers_;
  std::vector<HelloMsg> joins_;
  TreeBuilder builder_;
};

TEST(TreeBuilder, UndecidedUntilBothColorsHeard) {
  TreeBuilderHarness h;
  EXPECT_FALSE(h.builder_.decided());
  h.builder_.OnHello(1, {TreeColor::kRed, 1, std::nullopt});
  EXPECT_TRUE(h.timers_.empty());  // Only red heard: no decide timer.
  EXPECT_FALSE(h.builder_.covered());
  h.builder_.OnHello(2, {TreeColor::kBlue, 1, std::nullopt});
  EXPECT_TRUE(h.builder_.covered());
  ASSERT_EQ(h.timers_.size(), 1u);  // Timer armed.
  EXPECT_EQ(h.timers_[0].first, h.config_.decide_window);
  EXPECT_FALSE(h.builder_.decided());
  h.FireTimers();
  EXPECT_TRUE(h.builder_.decided());
}

TEST(TreeBuilder, BaseStationHelloCoversBothColors) {
  TreeBuilderHarness h;
  h.builder_.OnHello(0, {TreeColor::kBoth, 0, std::nullopt});
  EXPECT_TRUE(h.builder_.covered());
  h.FireTimers();
  EXPECT_TRUE(h.builder_.decided());
  // Default config: p=1, so the node must be an aggregator with the BS as
  // parent at hop 1.
  ASSERT_TRUE(h.builder_.role() == NodeRole::kRedAggregator ||
              h.builder_.role() == NodeRole::kBlueAggregator);
  EXPECT_EQ(h.builder_.parent(), 0u);
  EXPECT_EQ(h.builder_.hop(), 1u);
  ASSERT_EQ(h.joins_.size(), 1u);
  EXPECT_EQ(h.joins_[0].hop, 1u);
}

TEST(TreeBuilder, DefaultProbabilitiesAreHalf) {
  TreeBuilderHarness h;
  h.builder_.OnHello(1, {TreeColor::kRed, 1, std::nullopt});
  h.builder_.OnHello(2, {TreeColor::kBlue, 1, std::nullopt});
  EXPECT_DOUBLE_EQ(h.builder_.ProbRed(), 0.5);
  EXPECT_DOUBLE_EQ(h.builder_.ProbBlue(), 0.5);
}

TEST(TreeBuilder, AdaptiveProbabilitiesFollowEquationOne) {
  IpdaConfig config;
  config.adaptive_roles = true;
  config.k = 4;
  TreeBuilderHarness h(config);
  // 6 red + 2 blue HELLOs: total 8 > k, so p = 4/8 = 0.5;
  // pr = p * Nblue/total = 0.5 * 2/8 = 0.125; pb = 0.5 * 6/8 = 0.375.
  for (net::NodeId src = 1; src <= 6; ++src) {
    h.builder_.OnHello(src, {TreeColor::kRed, 1, std::nullopt});
  }
  h.builder_.OnHello(7, {TreeColor::kBlue, 1, std::nullopt});
  h.builder_.OnHello(8, {TreeColor::kBlue, 1, std::nullopt});
  EXPECT_DOUBLE_EQ(h.builder_.ProbRed(), 0.125);
  EXPECT_DOUBLE_EQ(h.builder_.ProbBlue(), 0.375);
}

TEST(TreeBuilder, AdaptiveSparseNeighborhoodForcesAggregator) {
  IpdaConfig config;
  config.adaptive_roles = true;
  config.k = 4;
  TreeBuilderHarness h(config);
  // Only 2 HELLOs (<= k): p = 1, split by balance: pr+pb = 1 -> no leaf.
  h.builder_.OnHello(1, {TreeColor::kRed, 1, std::nullopt});
  h.builder_.OnHello(2, {TreeColor::kBlue, 1, std::nullopt});
  EXPECT_DOUBLE_EQ(h.builder_.ProbRed() + h.builder_.ProbBlue(), 1.0);
  h.FireTimers();
  EXPECT_NE(h.builder_.role(), NodeRole::kLeaf);
}

TEST(TreeBuilder, AdaptiveDenseNeighborhoodProducesLeaves) {
  IpdaConfig config;
  config.adaptive_roles = true;
  config.k = 4;
  // With 20 HELLOs, p = 0.2: roughly 80% of draws become leaves. Run many
  // seeds and check both outcomes occur with sane frequency.
  size_t leaves = 0;
  const int trials = 200;
  for (int seed = 0; seed < trials; ++seed) {
    TreeBuilderHarness h(config, static_cast<uint64_t>(seed) + 1);
    for (net::NodeId src = 1; src <= 10; ++src) {
      h.builder_.OnHello(src, {TreeColor::kRed, 1, std::nullopt});
    }
    for (net::NodeId src = 11; src <= 20; ++src) {
      h.builder_.OnHello(src, {TreeColor::kBlue, 1, std::nullopt});
    }
    h.FireTimers();
    if (h.builder_.role() == NodeRole::kLeaf) ++leaves;
  }
  EXPECT_GT(leaves, trials / 2);
  EXPECT_LT(leaves, trials);
}

TEST(TreeBuilder, ParentIsLowestHopSameColor) {
  // Find a seed that decides red, then verify parent selection.
  for (uint64_t seed = 1; seed < 50; ++seed) {
    TreeBuilderHarness h(IpdaConfig{}, seed);
    h.builder_.OnHello(5, {TreeColor::kRed, 4, std::nullopt});
    h.builder_.OnHello(6, {TreeColor::kRed, 2, std::nullopt});
    h.builder_.OnHello(7, {TreeColor::kRed, 3, std::nullopt});
    h.builder_.OnHello(8, {TreeColor::kBlue, 1, std::nullopt});
    h.FireTimers();
    if (h.builder_.role() != NodeRole::kRedAggregator) continue;
    EXPECT_EQ(h.builder_.parent(), 6u);
    EXPECT_EQ(h.builder_.hop(), 3u);
    return;
  }
  FAIL() << "no seed decided red";
}

TEST(TreeBuilder, BlueParentIgnoresRedHellos) {
  for (uint64_t seed = 1; seed < 50; ++seed) {
    TreeBuilderHarness h(IpdaConfig{}, seed);
    h.builder_.OnHello(5, {TreeColor::kRed, 1, std::nullopt});   // Better hop, wrong color.
    h.builder_.OnHello(8, {TreeColor::kBlue, 6, std::nullopt});
    h.FireTimers();
    if (h.builder_.role() != NodeRole::kBlueAggregator) continue;
    EXPECT_EQ(h.builder_.parent(), 8u);
    EXPECT_EQ(h.builder_.hop(), 7u);
    return;
  }
  FAIL() << "no seed decided blue";
}

TEST(TreeBuilder, DuplicateHelloDoesNotDoubleCount) {
  TreeBuilderHarness h;
  h.builder_.OnHello(1, {TreeColor::kRed, 2, std::nullopt});
  h.builder_.OnHello(1, {TreeColor::kRed, 2, std::nullopt});
  h.builder_.OnHello(1, {TreeColor::kRed, 2, std::nullopt});
  EXPECT_EQ(h.builder_.hello_count(TreeColor::kRed), 1u);
}

TEST(TreeBuilder, DuplicateHelloKeepsBestHop) {
  for (uint64_t seed = 1; seed < 50; ++seed) {
    TreeBuilderHarness h(IpdaConfig{}, seed);
    h.builder_.OnHello(1, {TreeColor::kRed, 5, std::nullopt});
    h.builder_.OnHello(1, {TreeColor::kRed, 2, std::nullopt});  // Improved hop.
    h.builder_.OnHello(2, {TreeColor::kBlue, 1, std::nullopt});
    h.FireTimers();
    if (h.builder_.role() != NodeRole::kRedAggregator) continue;
    EXPECT_EQ(h.builder_.hop(), 3u);
    return;
  }
  FAIL() << "no seed decided red";
}

TEST(TreeBuilder, ConflictingColorsBlacklistSender) {
  TreeBuilderHarness h;
  h.builder_.OnHello(1, {TreeColor::kRed, 1, std::nullopt});
  EXPECT_EQ(h.builder_.hello_count(TreeColor::kRed), 1u);
  // Same node now claims blue: §III-B adversary. Remove it entirely.
  h.builder_.OnHello(1, {TreeColor::kBlue, 1, std::nullopt});
  EXPECT_EQ(h.builder_.hello_count(TreeColor::kRed), 0u);
  EXPECT_EQ(h.builder_.hello_count(TreeColor::kBlue), 0u);
  EXPECT_FALSE(h.builder_.covered());
  EXPECT_TRUE(h.builder_.AggregatorNeighbors(TreeColor::kRed).empty());
  EXPECT_TRUE(h.builder_.AggregatorNeighbors(TreeColor::kBlue).empty());
}

TEST(TreeBuilder, ConflictAfterTimerArmRearmsSafely) {
  TreeBuilderHarness h;
  h.builder_.OnHello(1, {TreeColor::kRed, 1, std::nullopt});
  h.builder_.OnHello(2, {TreeColor::kBlue, 1, std::nullopt});
  ASSERT_EQ(h.timers_.size(), 1u);
  // Blacklist the only blue sender before the timer fires.
  h.builder_.OnHello(2, {TreeColor::kRed, 1, std::nullopt});
  h.FireTimers();
  EXPECT_FALSE(h.builder_.decided());
  // Coverage restored by a fresh blue aggregator: decision proceeds.
  h.builder_.OnHello(3, {TreeColor::kBlue, 2, std::nullopt});
  h.FireTimers();
  EXPECT_TRUE(h.builder_.decided());
}

TEST(TreeBuilder, AggregatorNeighborsByColor) {
  TreeBuilderHarness h;
  h.builder_.OnHello(1, {TreeColor::kRed, 1, std::nullopt});
  h.builder_.OnHello(2, {TreeColor::kBlue, 1, std::nullopt});
  h.builder_.OnHello(3, {TreeColor::kRed, 2, std::nullopt});
  h.builder_.OnHello(0, {TreeColor::kBoth, 0, std::nullopt});
  const auto red = h.builder_.AggregatorNeighbors(TreeColor::kRed);
  const auto blue = h.builder_.AggregatorNeighbors(TreeColor::kBlue);
  EXPECT_EQ(red, (std::vector<net::NodeId>{1, 3, 0}));
  EXPECT_EQ(blue, (std::vector<net::NodeId>{2, 0}));
}

TEST(TreeBuilder, ForcedBaseStationNeverDecides) {
  TreeBuilderHarness h;
  h.builder_.ForceRole(NodeRole::kBaseStation);
  h.builder_.OnHello(1, {TreeColor::kRed, 1, std::nullopt});
  h.builder_.OnHello(2, {TreeColor::kBlue, 1, std::nullopt});
  EXPECT_TRUE(h.timers_.empty());
  EXPECT_EQ(h.builder_.role(), NodeRole::kBaseStation);
  EXPECT_EQ(h.builder_.hop(), 0u);
  EXPECT_TRUE(h.joins_.empty());
}

TEST(TreeBuilder, ExcludedNodeStaysOut) {
  TreeBuilderHarness h;
  h.builder_.ForceRole(NodeRole::kExcluded);
  h.builder_.OnHello(0, {TreeColor::kBoth, 0, std::nullopt});
  EXPECT_TRUE(h.timers_.empty());
  EXPECT_EQ(h.builder_.role(), NodeRole::kExcluded);
}

TEST(TreeBuilder, RoleDrawFrequenciesAreBalanced) {
  // Eq. (2): pr = pb = 0.5 — across seeds, red and blue should be roughly
  // even and leaves absent.
  size_t red = 0, blue = 0, leaf = 0;
  const int trials = 400;
  for (int seed = 0; seed < trials; ++seed) {
    TreeBuilderHarness h(IpdaConfig{}, static_cast<uint64_t>(seed) + 1000);
    h.builder_.OnHello(0, {TreeColor::kBoth, 0, std::nullopt});
    h.FireTimers();
    switch (h.builder_.role()) {
      case NodeRole::kRedAggregator:
        ++red;
        break;
      case NodeRole::kBlueAggregator:
        ++blue;
        break;
      default:
        ++leaf;
        break;
    }
  }
  EXPECT_EQ(leaf, 0u);
  EXPECT_NEAR(static_cast<double>(red) / trials, 0.5, 0.08);
  EXPECT_NEAR(static_cast<double>(blue) / trials, 0.5, 0.08);
}

}  // namespace
}  // namespace ipda::agg
