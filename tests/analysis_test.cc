// Closed-form analysis (§IV-A) against hand calculations, the paper's spot
// claims, and Monte-Carlo ground truth.

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/coverage.h"
#include "analysis/overhead.h"
#include "analysis/privacy.h"
#include "net/topology.h"
#include "util/random.h"

namespace ipda::analysis {
namespace {

TEST(Coverage, IsolationProbabilityHandChecked) {
  // d=2, pb=pr=0.5: isolated-from-red = 0.25, same for blue;
  // p_iso = 1 - 0.75^2 = 0.4375.
  EXPECT_NEAR(NodeIsolationProbability(2, 0.5, 0.5), 0.4375, 1e-12);
  // Degree 0: always isolated.
  EXPECT_DOUBLE_EQ(NodeIsolationProbability(0, 0.5, 0.5), 1.0);
  // Deterministic aggregators of one color only: red neighbors certain,
  // blue impossible.
  EXPECT_DOUBLE_EQ(NodeIsolationProbability(5, 0.0, 1.0), 1.0);
}

TEST(Coverage, IsolationDecreasesWithDegree) {
  double prev = 1.0;
  for (size_t d = 1; d <= 30; ++d) {
    const double p = NodeIsolationProbability(d, 0.5, 0.5);
    EXPECT_LT(p, prev);
    prev = p;
  }
  EXPECT_LT(prev, 1e-8);
}

TEST(Coverage, PaperSpotClaimReinterpreted) {
  // §IV-A-1 claims "Φ(G) ≥ 0.999 for N = 1000 and d = 10". Under the
  // paper's own Eq. (10) that is arithmetically impossible:
  // N·p_iso(10) ≈ 1.95, so the Markov bound is vacuous.
  const double literal = RegularCoverageLowerBound(1000, 10, 0.5, 0.5);
  EXPECT_LT(literal, 0.0);
  // The number the paper evidently computed is the expected covered
  // fraction, 1 − p_iso(10) ≈ 0.998.
  const double fraction = RegularExpectedCoveredFraction(10, 0.5, 0.5);
  EXPECT_GE(fraction, 0.998);
  EXPECT_LT(fraction, 1.0);
  // The all-nodes bound does reach 0.999-level at higher degree.
  EXPECT_GE(RegularCoverageLowerBound(1000, 21, 0.5, 0.5), 0.999);
}

TEST(Coverage, ExpectedFractionMatchesMonteCarlo) {
  auto ring = net::Topology::RegularRing(300, 8);
  ASSERT_TRUE(ring.ok());
  util::Rng rng(5);
  const auto sample = SimulateCoverage(*ring, 0.5, 0.5, 2000, rng);
  EXPECT_NEAR(sample.mean_covered_fraction,
              ExpectedCoveredFraction(*ring, 0.5, 0.5), 0.01);
}

TEST(Coverage, TopologyBoundMatchesRegularFormOnRing) {
  auto ring = net::Topology::RegularRing(100, 8);
  ASSERT_TRUE(ring.ok());
  EXPECT_NEAR(CoverageLowerBound(*ring, 0.5, 0.5),
              RegularCoverageLowerBound(100, 8, 0.5, 0.5), 1e-12);
}

TEST(Coverage, MonteCarloRespectsLowerBound) {
  auto ring = net::Topology::RegularRing(200, 10);
  ASSERT_TRUE(ring.ok());
  util::Rng rng(1);
  const auto sample = SimulateCoverage(*ring, 0.5, 0.5, 2000, rng);
  const double bound = CoverageLowerBound(*ring, 0.5, 0.5);
  EXPECT_GE(sample.phi + 0.02, bound);  // Markov bound holds (+noise).
  EXPECT_GT(sample.mean_covered_fraction, 0.99);
}

TEST(Coverage, MonteCarloMeanIsolatedMatchesExpectation) {
  // E[X] = Σ p_i exactly (indicators need not be independent).
  auto ring = net::Topology::RegularRing(150, 6);
  ASSERT_TRUE(ring.ok());
  util::Rng rng(2);
  const auto sample = SimulateCoverage(*ring, 0.5, 0.5, 4000, rng);
  double expectation = 0.0;
  for (net::NodeId id = 0; id < ring->node_count(); ++id) {
    expectation += NodeIsolationProbability(ring->degree(id), 0.5, 0.5);
  }
  EXPECT_NEAR(sample.mean_isolated, expectation,
              0.15 * expectation + 0.15);
}

TEST(Coverage, SparseGraphBoundGoesVacuous) {
  auto ring = net::Topology::RegularRing(1000, 2);
  ASSERT_TRUE(ring.ok());
  EXPECT_LT(CoverageLowerBound(*ring, 0.5, 0.5), 0.0);
}

TEST(Privacy, RegularFormulaPaperSpotClaim) {
  // §IV-A-3: l = 3, px = 0.1 → P_disclose ≈ 0.001 on a d-regular graph.
  const double p = RegularDisclosureProbability(0.1, 3);
  EXPECT_NEAR(p, 0.001, 2e-4);
}

TEST(Privacy, RegularFormulaHandChecked) {
  // l = 2, E[n_l] = 3: P = 1 - (1 - px^2)(1 - px^4).
  const double px = 0.1;
  const double expected =
      1.0 - (1.0 - std::pow(px, 2)) * (1.0 - std::pow(px, 4));
  EXPECT_NEAR(RegularDisclosureProbability(px, 2), expected, 1e-15);
}

TEST(Privacy, ExpectedIncomingLinksOnRegularGraph) {
  // d-regular: E[n_l(i)] = d * (2l-1)/d = 2l-1.
  auto ring = net::Topology::RegularRing(60, 12);
  ASSERT_TRUE(ring.ok());
  EXPECT_NEAR(ExpectedIncomingSliceLinks(*ring, 7, 2), 3.0, 1e-12);
  EXPECT_NEAR(ExpectedIncomingSliceLinks(*ring, 7, 3), 5.0, 1e-12);
}

TEST(Privacy, NodeFormulaMatchesRegularOnRing) {
  auto ring = net::Topology::RegularRing(60, 10);
  ASSERT_TRUE(ring.ok());
  EXPECT_NEAR(NodeDisclosureProbability(*ring, 5, 0.05, 2),
              RegularDisclosureProbability(0.05, 2), 1e-12);
  EXPECT_NEAR(AverageDisclosureProbability(*ring, 0.05, 2),
              RegularDisclosureProbability(0.05, 2), 1e-12);
}

TEST(Privacy, DisclosureMonotoneInPx) {
  auto ring = net::Topology::RegularRing(50, 8);
  ASSERT_TRUE(ring.ok());
  double prev = -1.0;
  for (double px = 0.01; px <= 0.2; px += 0.01) {
    const double p = AverageDisclosureProbability(*ring, px, 2);
    EXPECT_GT(p, prev);
    prev = p;
  }
}

TEST(Privacy, LargerSliceCountLowersDisclosure) {
  // Fig. 5's l=2 vs l=3 ordering.
  auto ring = net::Topology::RegularRing(50, 8);
  ASSERT_TRUE(ring.ok());
  for (double px : {0.02, 0.05, 0.1}) {
    EXPECT_GT(AverageDisclosureProbability(*ring, px, 2),
              AverageDisclosureProbability(*ring, px, 3));
  }
}

TEST(Privacy, RandomTopologyAverageExceedsRegular) {
  // The paper notes the random-graph average is larger than the regular-
  // graph value (degree variance hurts).
  util::Rng rng(3);
  net::DeploymentConfig config;
  config.node_count = 1000;
  auto topo = net::Topology::RandomGeometric(config, 50.0, rng);
  ASSERT_TRUE(topo.ok());
  for (double px : {0.05, 0.1}) {
    EXPECT_GT(AverageDisclosureProbability(*topo, px, 2),
              RegularDisclosureProbability(px, 2));
  }
}

TEST(Privacy, EdgeCases) {
  auto ring = net::Topology::RegularRing(20, 4);
  ASSERT_TRUE(ring.ok());
  EXPECT_DOUBLE_EQ(AverageDisclosureProbability(*ring, 0.0, 2), 0.0);
  EXPECT_DOUBLE_EQ(AverageDisclosureProbability(*ring, 1.0, 2), 1.0);
}

TEST(Overhead, MessageCountsPerPaper) {
  EXPECT_DOUBLE_EQ(TagMessagesPerNode(), 2.0);
  EXPECT_DOUBLE_EQ(IpdaMessagesPerNode(1), 3.0);
  EXPECT_DOUBLE_EQ(IpdaMessagesPerNode(2), 5.0);
  EXPECT_DOUBLE_EQ(IpdaMessagesPerNode(3), 7.0);
  EXPECT_DOUBLE_EQ(OverheadRatio(2), 2.5);   // Fig. 7 headline.
  EXPECT_DOUBLE_EQ(OverheadRatio(1), 1.5);
}

TEST(Overhead, ByteBreakdownConsistency) {
  const auto b = EstimateBytes(2, 1, true);
  EXPECT_GT(b.slice_frame, b.hello_frame);
  EXPECT_DOUBLE_EQ(
      b.per_node_ipda,
      b.hello_frame + 3.0 * b.slice_frame + b.aggregate_frame);
  EXPECT_DOUBLE_EQ(b.per_node_tag,
                   static_cast<double>(b.hello_frame + b.aggregate_frame));
  EXPECT_GT(b.byte_ratio, 1.5);
  EXPECT_LT(b.byte_ratio, 4.0);
}

TEST(Overhead, EncryptionAddsNonceBytes) {
  const auto plain = EstimateBytes(2, 1, false);
  const auto sealed = EstimateBytes(2, 1, true);
  EXPECT_EQ(sealed.slice_frame, plain.slice_frame + 8);
  EXPECT_EQ(sealed.hello_frame, plain.hello_frame);
}

TEST(Overhead, ByteRatioGrowsWithL) {
  double prev = 1.0;
  for (uint32_t l = 1; l <= 5; ++l) {
    const double r = EstimateBytes(l, 1, true).byte_ratio;
    EXPECT_GT(r, prev);
    prev = r;
  }
}

}  // namespace
}  // namespace ipda::analysis
