// Seed-sweep invariants for the SMART and CPDA baselines, mirroring
// ipda_property_test: conservation, no over-counting, determinism-free
// soundness across deployments.

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "agg/aggregate_function.h"
#include "agg/kipda/kipda_protocol.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "sim/simulator.h"

namespace ipda::agg {
namespace {

class SmartInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SmartInvariants, EndToEnd) {
  RunConfig config;
  config.deployment.node_count = 350;
  config.seed = GetParam();
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  SmartConfig smart;
  smart.slice_count = 3;
  smart.slice_range = 1.0;

  std::map<net::NodeId, double> per_node_sum;
  auto observer = [&](net::NodeId from, net::NodeId, const Vector& s) {
    per_node_sum[from] += s[0];
  };
  auto result = RunSmart(config, *function, *field, smart, observer);
  ASSERT_TRUE(result.ok());

  // Slice conservation per participant.
  for (const auto& [node, sum] : per_node_sum) {
    EXPECT_NEAR(sum, 1.0, 1e-9) << "node " << node;
  }
  EXPECT_EQ(per_node_sum.size(), result->stats.participants);
  // Never over-counts, and collected stays within truth.
  EXPECT_LE(result->stats.collected[0], result->true_acc[0] + 1e-6);
  // Joined dominates participants (you slice only inside the tree).
  EXPECT_GE(result->stats.nodes_joined, result->stats.participants);
  // Over-the-air slices = (J-1) per participant.
  EXPECT_EQ(result->stats.slices_sent, 2 * result->stats.participants);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SmartInvariants,
                         ::testing::Values(3, 6, 9, 12, 15, 18));

class CpdaInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CpdaInvariants, EndToEnd) {
  RunConfig config;
  config.deployment.node_count = 350;
  config.seed = GetParam();
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  CpdaConfig cpda;
  cpda.coeff_range = 10.0;
  auto result = RunCpda(config, *function, *field, cpda);
  ASSERT_TRUE(result.ok());
  const auto& stats = result->stats;

  // Interpolation is exact in expectation and clusters only ever drop
  // whole members: collected never exceeds the truth beyond round-off.
  EXPECT_LE(stats.collected[0], result->true_acc[0] + 0.01);
  // Census adds up: every joined sensor is clustered or unprotected.
  EXPECT_EQ(stats.clustered + stats.unprotected, stats.nodes_joined);
  // Solved + lost clusters never exceed the leader count.
  EXPECT_LE(stats.clusters_solved + stats.clusters_lost, stats.leaders);
  // Masked majority in a dense network.
  EXPECT_GT(stats.clustered, stats.unprotected);
  // Whatever was collected is a whole-ish number of COUNT contributions.
  EXPECT_NEAR(stats.collected[0], std::round(stats.collected[0]), 0.01);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CpdaInvariants,
                         ::testing::Values(4, 8, 16, 24, 32));

class KipdaInvariants : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KipdaInvariants, NeverOvershootsAndUsuallyExact) {
  RunConfig config;
  config.deployment.node_count = 350;
  config.seed = GetParam();
  auto topology = BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  sim::Simulator simulator(config.seed);
  net::Network network(&simulator, std::move(*topology));
  auto field = MakeUniformField(5.0, 95.0, GetParam());
  const auto readings = field->Sample(network.topology());
  KipdaProtocol protocol(&network);
  protocol.SetReadings(readings);
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  double true_max = 0.0;
  for (size_t i = 1; i < readings.size(); ++i) {
    true_max = std::max(true_max, readings[i]);
  }
  EXPECT_LE(protocol.FinalizedResult(), true_max + 1e-12);
  // Dense network: the max-holder joins and the answer is exact.
  if (protocol.stats().nodes_joined >= 345) {
    EXPECT_DOUBLE_EQ(protocol.FinalizedResult(), true_max);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KipdaInvariants,
                         ::testing::Values(5, 10, 20, 40));

}  // namespace
}  // namespace ipda::agg
