#include "net/network.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"
#include "util/bytes.h"

namespace ipda::net {
namespace {

Topology SquareTopology() {
  // Unit square, everyone in range of everyone.
  auto topo = Topology::Build({{0, 0}, {10, 0}, {0, 10}, {10, 10}}, 50.0);
  return std::move(*topo);
}

TEST(Network, WiresOneNodePerVertex) {
  sim::Simulator simulator(1);
  Network network(&simulator, SquareTopology());
  EXPECT_EQ(network.size(), 4u);
  for (NodeId id = 0; id < 4; ++id) {
    EXPECT_EQ(network.node(id).id(), id);
  }
  EXPECT_TRUE(network.base_station().IsBaseStation());
  EXPECT_FALSE(network.node(1).IsBaseStation());
}

TEST(Network, BroadcastHelperReachesAllNeighbors) {
  sim::Simulator simulator(2);
  Network network(&simulator, SquareTopology());
  size_t received = 0;
  for (NodeId id = 1; id < 4; ++id) {
    network.node(id).SetReceiveHandler(
        [&](const Packet& packet) {
          EXPECT_EQ(packet.type, PacketType::kQuery);
          EXPECT_EQ(packet.src, 0u);
          ++received;
        });
  }
  network.node(0).Broadcast(PacketType::kQuery, util::Bytes{1, 2, 3});
  simulator.RunUntil(sim::Seconds(1));
  EXPECT_EQ(received, 3u);
}

TEST(Network, UnicastHelperTargetsOneNode) {
  sim::Simulator simulator(3);
  Network network(&simulator, SquareTopology());
  std::vector<NodeId> receivers;
  for (NodeId id = 0; id < 4; ++id) {
    network.node(id).SetReceiveHandler(
        [&receivers, id](const Packet&) { receivers.push_back(id); });
  }
  network.node(1).Unicast(3, PacketType::kControl, util::Bytes{9});
  simulator.RunUntil(sim::Seconds(1));
  ASSERT_EQ(receivers.size(), 1u);
  EXPECT_EQ(receivers[0], 3u);
}

TEST(Network, PerNodeRngStreamsDiffer) {
  sim::Simulator simulator(4);
  Network network(&simulator, SquareTopology());
  EXPECT_NE(network.node(1).rng().Fork("x").NextUint64(),
            network.node(2).rng().Fork("x").NextUint64());
}

TEST(Network, PerNodeRngStreamsReproducible) {
  sim::Simulator a(5), b(5);
  Network na(&a, SquareTopology());
  Network nb(&b, SquareTopology());
  EXPECT_EQ(na.node(2).rng().Fork("y").NextUint64(),
            nb.node(2).rng().Fork("y").NextUint64());
}

TEST(Network, CountersBoardSharedWithChannel) {
  sim::Simulator simulator(6);
  Network network(&simulator, SquareTopology());
  network.node(0).Broadcast(PacketType::kHello, util::Bytes{});
  simulator.RunUntil(sim::Seconds(1));
  EXPECT_EQ(network.counters().at(0).frames_sent, 1u);
  EXPECT_EQ(network.counters().Totals().frames_sent, 1u);
  network.counters().Reset();
  EXPECT_EQ(network.counters().Totals().frames_sent, 0u);
}

TEST(NodeCounters, AccumulateOperator) {
  NodeCounters a;
  a.frames_sent = 2;
  a.bytes_sent = 100;
  a.mac_drops = 1;
  NodeCounters b;
  b.frames_sent = 3;
  b.bytes_sent = 50;
  b.frames_collided = 7;
  a += b;
  EXPECT_EQ(a.frames_sent, 5u);
  EXPECT_EQ(a.bytes_sent, 150u);
  EXPECT_EQ(a.frames_collided, 7u);
  EXPECT_EQ(a.mac_drops, 1u);
}

TEST(Packet, SizeAndBroadcastPredicate) {
  Packet p;
  EXPECT_TRUE(p.IsBroadcast());
  EXPECT_EQ(p.size_bytes(), kFrameHeaderBytes);
  p.dst = 4;
  p.payload.assign(10, 0);
  EXPECT_FALSE(p.IsBroadcast());
  EXPECT_EQ(p.size_bytes(), kFrameHeaderBytes + 10);
}

TEST(Packet, TypeNames) {
  EXPECT_EQ(PacketTypeName(PacketType::kHello), "HELLO");
  EXPECT_EQ(PacketTypeName(PacketType::kSlice), "SLICE");
  EXPECT_EQ(PacketTypeName(PacketType::kAggregate), "AGGREGATE");
  EXPECT_EQ(PacketTypeName(PacketType::kAck), "ACK");
}

}  // namespace
}  // namespace ipda::net
