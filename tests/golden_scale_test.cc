// City-scale golden fixtures (DESIGN.md §13): N=2000 rounds at the
// paper's deployment density, single-sink and 4-sink sharded, must
// reproduce tests/golden/ipda_n2000*.csv byte for byte — and produce the
// SAME bytes whether the runs execute on 1 engine worker or 8. This pins
// the spatial-hash build, the SoA node state, and the shard merge to the
// engine's jobs-independence contract at a size where the old O(N²)
// paths would actually matter.
//
// Regenerate after an intentional behavior change with
//   IPDA_UPDATE_GOLDEN=1 ./tests/golden_scale_test

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "agg/aggregate_function.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "agg/shard/sharded.h"
#include "exp/engine.h"

#ifndef IPDA_GOLDEN_DIR
#error "IPDA_GOLDEN_DIR must point at tests/golden"
#endif

namespace ipda {
namespace {

constexpr size_t kNodes = 2000;
constexpr uint64_t kSeeds[] = {1, 2};

// Constant density: the paper deploys 400 nodes on a 400 m square, so
// N=2000 gets side 400·√(N/400) ≈ 894.4 m.
double AreaSide() {
  return 400.0 * std::sqrt(static_cast<double>(kNodes) / 400.0);
}

agg::RunConfig ScaleConfig(uint64_t seed) {
  agg::RunConfig config;
  config.deployment.node_count = kNodes;
  config.deployment.area = net::Area{AreaSide(), AreaSide()};
  config.seed = seed;
  return config;
}

// One run → one CSV row; engine-mapped over the seeds so the jobs 1 vs 8
// comparison exercises real work stealing.
std::string TraceRows(exp::Engine& engine, size_t sinks) {
  auto function = agg::MakeSum();
  auto field = agg::MakeUniformField(15.0, 30.0, 42);
  const size_t runs = std::size(kSeeds);
  const std::vector<std::string> rows = engine.Map<std::string>(
      runs, [&](size_t i) -> std::string {
        agg::RunConfig config = ScaleConfig(kSeeds[i]);
        char buf[256];
        if (sinks <= 1) {
          auto run = agg::RunIpda(config, *function, *field);
          if (!run.ok()) return "run failed: " + run.status().ToString();
          std::snprintf(
              buf, sizeof(buf), "%llu,%.6f,%.6f,%.6f,%d,%d,%zu,%llu\n",
              static_cast<unsigned long long>(kSeeds[i]), run->result,
              function->Finalize(run->true_acc), run->accuracy,
              run->stats.decision.accepted ? 1 : 0,
              run->stats.degraded ? 1 : 0, run->stats.participants,
              static_cast<unsigned long long>(run->traffic.bytes_sent));
        } else {
          agg::ShardedConfig sharded;
          sharded.sinks = sinks;
          auto run =
              agg::RunShardedIpda(config, *function, *field, {}, sharded);
          if (!run.ok()) return "run failed: " + run.status().ToString();
          size_t participants = 0;
          for (const agg::ShardOutcome& s : run->shards) {
            participants += s.stats.participants;
          }
          std::snprintf(
              buf, sizeof(buf), "%llu,%.6f,%.6f,%.6f,%d,%d,%zu,%llu\n",
              static_cast<unsigned long long>(kSeeds[i]), run->result,
              function->Finalize(run->true_acc), run->accuracy,
              run->decision.accepted ? 1 : 0, run->degraded ? 1 : 0,
              participants,
              static_cast<unsigned long long>(run->traffic.bytes_sent));
        }
        return std::string(buf);
      });
  std::string csv =
      "seed,result,truth,accuracy,accepted,degraded,participants,"
      "bytes_sent\n";
  for (const std::string& row : rows) csv += row;
  return csv;
}

std::string JobsIndependentTrace(size_t sinks) {
  exp::Engine one(1);
  exp::Engine eight(8);
  const std::string serial = TraceRows(one, sinks);
  const std::string parallel = TraceRows(eight, sinks);
  EXPECT_EQ(serial, parallel)
      << "jobs=1 and jobs=8 diverged at sinks=" << sinks
      << " — a run is not shared-nothing";
  return serial;
}

void CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = std::string(IPDA_GOLDEN_DIR) + "/" + name;
  if (std::getenv("IPDA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    ASSERT_TRUE(out.good()) << "write failed for " << path;
    GTEST_SKIP() << "golden updated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — regenerate with IPDA_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "trace drifted from " << path
      << " — if the change is intentional, regenerate with "
         "IPDA_UPDATE_GOLDEN=1 and commit the diff";
}

TEST(GoldenScale, IpdaN2000SingleSink) {
  CheckGolden("ipda_n2000.csv", JobsIndependentTrace(/*sinks=*/1));
}

TEST(GoldenScale, IpdaN2000FourSinks) {
  CheckGolden("ipda_n2000_s4.csv", JobsIndependentTrace(/*sinks=*/4));
}

}  // namespace
}  // namespace ipda
