#include "attack/collusion.h"

#include <gtest/gtest.h>

#include "agg/aggregate_function.h"
#include "agg/reading.h"
#include "agg/runner.h"

namespace ipda::attack {
namespace {

using agg::TreeColor;
using agg::Vector;

TEST(SampleColluders, SizeRangeAndDeterminism) {
  util::Rng a(1), b(1);
  const auto s1 = SampleColluders(100, 10, a);
  const auto s2 = SampleColluders(100, 10, b);
  EXPECT_EQ(s1, s2);
  EXPECT_EQ(s1.size(), 10u);
  for (net::NodeId id : s1) {
    EXPECT_GE(id, 1u);  // Base station is never a colluder.
    EXPECT_LT(id, 100u);
  }
}

TEST(SampleColluders, CapsAtSensorCount) {
  util::Rng rng(2);
  EXPECT_EQ(SampleColluders(5, 100, rng).size(), 4u);
  EXPECT_TRUE(SampleColluders(1, 3, rng).empty());
}

TEST(CollusionEavesdropper, MoreColludersMoreDisclosure) {
  agg::RunConfig config;
  config.deployment.node_count = 400;
  config.seed = 808;
  auto topology = agg::BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);
  agg::IpdaConfig ipda;
  ipda.slice_range = 1.0;

  double previous = -1.0;
  for (size_t colluders : {5u, 40u, 150u}) {
    util::Rng rng(3);
    CollusionConfig cfg;
    cfg.colluders =
        SampleColluders(topology->node_count(), colluders, rng);
    auto eve = MakeCollusionEavesdropper(*topology, cfg);
    agg::IpdaRunHooks hooks;
    hooks.slice_observer = eve->Observer();
    auto result = agg::RunIpda(config, *function, *field, ipda, hooks);
    ASSERT_TRUE(result.ok());
    const double rate = eve->Evaluate().disclosure_rate;
    EXPECT_GE(rate, previous);
    previous = rate;
  }
  EXPECT_GT(previous, 0.1);  // 150/400 colluders see plenty.
}

TEST(CollusionEavesdropper, FewColludersDiscloseLittle) {
  agg::RunConfig config;
  config.deployment.node_count = 400;
  config.seed = 809;
  auto topology = agg::BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  util::Rng rng(4);
  CollusionConfig cfg;
  cfg.colluders = SampleColluders(topology->node_count(), 4, rng);
  auto eve = MakeCollusionEavesdropper(*topology, cfg);
  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);
  agg::IpdaConfig ipda;
  ipda.slice_range = 1.0;
  agg::IpdaRunHooks hooks;
  hooks.slice_observer = eve->Observer();
  auto result = agg::RunIpda(config, *function, *field, ipda, hooks);
  ASSERT_TRUE(result.ok());
  // l=2 requires an attacker to own all slice links of one color: with 4
  // colluders among ~20-neighbor nodes this is rare.
  EXPECT_LT(eve->Evaluate().disclosure_rate, 0.05);
}

TEST(CoordinatedPollution, MatchingDeltasEvadeThCheck) {
  // The paper's §VI open problem: colluders on both trees injecting the
  // same delta defeat the redundancy check.
  agg::RunConfig config;
  config.deployment.node_count = 400;
  config.seed = 810;
  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);
  agg::IpdaConfig ipda;
  ipda.slice_range = 1.0;

  // Enough colluders that both trees almost surely contain one.
  util::Rng rng(5);
  CollusionConfig cfg;
  cfg.colluders = SampleColluders(400, 30, rng);
  auto attack = MakeCoordinatedPollution(cfg, 40.0);
  agg::IpdaRunHooks hooks;
  hooks.pollution = attack.hook;
  auto result = agg::RunIpda(config, *function, *field, ipda, hooks);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(*attack.hit_red);
  ASSERT_TRUE(*attack.hit_blue);
  // Both totals moved by +40 together: the base station is fooled.
  EXPECT_TRUE(result->stats.decision.accepted);
  EXPECT_GT(result->accuracy, 1.05);  // Result is silently wrong.
}

TEST(CoordinatedPollution, OneTreeOnlyStillDetected) {
  // If the colluder set happens to sit on a single tree, coordination
  // buys nothing: the trees disagree as usual.
  agg::RunConfig config;
  config.deployment.node_count = 400;
  config.seed = 811;
  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);
  agg::IpdaConfig ipda;
  ipda.slice_range = 1.0;

  // Find a run where only one tree was hit by using a single colluder.
  CollusionConfig cfg;
  cfg.colluders = {42};
  auto attack = MakeCoordinatedPollution(cfg, 40.0);
  agg::IpdaRunHooks hooks;
  hooks.pollution = attack.hook;
  auto result = agg::RunIpda(config, *function, *field, ipda, hooks);
  ASSERT_TRUE(result.ok());
  if (*attack.hit_red != *attack.hit_blue) {
    EXPECT_FALSE(result->stats.decision.accepted);
  }
}

TEST(CoordinatedPollution, InjectsExactlyOncePerTree) {
  CollusionConfig cfg;
  cfg.colluders = {1, 2, 3};
  auto attack = MakeCoordinatedPollution(cfg, 10.0);
  Vector a{0.0}, b{0.0}, c{0.0};
  attack.hook(1, TreeColor::kRed, a);
  attack.hook(2, TreeColor::kRed, b);  // Second red colluder: no-op.
  attack.hook(3, TreeColor::kBlue, c);
  EXPECT_EQ(a[0], 10.0);
  EXPECT_EQ(b[0], 0.0);
  EXPECT_EQ(c[0], 10.0);
  EXPECT_TRUE(*attack.hit_red);
  EXPECT_TRUE(*attack.hit_blue);
}

TEST(CoordinatedPollution, NonColludersUntouched) {
  CollusionConfig cfg;
  cfg.colluders = {9};
  auto attack = MakeCoordinatedPollution(cfg, 10.0);
  Vector v{5.0};
  attack.hook(3, TreeColor::kRed, v);
  EXPECT_EQ(v[0], 5.0);
  EXPECT_FALSE(*attack.hit_red);
}

}  // namespace
}  // namespace ipda::attack
