#include "agg/ipda/base_station.h"

#include <gtest/gtest.h>

#include "agg/ipda/config.h"

namespace ipda::agg {
namespace {

TEST(BaseStation, AgreementAccepted) {
  BaseStationAccumulator acc(1);
  acc.Add(TreeColor::kRed, {100.0});
  acc.Add(TreeColor::kBlue, {100.0});
  const auto decision = acc.Decide(5.0);
  EXPECT_TRUE(decision.accepted);
  EXPECT_EQ(decision.max_component_diff, 0.0);
  EXPECT_EQ(decision.Agreed(), Vector{100.0});
}

TEST(BaseStation, SmallLossWithinThresholdAccepted) {
  BaseStationAccumulator acc(1);
  acc.Add(TreeColor::kRed, {100.0});
  acc.Add(TreeColor::kBlue, {96.0});
  const auto decision = acc.Decide(5.0);
  EXPECT_TRUE(decision.accepted);
  EXPECT_DOUBLE_EQ(decision.max_component_diff, 4.0);
  EXPECT_EQ(decision.Agreed(), Vector{98.0});
}

TEST(BaseStation, PollutionBeyondThresholdRejected) {
  BaseStationAccumulator acc(1);
  acc.Add(TreeColor::kRed, {200.0});
  acc.Add(TreeColor::kBlue, {100.0});
  EXPECT_FALSE(acc.Decide(5.0).accepted);
}

TEST(BaseStation, BoundaryExactlyThresholdAccepted) {
  BaseStationAccumulator acc(1);
  acc.Add(TreeColor::kRed, {105.0});
  acc.Add(TreeColor::kBlue, {100.0});
  EXPECT_TRUE(acc.Decide(5.0).accepted);
  EXPECT_FALSE(acc.Decide(4.999).accepted);
}

TEST(BaseStation, AccumulatesIncrementally) {
  BaseStationAccumulator acc(2);
  acc.Add(TreeColor::kRed, {1.0, 10.0});
  acc.Add(TreeColor::kRed, {2.0, 20.0});
  acc.Add(TreeColor::kBlue, {3.0, 30.0});
  EXPECT_EQ(acc.acc(TreeColor::kRed), (Vector{3.0, 30.0}));
  EXPECT_EQ(acc.acc(TreeColor::kBlue), (Vector{3.0, 30.0}));
}

TEST(BaseStation, MultiComponentDiffUsesMax) {
  BaseStationAccumulator acc(3);
  acc.Add(TreeColor::kRed, {10.0, 20.0, 30.0});
  acc.Add(TreeColor::kBlue, {10.0, 27.0, 29.0});
  const auto decision = acc.Decide(5.0);
  EXPECT_DOUBLE_EQ(decision.max_component_diff, 7.0);
  EXPECT_FALSE(decision.accepted);
}

TEST(BaseStation, NegativePollutionAlsoCaught) {
  BaseStationAccumulator acc(1);
  acc.Add(TreeColor::kRed, {100.0});
  acc.Add(TreeColor::kBlue, {160.0});
  EXPECT_FALSE(acc.Decide(5.0).accepted);
  EXPECT_DOUBLE_EQ(acc.Decide(5.0).max_component_diff, 60.0);
}

TEST(BaseStation, ResetClearsBothTrees) {
  BaseStationAccumulator acc(1);
  acc.Add(TreeColor::kRed, {42.0});
  acc.Add(TreeColor::kBlue, {17.0});
  acc.Reset();
  EXPECT_EQ(acc.acc(TreeColor::kRed), Vector{0.0});
  EXPECT_EQ(acc.acc(TreeColor::kBlue), Vector{0.0});
  EXPECT_TRUE(acc.Decide(0.0).accepted);
}

TEST(BaseStation, ZeroThresholdDemandsExactAgreement) {
  BaseStationAccumulator acc(1);
  acc.Add(TreeColor::kRed, {50.0});
  acc.Add(TreeColor::kBlue, {50.0});
  EXPECT_TRUE(acc.Decide(0.0).accepted);
  acc.Add(TreeColor::kBlue, {1e-9});
  EXPECT_FALSE(acc.Decide(0.0).accepted);
}

TEST(BaseStation, AddingBothColorAborts) {
  BaseStationAccumulator acc(1);
  EXPECT_DEATH(acc.Add(TreeColor::kBoth, {1.0}), "CHECK failed");
}

TEST(IpdaConfigValidation, CatchesBadParameters) {
  IpdaConfig config;
  EXPECT_TRUE(ValidateIpdaConfig(config).ok());
  config.slice_count = 0;
  EXPECT_FALSE(ValidateIpdaConfig(config).ok());
  config = IpdaConfig{};
  config.k = 1;
  EXPECT_FALSE(ValidateIpdaConfig(config).ok());
  config = IpdaConfig{};
  config.threshold = -1.0;
  EXPECT_FALSE(ValidateIpdaConfig(config).ok());
  config = IpdaConfig{};
  config.slice_range = 0.0;
  EXPECT_FALSE(ValidateIpdaConfig(config).ok());
  config = IpdaConfig{};
  config.max_depth = 0;
  EXPECT_FALSE(ValidateIpdaConfig(config).ok());
}

TEST(IpdaConfigTiming, PhasesAreOrdered) {
  IpdaConfig config;
  EXPECT_GT(IpdaSliceStart(config), 0);
  EXPECT_GT(IpdaReportStart(config), IpdaSliceStart(config));
  EXPECT_GT(IpdaDuration(config), IpdaReportStart(config));
}

}  // namespace
}  // namespace ipda::agg
