// Determinism and acceptance tests for the out-of-core aggregation
// pipeline (DESIGN.md §16): PartialAggStore must emit the identical
// byte sequence for ANY memory budget and ANY producer interleaving,
// and RunMetricsReport built on it must print byte-identical reports
// from a 4 KiB budget up to unlimited — including over a >=100k-record
// journal under the 64 MiB acceptance budget.

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "exp/agg_store.h"
#include "exp/report.h"
#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "util/io.h"

namespace ipda::exp {
namespace {

struct Observation {
  std::string key;
  uint64_t seq = 0;
  double value = 0.0;
};

std::vector<Observation> RandomObservations(size_t n, size_t keys,
                                            uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-100.0, 100.0);
  std::vector<Observation> obs(n);
  for (size_t i = 0; i < n; ++i) {
    // Key names chosen so intern-id order (arrival) disagrees with
    // lexicographic order: the canonical sort must use the strings.
    obs[i].key = "cell=" + std::to_string(rng() % keys) + "\x1f" +
                 (rng() % 2 == 0 ? "zeta" : "alpha");
    obs[i].seq = rng() % (n / 2);
    obs[i].value = dist(rng);
  }
  return obs;
}

// Serializes the full emission sequence; byte equality of two digests
// means the downstream fold sees the identical Add sequence.
std::string Drain(PartialAggStore& store) {
  std::string digest;
  const util::Status status = store.ForEachSorted(
      [&digest](std::string_view key, uint64_t seq, double value) {
        digest.append(key);
        digest.push_back('|');
        digest.append(std::to_string(seq));
        digest.push_back('|');
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.17g", value);
        digest.append(buf);
        digest.push_back('\n');
      });
  EXPECT_TRUE(status.ok()) << status.ToString();
  return digest;
}

std::string ReferenceDigest(const std::vector<Observation>& obs) {
  AggStoreOptions options;  // Unlimited, single-threaded: the oracle.
  PartialAggStore store(options);
  for (const Observation& o : obs) {
    const util::Status status = store.Add(o.key, o.seq, o.value);
    EXPECT_TRUE(status.ok()) << status.ToString();
    if (!status.ok()) return std::string();
  }
  return Drain(store);
}

TEST(PartialAggStoreTest, UnboundedEmitsCanonicalOrder) {
  AggStoreOptions options;
  PartialAggStore store(options);
  // Interned in reverse-lexicographic order on purpose.
  ASSERT_TRUE(store.Add("zz", 0, 1.0).ok());
  ASSERT_TRUE(store.Add("aa", 7, 2.0).ok());
  ASSERT_TRUE(store.Add("aa", 3, 4.0).ok());
  ASSERT_TRUE(store.Add("mm", 1, 3.0).ok());
  ASSERT_TRUE(store.Add("aa", 3, -1.0).ok());  // Same key+seq: value order.
  std::vector<std::string> seen;
  const util::Status status = store.ForEachSorted(
      [&seen](std::string_view key, uint64_t seq, double value) {
        seen.push_back(std::string(key) + "/" + std::to_string(seq) + "/" +
                       std::to_string(value));
      });
  ASSERT_TRUE(status.ok()) << status.ToString();
  const std::vector<std::string> want = {
      "aa/3/-1.000000", "aa/3/4.000000", "aa/7/2.000000", "mm/1/3.000000",
      "zz/0/1.000000"};
  EXPECT_EQ(seen, want);
  const PartialAggStore::Stats stats = store.stats();
  EXPECT_EQ(stats.keys, 3u);
  EXPECT_EQ(stats.entries, 5u);
  EXPECT_EQ(stats.spill_runs, 0u);
  EXPECT_EQ(stats.spilled_entries, 0u);
}

TEST(PartialAggStoreTest, ByteIdenticalAtEveryBudget) {
  const auto obs = RandomObservations(20000, 37, 0xE0);
  const std::string want = ReferenceDigest(obs);
  ASSERT_FALSE(want.empty());
  for (uint64_t budget :
       {uint64_t{4} << 10, uint64_t{16} << 10, uint64_t{64} << 10,
        uint64_t{1} << 20}) {
    AggStoreOptions options;
    options.memory_budget_bytes = budget;
    PartialAggStore store(options);
    for (const Observation& o : obs) {
      ASSERT_TRUE(store.Add(o.key, o.seq, o.value).ok());
    }
    const PartialAggStore::Stats stats = store.stats();
    EXPECT_EQ(stats.entries, obs.size());
    EXPECT_LE(stats.peak_buffer_bytes, budget + sizeof(uint64_t) * 3)
        << "budget " << budget;
    if (budget <= (64u << 10)) {
      EXPECT_GT(stats.spill_runs, 0u) << "budget " << budget;
      EXPECT_GT(stats.spilled_entries, 0u) << "budget " << budget;
    }
    EXPECT_EQ(Drain(store), want) << "budget " << budget;
  }
}

TEST(PartialAggStoreTest, ByteIdenticalUnderConcurrentProducers) {
  const auto obs = RandomObservations(24000, 23, 0xE1);
  const std::string want = ReferenceDigest(obs);
  ASSERT_FALSE(want.empty());
  for (size_t threads : {2, 8}) {
    AggStoreOptions options;
    options.memory_budget_bytes = 8 << 10;  // Spills mid-stream.
    PartialAggStore store(options);
    std::vector<std::thread> pool;
    for (size_t t = 0; t < threads; ++t) {
      pool.emplace_back([&store, &obs, t, threads]() {
        for (size_t i = t; i < obs.size(); i += threads) {
          const util::Status status =
              store.Add(obs[i].key, obs[i].seq, obs[i].value);
          ASSERT_TRUE(status.ok()) << status.ToString();
        }
      });
    }
    for (std::thread& t : pool) t.join();
    EXPECT_EQ(store.stats().entries, obs.size());
    EXPECT_EQ(Drain(store), want) << threads << " threads";
  }
}

TEST(PartialAggStoreTest, CollapsesRunsBeyondMergeFanIn) {
  // 1 KiB budget and 24-byte entries: a spill every ~43 adds, so 20k
  // observations produce ~470 run files — far past the 64-run fan-in
  // cap, forcing multiple collapse passes in ForEachSorted.
  const auto obs = RandomObservations(20000, 11, 0xE2);
  const std::string want = ReferenceDigest(obs);
  ASSERT_FALSE(want.empty());
  AggStoreOptions options;
  options.memory_budget_bytes = 1 << 10;
  PartialAggStore store(options);
  for (const Observation& o : obs) {
    ASSERT_TRUE(store.Add(o.key, o.seq, o.value).ok());
  }
  EXPECT_GT(store.stats().spill_runs, 64u);
  EXPECT_EQ(Drain(store), want);
}

TEST(PartialAggStoreTest, CallerProvidedSpillDirIsUsedAndCleaned) {
  const auto dir = util::MakeTempDir("ipda-agg-test-");
  ASSERT_TRUE(dir.ok()) << dir.status().ToString();
  {
    AggStoreOptions options;
    options.memory_budget_bytes = 1 << 10;
    options.spill_dir = *dir;
    PartialAggStore store(options);
    for (const auto& o : RandomObservations(5000, 7, 0xE3)) {
      ASSERT_TRUE(store.Add(o.key, o.seq, o.value).ok());
    }
    EXPECT_GT(store.stats().spill_runs, 0u);
    size_t emitted = 0;
    ASSERT_TRUE(store
                    .ForEachSorted([&emitted](std::string_view, uint64_t,
                                              double) { ++emitted; })
                    .ok());
    EXPECT_EQ(emitted, 5000u);
  }
  // Run files are gone; the caller's directory itself survives.
  EXPECT_EQ(::remove(dir->c_str()), 0) << "spill dir not empty";
}

TEST(PartialAggStoreTest, SingleShotContract) {
  AggStoreOptions options;
  PartialAggStore store(options);
  ASSERT_TRUE(store.Add("k", 0, 1.0).ok());
  ASSERT_TRUE(
      store.ForEachSorted([](std::string_view, uint64_t, double) {}).ok());
  EXPECT_FALSE(store.Add("k", 1, 2.0).ok());
  EXPECT_FALSE(
      store.ForEachSorted([](std::string_view, uint64_t, double) {}).ok());
}

// ---- RunMetricsReport ----------------------------------------------------

struct ReportResult {
  int code = -1;
  std::string out;
  std::string err;
};

std::string SlurpAndClose(std::FILE* f) {
  std::fflush(f);
  const long size = std::ftell(f);
  std::rewind(f);
  std::string text(static_cast<size_t>(size), '\0');
  const size_t read = std::fread(text.data(), 1, text.size(), f);
  text.resize(read);
  std::fclose(f);
  return text;
}

ReportResult RunReport(const std::string& path,
                       const MetricsReportOptions& options) {
  std::FILE* out = std::tmpfile();
  std::FILE* err = std::tmpfile();
  ReportResult result;
  result.code = RunMetricsReport(path, options, out, err);
  result.out = SlurpAndClose(out);
  result.err = SlurpAndClose(err);
  return result;
}

// Writes a synthetic --metrics journal of `runs` run records with a
// realistic instrument mix: exact counters, noisy gauges, one histogram.
std::string WriteJournal(const std::string& dir, size_t runs,
                         uint64_t seed) {
  const std::string path = dir + "/metrics.jsonl";
  std::ofstream file(path, std::ios::binary);
  file << obs::MetricsHeaderLine("agg_store_test", runs, seed);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(0.0, 1.0);
  for (size_t run = 0; run < runs; ++run) {
    obs::Snapshot snapshot;
    snapshot.counters = {{"agg.reports_sent", rng() % 97},
                         {"agg.slices_sent", rng() % 1009}};
    snapshot.gauges = {{"round.accuracy", 0.9 + 0.1 * dist(rng)},
                       {"round.bytes", 1e4 * dist(rng)},
                       {"round.latency_ms", 5.0 + 20.0 * dist(rng)},
                       {"tree.depth", static_cast<double>(rng() % 12)}};
    obs::HistogramData hist;
    hist.bounds = {64.0, 256.0, 1024.0};
    hist.counts = {rng() % 10, rng() % 10, rng() % 10, rng() % 10};
    for (uint64_t c : hist.counts) hist.count += c;
    hist.sum = 300.0 * static_cast<double>(hist.count) * dist(rng);
    snapshot.histograms = {{"msg.bytes", hist}};
    file << obs::SnapshotJsonLine(snapshot, run, seed + run);
  }
  file.flush();
  EXPECT_TRUE(file.good());
  return path;
}

class ReportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto dir = util::MakeTempDir("ipda-report-test-");
    ASSERT_TRUE(dir.ok()) << dir.status().ToString();
    dir_ = *dir;
  }
  void TearDown() override { util::RemoveDirTree(dir_); }
  std::string dir_;
};

TEST_F(ReportTest, ByteIdenticalFromFourKibToUnlimited) {
  const std::string path = WriteJournal(dir_, 2000, 0xF0);
  MetricsReportOptions unbounded;
  const ReportResult want = RunReport(path, unbounded);
  ASSERT_EQ(want.code, 0) << want.err;
  EXPECT_NE(want.out.find("gauges (min / p50 / p95 / p99 / max / mean"),
            std::string::npos);
  EXPECT_NE(want.out.find("histograms (merged over runs):"),
            std::string::npos);
  EXPECT_NE(want.out.find("round.accuracy"), std::string::npos);
  for (uint64_t budget :
       {uint64_t{4} << 10, uint64_t{16} << 10, uint64_t{64} << 10,
        uint64_t{1} << 20}) {
    MetricsReportOptions options;
    options.agg_memory_budget_bytes = budget;
    const ReportResult got = RunReport(path, options);
    EXPECT_EQ(got.code, 0) << got.err;
    EXPECT_EQ(got.out, want.out) << "budget " << budget;
  }
}

TEST_F(ReportTest, AcceptanceHundredThousandRunsUnder64MiB) {
  // ISSUE 10 acceptance: >=100k-record journal, 64 MiB budget, output
  // byte-identical to the unbounded path, quantiles + histograms shown.
  const std::string path = WriteJournal(dir_, 100000, 0xF1);
  MetricsReportOptions unbounded;
  const ReportResult want = RunReport(path, unbounded);
  ASSERT_EQ(want.code, 0) << want.err;
  MetricsReportOptions budgeted;
  budgeted.agg_memory_budget_bytes = 64u << 20;
  const ReportResult got = RunReport(path, budgeted);
  EXPECT_EQ(got.code, 0) << got.err;
  EXPECT_EQ(got.out, want.out);
  // A tight budget that provably spills (400k observations * 24 B
  // ≈ 9.6 MiB of tuples vs a 256 KiB buffer) must still match.
  MetricsReportOptions tight;
  tight.agg_memory_budget_bytes = 256u << 10;
  tight.spill_dir = dir_;
  const ReportResult spilled = RunReport(path, tight);
  EXPECT_EQ(spilled.code, 0) << spilled.err;
  EXPECT_EQ(spilled.out, want.out);
  EXPECT_NE(want.out.find("100000 runs"), std::string::npos);
  EXPECT_NE(want.out.find("p99"), std::string::npos);
  EXPECT_NE(want.out.find("msg.bytes"), std::string::npos);
}

TEST_F(ReportTest, SingleRunAndFilterModesUnaffectedByBudget) {
  const std::string path = WriteJournal(dir_, 50, 0xF2);
  MetricsReportOptions run_mode;
  run_mode.run = 7;
  run_mode.agg_memory_budget_bytes = 4 << 10;
  const ReportResult run_report = RunReport(path, run_mode);
  EXPECT_EQ(run_report.code, 0) << run_report.err;
  EXPECT_NE(run_report.out.find("run 7"), std::string::npos);

  MetricsReportOptions filtered;
  filtered.metric_filter = "round.";
  filtered.agg_memory_budget_bytes = 4 << 10;
  const ReportResult filter_report = RunReport(path, filtered);
  EXPECT_EQ(filter_report.code, 0) << filter_report.err;
  EXPECT_NE(filter_report.out.find("round.accuracy"), std::string::npos);
  EXPECT_EQ(filter_report.out.find("tree.depth"), std::string::npos);
}

TEST_F(ReportTest, HeaderOnlyJournalFailsWithDistinctDiagnostic) {
  // Satellite 4: a sweep that wrote its header and crashed before any
  // run completed must exit 1 with a diagnostic naming the experiment,
  // distinct from the generic empty-file message.
  const std::string path = dir_ + "/header_only.jsonl";
  {
    std::ofstream file(path, std::ios::binary);
    file << obs::MetricsHeaderLine("fault_sweep", 128, 42);
  }
  const ReportResult got = RunReport(path, MetricsReportOptions{});
  EXPECT_EQ(got.code, 1);
  EXPECT_NE(got.err.find("no run records"), std::string::npos) << got.err;
  EXPECT_NE(got.err.find("fault_sweep"), std::string::npos) << got.err;
  EXPECT_EQ(got.err.find("no valid run records"), std::string::npos)
      << "header-only must not reuse the empty-file diagnostic";
}

TEST_F(ReportTest, EmptyAndMissingFilesFail) {
  const std::string empty = dir_ + "/empty.jsonl";
  { std::ofstream file(empty, std::ios::binary); }
  const ReportResult empty_report = RunReport(empty, MetricsReportOptions{});
  EXPECT_EQ(empty_report.code, 1);
  EXPECT_NE(empty_report.err.find("no valid run records"),
            std::string::npos)
      << empty_report.err;

  const ReportResult missing =
      RunReport(dir_ + "/nope.jsonl", MetricsReportOptions{});
  EXPECT_EQ(missing.code, 1);
}

TEST_F(ReportTest, CorruptLinesAreSkippedNotFatal) {
  const std::string path = WriteJournal(dir_, 20, 0xF3);
  {
    std::ofstream file(path, std::ios::binary | std::ios::app);
    file << "{\"kind\":\"run_metrics\",\"run\":999,TRUNCATED\n";
  }
  const ReportResult got = RunReport(path, MetricsReportOptions{});
  EXPECT_EQ(got.code, 0) << got.err;
  EXPECT_NE(got.out.find("20 runs"), std::string::npos);
  EXPECT_NE(got.err.find("skipping"), std::string::npos) << got.err;
}

}  // namespace
}  // namespace ipda::exp
