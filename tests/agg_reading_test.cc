#include "agg/reading.h"

#include <gtest/gtest.h>

#include "net/topology.h"
#include "util/random.h"

namespace ipda::agg {
namespace {

net::Topology MakeTopo() {
  auto topo = net::Topology::Build({{0, 0}, {10, 0}, {0, 10}, {10, 10}},
                                   50.0);
  return std::move(*topo);
}

TEST(ConstantField, AllReadingsEqual) {
  const net::Topology topo = MakeTopo();
  auto field = MakeConstantField(7.5);
  const auto readings = field->Sample(topo);
  ASSERT_EQ(readings.size(), 4u);
  EXPECT_EQ(readings[0], 0.0);  // Base station senses nothing.
  for (size_t i = 1; i < readings.size(); ++i) {
    EXPECT_EQ(readings[i], 7.5);
  }
}

TEST(UniformField, WithinBoundsAndDeterministic) {
  const net::Topology topo = MakeTopo();
  auto field = MakeUniformField(10.0, 20.0, 42);
  const auto a = field->Sample(topo);
  const auto b = MakeUniformField(10.0, 20.0, 42)->Sample(topo);
  EXPECT_EQ(a, b);
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_GE(a[i], 10.0);
    EXPECT_LT(a[i], 20.0);
  }
}

TEST(UniformField, DifferentSeedsDiffer) {
  const net::Topology topo = MakeTopo();
  const auto a = MakeUniformField(0.0, 1.0, 1)->Sample(topo);
  const auto b = MakeUniformField(0.0, 1.0, 2)->Sample(topo);
  EXPECT_NE(a, b);
}

TEST(UniformField, PerNodeIndependentOfOtherNodes) {
  // Node 2's reading depends only on (seed, id), not on how many nodes
  // exist.
  const net::Topology small = MakeTopo();
  auto big_topo = net::Topology::Build(
      {{0, 0}, {10, 0}, {0, 10}, {10, 10}, {20, 20}, {30, 30}}, 50.0);
  auto field = MakeUniformField(0.0, 1.0, 9);
  EXPECT_EQ(field->ReadingFor(2, small), field->ReadingFor(2, *big_topo));
}

TEST(GradientField, FollowsPosition) {
  const net::Topology topo = MakeTopo();
  auto field = MakeGradientField(100.0, 1.0, 2.0);
  // Node 3 is at (10, 10): 100 + 10 + 20.
  EXPECT_DOUBLE_EQ(field->ReadingFor(3, topo), 130.0);
  // Node 1 at (10, 0): 110; node 2 at (0, 10): 120.
  EXPECT_DOUBLE_EQ(field->ReadingFor(1, topo), 110.0);
  EXPECT_DOUBLE_EQ(field->ReadingFor(2, topo), 120.0);
}

TEST(GradientField, SampleSkipsBaseStation) {
  const net::Topology topo = MakeTopo();
  auto field = MakeGradientField(100.0, 1.0, 1.0);
  EXPECT_EQ(field->Sample(topo)[0], 0.0);
}

}  // namespace
}  // namespace ipda::agg
