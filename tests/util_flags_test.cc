#include "util/flags.h"

#include <gtest/gtest.h>

namespace ipda::util {
namespace {

FlagSet MakeFlags() {
  FlagSet flags;
  flags.DefineString("name", "default", "a string");
  flags.DefineInt("count", 7, "an int");
  flags.DefineDouble("ratio", 2.5, "a double");
  flags.DefineBool("fast", false, "a bool");
  return flags;
}

Status ParseArgs(FlagSet& flags, std::vector<const char*> args) {
  return flags.Parse(static_cast<int>(args.size()), args.data());
}

TEST(Flags, DefaultsWhenUnset) {
  FlagSet flags = MakeFlags();
  ASSERT_TRUE(ParseArgs(flags, {}).ok());
  EXPECT_EQ(flags.GetString("name"), "default");
  EXPECT_EQ(flags.GetInt("count"), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio"), 2.5);
  EXPECT_FALSE(flags.GetBool("fast"));
  EXPECT_FALSE(flags.WasSet("name"));
}

TEST(Flags, EqualsSyntax) {
  FlagSet flags = MakeFlags();
  ASSERT_TRUE(ParseArgs(flags, {"--name=x", "--count=42", "--ratio=0.125",
                                "--fast=true"})
                  .ok());
  EXPECT_EQ(flags.GetString("name"), "x");
  EXPECT_EQ(flags.GetInt("count"), 42);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio"), 0.125);
  EXPECT_TRUE(flags.GetBool("fast"));
  EXPECT_TRUE(flags.WasSet("count"));
}

TEST(Flags, SpaceSeparatedValue) {
  FlagSet flags = MakeFlags();
  ASSERT_TRUE(ParseArgs(flags, {"--count", "13"}).ok());
  EXPECT_EQ(flags.GetInt("count"), 13);
}

TEST(Flags, BareBoolAndNegation) {
  FlagSet flags = MakeFlags();
  ASSERT_TRUE(ParseArgs(flags, {"--fast"}).ok());
  EXPECT_TRUE(flags.GetBool("fast"));

  FlagSet flags2 = MakeFlags();
  ASSERT_TRUE(ParseArgs(flags2, {"--no-fast"}).ok());
  EXPECT_FALSE(flags2.GetBool("fast"));
}

TEST(Flags, NegativeNumbers) {
  FlagSet flags = MakeFlags();
  ASSERT_TRUE(ParseArgs(flags, {"--count=-5", "--ratio=-1.5"}).ok());
  EXPECT_EQ(flags.GetInt("count"), -5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio"), -1.5);
}

TEST(Flags, UnknownFlagRejected) {
  FlagSet flags = MakeFlags();
  const Status status = ParseArgs(flags, {"--bogus=1"});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(Flags, MalformedValuesRejected) {
  FlagSet flags = MakeFlags();
  EXPECT_FALSE(ParseArgs(flags, {"--count=seven"}).ok());
  FlagSet flags2 = MakeFlags();
  EXPECT_FALSE(ParseArgs(flags2, {"--ratio=two"}).ok());
  FlagSet flags3 = MakeFlags();
  EXPECT_FALSE(ParseArgs(flags3, {"--fast=maybe"}).ok());
}

TEST(Flags, MissingValueRejected) {
  FlagSet flags = MakeFlags();
  EXPECT_FALSE(ParseArgs(flags, {"--count"}).ok());
}

TEST(Flags, PositionalArgumentRejected) {
  FlagSet flags = MakeFlags();
  EXPECT_FALSE(ParseArgs(flags, {"positional"}).ok());
}

// A repeated flag is rejected outright (not last-one-wins): silently
// dropping half the command line would let a mis-pasted sweep invocation
// run — and journal — the wrong configuration.
TEST(Flags, DuplicateFlagRejected) {
  FlagSet flags = MakeFlags();
  const Status status = ParseArgs(flags, {"--count=1", "--count=2"});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("duplicate flag --count"),
            std::string::npos);
  // The error names the value already parsed, for a usable diagnostic.
  EXPECT_NE(status.message().find("'1'"), std::string::npos);
}

TEST(Flags, DuplicateAcrossSyntaxFormsRejected) {
  // --key value after --key=value is still the same flag twice.
  FlagSet flags = MakeFlags();
  EXPECT_FALSE(ParseArgs(flags, {"--count=1", "--count", "2"}).ok());

  // Bool forms collide too: --fast then --no-fast (and vice versa).
  FlagSet flags2 = MakeFlags();
  EXPECT_FALSE(ParseArgs(flags2, {"--fast", "--no-fast"}).ok());
  FlagSet flags3 = MakeFlags();
  EXPECT_FALSE(ParseArgs(flags3, {"--no-fast", "--fast=true"}).ok());
}

TEST(Flags, UnknownNegatedFlagRejected) {
  FlagSet flags = MakeFlags();
  const Status status = ParseArgs(flags, {"--no-bogus"});
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(Flags, CanonicalListsFlagsInDeclarationOrder) {
  FlagSet flags = MakeFlags();
  ASSERT_TRUE(ParseArgs(flags, {"--count=3", "--fast"}).ok());
  EXPECT_EQ(flags.Canonical(),
            "name=default,count=3,ratio=2.500000,fast=true");
}

TEST(Flags, CanonicalExcludesNamedFlags) {
  FlagSet flags = MakeFlags();
  ASSERT_TRUE(ParseArgs(flags, {"--count=3"}).ok());
  EXPECT_EQ(flags.Canonical({"name", "ratio"}), "count=3,fast=false");
}

TEST(Flags, UsageListsAllFlagsWithDefaults) {
  FlagSet flags = MakeFlags();
  ASSERT_TRUE(ParseArgs(flags, {"--count=99"}).ok());
  const std::string usage = flags.Usage("prog");
  EXPECT_NE(usage.find("--name"), std::string::npos);
  EXPECT_NE(usage.find("--count"), std::string::npos);
  // Usage shows the declared default, not the parsed value.
  EXPECT_NE(usage.find("default 7"), std::string::npos);
  EXPECT_EQ(usage.find("default 99"), std::string::npos);
}

TEST(Flags, TypeMismatchAborts) {
  FlagSet flags = MakeFlags();
  EXPECT_DEATH((void)flags.GetInt("name"), "CHECK failed");
  EXPECT_DEATH((void)flags.GetBool("undeclared"), "CHECK failed");
}

}  // namespace
}  // namespace ipda::util
