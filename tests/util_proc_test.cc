// Process-control primitives under the sweep fabric: spawn/wait/kill,
// pid liveness, heartbeat files, and the pid-stamped lockfile.

#include "util/proc.h"

#include <csignal>
#include <cstdio>
#include <unistd.h>

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "util/io.h"

namespace ipda::util {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "util_proc_test_" + name;
}

TEST(Proc, SpawnWaitExitCode) {
  auto pid = SpawnProcess({"/bin/sh", "-c", "exit 0"});
  ASSERT_TRUE(pid.ok());
  auto outcome = WaitProcess(*pid);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->running);
  EXPECT_FALSE(outcome->signaled);
  EXPECT_EQ(outcome->exit_code, 0);

  pid = SpawnProcess({"/bin/sh", "-c", "exit 42"});
  ASSERT_TRUE(pid.ok());
  outcome = WaitProcess(*pid);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->exit_code, 42);
}

TEST(Proc, ExecFailureSurfacesAs127) {
  auto pid = SpawnProcess({"/no/such/binary/anywhere"});
  ASSERT_TRUE(pid.ok());  // The fork succeeds; the exec fails in the child.
  auto outcome = WaitProcess(*pid);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->signaled);
  EXPECT_EQ(outcome->exit_code, 127);
}

TEST(Proc, StdoutRedirect) {
  const std::string out = TempPath("stdout.txt");
  SpawnOptions options;
  options.stdout_path = out;
  auto pid = SpawnProcess({"/bin/sh", "-c", "echo fabric-worker-output"},
                          options);
  ASSERT_TRUE(pid.ok());
  ASSERT_TRUE(WaitProcess(*pid).ok());
  auto contents = ReadFileToString(out);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "fabric-worker-output\n");
}

TEST(Proc, KillIsReapableAsSignaled) {
  auto pid = SpawnProcess({"/bin/sh", "-c", "sleep 30"});
  ASSERT_TRUE(pid.ok());
  EXPECT_TRUE(PidAlive(*pid));
  ASSERT_TRUE(KillProcess(*pid, SIGKILL).ok());
  auto outcome = WaitProcess(*pid);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->signaled);
  EXPECT_EQ(outcome->term_signal, SIGKILL);
  // Killing an already-reaped pid is not an error (ESRCH tolerated):
  // revoking the lease of a just-exited worker must not fail.
  EXPECT_TRUE(KillProcess(*pid, SIGKILL).ok());
}

TEST(Proc, TryWaitReportsRunningThenExit) {
  auto pid = SpawnProcess({"/bin/sh", "-c", "sleep 30"});
  ASSERT_TRUE(pid.ok());
  auto outcome = TryWaitProcess(*pid);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome->running);
  ASSERT_TRUE(KillProcess(*pid, SIGTERM).ok());
  outcome = WaitProcess(*pid);
  ASSERT_TRUE(outcome.ok());
  EXPECT_FALSE(outcome->running);
  EXPECT_TRUE(outcome->signaled);
  EXPECT_EQ(outcome->term_signal, SIGTERM);
}

TEST(Proc, PidLiveness) {
  EXPECT_TRUE(PidAlive(static_cast<int64_t>(getpid())));
  // Far above any default pid_max; a dead dispatcher's recorded pid.
  EXPECT_FALSE(PidAlive(999999999));
}

TEST(Proc, TouchAndAge) {
  const std::string path = TempPath("heartbeat");
  std::remove(path.c_str());  // Drop leftovers from a previous run.
  EXPECT_FALSE(FileAgeSeconds(path).ok());  // Missing file: no age.
  ASSERT_TRUE(TouchFile(path).ok());
  auto age = FileAgeSeconds(path);
  ASSERT_TRUE(age.ok());
  EXPECT_GE(*age, 0.0);
  EXPECT_LT(*age, 60.0);  // Touched moments ago.
  ASSERT_TRUE(TouchFile(path).ok());  // Re-touch of an existing file.
}

TEST(Proc, MakeDirsIsRecursiveAndIdempotent) {
  const std::string root = TempPath("dirs");
  const std::string nested = root + "/a/b/c";
  ASSERT_TRUE(MakeDirs(nested).ok());
  ASSERT_TRUE(MakeDirs(nested).ok());  // Already exists: fine.
  ASSERT_TRUE(TouchFile(nested + "/probe").ok());
}

TEST(Proc, LockFileExcludesSecondHolder) {
  const std::string path = TempPath("lock");
  std::remove(path.c_str());
  auto first = LockFile::Acquire(path);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first->held());
  // The owner (this process) is alive, so a second acquire must refuse.
  auto second = LockFile::Acquire(path);
  EXPECT_FALSE(second.ok());
  first->Release();
  EXPECT_FALSE(first->held());
  // Released: acquirable again.
  auto third = LockFile::Acquire(path);
  EXPECT_TRUE(third.ok());
}

TEST(Proc, StaleLockFromDeadPidIsBroken) {
  const std::string path = TempPath("stale_lock");
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("999999999\n", f);  // A pid that cannot be alive.
    std::fclose(f);
  }
  auto lock = LockFile::Acquire(path);
  ASSERT_TRUE(lock.ok());  // Stale claim broken and re-acquired.
  EXPECT_TRUE(lock->held());
}

}  // namespace
}  // namespace ipda::util
