// Property tests for the mergeable partial aggregates (stats/pao.h) and
// the GK quantile sketch (stats/quantile.h): streaming/merged results
// must match exact batch computation within the documented error
// contracts for ANY split of the stream and ANY merge order, and every
// codec must round-trip byte-stably.

#include <algorithm>
#include <cmath>
#include <random>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "stats/pao.h"
#include "stats/quantile.h"

namespace ipda::stats {
namespace {

// Exact batch references.
struct Batch {
  double mean = 0.0;
  double variance = 0.0;  // Sample variance, n-1.
  double min = 0.0;
  double max = 0.0;
};

Batch ExactBatch(const std::vector<double>& xs) {
  Batch b;
  b.min = xs[0];
  b.max = xs[0];
  long double sum = 0.0;
  for (double x : xs) {
    sum += x;
    b.min = std::min(b.min, x);
    b.max = std::max(b.max, x);
  }
  b.mean = static_cast<double>(sum / xs.size());
  long double m2 = 0.0;
  for (double x : xs) m2 += (x - b.mean) * (x - b.mean);
  b.variance = xs.size() > 1
                   ? static_cast<double>(m2 / (xs.size() - 1))
                   : 0.0;
  return b;
}

std::vector<double> RandomValues(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1e3, 1e3);
  std::vector<double> xs(n);
  for (double& x : xs) x = dist(rng);
  return xs;
}

// Splits xs into `parts` contiguous chunks, folds each into its own
// aggregate, then merges in a shuffled order.
template <typename Agg>
Agg SplitAndMerge(const std::vector<double>& xs, size_t parts,
                  uint64_t seed) {
  std::vector<Agg> partials(parts);
  for (Agg& p : partials) p.Init();
  for (size_t i = 0; i < xs.size(); ++i) {
    partials[i * parts / xs.size()].Add(xs[i]);
  }
  std::vector<size_t> order(parts);
  for (size_t i = 0; i < parts; ++i) order[i] = i;
  std::mt19937_64 rng(seed);
  std::shuffle(order.begin(), order.end(), rng);
  Agg merged;
  merged.Init();
  for (size_t i : order) merged.Merge(partials[i]);
  return merged;
}

TEST(CountMeanM2AggTest, MatchesBatchStreaming) {
  const auto xs = RandomValues(5000, 0xA0);
  const Batch batch = ExactBatch(xs);
  CountMeanM2Agg agg;
  agg.Init();
  for (double x : xs) agg.Add(x);
  EXPECT_EQ(agg.count(), xs.size());
  EXPECT_EQ(agg.min(), batch.min);
  EXPECT_EQ(agg.max(), batch.max);
  EXPECT_NEAR(agg.mean(), batch.mean, 1e-9 * std::abs(batch.mean) + 1e-12);
  EXPECT_NEAR(agg.variance(), batch.variance, 1e-9 * batch.variance);
}

TEST(CountMeanM2AggTest, SplitMergeAnyPartitionAndOrder) {
  const auto xs = RandomValues(4000, 0xA1);
  const Batch batch = ExactBatch(xs);
  for (size_t parts : {2, 3, 7, 16, 100}) {
    const CountMeanM2Agg merged =
        SplitAndMerge<CountMeanM2Agg>(xs, parts, 0xA2 + parts);
    EXPECT_EQ(merged.count(), xs.size()) << parts << " parts";
    EXPECT_EQ(merged.min(), batch.min);
    EXPECT_EQ(merged.max(), batch.max);
    EXPECT_NEAR(merged.mean(), batch.mean,
                1e-9 * std::abs(batch.mean) + 1e-12)
        << parts << " parts";
    EXPECT_NEAR(merged.variance(), batch.variance, 1e-9 * batch.variance)
        << parts << " parts";
  }
}

TEST(CountMeanM2AggTest, MergeWithEmptySidesIsIdentity) {
  CountMeanM2Agg a;
  a.Init();
  a.Add(1.0);
  a.Add(3.0);
  CountMeanM2Agg empty;
  empty.Init();
  a.Merge(empty);  // Right identity.
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  CountMeanM2Agg b;
  b.Init();
  b.Merge(a);  // Left identity.
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
  EXPECT_EQ(b.min(), 1.0);
  EXPECT_EQ(b.max(), 3.0);
}

TEST(CountMeanM2AggTest, SerializeRoundTripsByteStably) {
  const auto xs = RandomValues(257, 0xA3);
  CountMeanM2Agg agg;
  agg.Init();
  for (double x : xs) agg.Add(x);
  std::string one;
  agg.Serialize(&one);
  CountMeanM2Agg decoded;
  ASSERT_TRUE(decoded.Deserialize(one));
  std::string two;
  decoded.Serialize(&two);
  EXPECT_EQ(one, two);
  EXPECT_EQ(decoded.count(), agg.count());
  EXPECT_EQ(decoded.mean(), agg.mean());
  EXPECT_EQ(decoded.variance(), agg.variance());
  EXPECT_FALSE(decoded.Deserialize("cm2;not;a;record"));
  EXPECT_FALSE(decoded.Deserialize("mm;1;2;3"));
}

TEST(MinMaxAggTest, SplitMergeAndRoundTrip) {
  const auto xs = RandomValues(1000, 0xB0);
  const Batch batch = ExactBatch(xs);
  const MinMaxAgg merged = SplitAndMerge<MinMaxAgg>(xs, 9, 0xB1);
  EXPECT_EQ(merged.count(), xs.size());
  EXPECT_EQ(merged.min(), batch.min);
  EXPECT_EQ(merged.max(), batch.max);
  std::string one;
  merged.Serialize(&one);
  MinMaxAgg decoded;
  ASSERT_TRUE(decoded.Deserialize(one));
  std::string two;
  decoded.Serialize(&two);
  EXPECT_EQ(one, two);
  EXPECT_EQ(decoded.min(), merged.min());
  EXPECT_EQ(decoded.max(), merged.max());
}

TEST(HistogramAggTest, MergeIsExactAndOrderIndependent) {
  const std::vector<double> bounds = {-500.0, 0.0, 250.0, 750.0};
  const auto xs = RandomValues(3000, 0xC0);
  HistogramAgg batch(bounds);
  for (double x : xs) batch.Add(x);

  for (size_t parts : {2, 5, 30}) {
    std::vector<HistogramAgg> partials;
    for (size_t p = 0; p < parts; ++p) partials.emplace_back(bounds);
    for (size_t i = 0; i < xs.size(); ++i) {
      partials[i * parts / xs.size()].Add(xs[i]);
    }
    // Merge back-to-front so the order differs from the split order.
    HistogramAgg merged(bounds);
    for (size_t p = parts; p-- > 0;) merged.Merge(partials[p]);
    EXPECT_EQ(merged.counts(), batch.counts()) << parts << " parts";
    EXPECT_EQ(merged.count(), batch.count());
    // Bucket counts are integer-exact; the value sum is a double fold,
    // so merge order may shift its last ulps.
    EXPECT_NEAR(merged.sum(), batch.sum(), 1e-9 * std::abs(batch.sum()));
  }
}

TEST(HistogramAggTest, AddBucketFoldsPreBinnedData) {
  const std::vector<double> bounds = {1.0, 2.0};
  HistogramAgg direct(bounds);
  direct.Add(0.5);
  direct.Add(1.5);
  direct.Add(1.5);
  direct.Add(9.0);
  HistogramAgg binned(bounds);
  binned.AddBucket(0, 1, 0.5);
  binned.AddBucket(1, 2, 3.0);
  binned.AddBucket(2, 1, 9.0);
  EXPECT_EQ(binned.counts(), direct.counts());
  EXPECT_EQ(binned.count(), direct.count());
  EXPECT_DOUBLE_EQ(binned.sum(), direct.sum());
}

TEST(HistogramAggTest, SerializeRoundTripsByteStably) {
  HistogramAgg agg({0.0, 10.0, 100.0});
  for (double x : RandomValues(500, 0xC1)) agg.Add(std::abs(x));
  std::string one;
  agg.Serialize(&one);
  HistogramAgg decoded;
  ASSERT_TRUE(decoded.Deserialize(one));
  std::string two;
  decoded.Serialize(&two);
  EXPECT_EQ(one, two);
  EXPECT_EQ(decoded.bounds(), agg.bounds());
  EXPECT_EQ(decoded.counts(), agg.counts());
  EXPECT_FALSE(decoded.Deserialize("hist;2;1;0"));  // Truncated.
}

// ---- GK quantile sketch --------------------------------------------------

// True rank bracket of value v in sorted xs: [#(x < v) + 1, #(x <= v)].
// The sketch's answer passes for target rank r if the bracket comes
// within `allow` of r.
void ExpectRankWithin(const std::vector<double>& sorted, double v,
                      double r, double allow, const char* what) {
  const auto lo =
      std::lower_bound(sorted.begin(), sorted.end(), v) - sorted.begin();
  const auto hi =
      std::upper_bound(sorted.begin(), sorted.end(), v) - sorted.begin();
  const double rank_lo = static_cast<double>(lo) + 1.0;
  const double rank_hi = static_cast<double>(hi);
  EXPECT_LE(rank_lo - allow, r) << what << ": value " << v;
  EXPECT_GE(rank_hi + allow, r) << what << ": value " << v;
}

void CheckQuantiles(const GkSketch& sketch, std::vector<double> xs,
                    double allow, const char* what) {
  std::sort(xs.begin(), xs.end());
  const double n = static_cast<double>(xs.size());
  for (double q : {0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double r = std::max(1.0, std::ceil(q * n));
    ExpectRankWithin(xs, sketch.Quantile(q), r, allow, what);
  }
  EXPECT_EQ(sketch.Quantile(0.0), xs.front()) << what;
  EXPECT_EQ(sketch.Quantile(1.0), xs.back()) << what;
}

TEST(GkSketchTest, StreamingRankErrorWithinEps) {
  for (uint64_t seed : {0xD0, 0xD1, 0xD2}) {
    const auto xs = RandomValues(20000, seed);
    GkSketch sketch;
    for (double x : xs) sketch.Add(x);
    EXPECT_EQ(sketch.count(), xs.size());
    // Documented bound: eps * n; +1 covers the ceil discretization.
    const double allow = sketch.eps() * static_cast<double>(xs.size()) + 1;
    CheckQuantiles(sketch, xs, allow, "streaming");
    // Space: O((1/eps) * log(eps n)), far below n.
    EXPECT_LT(sketch.tuple_count(), 1000u);
  }
}

TEST(GkSketchTest, StreamingHandlesDuplicatesAndSortedInput) {
  std::vector<double> xs;
  for (int i = 0; i < 5000; ++i) xs.push_back(static_cast<double>(i % 7));
  GkSketch dup;
  for (double x : xs) dup.Add(x);
  CheckQuantiles(dup, xs, dup.eps() * 5000 + 1, "duplicates");

  GkSketch sorted_in;
  std::vector<double> ys(3000);
  for (size_t i = 0; i < ys.size(); ++i) ys[i] = static_cast<double>(i);
  for (double y : ys) sorted_in.Add(y);
  CheckQuantiles(sorted_in, ys, sorted_in.eps() * 3000 + 1, "sorted");
}

TEST(GkSketchTest, MergedRankErrorWithinTwoEps) {
  const auto xs = RandomValues(30000, 0xD3);
  for (size_t parts : {2, 5, 16}) {
    std::vector<GkSketch> partials(parts);
    for (size_t i = 0; i < xs.size(); ++i) {
      partials[i * parts / xs.size()].Add(xs[i]);
    }
    std::vector<size_t> order(parts);
    for (size_t i = 0; i < parts; ++i) order[i] = i;
    std::mt19937_64 rng(0xD4 + parts);
    std::shuffle(order.begin(), order.end(), rng);
    GkSketch merged;
    for (size_t i : order) merged.Merge(partials[i]);
    EXPECT_EQ(merged.count(), xs.size());
    // Documented merged bound: 2 * eps * n (+1 discretization slack).
    const double allow =
        2.0 * merged.eps() * static_cast<double>(xs.size()) + 1;
    CheckQuantiles(merged, xs, allow, "merged");
    EXPECT_LT(merged.tuple_count(), 2000u) << parts << " parts";
  }
}

TEST(GkSketchTest, DeterministicForIdenticalAddSequence) {
  const auto xs = RandomValues(10000, 0xD5);
  GkSketch a, b;
  for (double x : xs) a.Add(x);
  for (double x : xs) b.Add(x);
  std::string sa, sb;
  a.Serialize(&sa);
  b.Serialize(&sb);
  EXPECT_EQ(sa, sb);
}

TEST(GkSketchTest, SerializeRoundTripsByteStably) {
  const auto xs = RandomValues(5000, 0xD6);
  GkSketch sketch;
  for (double x : xs) sketch.Add(x);
  std::string one;
  sketch.Serialize(&one);
  GkSketch decoded;
  ASSERT_TRUE(decoded.Deserialize(one));
  std::string two;
  decoded.Serialize(&two);
  EXPECT_EQ(one, two);
  EXPECT_EQ(decoded.count(), sketch.count());
  EXPECT_EQ(decoded.Quantile(0.5), sketch.Quantile(0.5));
  EXPECT_FALSE(decoded.Deserialize("gk;0.005;10"));       // Truncated.
  EXPECT_FALSE(decoded.Deserialize("cm2;1;2;3;4;5"));     // Wrong tag.
  GkSketch empty;
  std::string empty_enc;
  empty.Serialize(&empty_enc);
  GkSketch empty_decoded;
  ASSERT_TRUE(empty_decoded.Deserialize(empty_enc));
  EXPECT_EQ(empty_decoded.count(), 0u);
  EXPECT_TRUE(std::isnan(empty_decoded.Quantile(0.5)));
}

TEST(GkQuantileAggTest, PaoSurfaceMatchesSketch) {
  const auto xs = RandomValues(8000, 0xD7);
  GkQuantileAgg left, right;
  left.Init();
  right.Init();
  for (size_t i = 0; i < xs.size(); ++i) {
    (i < xs.size() / 2 ? left : right).Add(xs[i]);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), xs.size());
  const double allow = 2.0 * left.sketch().eps() * xs.size() + 1;
  CheckQuantiles(left.sketch(), xs, allow, "pao merge");
  std::string one;
  left.Serialize(&one);
  GkQuantileAgg decoded;
  ASSERT_TRUE(decoded.Deserialize(one));
  std::string two;
  decoded.Serialize(&two);
  EXPECT_EQ(one, two);
}

}  // namespace
}  // namespace ipda::stats
