#include "util/bytes.h"

#include <cmath>
#include <limits>

#include <gtest/gtest.h>

#include "util/random.h"

namespace ipda::util {
namespace {

TEST(Bytes, RoundTripAllWidths) {
  ByteWriter w;
  w.WriteU8(0xab);
  w.WriteU16(0xbeef);
  w.WriteU32(0xdeadbeef);
  w.WriteU64(0x0123456789abcdefULL);
  w.WriteI64(-42);
  w.WriteF64(3.25);

  ByteReader r(w.bytes());
  EXPECT_EQ(*r.ReadU8(), 0xab);
  EXPECT_EQ(*r.ReadU16(), 0xbeef);
  EXPECT_EQ(*r.ReadU32(), 0xdeadbeefu);
  EXPECT_EQ(*r.ReadU64(), 0x0123456789abcdefULL);
  EXPECT_EQ(*r.ReadI64(), -42);
  EXPECT_EQ(*r.ReadF64(), 3.25);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, LittleEndianLayout) {
  ByteWriter w;
  w.WriteU32(0x01020304);
  const Bytes& b = w.bytes();
  ASSERT_EQ(b.size(), 4u);
  EXPECT_EQ(b[0], 0x04);
  EXPECT_EQ(b[1], 0x03);
  EXPECT_EQ(b[2], 0x02);
  EXPECT_EQ(b[3], 0x01);
}

TEST(Bytes, UnderflowReturnsError) {
  ByteWriter w;
  w.WriteU16(7);
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.ReadU16().ok());
  auto fail = r.ReadU8();
  EXPECT_FALSE(fail.ok());
  EXPECT_EQ(fail.status().code(), StatusCode::kOutOfRange);
}

TEST(Bytes, PartialReadThenUnderflow) {
  ByteWriter w;
  w.WriteU64(1);
  ByteReader r(w.bytes());
  EXPECT_TRUE(r.ReadU32().ok());
  EXPECT_TRUE(r.ReadU16().ok());
  EXPECT_FALSE(r.ReadU32().ok());  // Only 2 bytes left.
}

TEST(Bytes, LengthPrefixedBytesRoundTrip) {
  ByteWriter w;
  w.WriteBytes(Bytes{1, 2, 3, 4, 5});
  w.WriteBytes(Bytes{});
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.ReadBytes(), (Bytes{1, 2, 3, 4, 5}));
  EXPECT_EQ(*r.ReadBytes(), Bytes{});
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, StringRoundTrip) {
  ByteWriter w;
  w.WriteString("hello sensor");
  w.WriteString("");
  ByteReader r(w.bytes());
  EXPECT_EQ(*r.ReadString(), "hello sensor");
  EXPECT_EQ(*r.ReadString(), "");
}

TEST(Bytes, TruncatedLengthPrefixFails) {
  ByteWriter w;
  w.WriteU32(100);  // Claims 100 bytes follow; none do.
  ByteReader r(w.bytes());
  EXPECT_FALSE(r.ReadBytes().ok());
}

TEST(Bytes, SpecialDoublesRoundTrip) {
  ByteWriter w;
  w.WriteF64(std::numeric_limits<double>::infinity());
  w.WriteF64(-0.0);
  w.WriteF64(std::numeric_limits<double>::denorm_min());
  w.WriteF64(std::numeric_limits<double>::quiet_NaN());
  ByteReader r(w.bytes());
  EXPECT_TRUE(std::isinf(*r.ReadF64()));
  const double neg_zero = *r.ReadF64();
  EXPECT_EQ(neg_zero, 0.0);
  EXPECT_TRUE(std::signbit(neg_zero));
  EXPECT_EQ(*r.ReadF64(), std::numeric_limits<double>::denorm_min());
  EXPECT_TRUE(std::isnan(*r.ReadF64()));
}

TEST(Bytes, RemainingTracksPosition) {
  ByteWriter w;
  w.WriteU64(0);
  w.WriteU16(0);
  ByteReader r(w.bytes());
  EXPECT_EQ(r.remaining(), 10u);
  (void)r.ReadU64();
  EXPECT_EQ(r.remaining(), 2u);
  (void)r.ReadU16();
  EXPECT_EQ(r.remaining(), 0u);
  EXPECT_TRUE(r.exhausted());
}

TEST(Bytes, TakeBytesMovesBuffer) {
  ByteWriter w;
  w.WriteU8(9);
  Bytes taken = w.TakeBytes();
  EXPECT_EQ(taken.size(), 1u);
}

class BytesFuzzRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BytesFuzzRoundTrip, MixedSequences) {
  // Property: any sequence of writes reads back identically.
  util::Rng rng(GetParam());
  ByteWriter w;
  std::vector<int> kinds;
  std::vector<uint64_t> ints;
  std::vector<double> doubles;
  for (int i = 0; i < 64; ++i) {
    const int kind = static_cast<int>(rng.UniformUint64(3));
    kinds.push_back(kind);
    if (kind == 0) {
      const uint64_t v = rng.NextUint64();
      ints.push_back(v);
      w.WriteU64(v);
    } else if (kind == 1) {
      const double v = rng.UniformDouble(-1e9, 1e9);
      doubles.push_back(v);
      w.WriteF64(v);
    } else {
      const uint64_t v = rng.UniformUint64(256);
      ints.push_back(v);
      w.WriteU8(static_cast<uint8_t>(v));
    }
  }
  ByteReader r(w.bytes());
  size_t ii = 0;
  size_t di = 0;
  for (int kind : kinds) {
    if (kind == 0) {
      EXPECT_EQ(*r.ReadU64(), ints[ii++]);
    } else if (kind == 1) {
      EXPECT_EQ(*r.ReadF64(), doubles[di++]);
    } else {
      EXPECT_EQ(*r.ReadU8(), static_cast<uint8_t>(ints[ii++]));
    }
  }
  EXPECT_TRUE(r.exhausted());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BytesFuzzRoundTrip,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace ipda::util
