// The experiment engine's determinism contract (exp/engine.h): identical
// output for any --jobs value, including under fault injection. These
// tests run the same work at jobs=1 and jobs=8 and require bit-equal
// results, so any scheduling leak into seeds or collection order fails
// loudly rather than skewing a table by a fraction of a percent.

#include "exp/engine.h"

#include <atomic>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "agg/aggregate_function.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "exp/sweep.h"
#include "fault/fault_plan.h"
#include "util/random.h"

namespace ipda::exp {
namespace {

TEST(DeriveRunSeed, ForksOnEveryInput) {
  const uint64_t base = DeriveRunSeed(1, "point", 0);
  EXPECT_NE(base, DeriveRunSeed(2, "point", 0));    // Sweep seed.
  EXPECT_NE(base, DeriveRunSeed(1, "point2", 0));   // Label.
  EXPECT_NE(base, DeriveRunSeed(1, "point", 1));    // Run index.
  // Stable across calls — a pure function, not a stateful stream.
  EXPECT_EQ(base, DeriveRunSeed(1, "point", 0));
}

TEST(DeriveRunSeed, IndependentOfEnumerationOrder) {
  // Seeds are addressed, not drawn: enumerating runs backwards or
  // skipping points must yield the same per-run seed.
  std::vector<uint64_t> forward, backward;
  for (uint64_t r = 0; r < 16; ++r) {
    forward.push_back(DeriveRunSeed(7, "N=400", r));
  }
  for (uint64_t r = 16; r > 0; --r) {
    backward.push_back(DeriveRunSeed(7, "N=400", r - 1));
  }
  for (size_t r = 0; r < forward.size(); ++r) {
    EXPECT_EQ(forward[r], backward[forward.size() - 1 - r]);
  }
}

TEST(ResolveJobs, ZeroMeansAllHardwareThreads) {
  EXPECT_GE(ResolveJobs(0), 1u);
  EXPECT_EQ(ResolveJobs(1), 1u);
  EXPECT_EQ(ResolveJobs(5), 5u);
  EXPECT_GE(ResolveJobs(-3), 1u);  // Nonsense clamps, never zero.
}

TEST(Engine, MapPreservesIndexOrder) {
  Engine engine(8);
  for (size_t count : {0u, 1u, 7u, 64u, 1000u}) {
    const auto out = engine.Map<size_t>(
        count, [](size_t i) { return i * i + 1; });
    ASSERT_EQ(out.size(), count);
    for (size_t i = 0; i < count; ++i) EXPECT_EQ(out[i], i * i + 1);
  }
}

TEST(Engine, EveryIndexRunsExactlyOnce) {
  Engine engine(8);
  std::atomic<uint64_t> calls{0};
  const size_t count = 10000;
  const auto out = engine.Map<size_t>(count, [&](size_t i) {
    calls.fetch_add(1, std::memory_order_relaxed);
    return i;
  });
  EXPECT_EQ(calls.load(), count);
  for (size_t i = 0; i < count; ++i) EXPECT_EQ(out[i], i);
}

// CPU-bound mixing loop with per-index result; uneven per-item cost
// provokes stealing so collection order is genuinely exercised.
uint64_t MixWork(size_t i) {
  uint64_t h = 0x9E3779B97F4A7C15ull ^ i;
  const size_t iters = 100 + (i % 17) * 300;
  for (size_t k = 0; k < iters; ++k) h = util::Mix64(h, k);
  return h;
}

TEST(Engine, JobsCountNeverChangesResults) {
  Engine serial(1);
  const auto expected = serial.Map<uint64_t>(512, MixWork);
  for (size_t jobs : {2u, 3u, 8u}) {
    Engine parallel(jobs);
    EXPECT_EQ(parallel.Map<uint64_t>(512, MixWork), expected)
        << "jobs=" << jobs;
  }
}

// A full simulation outcome, compared bit-for-bit across jobs counts.
struct RunOutcome {
  bool ok = false;
  double result = 0.0;
  double accuracy = 0.0;
  uint64_t bytes = 0;
  uint64_t injected_drops = 0;
  size_t participants = 0;
  bool accepted = false;
  bool degraded = false;

  bool operator==(const RunOutcome&) const = default;
};

std::vector<std::vector<RunOutcome>> SweepWithJobs(size_t jobs,
                                                   bool with_faults) {
  Engine engine(jobs);
  std::vector<SweepPoint> points;
  for (size_t n : {50u, 70u}) {
    SweepPoint point;
    point.label = "N=" + std::to_string(n);
    point.config.deployment.node_count = n;
    point.config.deployment.area = net::Area{200.0, 200.0};
    if (with_faults) {
      auto plan = fault::ParseFaultSpec("crash-frac=0.2@0.05,loss=0.05");
      if (!plan.ok()) return {};
      point.config.faults = *plan;
    }
    points.push_back(std::move(point));
  }
  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);
  agg::IpdaConfig ipda;
  ipda.retarget_slices = with_faults;
  ipda.parent_failover = with_faults;
  return MapSweep<RunOutcome>(
      engine, 0x5EED, points, 4,
      [&](const agg::RunConfig& config, size_t, size_t) {
        RunOutcome out;
        auto run = agg::RunIpda(config, *function, *field, ipda);
        if (!run.ok()) return out;
        out.result = run->result;
        out.accuracy = run->accuracy;
        out.bytes = run->traffic.bytes_sent;
        out.injected_drops = run->traffic.injected_drops;
        out.participants = run->stats.participants;
        out.accepted = run->stats.decision.accepted;
        out.degraded = run->stats.degraded;
        out.ok = true;
        return out;
      });
}

TEST(Engine, SimulationSweepIdenticalAcrossJobs) {
  const auto serial = SweepWithJobs(1, /*with_faults=*/false);
  const auto parallel = SweepWithJobs(8, /*with_faults=*/false);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  for (const auto& point : serial) {
    for (const auto& run : point) EXPECT_TRUE(run.ok);
  }
}

TEST(Engine, FaultInjectedSweepIdenticalAcrossJobs) {
  // Fault injection draws from the simulation seed, so injected drops
  // and crash sets must also be scheduling-independent.
  const auto serial = SweepWithJobs(1, /*with_faults=*/true);
  const auto parallel = SweepWithJobs(8, /*with_faults=*/true);
  ASSERT_FALSE(serial.empty());
  EXPECT_EQ(serial, parallel);
  uint64_t drops = 0;
  for (const auto& point : serial) {
    for (const auto& run : point) {
      EXPECT_TRUE(run.ok);
      drops += run.injected_drops;
    }
  }
  EXPECT_GT(drops, 0u) << "fault plan should actually injure the runs";
}

TEST(Engine, MapSweepSetsDerivedSeeds) {
  Engine engine(4);
  std::vector<SweepPoint> points;
  for (const char* label : {"a", "b"}) {
    SweepPoint point;
    point.label = label;
    points.push_back(std::move(point));
  }
  const auto seeds = MapSweep<uint64_t>(
      engine, 99, points, 3,
      [](const agg::RunConfig& config, size_t, size_t) {
        return config.seed;
      });
  ASSERT_EQ(seeds.size(), 2u);
  for (size_t p = 0; p < 2; ++p) {
    ASSERT_EQ(seeds[p].size(), 3u);
    for (size_t r = 0; r < 3; ++r) {
      EXPECT_EQ(seeds[p][r], DeriveRunSeed(99, points[p].label, r));
    }
  }
}

TEST(Engine, SweepTableRowsFollowPointOrder) {
  Engine engine(4);
  std::vector<SweepPoint> points;
  for (const char* label : {"x", "y", "z"}) {
    SweepPoint point;
    point.label = label;
    points.push_back(std::move(point));
  }
  auto table = SweepTable<size_t>(
      {"label", "sum"}, engine, 1, points, 5,
      [](const agg::RunConfig&, size_t, size_t run) { return run; },
      [](const SweepPoint& point, const std::vector<size_t>& runs) {
        size_t sum = 0;
        for (size_t r : runs) sum += r;
        return std::vector<std::string>{point.label,
                                        std::to_string(sum)};
      });
  ASSERT_EQ(table.row_count(), 3u);
}

TEST(ThreadPool, ParallelForCoversSparseAndDenseCounts) {
  ThreadPool pool(4);
  for (size_t count : {1u, 3u, 4u, 5u, 1023u}) {
    std::vector<std::atomic<int>> hits(count);
    pool.ParallelFor(count,
                     [&](size_t i) { hits[i].fetch_add(1); });
    for (size_t i = 0; i < count; ++i) EXPECT_EQ(hits[i].load(), 1);
  }
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  // Back-to-back jobs on one pool: stale workers from job k must never
  // touch job k+1 (the generation fence).
  ThreadPool pool(8);
  for (int round = 0; round < 50; ++round) {
    std::atomic<uint64_t> sum{0};
    pool.ParallelFor(64, [&](size_t i) {
      sum.fetch_add(i, std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), 64u * 63u / 2u);
  }
}

}  // namespace
}  // namespace ipda::exp
