// Fault subsystem: spec parsing, scheduled crashes/recoveries, link
// impairments, and the determinism contract (same seed + same plan →
// the same faults, event for event, and the same protocol outcome).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "agg/aggregate_function.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace ipda {
namespace {

TEST(FaultPlan, ParsesFullSpec) {
  auto plan = fault::ParseFaultSpec(
      "crash=17@2.5,recover=17@4,crash-frac=0.1@4.5;loss=0.05,dup=0.01,"
      "jitter=3");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->crashes.size(), 1u);
  EXPECT_EQ(plan->crashes[0].node, 17u);
  EXPECT_EQ(plan->crashes[0].at, sim::SecondsF(2.5));
  ASSERT_EQ(plan->recoveries.size(), 1u);
  EXPECT_EQ(plan->recoveries[0].at, sim::Seconds(4));
  ASSERT_EQ(plan->random_crashes.size(), 1u);
  EXPECT_DOUBLE_EQ(plan->random_crashes[0].fraction, 0.1);
  EXPECT_DOUBLE_EQ(plan->link.loss_rate, 0.05);
  EXPECT_DOUBLE_EQ(plan->link.dup_rate, 0.01);
  EXPECT_EQ(plan->link.jitter_max, sim::Milliseconds(3));
  EXPECT_FALSE(plan->empty());
}

TEST(FaultPlan, EmptySpecIsEmptyPlan) {
  auto plan = fault::ParseFaultSpec("");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->empty());
}

TEST(FaultPlan, SpecRoundTripsThroughToString) {
  const char* spec = "crash=17@2.5,recover=17@4,crash-frac=0.1@4.5,"
                     "loss=0.05,dup=0.01,jitter=3";
  auto plan = fault::ParseFaultSpec(spec);
  ASSERT_TRUE(plan.ok());
  auto reparsed = fault::ParseFaultSpec(fault::FaultSpecToString(*plan));
  ASSERT_TRUE(reparsed.ok());
  EXPECT_EQ(fault::FaultSpecToString(*reparsed),
            fault::FaultSpecToString(*plan));
}

TEST(FaultPlan, RejectsBadSpecs) {
  EXPECT_FALSE(fault::ParseFaultSpec("loss=1.5").ok());
  EXPECT_FALSE(fault::ParseFaultSpec("crash=0@1").ok());  // Base station.
  EXPECT_FALSE(fault::ParseFaultSpec("crash=5").ok());    // No @time.
  EXPECT_FALSE(fault::ParseFaultSpec("crash=x@1").ok());
  EXPECT_FALSE(fault::ParseFaultSpec("warp=0.5").ok());
  EXPECT_FALSE(fault::ParseFaultSpec("crash-frac=-0.1@1").ok());
  EXPECT_FALSE(fault::ParseFaultSpec("jitter=abc").ok());
}

TEST(FaultInjector, CrashAndRecoveryFollowTheSchedule) {
  auto topo = net::Topology::Build({{0, 0}, {40, 0}, {80, 0}}, 50.0);
  sim::Simulator simulator(7);
  net::Network network(&simulator, std::move(*topo));
  fault::FaultPlan plan;
  plan.crashes.push_back({1, sim::SecondsF(0.5)});
  plan.recoveries.push_back({1, sim::SecondsF(1.0)});
  fault::FaultInjector injector(&simulator, &network.channel(),
                                network.size(), plan);
  injector.Arm();

  std::vector<sim::SimTime> heard;
  network.node(1).SetReceiveHandler(
      [&](const net::Packet&) { heard.push_back(simulator.now()); });
  for (double at : {0.2, 0.7, 1.3}) {
    simulator.At(sim::SecondsF(at), [&] {
      net::Packet p;
      p.dst = net::kBroadcastId;
      p.type = net::PacketType::kControl;
      network.node(0).Send(p);
    });
  }
  simulator.RunUntil(sim::Seconds(2));

  // Alive at 0.2, dead at 0.7, back for the 1.3 broadcast.
  ASSERT_EQ(heard.size(), 2u);
  EXPECT_LT(heard[0], sim::SecondsF(0.5));
  EXPECT_GT(heard[1], sim::SecondsF(1.0));
  EXPECT_EQ(injector.crashes_fired(), 1u);
  EXPECT_EQ(injector.recoveries_fired(), 1u);
  EXPECT_EQ(network.counters().at(1).recoveries, 1u);
}

TEST(FaultInjector, RandomCrashSamplesTheRequestedFraction) {
  auto topo = net::Topology::Build(
      std::vector<net::Point2D>(101, net::Point2D{0, 0}), 10.0);
  sim::Simulator simulator(11);
  net::Network network(&simulator, std::move(*topo));
  fault::FaultPlan plan;
  plan.random_crashes.push_back({0.1, sim::Seconds(1)});
  fault::FaultInjector injector(&simulator, &network.channel(),
                                network.size(), plan);
  injector.Arm();
  const auto& victims = injector.sampled_victims();
  EXPECT_EQ(victims.size(), 10u);  // round(0.1 * 100 sensors).
  for (net::NodeId v : victims) {
    EXPECT_GE(v, 1u);  // The base station is exempt.
    EXPECT_LT(v, 101u);
    EXPECT_EQ(std::count(victims.begin(), victims.end(), v), 1);
  }
}

TEST(FaultInjector, TotalLossSilencesTheLink) {
  auto topo = net::Topology::Build({{0, 0}, {40, 0}}, 50.0);
  sim::Simulator simulator(13);
  net::Network network(&simulator, std::move(*topo));
  fault::FaultPlan plan;
  plan.link.loss_rate = 1.0;
  fault::FaultInjector injector(&simulator, &network.channel(),
                                network.size(), plan);
  injector.Arm();
  size_t received = 0;
  network.node(1).SetReceiveHandler(
      [&](const net::Packet&) { ++received; });
  net::Packet p;
  p.dst = 1;
  p.type = net::PacketType::kControl;
  network.node(0).Send(p);
  simulator.RunUntil(sim::Seconds(2));
  EXPECT_EQ(received, 0u);
  // Every (re)transmission was swallowed by injection, not collision.
  EXPECT_GE(network.counters().at(1).injected_drops, 1u);
  EXPECT_EQ(network.counters().at(0).mac_drops, 1u);  // ARQ gave up.
}

TEST(FaultInjector, CertainDuplicationDeliversBroadcastTwice) {
  auto topo = net::Topology::Build({{0, 0}, {40, 0}}, 50.0);
  sim::Simulator simulator(17);
  net::Network network(&simulator, std::move(*topo));
  fault::FaultPlan plan;
  plan.link.dup_rate = 1.0;
  fault::FaultInjector injector(&simulator, &network.channel(),
                                network.size(), plan);
  injector.Arm();
  size_t received = 0;
  network.node(1).SetReceiveHandler(
      [&](const net::Packet&) { ++received; });
  net::Packet p;
  p.dst = net::kBroadcastId;
  p.type = net::PacketType::kControl;
  network.node(0).Send(p);
  simulator.RunUntil(sim::Seconds(2));
  EXPECT_EQ(received, 2u);
  EXPECT_EQ(network.counters().at(1).injected_dup, 1u);
}

TEST(FaultInjector, JitterDelaysButStillDelivers) {
  auto topo = net::Topology::Build({{0, 0}, {40, 0}}, 50.0);
  sim::Simulator simulator(19);
  net::Network network(&simulator, std::move(*topo));
  fault::FaultPlan plan;
  plan.link.jitter_max = sim::Milliseconds(5);
  fault::FaultInjector injector(&simulator, &network.channel(),
                                network.size(), plan);
  injector.Arm();
  size_t received = 0;
  network.node(1).SetReceiveHandler(
      [&](const net::Packet&) { ++received; });
  net::Packet p;
  p.dst = net::kBroadcastId;
  p.type = net::PacketType::kControl;
  network.node(0).Send(p);
  simulator.RunUntil(sim::Seconds(2));
  EXPECT_EQ(received, 1u);
}

// Ordering edge cases. The injector schedules exactly what the plan
// says; the channel is what makes the combination meaningful. These
// pin the observable semantics so a scheduler or channel refactor
// can't silently reorder them.

TEST(FaultInjector, RecoveryScheduledBeforeCrashLeavesNodeDead) {
  // recover@0.3 fires on a node that is still alive (a harmless no-op
  // on the channel), crash@0.6 then kills it for good. The plan is
  // not sorted or paired up — events fire in their own time order.
  auto topo = net::Topology::Build({{0, 0}, {40, 0}, {80, 0}}, 50.0);
  sim::Simulator simulator(23);
  net::Network network(&simulator, std::move(*topo));
  fault::FaultPlan plan;
  plan.recoveries.push_back({1, sim::SecondsF(0.3)});
  plan.crashes.push_back({1, sim::SecondsF(0.6)});
  fault::FaultInjector injector(&simulator, &network.channel(),
                                network.size(), plan);
  injector.Arm();
  size_t heard = 0;
  network.node(1).SetReceiveHandler(
      [&](const net::Packet&) { ++heard; });
  simulator.At(sim::SecondsF(1.0), [&] {
    net::Packet p;
    p.dst = net::kBroadcastId;
    p.type = net::PacketType::kControl;
    network.node(0).Send(p);
  });
  simulator.RunUntil(sim::Seconds(2));
  EXPECT_EQ(heard, 0u);  // Dead when the broadcast arrives.
  EXPECT_EQ(injector.crashes_fired(), 1u);
  EXPECT_EQ(injector.recoveries_fired(), 1u);
  // The no-op recovery never touched the channel's counter.
  EXPECT_EQ(network.counters().at(1).recoveries, 0u);
}

TEST(FaultInjector, DoubleCrashNeedsOnlyOneRecovery) {
  // Two crashes of the same node both fire, but failure is a flag, not
  // a ref-count: a single recovery afterwards brings the node back.
  auto topo = net::Topology::Build({{0, 0}, {40, 0}, {80, 0}}, 50.0);
  sim::Simulator simulator(29);
  net::Network network(&simulator, std::move(*topo));
  fault::FaultPlan plan;
  plan.crashes.push_back({1, sim::SecondsF(0.3)});
  plan.crashes.push_back({1, sim::SecondsF(0.6)});
  plan.recoveries.push_back({1, sim::SecondsF(1.0)});
  fault::FaultInjector injector(&simulator, &network.channel(),
                                network.size(), plan);
  injector.Arm();
  std::vector<sim::SimTime> heard;
  network.node(1).SetReceiveHandler(
      [&](const net::Packet&) { heard.push_back(simulator.now()); });
  for (double at : {0.8, 1.3}) {
    simulator.At(sim::SecondsF(at), [&] {
      net::Packet p;
      p.dst = net::kBroadcastId;
      p.type = net::PacketType::kControl;
      network.node(0).Send(p);
    });
  }
  simulator.RunUntil(sim::Seconds(2));
  EXPECT_EQ(injector.crashes_fired(), 2u);
  EXPECT_EQ(injector.recoveries_fired(), 1u);
  ASSERT_EQ(heard.size(), 1u);  // Deaf at 0.8, back for 1.3.
  EXPECT_GT(heard[0], sim::SecondsF(1.0));
  EXPECT_EQ(network.counters().at(1).recoveries, 1u);
}

TEST(FaultInjector, CrashAtTimeZeroSilencesNodeFromTheStart) {
  // Node 2 sits on the other side of the base station, also in range:
  // it proves the broadcast went out while the crashed node stayed deaf.
  auto topo = net::Topology::Build({{0, 0}, {40, 0}, {-40, 0}}, 50.0);
  sim::Simulator simulator(31);
  net::Network network(&simulator, std::move(*topo));
  fault::FaultPlan plan;
  plan.crashes.push_back({1, sim::SimTime{0}});
  fault::FaultInjector injector(&simulator, &network.channel(),
                                network.size(), plan);
  injector.Arm();
  size_t heard_1 = 0;
  size_t heard_2 = 0;
  network.node(1).SetReceiveHandler(
      [&](const net::Packet&) { ++heard_1; });
  network.node(2).SetReceiveHandler(
      [&](const net::Packet&) { ++heard_2; });
  simulator.At(sim::SecondsF(0.2), [&] {
    net::Packet p;
    p.dst = net::kBroadcastId;
    p.type = net::PacketType::kControl;
    network.node(0).Send(p);
  });
  simulator.RunUntil(sim::Seconds(2));
  EXPECT_EQ(injector.crashes_fired(), 1u);
  EXPECT_EQ(heard_1, 0u);  // Never alive to hear anything.
  EXPECT_EQ(heard_2, 1u);  // The bystander still hears the broadcast.
}

TEST(FaultInjector, FaultBeyondTheRunDeadlineNeverFires) {
  // A crash scheduled past RunUntil's horizon stays pending: the run
  // ends with the node alive and crashes_fired() untouched, so sweep
  // deadlines can't be blamed on faults that never actually happened.
  auto topo = net::Topology::Build({{0, 0}, {40, 0}, {80, 0}}, 50.0);
  sim::Simulator simulator(37);
  net::Network network(&simulator, std::move(*topo));
  fault::FaultPlan plan;
  plan.crashes.push_back({1, sim::Seconds(5)});
  fault::FaultInjector injector(&simulator, &network.channel(),
                                network.size(), plan);
  injector.Arm();
  size_t heard = 0;
  network.node(1).SetReceiveHandler(
      [&](const net::Packet&) { ++heard; });
  simulator.At(sim::SecondsF(1.0), [&] {
    net::Packet p;
    p.dst = net::kBroadcastId;
    p.type = net::PacketType::kControl;
    network.node(0).Send(p);
  });
  simulator.RunUntil(sim::Seconds(2));
  EXPECT_EQ(injector.crashes_fired(), 0u);
  EXPECT_EQ(heard, 1u);  // Alive for the whole observed window.
}

// The headline contract: re-running the same (seed, plan, config) must
// reproduce the protocol outcome and every fault counter exactly.
TEST(FaultInjector, SameSeedAndPlanReproduceTheRoundExactly) {
  auto run_once = [] {
    agg::RunConfig config;
    config.deployment.node_count = 200;
    config.seed = 77;
    auto plan = fault::ParseFaultSpec(
        "crash-frac=0.1@4.4,loss=0.03,dup=0.01,jitter=2");
    EXPECT_TRUE(plan.ok());
    config.faults = *plan;
    agg::IpdaConfig ipda;
    ipda.slice_range = 1.0;
    ipda.retarget_slices = true;
    ipda.parent_failover = true;
    auto function = agg::MakeCount();
    auto field = agg::MakeConstantField(1.0);
    return agg::RunIpda(config, *function, *field, ipda);
  };
  auto a = run_once();
  auto b = run_once();
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->stats.decision.accepted, b->stats.decision.accepted);
  EXPECT_EQ(a->stats.decision.Agreed(), b->stats.decision.Agreed());
  EXPECT_EQ(a->stats.degraded, b->stats.degraded);
  EXPECT_EQ(a->stats.completeness_red, b->stats.completeness_red);
  EXPECT_EQ(a->stats.completeness_blue, b->stats.completeness_blue);
  EXPECT_EQ(a->stats.slices_retargeted, b->stats.slices_retargeted);
  EXPECT_EQ(a->stats.reports_rerouted, b->stats.reports_rerouted);
  EXPECT_EQ(a->stats.orphaned_partials, b->stats.orphaned_partials);
  EXPECT_EQ(a->traffic.injected_drops, b->traffic.injected_drops);
  EXPECT_EQ(a->traffic.injected_dup, b->traffic.injected_dup);
  EXPECT_EQ(a->traffic.frames_sent, b->traffic.frames_sent);
  EXPECT_GT(a->traffic.injected_drops, 0u);  // The plan actually bit.
}

}  // namespace
}  // namespace ipda
