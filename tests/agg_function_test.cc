#include "agg/aggregate_function.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace ipda::agg {
namespace {

Vector Aggregate(const AggregateFunction& function,
                 const std::vector<double>& readings) {
  Vector acc(function.arity(), 0.0);
  for (double r : readings) AddInto(acc, function.Contribution(r));
  return acc;
}

TEST(AddInto, ComponentwiseSum) {
  Vector a{1.0, 2.0};
  AddInto(a, {0.5, -2.0});
  EXPECT_EQ(a, (Vector{1.5, 0.0}));
}

TEST(AddInto, SizeMismatchAborts) {
  Vector a{1.0};
  EXPECT_DEATH(AddInto(a, {1.0, 2.0}), "CHECK failed");
}

TEST(Sum, ExactOverReadings) {
  auto f = MakeSum();
  EXPECT_EQ(f->arity(), 1u);
  const Vector acc = Aggregate(*f, {1.5, 2.5, -1.0});
  EXPECT_DOUBLE_EQ(f->Finalize(acc), 3.0);
}

TEST(Count, IgnoresReadingValues) {
  auto f = MakeCount();
  const Vector acc = Aggregate(*f, {100.0, -7.0, 0.0, 3.3});
  EXPECT_DOUBLE_EQ(f->Finalize(acc), 4.0);
}

TEST(Average, TwoComponents) {
  auto f = MakeAverage();
  EXPECT_EQ(f->arity(), 2u);
  const Vector acc = Aggregate(*f, {10.0, 20.0, 30.0});
  EXPECT_DOUBLE_EQ(f->Finalize(acc), 20.0);
}

TEST(Average, EmptyIsZero) {
  auto f = MakeAverage();
  EXPECT_DOUBLE_EQ(f->Finalize(Vector{0.0, 0.0}), 0.0);
}

TEST(Variance, MatchesDirectComputation) {
  auto f = MakeVariance();
  EXPECT_EQ(f->arity(), 3u);
  const std::vector<double> readings{2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0,
                                     9.0};
  const Vector acc = Aggregate(*f, readings);
  // Known population variance of this classic data set is 4.
  EXPECT_DOUBLE_EQ(f->Finalize(acc), 4.0);
}

TEST(Variance, ConstantReadingsHaveZeroVariance) {
  auto f = MakeVariance();
  const Vector acc = Aggregate(*f, {5.0, 5.0, 5.0});
  EXPECT_NEAR(f->Finalize(acc), 0.0, 1e-12);
}

TEST(PowerMean, ApproachesMaxForLargeK) {
  auto f = MakePowerMeanExtremum(32.0);
  const Vector acc = Aggregate(*f, {3.0, 7.0, 5.0});
  EXPECT_NEAR(f->Finalize(acc), 7.0, 0.3);
}

TEST(PowerMean, ApproachesMinForLargeNegativeK) {
  auto f = MakePowerMeanExtremum(-32.0);
  const Vector acc = Aggregate(*f, {3.0, 7.0, 5.0});
  EXPECT_NEAR(f->Finalize(acc), 3.0, 0.3);
}

TEST(PowerMean, TighterWithLargerK) {
  const std::vector<double> readings{2.0, 9.0, 4.0};
  auto loose = MakePowerMeanExtremum(8.0);
  auto tight = MakePowerMeanExtremum(64.0);
  const double e_loose =
      std::fabs(loose->Finalize(Aggregate(*loose, readings)) - 9.0);
  const double e_tight =
      std::fabs(tight->Finalize(Aggregate(*tight, readings)) - 9.0);
  EXPECT_LT(e_tight, e_loose);
}

TEST(PowerMean, ZeroKAborts) {
  EXPECT_DEATH(MakePowerMeanExtremum(0.0), "CHECK failed");
}

TEST(Functions, NamesAreStable) {
  EXPECT_EQ(MakeSum()->name(), "SUM");
  EXPECT_EQ(MakeCount()->name(), "COUNT");
  EXPECT_EQ(MakeAverage()->name(), "AVERAGE");
  EXPECT_EQ(MakeVariance()->name(), "VARIANCE");
  EXPECT_EQ(MakePowerMeanExtremum(8)->name(), "MAX~");
  EXPECT_EQ(MakePowerMeanExtremum(-8)->name(), "MIN~");
}

TEST(Histogram, BucketsContributionsCorrectly) {
  auto f = MakeHistogram(0.0, 10.0, 5);
  EXPECT_EQ(f->arity(), 5u);
  EXPECT_EQ(f->Contribution(0.0), (Vector{1, 0, 0, 0, 0}));
  EXPECT_EQ(f->Contribution(1.99), (Vector{1, 0, 0, 0, 0}));
  EXPECT_EQ(f->Contribution(2.0), (Vector{0, 1, 0, 0, 0}));
  EXPECT_EQ(f->Contribution(9.99), (Vector{0, 0, 0, 0, 1}));
}

TEST(Histogram, OutOfRangeClampsToEdgeBuckets) {
  auto f = MakeHistogram(0.0, 10.0, 5);
  EXPECT_EQ(f->Contribution(-3.0), (Vector{1, 0, 0, 0, 0}));
  EXPECT_EQ(f->Contribution(10.0), (Vector{0, 0, 0, 0, 1}));
  EXPECT_EQ(f->Contribution(99.0), (Vector{0, 0, 0, 0, 1}));
}

TEST(Histogram, FinalizeIsTotalCount) {
  auto f = MakeHistogram(0.0, 100.0, 10);
  const Vector acc = Aggregate(*f, {5.0, 15.0, 15.5, 95.0});
  EXPECT_DOUBLE_EQ(f->Finalize(acc), 4.0);
  EXPECT_DOUBLE_EQ(acc[1], 2.0);
}

TEST(Histogram, DistributionRecoveredFromAggregation) {
  auto f = MakeHistogram(0.0, 1.0, 4);
  util::Rng rng(9);
  std::vector<double> readings;
  for (int i = 0; i < 4000; ++i) readings.push_back(rng.UniformDouble());
  const Vector acc = Aggregate(*f, readings);
  for (double bucket : acc) {
    EXPECT_NEAR(bucket, 1000.0, 100.0);  // Uniform input, 4 buckets.
  }
}

TEST(Histogram, BucketLowerBounds) {
  const auto bounds = HistogramBucketLowerBounds(10.0, 30.0, 4);
  ASSERT_EQ(bounds.size(), 4u);
  EXPECT_DOUBLE_EQ(bounds[0], 10.0);
  EXPECT_DOUBLE_EQ(bounds[1], 15.0);
  EXPECT_DOUBLE_EQ(bounds[3], 25.0);
}

TEST(Histogram, NameAndInvalidConfigs) {
  EXPECT_EQ(MakeHistogram(0, 1, 3)->name(), "HISTOGRAM");
  EXPECT_DEATH(MakeHistogram(0.0, 1.0, 0), "CHECK failed");
  EXPECT_DEATH(MakeHistogram(1.0, 1.0, 3), "CHECK failed");
}

// Property: additive aggregation is order- and grouping-independent — the
// algebraic property the whole in-network scheme rests on (§II-B).
class AdditivityProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AdditivityProperty, AnyGroupingGivesSameTotal) {
  util::Rng rng(GetParam());
  auto f = MakeVariance();
  std::vector<double> readings;
  for (int i = 0; i < 40; ++i) {
    readings.push_back(rng.UniformDouble(0.0, 100.0));
  }
  const Vector direct = Aggregate(*f, readings);

  // Random grouping into partial accumulators, then combine.
  Vector grouped(f->arity(), 0.0);
  size_t i = 0;
  while (i < readings.size()) {
    const size_t group = 1 + rng.UniformUint64(5);
    Vector partial(f->arity(), 0.0);
    for (size_t j = 0; j < group && i < readings.size(); ++j, ++i) {
      AddInto(partial, f->Contribution(readings[i]));
    }
    AddInto(grouped, partial);
  }
  for (size_t c = 0; c < direct.size(); ++c) {
    EXPECT_NEAR(grouped[c], direct[c], 1e-6 * std::fabs(direct[c]) + 1e-9);
  }
  EXPECT_NEAR(f->Finalize(grouped), f->Finalize(direct), 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdditivityProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace ipda::agg
