#include "agg/runner.h"

#include <gtest/gtest.h>

#include "agg/aggregate_function.h"
#include "agg/reading.h"

namespace ipda::agg {
namespace {

TEST(Runner, TopologyDeterministicPerSeed) {
  RunConfig config;
  config.deployment.node_count = 100;
  config.seed = 9;
  auto a = BuildRunTopology(config);
  auto b = BuildRunTopology(config);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->positions(), b->positions());
  config.seed = 10;
  auto c = BuildRunTopology(config);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->positions(), c->positions());
}

TEST(Runner, TopologyValidationPropagates) {
  RunConfig config;
  config.deployment.node_count = 1;  // Invalid.
  EXPECT_FALSE(BuildRunTopology(config).ok());
  config.deployment.node_count = 100;
  config.range = 0.0;
  EXPECT_FALSE(BuildRunTopology(config).ok());
}

TEST(Runner, AccuracyRatioEdgeCases) {
  EXPECT_EQ(AccuracyRatio({50.0}, {100.0}), 0.5);
  EXPECT_EQ(AccuracyRatio({1.0}, {0.0}), 0.0);
  EXPECT_EQ(AccuracyRatio({}, {}), 0.0);
}

TEST(Runner, TrueAccumulatorExcludesBaseStation) {
  RunConfig config;
  config.deployment.node_count = 150;
  config.seed = 77;
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  auto result = RunTag(config, *function, *field);
  ASSERT_TRUE(result.ok());
  EXPECT_DOUBLE_EQ(result->true_acc[0], 149.0);  // Sensors only.
}

TEST(Runner, HistogramThroughIpda) {
  // The whole distribution aggregates privately: slicing operates on the
  // bucket-count vector like any other contribution.
  RunConfig config;
  config.deployment.node_count = 400;
  config.seed = 31;
  auto function = MakeHistogram(10.0, 30.0, 4);
  auto field = MakeUniformField(10.0, 30.0, 123);
  IpdaConfig ipda;
  ipda.slice_count = 2;
  ipda.slice_range = 1.0;
  auto result = RunIpda(config, *function, *field, ipda);
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->stats.decision.accepted);
  const Vector histogram = result->stats.decision.Agreed();
  ASSERT_EQ(histogram.size(), 4u);
  double total = 0.0;
  for (size_t b = 0; b < 4; ++b) {
    total += histogram[b];
    // Uniform readings: each bucket holds about a quarter.
    EXPECT_NEAR(histogram[b], result->true_acc[b], 6.0);
  }
  EXPECT_NEAR(total, static_cast<double>(result->stats.participants),
              1e-6);
}

TEST(Runner, TagAndIpdaAgreeOnTruth) {
  RunConfig config;
  config.deployment.node_count = 300;
  config.seed = 55;
  auto function = MakeSum();
  auto field = MakeUniformField(1.0, 2.0, 5);
  auto tag = RunTag(config, *function, *field);
  auto ipda = RunIpda(config, *function, *field);
  ASSERT_TRUE(tag.ok());
  ASSERT_TRUE(ipda.ok());
  // Same seed => same deployment and same readings => same ground truth.
  EXPECT_EQ(tag->true_acc, ipda->true_acc);
  EXPECT_EQ(tag->average_degree, ipda->average_degree);
}

TEST(Runner, TagConfigOverridesApply) {
  RunConfig config;
  config.deployment.node_count = 150;
  config.seed = 60;
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  TagConfig fast;
  fast.slot = sim::Milliseconds(50);
  fast.max_depth = 16;
  auto result = RunTag(config, *function, *field, fast);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->accuracy, 0.8);
}

TEST(Runner, IpdaSeedChangesOutcome) {
  RunConfig config;
  config.deployment.node_count = 250;
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  config.seed = 1;
  auto a = RunIpda(config, *function, *field);
  config.seed = 2;
  auto b = RunIpda(config, *function, *field);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a->traffic.bytes_sent, b->traffic.bytes_sent);
}

TEST(Runner, EventBudgetTripsIntoUnavailable) {
  // A budget far below what a round needs must surface as a clean
  // Unavailable failure, never a half-aggregated result. The same
  // config and seed trip at the same event on every machine, so this
  // is the deterministic twin of the wall-clock watchdog.
  RunConfig config;
  config.deployment.node_count = 100;
  config.seed = 21;
  config.control.event_budget = 50;
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  auto result = RunIpda(config, *function, *field);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("event budget"),
            std::string::npos);
  // Tag takes the same guard path through ApplyControl.
  auto tag = RunTag(config, *function, *field);
  ASSERT_FALSE(tag.ok());
  EXPECT_EQ(tag.status().code(), util::StatusCode::kUnavailable);
}

TEST(Runner, PreCancelledTokenAbortsBeforeAnyEvent) {
  RunConfig config;
  config.deployment.node_count = 100;
  config.seed = 22;
  sim::CancelToken token;
  token.RequestCancel(sim::CancelReason::kDeadline);
  config.control.cancel = &token;
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  auto result = RunIpda(config, *function, *field);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), util::StatusCode::kUnavailable);
  EXPECT_NE(result.status().message().find("cancelled"),
            std::string::npos);
  // The reason travels into the message for watchdog diagnostics.
  EXPECT_NE(result.status().message().find("deadline"),
            std::string::npos);
}

TEST(Runner, DefaultControlRunsToCompletion) {
  // Null token + zero budget is exactly the pre-guard behavior.
  RunConfig config;
  config.deployment.node_count = 100;
  config.seed = 23;
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  auto result = RunIpda(config, *function, *field);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
}

}  // namespace
}  // namespace ipda::agg
