// MAC behaviour: carrier sense, ARQ retransmission, dedup, drops.

#include "net/mac.h"

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/simulator.h"

namespace ipda::net {
namespace {

// Line topology 0 -- 1 -- 2 with hidden terminals 0/2.
std::unique_ptr<Topology> LineTopology() {
  auto topo = Topology::Build({{0, 0}, {40, 0}, {80, 0}}, 50.0);
  return std::make_unique<Topology>(std::move(*topo));
}

class MacTest : public ::testing::Test {
 protected:
  void Init(MacConfig config = {}) {
    sim_ = std::make_unique<sim::Simulator>(3);
    network_ = std::make_unique<Network>(sim_.get(), std::move(*LineTopology()),
                                         PhyConfig{}, config);
    for (NodeId id = 0; id < 3; ++id) {
      network_->node(id).SetReceiveHandler(
          [this, id](const Packet& packet) {
            received_.push_back({id, packet});
          });
    }
  }

  Packet DataPacket(NodeId dst, size_t bytes = 20) {
    Packet p;
    p.dst = dst;
    p.type = PacketType::kControl;
    p.payload.assign(bytes, 0x55);
    return p;
  }

  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<Network> network_;
  std::vector<std::pair<NodeId, Packet>> received_;
};

TEST_F(MacTest, UnicastDeliveredOnce) {
  Init();
  network_->node(0).Send(DataPacket(1));
  sim_->RunUntil(sim::Seconds(1));
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].first, 1u);
  EXPECT_EQ(received_[0].second.src, 0u);
}

TEST_F(MacTest, BroadcastDeliveredToAllNeighbors) {
  Init();
  network_->node(1).Send(DataPacket(kBroadcastId));
  sim_->RunUntil(sim::Seconds(1));
  EXPECT_EQ(received_.size(), 2u);  // Nodes 0 and 2.
}

TEST_F(MacTest, QueueDrainsInOrder) {
  Init();
  for (uint8_t i = 0; i < 5; ++i) {
    Packet p = DataPacket(1);
    p.payload[0] = i;
    network_->node(0).Send(std::move(p));
  }
  sim_->RunUntil(sim::Seconds(2));
  ASSERT_EQ(received_.size(), 5u);
  for (uint8_t i = 0; i < 5; ++i) {
    EXPECT_EQ(received_[i].second.payload[0], i);
  }
}

TEST_F(MacTest, HiddenTerminalRecoveredByArq) {
  // 0 and 2 cannot hear each other; both unicast long frames to 1 at the
  // same moment. ARQ retransmissions must eventually deliver both.
  Init();
  network_->node(0).Send(DataPacket(1, 200));
  network_->node(2).Send(DataPacket(1, 200));
  sim_->RunUntil(sim::Seconds(2));
  EXPECT_EQ(received_.size(), 2u);
  EXPECT_EQ(network_->counters().at(1).frames_collided +
                network_->counters().Totals().mac_drops,
            network_->counters().at(1).frames_collided);  // No drops.
}

TEST_F(MacTest, ArqDisabledLosesHiddenTerminalFrames) {
  MacConfig config;
  config.arq = false;
  Init(config);
  network_->node(0).Send(DataPacket(1, 200));
  network_->node(2).Send(DataPacket(1, 200));
  sim_->RunUntil(sim::Seconds(2));
  // Without ARQ the initial collision is final (backoffs are randomized,
  // but both first copies overlap; nothing retransmits).
  EXPECT_LT(received_.size(), 2u);
}

TEST_F(MacTest, DuplicateSuppression) {
  // Force ACK losses by having node 1's ACK collide: node 1 receives from
  // 0 while 2 is also transmitting long frames. Ultimately the app must
  // see each logical frame exactly once.
  Init();
  for (int i = 0; i < 10; ++i) {
    network_->node(0).Send(DataPacket(1, 150));
    network_->node(2).Send(DataPacket(1, 150));
  }
  sim_->RunUntil(sim::Seconds(5));
  size_t to_node1 = 0;
  for (const auto& [id, packet] : received_) {
    if (id == 1) ++to_node1;
  }
  EXPECT_LE(to_node1, 20u);  // Never more than sent: no duplicates.
  EXPECT_GE(to_node1, 18u);  // ARQ recovers nearly everything.
}

TEST_F(MacTest, SequencesIncreasePerSender) {
  Init();
  network_->node(0).Send(DataPacket(1));
  network_->node(0).Send(DataPacket(1));
  sim_->RunUntil(sim::Seconds(1));
  ASSERT_EQ(received_.size(), 2u);
  EXPECT_LT(received_[0].second.seq, received_[1].second.seq);
}

TEST_F(MacTest, AckFramesNeverReachApplication) {
  Init();
  network_->node(0).Send(DataPacket(1));
  sim_->RunUntil(sim::Seconds(1));
  for (const auto& [id, packet] : received_) {
    EXPECT_NE(packet.type, PacketType::kAck);
  }
  // ACK got counted as sent traffic by node 1.
  EXPECT_GE(network_->counters().at(1).frames_sent, 1u);
}

TEST_F(MacTest, UnicastToDeafNodeDropsAfterRetries) {
  // Node 0 unicasts to out-of-range node 2: no ACK can ever arrive.
  MacConfig config;
  config.max_retries = 3;
  Init(config);
  network_->node(0).Send(DataPacket(2));
  sim_->RunUntil(sim::Seconds(5));
  EXPECT_TRUE(received_.empty());
  EXPECT_EQ(network_->counters().at(0).mac_drops, 1u);
  // Original + 3 retries = 4 transmissions.
  EXPECT_EQ(network_->counters().at(0).frames_sent, 4u);
}

TEST_F(MacTest, DropDoesNotStallQueue) {
  MacConfig config;
  config.max_retries = 2;
  Init(config);
  network_->node(0).Send(DataPacket(2));  // Unreachable; will drop.
  network_->node(0).Send(DataPacket(1));  // Must still go through.
  sim_->RunUntil(sim::Seconds(5));
  ASSERT_EQ(received_.size(), 1u);
  EXPECT_EQ(received_[0].first, 1u);
}

TEST_F(MacTest, CarrierSenseDefersUntilChannelClear) {
  Init();
  // Node 1 transmits a very long broadcast; node 0 wants to send during
  // it. Node 0 must defer, then deliver.
  network_->node(1).Send(DataPacket(kBroadcastId, 1200));  // ~9.7 ms airtime.
  sim_->At(sim::Milliseconds(3), [&] {
    network_->node(0).Send(DataPacket(1, 20));
  });
  sim_->RunUntil(sim::Seconds(2));
  size_t node1_got = 0;
  for (const auto& [id, packet] : received_) {
    if (id == 1 && packet.src == 0) ++node1_got;
  }
  EXPECT_EQ(node1_got, 1u);
  EXPECT_EQ(network_->counters().at(1).frames_missed_tx, 0u);
}

TEST_F(MacTest, BusyChannelExhaustsAttempts) {
  // Jam the channel with back-to-back long broadcasts from node 1; node
  // 0's carrier sense never clears, so its frame dies after max_attempts.
  MacConfig config;
  config.max_attempts = 3;
  config.backoff_max = sim::Milliseconds(2);
  Init(config);
  // 12 kB at 1 Mbps ≈ 96 ms per frame; queue several for ~0.5 s of jam.
  for (int i = 0; i < 8; ++i) {
    Packet jam = DataPacket(kBroadcastId, 12000);
    network_->node(1).Send(std::move(jam));
  }
  sim_->At(sim::Milliseconds(5), [&] {
    network_->node(0).Send(DataPacket(1, 10));
  });
  sim_->RunUntil(sim::Seconds(3));
  EXPECT_EQ(network_->counters().at(0).mac_drops, 1u);
}

TEST_F(MacTest, AckLossTriggersRetransmissionNotDuplication) {
  // Node 2 (hidden from 0) jams node 1 briefly; node 0's early attempts
  // collide, retransmissions outlast the jam, and node 1 dedups: the app
  // sees the frame exactly once. Generous retries make delivery certain
  // for any collision interleaving (exact timings vary with FP flags).
  MacConfig config;
  config.max_retries = 30;
  Init(config);
  for (int i = 0; i < 4; ++i) {
    network_->node(2).Send(DataPacket(kBroadcastId, 400));
  }
  network_->node(0).Send(DataPacket(1, 40));
  sim_->RunUntil(sim::Seconds(5));
  size_t node1_data = 0;
  for (const auto& [id, packet] : received_) {
    if (id == 1 && packet.src == 0) ++node1_data;
  }
  EXPECT_EQ(node1_data, 1u);
}

TEST_F(MacTest, IdleReflectsState) {
  Init();
  EXPECT_TRUE(network_->node(0).mac().idle());
  network_->node(0).Send(DataPacket(1));
  EXPECT_FALSE(network_->node(0).mac().idle());
  sim_->RunUntil(sim::Seconds(1));
  EXPECT_TRUE(network_->node(0).mac().idle());
}

}  // namespace
}  // namespace ipda::net
