#include "attack/pollution.h"

#include <gtest/gtest.h>

#include "agg/aggregate_function.h"
#include "agg/reading.h"
#include "agg/runner.h"

namespace ipda::attack {
namespace {

using agg::TreeColor;
using agg::Vector;

TEST(PollutionHook, OnlyAttackersTamper) {
  PollutionConfig config;
  config.attackers = {3, 7};
  config.additive_delta = 5.0;
  auto hook = MakePollutionHook(config);
  Vector partial{10.0};
  hook(1, TreeColor::kRed, partial);
  EXPECT_EQ(partial[0], 10.0);  // Honest node untouched.
  hook(3, TreeColor::kRed, partial);
  EXPECT_EQ(partial[0], 15.0);
  hook(7, TreeColor::kBlue, partial);
  EXPECT_EQ(partial[0], 20.0);
}

TEST(PollutionHook, ScaleAttack) {
  PollutionConfig config;
  config.attackers = {1};
  config.scale = 0.5;  // Under-report (the paper's utility-bill fraud).
  auto hook = MakePollutionHook(config);
  Vector partial{200.0, 40.0};
  hook(1, TreeColor::kRed, partial);
  EXPECT_EQ(partial, (Vector{100.0, 20.0}));
}

TEST(PollutionHook, FiredCounterTracksActivations) {
  PollutionConfig config;
  config.attackers = {2};
  config.additive_delta = 1.0;
  size_t fired = 0;
  auto hook = MakePollutionHook(config, &fired);
  Vector partial{0.0};
  hook(2, TreeColor::kRed, partial);
  hook(2, TreeColor::kRed, partial);
  hook(5, TreeColor::kRed, partial);
  EXPECT_EQ(fired, 2u);
}

class PollutionDetection : public ::testing::TestWithParam<double> {};

TEST_P(PollutionDetection, AnyMeaningfulDeltaIsCaught) {
  // §IV-A-4: any individual polluter beyond Th is detected, whatever the
  // tampering magnitude or sign.
  agg::RunConfig config;
  config.deployment.node_count = 400;
  config.seed = 31337;
  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);
  agg::IpdaConfig ipda;
  ipda.slice_range = 1.0;
  PollutionConfig attack_config;
  attack_config.attackers = {50};
  attack_config.additive_delta = GetParam();
  size_t fired = 0;
  agg::IpdaRunHooks hooks;
  hooks.pollution = MakePollutionHook(attack_config, &fired);
  auto result = agg::RunIpda(config, *function, *field, ipda, hooks);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(fired, 0u);
  EXPECT_FALSE(result->stats.decision.accepted);
  EXPECT_GT(result->stats.decision.max_component_diff, ipda.threshold);
}

INSTANTIATE_TEST_SUITE_P(Deltas, PollutionDetection,
                         ::testing::Values(10.0, -25.0, 100.0, 1000.0,
                                           -500.0));

TEST(PollutionDetection, TamperingWithinThresholdSlipsThrough) {
  // The Th tolerance is a real trade-off: tampering smaller than Th is
  // indistinguishable from loss (the paper accepts this).
  agg::RunConfig config;
  config.deployment.node_count = 400;
  config.seed = 31338;
  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);
  agg::IpdaConfig ipda;
  ipda.slice_range = 1.0;
  ipda.threshold = 5.0;
  PollutionConfig attack_config;
  attack_config.attackers = {60};
  attack_config.additive_delta = 3.0;  // Below Th.
  size_t fired = 0;
  agg::IpdaRunHooks hooks;
  hooks.pollution = MakePollutionHook(attack_config, &fired);
  auto result = agg::RunIpda(config, *function, *field, ipda, hooks);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(fired, 0u);
  EXPECT_TRUE(result->stats.decision.accepted);
}

TEST(PollutionDetection, MultipleIndependentAttackersStillCaught) {
  agg::RunConfig config;
  config.deployment.node_count = 400;
  config.seed = 31339;
  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);
  agg::IpdaConfig ipda;
  ipda.slice_range = 1.0;
  PollutionConfig attack_config;
  attack_config.attackers = {10, 20, 30, 40};
  attack_config.additive_delta = 17.0;
  size_t fired = 0;
  agg::IpdaRunHooks hooks;
  hooks.pollution = MakePollutionHook(attack_config, &fired);
  auto result = agg::RunIpda(config, *function, *field, ipda, hooks);
  ASSERT_TRUE(result.ok());
  ASSERT_GT(fired, 1u);
  // Independent attackers land on random trees with random magnitudes:
  // exact cancellation is measure-zero.
  EXPECT_FALSE(result->stats.decision.accepted);
}

TEST(PollutionDetection, TagBaselineHasNoDefense) {
  // The same tampering against TAG goes completely unnoticed — TAG has no
  // redundancy check. We emulate tampering by comparing TAG's collected
  // value against truth: TAG accepts whatever arrives.
  agg::RunConfig config;
  config.deployment.node_count = 400;
  config.seed = 31340;
  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);
  auto result = agg::RunTag(config, *function, *field);
  ASSERT_TRUE(result.ok());
  // TAG exposes no acceptance decision at all; the collected result is
  // whatever the tree produced. (Structural check: TagStats has no
  // decision; this test documents the asymmetry.)
  EXPECT_GT(result->stats.collected[0], 0.0);
}

}  // namespace
}  // namespace ipda::attack
