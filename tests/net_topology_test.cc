#include "net/topology.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace ipda::net {
namespace {

TEST(Topology, BuildLinksWithinRangeOnly) {
  std::vector<Point2D> positions{{0, 0}, {30, 0}, {100, 0}, {115, 0}};
  auto topo = Topology::Build(positions, 50.0);
  ASSERT_TRUE(topo.ok());
  EXPECT_TRUE(topo->AreNeighbors(0, 1));
  EXPECT_FALSE(topo->AreNeighbors(0, 2));
  EXPECT_TRUE(topo->AreNeighbors(2, 3));
  EXPECT_FALSE(topo->AreNeighbors(1, 2));  // 70 m apart.
  EXPECT_EQ(topo->degree(0), 1u);
  EXPECT_EQ(topo->degree(2), 1u);
}

TEST(Topology, RangeBoundaryIsInclusive) {
  std::vector<Point2D> positions{{0, 0}, {50, 0}};
  auto topo = Topology::Build(positions, 50.0);
  ASSERT_TRUE(topo.ok());
  EXPECT_TRUE(topo->AreNeighbors(0, 1));
}

TEST(Topology, AdjacencyIsSymmetric) {
  util::Rng rng(5);
  DeploymentConfig config;
  config.node_count = 200;
  auto topo = Topology::RandomGeometric(config, 50.0, rng);
  ASSERT_TRUE(topo.ok());
  for (NodeId a = 0; a < topo->node_count(); ++a) {
    for (NodeId b : topo->neighbors(a)) {
      EXPECT_TRUE(topo->AreNeighbors(b, a)) << a << "<->" << b;
      EXPECT_NE(a, b);  // No self-loops.
    }
  }
}

TEST(Topology, RejectsBadInputs) {
  EXPECT_FALSE(Topology::Build({{0, 0}}, 0.0).ok());
  EXPECT_FALSE(Topology::Build({{0, 0}}, -5.0).ok());
  EXPECT_FALSE(Topology::Build({}, 50.0).ok());
}

TEST(Topology, AverageDegreeMatchesHandCount) {
  // Triangle plus one isolated node: degrees 2,2,2,0 -> mean 1.5.
  std::vector<Point2D> positions{{0, 0}, {10, 0}, {5, 8}, {500, 500}};
  auto topo = Topology::Build(positions, 20.0);
  ASSERT_TRUE(topo.ok());
  EXPECT_DOUBLE_EQ(topo->AverageDegree(), 1.5);
  EXPECT_EQ(topo->MinDegree(), 0u);
  EXPECT_EQ(topo->MaxDegree(), 2u);
}

TEST(Topology, ConnectivityAndHopCounts) {
  // Chain 0-1-2-3 with 40 m spacing, 50 m range.
  std::vector<Point2D> positions{{0, 0}, {40, 0}, {80, 0}, {120, 0}};
  auto topo = Topology::Build(positions, 50.0);
  ASSERT_TRUE(topo.ok());
  EXPECT_TRUE(topo->IsConnected());
  const auto hops = topo->HopCounts();
  EXPECT_EQ(hops[0], 0u);
  EXPECT_EQ(hops[1], 1u);
  EXPECT_EQ(hops[2], 2u);
  EXPECT_EQ(hops[3], 3u);
}

TEST(Topology, DisconnectedNodeDetected) {
  std::vector<Point2D> positions{{0, 0}, {40, 0}, {1000, 1000}};
  auto topo = Topology::Build(positions, 50.0);
  ASSERT_TRUE(topo.ok());
  EXPECT_FALSE(topo->IsConnected());
  EXPECT_EQ(topo->HopCounts()[2], UINT32_MAX);
}

TEST(Topology, RegularRingHasExactDegree) {
  auto topo = Topology::RegularRing(20, 6);
  ASSERT_TRUE(topo.ok());
  for (NodeId id = 0; id < topo->node_count(); ++id) {
    EXPECT_EQ(topo->degree(id), 6u);
  }
  EXPECT_TRUE(topo->IsConnected());
  EXPECT_DOUBLE_EQ(topo->AverageDegree(), 6.0);
}

TEST(Topology, RegularRingNeighborsAreRingAdjacent) {
  auto topo = Topology::RegularRing(10, 4);
  ASSERT_TRUE(topo.ok());
  // Node 0 links to 1,2 (forward) and 8,9 (backward).
  const std::set<NodeId> expected{1, 2, 8, 9};
  const auto& n = topo->neighbors(0);
  EXPECT_EQ(std::set<NodeId>(n.begin(), n.end()), expected);
}

TEST(Topology, RegularRingRejectsBadDegree) {
  EXPECT_FALSE(Topology::RegularRing(10, 3).ok());   // Odd.
  EXPECT_FALSE(Topology::RegularRing(10, 0).ok());   // Zero.
  EXPECT_FALSE(Topology::RegularRing(10, 10).ok());  // d >= n.
}

// Table I cross-check: on a 400x400 m area with r=50 m, the expected mean
// degree is about N * pi r^2 / A (minus edge effects). The paper reports
// 8.8 at N=200 up to 28.4 at N=600.
class TableOneDensity : public ::testing::TestWithParam<size_t> {};

TEST_P(TableOneDensity, AverageDegreeNearTheory) {
  const size_t n = GetParam();
  DeploymentConfig config;
  config.node_count = n;
  util::Rng rng(static_cast<uint64_t>(n) * 31 + 7);
  auto topo = Topology::RandomGeometric(config, 50.0, rng);
  ASSERT_TRUE(topo.ok());
  const double density_expected =
      static_cast<double>(n) * 3.14159265358979 * 50.0 * 50.0 /
      (400.0 * 400.0);
  // Edge effects depress the mean by up to ~20%; accept a band.
  EXPECT_GT(topo->AverageDegree(), 0.70 * density_expected);
  EXPECT_LT(topo->AverageDegree(), 1.05 * density_expected);
}

INSTANTIATE_TEST_SUITE_P(NetworkSizes, TableOneDensity,
                         ::testing::Values(200, 300, 400, 500, 600));

}  // namespace
}  // namespace ipda::net
