// KIPDA: crypto-free k-indistinguishable MAX/MIN aggregation.

#include "agg/kipda/kipda_protocol.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "agg/reading.h"
#include "agg/runner.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace ipda::agg {
namespace {

TEST(KipdaPrimitives, RealPositionsAreSecretSeedDeterministic) {
  KipdaConfig a;
  KipdaConfig b;
  EXPECT_EQ(KipdaRealPositions(a), KipdaRealPositions(b));
  b.secret_seed = 999;
  EXPECT_NE(KipdaRealPositions(a), KipdaRealPositions(b));
  const auto positions = KipdaRealPositions(a);
  EXPECT_EQ(positions.size(), a.real_positions);
  std::set<size_t> unique(positions.begin(), positions.end());
  EXPECT_EQ(unique.size(), positions.size());
  for (size_t pos : positions) EXPECT_LT(pos, a.message_size);
}

TEST(KipdaPrimitives, EncodePlacesReadingAndDominatedCamouflage) {
  KipdaConfig config;
  util::Rng rng(1);
  const auto real = KipdaRealPositions(config);
  for (int trial = 0; trial < 200; ++trial) {
    const double reading = rng.UniformDouble(10.0, 90.0);
    const Vector message = KipdaEncode(config, reading, rng);
    ASSERT_EQ(message.size(), config.message_size);
    // Every secret position is bounded by the reading (MAX mode)...
    double best = config.value_floor;
    for (size_t pos : real) {
      EXPECT_LE(message[pos], reading + 1e-12);
      best = std::max(best, message[pos]);
    }
    // ...and the reading itself sits on one of them.
    EXPECT_DOUBLE_EQ(best, reading);
  }
}

TEST(KipdaPrimitives, DecodeOfSingleMessageIsTheReading) {
  KipdaConfig config;
  util::Rng rng(2);
  for (double reading : {0.0, 13.5, 99.9}) {
    const Vector message = KipdaEncode(config, reading, rng);
    EXPECT_DOUBLE_EQ(KipdaDecode(config, message), reading);
  }
}

TEST(KipdaPrimitives, CombinedMessagesDecodeToMax) {
  KipdaConfig config;
  util::Rng rng(3);
  Vector acc(config.message_size, config.value_floor);
  double true_max = config.value_floor;
  for (int i = 0; i < 50; ++i) {
    const double reading = rng.UniformDouble(0.0, 100.0);
    true_max = std::max(true_max, reading);
    KipdaCombine(config, acc, KipdaEncode(config, reading, rng));
  }
  EXPECT_DOUBLE_EQ(KipdaDecode(config, acc), true_max);
}

TEST(KipdaPrimitives, MinModeMirrors) {
  KipdaConfig config;
  config.maximize = false;
  util::Rng rng(4);
  Vector acc(config.message_size, config.value_ceiling);
  double true_min = config.value_ceiling;
  for (int i = 0; i < 50; ++i) {
    const double reading = rng.UniformDouble(0.0, 100.0);
    true_min = std::min(true_min, reading);
    KipdaCombine(config, acc, KipdaEncode(config, reading, rng));
  }
  EXPECT_DOUBLE_EQ(KipdaDecode(config, acc), true_min);
}

TEST(KipdaPrimitives, CamouflageHidesTheReading) {
  // An attacker's best generic strategy — "the real value is the vector
  // max" — must fail often: free camouflage regularly exceeds the
  // reading. (This is the k-indistinguishability sales pitch.)
  KipdaConfig config;
  util::Rng rng(5);
  int attacker_right = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    const double reading = rng.UniformDouble(20.0, 60.0);
    const Vector message = KipdaEncode(config, reading, rng);
    const double guess =
        *std::max_element(message.begin(), message.end());
    if (guess == reading) ++attacker_right;
  }
  EXPECT_LT(static_cast<double>(attacker_right) / trials, 0.1);
}

TEST(KipdaPrimitives, ConfigValidation) {
  KipdaConfig config;
  EXPECT_TRUE(ValidateKipdaConfig(config).ok());
  config.message_size = 0;
  EXPECT_FALSE(ValidateKipdaConfig(config).ok());
  config = KipdaConfig{};
  config.real_positions = 0;
  EXPECT_FALSE(ValidateKipdaConfig(config).ok());
  config = KipdaConfig{};
  config.real_positions = config.message_size + 1;
  EXPECT_FALSE(ValidateKipdaConfig(config).ok());
  config = KipdaConfig{};
  config.value_floor = config.value_ceiling;
  EXPECT_FALSE(ValidateKipdaConfig(config).ok());
}

TEST(KipdaProtocol, ExactMaxOverRealNetwork) {
  RunConfig config;
  config.deployment.node_count = 400;
  config.seed = 61;
  auto topology = BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  sim::Simulator simulator(config.seed);
  net::Network network(&simulator, std::move(*topology));
  auto field = MakeUniformField(5.0, 95.0, 8);
  const auto readings = field->Sample(network.topology());
  KipdaProtocol protocol(&network);
  protocol.SetReadings(readings);
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  // True max over joined sensors: with a dense network everyone joins, so
  // compare against the global max.
  double true_max = 0.0;
  for (size_t i = 1; i < readings.size(); ++i) {
    true_max = std::max(true_max, readings[i]);
  }
  ASSERT_GT(protocol.stats().nodes_joined, 390u);
  EXPECT_DOUBLE_EQ(protocol.FinalizedResult(), true_max);
}

TEST(KipdaProtocol, ExactMinOverRealNetwork) {
  RunConfig config;
  config.deployment.node_count = 400;
  config.seed = 62;
  auto topology = BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  sim::Simulator simulator(config.seed);
  net::Network network(&simulator, std::move(*topology));
  auto field = MakeUniformField(5.0, 95.0, 9);
  const auto readings = field->Sample(network.topology());
  KipdaConfig kipda;
  kipda.maximize = false;
  KipdaProtocol protocol(&network, kipda);
  // Base station reading (index 0) defaults to 0 in Sample(); overwrite
  // so it cannot fake the minimum.
  auto adjusted = readings;
  adjusted[0] = kipda.value_ceiling;
  protocol.SetReadings(adjusted);
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  double true_min = 100.0;
  for (size_t i = 1; i < readings.size(); ++i) {
    true_min = std::min(true_min, readings[i]);
  }
  ASSERT_GT(protocol.stats().nodes_joined, 390u);
  EXPECT_DOUBLE_EQ(protocol.FinalizedResult(), true_min);
}

TEST(KipdaProtocol, NeverOvershootsTrueMax) {
  // Dominated camouflage guarantees result <= true max, loss or not.
  for (uint64_t seed : {70u, 71u, 72u}) {
    RunConfig config;
    config.deployment.node_count = 250;  // Sparse: losses likely.
    config.seed = seed;
    auto topology = BuildRunTopology(config);
    ASSERT_TRUE(topology.ok());
    sim::Simulator simulator(config.seed);
    net::Network network(&simulator, std::move(*topology));
    auto field = MakeUniformField(5.0, 95.0, seed);
    const auto readings = field->Sample(network.topology());
    KipdaProtocol protocol(&network);
    protocol.SetReadings(readings);
    protocol.Start();
    simulator.RunUntil(protocol.Duration());
    double true_max = 0.0;
    for (size_t i = 1; i < readings.size(); ++i) {
      true_max = std::max(true_max, readings[i]);
    }
    EXPECT_LE(protocol.FinalizedResult(), true_max + 1e-12);
  }
}

TEST(KipdaProtocol, WrongSecretReadsGarbage) {
  // A base station (or eavesdropper) without the right secret decodes
  // camouflage, typically overshooting the true max.
  RunConfig config;
  config.deployment.node_count = 400;
  config.seed = 63;
  auto topology = BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  sim::Simulator simulator(config.seed);
  net::Network network(&simulator, std::move(*topology));
  auto field = MakeUniformField(5.0, 50.0, 10);  // Max well below 100.
  const auto readings = field->Sample(network.topology());
  KipdaProtocol protocol(&network);
  protocol.SetReadings(readings);
  protocol.Start();
  simulator.RunUntil(protocol.Duration());

  KipdaConfig wrong;
  wrong.secret_seed = 0xBAD5EED;
  const double eavesdropped =
      KipdaDecode(wrong, protocol.stats().collected);
  double true_max = 0.0;
  for (size_t i = 1; i < readings.size(); ++i) {
    true_max = std::max(true_max, readings[i]);
  }
  EXPECT_GT(eavesdropped, true_max + 10.0);
}

}  // namespace
}  // namespace ipda::agg
