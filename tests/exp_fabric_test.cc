// Multi-process sweep fabric: shard partitioning, lease records, shard
// journal merging, and dispatcher supervision end-to-end against real
// worker processes (tests/fabric_worker_helper.cc) — including SIGKILL
// crash recovery, hung-worker revocation, retry exhaustion degrading to
// ok:false records, and chaos-kill byte-identity.

#include "exp/fabric.h"

#include <cstdio>
#include <cstdlib>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "exp/engine.h"
#include "exp/journal.h"
#include "util/proc.h"
#include "util/random.h"

#ifndef IPDA_FABRIC_WORKER
#error "IPDA_FABRIC_WORKER (helper binary path) must be defined"
#endif

namespace ipda::exp {
namespace {

// Grid the helper sweeps: 4 points x 8 runs, sweep seed 77.
constexpr size_t kPoints = 4;
constexpr size_t kRuns = 8;
constexpr uint64_t kSweepSeed = 77;
constexpr uint64_t kTotal = kPoints * kRuns;

std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "exp_fabric_test_" + name;
  // A stale directory would be adopted as a crashed fabric to resume.
  const std::string scrub = "rm -rf '" + dir + "'";
  EXPECT_EQ(std::system(scrub.c_str()), 0);
  return dir;
}

JournalHeader HelperHeader() {
  JournalHeader header;
  header.experiment = "fabric_helper";
  header.config_hash = util::HashLabel("fabric_helper|v=1");
  header.sweep_seed = kSweepSeed;
  header.total_runs = kTotal;
  return header;
}

// What the helper's body returns for flat index i, attempt 0 — the
// fabric must reproduce exactly this payload for every index no matter
// how many workers died on the way.
std::string ExpectedPayload(uint64_t i) {
  const size_t point = i / kRuns;
  const uint64_t seed =
      DeriveRunSeed(kSweepSeed, "p" + std::to_string(point), i % kRuns);
  return "index=" + std::to_string(i) + ",seed=" + std::to_string(seed);
}

// Worker command for the helper binary; `extra` appends fault-injection
// flags (possibly keyed on spec.attempt by the caller).
std::vector<std::string> HelperCommand(
    const WorkerSpec& spec, const std::vector<std::string>& extra = {}) {
  std::vector<std::string> argv = {
      IPDA_FABRIC_WORKER,
      "--points=" + std::to_string(kPoints),
      "--runs=" + std::to_string(kRuns),
      "--sweep-seed=" + std::to_string(kSweepSeed),
      "--range=" + std::to_string(spec.lo) + ":" + std::to_string(spec.hi),
      "--journal=" + spec.journal,
      "--heartbeat=" + spec.heartbeat,
  };
  if (!spec.resume.empty()) argv.push_back("--resume=" + spec.resume);
  argv.insert(argv.end(), extra.begin(), extra.end());
  return argv;
}

FabricOptions FastFabric(const std::string& dir) {
  FabricOptions options;
  options.workers = 2;
  options.dir = dir;
  options.poll_interval_s = 0.02;
  options.backoff_base_s = 0.01;
  options.backoff_max_s = 0.05;
  options.worker_timeout_s = 10.0;  // Effectively off unless a test hangs.
  options.drain_on_signal = false;
  return options;
}

void ExpectCleanReport(const ResilientReport& report) {
  ASSERT_EQ(report.runs.size(), kTotal);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(report.skipped, 0u);
  EXPECT_FALSE(report.drained);
  for (uint64_t i = 0; i < kTotal; ++i) {
    EXPECT_TRUE(report.runs[i].ok) << i;
    EXPECT_EQ(report.runs[i].payload, ExpectedPayload(i)) << i;
  }
}

TEST(PartitionShards, CoversEveryIndexOnce) {
  const auto shards = PartitionShards(100, 3, 2);
  ASSERT_EQ(shards.size(), 6u);
  uint64_t expect_lo = 0;
  for (const ShardRange& s : shards) {
    EXPECT_EQ(s.lo, expect_lo);
    EXPECT_GT(s.hi, s.lo);
    expect_lo = s.hi;
  }
  EXPECT_EQ(expect_lo, 100u);
  // Near-equal: remainder spreads one extra run over the first shards.
  EXPECT_EQ(shards[0].hi - shards[0].lo, 17u);
  EXPECT_EQ(shards[5].hi - shards[5].lo, 16u);
}

TEST(PartitionShards, NeverMoreShardsThanRuns) {
  const auto shards = PartitionShards(3, 4, 2);
  ASSERT_EQ(shards.size(), 3u);
  for (const ShardRange& s : shards) EXPECT_EQ(s.hi - s.lo, 1u);
  EXPECT_TRUE(PartitionShards(0, 4, 2).empty());
  // Degenerate worker counts still produce a usable partition.
  EXPECT_EQ(PartitionShards(10, 0, 0).size(), 1u);
}

TEST(Lease, RoundTripsThroughDisk) {
  const std::string dir = FreshDir("lease");
  ASSERT_TRUE(util::MakeDirs(dir).ok());
  LeaseRecord lease;
  lease.shard = 3;
  lease.lo = 24;
  lease.hi = 32;
  lease.attempt = 2;
  lease.pid = 4242;
  lease.state = "running";
  lease.journal = dir + "/shard3_a2.jsonl";
  lease.heartbeat = dir + "/hb_shard3_a2";
  const std::string path = dir + "/shard3.lease";
  ASSERT_TRUE(WriteLease(path, lease).ok());
  auto read = ReadLease(path);
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->shard, 3u);
  EXPECT_EQ(read->lo, 24u);
  EXPECT_EQ(read->hi, 32u);
  EXPECT_EQ(read->attempt, 2u);
  EXPECT_EQ(read->pid, 4242);
  EXPECT_EQ(read->state, "running");
  EXPECT_EQ(read->journal, lease.journal);
  EXPECT_EQ(read->heartbeat, lease.heartbeat);
  EXPECT_FALSE(ReadLease(dir + "/absent.lease").ok());
}

TEST(ParseShardRangeTest, AcceptsLoHiRejectsGarbage) {
  auto range = ParseShardRange("24:32");
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->lo, 24u);
  EXPECT_EQ(range->hi, 32u);
  EXPECT_FALSE(ParseShardRange("").ok());
  EXPECT_FALSE(ParseShardRange("24").ok());
  EXPECT_FALSE(ParseShardRange(":32").ok());
  EXPECT_FALSE(ParseShardRange("24:").ok());
  EXPECT_FALSE(ParseShardRange("x:y").ok());
  EXPECT_FALSE(ParseShardRange("32:24").ok());  // hi < lo.
}

TEST(MergeShards, DedupsByDeterministicPreference) {
  const std::string dir = FreshDir("merge_dedup");
  ASSERT_TRUE(util::MakeDirs(dir).ok());
  JournalHeader header = HelperHeader();
  const std::string a = dir + "/a.jsonl";
  const std::string b = dir + "/b.jsonl";
  {
    auto writer = JournalWriter::Create(a, header);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->WriteRun({0, 9, 2, true, "two-attempt"}).ok());
    ASSERT_TRUE(writer->WriteRun({1, 5, 1, false, "gave up"}).ok());
  }
  {
    auto writer = JournalWriter::Create(b, header);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->WriteRun({0, 9, 1, true, "one-attempt"}).ok());
    ASSERT_TRUE(writer->WriteRun({1, 5, 1, true, "recovered"}).ok());
  }
  for (const auto& order :
       {std::vector<std::string>{a, b}, std::vector<std::string>{b, a}}) {
    ShardMergeStats stats;
    auto merged = MergeShardJournals(order, header, &stats);
    ASSERT_TRUE(merged.ok());
    EXPECT_EQ(stats.journals, 2u);
    EXPECT_EQ(stats.records, 4u);
    EXPECT_EQ(stats.duplicates, 2u);
    // ok beats !ok; fewer attempts beats more — in either scan order.
    EXPECT_EQ(merged->runs.at(0).payload, "one-attempt");
    EXPECT_EQ(merged->runs.at(1).payload, "recovered");
  }
}

TEST(MergeShards, TornHeaderJournalIsSkippedWhole) {
  const std::string dir = FreshDir("merge_torn");
  ASSERT_TRUE(util::MakeDirs(dir).ok());
  JournalHeader header = HelperHeader();
  const std::string good = dir + "/good.jsonl";
  {
    auto writer = JournalWriter::Create(good, header);
    ASSERT_TRUE(writer.ok());
    ASSERT_TRUE(writer->WriteRun({4, 1, 1, true, "kept"}).ok());
  }
  const std::string torn = dir + "/torn.jsonl";
  {
    std::FILE* f = std::fopen(torn.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("{\"type\":\"head", f);  // Worker died before first fsync.
    std::fclose(f);
  }
  ShardMergeStats stats;
  auto merged = MergeShardJournals({good, torn}, header, &stats);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(stats.journals, 1u);
  EXPECT_EQ(stats.empty_journals, 1u);
  EXPECT_EQ(stats.corrupt_lines, 1u);
  EXPECT_EQ(merged->runs.size(), 1u);
}

TEST(MergeShards, ForeignSweepIsRejected) {
  const std::string dir = FreshDir("merge_foreign");
  ASSERT_TRUE(util::MakeDirs(dir).ok());
  JournalHeader other = HelperHeader();
  other.sweep_seed ^= 1;
  const std::string path = dir + "/foreign.jsonl";
  ASSERT_TRUE(JournalWriter::Create(path, other).ok());
  auto merged = MergeShardJournals({path}, HelperHeader(), nullptr);
  ASSERT_FALSE(merged.ok());
  EXPECT_EQ(merged.status().code(), util::StatusCode::kFailedPrecondition);
}

TEST(Heartbeat, KeepsFileFresh) {
  const std::string dir = FreshDir("heartbeat");
  ASSERT_TRUE(util::MakeDirs(dir).ok());
  const std::string path = dir + "/hb";
  {
    HeartbeatThread thread(path, 0.02);
    auto age = util::FileAgeSeconds(path);
    // First touch happens on thread start.
    for (int i = 0; i < 100 && !age.ok(); ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      age = util::FileAgeSeconds(path);
    }
    ASSERT_TRUE(age.ok());
    EXPECT_LT(*age, 5.0);
    thread.Stop();
    thread.Stop();  // Idempotent.
  }
  // Destruction after Stop must not crash; default-constructed is inert.
  HeartbeatThread idle;
  idle.Stop();
}

// --- End-to-end against real worker processes -------------------------

TEST(FabricSweep, CleanRunMatchesExpectedPayloads) {
  const std::string dir = FreshDir("clean");
  FabricStats stats;
  auto report = RunFabricSweep(
      FastFabric(dir), HelperHeader(),
      [](const WorkerSpec& spec) { return HelperCommand(spec); }, &stats);
  ASSERT_TRUE(report.ok());
  ExpectCleanReport(*report);
  EXPECT_EQ(stats.shards, 4u);
  EXPECT_EQ(stats.spawned, 4u);
  EXPECT_EQ(stats.worker_deaths, 0u);
  EXPECT_EQ(stats.failed_shards, 0u);
  EXPECT_EQ(stats.merge.records, kTotal);
  // Leases ended in "done" with the final attempt on record.
  auto lease = ReadLease(dir + "/shard0.lease");
  ASSERT_TRUE(lease.ok());
  EXPECT_EQ(lease->state, "done");
  EXPECT_EQ(lease->attempt, 1u);
}

TEST(FabricSweep, SecondDispatcherIsLockedOut) {
  const std::string dir = FreshDir("locked");
  ASSERT_TRUE(util::MakeDirs(dir).ok());
  auto lock = util::LockFile::Acquire(dir + "/dispatcher.lock");
  ASSERT_TRUE(lock.ok());
  auto report = RunFabricSweep(
      FastFabric(dir), HelperHeader(),
      [](const WorkerSpec& spec) { return HelperCommand(spec); });
  EXPECT_FALSE(report.ok());
}

TEST(FabricSweep, SigkilledWorkerIsResumedByteIdentically) {
  const std::string dir = FreshDir("crash");
  FabricStats stats;
  // Every shard's FIRST attempt dies by SIGKILL mid-shard (after 4 runs,
  // mimicking a machine crash); retries run clean and resume from the
  // dead worker's journal.
  const auto command = [](const WorkerSpec& spec) {
    std::vector<std::string> extra;
    if (spec.attempt == 1) extra.push_back("--crash-after=4");
    return HelperCommand(spec, extra);
  };
  auto report =
      RunFabricSweep(FastFabric(dir), HelperHeader(), command, &stats);
  ASSERT_TRUE(report.ok());
  ExpectCleanReport(*report);
  EXPECT_EQ(stats.worker_deaths, 4u);
  EXPECT_EQ(stats.spawned, 8u);  // 4 crashed + 4 resumed.
  EXPECT_EQ(stats.failed_shards, 0u);
  // Attempt 2 re-emits the resumed records into its own journal, so the
  // merge sees (and dedups) duplicates of the pre-crash runs.
  EXPECT_GE(stats.merge.duplicates, 4u);
}

TEST(FabricSweep, HungWorkerIsRevokedAndRedispatched) {
  const std::string dir = FreshDir("hung");
  FabricOptions options = FastFabric(dir);
  options.worker_timeout_s = 0.4;
  FabricStats stats;
  // Shard 0's first attempt goes silent (stops heartbeating, stalls)
  // after 2 runs; everyone else is healthy.
  const auto command = [](const WorkerSpec& spec) {
    std::vector<std::string> extra = {"--heartbeat-interval=0.05"};
    if (spec.shard == 0 && spec.attempt == 1) {
      extra.push_back("--hang-after=2");
    }
    return HelperCommand(spec, extra);
  };
  auto report = RunFabricSweep(options, HelperHeader(), command, &stats);
  ASSERT_TRUE(report.ok());
  ExpectCleanReport(*report);
  EXPECT_GE(stats.hung_revocations, 1u);
  EXPECT_EQ(stats.failed_shards, 0u);
}

TEST(FabricSweep, ExhaustedRetriesDegradeToFalseRecords) {
  const std::string dir = FreshDir("terminal");
  FabricOptions options = FastFabric(dir);
  options.shard_retries = 1;  // 2 attempts per shard, then degrade.
  FabricStats stats;
  // The shard owning index 0 crashes INSTANTLY on every attempt — its
  // retry budget exhausts and its runs degrade; other shards complete.
  const auto command = [](const WorkerSpec& spec) {
    std::vector<std::string> extra;
    if (spec.lo == 0) extra.push_back("--crash-after=0");
    return HelperCommand(spec, extra);
  };
  auto report = RunFabricSweep(options, HelperHeader(), command, &stats);
  ASSERT_TRUE(report.ok());  // Degradation is policy, not an error.
  EXPECT_EQ(stats.failed_shards, 1u);
  EXPECT_EQ(stats.worker_deaths, 2u);
  // 2 workers x 2 shards_per_worker = 4 shards of 8 runs each.
  const uint64_t shard_len = kTotal / 4;
  EXPECT_EQ(stats.degraded_records, shard_len);
  EXPECT_EQ(report->failed, shard_len);
  for (uint64_t i = 0; i < kTotal; ++i) {
    if (i < shard_len) {
      EXPECT_FALSE(report->runs[i].ok) << i;
      EXPECT_NE(report->runs[i].payload.find("failed terminally"),
                std::string::npos)
          << i;
    } else {
      EXPECT_TRUE(report->runs[i].ok) << i;
      EXPECT_EQ(report->runs[i].payload, ExpectedPayload(i)) << i;
    }
  }
  auto lease = ReadLease(dir + "/shard0.lease");
  ASSERT_TRUE(lease.ok());
  EXPECT_EQ(lease->state, "failed");
}

TEST(FabricSweep, ChaosKillsPreserveByteIdentity) {
  const std::string dir = FreshDir("chaos");
  FabricOptions options = FastFabric(dir);
  options.chaos_kill_rate = 1.0;  // One planned SIGKILL per shard.
  FabricStats stats;
  // Slow runs stretch each shard so the planned kills land mid-flight.
  const auto command = [](const WorkerSpec& spec) {
    return HelperCommand(spec, {"--sleep-ms=20"});
  };
  auto report = RunFabricSweep(options, HelperHeader(), command, &stats);
  ASSERT_TRUE(report.ok());
  ExpectCleanReport(*report);  // Byte-identical payloads despite kills.
  EXPECT_GE(stats.chaos_kills, 1u);
  EXPECT_EQ(stats.failed_shards, 0u);
}

TEST(FabricSweep, WritesMergedJournalForSingleProcessResume) {
  const std::string dir = FreshDir("merged_journal");
  FabricOptions options = FastFabric(dir);
  options.merged_journal_path = dir + "/merged.jsonl";
  auto report = RunFabricSweep(
      options, HelperHeader(),
      [](const WorkerSpec& spec) { return HelperCommand(spec); }, nullptr);
  ASSERT_TRUE(report.ok());
  auto merged = JournalReader::Load(options.merged_journal_path);
  ASSERT_TRUE(merged.ok());
  EXPECT_EQ(merged->header.config_hash, HelperHeader().config_hash);
  ASSERT_EQ(merged->runs.size(), kTotal);
  for (uint64_t i = 0; i < kTotal; ++i) {
    EXPECT_EQ(merged->runs.at(i).payload, ExpectedPayload(i)) << i;
  }
}

}  // namespace
}  // namespace ipda::exp
