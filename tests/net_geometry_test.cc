#include "net/geometry.h"

#include <gtest/gtest.h>

#include "net/deployment.h"
#include "util/random.h"

namespace ipda::net {
namespace {

TEST(Geometry, DistanceBasics) {
  EXPECT_DOUBLE_EQ(Distance({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(Distance({1, 1}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(DistanceSquared({0, 0}, {3, 4}), 25.0);
}

TEST(Geometry, DistanceIsSymmetric) {
  const Point2D a{2.5, -1.0};
  const Point2D b{-3.0, 7.5};
  EXPECT_DOUBLE_EQ(Distance(a, b), Distance(b, a));
}

TEST(Geometry, AreaContains) {
  const Area area{400, 400};
  EXPECT_TRUE(area.Contains({0, 0}));
  EXPECT_TRUE(area.Contains({400, 400}));
  EXPECT_TRUE(area.Contains({200, 399}));
  EXPECT_FALSE(area.Contains({-0.1, 10}));
  EXPECT_FALSE(area.Contains({10, 400.1}));
}

TEST(Geometry, AreaCenter) {
  const Area area{400, 300};
  EXPECT_EQ(area.Center(), (Point2D{200, 150}));
}

TEST(Deployment, UniformPlacesAllNodesInsideArea) {
  DeploymentConfig config;
  config.node_count = 500;
  util::Rng rng(1);
  auto positions = UniformDeployment(config, rng);
  ASSERT_TRUE(positions.ok());
  ASSERT_EQ(positions->size(), 500u);
  for (const Point2D& p : *positions) {
    EXPECT_TRUE(config.area.Contains(p));
  }
}

TEST(Deployment, BaseStationPlacementModes) {
  DeploymentConfig config;
  config.node_count = 10;

  util::Rng rng(2);
  config.base_station = BaseStationPlacement::kCenter;
  EXPECT_EQ((*UniformDeployment(config, rng))[0], (Point2D{200, 200}));

  config.base_station = BaseStationPlacement::kCorner;
  EXPECT_EQ((*UniformDeployment(config, rng))[0], (Point2D{0, 0}));

  config.base_station = BaseStationPlacement::kRandom;
  const Point2D p = (*UniformDeployment(config, rng))[0];
  EXPECT_TRUE(config.area.Contains(p));
}

TEST(Deployment, RejectsDegenerateConfigs) {
  util::Rng rng(3);
  DeploymentConfig config;
  config.node_count = 1;
  EXPECT_FALSE(UniformDeployment(config, rng).ok());
  config.node_count = 10;
  config.area = Area{0.0, 400.0};
  EXPECT_FALSE(UniformDeployment(config, rng).ok());
}

TEST(Deployment, DeterministicGivenRngState) {
  DeploymentConfig config;
  config.node_count = 50;
  util::Rng a(7);
  util::Rng b(7);
  auto pa = UniformDeployment(config, a);
  auto pb = UniformDeployment(config, b);
  ASSERT_TRUE(pa.ok());
  ASSERT_TRUE(pb.ok());
  EXPECT_EQ(*pa, *pb);
}

TEST(Deployment, GridIsEvenlySpacedAndInside) {
  DeploymentConfig config;
  config.node_count = 100;
  config.base_station = BaseStationPlacement::kRandom;  // Keep grid pure.
  auto positions = GridDeployment(config);
  ASSERT_TRUE(positions.ok());
  EXPECT_EQ(positions->size(), 100u);  // 10x10.
  for (const Point2D& p : *positions) {
    EXPECT_TRUE(config.area.Contains(p));
  }
  // First two grid points share y and differ by the x pitch.
  EXPECT_DOUBLE_EQ((*positions)[0].y, (*positions)[1].y);
  const double pitch = (*positions)[1].x - (*positions)[0].x;
  EXPECT_NEAR(pitch, 400.0 / 11.0, 1e-9);
}

TEST(Deployment, GridRoundsDownToSquare) {
  DeploymentConfig config;
  config.node_count = 90;  // floor(sqrt(90)) = 9 -> 81 nodes.
  config.base_station = BaseStationPlacement::kRandom;
  auto positions = GridDeployment(config);
  ASSERT_TRUE(positions.ok());
  EXPECT_EQ(positions->size(), 81u);
}

}  // namespace
}  // namespace ipda::net
