#include "net/energy.h"

#include <gtest/gtest.h>

#include "net/network.h"
#include "sim/simulator.h"

namespace ipda::net {
namespace {

TEST(EnergyModel, FirstOrderRadioMath) {
  EnergyModel model;
  // 100 bytes = 800 bits at 50 m: 800*(50e-9 + 100e-12*2500).
  const double expected_tx = 800.0 * (50e-9 + 100e-12 * 2500.0);
  EXPECT_NEAR(model.TxCost(100, 50.0), expected_tx, 1e-15);
  EXPECT_NEAR(model.RxCost(100), 800.0 * 50e-9, 1e-15);
  // Tx always costs at least Rx (amplifier on top of electronics).
  EXPECT_GT(model.TxCost(100, 1.0), model.RxCost(100));
}

TEST(EnergyModel, QuadraticInRange) {
  EnergyModel model;
  const double d1 = model.TxCost(100, 10.0) - model.RxCost(100);
  const double d2 = model.TxCost(100, 20.0) - model.RxCost(100);
  EXPECT_NEAR(d2 / d1, 4.0, 1e-9);
}

TEST(EnergyAccounting, ChannelChargesSenderAndReceivers) {
  auto topo = Topology::Build({{0, 0}, {40, 0}, {40, 30}}, 50.0);
  sim::Simulator simulator(1);
  Network network(&simulator, std::move(*topo));
  Packet p;
  p.dst = kBroadcastId;
  p.type = PacketType::kControl;
  p.payload.assign(83, 0);  // 100 B frame.
  network.node(0).Send(p);
  simulator.RunUntil(sim::Seconds(1));

  const EnergyModel model;
  EXPECT_NEAR(network.counters().at(0).energy_tx_j,
              model.TxCost(100, 50.0), 1e-12);
  EXPECT_EQ(network.counters().at(0).energy_rx_j, 0.0);
  // Both neighbors listened to the whole frame.
  EXPECT_NEAR(network.counters().at(1).energy_rx_j, model.RxCost(100),
              1e-12);
  EXPECT_NEAR(network.counters().at(2).energy_rx_j, model.RxCost(100),
              1e-12);
  EXPECT_NEAR(network.counters().Totals().TotalEnergyJ(),
              model.TxCost(100, 50.0) + 2 * model.RxCost(100), 1e-12);
}

TEST(EnergyAccounting, CorruptedReceptionsStillCost) {
  // Hidden-terminal collision: the receiver's radio listened to both
  // frames even though neither was delivered.
  auto topo = Topology::Build({{0, 0}, {40, 0}, {80, 0}}, 50.0);
  sim::Simulator simulator(2);
  Network network(&simulator, std::move(*topo));
  net::Channel& channel = network.channel();
  Packet p;
  p.dst = 1;
  p.type = PacketType::kControl;
  p.payload.assign(83, 0);
  simulator.At(sim::Microseconds(10), [&, p] {
    channel.StartTransmission(0, p);
  });
  simulator.At(sim::Microseconds(10), [&, p] {
    channel.StartTransmission(2, p);
  });
  simulator.RunAll();
  const EnergyModel model;
  EXPECT_EQ(network.counters().at(1).frames_collided, 2u);
  EXPECT_NEAR(network.counters().at(1).energy_rx_j, 2 * model.RxCost(100),
              1e-12);
}

TEST(EnergyAccounting, CustomModelThroughPhyConfig) {
  auto topo = Topology::Build({{0, 0}, {40, 0}}, 50.0);
  PhyConfig phy;
  phy.energy.e_elec_j_per_bit = 1e-6;  // Hot radio.
  phy.energy.e_amp_j_per_bit_m2 = 0.0;
  sim::Simulator simulator(3);
  Network network(&simulator, std::move(*topo), phy);
  Packet p;
  p.dst = 1;
  p.type = PacketType::kControl;
  network.node(0).Send(p);
  simulator.RunUntil(sim::Seconds(1));
  // Frame = 17 B header = 136 bits at 1 uJ/bit.
  EXPECT_NEAR(network.counters().at(0).energy_tx_j, 136e-6, 1e-9);
}

}  // namespace
}  // namespace ipda::net
