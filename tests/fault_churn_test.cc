// Churn subsystem: spec parsing with positional diagnostics, the patch
// overlay on net::Topology (detach/attach/move/compact), and the
// determinism contract for seeded churn/mobility processes.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "fault/churn_injector.h"
#include "fault/churn_plan.h"
#include "fault/fault_plan.h"
#include "net/network.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace ipda {
namespace {

std::vector<net::NodeId> NeighborsOf(const net::Topology& topo,
                                     net::NodeId id) {
  const net::NeighborSpan span = topo.neighbors(id);
  return std::vector<net::NodeId>(span.begin(), span.end());
}

// --- ChurnPlan parsing ---

TEST(ChurnPlan, ParsesFullSpec) {
  auto plan = fault::ParseChurnSpec(
      "join=5@4.5,move=7:120:120:10@4.3,leave=9@4.7,churn=0.5:2,"
      "mobility=0.25:10");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ASSERT_EQ(plan->joins.size(), 1u);
  EXPECT_EQ(plan->joins[0].node, 5u);
  EXPECT_EQ(plan->joins[0].at, sim::SecondsF(4.5));
  ASSERT_EQ(plan->moves.size(), 1u);
  EXPECT_EQ(plan->moves[0].node, 7u);
  EXPECT_DOUBLE_EQ(plan->moves[0].to.x, 120.0);
  EXPECT_DOUBLE_EQ(plan->moves[0].to.y, 120.0);
  EXPECT_DOUBLE_EQ(plan->moves[0].speed_mps, 10.0);
  ASSERT_EQ(plan->leaves.size(), 1u);
  EXPECT_EQ(plan->leaves[0].node, 9u);
  EXPECT_DOUBLE_EQ(plan->churn.rate_hz, 0.5);
  EXPECT_EQ(plan->churn.downtime, sim::Seconds(2));
  EXPECT_DOUBLE_EQ(plan->mobility.fraction, 0.25);
  EXPECT_DOUBLE_EQ(plan->mobility.speed_mps, 10.0);
  EXPECT_FALSE(plan->empty());
}

TEST(ChurnPlan, EmptySpecIsEmptyPlan) {
  auto plan = fault::ParseChurnSpec("");
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->empty());
}

TEST(ChurnPlan, SpecRoundTripsThroughToString) {
  const char* spec = "join=5@4.5,move=7:120:120:10@4.3,leave=9@4.7,"
                     "churn=0.5:2,mobility=0.25:10";
  auto plan = fault::ParseChurnSpec(spec);
  ASSERT_TRUE(plan.ok());
  auto reparsed = fault::ParseChurnSpec(fault::ChurnSpecToString(*plan));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(fault::ChurnSpecToString(*reparsed),
            fault::ChurnSpecToString(*plan));
}

TEST(ChurnPlan, RejectsBadSpecs) {
  EXPECT_FALSE(fault::ParseChurnSpec("join=0@1").ok());  // Base station.
  EXPECT_FALSE(fault::ParseChurnSpec("leave=5").ok());   // No @time.
  EXPECT_FALSE(fault::ParseChurnSpec("join=x@1").ok());
  EXPECT_FALSE(fault::ParseChurnSpec("move=5:10:10@1").ok());  // No speed.
  EXPECT_FALSE(fault::ParseChurnSpec("move=5:10:10:0@1").ok());
  EXPECT_FALSE(fault::ParseChurnSpec("churn=-0.5").ok());
  EXPECT_FALSE(fault::ParseChurnSpec("mobility=1.5:10").ok());
  EXPECT_FALSE(fault::ParseChurnSpec("mobility=0.5").ok());
  EXPECT_FALSE(fault::ParseChurnSpec("teleport=5@1").ok());
}

TEST(ChurnPlan, DiagnosticsCarryDirectiveNumberAndToken) {
  auto plan = fault::ParseChurnSpec("join=5@4.5,leave=abc@2");
  ASSERT_FALSE(plan.ok());
  const std::string message = plan.status().ToString();
  EXPECT_NE(message.find("directive 2"), std::string::npos) << message;
  EXPECT_NE(message.find("abc"), std::string::npos) << message;

  auto unknown = fault::ParseChurnSpec("join=5@4.5,leave=9@2,warp=1@3");
  ASSERT_FALSE(unknown.ok());
  const std::string unknown_message = unknown.status().ToString();
  EXPECT_NE(unknown_message.find("directive 3"), std::string::npos)
      << unknown_message;
  EXPECT_NE(unknown_message.find("warp"), std::string::npos)
      << unknown_message;
}

TEST(ChurnPlan, RejectsDuplicateEvents) {
  EXPECT_FALSE(fault::ParseChurnSpec("join=5@4.5,join=5@4.5").ok());
  EXPECT_FALSE(fault::ParseChurnSpec("leave=5@1,leave=5@1").ok());
  EXPECT_FALSE(fault::ParseChurnSpec("churn=0.5,churn=1.0").ok());
  EXPECT_FALSE(
      fault::ParseChurnSpec("mobility=0.2:5,mobility=0.3:5").ok());
  // Same node at different times is a legal schedule.
  EXPECT_TRUE(fault::ParseChurnSpec("leave=5@1,join=5@2,leave=5@3").ok());
}

// --- FaultPlan diagnostics (S1) ---

TEST(FaultPlanDiagnostics, CarryDirectiveNumberAndToken) {
  auto plan = fault::ParseFaultSpec("crash=5@1,warp=0.5");
  ASSERT_FALSE(plan.ok());
  const std::string message = plan.status().ToString();
  EXPECT_NE(message.find("directive 2"), std::string::npos) << message;
  EXPECT_NE(message.find("warp"), std::string::npos) << message;

  auto bad_value = fault::ParseFaultSpec("loss=0.05,dup=oops");
  ASSERT_FALSE(bad_value.ok());
  const std::string value_message = bad_value.status().ToString();
  EXPECT_NE(value_message.find("directive 2"), std::string::npos)
      << value_message;
  EXPECT_NE(value_message.find("oops"), std::string::npos) << value_message;
}

TEST(FaultPlanDiagnostics, RejectsDuplicateDirectives) {
  EXPECT_FALSE(fault::ParseFaultSpec("crash=5@1,crash=5@1").ok());
  EXPECT_FALSE(fault::ParseFaultSpec("loss=0.05,loss=0.06").ok());
  EXPECT_FALSE(fault::ParseFaultSpec("jitter=2,jitter=3").ok());
  // Same node, different times: legal.
  EXPECT_TRUE(fault::ParseFaultSpec("crash=5@1,recover=5@2,crash=5@3").ok());
}

TEST(FaultPlanDiagnostics, RejectsRecoveryOfNeverCrashedNode) {
  auto plan = fault::ParseFaultSpec("recover=9@2");
  ASSERT_FALSE(plan.ok());
  const std::string message = plan.status().ToString();
  EXPECT_NE(message.find("9"), std::string::npos) << message;

  // crash-frac may crash anyone, so recoveries against it stay legal.
  EXPECT_TRUE(
      fault::ParseFaultSpec("crash-frac=0.1@1,recover=9@2").ok());
  EXPECT_TRUE(fault::ParseFaultSpec("crash=9@1,recover=9@2").ok());
}

// --- Topology patch overlay ---

net::Topology LineTopology() {
  // 0 - 1 - 2 - 3 in a line, 40 m apart, 50 m range: only adjacent
  // nodes link.
  auto topo = net::Topology::Build(
      {{0, 0}, {40, 0}, {80, 0}, {120, 0}}, 50.0);
  EXPECT_TRUE(topo.ok());
  return std::move(*topo);
}

TEST(TopologyChurn, DetachRemovesBothSidesOfEveryEdge) {
  net::Topology topo = LineTopology();
  topo.DetachNode(1);
  EXPECT_FALSE(topo.active(1));
  EXPECT_TRUE(topo.mutated());
  EXPECT_TRUE(topo.neighbors(1).empty());
  EXPECT_EQ(NeighborsOf(topo, 0), std::vector<net::NodeId>{});
  EXPECT_EQ(NeighborsOf(topo, 2), std::vector<net::NodeId>{3});
  EXPECT_FALSE(topo.AreNeighbors(0, 1));
}

TEST(TopologyChurn, AttachRestoresUnitDiskEdges) {
  net::Topology topo = LineTopology();
  topo.DetachNode(1);
  topo.AttachNode(1);
  EXPECT_TRUE(topo.active(1));
  EXPECT_EQ(NeighborsOf(topo, 1), (std::vector<net::NodeId>{0, 2}));
  EXPECT_EQ(NeighborsOf(topo, 0), std::vector<net::NodeId>{1});
  EXPECT_TRUE(topo.AreNeighbors(1, 2));
}

TEST(TopologyChurn, AttachIgnoresDetachedNeighbors) {
  net::Topology topo = LineTopology();
  topo.DetachNode(1);
  topo.DetachNode(2);
  topo.AttachNode(1);
  // 2 is still down, so 1 only regains the edge to 0.
  EXPECT_EQ(NeighborsOf(topo, 1), std::vector<net::NodeId>{0});
  EXPECT_TRUE(topo.neighbors(2).empty());
}

TEST(TopologyChurn, MoveRefreshesEdgeSet) {
  net::Topology topo = LineTopology();
  // Walk node 3 next to node 0: it should drop 2 and gain 0 and 1.
  topo.MoveNode(3, {10, 0});
  EXPECT_EQ(NeighborsOf(topo, 3), (std::vector<net::NodeId>{0, 1}));
  EXPECT_EQ(NeighborsOf(topo, 2), std::vector<net::NodeId>{1});
  EXPECT_DOUBLE_EQ(topo.position(3).x, 10.0);
}

TEST(TopologyChurn, CompactPreservesNeighborSets) {
  net::Topology topo = LineTopology();
  topo.DetachNode(2);
  topo.MoveNode(3, {10, 0});
  std::vector<std::vector<net::NodeId>> before;
  for (net::NodeId id = 0; id < topo.node_count(); ++id) {
    before.push_back(NeighborsOf(topo, id));
  }
  ASSERT_TRUE(topo.mutated());
  topo.Compact();
  EXPECT_FALSE(topo.mutated());
  EXPECT_FALSE(topo.active(2));  // Active flags persist across Compact.
  for (net::NodeId id = 0; id < topo.node_count(); ++id) {
    EXPECT_EQ(NeighborsOf(topo, id), before[id]) << "node " << id;
  }
  // Edges left: 0-1 plus the moved 3's links to 0 and 1.
  EXPECT_DOUBLE_EQ(topo.AverageDegree(), 6.0 / 4.0);
}

// --- ChurnInjector ---

TEST(ChurnInjector, ScheduledEventsFireAndJoinersStartDetached) {
  auto topo = net::Topology::Build({{0, 0}, {40, 0}, {80, 0}}, 50.0);
  ASSERT_TRUE(topo.ok());
  sim::Simulator simulator(7);
  net::Network network(&simulator, std::move(*topo));
  fault::ChurnPlan plan;
  plan.joins.push_back({2, sim::SecondsF(1.0)});
  plan.leaves.push_back({1, sim::SecondsF(2.0)});
  fault::ChurnInjector injector(&simulator, &network.channel(),
                                network.mutable_topology(), plan,
                                net::Area{100, 100}, sim::Seconds(5));
  std::vector<net::NodeId> joined;
  injector.SetJoinListener(
      [&](net::NodeId id) { joined.push_back(id); });
  injector.Arm();
  // Pending joiner is detached before the first event runs.
  EXPECT_FALSE(network.topology().active(2));

  simulator.RunUntil(sim::SecondsF(1.5));
  EXPECT_TRUE(network.topology().active(2));
  EXPECT_EQ(joined, std::vector<net::NodeId>{2});
  EXPECT_TRUE(network.topology().active(1));

  simulator.RunUntil(sim::Seconds(5));
  EXPECT_FALSE(network.topology().active(1));
  EXPECT_EQ(injector.joins_fired(), 1u);
  EXPECT_EQ(injector.leaves_fired(), 1u);
}

TEST(ChurnInjector, WaypointMoveWalksAtConstantSpeed) {
  auto topo = net::Topology::Build({{0, 0}, {40, 0}, {80, 0}}, 50.0);
  ASSERT_TRUE(topo.ok());
  sim::Simulator simulator(7);
  net::Network network(&simulator, std::move(*topo));
  fault::ChurnPlan plan;
  plan.moves.push_back({2, {0, 40}, 20.0, 0});
  fault::ChurnInjector injector(&simulator, &network.channel(),
                                network.mutable_topology(), plan,
                                net::Area{100, 100}, sim::Seconds(10));
  injector.Arm();
  simulator.RunUntil(sim::Seconds(10));
  // The walk covers ~89 m at 20 m/s in quarter-second ticks: it must
  // arrive and stop.
  EXPECT_NEAR(network.topology().position(2).x, 0.0, 1e-9);
  EXPECT_NEAR(network.topology().position(2).y, 40.0, 1e-9);
  EXPECT_GT(injector.move_steps_fired(), 10u);
  // Ended adjacent to both 0 (dist 40) and 1 (dist ~56.6 > 50? no).
  EXPECT_TRUE(network.topology().AreNeighbors(2, 0));
}

struct ChurnTrace {
  std::vector<net::NodeId> victims;
  std::vector<net::NodeId> movers;
  size_t joins = 0, leaves = 0, steps = 0;
  std::vector<net::Point2D> positions;
};

ChurnTrace RunSeededChurn(uint64_t seed) {
  util::Rng rng(seed);
  auto topo = net::Topology::RandomGeometric(
      net::DeploymentConfig{net::Area{200, 200}, 40}, 50.0, rng);
  EXPECT_TRUE(topo.ok());
  sim::Simulator simulator(seed);
  net::Network network(&simulator, std::move(*topo));
  fault::ChurnPlan plan;
  plan.churn.rate_hz = 1.0;
  plan.churn.downtime = sim::SecondsF(1.0);
  plan.mobility.fraction = 0.25;
  plan.mobility.speed_mps = 10.0;
  fault::ChurnInjector injector(&simulator, &network.channel(),
                                network.mutable_topology(), plan,
                                net::Area{200, 200}, sim::Seconds(6));
  injector.Arm();
  simulator.RunUntil(sim::Seconds(6));
  ChurnTrace trace;
  trace.victims = injector.churn_victims();
  trace.movers = injector.movers();
  trace.joins = injector.joins_fired();
  trace.leaves = injector.leaves_fired();
  trace.steps = injector.move_steps_fired();
  trace.positions = network.topology().positions();
  return trace;
}

TEST(ChurnInjector, SeededProcessesAreDeterministic) {
  const ChurnTrace a = RunSeededChurn(11);
  const ChurnTrace b = RunSeededChurn(11);
  EXPECT_EQ(a.victims, b.victims);
  EXPECT_EQ(a.movers, b.movers);
  EXPECT_EQ(a.joins, b.joins);
  EXPECT_EQ(a.leaves, b.leaves);
  EXPECT_EQ(a.steps, b.steps);
  ASSERT_EQ(a.positions.size(), b.positions.size());
  for (size_t i = 0; i < a.positions.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.positions[i].x, b.positions[i].x) << i;
    EXPECT_DOUBLE_EQ(a.positions[i].y, b.positions[i].y) << i;
  }
  EXPECT_GT(a.leaves, 0u);
  EXPECT_GT(a.steps, 0u);

  const ChurnTrace c = RunSeededChurn(12);
  EXPECT_TRUE(a.victims != c.victims || a.movers != c.movers ||
              a.steps != c.steps);
}

}  // namespace
}  // namespace ipda
