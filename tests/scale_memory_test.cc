// Memory regression guard for city-scale rounds (DESIGN.md §13).
//
// The quadratic trap this pins down: churn-capable rounds used to
// materialize all N(N-1)/2 pairwise keys up front — at N=25k that is
// ~312M Link entries before a single key is stored, an OOM on any
// reasonable box. Keys are now derived lazily on first contact, so a
// city-scale churn round must fit comfortably under a flat ceiling.

#include <cmath>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "agg/aggregate_function.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "fault/churn_plan.h"

namespace ipda {
namespace {

// Peak resident set (VmHWM) in KiB, or 0 when unavailable.
size_t PeakRssKb() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %zu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb;
}

TEST(ScaleMemory, CityScaleChurnRoundStaysUnderCeiling) {
  const size_t before_kb = PeakRssKb();
  if (before_kb == 0) GTEST_SKIP() << "no /proc/self/status on this OS";

  // N=25k at the paper's density (side = 400·√(N/400) ≈ 3162 m), with the
  // churn response armed — the exact configuration that used to provision
  // all-pairs keys.
  constexpr size_t kNodes = 25000;
  agg::RunConfig config;
  config.deployment.node_count = kNodes;
  const double side = 400.0 * std::sqrt(kNodes / 400.0);
  config.deployment.area = net::Area{side, side};
  config.seed = 1;
  auto churn = fault::ParseChurnSpec("move=7:100:100:10@4.3,leave=9@4.7");
  ASSERT_TRUE(churn.ok());
  config.churn = *churn;

  agg::IpdaConfig ipda;
  ipda.retarget_slices = true;
  ipda.parent_failover = true;
  ipda.churn_response = agg::ChurnResponse::kRepair;

  auto function = agg::MakeSum();
  auto field = agg::MakeUniformField(15.0, 30.0, 42);
  auto run = agg::RunIpda(config, *function, *field, ipda);
  ASSERT_TRUE(run.ok()) << run.status().ToString();

  // All-pairs provisioning alone would cost ≥ 2.5 GB at this N (312M
  // links × 8 B before any key lands). The whole round — topology,
  // counters, scheduler, crypto — must stay far below that.
  const size_t after_kb = PeakRssKb();
  constexpr size_t kCeilingKb = 1500 * 1024;  // 1.5 GiB.
  EXPECT_LT(after_kb, kCeilingKb)
      << "peak RSS " << after_kb / 1024 << " MiB — a quadratic allocation "
      << "is back (started at " << before_kb / 1024 << " MiB)";
}

TEST(ScaleMemory, TopologyBuildIsLinearish) {
  // The spatial-hash build allocates O(N + E); a 25k-node build must not
  // move peak RSS by anything close to the old N² candidate scan's
  // footprint. (The absolute ceiling above is the real guard; this one
  // localizes a regression to the topology layer.)
  const size_t before_kb = PeakRssKb();
  if (before_kb == 0) GTEST_SKIP() << "no /proc/self/status on this OS";
  agg::RunConfig config;
  config.deployment.node_count = 25000;
  const double side = 400.0 * std::sqrt(25000.0 / 400.0);
  config.deployment.area = net::Area{side, side};
  config.seed = 3;
  auto topology = agg::BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  EXPECT_EQ(topology->node_count(), 25000u);
  const size_t after_kb = PeakRssKb();
  EXPECT_LT(after_kb - before_kb, 600 * 1024u)
      << "topology build grew peak RSS by " << (after_kb - before_kb) / 1024
      << " MiB";
}

}  // namespace
}  // namespace ipda
