// CPDA (cluster-based private aggregation, PDA ref. [11]): masking
// polynomials, interpolation, and the full clustered protocol.

#include "agg/cpda/cpda_protocol.h"

#include <cmath>

#include <gtest/gtest.h>

#include "agg/cpda/interpolation.h"
#include "agg/reading.h"
#include "agg/runner.h"

namespace ipda::agg {
namespace {

TEST(MaskingPolynomial, ConstantTermIsValue) {
  util::Rng rng(1);
  MaskingPolynomial poly(42.5, 2, 100.0, rng);
  EXPECT_DOUBLE_EQ(poly.Evaluate(0.0), 42.5);
  EXPECT_DOUBLE_EQ(poly.value(), 42.5);
  EXPECT_EQ(poly.degree(), 2u);
}

TEST(MaskingPolynomial, EvaluationsLookRandom) {
  // A single evaluation at x != 0 must not reveal the value: across many
  // fresh polynomials hiding the SAME value, evaluations at x = 3 should
  // spread over roughly [-range*(3+9), range*(3+9)].
  util::Rng rng(2);
  double min = 1e18, max = -1e18;
  for (int i = 0; i < 2000; ++i) {
    MaskingPolynomial poly(7.0, 2, 10.0, rng);
    const double y = poly.Evaluate(3.0);
    min = std::min(min, y);
    max = std::max(max, y);
  }
  EXPECT_LT(min, -60.0);
  EXPECT_GT(max, 70.0);
}

TEST(Interpolation, RecoversConstantExactly) {
  util::Rng rng(3);
  for (int trial = 0; trial < 50; ++trial) {
    const double value = rng.UniformDouble(-100.0, 100.0);
    MaskingPolynomial poly(value, 2, 50.0, rng);
    const std::vector<double> xs{1.0, 2.0, 5.0};
    std::vector<double> ys;
    for (double x : xs) ys.push_back(poly.Evaluate(x));
    auto constant = InterpolateConstantTerm(xs, ys);
    ASSERT_TRUE(constant.ok());
    EXPECT_NEAR(*constant, value, 1e-9);
  }
}

TEST(Interpolation, SumOfPolynomialsYieldsSumOfValues) {
  // The CPDA core identity: interpolating summed evaluations returns the
  // summed constant terms.
  util::Rng rng(4);
  const std::vector<double> xs{7.0, 11.0, 19.0};
  std::vector<double> summed(xs.size(), 0.0);
  double true_sum = 0.0;
  for (int member = 0; member < 5; ++member) {
    const double value = rng.UniformDouble(0.0, 30.0);
    true_sum += value;
    MaskingPolynomial poly(value, 2, 100.0, rng);
    for (size_t i = 0; i < xs.size(); ++i) {
      summed[i] += poly.Evaluate(xs[i]);
    }
  }
  auto constant = InterpolateConstantTerm(xs, summed);
  ASSERT_TRUE(constant.ok());
  EXPECT_NEAR(*constant, true_sum, 1e-8);
}

TEST(Interpolation, RejectsBadInputs) {
  EXPECT_FALSE(InterpolateConstantTerm({1.0}, {2.0}).ok());
  EXPECT_FALSE(InterpolateConstantTerm({1.0, 2.0}, {1.0}).ok());
  EXPECT_FALSE(InterpolateConstantTerm({1.0, 1.0}, {1.0, 2.0}).ok());
  EXPECT_FALSE(InterpolateConstantTerm({0.0, 1.0}, {1.0, 2.0}).ok());
}

TEST(Interpolation, CoefficientRecoveryIsTheCollusionAttack) {
  // deg+1 colluding members pool their points of one member's polynomial
  // and reconstruct it — exposing the private value (PDA's documented
  // collusion threshold).
  util::Rng rng(5);
  MaskingPolynomial poly(13.0, 2, 40.0, rng);
  const std::vector<double> xs{2.0, 3.0, 9.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(poly.Evaluate(x));
  auto coeffs = InterpolateCoefficients(xs, ys);
  ASSERT_TRUE(coeffs.ok());
  ASSERT_EQ(coeffs->size(), 3u);
  EXPECT_NEAR((*coeffs)[0], 13.0, 1e-9);  // The private value, exposed.
  // Sanity: recovered polynomial evaluates identically elsewhere.
  const double x = 17.0;
  const double recovered =
      (*coeffs)[0] + (*coeffs)[1] * x + (*coeffs)[2] * x * x;
  EXPECT_NEAR(recovered, poly.Evaluate(x), 1e-6);
}

TEST(Interpolation, FewerPointsThanDegreeCannotRecover) {
  // With only deg points the constant term is NOT determined: two
  // polynomials with different constants can agree on those points.
  util::Rng rng(6);
  MaskingPolynomial poly(50.0, 2, 40.0, rng);
  const std::vector<double> xs{2.0, 3.0};
  std::vector<double> ys;
  for (double x : xs) ys.push_back(poly.Evaluate(x));
  // Interpolating as degree-1 succeeds numerically but gives the wrong
  // constant (information-theoretic hiding with degree 2).
  auto constant = InterpolateConstantTerm(xs, ys);
  ASSERT_TRUE(constant.ok());
  EXPECT_GT(std::fabs(*constant - 50.0), 1e-6);
}

RunConfig DenseConfig(uint64_t seed) {
  RunConfig config;
  config.deployment.node_count = 400;
  config.seed = seed;
  return config;
}

TEST(CpdaProtocol, CountAccurateInDenseNetwork) {
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  CpdaConfig cpda;
  cpda.coeff_range = 10.0;
  auto result = RunCpda(DenseConfig(41), *function, *field, cpda);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->accuracy, 0.95);
  EXPECT_LT(result->accuracy, 1.0 + 1e-6);
  EXPECT_GT(result->stats.clusters_solved, 20u);
  EXPECT_GT(result->stats.clustered,
            result->stats.unprotected);  // Most nodes masked.
}

TEST(CpdaProtocol, SumMatchesTruthClosely) {
  auto function = MakeSum();
  auto field = MakeUniformField(10.0, 20.0, 9);
  CpdaConfig cpda;
  cpda.coeff_range = 100.0;
  auto result = RunCpda(DenseConfig(43), *function, *field, cpda);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->accuracy, 0.95);
  // Any deviation beyond interpolation round-off is whole-node loss,
  // never fractional corruption: collected <= truth (+ float slack; the
  // Lagrange weights amplify the 1e2-scale masking coefficients).
  EXPECT_LE(result->stats.collected[0], result->true_acc[0] + 0.01);
}

TEST(CpdaProtocol, HigherLeaderProbabilityMoreClusters) {
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  CpdaConfig low;
  low.leader_probability = 0.1;
  CpdaConfig high;
  high.leader_probability = 0.5;
  auto a = RunCpda(DenseConfig(45), *function, *field, low);
  auto b = RunCpda(DenseConfig(45), *function, *field, high);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_LT(a->stats.leaders, b->stats.leaders);
}

TEST(CpdaProtocol, ConfigValidation) {
  CpdaConfig config;
  EXPECT_TRUE(ValidateCpdaConfig(config).ok());
  config.leader_probability = 0.0;
  EXPECT_FALSE(ValidateCpdaConfig(config).ok());
  config = CpdaConfig{};
  config.leader_probability = 1.0;
  EXPECT_FALSE(ValidateCpdaConfig(config).ok());
  config = CpdaConfig{};
  config.poly_degree = 0;
  EXPECT_FALSE(ValidateCpdaConfig(config).ok());
  config = CpdaConfig{};
  config.coeff_range = 0.0;
  EXPECT_FALSE(ValidateCpdaConfig(config).ok());
}

TEST(CpdaProtocol, NoFallbackDropsUnclusteredData) {
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  CpdaConfig with_fallback;
  CpdaConfig without;
  without.fallback_unclustered = false;
  auto a = RunCpda(DenseConfig(47), *function, *field, with_fallback);
  auto b = RunCpda(DenseConfig(47), *function, *field, without);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GE(a->stats.collected[0], b->stats.collected[0]);
}

TEST(CpdaProtocol, ExternalPairwiseKeysWork) {
  const RunConfig config = DenseConfig(51);
  auto topology = BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  sim::Simulator simulator(config.seed);
  net::Network network(&simulator, std::move(*topology));
  // Provision every pair (not just edges): co-member relaying included.
  std::vector<crypto::LinkCrypto> cryptos;
  for (net::NodeId id = 0; id < network.size(); ++id) {
    cryptos.emplace_back(id);
  }
  crypto::PairwiseKeyScheme scheme(99);
  std::vector<crypto::Link> links;
  for (net::NodeId a = 0; a < network.size(); ++a) {
    for (net::NodeId b : network.topology().neighbors(a)) {
      if (a < b) links.emplace_back(a, b);
    }
  }
  scheme.Provision(links, cryptos);

  auto function = MakeCount();
  CpdaProtocol protocol(&network, function.get());
  protocol.SetLinkCrypto(&cryptos);
  auto field = MakeConstantField(1.0);
  protocol.SetReadings(field->Sample(network.topology()));
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  const auto& stats = protocol.Finish();
  // Without the internal master scheme, non-adjacent co-member shares are
  // dropped, so a good share of clusters fail — the round still
  // aggregates what it can, and never over-counts.
  EXPECT_GT(stats.collected[0], 150.0);
  EXPECT_LE(stats.collected[0], 399.0 + 1e-6);
  EXPECT_GT(stats.clusters_lost, 0u);  // The documented degradation.
}

TEST(CpdaProtocol, DeterministicPerSeed) {
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  auto a = RunCpda(DenseConfig(49), *function, *field);
  auto b = RunCpda(DenseConfig(49), *function, *field);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->stats.collected[0], b->stats.collected[0]);
  EXPECT_EQ(a->traffic.bytes_sent, b->traffic.bytes_sent);
}

}  // namespace
}  // namespace ipda::agg
