// SMART baseline (slice-mix-aggregate, PDA/INFOCOM'07 — the paper's
// ref. [11]): privacy via slicing on a single tree, no integrity.

#include "agg/smart/smart_protocol.h"

#include <map>

#include <gtest/gtest.h>

#include "agg/aggregate_function.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "attack/eavesdropper.h"
#include "crypto/link_security.h"

namespace ipda::agg {
namespace {

RunConfig DenseConfig(uint64_t seed) {
  RunConfig config;
  config.deployment.node_count = 400;
  config.seed = seed;
  return config;
}

SmartConfig CountConfig(uint32_t j = 3) {
  SmartConfig config;
  config.slice_count = j;
  config.slice_range = 1.0;
  return config;
}

TEST(SmartProtocol, CountAccurateInDenseNetwork) {
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  auto result = RunSmart(DenseConfig(21), *function, *field,
                         CountConfig());
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_GT(result->accuracy, 0.97);
  EXPECT_LE(result->accuracy, 1.0 + 1e-9);
  EXPECT_GT(result->stats.participants, 380u);
}

TEST(SmartProtocol, SlicesSumToContribution) {
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  std::map<net::NodeId, double> sums;
  std::map<net::NodeId, size_t> counts;
  auto observer = [&](net::NodeId from, net::NodeId,
                      const Vector& slice) {
    sums[from] += slice[0];
    counts[from] += 1;
  };
  auto result = RunSmart(DenseConfig(23), *function, *field,
                         CountConfig(3), observer);
  ASSERT_TRUE(result.ok());
  for (const auto& [node, sum] : sums) {
    EXPECT_NEAR(sum, 1.0, 1e-9) << "node " << node;
    EXPECT_EQ(counts[node], 3u);  // J slices incl. the kept one.
  }
}

TEST(SmartProtocol, SliceCountIsJMinusOnePerParticipant) {
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  auto result = RunSmart(DenseConfig(25), *function, *field,
                         CountConfig(3));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->stats.slices_sent, 2 * result->stats.participants);
}

TEST(SmartProtocol, OverheadBetweenTagAndIpda) {
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  const auto config = DenseConfig(27);
  auto tag = RunTag(config, *function, *field);
  auto smart = RunSmart(config, *function, *field, CountConfig(3));
  IpdaConfig ipda_config;
  ipda_config.slice_range = 1.0;
  auto ipda = RunIpda(config, *function, *field, ipda_config);
  ASSERT_TRUE(tag.ok());
  ASSERT_TRUE(smart.ok());
  ASSERT_TRUE(ipda.ok());
  EXPECT_GT(smart->traffic.bytes_sent, tag->traffic.bytes_sent);
  EXPECT_LT(smart->traffic.bytes_sent, ipda->traffic.bytes_sent);
}

TEST(SmartProtocol, NoIntegrityTamperingGoesUndetected) {
  // SMART exposes no acceptance decision at all: whatever arrives is the
  // answer — the gap iPDA exists to close. (Structural: SmartStats has no
  // IntegrityDecision; the collected value is taken at face value.)
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  auto result = RunSmart(DenseConfig(29), *function, *field,
                         CountConfig(3));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.collected[0], 0.0);
}

TEST(SmartProtocol, PrivacyComparableToIpdaUnderSamePx) {
  // Under the same broken-link fraction, SMART's J=3 slicing keeps
  // disclosure low (same slicing mechanism iPDA adopted).
  const auto config = DenseConfig(31);
  auto topology = BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  std::vector<crypto::Link> links;
  for (net::NodeId a = 0; a < topology->node_count(); ++a) {
    for (net::NodeId b : topology->neighbors(a)) {
      if (a < b) links.emplace_back(a, b);
    }
  }
  util::Rng rng(5);
  auto compromise = crypto::UniformLinkCompromise(links.size(), 0.1, rng);
  std::vector<bool> broken(compromise.broken.begin(),
                           compromise.broken.end());
  attack::Eavesdropper eve(topology->node_count(), links, broken);
  auto ipda_observer = eve.Observer();
  // Adapt iPDA's observer signature: SMART has one implicit tree.
  auto observer = [&](net::NodeId from, net::NodeId to,
                      const Vector& slice) {
    ipda_observer(from, to, TreeColor::kRed, slice);
  };
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  auto result = RunSmart(config, *function, *field, CountConfig(3),
                         observer);
  ASSERT_TRUE(result.ok());
  const auto report = eve.Evaluate();
  EXPECT_GT(report.observed_count, 380u);
  EXPECT_LT(report.disclosure_rate, 0.05);
  // Reconstructions (if any) are exact.
  for (const auto& [node, value] : report.reconstructed) {
    EXPECT_NEAR(value[0], 1.0, 1e-9);
  }
}

TEST(SmartProtocol, ConfigValidation) {
  SmartConfig config;
  EXPECT_TRUE(ValidateSmartConfig(config).ok());
  config.slice_count = 0;
  EXPECT_FALSE(ValidateSmartConfig(config).ok());
  config = SmartConfig{};
  config.slice_range = -1.0;
  EXPECT_FALSE(ValidateSmartConfig(config).ok());
  config = SmartConfig{};
  config.max_depth = 0;
  EXPECT_FALSE(ValidateSmartConfig(config).ok());
}

TEST(SmartProtocol, JEqualsOneDegeneratesToTagWithPrivacyLoss) {
  // J=1: the node keeps its whole reading and mixes nothing — SMART
  // becomes TAG-with-encryption. Still aggregates correctly.
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  auto result = RunSmart(DenseConfig(33), *function, *field,
                         CountConfig(1));
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->accuracy, 0.97);
  EXPECT_EQ(result->stats.slices_sent, 0u);
}

TEST(SmartProtocol, DeterministicPerSeed) {
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  auto a = RunSmart(DenseConfig(35), *function, *field, CountConfig());
  auto b = RunSmart(DenseConfig(35), *function, *field, CountConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->stats.collected[0], b->stats.collected[0]);
  EXPECT_EQ(a->traffic.bytes_sent, b->traffic.bytes_sent);
}

}  // namespace
}  // namespace ipda::agg
