// Channel semantics: delivery, range, collision, half-duplex loss.
// Tests drive Channel::StartTransmission directly (no MAC) to control
// timing exactly.

#include "net/channel.h"

#include <vector>

#include <gtest/gtest.h>

#include "net/topology.h"
#include "sim/simulator.h"

namespace ipda::net {
namespace {

class ChannelTest : public ::testing::Test {
 protected:
  // Chain: 0 -- 1 -- 2 (0 and 2 out of range of each other: the classic
  // hidden-terminal layout).
  void SetUp() override {
    auto topo = Topology::Build({{0, 0}, {40, 0}, {80, 0}}, 50.0);
    ASSERT_TRUE(topo.ok());
    topology_ = std::make_unique<Topology>(std::move(*topo));
    sim_ = std::make_unique<sim::Simulator>(1);
    counters_ = std::make_unique<CounterBoard>(topology_->node_count());
    channel_ = std::make_unique<Channel>(sim_.get(), topology_.get(),
                                         PhyConfig{}, counters_.get());
    for (NodeId id = 0; id < 3; ++id) {
      channel_->SetDeliveryHandler(id, [this, id](const Packet& packet) {
        delivered_.push_back({id, packet});
      });
    }
  }

  Packet MakePacket(NodeId dst, size_t payload_bytes) {
    Packet p;
    p.dst = dst;
    p.type = PacketType::kControl;
    p.payload.assign(payload_bytes, 0xaa);
    return p;
  }

  std::unique_ptr<Topology> topology_;
  std::unique_ptr<sim::Simulator> sim_;
  std::unique_ptr<CounterBoard> counters_;
  std::unique_ptr<Channel> channel_;
  std::vector<std::pair<NodeId, Packet>> delivered_;
};

TEST_F(ChannelTest, BroadcastReachesNeighborsOnly) {
  Packet p = MakePacket(kBroadcastId, 10);
  p.src = 0;
  channel_->StartTransmission(0, p);
  sim_->RunAll();
  ASSERT_EQ(delivered_.size(), 1u);  // Node 1 only; node 2 out of range.
  EXPECT_EQ(delivered_[0].first, 1u);
}

TEST_F(ChannelTest, UnicastFiltersByDestination) {
  // Node 1 broadcasts physically; only the addressed node delivers.
  Packet p = MakePacket(2, 10);
  p.src = 1;
  channel_->StartTransmission(1, p);
  sim_->RunAll();
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].first, 2u);
  // Node 0 heard it but did not deliver; counters say nothing was corrupted.
  EXPECT_EQ(counters_->at(0).frames_collided, 0u);
}

TEST_F(ChannelTest, AirTimeMatchesDataRate) {
  // 100 bytes at 1 Mbps = 800 microseconds.
  EXPECT_EQ(channel_->AirTime(100), sim::Microseconds(800));
}

TEST_F(ChannelTest, HiddenTerminalCollisionCorruptsBoth) {
  // 0 and 2 transmit simultaneously; both frames overlap at node 1.
  Packet a = MakePacket(1, 50);
  Packet b = MakePacket(1, 50);
  sim_->At(sim::Microseconds(10), [&, a] {
    channel_->StartTransmission(0, a);
  });
  sim_->At(sim::Microseconds(10), [&, b] {
    channel_->StartTransmission(2, b);
  });
  sim_->RunAll();
  EXPECT_TRUE(delivered_.empty());
  EXPECT_EQ(counters_->at(1).frames_collided, 2u);
}

TEST_F(ChannelTest, PartialOverlapAlsoCollides) {
  Packet a = MakePacket(1, 100);  // 800 us on air.
  Packet b = MakePacket(1, 100);
  sim_->At(sim::Microseconds(10), [&, a] {
    channel_->StartTransmission(0, a);
  });
  // Starts 500 us in: still overlapping.
  sim_->At(sim::Microseconds(510), [&, b] {
    channel_->StartTransmission(2, b);
  });
  sim_->RunAll();
  EXPECT_TRUE(delivered_.empty());
  EXPECT_EQ(counters_->at(1).frames_collided, 2u);
}

TEST_F(ChannelTest, AbuttingFramesDoNotCollide) {
  Packet a = MakePacket(1, 100);
  Packet b = MakePacket(1, 100);
  const sim::SimTime prop01 =
      channel_->PropagationDelay(0, 1);  // Same distance 2->1.
  (void)prop01;
  sim_->At(sim::Microseconds(10), [&, a] {
    channel_->StartTransmission(0, a);
  });
  // Second frame starts exactly when the first ends (same propagation
  // distance, so arrival abuts too).
  sim_->At(sim::Microseconds(10) + channel_->AirTime(a.size_bytes()),
           [&, b] { channel_->StartTransmission(2, b); });
  sim_->RunAll();
  EXPECT_EQ(delivered_.size(), 2u);
  EXPECT_EQ(counters_->at(1).frames_collided, 0u);
}

TEST_F(ChannelTest, ReceiverTransmittingLosesIncomingFrame) {
  Packet incoming = MakePacket(1, 100);
  Packet outgoing = MakePacket(kBroadcastId, 100);
  // Node 1 starts transmitting first; node 0's frame arrives during it.
  sim_->At(sim::Microseconds(5), [&, outgoing] {
    channel_->StartTransmission(1, outgoing);
  });
  sim_->At(sim::Microseconds(10), [&, incoming] {
    channel_->StartTransmission(0, incoming);
  });
  sim_->RunAll();
  // Node 1 never delivers the incoming frame...
  for (const auto& [id, packet] : delivered_) {
    EXPECT_NE(id, 1u);
  }
  EXPECT_EQ(counters_->at(1).frames_missed_tx, 1u);
  // ...but nodes 0 and 2 still get node 1's broadcast (node 0's own
  // transmission overlaps reception there, so only node 2 is clean).
  bool node2_got = false;
  for (const auto& [id, packet] : delivered_) {
    node2_got = node2_got || id == 2;
  }
  EXPECT_TRUE(node2_got);
}

TEST_F(ChannelTest, StartingTransmissionCorruptsActiveReceptions) {
  Packet incoming = MakePacket(1, 100);
  Packet outgoing = MakePacket(kBroadcastId, 10);
  sim_->At(sim::Microseconds(10), [&, incoming] {
    channel_->StartTransmission(0, incoming);
  });
  // Node 1 begins transmitting mid-reception (no carrier sense here).
  sim_->At(sim::Microseconds(200), [&, outgoing] {
    channel_->StartTransmission(1, outgoing);
  });
  sim_->RunAll();
  EXPECT_EQ(counters_->at(1).frames_missed_tx, 1u);
}

TEST_F(ChannelTest, IsBusyDuringReceptionAndTransmission) {
  Packet p = MakePacket(kBroadcastId, 100);
  sim_->At(sim::Microseconds(10), [&, p] {
    channel_->StartTransmission(0, p);
  });
  bool busy_at_receiver = false;
  bool busy_at_sender = false;
  sim_->At(sim::Microseconds(400), [&] {
    busy_at_receiver = channel_->IsBusy(1);
    busy_at_sender = channel_->IsBusy(0);
  });
  bool busy_after = true;
  sim_->At(sim::Milliseconds(5), [&] { busy_after = channel_->IsBusy(1); });
  sim_->RunAll();
  EXPECT_TRUE(busy_at_receiver);
  EXPECT_TRUE(busy_at_sender);
  EXPECT_FALSE(busy_after);
}

TEST_F(ChannelTest, PropagationDelayNeverZero) {
  // Finite speed-of-light delays, floored at 1 ns so reception strictly
  // follows the transmit decision even at zero distance.
  EXPECT_GE(channel_->PropagationDelay(0, 1), sim::Nanoseconds(1));
  const sim::SimTime d01 = channel_->PropagationDelay(0, 1);  // 40 m.
  EXPECT_NEAR(static_cast<double>(d01), 40.0 / 3e8 * 1e9, 2.0);
}

TEST_F(ChannelTest, ThreeWayCollisionCorruptsAll) {
  // Add a third transmitter in range of node 1 via direct channel use.
  Packet a = MakePacket(1, 60);
  Packet b = MakePacket(1, 60);
  Packet c = MakePacket(kBroadcastId, 60);
  sim_->At(sim::Microseconds(10), [&, a] {
    channel_->StartTransmission(0, a);
  });
  sim_->At(sim::Microseconds(50), [&, b] {
    channel_->StartTransmission(2, b);
  });
  sim_->At(sim::Microseconds(90), [&, c] {
    channel_->StartTransmission(1, c);  // Node 1 transmits too!
  });
  sim_->RunAll();
  // Node 1 was receiving two frames and then transmitted over them.
  EXPECT_EQ(counters_->at(1).frames_missed_tx +
                counters_->at(1).frames_collided,
            2u);
  EXPECT_TRUE(delivered_.empty());
}

TEST_F(ChannelTest, CountersTrackBytes) {
  Packet p = MakePacket(1, 33);
  channel_->StartTransmission(0, p);
  sim_->RunAll();
  EXPECT_EQ(counters_->at(0).frames_sent, 1u);
  EXPECT_EQ(counters_->at(0).bytes_sent, 33u + kFrameHeaderBytes);
  EXPECT_EQ(counters_->at(1).frames_delivered, 1u);
  EXPECT_EQ(counters_->at(1).bytes_delivered, 33u + kFrameHeaderBytes);
}

TEST_F(ChannelTest, OverhearHandlerSeesForeignUnicast) {
  std::vector<OverhearEvent> overheard;
  channel_->SetOverhearHandler(
      [&](const OverhearEvent& event) { overheard.push_back(event); });
  Packet p = MakePacket(2, 10);  // 1 -> 2; node 0 overhears.
  channel_->StartTransmission(1, p);
  sim_->RunAll();
  ASSERT_EQ(overheard.size(), 2u);  // Node 0 and node 2 both hear it.
  EXPECT_EQ(overheard[0].packet.dst, 2u);
}

TEST_F(ChannelTest, LinkFaultDropIsCountedAtTheReceiver) {
  channel_->SetLinkFaultHook(
      [](NodeId sender, NodeId receiver, const Packet&) {
        LinkFault fault;
        fault.drop = sender == 0 && receiver == 1;
        return fault;
      });
  Packet p = MakePacket(1, 20);
  channel_->StartTransmission(0, p);
  sim_->RunAll();
  EXPECT_TRUE(delivered_.empty());
  EXPECT_EQ(counters_->at(1).injected_drops, 1u);
  EXPECT_EQ(counters_->at(0).frames_sent, 1u);  // Air time still spent.
}

TEST_F(ChannelTest, LinkFaultDuplicateDeliversTwiceAndIsCounted) {
  channel_->SetLinkFaultHook([](NodeId, NodeId receiver, const Packet&) {
    LinkFault fault;
    fault.duplicate = receiver == 1;
    return fault;
  });
  Packet p = MakePacket(1, 20);
  channel_->StartTransmission(0, p);
  sim_->RunAll();
  ASSERT_EQ(delivered_.size(), 2u);
  EXPECT_EQ(delivered_[0].second.uid, delivered_[1].second.uid);
  EXPECT_EQ(counters_->at(1).injected_dup, 1u);
}

TEST_F(ChannelTest, FailedNodeNeitherTransmitsNorReceives) {
  channel_->FailNode(1);
  EXPECT_TRUE(channel_->IsFailed(1));
  Packet from_failed = MakePacket(kBroadcastId, 10);
  channel_->StartTransmission(1, from_failed);
  Packet to_failed = MakePacket(1, 10);
  sim_->At(sim::Milliseconds(2), [&, to_failed] {
    channel_->StartTransmission(0, to_failed);
  });
  sim_->RunAll();
  EXPECT_TRUE(delivered_.empty());
  EXPECT_EQ(counters_->at(1).frames_sent, 0u);
}

TEST_F(ChannelTest, RecoveryRestoresDeliveryAndCountsOnce) {
  channel_->FailNode(1);
  channel_->RecoverNode(1);
  EXPECT_FALSE(channel_->IsFailed(1));
  // Recovering a healthy node is a no-op, not a second recovery.
  channel_->RecoverNode(1);
  Packet p = MakePacket(1, 10);
  channel_->StartTransmission(0, p);
  sim_->RunAll();
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].first, 1u);
  EXPECT_EQ(counters_->at(1).recoveries, 1u);
}

TEST_F(ChannelTest, FrameInFlightWhenNodeRecoversStaysLost) {
  // The radio missed the preamble while down; only frames arriving after
  // the recovery are heard.
  channel_->FailNode(1);
  Packet missed = MakePacket(1, 100);
  sim_->At(sim::Microseconds(10), [&, missed] {
    channel_->StartTransmission(0, missed);
  });
  sim_->At(sim::Microseconds(200), [&] { channel_->RecoverNode(1); });
  Packet heard = MakePacket(1, 100);
  sim_->At(sim::Milliseconds(5), [&, heard] {
    channel_->StartTransmission(0, heard);
  });
  sim_->RunAll();
  ASSERT_EQ(delivered_.size(), 1u);
  EXPECT_EQ(delivered_[0].first, 1u);
}

TEST_F(ChannelTest, UidAssignedUniquely) {
  Packet p = MakePacket(1, 10);
  channel_->StartTransmission(0, p);
  // Second frame strictly after the first finishes, so both deliver.
  sim_->At(sim::Milliseconds(2), [&, p] {
    channel_->StartTransmission(0, p);
  });
  sim_->RunAll();
  ASSERT_EQ(delivered_.size(), 2u);
  EXPECT_NE(delivered_[0].second.uid, delivered_[1].second.uid);
}

}  // namespace
}  // namespace ipda::net
