#include "crypto/link_security.h"

#include <unordered_set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace ipda::crypto {
namespace {

std::vector<Link> CompleteGraphLinks(PeerId n) {
  std::vector<Link> links;
  for (PeerId a = 0; a < n; ++a) {
    for (PeerId b = static_cast<PeerId>(a + 1); b < n; ++b) {
      links.emplace_back(a, b);
    }
  }
  return links;
}

TEST(UniformLinkCompromise, ExtremesAndFraction) {
  util::Rng rng(1);
  auto none = UniformLinkCompromise(100, 0.0, rng);
  EXPECT_EQ(none.fraction_broken, 0.0);
  auto all = UniformLinkCompromise(100, 1.0, rng);
  EXPECT_EQ(all.fraction_broken, 1.0);
}

TEST(UniformLinkCompromise, FractionTracksPx) {
  util::Rng rng(2);
  auto report = UniformLinkCompromise(20000, 0.1, rng);
  EXPECT_NEAR(report.fraction_broken, 0.1, 0.01);
  EXPECT_EQ(report.broken.size(), 20000u);
}

TEST(UniformLinkCompromise, EmptyLinkSet) {
  util::Rng rng(3);
  auto report = UniformLinkCompromise(0, 0.5, rng);
  EXPECT_EQ(report.fraction_broken, 0.0);
  EXPECT_TRUE(report.broken.empty());
}

TEST(NodeCapturePairwise, OnlyIncidentLinksLeak) {
  util::Rng rng(4);
  const auto links = CompleteGraphLinks(6);
  // Capture everything: all links leak.
  auto all = NodeCaptureUnderPairwise(links, 6, 6, rng);
  EXPECT_EQ(all.fraction_broken, 1.0);
  // Capture nothing: nothing leaks.
  auto none = NodeCaptureUnderPairwise(links, 6, 0, rng);
  EXPECT_EQ(none.fraction_broken, 0.0);
}

TEST(NodeCapturePairwise, SingleCaptureBreaksExactlyItsDegree) {
  util::Rng rng(5);
  const auto links = CompleteGraphLinks(10);  // 45 links, degree 9 each.
  auto report = NodeCaptureUnderPairwise(links, 10, 1, rng);
  size_t broken = 0;
  for (bool b : report.broken) broken += b ? 1 : 0;
  EXPECT_EQ(broken, 9u);
}

TEST(NodeCapturePredistribution, CapturedRingExposesThirdPartyLinks) {
  // Pool of 1 key: everyone shares key 0, so capturing ANY node exposes
  // every link.
  EgConfig config{1, 1};
  util::Rng rng(6);
  auto scheme = KeyPredistribution::Create(config, 8, 1, rng);
  ASSERT_TRUE(scheme.ok());
  const auto links = CompleteGraphLinks(8);
  auto report =
      NodeCaptureUnderPredistribution(links, *scheme, 1, rng);
  EXPECT_EQ(report.fraction_broken, 1.0);
}

TEST(NodeCapturePredistribution, LargePoolApproachesPairwiseBehavior) {
  // Huge pool, tiny rings: captured rings almost never intersect others'
  // link keys, so only incident links leak (like pairwise).
  EgConfig config{100000, 2};
  util::Rng rng(7);
  auto scheme = KeyPredistribution::Create(config, 40, 1, rng);
  ASSERT_TRUE(scheme.ok());
  const auto links = CompleteGraphLinks(40);  // 780 links.
  auto eg = NodeCaptureUnderPredistribution(links, *scheme, 2, rng);
  util::Rng rng2(7);
  auto pw = NodeCaptureUnderPairwise(links, 40, 2, rng2);
  EXPECT_NEAR(eg.fraction_broken, pw.fraction_broken, 0.05);
}

TEST(NodeCapturePredistribution, MoreCapturesMoreExposure) {
  EgConfig config{500, 50};
  util::Rng rng(8);
  auto scheme = KeyPredistribution::Create(config, 60, 1, rng);
  ASSERT_TRUE(scheme.ok());
  const auto links = CompleteGraphLinks(60);
  util::Rng r1(10), r2(10);
  auto few = NodeCaptureUnderPredistribution(links, *scheme, 2, r1);
  auto many = NodeCaptureUnderPredistribution(links, *scheme, 20, r2);
  EXPECT_LT(few.fraction_broken, many.fraction_broken);
}

TEST(ExpectedEgLinkExposure, ClosedFormBasics) {
  EgConfig config{100, 10};
  EXPECT_DOUBLE_EQ(ExpectedEgLinkExposure(config, 0), 0.0);
  // One captured ring of 10 keys from a pool of 100: a fixed key is
  // exposed w.p. 0.1.
  EXPECT_NEAR(ExpectedEgLinkExposure(config, 1), 0.1, 1e-12);
  // Monotone in captures, bounded by 1.
  double prev = 0.0;
  for (size_t c = 1; c <= 50; ++c) {
    const double e = ExpectedEgLinkExposure(config, c);
    EXPECT_GT(e, prev);
    EXPECT_LE(e, 1.0);
    prev = e;
  }
}

TEST(ExpectedEgLinkExposure, MatchesEmpiricalExposure) {
  EgConfig config{200, 20};
  util::Rng rng(11);
  auto scheme = KeyPredistribution::Create(config, 100, 1, rng);
  ASSERT_TRUE(scheme.ok());
  // Count exposure of non-incident links only (the closed form models key
  // leakage, not capture of endpoints).
  const size_t captured_count = 5;
  double total_rate = 0.0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    std::vector<bool> captured(100, false);
    std::unordered_set<KeyId> exposed;
    for (size_t idx :
         rng.SampleWithoutReplacement(100, captured_count)) {
      captured[idx] = true;
      for (KeyId k : scheme->ring(static_cast<PeerId>(idx))) {
        exposed.insert(k);
      }
    }
    size_t leaking = 0, eligible = 0;
    for (PeerId a = 0; a < 100; ++a) {
      for (PeerId b = static_cast<PeerId>(a + 1); b < 100; ++b) {
        if (captured[a] || captured[b]) continue;
        const KeyId shared = scheme->SharedKeyId(a, b);
        if (shared == kInvalidKeyId) continue;
        ++eligible;
        if (exposed.count(shared) > 0) ++leaking;
      }
    }
    if (eligible > 0) {
      total_rate += static_cast<double>(leaking) /
                    static_cast<double>(eligible);
    }
  }
  const double empirical = total_rate / trials;
  const double expected = ExpectedEgLinkExposure(config, captured_count);
  EXPECT_NEAR(empirical, expected, 0.12);
}

}  // namespace
}  // namespace ipda::crypto
