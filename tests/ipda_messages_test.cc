#include "agg/ipda/messages.h"

#include <gtest/gtest.h>

namespace ipda::agg {
namespace {

TEST(HelloMsg, RoundTrip) {
  for (TreeColor color :
       {TreeColor::kRed, TreeColor::kBlue, TreeColor::kBoth}) {
    for (uint32_t hop : {0u, 1u, 7u, 65535u}) {
      auto decoded =
          DecodeHelloMsg(EncodeHelloMsg({color, hop, std::nullopt}));
      ASSERT_TRUE(decoded.ok());
      EXPECT_EQ(decoded->color, color);
      EXPECT_EQ(decoded->hop, hop);
    }
  }
}

TEST(HelloMsg, HopSaturatesAt16Bits) {
  auto decoded = DecodeHelloMsg(EncodeHelloMsg({TreeColor::kRed, 1 << 20, std::nullopt}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->hop, 0xffffu);
}

TEST(HelloMsg, RejectsBadColor) {
  util::Bytes wire = EncodeHelloMsg({TreeColor::kRed, 3, std::nullopt});
  wire[0] = 0;
  EXPECT_FALSE(DecodeHelloMsg(wire).ok());
  wire[0] = 4;
  EXPECT_FALSE(DecodeHelloMsg(wire).ok());
}

TEST(HelloMsg, RejectsTruncation) {
  util::Bytes wire = EncodeHelloMsg({TreeColor::kBlue, 3, std::nullopt});
  wire.pop_back();
  EXPECT_FALSE(DecodeHelloMsg(wire).ok());
}

TEST(HelloMsg, QueryPiggybackRoundTrip) {
  HelloMsg msg{TreeColor::kRed, 4, HistogramQuery(0.0, 50.0, 10, 3)};
  auto decoded = DecodeHelloMsg(EncodeHelloMsg(msg));
  ASSERT_TRUE(decoded.ok());
  ASSERT_TRUE(decoded->query.has_value());
  EXPECT_EQ(*decoded->query, *msg.query);
  EXPECT_EQ(decoded->hop, 4u);
}

TEST(HelloMsg, QueryPiggybackGrowsWire) {
  const size_t bare =
      EncodeHelloMsg({TreeColor::kRed, 1, std::nullopt}).size();
  const size_t with_query =
      EncodeHelloMsg({TreeColor::kRed, 1, CountQuery()}).size();
  EXPECT_EQ(with_query, bare + kQueryWireBytes);
}

TEST(HelloMsg, TruncatedQueryRejected) {
  util::Bytes wire =
      EncodeHelloMsg({TreeColor::kRed, 1, CountQuery()});
  wire.pop_back();
  EXPECT_FALSE(DecodeHelloMsg(wire).ok());
}

TEST(SliceMsg, RoundTrip) {
  SliceMsg msg{TreeColor::kBlue, Vector{0.25, -1.5}};
  auto decoded = DecodeSliceMsg(EncodeSliceMsg(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->color, TreeColor::kBlue);
  EXPECT_EQ(decoded->slice, msg.slice);
}

TEST(SliceMsg, RejectsBothColor) {
  // Slices feed exactly one tree; kBoth is invalid on the wire.
  util::Bytes wire = EncodeSliceMsg({TreeColor::kRed, Vector{1.0}});
  wire[0] = 3;
  EXPECT_FALSE(DecodeSliceMsg(wire).ok());
}

TEST(AggregateMsg, RoundTrip) {
  AggregateMsg msg{TreeColor::kRed, Vector{100.0, 250.5, 3.0}};
  auto decoded = DecodeAggregateMsg(EncodeAggregateMsg(msg));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->color, TreeColor::kRed);
  EXPECT_EQ(decoded->partial, msg.partial);
}

TEST(AggregateMsg, RejectsBadColorAndTruncation) {
  util::Bytes wire = EncodeAggregateMsg({TreeColor::kBlue, Vector{1.0}});
  util::Bytes bad_color = wire;
  bad_color[0] = 3;
  EXPECT_FALSE(DecodeAggregateMsg(bad_color).ok());
  wire.pop_back();
  EXPECT_FALSE(DecodeAggregateMsg(wire).ok());
}

TEST(RoleColor, Matching) {
  EXPECT_TRUE(RoleMatchesColor(NodeRole::kRedAggregator, TreeColor::kRed));
  EXPECT_FALSE(RoleMatchesColor(NodeRole::kRedAggregator, TreeColor::kBlue));
  EXPECT_TRUE(RoleMatchesColor(NodeRole::kBlueAggregator, TreeColor::kBlue));
  EXPECT_FALSE(RoleMatchesColor(NodeRole::kBlueAggregator, TreeColor::kRed));
  // The base station roots both trees.
  EXPECT_TRUE(RoleMatchesColor(NodeRole::kBaseStation, TreeColor::kRed));
  EXPECT_TRUE(RoleMatchesColor(NodeRole::kBaseStation, TreeColor::kBlue));
  EXPECT_TRUE(RoleMatchesColor(NodeRole::kBaseStation, TreeColor::kBoth));
  // Leaves and excluded nodes aggregate nowhere.
  EXPECT_FALSE(RoleMatchesColor(NodeRole::kLeaf, TreeColor::kRed));
  EXPECT_FALSE(RoleMatchesColor(NodeRole::kExcluded, TreeColor::kBlue));
}

TEST(Names, AreHumanReadable) {
  EXPECT_STREQ(TreeColorName(TreeColor::kRed), "red");
  EXPECT_STREQ(TreeColorName(TreeColor::kBlue), "blue");
  EXPECT_STREQ(TreeColorName(TreeColor::kBoth), "both");
  EXPECT_STREQ(NodeRoleName(NodeRole::kLeaf), "leaf");
  EXPECT_STREQ(NodeRoleName(NodeRole::kBaseStation), "base-station");
}

}  // namespace
}  // namespace ipda::agg
