// Durable append-file primitives and the drain-signal flag.

#include "util/io.h"

#include <csignal>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "util/signal.h"

namespace ipda::util {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "util_io_test_" + name + ".txt";
}

TEST(AppendFile, CreatesWritesAndReopens) {
  const std::string path = TempPath("append");
  {
    auto file = AppendFile::Open(path, /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    EXPECT_TRUE(file->is_open());
    EXPECT_EQ(file->path(), path);
    ASSERT_TRUE(file->AppendLine("first").ok());
    ASSERT_TRUE(file->AppendLine("second", /*sync=*/false).ok());
    ASSERT_TRUE(file->Sync().ok());
  }
  {
    // Reopen without truncate: appends after the existing content.
    auto file = AppendFile::Open(path);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file->AppendLine("third").ok());
  }
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "first\nsecond\nthird\n");
}

TEST(AppendFile, TruncateStartsFresh) {
  const std::string path = TempPath("truncate");
  {
    auto file = AppendFile::Open(path, /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file->AppendLine("stale").ok());
  }
  {
    auto file = AppendFile::Open(path, /*truncate=*/true);
    ASSERT_TRUE(file.ok());
    ASSERT_TRUE(file->AppendLine("fresh").ok());
  }
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "fresh\n");
}

TEST(AppendFile, ClosedFileRejectsWrites) {
  const std::string path = TempPath("closed");
  auto file = AppendFile::Open(path, /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  file->Close();
  EXPECT_FALSE(file->is_open());
  EXPECT_FALSE(file->AppendLine("nope").ok());
  EXPECT_FALSE(file->Sync().ok());
}

TEST(AppendFile, MoveTransfersOwnership) {
  const std::string path = TempPath("move");
  auto file = AppendFile::Open(path, /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  AppendFile moved = std::move(*file);
  EXPECT_TRUE(moved.is_open());
  ASSERT_TRUE(moved.AppendLine("via move").ok());
  auto contents = ReadFileToString(path);
  ASSERT_TRUE(contents.ok());
  EXPECT_EQ(*contents, "via move\n");
}

TEST(Io, ReadFileToStringMissingFileFails) {
  EXPECT_FALSE(ReadFileToString(TempPath("missing")).ok());
}

TEST(Io, FileExists) {
  const std::string path = TempPath("exists");
  std::remove(path.c_str());  // A previous run may have left it behind.
  EXPECT_FALSE(FileExists(path));
  auto file = AppendFile::Open(path, /*truncate=*/true);
  ASSERT_TRUE(file.ok());
  EXPECT_TRUE(FileExists(path));
}

TEST(DrainSignal, ProgrammaticRequestAndReset) {
  ResetDrainForTest();
  EXPECT_FALSE(DrainRequested());
  EXPECT_EQ(DrainSignal(), 0);
  RequestDrain();
  EXPECT_TRUE(DrainRequested());
  EXPECT_EQ(DrainSignal(), 0);  // Programmatic, not a signal.
  RequestDrain();               // Idempotent.
  EXPECT_TRUE(DrainRequested());
  ResetDrainForTest();
  EXPECT_FALSE(DrainRequested());
}

TEST(DrainSignal, FirstSigtermFlipsFlagWithoutKilling) {
  ResetDrainForTest();
  InstallDrainHandler();
  // The first signal must be absorbed by the handler (this process
  // visibly survives it) and recorded for the drain loop.
  ASSERT_EQ(std::raise(SIGTERM), 0);
  EXPECT_TRUE(DrainRequested());
  EXPECT_EQ(DrainSignal(), SIGTERM);
  ResetDrainForTest();
  // Re-arm for later cases: the handler stays installed, the flag is
  // clean again.
  EXPECT_FALSE(DrainRequested());
}

}  // namespace
}  // namespace ipda::util
