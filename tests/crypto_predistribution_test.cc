#include "crypto/predistribution.h"

#include <set>

#include <gtest/gtest.h>

#include "util/random.h"

namespace ipda::crypto {
namespace {

TEST(Predistribution, RingsHaveRequestedSizeAndRange) {
  EgConfig config{100, 10};
  util::Rng rng(1);
  auto scheme = KeyPredistribution::Create(config, 20, 7, rng);
  ASSERT_TRUE(scheme.ok());
  for (PeerId node = 0; node < 20; ++node) {
    const auto& ring = scheme->ring(node);
    EXPECT_EQ(ring.size(), 10u);
    std::set<KeyId> unique(ring.begin(), ring.end());
    EXPECT_EQ(unique.size(), 10u);
    for (KeyId id : ring) EXPECT_LT(id, 100u);
    EXPECT_TRUE(std::is_sorted(ring.begin(), ring.end()));
  }
}

TEST(Predistribution, RejectsBadConfig) {
  util::Rng rng(1);
  EXPECT_FALSE(KeyPredistribution::Create({100, 0}, 5, 1, rng).ok());
  EXPECT_FALSE(KeyPredistribution::Create({10, 11}, 5, 1, rng).ok());
}

TEST(Predistribution, NodeHoldsKeyMatchesRing) {
  EgConfig config{50, 5};
  util::Rng rng(2);
  auto scheme = KeyPredistribution::Create(config, 4, 7, rng);
  ASSERT_TRUE(scheme.ok());
  for (PeerId node = 0; node < 4; ++node) {
    for (KeyId id = 0; id < 50; ++id) {
      const auto& ring = scheme->ring(node);
      const bool in_ring =
          std::find(ring.begin(), ring.end(), id) != ring.end();
      EXPECT_EQ(scheme->NodeHoldsKey(node, id), in_ring);
    }
  }
}

TEST(Predistribution, SharedKeyIdIsLowestCommon) {
  // Ring size == pool size forces full overlap: shared id must be 0.
  EgConfig config{8, 8};
  util::Rng rng(3);
  auto scheme = KeyPredistribution::Create(config, 2, 7, rng);
  ASSERT_TRUE(scheme.ok());
  EXPECT_EQ(scheme->SharedKeyId(0, 1), 0u);
}

TEST(Predistribution, SharedKeyIsSymmetric) {
  EgConfig config{200, 40};
  util::Rng rng(4);
  auto scheme = KeyPredistribution::Create(config, 10, 7, rng);
  ASSERT_TRUE(scheme.ok());
  for (PeerId a = 0; a < 10; ++a) {
    for (PeerId b = 0; b < 10; ++b) {
      EXPECT_EQ(scheme->SharedKeyId(a, b), scheme->SharedKeyId(b, a));
    }
  }
}

TEST(Predistribution, PoolKeyDeterministicPerId) {
  EgConfig config{100, 10};
  util::Rng rng(5);
  auto scheme = KeyPredistribution::Create(config, 3, 99, rng);
  ASSERT_TRUE(scheme.ok());
  EXPECT_EQ(scheme->PoolKey(7), scheme->PoolKey(7));
  EXPECT_FALSE(scheme->PoolKey(7) == scheme->PoolKey(8));
}

TEST(Predistribution, ProvisionSecuresOnlySharingLinks) {
  EgConfig config{1000, 20};  // Share probability ~0.33.
  util::Rng rng(6);
  auto scheme = KeyPredistribution::Create(config, 50, 1, rng);
  ASSERT_TRUE(scheme.ok());
  std::vector<Link> links;
  for (PeerId a = 0; a < 50; ++a) {
    for (PeerId b = static_cast<PeerId>(a + 1); b < 50; ++b) {
      links.emplace_back(a, b);
    }
  }
  std::vector<LinkCrypto> cryptos;
  for (PeerId id = 0; id < 50; ++id) cryptos.emplace_back(id);
  const double secured = scheme->Provision(links, cryptos);
  const double expected = KeyPredistribution::ShareProbability(config);
  EXPECT_NEAR(secured, expected, 0.06);
  // Spot-check consistency between Provision and SharedKeyId.
  for (const auto& [a, b] : links) {
    EXPECT_EQ(cryptos[a].keystore().HasLinkKey(b),
              scheme->SharedKeyId(a, b) != kInvalidKeyId);
  }
}

TEST(Predistribution, SecuredLinkEncryptsEndToEnd) {
  EgConfig config{20, 15};  // Dense rings: sharing almost certain.
  util::Rng rng(7);
  auto scheme = KeyPredistribution::Create(config, 2, 3, rng);
  ASSERT_TRUE(scheme.ok());
  std::vector<LinkCrypto> cryptos;
  cryptos.emplace_back(0);
  cryptos.emplace_back(1);
  ASSERT_EQ(scheme->Provision({{0, 1}}, cryptos), 1.0);
  auto wire = cryptos[0].Seal(1, util::Bytes{5, 5, 5});
  EXPECT_EQ(*cryptos[1].Open(0, *wire), (util::Bytes{5, 5, 5}));
}

TEST(Predistribution, LinkKeyIdsParallelToLinks) {
  EgConfig config{100, 30};
  util::Rng rng(8);
  auto scheme = KeyPredistribution::Create(config, 5, 3, rng);
  ASSERT_TRUE(scheme.ok());
  std::vector<Link> links{{0, 1}, {1, 2}, {3, 4}};
  const auto ids = scheme->LinkKeyIds(links);
  ASSERT_EQ(ids.size(), 3u);
  for (size_t i = 0; i < links.size(); ++i) {
    EXPECT_EQ(ids[i], scheme->SharedKeyId(links[i].first, links[i].second));
  }
}

TEST(Predistribution, ShareProbabilityClosedForm) {
  // Tiny case computable by hand: P=4, m=2.
  // C(2,2)/C(4,2) = 1/6; share prob = 5/6.
  EXPECT_NEAR(KeyPredistribution::ShareProbability({4, 2}), 5.0 / 6.0,
              1e-12);
  // m > P/2 forces overlap.
  EXPECT_DOUBLE_EQ(KeyPredistribution::ShareProbability({10, 6}), 1.0);
  // Eschenauer-Gligor's canonical example: P=10000, m=75 gives ~0.43.
  EXPECT_NEAR(KeyPredistribution::ShareProbability({10000, 75}), 0.43,
              0.02);
}

TEST(Predistribution, EmpiricalShareRateMatchesClosedForm) {
  EgConfig config{500, 30};
  util::Rng rng(9);
  auto scheme = KeyPredistribution::Create(config, 200, 3, rng);
  ASSERT_TRUE(scheme.ok());
  size_t sharing = 0;
  size_t total = 0;
  for (PeerId a = 0; a < 200; a += 2) {
    const PeerId b = a + 1;
    ++total;
    if (scheme->SharedKeyId(a, b) != kInvalidKeyId) ++sharing;
  }
  const double expected = KeyPredistribution::ShareProbability(config);
  EXPECT_NEAR(static_cast<double>(sharing) / static_cast<double>(total),
              expected, 0.1);
}

}  // namespace
}  // namespace ipda::crypto
