#include "agg/export.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "agg/aggregate_function.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "sim/simulator.h"

namespace ipda::agg {
namespace {

class ExportTest : public ::testing::Test {
 protected:
  void SetUp() override {
    RunConfig config;
    config.deployment.node_count = 120;
    config.seed = 5150;
    auto topology = BuildRunTopology(config);
    ASSERT_TRUE(topology.ok());
    simulator_ = std::make_unique<sim::Simulator>(config.seed);
    network_ = std::make_unique<net::Network>(simulator_.get(),
                                              std::move(*topology));
    function_ = MakeCount();
    IpdaConfig ipda;
    ipda.slice_range = 1.0;
    protocol_ = std::make_unique<IpdaProtocol>(network_.get(),
                                               function_.get(), ipda);
    auto field = MakeConstantField(1.0);
    protocol_->SetReadings(field->Sample(network_->topology()));
    protocol_->Start();
    simulator_->RunUntil(protocol_->Duration());
    protocol_->Finish();
  }

  std::unique_ptr<sim::Simulator> simulator_;
  std::unique_ptr<net::Network> network_;
  std::unique_ptr<AggregateFunction> function_;
  std::unique_ptr<IpdaProtocol> protocol_;
};

size_t CountOccurrences(const std::string& haystack,
                        const std::string& needle) {
  size_t count = 0;
  size_t pos = 0;
  while ((pos = haystack.find(needle, pos)) != std::string::npos) {
    ++count;
    pos += needle.size();
  }
  return count;
}

TEST_F(ExportTest, TopologyDotHasAllNodesAndSymmetricEdgesOnce) {
  const std::string dot = TopologyToDot(network_->topology());
  EXPECT_NE(dot.find("graph topology"), std::string::npos);
  EXPECT_EQ(CountOccurrences(dot, "[pos="), network_->size());
  // Edge count: each undirected link appears exactly once.
  size_t links = 0;
  for (net::NodeId a = 0; a < network_->size(); ++a) {
    links += network_->topology().degree(a);
  }
  links /= 2;
  EXPECT_EQ(CountOccurrences(dot, " -- "), links);
}

TEST_F(ExportTest, TreesDotColorsEdgesByTree) {
  const std::string dot = IpdaTreesToDot(*protocol_, network_->topology());
  EXPECT_NE(dot.find("digraph ipda_trees"), std::string::npos);
  const size_t red_edges = CountOccurrences(dot, "[color=red]");
  const size_t blue_edges = CountOccurrences(dot, "[color=blue]");
  EXPECT_EQ(red_edges, protocol_->stats().red_aggregators);
  EXPECT_EQ(blue_edges, protocol_->stats().blue_aggregators);
  // Base station rendered black.
  EXPECT_NE(dot.find("fillcolor=black"), std::string::npos);
}

TEST_F(ExportTest, RolesCsvHasHeaderAndOneRowPerNode) {
  const std::string csv = IpdaRolesToCsv(*protocol_, network_->topology());
  EXPECT_EQ(CountOccurrences(csv, "\n"), network_->size() + 1);  // +header.
  EXPECT_NE(csv.find("id,x,y,role,parent,hop,covered,participated"),
            std::string::npos);
  EXPECT_NE(csv.find("base-station"), std::string::npos);
}

TEST_F(ExportTest, RolesCsvCountsMatchStats) {
  const std::string csv = IpdaRolesToCsv(*protocol_, network_->topology());
  EXPECT_EQ(CountOccurrences(csv, ",red,"),
            protocol_->stats().red_aggregators);
  EXPECT_EQ(CountOccurrences(csv, ",blue,"),
            protocol_->stats().blue_aggregators);
}

TEST_F(ExportTest, WriteTextFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/ipda_export_test.dot";
  const std::string content = TopologyToDot(network_->topology());
  ASSERT_TRUE(WriteTextFile(path, content).ok());
  std::FILE* file = std::fopen(path.c_str(), "r");
  ASSERT_NE(file, nullptr);
  std::string read;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), file)) > 0) {
    read.append(buf, n);
  }
  std::fclose(file);
  std::remove(path.c_str());
  EXPECT_EQ(read, content);
}

TEST_F(ExportTest, WriteToUnwritablePathFails) {
  EXPECT_FALSE(
      WriteTextFile("/nonexistent-dir/file.dot", "x").ok());
}

}  // namespace
}  // namespace ipda::agg
