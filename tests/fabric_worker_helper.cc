// Scriptable fabric worker for exp_fabric_test: executes one shard of a
// synthetic sweep through the real RunResilientSweep (private journal,
// heartbeat), with fault injection flags so the test can stage worker
// crashes (raise(SIGKILL) mid-shard), hangs (stop heartbeating), and
// deterministic run failures. Payloads are a pure function of
// (index, seed), so merged fabric output is comparable bit-for-bit to
// an in-process run of the same grid.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include <atomic>
#include <chrono>
#include <thread>

#include "exp/engine.h"
#include "exp/fabric.h"
#include "exp/resilient.h"
#include "util/flags.h"
#include "util/signal.h"

namespace ipda {
namespace {

int Run(int argc, char** argv) {
  util::FlagSet flags;
  flags.DefineInt("points", 4, "grid points");
  flags.DefineInt("runs", 8, "runs per point");
  flags.DefineInt("sweep-seed", 77, "sweep seed");
  flags.DefineString("experiment", "fabric_helper", "journal experiment id");
  flags.DefineString("config-digest", "fabric_helper|v=1", "journal digest");
  flags.DefineString("range", "", "lo:hi shard range (empty = whole grid)");
  flags.DefineString("journal", "", "shard journal to write");
  flags.DefineString("resume", "", "journal to resume from");
  flags.DefineString("heartbeat", "", "heartbeat file to touch");
  flags.DefineDouble("heartbeat-interval", 0.05, "heartbeat period");
  flags.DefineInt("sleep-ms", 0, "per-run sleep (stretches the shard)");
  flags.DefineInt("crash-after", -1,
                  "raise(SIGKILL) after this many EXECUTED runs (-1 off)");
  flags.DefineInt("hang-after", -1,
                  "stop heartbeating and stall after this many executed "
                  "runs (-1 off)");
  flags.DefineBool("fail", false, "every run errors (degradation path)");
  const util::Status status = flags.Parse(argc - 1, argv + 1);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 2;
  }

  const size_t points = static_cast<size_t>(flags.GetInt("points"));
  const size_t runs = static_cast<size_t>(flags.GetInt("runs"));
  std::vector<std::string> labels;
  for (size_t p = 0; p < points; ++p) {
    std::string label = "p";
    label += std::to_string(p);
    labels.push_back(std::move(label));
  }

  exp::ResilientOptions options;
  options.sweep_seed = static_cast<uint64_t>(flags.GetInt("sweep-seed"));
  options.journal_path = flags.GetString("journal");
  options.resume_path = flags.GetString("resume");
  options.experiment = flags.GetString("experiment");
  options.config_digest = flags.GetString("config-digest");
  options.drain_on_signal = true;
  if (!flags.GetString("range").empty()) {
    auto range = exp::ParseShardRange(flags.GetString("range"));
    if (!range.ok()) {
      std::fprintf(stderr, "bad --range: %s\n",
                   range.status().ToString().c_str());
      return 2;
    }
    options.shard_lo = range->lo;
    options.shard_hi = range->hi;
  }

  exp::HeartbeatThread heartbeat;
  if (!flags.GetString("heartbeat").empty()) {
    heartbeat = exp::HeartbeatThread(flags.GetString("heartbeat"),
                                     flags.GetDouble("heartbeat-interval"));
  }

  const int64_t sleep_ms = flags.GetInt("sleep-ms");
  const int64_t crash_after = flags.GetInt("crash-after");
  const int64_t hang_after = flags.GetInt("hang-after");
  const bool fail = flags.GetBool("fail");
  std::atomic<int64_t> executed{0};

  const auto body =
      [&](const exp::AttemptContext& ctx) -> util::Result<std::string> {
    if (sleep_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
    }
    const int64_t done = ++executed;
    if (crash_after >= 0 && done > crash_after) {
      std::raise(SIGKILL);  // Same footprint as the chaos injector.
    }
    if (hang_after >= 0 && done > hang_after) {
      heartbeat.Stop();  // Alive but silent: the dispatcher must notice.
      std::this_thread::sleep_for(std::chrono::seconds(3600));
    }
    if (fail) return util::UnavailableError("scripted failure");
    std::string payload = "index=";
    payload += std::to_string(ctx.point * runs + ctx.run);
    payload += ",seed=";
    payload += std::to_string(ctx.seed);
    return payload;
  };

  exp::Engine engine(1);
  util::InstallDrainHandler();
  auto swept = exp::RunResilientSweep(engine, labels, runs, options, body);
  heartbeat.Stop();
  if (!swept.ok()) {
    std::fprintf(stderr, "helper sweep failed: %s\n",
                 swept.status().ToString().c_str());
    return 1;
  }
  if (fail && swept->failed > 0) {
    // Terminal ok:false records were journaled; a real bench worker
    // exits 0 here too (failures are policy, not worker errors).
    return 0;
  }
  return swept->drained ? util::kDrainExitCode : 0;
}

}  // namespace
}  // namespace ipda

int main(int argc, char** argv) { return ipda::Run(argc, argv); }
