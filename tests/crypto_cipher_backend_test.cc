// Conformance and equivalence suite for the pluggable cipher backends
// (crypto/cipher.h): published test vectors pin the AES and ChaCha20
// cores to their specs, cross-path tests pin every engine (AES-NI vs
// portable, SSE2 vs four-lane) to identical bytes, and CTR/LinkCrypto/
// sim-level tests pin the generic backend path to the chunking- and
// compile-independence contracts the XTEA golden traces established.

#include "crypto/cipher.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "agg/aggregate_function.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "crypto/aes.h"
#include "crypto/chacha20.h"
#include "crypto/ctr.h"
#include "crypto/keystore.h"
#include "crypto/xtea.h"
#include "util/bytes.h"
#include "util/random.h"

namespace ipda::crypto {
namespace {

constexpr CipherKind kAllKinds[] = {CipherKind::kXtea, CipherKind::kAesNi,
                                    CipherKind::kChaCha20};

std::vector<uint8_t> FromHex(const std::string& hex) {
  std::vector<uint8_t> out;
  for (size_t i = 0; i + 1 < hex.size(); i += 2) {
    out.push_back(static_cast<uint8_t>(
        std::stoi(hex.substr(i, 2), nullptr, 16)));
  }
  return out;
}

std::string ToHex(const uint8_t* data, size_t size) {
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (size_t i = 0; i < size; ++i) {
    out.push_back(kDigits[data[i] >> 4]);
    out.push_back(kDigits[data[i] & 0xf]);
  }
  return out;
}

// ---------------------------------------------------------------- AES --

// FIPS-197 Appendix B / C.1: the single worked example every AES
// implementation must reproduce.
TEST(Aes, Fips197VectorPortable) {
  const auto key = FromHex("000102030405060708090a0b0c0d0e0f");
  const auto pt = FromHex("00112233445566778899aabbccddeeff");
  uint8_t rk[kAesScheduleBytes];
  AesKeyExpansion(key.data(), rk);
  uint8_t ct[16];
  AesEncryptBlockPortable(rk, pt.data(), ct);
  EXPECT_EQ(ToHex(ct, 16), "69c4e0d86a7b0430d8cdb78070b4c55a");
}

TEST(Aes, Fips197KeyExpansionLastRoundKey) {
  // FIPS-197 Appendix A.1's expansion ends at w[40..43] =
  // 13111d7f e3944a17 f307a78b 4d2b30c5.
  const auto key = FromHex("000102030405060708090a0b0c0d0e0f");
  uint8_t rk[kAesScheduleBytes];
  AesKeyExpansion(key.data(), rk);
  EXPECT_EQ(ToHex(rk + 160, 16), "13111d7fe3944a17f307a78b4d2b30c5");
}

TEST(Aes, Sp80038aVectorDispatched) {
  // NIST SP 800-38A F.1.1 (ECB-AES128 block 1) through the dispatched
  // engine — AES-NI where the host has it, the portable core otherwise.
  const auto key = FromHex("2b7e151628aed2a6abf7158809cf4f3c");
  const auto pt = FromHex("6bc1bee22e409f96e93d7e117393172a");
  uint8_t rk[kAesScheduleBytes];
  AesKeyExpansion(key.data(), rk);
  uint8_t ct[16];
  AesEncryptBlocks(rk, pt.data(), ct, 1);
  EXPECT_EQ(ToHex(ct, 16), "3ad77bb40d7a3660a89ecaf32466ef97");
}

TEST(Aes, DispatchedMatchesPortableOnRandomBlocks) {
  // Block counts straddle the NI path's 4-blocks-in-flight pipeline so
  // both the pipelined body and the singles tail are compared.
  util::Rng rng(0xAE5);
  for (size_t n : {size_t{1}, size_t{3}, size_t{4}, size_t{5}, size_t{17}}) {
    uint8_t rk[kAesScheduleBytes];
    const Key128 key = Key128::Random(rng);
    AesSchedule sched(key);
    std::memcpy(rk, sched.rk.data(), kAesScheduleBytes);
    std::vector<uint8_t> in(n * 16);
    for (auto& b : in) b = static_cast<uint8_t>(rng.NextUint64());
    std::vector<uint8_t> fast(n * 16), ref(n * 16);
    AesEncryptBlocks(rk, in.data(), fast.data(), n);
    for (size_t i = 0; i < n; ++i) {
      AesEncryptBlockPortable(rk, in.data() + 16 * i, ref.data() + 16 * i);
    }
    EXPECT_EQ(fast, ref) << "n=" << n;
  }
}

// ----------------------------------------------------------- ChaCha20 --

TEST(ChaCha20, Rfc8439BlockVector) {
  // RFC 8439 §2.3.2: 256-bit key 00..1f, 96-bit nonce, counter 1, driven
  // through the raw state interface (the backend itself uses the
  // 128-bit-key layout; the round function is the same).
  const auto key = FromHex(
      "000102030405060708090a0b0c0d0e0f"
      "101112131415161718191a1b1c1d1e1f");
  uint32_t state[16] = {0x61707865, 0x3320646e, 0x79622d32, 0x6b206574};
  for (int i = 0; i < 8; ++i) {
    std::memcpy(&state[4 + i], key.data() + 4 * i, 4);
  }
  state[12] = 1;           // Counter.
  state[13] = 0x09000000;  // Nonce bytes 000000090000004a00000000,
  state[14] = 0x4a000000;  // little-endian words.
  state[15] = 0x00000000;
  uint8_t out[64];
  ChaCha20Block(state, out);
  EXPECT_EQ(ToHex(out, 64),
            "10f1e7e4d13b5915500fdd1fa32071c4"
            "c7d1f4c733c068030422aa9ac3d46c4e"
            "d2826446079faa0914c2d705d98b02a2"
            "b5129cd1de164eb9cbd083e8a2503c4e");
}

TEST(ChaCha20, BlocksMatchesSingleBlockCalls) {
  // Multi-block output must equal single-block calls with successive
  // counters — including a 64-bit counter carry out of word 12.
  util::Rng rng(0xC4A);
  uint32_t state[16];
  for (auto& w : state) w = static_cast<uint32_t>(rng.NextUint64());
  for (uint64_t counter0 : {uint64_t{0}, uint64_t{0xFFFFFFFE}}) {
    state[12] = static_cast<uint32_t>(counter0);
    state[13] = static_cast<uint32_t>(counter0 >> 32);
    constexpr size_t kBlocks = 7;
    std::vector<uint8_t> batched(kBlocks * 64), singles(kBlocks * 64);
    ChaCha20Blocks(state, batched.data(), kBlocks);
    uint32_t step[16];
    std::memcpy(step, state, sizeof(step));
    for (size_t i = 0; i < kBlocks; ++i) {
      const uint64_t counter = counter0 + i;
      step[12] = static_cast<uint32_t>(counter);
      step[13] = static_cast<uint32_t>(counter >> 32);
      ChaCha20Block(step, singles.data() + 64 * i);
    }
    EXPECT_EQ(batched, singles) << "counter0=" << counter0;
  }
}

TEST(ChaCha20, DispatchedMatchesPortable) {
  util::Rng rng(0xC4B);
  uint32_t state[16];
  for (auto& w : state) w = static_cast<uint32_t>(rng.NextUint64());
  for (size_t blocks : {size_t{1}, size_t{3}, size_t{4}, size_t{9}}) {
    std::vector<uint8_t> fast(blocks * 64), ref(blocks * 64);
    ChaCha20Blocks(state, fast.data(), blocks);
    ChaCha20BlocksPortable(state, ref.data(), blocks);
    EXPECT_EQ(fast, ref) << "blocks=" << blocks;
  }
}

// ---------------------------------------------------- generic CTR path --

// Reference CTR: one keystream block at a time through the backend's own
// keystream fn, XORed byte-by-byte. CtrCrypt's 512-byte chunked loop must
// match it at every length.
void ReferenceCtr(const CipherBackend& backend, const CipherSchedule& sched,
                  uint64_t nonce, uint8_t* data, size_t size) {
  std::vector<uint8_t> block(backend.block_bytes);
  for (size_t off = 0, i = 0; off < size; off += block.size(), ++i) {
    backend.keystream(sched, nonce, i, block.data(), 1);
    const size_t n = std::min(block.size(), size - off);
    for (size_t b = 0; b < n; ++b) data[off + b] ^= block[b];
  }
}

TEST(CipherBackend, CtrCryptMatchesReferenceAllLengths) {
  for (CipherKind kind : kAllKinds) {
    const CipherBackend& backend = GetCipherBackend(kind);
    CipherSchedule sched;
    backend.build(Key128::FromSeed(77), sched);
    for (size_t len = 0; len <= 300; ++len) {
      std::vector<uint8_t> chunked(len), ref(len);
      for (size_t i = 0; i < len; ++i) {
        chunked[i] = ref[i] = static_cast<uint8_t>(i * 31 + 7);
      }
      CtrCrypt(backend, sched, /*nonce=*/len, chunked.data(), len);
      ReferenceCtr(backend, sched, /*nonce=*/len, ref.data(), len);
      EXPECT_EQ(chunked, ref)
          << backend.name << " len=" << len;
      if (chunked != ref) break;
    }
  }
}

TEST(CipherBackend, CtrCryptMatchesReferenceRandomLengthsAndNonces) {
  util::Rng rng(0x17E);
  for (CipherKind kind : kAllKinds) {
    const CipherBackend& backend = GetCipherBackend(kind);
    CipherSchedule sched;
    backend.build(Key128::Random(rng), sched);
    for (int trial = 0; trial < 24; ++trial) {
      const size_t len = rng.NextUint64() % 2048;
      const uint64_t nonce = rng.NextUint64();
      std::vector<uint8_t> chunked(len), ref(len);
      for (size_t i = 0; i < len; ++i) {
        chunked[i] = ref[i] = static_cast<uint8_t>(rng.NextUint64());
      }
      CtrCrypt(backend, sched, nonce, chunked.data(), len);
      ReferenceCtr(backend, sched, nonce, ref.data(), len);
      ASSERT_EQ(chunked, ref) << backend.name << " len=" << len;
    }
  }
}

TEST(CipherBackend, KeystreamChunkingIsIndependent) {
  // Block i depends only on (schedule, nonce, i): any split of a run of
  // blocks concatenates to the one-shot bytes.
  for (CipherKind kind : kAllKinds) {
    const CipherBackend& backend = GetCipherBackend(kind);
    CipherSchedule sched;
    backend.build(Key128::FromSeed(5), sched);
    constexpr size_t kBlocks = 11;
    std::vector<uint8_t> whole(kBlocks * backend.block_bytes);
    backend.keystream(sched, /*nonce=*/99, /*block0=*/3, whole.data(),
                      kBlocks);
    std::vector<uint8_t> split(whole.size());
    for (size_t done = 0, step = 1; done < kBlocks; done += step, ++step) {
      const size_t n = std::min(step, kBlocks - done);
      backend.keystream(sched, /*nonce=*/99, /*block0=*/3 + done,
                        split.data() + done * backend.block_bytes, n);
    }
    EXPECT_EQ(whole, split) << backend.name;
  }
}

TEST(CipherBackend, XteaBackendMatchesLegacyPaths) {
  // The kXtea backend, the XteaSchedule batched path, and the scalar
  // Key128 reference must stay byte-identical — this is the equivalence
  // the committed golden traces rest on.
  const Key128 key = Key128::FromSeed(1234);
  const CipherBackend& backend = GetCipherBackend(CipherKind::kXtea);
  CipherSchedule generic;
  backend.build(key, generic);
  const XteaSchedule legacy(key);
  for (size_t len : {size_t{0}, size_t{1}, size_t{8}, size_t{26},
                     size_t{255}}) {
    util::Bytes a(len), b(len), c(len);
    for (size_t i = 0; i < len; ++i) {
      a[i] = b[i] = c[i] = static_cast<uint8_t>(0x40 + i);
    }
    CtrCrypt(backend, generic, /*nonce=*/7, a);
    CtrCrypt(legacy, /*nonce=*/7, b);
    CtrCrypt(key, /*nonce=*/7, c);
    EXPECT_EQ(a, b) << "len=" << len;
    EXPECT_EQ(a, c) << "len=" << len;
  }
}

// --------------------------------------------------------- LinkCrypto --

TEST(CipherBackend, SealOpenRoundTripsEveryBackend) {
  for (CipherKind kind : kAllKinds) {
    LinkCrypto alice(1, kind), bob(2, kind);
    const Key128 shared = Key128::FromSeed(91);
    alice.keystore().SetLinkKey(2, shared);
    bob.keystore().SetLinkKey(1, shared);
    util::Bytes plaintext(26);
    for (size_t i = 0; i < plaintext.size(); ++i) {
      plaintext[i] = static_cast<uint8_t>(i);
    }
    auto wire = alice.Seal(2, plaintext);
    ASSERT_TRUE(wire.ok()) << CipherKindName(kind);
    EXPECT_EQ(wire->size(), plaintext.size() + kSealOverheadBytes);
    auto opened = bob.Open(1, *wire);
    ASSERT_TRUE(opened.ok()) << CipherKindName(kind);
    EXPECT_EQ(*opened, plaintext) << CipherKindName(kind);
  }
}

TEST(CipherBackend, CompiledAndDynamicWiresAreIdentical) {
  // Dense (compiled) sealing caches the schedule; the dynamic path builds
  // one per message. Same key, same nonce sequence => same wire bytes,
  // for every backend.
  for (CipherKind kind : kAllKinds) {
    LinkCrypto compiled(1, kind), dynamic(1, kind);
    const Key128 shared = Key128::FromSeed(17);
    compiled.keystore().SetLinkKey(2, shared);
    compiled.Compile();
    dynamic.keystore().SetLinkKey(2, shared);
    util::Bytes plaintext(40, 0x3c);
    for (int msg = 0; msg < 3; ++msg) {
      auto a = compiled.Seal(2, plaintext);
      auto b = dynamic.Seal(2, plaintext);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(*a, *b) << CipherKindName(kind) << " msg=" << msg;
    }
  }
}

TEST(CipherBackend, BackendsProduceDistinctCiphertext) {
  // Sanity: the cipher knob actually changes the wire (same key, same
  // nonce, different keystreams).
  const Key128 key = Key128::FromSeed(3);
  util::Bytes base(32, 0x11);
  std::vector<util::Bytes> wires;
  for (CipherKind kind : kAllKinds) {
    LinkCrypto node(1, kind);
    node.keystore().SetLinkKey(2, key);
    wires.push_back(*node.Seal(2, base));
  }
  EXPECT_NE(wires[0], wires[1]);
  EXPECT_NE(wires[0], wires[2]);
  EXPECT_NE(wires[1], wires[2]);
}

// ------------------------------------------------------------- naming --

TEST(CipherBackend, ParseRoundTripsNames) {
  for (CipherKind kind : kAllKinds) {
    auto parsed = ParseCipherKind(CipherKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
    EXPECT_EQ(GetCipherBackend(kind).kind, kind);
    EXPECT_STREQ(GetCipherBackend(kind).name, CipherKindName(kind));
  }
  EXPECT_FALSE(ParseCipherKind("des").ok());
  EXPECT_FALSE(ParseCipherKind("").ok());
}

// ---------------------------------------------------------- sim level --

TEST(CipherBackend, SimulationResultsAreCipherIndependent) {
  // Ciphertext bytes differ per backend but lengths, schedules, and the
  // decrypted values do not — so a whole aggregation round must land on
  // identical accuracy and traffic counts whatever the cipher.
  agg::RunConfig config;
  config.deployment.node_count = 60;
  config.seed = 404;
  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);
  double accuracy[kCipherKindCount];
  uint64_t bytes_sent[kCipherKindCount];
  for (size_t c = 0; c < kCipherKindCount; ++c) {
    agg::IpdaConfig ipda;
    ipda.slice_range = 1.0;
    ipda.cipher = kAllKinds[c];
    auto result = agg::RunIpda(config, *function, *field, ipda);
    ASSERT_TRUE(result.ok()) << CipherKindName(kAllKinds[c]);
    accuracy[c] = result->accuracy;
    bytes_sent[c] = result->traffic.bytes_sent;
  }
  for (size_t c = 1; c < kCipherKindCount; ++c) {
    EXPECT_EQ(accuracy[c], accuracy[0]) << CipherKindName(kAllKinds[c]);
    EXPECT_EQ(bytes_sent[c], bytes_sent[0]) << CipherKindName(kAllKinds[c]);
  }
}

}  // namespace
}  // namespace ipda::crypto
