#include <set>

#include <gtest/gtest.h>

#include "crypto/ctr.h"
#include "crypto/key.h"
#include "crypto/keystore.h"
#include "crypto/xtea.h"
#include "util/random.h"

namespace ipda::crypto {
namespace {

TEST(Key128, FromSeedDeterministic) {
  EXPECT_EQ(Key128::FromSeed(42), Key128::FromSeed(42));
  EXPECT_FALSE(Key128::FromSeed(42) == Key128::FromSeed(43));
}

TEST(Key128, RandomKeysDiffer) {
  util::Rng rng(1);
  EXPECT_FALSE(Key128::Random(rng) == Key128::Random(rng));
}

TEST(Key128, HexIs32Chars) {
  EXPECT_EQ(Key128::FromSeed(7).ToHex().size(), 32u);
}

TEST(Xtea, EncryptDecryptRoundTrip) {
  const Key128 key = Key128::FromSeed(99);
  util::Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t block = rng.NextUint64();
    EXPECT_EQ(XteaDecryptBlock(key, XteaEncryptBlock(key, block)), block);
  }
}

TEST(Xtea, KnownTestVector) {
  // Published XTEA vector: key 00010203 04050607 08090a0b 0c0d0e0f,
  // plaintext 41424344 45464748 -> ciphertext 497df3d0 72612cb5.
  // Our block packs v0 = low 32 bits, v1 = high 32 bits.
  Key128 key;
  key.words = {0x00010203, 0x04050607, 0x08090a0b, 0x0c0d0e0f};
  const uint64_t plaintext =
      0x41424344ULL | (0x45464748ULL << 32);  // v0=0x41424344, v1=...
  const uint64_t ciphertext = XteaEncryptBlock(key, plaintext);
  const uint32_t c0 = static_cast<uint32_t>(ciphertext);
  const uint32_t c1 = static_cast<uint32_t>(ciphertext >> 32);
  EXPECT_EQ(c0, 0x497df3d0u);
  EXPECT_EQ(c1, 0x72612cb5u);
}

TEST(Xtea, WrongKeyDoesNotDecrypt) {
  const Key128 a = Key128::FromSeed(1);
  const Key128 b = Key128::FromSeed(2);
  const uint64_t block = 0x1122334455667788ULL;
  EXPECT_NE(XteaDecryptBlock(b, XteaEncryptBlock(a, block)), block);
}

TEST(Xtea, AvalancheOnPlaintextBitFlip) {
  const Key128 key = Key128::FromSeed(5);
  const uint64_t c1 = XteaEncryptBlock(key, 0);
  const uint64_t c2 = XteaEncryptBlock(key, 1);
  const int flipped = __builtin_popcountll(c1 ^ c2);
  EXPECT_GT(flipped, 16);  // Roughly half of 64 bits should flip.
  EXPECT_LT(flipped, 48);
}

TEST(Ctr, RoundTripVariousLengths) {
  const Key128 key = Key128::FromSeed(11);
  util::Rng rng(3);
  for (size_t len : {0u, 1u, 7u, 8u, 9u, 16u, 63u, 64u, 65u, 1000u}) {
    util::Bytes data(len);
    for (auto& b : data) b = static_cast<uint8_t>(rng.UniformUint64(256));
    const util::Bytes original = data;
    CtrCrypt(key, 777, data);
    if (len > 0) {
      EXPECT_NE(data, original) << "len=" << len;
    }
    CtrCrypt(key, 777, data);  // Symmetric.
    EXPECT_EQ(data, original) << "len=" << len;
  }
}

TEST(Ctr, DifferentNoncesGiveDifferentCiphertexts) {
  const Key128 key = Key128::FromSeed(12);
  const util::Bytes plaintext(32, 0x00);
  const util::Bytes c1 = CtrCryptCopy(key, 1, plaintext);
  const util::Bytes c2 = CtrCryptCopy(key, 2, plaintext);
  EXPECT_NE(c1, c2);
}

TEST(Ctr, DifferentKeysGiveDifferentCiphertexts) {
  const util::Bytes plaintext(32, 0x00);
  const util::Bytes c1 = CtrCryptCopy(Key128::FromSeed(1), 5, plaintext);
  const util::Bytes c2 = CtrCryptCopy(Key128::FromSeed(2), 5, plaintext);
  EXPECT_NE(c1, c2);
}

TEST(Ctr, KeystreamBytesLookUniform) {
  // Encrypting zeros exposes the keystream; its byte histogram should be
  // roughly flat.
  const Key128 key = Key128::FromSeed(13);
  util::Bytes zeros(256 * 64, 0x00);
  CtrCrypt(key, 999, zeros);
  std::vector<int> counts(256, 0);
  for (uint8_t b : zeros) ++counts[b];
  const double expected = static_cast<double>(zeros.size()) / 256.0;
  for (int c : counts) {
    EXPECT_GT(c, expected * 0.5);
    EXPECT_LT(c, expected * 1.5);
  }
}

TEST(Ctr, CopyVariantLeavesInputIntact) {
  const Key128 key = Key128::FromSeed(14);
  const util::Bytes plaintext{1, 2, 3, 4};
  const util::Bytes copy = CtrCryptCopy(key, 4, plaintext);
  EXPECT_EQ(plaintext, (util::Bytes{1, 2, 3, 4}));
  EXPECT_NE(copy, plaintext);
}

TEST(Ctr, InPlaceMatchesCopyVariantByteForByte) {
  // The move-based message path encrypts inside the caller's buffer; it
  // must be indistinguishable on the wire from the copying path.
  const Key128 key = Key128::FromSeed(21);
  util::Rng rng(6);
  for (size_t len : {1u, 8u, 33u, 200u}) {
    util::Bytes data(len);
    for (auto& b : data) b = static_cast<uint8_t>(rng.UniformUint64(256));
    const util::Bytes copied = CtrCryptCopy(key, 31337, data);
    CtrCrypt(key, 31337, data);
    EXPECT_EQ(data, copied) << "len=" << len;
  }
}

TEST(Seal, MoveOverloadMatchesCopyingOverloadOnTheWire) {
  // Two nodes with identical key material and counter state: one seals
  // by const&, the other by rvalue. Wire bytes must match exactly, or
  // the move-based slice assembly would change recorded traffic.
  const Key128 key = Key128::FromSeed(77);
  LinkCrypto by_copy(3), by_move(3);
  by_copy.keystore().SetLinkKey(9, key);
  by_move.keystore().SetLinkKey(9, key);
  util::Rng rng(7);
  for (int round = 0; round < 8; ++round) {
    util::Bytes plaintext(5 + 13 * round);
    for (auto& b : plaintext) {
      b = static_cast<uint8_t>(rng.UniformUint64(256));
    }
    auto copied = by_copy.Seal(9, plaintext);
    auto moved = by_move.Seal(9, util::Bytes(plaintext));
    ASSERT_TRUE(copied.ok());
    ASSERT_TRUE(moved.ok());
    EXPECT_EQ(*copied, *moved) << "round " << round;
    EXPECT_EQ(moved->size(), plaintext.size() + kSealOverheadBytes);

    // And the receiver recovers the plaintext from either.
    LinkCrypto receiver(9);
    receiver.keystore().SetLinkKey(3, key);
    auto opened = receiver.Open(3, *moved);
    ASSERT_TRUE(opened.ok());
    EXPECT_EQ(*opened, plaintext);
  }
}

TEST(Seal, MoveOverloadStillAdvancesTheNonceCounter) {
  const Key128 key = Key128::FromSeed(78);
  LinkCrypto crypto(1);
  crypto.keystore().SetLinkKey(2, key);
  const util::Bytes plaintext(16, 0x5C);
  auto first = crypto.Seal(2, util::Bytes(plaintext));
  auto second = crypto.Seal(2, util::Bytes(plaintext));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // Same plaintext, fresh nonce: everything after the prefix differs too.
  EXPECT_NE(*first, *second);
  EXPECT_NE(util::Bytes(first->begin(), first->begin() + kSealOverheadBytes),
            util::Bytes(second->begin(),
                        second->begin() + kSealOverheadBytes));
}

TEST(Xtea, ScheduleMatchesKeyPaths) {
  // The precomputed round-key schedule must reproduce the on-the-fly key
  // derivation bit for bit, in both directions.
  const Key128 key = Key128::FromSeed(321);
  const XteaSchedule sched(key);
  util::Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t block = rng.NextUint64();
    const uint64_t c = XteaEncryptBlock(key, block);
    EXPECT_EQ(XteaEncryptBlock(sched, block), c);
    EXPECT_EQ(XteaDecryptBlock(sched, c), block);
  }
}

TEST(Xtea, BatchedBlocksMatchScalarLoop) {
  // The interleaved multi-block path (including its scalar tail for
  // remainders mod 4) must equal block-at-a-time encryption.
  const Key128 key = Key128::FromSeed(322);
  const XteaSchedule sched(key);
  util::Rng rng(9);
  for (size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 31u, 32u, 33u, 100u}) {
    std::vector<uint64_t> in(n), batched(n);
    for (auto& b : in) b = rng.NextUint64();
    XteaEncryptBlocks(sched, in.data(), batched.data(), n);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(batched[i], XteaEncryptBlock(key, in[i])) << "n=" << n
                                                          << " i=" << i;
    }
  }
}

TEST(Ctr, BatchedPathMatchesScalarPathAllLengths) {
  // The chunked keystream path (u64 XOR + per-byte tail) must produce
  // exactly the bytes of the original per-block loop for every length,
  // especially non-block-aligned tails and chunk boundaries.
  const Key128 key = Key128::FromSeed(323);
  const XteaSchedule sched(key);
  util::Rng rng(10);
  for (size_t len = 0; len <= 300; ++len) {
    util::Bytes data(len);
    for (auto& b : data) b = static_cast<uint8_t>(rng.UniformUint64(256));
    util::Bytes scalar = data;
    util::Bytes batched = std::move(data);
    CtrCrypt(key, 42424242, scalar);        // Per-block reference path.
    CtrCrypt(sched, 42424242, batched);     // Chunked schedule path.
    EXPECT_EQ(batched, scalar) << "len=" << len;
  }
}

TEST(Ctr, BatchedPathMatchesScalarAtRandomLengths) {
  // Random lengths past the 32-block chunk size, random nonces: catches
  // counter carry-over mistakes between chunks.
  const Key128 key = Key128::FromSeed(324);
  const XteaSchedule sched(key);
  util::Rng rng(11);
  for (int trial = 0; trial < 50; ++trial) {
    const size_t len = static_cast<size_t>(rng.UniformUint64(4096));
    const uint64_t nonce = rng.NextUint64();
    util::Bytes scalar(len);
    for (auto& b : scalar) b = static_cast<uint8_t>(rng.UniformUint64(256));
    util::Bytes batched = scalar;
    CtrCrypt(key, nonce, scalar);
    CtrCrypt(sched, nonce, batched);
    EXPECT_EQ(batched, scalar) << "trial=" << trial << " len=" << len;
  }
}

class XteaPermutationProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(XteaPermutationProperty, NoCollisionsInSample) {
  // A block cipher is a permutation: distinct plaintexts map to distinct
  // ciphertexts.
  const Key128 key = Key128::FromSeed(GetParam());
  std::set<uint64_t> outputs;
  for (uint64_t p = 0; p < 4096; ++p) {
    outputs.insert(XteaEncryptBlock(key, p));
  }
  EXPECT_EQ(outputs.size(), 4096u);
}

INSTANTIATE_TEST_SUITE_P(Keys, XteaPermutationProperty,
                         ::testing::Values(1, 17, 8675309));

}  // namespace
}  // namespace ipda::crypto
