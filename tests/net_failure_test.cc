// Node crash-failure injection: radio-level death and its protocol-level
// consequences (§III-D: the base station cannot distinguish "data
// pollution attacks or node failures" — both break tree agreement).

#include <gtest/gtest.h>

#include "agg/aggregate_function.h"
#include "agg/ipda/protocol.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace ipda {
namespace {

TEST(NodeFailure, FailedNodeStopsTransmitting) {
  auto topo = net::Topology::Build({{0, 0}, {40, 0}, {80, 0}}, 50.0);
  sim::Simulator simulator(1);
  net::Network network(&simulator, std::move(*topo));
  size_t received = 0;
  network.node(1).SetReceiveHandler(
      [&](const net::Packet&) { ++received; });
  network.channel().FailNode(0);
  net::Packet p;
  p.dst = 1;
  p.type = net::PacketType::kControl;
  network.node(0).Send(p);
  simulator.RunUntil(sim::Seconds(2));
  EXPECT_EQ(received, 0u);
  EXPECT_EQ(network.counters().at(0).frames_sent, 0u);
}

TEST(NodeFailure, FailedNodeStopsReceivingButOthersStillDo) {
  auto topo = net::Topology::Build({{0, 0}, {40, 0}, {40, 30}}, 50.0);
  sim::Simulator simulator(2);
  net::Network network(&simulator, std::move(*topo));
  size_t node1 = 0, node2 = 0;
  network.node(1).SetReceiveHandler(
      [&](const net::Packet&) { ++node1; });
  network.node(2).SetReceiveHandler(
      [&](const net::Packet&) { ++node2; });
  network.channel().FailNode(1);
  net::Packet p;
  p.dst = net::kBroadcastId;
  p.type = net::PacketType::kControl;
  network.node(0).Send(p);
  simulator.RunUntil(sim::Seconds(2));
  EXPECT_EQ(node1, 0u);
  EXPECT_EQ(node2, 1u);
}

TEST(NodeFailure, MidFlightCrashDropsFrame) {
  auto topo = net::Topology::Build({{0, 0}, {40, 0}}, 50.0);
  sim::Simulator simulator(3);
  net::Network network(&simulator, std::move(*topo));
  size_t received = 0;
  network.node(1).SetReceiveHandler(
      [&](const net::Packet&) { ++received; });
  net::Packet p;
  p.dst = 1;
  p.payload.assign(500, 0);  // 4 ms airtime: plenty of flight time.
  p.type = net::PacketType::kControl;
  network.node(0).Send(p);
  // Crash the receiver while the frame is in the air.
  simulator.At(sim::Milliseconds(2), [&] {
    network.channel().FailNode(1);
  });
  simulator.RunUntil(sim::Seconds(2));
  EXPECT_EQ(received, 0u);
}

TEST(NodeFailure, AggregatorCrashBreaksTreeAgreement) {
  // Crash an aggregator between slicing and its report: its subtree's
  // contributions vanish from exactly one tree, so the base station
  // rejects — indistinguishable from pollution, as §III-D says.
  agg::RunConfig config;
  config.deployment.node_count = 400;
  config.seed = 4242;
  auto topology = agg::BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  sim::Simulator simulator(config.seed);
  net::Network network(&simulator, std::move(*topology));
  auto function = agg::MakeCount();
  agg::IpdaConfig ipda;
  ipda.slice_range = 1.0;
  agg::IpdaProtocol protocol(&network, function.get(), ipda);
  auto field = agg::MakeConstantField(1.0);
  protocol.SetReadings(field->Sample(network.topology()));
  protocol.Start();

  // Run Phase I + II, find the aggregator with the largest child count
  // (a fat subtree), then kill it right before the report phase.
  simulator.RunUntil(agg::IpdaReportStart(ipda));
  std::vector<size_t> children(network.size(), 0);
  auto is_aggregator = [&](net::NodeId id) {
    const auto role = protocol.builder(id).role();
    return role == agg::NodeRole::kRedAggregator ||
           role == agg::NodeRole::kBlueAggregator;
  };
  for (net::NodeId id = 1; id < network.size(); ++id) {
    if (!is_aggregator(id)) continue;
    const net::NodeId parent = protocol.builder(id).parent();
    if (parent != net::kBaseStationId) ++children[parent];
  }
  net::NodeId victim = net::kBroadcastId;
  size_t best = 0;
  for (net::NodeId id = 1; id < network.size(); ++id) {
    if (is_aggregator(id) && children[id] > best) {
      best = children[id];
      victim = id;
    }
  }
  ASSERT_NE(victim, net::kBroadcastId);
  ASSERT_GE(best, 3u);  // A real subtree hangs off the victim.
  network.channel().FailNode(victim);

  simulator.RunUntil(protocol.Duration());
  const auto& stats = protocol.Finish();
  // The victim's subtree partial (dozens of contributions at hop 1 of a
  // 400-node network) is missing from one tree only.
  EXPECT_FALSE(stats.decision.accepted)
      << "diff=" << stats.decision.max_component_diff;
}

// Roles are deterministic per seed, so one fault-free discovery run can
// name the aggregators and a second run (same seed, same topology, same
// draws) can crash a chosen subset of them on schedule via a FaultPlan.
std::vector<net::NodeId> DiscoverAggregators(const agg::RunConfig& config,
                                             const agg::IpdaConfig& ipda) {
  auto topology = agg::BuildRunTopology(config);
  if (!topology.ok()) return {};
  sim::Simulator simulator(config.seed);
  net::Network network(&simulator, std::move(*topology));
  auto function = agg::MakeCount();
  agg::IpdaProtocol protocol(&network, function.get(), ipda);
  auto field = agg::MakeConstantField(1.0);
  protocol.SetReadings(field->Sample(network.topology()));
  protocol.Start();
  simulator.RunUntil(agg::IpdaSliceStart(ipda));
  std::vector<net::NodeId> aggregators;
  for (net::NodeId id = 1; id < network.size(); ++id) {
    const auto role = protocol.builder(id).role();
    if (role == agg::NodeRole::kRedAggregator ||
        role == agg::NodeRole::kBlueAggregator) {
      aggregators.push_back(id);
    }
  }
  return aggregators;
}

TEST(NodeFailure, AggregatorCrashesMidPhaseTwoDegradeButFinalize) {
  // Kill 10% of the aggregators in the middle of Phase II. Without the
  // resilience extensions the round loses their slices and subtrees
  // outright; with retargeting + failover + the round deadline, iPDA must
  // still finalize on schedule, flag the round degraded, and collect at
  // least as much data as the no-failover baseline.
  agg::RunConfig config;
  config.deployment.node_count = 400;
  config.seed = 4244;
  agg::IpdaConfig ipda;
  ipda.slice_range = 1.0;

  const auto aggregators = DiscoverAggregators(config, ipda);
  ASSERT_GE(aggregators.size(), 10u);
  const sim::SimTime mid_phase2 =
      agg::IpdaSliceStart(ipda) + ipda.slice_window / 2;
  fault::FaultPlan plan;
  for (size_t i = 0; i < aggregators.size(); i += 10) {
    plan.crashes.push_back({aggregators[i], mid_phase2});
  }
  config.faults = plan;

  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);
  auto baseline = agg::RunIpda(config, *function, *field, ipda);
  ASSERT_TRUE(baseline.ok());

  agg::IpdaConfig resilient = ipda;
  resilient.retarget_slices = true;
  resilient.parent_failover = true;
  auto failover = agg::RunIpda(config, *function, *field, resilient);
  ASSERT_TRUE(failover.ok());

  // Crashed aggregators cannot report, so the round is degraded either
  // way — but it finalized (a decision exists) instead of stalling.
  EXPECT_TRUE(failover->stats.degraded);
  EXPECT_LT(failover->stats.completeness_red *
                failover->stats.completeness_blue,
            1.0);
  // Failover must not collect less than doing nothing.
  EXPECT_GE(failover->accuracy, baseline->accuracy);
  EXPECT_GT(failover->stats.slices_retargeted +
                failover->stats.reports_rerouted,
            0u);
}

TEST(NodeFailure, RoundDeadlineFinalizesWithoutExplicitFinish) {
  // The base station decides at the deadline on its own; callers that
  // never invoke Finish() still see a census and a decision.
  agg::RunConfig config;
  config.deployment.node_count = 300;
  config.seed = 4245;
  auto topology = agg::BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  sim::Simulator simulator(config.seed);
  net::Network network(&simulator, std::move(*topology));
  auto function = agg::MakeCount();
  agg::IpdaConfig ipda;
  ipda.slice_range = 1.0;
  agg::IpdaProtocol protocol(&network, function.get(), ipda);
  auto field = agg::MakeConstantField(1.0);
  protocol.SetReadings(field->Sample(network.topology()));
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  // No Finish() call: the scheduled deadline event already ran it.
  EXPECT_GT(protocol.stats().red_aggregators +
                protocol.stats().blue_aggregators,
            0u);
  EXPECT_TRUE(protocol.stats().decision.accepted);
}

TEST(NodeFailure, CrashThenRecoverRejoinsTheRound) {
  // A sensor that dies during Phase I but recovers before slicing missed
  // some HELLOs yet can still participate if it heard both colors later;
  // at minimum the radio must genuinely come back (recovery counter, and
  // traffic flows again) and the round must stay accepted.
  agg::RunConfig config;
  config.deployment.node_count = 400;
  config.seed = 4246;
  agg::IpdaConfig ipda;
  ipda.slice_range = 1.0;
  fault::FaultPlan plan;
  const net::NodeId victim = 123;
  plan.crashes.push_back({victim, sim::Milliseconds(200)});
  plan.recoveries.push_back({victim, sim::Milliseconds(1200)});
  config.faults = plan;
  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);
  auto run = agg::RunIpda(config, *function, *field, ipda);
  ASSERT_TRUE(run.ok());
  EXPECT_EQ(run->traffic.recoveries, 1u);
  EXPECT_TRUE(run->stats.decision.accepted);
  // One blinking sensor must not take a 400-node round down with it.
  EXPECT_GT(run->stats.participants, 300u);
}

TEST(NodeFailure, LeafFailureBeforeStartIsSymmetric) {
  // A sensor that is dead from the beginning never slices: both trees
  // lose it equally, the round stays accepted, only the count drops.
  agg::RunConfig config;
  config.deployment.node_count = 400;
  config.seed = 4243;
  auto topology = agg::BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  sim::Simulator simulator(config.seed);
  net::Network network(&simulator, std::move(*topology));
  auto function = agg::MakeCount();
  agg::IpdaConfig ipda;
  ipda.slice_range = 1.0;
  agg::IpdaProtocol protocol(&network, function.get(), ipda);
  auto field = agg::MakeConstantField(1.0);
  protocol.SetReadings(field->Sample(network.topology()));
  for (net::NodeId id = 300; id < 310; ++id) {
    network.channel().FailNode(id);
  }
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  const auto& stats = protocol.Finish();
  EXPECT_TRUE(stats.decision.accepted);
  EXPECT_LT(stats.decision.Agreed()[0], 399.0);
}

}  // namespace
}  // namespace ipda
