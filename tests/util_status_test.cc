#include "util/status.h"

#include <gtest/gtest.h>

#include "util/result.h"

namespace ipda::util {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, FactoryFunctionsCarryCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(FailedPreconditionError("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(InvalidArgumentError("bad l").message(), "bad l");
}

TEST(Status, ToStringIncludesCodeName) {
  EXPECT_EQ(NotFoundError("no key").ToString(), "NotFound: no key");
}

TEST(Status, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(InvalidArgumentError("a"), InvalidArgumentError("a"));
  EXPECT_FALSE(InvalidArgumentError("a") == InvalidArgumentError("b"));
  EXPECT_FALSE(InvalidArgumentError("a") == NotFoundError("a"));
  EXPECT_EQ(OkStatus(), Status());
}

TEST(Status, CodeNamesAreDistinct) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_NE(StatusCodeName(StatusCode::kNotFound),
            StatusCodeName(StatusCode::kOutOfRange));
}

TEST(Result, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(Result, HoldsError) {
  Result<int> r = NotFoundError("missing");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(Result, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

TEST(Result, ValueOnErrorAborts) {
  Result<int> r = InternalError("boom");
  EXPECT_DEATH({ (void)r.value(); }, "CHECK failed");
}

Result<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgumentError("odd");
  return x / 2;
}

Result<int> Quarter(int x) {
  IPDA_ASSIGN_OR_RETURN(int h, Half(x));
  IPDA_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(Result, AssignOrReturnPropagatesErrors) {
  EXPECT_EQ(*Quarter(8), 2);
  EXPECT_FALSE(Quarter(9).ok());
  EXPECT_FALSE(Quarter(6).ok());  // Second division fails.
}

Status FailIfNegative(int x) {
  if (x < 0) return OutOfRangeError("negative");
  return OkStatus();
}

Status Chain(int x) {
  IPDA_RETURN_IF_ERROR(FailIfNegative(x));
  IPDA_RETURN_IF_ERROR(FailIfNegative(x - 10));
  return OkStatus();
}

TEST(Status, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(15).ok());
  EXPECT_FALSE(Chain(5).ok());
  EXPECT_FALSE(Chain(-1).ok());
}

}  // namespace
}  // namespace ipda::util
