// Property suite for the spatial-hash topology build (DESIGN.md §13).
//
// The contract the grid must honor: it is a pruner, never a filter — the
// graph Build() produces is EXACTLY the graph the O(N²) brute-force scan
// produces, for any deployment, density, and range, including nodes on
// cell boundaries, and including the churn mutation path (Detach/Attach/
// Move + Compact), which re-links through the same grid.

#include "net/spatial_hash.h"

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "net/topology.h"
#include "util/random.h"

namespace ipda::net {
namespace {

// Asserts both topologies expose identical adjacency, node for node.
void ExpectSameGraph(const Topology& actual, const Topology& expected) {
  ASSERT_EQ(actual.node_count(), expected.node_count());
  for (NodeId id = 0; id < actual.node_count(); ++id) {
    const NeighborSpan a = actual.neighbors(id);
    const NeighborSpan e = expected.neighbors(id);
    ASSERT_EQ(a.size(), e.size()) << "degree mismatch at node " << id;
    for (size_t i = 0; i < a.size(); ++i) {
      ASSERT_EQ(a[i], e[i]) << "neighbor list mismatch at node " << id;
    }
  }
}

// Reference neighbor list: brute-force over the *current* positions and
// active flags, mirroring the unit-disk predicate exactly.
std::vector<NodeId> BruteNeighbors(const Topology& topo, NodeId id) {
  std::vector<NodeId> out;
  if (!topo.active(id)) return out;
  const double range_sq = topo.range() * topo.range();
  for (NodeId v = 0; v < topo.node_count(); ++v) {
    if (v == id || !topo.active(v)) continue;
    const double dx = topo.x(id) - topo.x(v);
    const double dy = topo.y(id) - topo.y(v);
    if (dx * dx + dy * dy <= range_sq) out.push_back(v);
  }
  return out;
}

void ExpectMatchesBrute(const Topology& topo) {
  for (NodeId id = 0; id < topo.node_count(); ++id) {
    const std::vector<NodeId> expected = BruteNeighbors(topo, id);
    const NeighborSpan span = topo.neighbors(id);
    const std::vector<NodeId> actual(span.begin(), span.end());
    ASSERT_EQ(actual, expected) << "node " << id;
  }
}

std::vector<Point2D> RandomPositions(util::Rng& rng, size_t n,
                                     double side) {
  std::vector<Point2D> positions;
  positions.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    positions.push_back(
        Point2D{rng.UniformDouble() * side, rng.UniformDouble() * side});
  }
  return positions;
}

TEST(SpatialHash, CandidatesAreASupersetOfInRangeNodes) {
  util::Rng rng(7);
  const std::vector<Point2D> positions = RandomPositions(rng, 300, 400.0);
  std::vector<double> xs, ys;
  for (const Point2D& p : positions) {
    xs.push_back(p.x);
    ys.push_back(p.y);
  }
  const double range = 50.0;
  SpatialHash grid(xs.data(), ys.data(), xs.size(), range);
  std::vector<uint32_t> candidates;
  for (size_t i = 0; i < positions.size(); ++i) {
    candidates.clear();
    grid.Candidates(positions[i], range, candidates);
    for (size_t j = 0; j < positions.size(); ++j) {
      if (Distance(positions[i], positions[j]) <= range) {
        EXPECT_NE(std::find(candidates.begin(), candidates.end(), j),
                  candidates.end())
            << "in-range node " << j << " missing from candidates of " << i;
      }
    }
  }
}

// The core property: grid build == brute-force build, across network
// sizes, densities (area side), and radio ranges.
TEST(SpatialHashProperty, BuildEqualsBruteForce) {
  const size_t sizes[] = {1, 2, 3, 17, 64, 250};
  const double sides[] = {30.0, 400.0, 2000.0};
  const double ranges[] = {10.0, 50.0, 175.0};
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    for (size_t n : sizes) {
      for (double side : sides) {
        for (double range : ranges) {
          SCOPED_TRACE(::testing::Message()
                       << "seed=" << seed << " n=" << n << " side=" << side
                       << " range=" << range);
          util::Rng rng(util::Mix64(seed, n * 1000 +
                                              static_cast<uint64_t>(side)));
          std::vector<Point2D> positions = RandomPositions(rng, n, side);
          auto fast = Topology::Build(positions, range);
          auto slow = Topology::BuildBruteForce(positions, range);
          ASSERT_TRUE(fast.ok());
          ASSERT_TRUE(slow.ok());
          ExpectSameGraph(*fast, *slow);
        }
      }
    }
  }
}

// Nodes sitting exactly on cell boundaries (coordinates at multiples of
// the cell size == range) and exactly at range distance must not be
// dropped by cell rounding.
TEST(SpatialHashProperty, CellBoundaryAndExactRangeNodes) {
  const double range = 50.0;
  std::vector<Point2D> positions;
  for (int i = 0; i <= 6; ++i) {
    for (int j = 0; j <= 6; ++j) {
      // Lattice on exact cell corners.
      positions.push_back(Point2D{range * i, range * j});
    }
  }
  // A few off-lattice probes, including exact-range pairs.
  positions.push_back(Point2D{25.0, 0.0});
  positions.push_back(Point2D{75.0, 0.0});  // Exactly 50 from the previous.
  positions.push_back(Point2D{300.0, 300.0});
  auto fast = Topology::Build(positions, range);
  auto slow = Topology::BuildBruteForce(positions, range);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  ExpectSameGraph(*fast, *slow);
  // Sanity: the lattice neighbors at exactly `range` are linked.
  EXPECT_TRUE(fast->AreNeighbors(0, 1));
}

// Duplicate coordinates (all nodes in one cell) and a single far outlier
// (extreme aspect ratio) exercise the axis clamping.
TEST(SpatialHashProperty, DegenerateLayouts) {
  std::vector<Point2D> stacked(40, Point2D{10.0, 10.0});
  stacked.push_back(Point2D{1e6, 1e6});
  auto fast = Topology::Build(stacked, 50.0);
  auto slow = Topology::BuildBruteForce(stacked, 50.0);
  ASSERT_TRUE(fast.ok());
  ASSERT_TRUE(slow.ok());
  ExpectSameGraph(*fast, *slow);
}

// Churn equivalence: after any sequence of DetachNode/AttachNode/MoveNode,
// the patched adjacency matches a brute-force recompute over the current
// positions and active flags — and survives Compact() unchanged.
TEST(SpatialHashProperty, ChurnRelinksMatchBruteForce) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    util::Rng rng(seed);
    DeploymentConfig config;
    config.node_count = 150;
    auto topo = Topology::RandomGeometric(config, 50.0, rng);
    ASSERT_TRUE(topo.ok());

    std::vector<bool> detached(topo->node_count(), false);
    util::Rng churn_rng(util::Mix64(seed, 0xC0FFEE));
    for (int step = 0; step < 120; ++step) {
      const NodeId id = static_cast<NodeId>(
          1 + churn_rng.UniformUint64(topo->node_count() - 1));
      switch (churn_rng.UniformUint64(3)) {
        case 0:
          if (!detached[id]) {
            topo->DetachNode(id);
            detached[id] = true;
          }
          break;
        case 1:
          if (detached[id]) {
            topo->AttachNode(id);
            detached[id] = false;
          }
          break;
        default:
          // Moves may leave the original deployment area: the grid clamps
          // to border cells, the exact predicate still decides.
          topo->MoveNode(
              id, Point2D{churn_rng.UniformDouble() * 500.0 - 50.0,
                          churn_rng.UniformDouble() * 500.0 - 50.0});
          break;
      }
      if (step % 30 == 9) ExpectMatchesBrute(*topo);
    }
    ExpectMatchesBrute(*topo);

    topo->Compact();
    EXPECT_FALSE(topo->mutated());
    ExpectMatchesBrute(*topo);

    // The grid stays usable for a second churn epoch after Compact().
    topo->MoveNode(1, Point2D{0.0, 0.0});
    topo->DetachNode(2);
    ExpectMatchesBrute(*topo);
  }
}

// Compact() must preserve the exact byte layout contract: ascending
// neighbor ids, symmetric adjacency.
TEST(SpatialHashProperty, CompactedAdjacencyIsSortedAndSymmetric) {
  util::Rng rng(11);
  DeploymentConfig config;
  config.node_count = 120;
  auto topo = Topology::RandomGeometric(config, 60.0, rng);
  ASSERT_TRUE(topo.ok());
  util::Rng churn_rng(99);
  for (int step = 0; step < 40; ++step) {
    const NodeId id = static_cast<NodeId>(
        1 + churn_rng.UniformUint64(topo->node_count() - 1));
    topo->MoveNode(id, Point2D{churn_rng.UniformDouble() * 400.0,
                               churn_rng.UniformDouble() * 400.0});
  }
  topo->Compact();
  for (NodeId a = 0; a < topo->node_count(); ++a) {
    const NeighborSpan list = topo->neighbors(a);
    EXPECT_TRUE(std::is_sorted(list.begin(), list.end()));
    for (NodeId b : list) {
      EXPECT_TRUE(topo->AreNeighbors(b, a)) << a << "<->" << b;
    }
  }
}

}  // namespace
}  // namespace ipda::net
