#include "util/logging.h"

#include <gtest/gtest.h>

namespace ipda::util {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override { SetLogLevel(LogLevel::kWarning); }
};

TEST_F(LoggingTest, LevelRoundTrip) {
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(LogLevel::kOff);
  EXPECT_EQ(GetLogLevel(), LogLevel::kOff);
}

TEST_F(LoggingTest, SuppressedMessagesDoNotEvaluateStreams) {
  // Below-threshold logging must be cheap and side-effect-free at the
  // sink; the stream expression itself is still evaluated (standard
  // stream-macro semantics), so just verify no crash and ordering.
  SetLogLevel(LogLevel::kError);
  IPDA_LOG(kDebug) << "invisible " << 42;
  IPDA_LOG(kInfo) << "also invisible";
  IPDA_LOG(kWarning) << "still invisible";
  SUCCEED();
}

TEST_F(LoggingTest, EmittedMessageGoesToStderr) {
  SetLogLevel(LogLevel::kInfo);
  ::testing::internal::CaptureStderr();
  IPDA_LOG(kInfo) << "hello " << 7;
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("hello 7"), std::string::npos);
  EXPECT_NE(out.find("[I"), std::string::npos);
  EXPECT_NE(out.find("util_logging_test.cc"), std::string::npos);
}

TEST_F(LoggingTest, ThresholdFiltersExactly) {
  SetLogLevel(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  IPDA_LOG(kInfo) << "filtered";
  IPDA_LOG(kWarning) << "warned";
  IPDA_LOG(kError) << "errored";
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("filtered"), std::string::npos);
  EXPECT_NE(out.find("warned"), std::string::npos);
  EXPECT_NE(out.find("errored"), std::string::npos);
}

TEST_F(LoggingTest, OffSilencesEverything) {
  SetLogLevel(LogLevel::kOff);
  ::testing::internal::CaptureStderr();
  IPDA_LOG(kError) << "nope";
  EXPECT_TRUE(::testing::internal::GetCapturedStderr().empty());
}

}  // namespace
}  // namespace ipda::util
