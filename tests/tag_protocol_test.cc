#include "agg/tag/tag_protocol.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "agg/aggregate_function.h"
#include "agg/partial.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "sim/simulator.h"

namespace ipda::agg {
namespace {

// Chain 0 - 1 - 2 - 3: deterministic tree, exact aggregation expected.
net::Topology ChainTopology() {
  auto topo =
      net::Topology::Build({{0, 0}, {40, 0}, {80, 0}, {120, 0}}, 50.0);
  return std::move(*topo);
}

TEST(TagProtocol, ChainAggregatesExactSum) {
  sim::Simulator simulator(1);
  net::Network network(&simulator, ChainTopology());
  auto function = MakeSum();
  TagProtocol protocol(&network, function.get());
  protocol.SetReadings({0.0, 10.0, 20.0, 30.0});
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  EXPECT_DOUBLE_EQ(protocol.FinalizedResult(), 60.0);
  EXPECT_EQ(protocol.stats().nodes_joined, 3u);
  EXPECT_EQ(protocol.stats().reports_sent, 3u);
}

TEST(TagProtocol, ChainCountsNodes) {
  sim::Simulator simulator(2);
  net::Network network(&simulator, ChainTopology());
  auto function = MakeCount();
  TagProtocol protocol(&network, function.get());
  protocol.SetReadings({0, 1, 1, 1});
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  EXPECT_DOUBLE_EQ(protocol.FinalizedResult(), 3.0);
}

TEST(TagProtocol, DisconnectedNodeExcluded) {
  auto topo = net::Topology::Build(
      {{0, 0}, {40, 0}, {1000, 1000}}, 50.0);
  sim::Simulator simulator(3);
  net::Network network(&simulator, std::move(*topo));
  auto function = MakeCount();
  TagProtocol protocol(&network, function.get());
  protocol.SetReadings({0, 1, 1});
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  EXPECT_DOUBLE_EQ(protocol.FinalizedResult(), 1.0);
  EXPECT_EQ(protocol.stats().nodes_joined, 1u);
}

TEST(TagProtocol, EachNodeSendsOneHelloAndOneReport) {
  sim::Simulator simulator(4);
  net::Network network(&simulator, ChainTopology());
  auto function = MakeCount();
  TagProtocol protocol(&network, function.get());
  protocol.SetReadings({0, 1, 1, 1});
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  // 4 HELLOs (incl. BS) + 3 reports = 7 data frames; remaining frames are
  // MAC ACKs for the 3 unicasts.
  const auto totals = network.counters().Totals();
  EXPECT_EQ(totals.frames_sent, 7u + 3u);
}

TEST(TagProtocol, LevelsFollowHopDistance) {
  // Report ordering: deepest first. In the chain, node 3 (level 3) must
  // report before node 2, which reports before node 1. We observe this
  // through exactness: if ordering were wrong, partials would be lost and
  // the sum would come up short — covered by ChainAggregatesExactSum. Here
  // check levels via stats (joined == all).
  sim::Simulator simulator(5);
  net::Network network(&simulator, ChainTopology());
  auto function = MakeSum();
  TagProtocol protocol(&network, function.get());
  protocol.SetReadings({0.0, 1.0, 2.0, 4.0});
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  EXPECT_DOUBLE_EQ(protocol.FinalizedResult(), 7.0);
}

TEST(TagProtocol, AverageOverRandomDeployment) {
  RunConfig config;
  config.deployment.node_count = 300;
  config.seed = 77;
  auto function = MakeAverage();
  auto field = MakeConstantField(13.0);
  auto result = RunTag(config, *function, *field);
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->result, 13.0, 0.01);
}

TEST(TagProtocol, ConfigValidation) {
  TagConfig config;
  EXPECT_TRUE(ValidateTagConfig(config).ok());
  config.slot = 0;
  EXPECT_FALSE(ValidateTagConfig(config).ok());
  config = TagConfig{};
  config.max_depth = 0;
  EXPECT_FALSE(ValidateTagConfig(config).ok());
  config = TagConfig{};
  config.build_window = -1;
  EXPECT_FALSE(ValidateTagConfig(config).ok());
}

TEST(TagProtocol, NoPrivacyReadingsVisibleOnAir) {
  // TAG leaf reports expose exact readings to any eavesdropper: verify a
  // leaf's partial carries its raw reading (this is the vulnerability iPDA
  // exists to fix; see PDA/iPDA §I).
  sim::Simulator simulator(6);
  net::Network network(&simulator, ChainTopology());
  std::vector<double> observed;
  network.channel().SetOverhearHandler(
      [&](const net::OverhearEvent& event) {
        if (event.packet.type != net::PacketType::kAggregate) return;
        util::Bytes body(event.packet.payload.begin(),
                         event.packet.payload.end());
        auto partial = DecodePartial(body);
        if (partial.ok() && partial->size() == 1) {
          observed.push_back((*partial)[0]);
        }
      });
  auto function = MakeSum();
  TagProtocol protocol(&network, function.get());
  protocol.SetReadings({0.0, 5.0, 7.0, 11.0});
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  // Node 3 is a leaf: its raw reading 11.0 was broadcast in the clear.
  EXPECT_NE(std::find(observed.begin(), observed.end(), 11.0),
            observed.end());
}

TEST(TagProtocol, DeterministicAcrossIdenticalRuns) {
  RunConfig config;
  config.deployment.node_count = 250;
  config.seed = 55;
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  auto a = RunTag(config, *function, *field);
  auto b = RunTag(config, *function, *field);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->stats.collected[0], b->stats.collected[0]);
  EXPECT_EQ(a->traffic.bytes_sent, b->traffic.bytes_sent);
}

}  // namespace
}  // namespace ipda::agg
