// Tests for the m-tree generalization analysis (§III-B).

#include "analysis/multi_tree.h"

#include <cmath>

#include <gtest/gtest.h>

#include "analysis/coverage.h"
#include "analysis/overhead.h"
#include "net/topology.h"
#include "util/random.h"

namespace ipda::analysis {
namespace {

TEST(MultiTree, TwoTreesVsEquationNine) {
  // m = 2 with equiprobable colors is the Eq. (9) setting — but Eq. (9)
  // multiplies (1 - p_b^d)(1 - p_r^d) as if "isolated from red" and
  // "isolated from blue" were independent. For d >= 1 they are mutually
  // exclusive (all-red and all-blue can't both hold), so the exact value
  // is p_b^d + p_r^d and the paper's formula undercounts by exactly the
  // cross term (p_b p_r)^d. Our inclusion-exclusion is exact.
  for (size_t d : {1u, 2u, 5u, 10u, 20u}) {
    const double exact = MultiTreeIsolationProbability(d, 2);
    const double paper = NodeIsolationProbability(d, 0.5, 0.5);
    const double cross = std::pow(0.25, static_cast<double>(d));
    EXPECT_NEAR(exact, paper + cross, 1e-12) << "d=" << d;
    EXPECT_NEAR(exact, 2.0 * std::pow(0.5, static_cast<double>(d)),
                1e-12);
  }
}

TEST(MultiTree, IsolationHandChecked) {
  // m = 3, d = 1: one neighbor can cover one color; two are always
  // missing. p_iso = 1.
  EXPECT_NEAR(MultiTreeIsolationProbability(1, 3), 1.0, 1e-12);
  // m = 3, d = 2: covered iff the two neighbors pick two distinct... no —
  // all three colors must appear among 2 neighbors: impossible.
  EXPECT_NEAR(MultiTreeIsolationProbability(2, 3), 1.0, 1e-12);
  // m = 3, d = 3: all distinct = 3!/27 = 6/27; isolated otherwise.
  EXPECT_NEAR(MultiTreeIsolationProbability(3, 3), 1.0 - 6.0 / 27.0,
              1e-12);
}

TEST(MultiTree, DegreeBelowMAlwaysIsolated) {
  for (size_t m : {2u, 3u, 4u, 5u}) {
    for (size_t d = 0; d < m; ++d) {
      EXPECT_NEAR(MultiTreeIsolationProbability(d, m), 1.0, 1e-12);
    }
  }
}

TEST(MultiTree, IsolationGrowsWithM) {
  for (size_t d : {10u, 20u}) {
    double prev = 0.0;
    for (size_t m = 2; m <= 6; ++m) {
      const double p = MultiTreeIsolationProbability(d, m);
      EXPECT_GT(p, prev) << "d=" << d << " m=" << m;
      prev = p;
    }
  }
}

TEST(MultiTree, IsolationShrinksWithDegree) {
  for (size_t m : {2u, 3u, 4u}) {
    double prev = 1.1;
    for (size_t d = m; d <= 40; ++d) {
      const double p = MultiTreeIsolationProbability(d, m);
      EXPECT_LE(p, prev);
      prev = p;
    }
    EXPECT_LT(prev, 1e-3);
  }
}

TEST(MultiTree, MonteCarloAgreement) {
  // Sample colorings of a node's d neighbors; compare the missing-color
  // frequency with the closed form.
  util::Rng rng(7);
  for (size_t m : {3u, 4u}) {
    for (size_t d : {6u, 12u}) {
      size_t isolated = 0;
      const int trials = 40000;
      for (int t = 0; t < trials; ++t) {
        uint32_t seen = 0;
        for (size_t i = 0; i < d; ++i) {
          seen |= 1u << rng.UniformUint64(m);
        }
        if (seen != (1u << m) - 1) ++isolated;
      }
      EXPECT_NEAR(static_cast<double>(isolated) / trials,
                  MultiTreeIsolationProbability(d, m), 0.01)
          << "m=" << m << " d=" << d;
    }
  }
}

TEST(MultiTree, ExpectedCoveredFractionOnRing) {
  auto ring = net::Topology::RegularRing(100, 12);
  ASSERT_TRUE(ring.ok());
  // Exact vs Eq. (9): the paper's independence approximation differs by
  // the negligible (p_b p_r)^d cross term per node.
  EXPECT_NEAR(MultiTreeExpectedCoveredFraction(*ring, 2),
              ExpectedCoveredFraction(*ring, 0.5, 0.5),
              std::pow(0.25, 12.0) * 2.0);
  EXPECT_LT(MultiTreeExpectedCoveredFraction(*ring, 4),
            MultiTreeExpectedCoveredFraction(*ring, 3));
}

TEST(MultiTree, DegreeForCoverageReflectsPaperDensityWarning) {
  // §III-B: "to achieve good coverage of disjoint trees when m > 2, the
  // network must be very dense". Quantified: the degree needed for 99%
  // per-node coverage grows with m.
  const size_t d2 = MultiTreeDegreeForCoverage(2, 0.99);
  const size_t d3 = MultiTreeDegreeForCoverage(3, 0.99);
  const size_t d4 = MultiTreeDegreeForCoverage(4, 0.99);
  EXPECT_LT(d2, d3);
  EXPECT_LT(d3, d4);
  EXPECT_GE(d2, 5u);  // Sanity: not trivially small.
}

TEST(MultiTree, MessagesReduceToPaperFormulaAtTwoTrees) {
  EXPECT_DOUBLE_EQ(MultiTreeMessagesPerNode(2, 1), 3.0);   // 2l+1, l=1.
  EXPECT_DOUBLE_EQ(MultiTreeMessagesPerNode(2, 2), 5.0);   // 2l+1, l=2.
  EXPECT_DOUBLE_EQ(MultiTreeOverheadRatio(2, 2), OverheadRatio(2));
}

TEST(MultiTree, MessagesGrowLinearlyInM) {
  EXPECT_DOUBLE_EQ(MultiTreeMessagesPerNode(3, 2), 7.0);
  EXPECT_DOUBLE_EQ(MultiTreeMessagesPerNode(4, 2), 9.0);
  EXPECT_DOUBLE_EQ(MultiTreeOverheadRatio(4, 2), 4.5);
}

TEST(MultiTree, PollutionTolerance) {
  EXPECT_EQ(MultiTreePollutionTolerance(2), 0u);  // Paper's design point.
  EXPECT_EQ(MultiTreePollutionTolerance(3), 1u);
  EXPECT_EQ(MultiTreePollutionTolerance(4), 1u);
  EXPECT_EQ(MultiTreePollutionTolerance(5), 2u);
}

}  // namespace
}  // namespace ipda::analysis
