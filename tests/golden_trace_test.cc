// Golden-trace regression tests: fixed-seed rounds must reproduce the
// CSVs committed under tests/golden/ byte for byte. Any change to
// deployment, MAC timing, slicing, fault injection, message encoding, or
// the experiment engine that perturbs a simulation shows up here as a
// one-line diff instead of a silent drift.
//
// Regenerate after an *intentional* behavior change with
//   IPDA_UPDATE_GOLDEN=1 ./tests/golden_trace_test
// and commit the rewritten CSVs alongside the change that explains them.

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "agg/aggregate_function.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "fault/churn_plan.h"
#include "fault/fault_plan.h"

#ifndef IPDA_GOLDEN_DIR
#error "IPDA_GOLDEN_DIR must point at tests/golden"
#endif

namespace ipda {
namespace {

constexpr size_t kNodes = 60;
constexpr double kAreaSide = 200.0;
constexpr uint64_t kSeeds[] = {1, 2, 3};

agg::RunConfig GoldenConfig(uint64_t seed) {
  agg::RunConfig config;
  config.deployment.node_count = kNodes;
  config.deployment.area = net::Area{kAreaSide, kAreaSide};
  config.seed = seed;
  return config;
}

void AppendDouble(std::string& out, double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", value);
  out += buf;
}

// iPDA rounds, optionally under a deterministic fault schedule with the
// PR 1 failure-resilience knobs on.
std::string IpdaTrace(bool with_faults) {
  std::string csv =
      "seed,result,truth,accuracy,accepted,degraded,participants,"
      "covered_both,slices_retargeted,reports_rerouted,bytes_sent,"
      "injected_drops,recoveries\n";
  auto function = agg::MakeSum();
  auto field = agg::MakeUniformField(15.0, 30.0, 42);
  for (uint64_t seed : kSeeds) {
    agg::RunConfig config = GoldenConfig(seed);
    agg::IpdaConfig ipda;
    if (with_faults) {
      auto plan =
          fault::ParseFaultSpec("crash-frac=0.15@0.05,loss=0.05,dup=0.01");
      if (!plan.ok()) return "bad fault spec: " + plan.status().ToString();
      config.faults = *plan;
      ipda.retarget_slices = true;
      ipda.parent_failover = true;
    }
    auto run = agg::RunIpda(config, *function, *field, ipda);
    if (!run.ok()) return "run failed: " + run.status().ToString();
    const auto totals = run->traffic;
    char row[256];
    std::snprintf(row, sizeof(row), "%llu,",
                  static_cast<unsigned long long>(seed));
    csv += row;
    AppendDouble(csv, run->result);
    csv += ',';
    AppendDouble(csv, function->Finalize(run->true_acc));
    csv += ',';
    AppendDouble(csv, run->accuracy);
    std::snprintf(row, sizeof(row), ",%d,%d,%zu,%zu,%zu,%zu,%llu,%llu,%llu\n",
                  run->stats.decision.accepted ? 1 : 0,
                  run->stats.degraded ? 1 : 0, run->stats.participants,
                  run->stats.covered_both, run->stats.slices_retargeted,
                  run->stats.reports_rerouted,
                  static_cast<unsigned long long>(totals.bytes_sent),
                  static_cast<unsigned long long>(totals.injected_drops),
                  static_cast<unsigned long long>(totals.recoveries));
    csv += row;
  }
  return csv;
}

// Small churn scenario (join + move + leave on a 50-node network) under
// the kRepair response: locks down the churn spec grammar, the topology
// patch overlay, and the incremental tree-repair machinery end to end.
std::string IpdaChurnTrace() {
  std::string csv =
      "seed,result,truth,accuracy,accepted,degraded,participants,"
      "joins_absorbed,grafts,disjoint_violations,churn_control_msgs,"
      "bytes_sent\n";
  auto function = agg::MakeSum();
  auto field = agg::MakeUniformField(15.0, 30.0, 42);
  for (uint64_t seed : kSeeds) {
    agg::RunConfig config = GoldenConfig(seed);
    config.deployment.node_count = 50;
    auto churn = fault::ParseChurnSpec(
        "join=5@4.55,move=7:120:120:10@4.3,leave=9@4.7");
    if (!churn.ok()) return "bad churn spec: " + churn.status().ToString();
    config.churn = *churn;
    agg::IpdaConfig ipda;
    ipda.retarget_slices = true;
    ipda.parent_failover = true;
    ipda.churn_response = agg::ChurnResponse::kRepair;
    auto run = agg::RunIpda(config, *function, *field, ipda);
    if (!run.ok()) return "run failed: " + run.status().ToString();
    char row[256];
    std::snprintf(row, sizeof(row), "%llu,",
                  static_cast<unsigned long long>(seed));
    csv += row;
    AppendDouble(csv, run->result);
    csv += ',';
    AppendDouble(csv, function->Finalize(run->true_acc));
    csv += ',';
    AppendDouble(csv, run->accuracy);
    std::snprintf(row, sizeof(row), ",%d,%d,%zu,%zu,%zu,%zu,%zu,%llu\n",
                  run->stats.decision.accepted ? 1 : 0,
                  run->stats.degraded ? 1 : 0, run->stats.participants,
                  run->stats.joins_absorbed, run->stats.grafts,
                  run->stats.disjoint_violations,
                  run->stats.churn_control_msgs,
                  static_cast<unsigned long long>(
                      run->traffic.bytes_sent));
    csv += row;
  }
  return csv;
}

std::string TagTrace() {
  std::string csv = "seed,result,truth,accuracy,joined,bytes_sent\n";
  auto function = agg::MakeSum();
  auto field = agg::MakeUniformField(15.0, 30.0, 42);
  for (uint64_t seed : kSeeds) {
    agg::RunConfig config = GoldenConfig(seed);
    auto run = agg::RunTag(config, *function, *field);
    if (!run.ok()) return "run failed: " + run.status().ToString();
    char row[64];
    std::snprintf(row, sizeof(row), "%llu,",
                  static_cast<unsigned long long>(seed));
    csv += row;
    AppendDouble(csv, run->result);
    csv += ',';
    AppendDouble(csv, function->Finalize(run->true_acc));
    csv += ',';
    AppendDouble(csv, run->accuracy);
    std::snprintf(row, sizeof(row), ",%zu,%llu\n", run->stats.nodes_joined,
                  static_cast<unsigned long long>(run->traffic.bytes_sent));
    csv += row;
  }
  return csv;
}

void CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = std::string(IPDA_GOLDEN_DIR) + "/" + name;
  if (std::getenv("IPDA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    ASSERT_TRUE(out.good()) << "write failed for " << path;
    GTEST_SKIP() << "golden updated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — regenerate with IPDA_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "trace drifted from " << path
      << " — if the change is intentional, regenerate with "
         "IPDA_UPDATE_GOLDEN=1 and commit the diff";
}

TEST(GoldenTrace, IpdaCleanRounds) {
  CheckGolden("ipda_n60.csv", IpdaTrace(/*with_faults=*/false));
}

TEST(GoldenTrace, IpdaFaultyRounds) {
  CheckGolden("ipda_n60_faults.csv", IpdaTrace(/*with_faults=*/true));
}

TEST(GoldenTrace, IpdaChurnRounds) {
  CheckGolden("ipda_n50_churn.csv", IpdaChurnTrace());
}

TEST(GoldenTrace, TagCleanRounds) {
  CheckGolden("tag_n60.csv", TagTrace());
}

}  // namespace
}  // namespace ipda
