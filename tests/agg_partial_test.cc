#include "agg/partial.h"

#include <gtest/gtest.h>

namespace ipda::agg {
namespace {

TEST(Partial, RoundTrip) {
  const Vector acc{1.5, -2.25, 1e9};
  auto decoded = DecodePartial(EncodePartial(acc));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, acc);
}

TEST(Partial, EmptyVector) {
  auto decoded = DecodePartial(EncodePartial(Vector{}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(Partial, WireSizeIsOnePlusEightPerComponent) {
  EXPECT_EQ(EncodePartial(Vector{1.0}).size(), 9u);
  EXPECT_EQ(EncodePartial(Vector{1.0, 2.0, 3.0}).size(), 25u);
}

TEST(Partial, TruncatedPayloadFails) {
  util::Bytes wire = EncodePartial(Vector{1.0, 2.0});
  wire.pop_back();
  EXPECT_FALSE(DecodePartial(wire).ok());
}

TEST(Partial, EmptyPayloadFails) {
  EXPECT_FALSE(DecodePartial(util::Bytes{}).ok());
}

TEST(Partial, IntoAppendsAfterExistingStreamContent) {
  // The composable variant writes into a caller-owned stream, so an
  // enclosing message needs no temporary body buffer.
  const Vector acc{3.5, -0.25};
  util::ByteWriter writer;
  writer.WriteU8(0xA7);  // Pretend header written by the enclosing codec.
  EncodePartialInto(acc, writer);
  writer.WriteU8(0x5A);  // And a trailer after the payload.
  const util::Bytes wire = writer.bytes();
  ASSERT_EQ(wire.size(), 1u + 17u + 1u);
  EXPECT_EQ(wire.front(), 0xA7);
  EXPECT_EQ(wire.back(), 0x5A);

  util::ByteReader reader(wire);
  ASSERT_TRUE(reader.ReadU8().ok());
  auto decoded = DecodePartialFrom(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, acc);
  // Positional: the reader stops exactly at the trailer.
  auto trailer = reader.ReadU8();
  ASSERT_TRUE(trailer.ok());
  EXPECT_EQ(*trailer, 0x5A);
  EXPECT_TRUE(reader.exhausted());
}

TEST(Partial, IntoMatchesStandaloneEncodingByteForByte) {
  const Vector acc{1.0, 2.0, -7.125};
  util::ByteWriter writer;
  EncodePartialInto(acc, writer);
  EXPECT_EQ(writer.bytes(), EncodePartial(acc));
}

TEST(Partial, FromFailsOnTruncationWithoutConsumingPastEnd) {
  util::Bytes wire = EncodePartial(Vector{1.0, 2.0});
  wire.pop_back();
  util::ByteReader reader(wire);
  EXPECT_FALSE(DecodePartialFrom(reader).ok());
}

TEST(ReportTime, DeeperHopsReportEarlier) {
  const sim::SimTime start = sim::Seconds(2);
  const sim::SimTime slot = sim::Milliseconds(100);
  const sim::SimTime deep = ReportTime(start, slot, 24, 10);
  const sim::SimTime shallow = ReportTime(start, slot, 24, 2);
  EXPECT_LT(deep, shallow);
}

TEST(ReportTime, HopOneIsLatestSensorSlot) {
  const sim::SimTime start = sim::Seconds(0);
  const sim::SimTime slot = sim::Milliseconds(100);
  EXPECT_EQ(ReportTime(start, slot, 24, 1), slot * 23);
  EXPECT_EQ(ReportTime(start, slot, 24, 24), 0);
}

TEST(ReportTime, HopsBeyondMaxDepthClampToEarliestSlot) {
  const sim::SimTime start = sim::Seconds(0);
  const sim::SimTime slot = sim::Milliseconds(100);
  EXPECT_EQ(ReportTime(start, slot, 8, 8), ReportTime(start, slot, 8, 100));
}

TEST(ReportTime, AdjacentHopsAreOneSlotApart) {
  const sim::SimTime start = sim::Seconds(1);
  const sim::SimTime slot = sim::Milliseconds(120);
  for (uint32_t hop = 2; hop <= 10; ++hop) {
    EXPECT_EQ(ReportTime(start, slot, 24, hop - 1) -
                  ReportTime(start, slot, 24, hop),
              slot);
  }
}

}  // namespace
}  // namespace ipda::agg
