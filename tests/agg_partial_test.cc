#include "agg/partial.h"

#include <gtest/gtest.h>

namespace ipda::agg {
namespace {

TEST(Partial, RoundTrip) {
  const Vector acc{1.5, -2.25, 1e9};
  auto decoded = DecodePartial(EncodePartial(acc));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, acc);
}

TEST(Partial, EmptyVector) {
  auto decoded = DecodePartial(EncodePartial(Vector{}));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->empty());
}

TEST(Partial, WireSizeIsOnePlusEightPerComponent) {
  EXPECT_EQ(EncodePartial(Vector{1.0}).size(), 9u);
  EXPECT_EQ(EncodePartial(Vector{1.0, 2.0, 3.0}).size(), 25u);
}

TEST(Partial, TruncatedPayloadFails) {
  util::Bytes wire = EncodePartial(Vector{1.0, 2.0});
  wire.pop_back();
  EXPECT_FALSE(DecodePartial(wire).ok());
}

TEST(Partial, EmptyPayloadFails) {
  EXPECT_FALSE(DecodePartial(util::Bytes{}).ok());
}

TEST(ReportTime, DeeperHopsReportEarlier) {
  const sim::SimTime start = sim::Seconds(2);
  const sim::SimTime slot = sim::Milliseconds(100);
  const sim::SimTime deep = ReportTime(start, slot, 24, 10);
  const sim::SimTime shallow = ReportTime(start, slot, 24, 2);
  EXPECT_LT(deep, shallow);
}

TEST(ReportTime, HopOneIsLatestSensorSlot) {
  const sim::SimTime start = sim::Seconds(0);
  const sim::SimTime slot = sim::Milliseconds(100);
  EXPECT_EQ(ReportTime(start, slot, 24, 1), slot * 23);
  EXPECT_EQ(ReportTime(start, slot, 24, 24), 0);
}

TEST(ReportTime, HopsBeyondMaxDepthClampToEarliestSlot) {
  const sim::SimTime start = sim::Seconds(0);
  const sim::SimTime slot = sim::Milliseconds(100);
  EXPECT_EQ(ReportTime(start, slot, 8, 8), ReportTime(start, slot, 8, 100));
}

TEST(ReportTime, AdjacentHopsAreOneSlotApart) {
  const sim::SimTime start = sim::Seconds(1);
  const sim::SimTime slot = sim::Milliseconds(120);
  for (uint32_t hop = 2; hop <= 10; ++hop) {
    EXPECT_EQ(ReportTime(start, slot, 24, hop - 1) -
                  ReportTime(start, slot, 24, hop),
              slot);
  }
}

}  // namespace
}  // namespace ipda::agg
