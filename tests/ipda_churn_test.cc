// Mid-round churn response: late joins as leaves, incremental disjoint
// tree repair (graft log invariant), degraded cross-tree fallback only
// when no disjoint graft exists, compound crash+loss robustness, and
// kill/resume byte-identity of churn sweeps.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "agg/aggregate_function.h"
#include "agg/ipda/protocol.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "exp/engine.h"
#include "exp/resilient.h"
#include "fault/churn_injector.h"
#include "fault/churn_plan.h"
#include "fault/fault_injector.h"
#include "fault/fault_plan.h"
#include "net/network.h"
#include "sim/simulator.h"
#include "util/signal.h"

namespace ipda {
namespace {

// Direct protocol harness (runner-style wiring, but with the builders
// and graft log exposed for invariant checks).
struct ChurnHarness {
  agg::RunConfig config;
  sim::Simulator simulator;
  net::Network network;
  std::unique_ptr<agg::AggregateFunction> function;
  agg::IpdaProtocol protocol;
  std::optional<fault::ChurnInjector> churn;
  std::optional<fault::FaultInjector> faults;

  static agg::RunConfig MakeConfig(size_t nodes, uint64_t seed) {
    agg::RunConfig config;
    config.deployment.node_count = nodes;
    config.seed = seed;
    return config;
  }

  ChurnHarness(size_t nodes, uint64_t seed, const agg::IpdaConfig& ipda)
      : config(MakeConfig(nodes, seed)),
        simulator(seed),
        network(&simulator, std::move(*agg::BuildRunTopology(config))),
        function(agg::MakeCount()),
        protocol(&network, function.get(), ipda) {
    auto field = agg::MakeConstantField(1.0);
    protocol.SetReadings(field->Sample(network.topology()));
  }

  void ArmChurn(const fault::ChurnPlan& plan) {
    churn.emplace(&simulator, &network.channel(),
                  network.mutable_topology(), plan,
                  config.deployment.area, protocol.Duration());
    churn->SetJoinListener(
        [this](net::NodeId id) { protocol.OnChurnJoin(id); });
    churn->SetChangeListener([this] { protocol.OnTopologyChange(); });
    churn->Arm();
  }

  void ArmFaults(const fault::FaultPlan& plan) {
    faults.emplace(&simulator, &network.channel(), network.size(), plan);
    faults->Arm();
  }

  const agg::IpdaStats& Run() {
    protocol.Start();
    simulator.RunUntil(protocol.Duration());
    return protocol.Finish();
  }

  bool IsAggregator(net::NodeId id) const {
    const agg::NodeRole role = protocol.builder(id).role();
    return role == agg::NodeRole::kRedAggregator ||
           role == agg::NodeRole::kBlueAggregator;
  }
  agg::TreeColor ColorOf(net::NodeId id) const {
    return protocol.builder(id).role() == agg::NodeRole::kRedAggregator
               ? agg::TreeColor::kRed
               : agg::TreeColor::kBlue;
  }
};

agg::IpdaConfig RepairConfig() {
  agg::IpdaConfig ipda;
  ipda.slice_range = 1.0;
  ipda.retarget_slices = true;
  ipda.parent_failover = true;
  ipda.churn_response = agg::ChurnResponse::kRepair;
  return ipda;
}

TEST(IpdaChurn, LateJoinerAttachesAsLeafOnBothTrees) {
  ChurnHarness harness(300, 91, RepairConfig());
  fault::ChurnPlan plan;
  plan.joins.push_back({5, sim::SecondsF(4.3)});
  harness.ArmChurn(plan);
  const agg::IpdaStats& stats = harness.Run();

  // The joiner sat out Phase I detached, solicited on join, and was
  // admitted strictly as a leaf: the decided trees are not perturbed.
  EXPECT_TRUE(harness.protocol.builder(5).decided());
  EXPECT_EQ(harness.protocol.builder(5).role(), agg::NodeRole::kLeaf);
  EXPECT_EQ(stats.joins_absorbed, 1u);
  EXPECT_EQ(stats.grafts, 0u);
  EXPECT_EQ(stats.disjoint_violations, 0u);
  EXPECT_GT(stats.churn_control_msgs, 0u);
}

TEST(IpdaChurn, GraftsPreserveNodeDisjointness) {
  ChurnHarness harness(300, 17, RepairConfig());
  fault::ChurnPlan plan;
  plan.mobility.fraction = 0.3;
  plan.mobility.speed_mps = 12.0;
  harness.ArmChurn(plan);
  const agg::IpdaStats& stats = harness.Run();

  const std::vector<agg::GraftRecord>& log = harness.protocol.graft_log();
  ASSERT_FALSE(log.empty()) << "mobility produced no repairs";
  size_t clean = 0, degraded = 0;
  for (const agg::GraftRecord& graft : log) {
    if (graft.degraded) {
      ++degraded;
      continue;
    }
    ++clean;
    // Disjointness invariant: a non-degraded graft reparents onto the
    // base station (root of both trees) or an aggregator of the node's
    // own tree — never onto the other tree.
    if (graft.new_parent == net::kBaseStationId) continue;
    ASSERT_TRUE(harness.IsAggregator(graft.new_parent))
        << "graft of " << graft.node << " onto non-aggregator "
        << graft.new_parent;
    EXPECT_EQ(harness.ColorOf(graft.new_parent), graft.color)
        << "graft of " << graft.node << " crossed trees via "
        << graft.new_parent;
  }
  EXPECT_EQ(clean, stats.grafts);
  EXPECT_EQ(degraded, stats.disjoint_violations);
  EXPECT_GT(stats.grafts, 0u);
  // Every repair attempt logged a latency sample.
  EXPECT_GE(stats.repair_latencies_ms.size(),
            stats.grafts + stats.disjoint_violations);
}

// Picks an aggregator (hop >= 2, so its parent is not the base station)
// with `live` same-color strictly-lower-hop candidates required.
net::NodeId PickVictim(const ChurnHarness& harness, size_t min_same,
                       size_t max_same, size_t min_other) {
  for (net::NodeId id = 1; id < harness.network.size(); ++id) {
    if (!harness.IsAggregator(id)) continue;
    const agg::TreeBuilder& builder = harness.protocol.builder(id);
    if (builder.hop() < 2) continue;
    const agg::TreeColor color = harness.ColorOf(id);
    const agg::TreeColor other = color == agg::TreeColor::kRed
                                     ? agg::TreeColor::kBlue
                                     : agg::TreeColor::kRed;
    size_t same = 0, others = 0;
    for (const auto& cand : builder.AggregatorNeighborInfos(color)) {
      if (cand.hop < builder.hop()) ++same;
    }
    for (const auto& cand : builder.AggregatorNeighborInfos(other)) {
      if (cand.hop < builder.hop()) ++others;
    }
    if (same >= min_same && same <= max_same && others >= min_other) {
      return id;
    }
  }
  return net::kBroadcastId;
}

TEST(IpdaChurn, ParentCrashGraftsOntoDisjointCandidateWhenOneExists) {
  ChurnHarness harness(300, 23, RepairConfig());
  fault::ChurnPlan plan;  // Churn response on, no scheduled churn.
  plan.joins.push_back({299, sim::SecondsF(4.2)});
  harness.ArmChurn(plan);
  harness.protocol.Start();
  harness.simulator.RunUntil(agg::IpdaReportStart(harness.protocol.config()));

  // An aggregator with >= 2 lower-hop same-color candidates keeps a
  // disjoint graft after its parent dies.
  const net::NodeId victim = PickVictim(harness, 2, SIZE_MAX, 0);
  ASSERT_NE(victim, net::kBroadcastId);
  harness.network.channel().FailNode(
      harness.protocol.builder(victim).parent());

  harness.simulator.RunUntil(harness.protocol.Duration());
  const agg::IpdaStats& stats = harness.protocol.Finish();

  bool found = false;
  for (const agg::GraftRecord& graft : harness.protocol.graft_log()) {
    if (graft.node != victim) continue;
    found = true;
    EXPECT_FALSE(graft.degraded);
    EXPECT_EQ(graft.color, harness.ColorOf(victim));
  }
  EXPECT_TRUE(found) << "victim " << victim << " never repaired";
  EXPECT_GT(stats.grafts, 0u);
}

TEST(IpdaChurn, DegradedFallbackOnlyWhenNoDisjointGraftExists) {
  ChurnHarness harness(300, 23, RepairConfig());
  fault::ChurnPlan plan;
  plan.joins.push_back({299, sim::SecondsF(4.2)});
  harness.ArmChurn(plan);
  harness.protocol.Start();
  harness.simulator.RunUntil(agg::IpdaReportStart(harness.protocol.config()));

  // An aggregator with few same-color escape routes but at least one
  // lower-hop aggregator of the *other* color. Kill every same-color
  // candidate (parent included): only the cross-tree relay remains.
  const net::NodeId victim = PickVictim(harness, 1, 3, 1);
  ASSERT_NE(victim, net::kBroadcastId);
  const agg::TreeBuilder& builder = harness.protocol.builder(victim);
  const agg::TreeColor color = harness.ColorOf(victim);
  std::vector<net::NodeId> killed;
  for (const auto& cand : builder.AggregatorNeighborInfos(color)) {
    if (cand.hop < builder.hop()) {
      harness.network.channel().FailNode(cand.id);
      killed.push_back(cand.id);
    }
  }
  ASSERT_FALSE(killed.empty());

  harness.simulator.RunUntil(harness.protocol.Duration());
  const agg::IpdaStats& stats = harness.protocol.Finish();

  // The victim's repairs walk the dead same-color candidates (each
  // discovered dead via ARQ) and must end in the degraded cross-tree
  // relay — never a graft onto a live same-color parent, because none
  // is left.
  bool saw_degraded = false;
  for (const agg::GraftRecord& graft : harness.protocol.graft_log()) {
    if (graft.node != victim) continue;
    if (!graft.degraded) {
      EXPECT_TRUE(std::find(killed.begin(), killed.end(),
                            graft.new_parent) != killed.end())
          << "clean graft onto live " << graft.new_parent
          << " despite all disjoint candidates dead";
    } else {
      saw_degraded = true;
      EXPECT_EQ(graft.color, color);
      // The relay target is an aggregator of the other tree.
      EXPECT_NE(harness.ColorOf(graft.new_parent), color);
    }
  }
  EXPECT_TRUE(saw_degraded) << "victim " << victim
                            << " never took the degraded fallback";
  EXPECT_GT(stats.disjoint_violations, 0u);
  EXPECT_TRUE(stats.degraded);
}

TEST(IpdaChurn, CompoundParentCrashAndLinkLossStaysDeterministic) {
  // S3: parent crash + link loss during degraded finalization, twice;
  // the protocol must survive and reproduce bit-identical stats.
  auto run_once = [](uint64_t seed) {
    ChurnHarness harness(300, seed, RepairConfig());
    fault::FaultPlan faults;
    faults.link.loss_rate = 0.15;
    harness.ArmFaults(faults);
    fault::ChurnPlan plan;
    plan.mobility.fraction = 0.2;
    plan.mobility.speed_mps = 10.0;
    harness.ArmChurn(plan);
    harness.protocol.Start();
    harness.simulator.RunUntil(
        agg::IpdaReportStart(harness.protocol.config()));
    const net::NodeId victim = PickVictim(harness, 1, SIZE_MAX, 0);
    EXPECT_NE(victim, net::kBroadcastId);
    if (victim != net::kBroadcastId) {
      harness.network.channel().FailNode(
          harness.protocol.builder(victim).parent());
    }
    harness.simulator.RunUntil(harness.protocol.Duration());
    return harness.protocol.Finish();
  };
  const agg::IpdaStats a = run_once(29);
  const agg::IpdaStats b = run_once(29);
  // The round completed under compound failure...
  EXPECT_GT(a.participants, 0u);
  EXPECT_GE(a.grafts + a.disjoint_violations + a.orphaned_partials, 1u);
  // ...and is exactly reproducible.
  EXPECT_EQ(a.grafts, b.grafts);
  EXPECT_EQ(a.disjoint_violations, b.disjoint_violations);
  EXPECT_EQ(a.backoff_retries, b.backoff_retries);
  EXPECT_EQ(a.orphaned_partials, b.orphaned_partials);
  EXPECT_EQ(a.churn_control_msgs, b.churn_control_msgs);
  EXPECT_EQ(a.decision.accepted, b.decision.accepted);
  EXPECT_DOUBLE_EQ(a.decision.max_component_diff,
                   b.decision.max_component_diff);
}

// --- S3: churn sweep kill/resume byte-identity ------------------------

exp::ResilientOptions ChurnSweepOptions(const std::string& journal) {
  exp::ResilientOptions options;
  options.sweep_seed = 77;
  options.journal_path = journal;
  options.experiment = "ipda_churn_test";
  options.config_digest = "ipda_churn_test|nodes=60";
  options.drain_on_signal = false;
  return options;
}

util::Result<std::string> ChurnBody(const exp::AttemptContext& ctx) {
  agg::RunConfig config;
  config.deployment.node_count = 60;
  config.deployment.area = net::Area{200, 200};
  config.seed = ctx.seed;
  config.control.cancel = ctx.cancel;
  config.control.event_budget = ctx.event_budget;
  config.churn.churn.rate_hz = 1.0;
  config.churn.churn.downtime = sim::SecondsF(0.5);
  config.churn.mobility.fraction = 0.25;
  config.churn.mobility.speed_mps = 10.0;
  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);
  IPDA_ASSIGN_OR_RETURN(
      const agg::IpdaRunResult run,
      agg::RunIpda(config, *function, *field, RepairConfig()));
  char buf[128];
  std::snprintf(buf, sizeof(buf), "%.17g,%zu,%zu,%zu", run.accuracy,
                run.stats.grafts, run.stats.joins_absorbed,
                run.stats.churn_control_msgs);
  return std::string(buf);
}

std::vector<std::string> Payloads(const exp::ResilientReport& report) {
  std::vector<std::string> out;
  for (const exp::RunStatus& slot : report.runs) out.push_back(slot.payload);
  return out;
}

TEST(ChurnSweepResume, InterruptedDrainResumesByteIdentical) {
  util::ResetDrainForTest();
  const std::string path =
      ::testing::TempDir() + "ipda_churn_sweep_journal.jsonl";
  const std::vector<std::string> labels = {"churn=1.0", "churn=1.0+mob"};
  constexpr size_t kRuns = 3;
  exp::Engine engine(1);  // Single worker: the drain point is deterministic.

  auto clean = exp::RunResilientSweep(engine, labels, kRuns,
                                      ChurnSweepOptions(""), ChurnBody);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  ASSERT_EQ(clean->runs.size(), labels.size() * kRuns);

  // Interrupt mid-drain after the second completed run.
  exp::ResilientOptions interrupted = ChurnSweepOptions(path);
  interrupted.drain_on_signal = true;
  size_t completed = 0;
  auto draining_body =
      [&](const exp::AttemptContext& ctx) -> util::Result<std::string> {
    auto result = ChurnBody(ctx);
    if (++completed == 2) util::RequestDrain();
    return result;
  };
  auto partial = exp::RunResilientSweep(engine, labels, kRuns, interrupted,
                                        draining_body);
  ASSERT_TRUE(partial.ok());
  EXPECT_TRUE(partial->drained);
  EXPECT_EQ(partial->executed, 2u);
  util::ResetDrainForTest();

  exp::ResilientOptions resume = ChurnSweepOptions("");
  resume.resume_path = path;
  auto resumed = exp::RunResilientSweep(engine, labels, kRuns, resume,
                                        ChurnBody);
  ASSERT_TRUE(resumed.ok());
  EXPECT_EQ(resumed->replayed, 2u);
  EXPECT_EQ(Payloads(*resumed), Payloads(*clean));
}

}  // namespace
}  // namespace ipda
