#include "crypto/keystore.h"

#include <gtest/gtest.h>

#include "crypto/pairwise.h"
#include "util/bytes.h"

namespace ipda::crypto {
namespace {

TEST(KeyStore, SetGetHas) {
  KeyStore store;
  EXPECT_FALSE(store.HasLinkKey(5));
  EXPECT_FALSE(store.GetLinkKey(5).ok());
  store.SetLinkKey(5, Key128::FromSeed(1));
  EXPECT_TRUE(store.HasLinkKey(5));
  EXPECT_EQ(*store.GetLinkKey(5), Key128::FromSeed(1));
  EXPECT_EQ(store.link_count(), 1u);
}

TEST(KeyStore, PeersSorted) {
  KeyStore store;
  store.SetLinkKey(9, Key128::FromSeed(1));
  store.SetLinkKey(2, Key128::FromSeed(2));
  store.SetLinkKey(5, Key128::FromSeed(3));
  EXPECT_EQ(store.Peers(), (std::vector<PeerId>{2, 5, 9}));
}

TEST(KeyStore, OverwriteReplacesKey) {
  KeyStore store;
  store.SetLinkKey(1, Key128::FromSeed(1));
  store.SetLinkKey(1, Key128::FromSeed(2));
  EXPECT_EQ(*store.GetLinkKey(1), Key128::FromSeed(2));
  EXPECT_EQ(store.link_count(), 1u);
}

class LinkCryptoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const Key128 shared = Key128::FromSeed(42);
    alice_.keystore().SetLinkKey(2, shared);
    bob_.keystore().SetLinkKey(1, shared);
  }

  LinkCrypto alice_{1};
  LinkCrypto bob_{2};
};

TEST_F(LinkCryptoTest, SealOpenRoundTrip) {
  const util::Bytes plaintext{1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto wire = alice_.Seal(2, plaintext);
  ASSERT_TRUE(wire.ok());
  EXPECT_EQ(wire->size(), plaintext.size() + kSealOverheadBytes);
  auto opened = bob_.Open(1, *wire);
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(*opened, plaintext);
}

TEST_F(LinkCryptoTest, CiphertextDiffersFromPlaintext) {
  const util::Bytes plaintext(64, 0x00);
  auto wire = alice_.Seal(2, plaintext);
  ASSERT_TRUE(wire.ok());
  const util::Bytes body(wire->begin() + kSealOverheadBytes, wire->end());
  EXPECT_NE(body, plaintext);
}

TEST_F(LinkCryptoTest, RepeatedSealsUseFreshNonces) {
  const util::Bytes plaintext(32, 0xaa);
  auto w1 = alice_.Seal(2, plaintext);
  auto w2 = alice_.Seal(2, plaintext);
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  EXPECT_NE(*w1, *w2);  // Same plaintext, different wire bytes.
  EXPECT_EQ(*bob_.Open(1, *w1), plaintext);
  EXPECT_EQ(*bob_.Open(1, *w2), plaintext);
}

TEST_F(LinkCryptoTest, BothDirectionsIndependent) {
  const util::Bytes a_to_b{1, 1, 1};
  const util::Bytes b_to_a{2, 2, 2};
  auto w1 = alice_.Seal(2, a_to_b);
  auto w2 = bob_.Seal(1, b_to_a);
  EXPECT_EQ(*bob_.Open(1, *w1), a_to_b);
  EXPECT_EQ(*alice_.Open(2, *w2), b_to_a);
}

TEST_F(LinkCryptoTest, SealToUnknownPeerFails) {
  auto wire = alice_.Seal(99, util::Bytes{1});
  EXPECT_FALSE(wire.ok());
  EXPECT_EQ(wire.status().code(), util::StatusCode::kNotFound);
}

TEST_F(LinkCryptoTest, OpenFromUnknownPeerFails) {
  EXPECT_FALSE(bob_.Open(99, util::Bytes(16, 0)).ok());
}

TEST_F(LinkCryptoTest, WrongKeyYieldsGarbage) {
  LinkCrypto eve(3);
  eve.keystore().SetLinkKey(1, Key128::FromSeed(1234));
  const util::Bytes plaintext{9, 8, 7, 6};
  auto wire = alice_.Seal(2, plaintext);
  auto opened = eve.Open(1, *wire);
  ASSERT_TRUE(opened.ok());  // Decryption "succeeds"...
  EXPECT_NE(*opened, plaintext);  // ...but produces garbage.
}

TEST_F(LinkCryptoTest, TruncatedWireFails) {
  auto wire = alice_.Seal(2, util::Bytes{1, 2, 3});
  util::Bytes truncated(wire->begin(), wire->begin() + 4);
  EXPECT_FALSE(bob_.Open(1, truncated).ok());
}

TEST(KeyStore, CompileDensifiesAndPreservesLookups) {
  KeyStore store;
  store.SetLinkKey(9, Key128::FromSeed(1));
  store.SetLinkKey(2, Key128::FromSeed(2));
  store.SetLinkKey(5, Key128::FromSeed(3));
  EXPECT_EQ(store.dense_count(), 0u);
  store.Compile();
  EXPECT_EQ(store.dense_count(), 3u);
  EXPECT_EQ(store.link_count(), 3u);
  EXPECT_EQ(*store.GetLinkKey(2), Key128::FromSeed(2));
  EXPECT_EQ(*store.GetLinkKey(5), Key128::FromSeed(3));
  EXPECT_EQ(*store.GetLinkKey(9), Key128::FromSeed(1));
  EXPECT_EQ(store.Peers(), (std::vector<PeerId>{2, 5, 9}));
  // Slots resolve in peer order; unknown peers miss.
  EXPECT_EQ(store.FindSlot(2), 0);
  EXPECT_EQ(store.FindSlot(5), 1);
  EXPECT_EQ(store.FindSlot(9), 2);
  EXPECT_EQ(store.FindSlot(7), -1);
}

TEST(KeyStore, KeysAddedAfterCompileStillWork) {
  KeyStore store;
  store.SetLinkKey(1, Key128::FromSeed(1));
  store.Compile();
  // Late adds land in the dynamic overflow until the next Compile().
  store.SetLinkKey(8, Key128::FromSeed(8));
  EXPECT_TRUE(store.HasLinkKey(8));
  EXPECT_EQ(*store.GetLinkKey(8), Key128::FromSeed(8));
  EXPECT_EQ(store.FindSlot(8), -1);
  EXPECT_EQ(store.link_count(), 2u);
  store.Compile();
  EXPECT_EQ(store.FindSlot(8), 1);
  EXPECT_EQ(*store.GetLinkKey(8), Key128::FromSeed(8));
}

TEST(KeyStore, OverwriteAfterCompileUpdatesSlotKey) {
  KeyStore store;
  store.SetLinkKey(4, Key128::FromSeed(1));
  store.Compile();
  store.SetLinkKey(4, Key128::FromSeed(2));  // Hits the dense slot.
  EXPECT_EQ(*store.GetLinkKey(4), Key128::FromSeed(2));
  EXPECT_EQ(store.link_count(), 1u);
}

TEST_F(LinkCryptoTest, CompiledWireBytesMatchUncompiled) {
  // Compile() must be a pure layout change: a compiled sender produces
  // the exact wire bytes of an uncompiled one with the same counters,
  // and a compiled receiver opens either.
  LinkCrypto compiled(1);
  compiled.keystore().SetLinkKey(2, Key128::FromSeed(42));
  compiled.Compile();
  bob_.Compile();
  for (int round = 0; round < 4; ++round) {
    const util::Bytes plaintext(7 + 9 * round,
                                static_cast<uint8_t>(0x30 + round));
    auto plain_wire = alice_.Seal(2, plaintext);
    auto compiled_wire = compiled.Seal(2, plaintext);
    ASSERT_TRUE(plain_wire.ok());
    ASSERT_TRUE(compiled_wire.ok());
    EXPECT_EQ(*plain_wire, *compiled_wire) << "round " << round;
    EXPECT_EQ(*bob_.Open(1, *compiled_wire), plaintext);
  }
}

TEST_F(LinkCryptoTest, CompileMidStreamKeepsNoncesFresh) {
  // Counters issued before Compile() must carry into the dense layout:
  // the wire prefix (nonce) never repeats across the boundary.
  const util::Bytes plaintext(16, 0x77);
  auto before = alice_.Seal(2, plaintext);
  ASSERT_TRUE(before.ok());
  alice_.Compile();
  auto after = alice_.Seal(2, plaintext);
  ASSERT_TRUE(after.ok());
  EXPECT_NE(util::Bytes(before->begin(),
                        before->begin() + kSealOverheadBytes),
            util::Bytes(after->begin(), after->begin() + kSealOverheadBytes));
  EXPECT_EQ(*bob_.Open(1, *before), plaintext);
  EXPECT_EQ(*bob_.Open(1, *after), plaintext);
}

TEST_F(LinkCryptoTest, RecompileAfterNewPeerShiftsSlotsSafely) {
  // Adding a lower-id peer shifts existing slot indices on recompile;
  // in-flight counters must follow their peer, not their old slot.
  alice_.Compile();
  const util::Bytes plaintext(12, 0x11);
  auto w1 = alice_.Seal(2, plaintext);  // Dense slot 0 counter -> 1.
  alice_.keystore().SetLinkKey(0, Key128::FromSeed(7));
  alice_.Compile();  // Peer 2 now occupies slot 1.
  auto w2 = alice_.Seal(2, plaintext);
  ASSERT_TRUE(w1.ok());
  ASSERT_TRUE(w2.ok());
  EXPECT_NE(util::Bytes(w1->begin(), w1->begin() + kSealOverheadBytes),
            util::Bytes(w2->begin(), w2->begin() + kSealOverheadBytes));
  EXPECT_EQ(*bob_.Open(1, *w1), plaintext);
  EXPECT_EQ(*bob_.Open(1, *w2), plaintext);
}

TEST(PairwiseKeyScheme, SymmetricInEndpoints) {
  PairwiseKeyScheme scheme(777);
  EXPECT_EQ(scheme.LinkKey(3, 9), scheme.LinkKey(9, 3));
  EXPECT_FALSE(scheme.LinkKey(3, 9) == scheme.LinkKey(3, 8));
}

TEST(PairwiseKeyScheme, DifferentMastersDifferentKeys) {
  EXPECT_FALSE(PairwiseKeyScheme(1).LinkKey(1, 2) ==
               PairwiseKeyScheme(2).LinkKey(1, 2));
}

TEST(PairwiseKeyScheme, ProvisionInstallsBothDirections) {
  PairwiseKeyScheme scheme(10);
  std::vector<LinkCrypto> cryptos;
  for (PeerId id = 0; id < 4; ++id) cryptos.emplace_back(id);
  scheme.Provision({{0, 1}, {1, 2}, {2, 3}}, cryptos);
  EXPECT_TRUE(cryptos[0].keystore().HasLinkKey(1));
  EXPECT_TRUE(cryptos[1].keystore().HasLinkKey(0));
  EXPECT_TRUE(cryptos[1].keystore().HasLinkKey(2));
  EXPECT_FALSE(cryptos[0].keystore().HasLinkKey(2));
  // End-to-end over a provisioned link.
  auto wire = cryptos[1].Seal(2, util::Bytes{42});
  EXPECT_EQ(*cryptos[2].Open(1, *wire), util::Bytes{42});
}

}  // namespace
}  // namespace ipda::crypto
