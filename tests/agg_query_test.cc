#include "agg/query.h"

#include <gtest/gtest.h>

#include "agg/reading.h"
#include "agg/runner.h"

namespace ipda::agg {
namespace {

TEST(Query, CodecRoundTripsAllKinds) {
  const Query queries[] = {
      CountQuery(3),
      SumQuery(9),
      AverageQuery(0),
      VarianceQuery(65535),
      MaxQuery(16.0, 1),
      MinQuery(8.0, 2),
      HistogramQuery(-5.0, 45.0, 12, 4),
  };
  for (const Query& query : queries) {
    const util::Bytes wire = EncodeQuery(query);
    EXPECT_EQ(wire.size(), kQueryWireBytes);
    auto decoded = DecodeQuery(wire);
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(*decoded, query);
  }
}

TEST(Query, DecodeRejectsBadKindAndTruncation) {
  util::Bytes wire = EncodeQuery(CountQuery());
  wire[0] = 0;
  EXPECT_FALSE(DecodeQuery(wire).ok());
  wire[0] = 8;
  EXPECT_FALSE(DecodeQuery(wire).ok());
  util::Bytes good = EncodeQuery(SumQuery());
  good.pop_back();
  EXPECT_FALSE(DecodeQuery(good).ok());
}

TEST(Query, IntoComposesWithEnclosingStream) {
  // HELLO embeds the query mid-message via the Into/From pair; the
  // composed bytes must match the standalone codec exactly, and the
  // positional reader must stop on the query's last byte.
  const Query query = HistogramQuery(-5.0, 45.0, 12, 4);
  util::ByteWriter writer;
  writer.WriteU32(0xFEEDFACE);
  EncodeQueryInto(query, writer);
  writer.WriteU8(0x42);
  const util::Bytes wire = writer.bytes();
  ASSERT_EQ(wire.size(), 4u + kQueryWireBytes + 1u);
  EXPECT_EQ(util::Bytes(wire.begin() + 4, wire.end() - 1),
            EncodeQuery(query));

  util::ByteReader reader(wire);
  ASSERT_TRUE(reader.ReadU32().ok());
  auto decoded = DecodeQueryFrom(reader);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(*decoded, query);
  EXPECT_EQ(reader.remaining(), 1u);
}

TEST(Query, DisseminationSurvivesFaultInjection) {
  // A query-driven round under the PR 1 fault plan: the injected-loss
  // counters must record real interference, and the round must still
  // finalize with the query everyone received over lossy links.
  RunConfig config;
  config.deployment.node_count = 200;
  config.deployment.area = net::Area{300.0, 300.0};
  config.seed = 611;
  auto plan = fault::ParseFaultSpec("loss=0.05,dup=0.02");
  ASSERT_TRUE(plan.ok());
  config.faults = *plan;
  auto function = MakeCount();
  auto field = MakeConstantField(1.0);
  IpdaConfig ipda;
  ipda.slice_range = 1.0;
  auto run = RunIpda(config, *function, *field, ipda);
  ASSERT_TRUE(run.ok());
  EXPECT_GT(run->traffic.injected_drops, 0u);
  EXPECT_GT(run->traffic.injected_dup, 0u);
  EXPECT_GT(run->stats.participants, 0u);
  // Loss without crashes can degrade the round but never corrupt it:
  // both trees' totals still agree within Th whenever accepted.
  if (run->stats.decision.accepted) {
    EXPECT_LE(run->stats.decision.max_component_diff,
              ipda.threshold + 1e-9);
  }
}

TEST(Query, FunctionForQueryMatchesFactories) {
  EXPECT_EQ((*FunctionForQuery(CountQuery()))->name(), "COUNT");
  EXPECT_EQ((*FunctionForQuery(SumQuery()))->name(), "SUM");
  EXPECT_EQ((*FunctionForQuery(AverageQuery()))->arity(), 2u);
  EXPECT_EQ((*FunctionForQuery(VarianceQuery()))->arity(), 3u);
  EXPECT_EQ((*FunctionForQuery(MaxQuery()))->name(), "MAX~");
  EXPECT_EQ((*FunctionForQuery(MinQuery()))->name(), "MIN~");
  EXPECT_EQ((*FunctionForQuery(HistogramQuery(0, 1, 6)))->arity(), 6u);
}

TEST(Query, FunctionForQueryValidatesParams) {
  EXPECT_FALSE(FunctionForQuery(HistogramQuery(5.0, 5.0, 4)).ok());
  EXPECT_FALSE(FunctionForQuery(HistogramQuery(0.0, 1.0, 0)).ok());
  Query bad_max = MaxQuery();
  bad_max.param_a = -1.0;
  EXPECT_FALSE(FunctionForQuery(bad_max).ok());
}

TEST(Query, IpdaDisseminationDrivesContributions) {
  RunConfig config;
  config.deployment.node_count = 350;
  config.seed = 606;
  auto topology = BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  sim::Simulator simulator(config.seed);
  net::Network network(&simulator, std::move(*topology));
  auto function = MakeCount();
  IpdaConfig ipda;
  ipda.slice_range = 1.0;
  IpdaProtocol protocol(&network, function.get(), ipda);
  protocol.SetQuery(CountQuery(7));
  auto field = MakeConstantField(1.0);
  protocol.SetReadings(field->Sample(network.topology()));
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  const auto& stats = protocol.Finish();
  // Everyone who participated must have received the query over the air.
  EXPECT_GT(stats.participants, 280u);
  EXPECT_TRUE(stats.decision.accepted);
  EXPECT_NEAR(stats.decision.Agreed()[0],
              static_cast<double>(stats.participants), 1.0);
}

TEST(Query, TagDisseminationMatchesInjectedFunction) {
  RunConfig config;
  config.deployment.node_count = 300;
  config.seed = 607;
  auto topology = BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  sim::Simulator simulator(config.seed);
  net::Network network(&simulator, std::move(*topology));
  auto function = MakeSum();
  TagProtocol protocol(&network, function.get());
  protocol.SetQuery(SumQuery(1));
  auto field = MakeUniformField(5.0, 10.0, 3);
  const auto readings = field->Sample(network.topology());
  protocol.SetReadings(readings);
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  double truth = 0.0;
  for (size_t i = 1; i < readings.size(); ++i) truth += readings[i];
  EXPECT_GT(protocol.FinalizedResult(), 0.85 * truth);
  EXPECT_LE(protocol.FinalizedResult(), truth + 1e-6);
}

TEST(Query, TagMismatchedArityAborts) {
  RunConfig config;
  config.deployment.node_count = 100;
  config.seed = 609;
  auto topology = BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  sim::Simulator simulator(config.seed);
  net::Network network(&simulator, std::move(*topology));
  auto function = MakeVariance();  // Arity 3.
  TagProtocol protocol(&network, function.get());
  EXPECT_DEATH(protocol.SetQuery(CountQuery()), "CHECK failed");
}

TEST(Query, HistogramQueryEndToEnd) {
  RunConfig config;
  config.deployment.node_count = 350;
  config.seed = 610;
  auto topology = BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  sim::Simulator simulator(config.seed);
  net::Network network(&simulator, std::move(*topology));
  const Query query = HistogramQuery(0.0, 40.0, 4, 9);
  auto resolved = FunctionForQuery(query);
  ASSERT_TRUE(resolved.ok());
  auto function = std::move(*resolved);
  IpdaConfig ipda;
  ipda.slice_range = 1.0;
  IpdaProtocol protocol(&network, function.get(), ipda);
  protocol.SetQuery(query);
  auto field = MakeUniformField(0.0, 40.0, 55);
  protocol.SetReadings(field->Sample(network.topology()));
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  const auto& stats = protocol.Finish();
  ASSERT_TRUE(stats.decision.accepted);
  const Vector histogram = stats.decision.Agreed();
  double total = 0.0;
  for (double bucket : histogram) total += bucket;
  EXPECT_NEAR(total, static_cast<double>(stats.participants), 1e-6);
}

TEST(Query, MismatchedArityAborts) {
  RunConfig config;
  config.deployment.node_count = 100;
  config.seed = 608;
  auto topology = BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  sim::Simulator simulator(config.seed);
  net::Network network(&simulator, std::move(*topology));
  auto function = MakeCount();  // Arity 1.
  IpdaProtocol protocol(&network, function.get());
  EXPECT_DEATH(protocol.SetQuery(AverageQuery()), "CHECK failed");
}

}  // namespace
}  // namespace ipda::agg
