// Property tests for the arena/free-list pools (util/pool.h) backing
// Packet and scheduler-event allocation. The randomized interleavings run
// under the IPDA_SANITIZE=address CI job, so slot reuse bugs (overlap,
// use-after-recycle, leaked live objects) surface as ASan reports even
// when the accounting assertions happen to pass.

#include "util/pool.h"

#include <cstdint>
#include <cstring>
#include <memory>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "util/random.h"

namespace ipda::util {
namespace {

struct Tracked {
  explicit Tracked(int* counter, uint64_t tag = 0)
      : counter(counter), tag(tag) {
    ++*counter;
  }
  ~Tracked() { --*counter; }
  int* counter;
  uint64_t tag;
  uint64_t payload[4] = {};  // Big enough to catch slot overlap.
};

TEST(ObjectPool, RoundTripAndAccounting) {
  ObjectPool<Tracked> pool(4);
  int alive = 0;
  Tracked* a = pool.New(&alive, 1);
  Tracked* b = pool.New(&alive, 2);
  EXPECT_EQ(alive, 2);
  EXPECT_EQ(pool.live(), 2u);
  EXPECT_EQ(a->tag, 1u);
  EXPECT_EQ(b->tag, 2u);
  pool.Delete(a);
  EXPECT_EQ(alive, 1);
  EXPECT_EQ(pool.live(), 1u);
  pool.Delete(b);
  EXPECT_EQ(alive, 0);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(ObjectPool, RecyclesSlotsInsteadOfGrowing) {
  ObjectPool<Tracked> pool(8);
  int alive = 0;
  std::vector<Tracked*> objects;
  for (int i = 0; i < 8; ++i) objects.push_back(pool.New(&alive));
  const size_t capacity = pool.capacity();
  for (Tracked* t : objects) pool.Delete(t);
  // Churning through as many again must reuse the freed slots.
  for (int round = 0; round < 10; ++round) {
    Tracked* t = pool.New(&alive);
    pool.Delete(t);
  }
  EXPECT_EQ(pool.capacity(), capacity);
  EXPECT_EQ(alive, 0);
}

TEST(ObjectPool, DestroysObjectsStillLiveAtTeardown) {
  // A scheduler torn down with pending events leaks neither memory nor
  // destructors; the pool sweeps surviving objects.
  int alive = 0;
  {
    ObjectPool<Tracked> pool;
    pool.New(&alive);
    pool.New(&alive);
    EXPECT_EQ(alive, 2);
  }
  EXPECT_EQ(alive, 0);
}

TEST(ObjectPool, RandomizedChurnKeepsObjectsDisjoint) {
  // Interleave allocs and frees at random; every live object must keep
  // its distinct tag (catches overlapping or prematurely recycled slots,
  // and ASan sees any out-of-slot write).
  ObjectPool<Tracked> pool(2);
  Rng rng(0xB0071);
  int alive = 0;
  std::vector<Tracked*> live;
  uint64_t next_tag = 1;
  for (int step = 0; step < 5000; ++step) {
    if (live.empty() || rng.Bernoulli(0.55)) {
      Tracked* t = pool.New(&alive, next_tag++);
      t->payload[0] = t->tag;
      t->payload[3] = ~t->tag;
      live.push_back(t);
    } else {
      const size_t victim = rng.UniformUint64(live.size());
      Tracked* t = live[victim];
      ASSERT_EQ(t->payload[0], t->tag);
      ASSERT_EQ(t->payload[3], ~t->tag);
      pool.Delete(t);
      live[victim] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(pool.live(), live.size());
    ASSERT_EQ(alive, static_cast<int>(live.size()));
  }
  std::set<uint64_t> tags;
  for (Tracked* t : live) {
    EXPECT_EQ(t->payload[0], t->tag);
    EXPECT_TRUE(tags.insert(t->tag).second) << "duplicate live tag";
    pool.Delete(t);
  }
  EXPECT_EQ(pool.live(), 0u);
}

TEST(ObjectPoolDeathTest, DoubleFreeIsACheckFailure) {
  ObjectPool<Tracked> pool;
  int alive = 0;
  Tracked* t = pool.New(&alive);
  pool.Delete(t);
  EXPECT_DEATH(pool.Delete(t), "CHECK failed");
}

TEST(BytePool, SizeClassRoundTrip) {
  BytePool pool;
  for (size_t bytes : {1u, 31u, 32u, 33u, 64u, 100u, 512u, 1024u}) {
    void* p = pool.Allocate(bytes);
    ASSERT_NE(p, nullptr);
    std::memset(p, 0xAB, bytes);  // ASan verifies the block is real.
    EXPECT_EQ(pool.live_blocks(), 1u);
    pool.Deallocate(p, bytes);
    EXPECT_EQ(pool.live_blocks(), 0u);
  }
}

TEST(BytePool, OversizeFallsThroughToOperatorNew) {
  BytePool pool;
  void* p = pool.Allocate(4096);
  ASSERT_NE(p, nullptr);
  std::memset(p, 0xCD, 4096);
  EXPECT_EQ(pool.live_blocks(), 1u);
  pool.Deallocate(p, 4096);
  EXPECT_EQ(pool.live_blocks(), 0u);
}

TEST(BytePool, RandomizedMixedClassChurn) {
  BytePool pool;
  Rng rng(0xB0072);
  struct Block {
    unsigned char* p;
    size_t bytes;
    unsigned char fill;
  };
  std::vector<Block> live;
  for (int step = 0; step < 5000; ++step) {
    if (live.empty() || rng.Bernoulli(0.55)) {
      const size_t bytes = 1 + rng.UniformUint64(2048);
      auto* p = static_cast<unsigned char*>(pool.Allocate(bytes));
      const auto fill = static_cast<unsigned char>(step);
      std::memset(p, fill, bytes);
      live.push_back({p, bytes, fill});
    } else {
      const size_t victim = rng.UniformUint64(live.size());
      Block block = live[victim];
      // The block's bytes must be untouched by other allocations.
      for (size_t i = 0; i < block.bytes; ++i) {
        ASSERT_EQ(block.p[i], block.fill) << "clobbered at " << i;
      }
      pool.Deallocate(block.p, block.bytes);
      live[victim] = live.back();
      live.pop_back();
    }
    ASSERT_EQ(pool.live_blocks(), live.size());
  }
  for (const Block& block : live) pool.Deallocate(block.p, block.bytes);
  EXPECT_EQ(pool.live_blocks(), 0u);
}

TEST(PoolAllocator, WorksWithStdContainersAndSharedPtr) {
  BytePool pool;
  {
    std::vector<uint64_t, PoolAllocator<uint64_t>> v{
        PoolAllocator<uint64_t>(&pool)};
    for (uint64_t i = 0; i < 100; ++i) v.push_back(i);
    for (uint64_t i = 0; i < 100; ++i) EXPECT_EQ(v[i], i);
    EXPECT_GT(pool.live_blocks(), 0u);
  }
  EXPECT_EQ(pool.live_blocks(), 0u);
  int alive = 0;
  {
    auto sp = std::allocate_shared<Tracked>(
        PoolAllocator<Tracked>(&pool), &alive, uint64_t{7});
    EXPECT_EQ(sp->tag, 7u);
    EXPECT_EQ(alive, 1);
    EXPECT_GT(pool.live_blocks(), 0u);
  }
  EXPECT_EQ(alive, 0);
  EXPECT_EQ(pool.live_blocks(), 0u);
}

}  // namespace
}  // namespace ipda::util
