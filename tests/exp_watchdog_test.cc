// Watchdog: wall-clock deadlines that cancel hung runs cooperatively.

#include "exp/watchdog.h"

#include <chrono>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "sim/cancel.h"
#include "sim/scheduler.h"
#include "sim/time.h"

namespace ipda::exp {
namespace {

// Spin (with sleeps) until the predicate holds or ~5s elapse. Watchdog
// timing is inherently wall-clock; keep assertions latency-tolerant.
template <typename Pred>
bool EventuallyTrue(Pred pred) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (std::chrono::steady_clock::now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return pred();
}

TEST(Watchdog, ExpiredDeadlineCancelsWithDeadlineReason) {
  Watchdog dog;
  sim::CancelToken token;
  dog.Watch(&token, 0.005);
  ASSERT_TRUE(EventuallyTrue([&] { return token.cancelled(); }));
  EXPECT_EQ(token.reason(), sim::CancelReason::kDeadline);
  EXPECT_TRUE(EventuallyTrue([&] { return dog.trips() == 1; }));
}

TEST(Watchdog, ReleasePreventsTrip) {
  Watchdog dog;
  sim::CancelToken token;
  const uint64_t id = dog.Watch(&token, 0.02);
  dog.Release(id);
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_FALSE(token.cancelled());
  EXPECT_EQ(dog.trips(), 0u);
}

TEST(Watchdog, LeaseReleasesOnScopeExit) {
  Watchdog dog;
  sim::CancelToken token;
  {
    WatchdogLease lease(dog, &token, 0.02);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  EXPECT_FALSE(token.cancelled());
}

TEST(Watchdog, ManyConcurrentWatchesTripIndependently) {
  Watchdog dog;
  constexpr size_t kCount = 16;
  std::vector<sim::CancelToken> doomed(kCount);
  std::vector<sim::CancelToken> safe(kCount);
  std::vector<uint64_t> safe_ids;
  for (size_t i = 0; i < kCount; ++i) {
    dog.Watch(&doomed[i], 0.001 + 0.001 * static_cast<double>(i % 4));
    safe_ids.push_back(dog.Watch(&safe[i], 30.0));
  }
  ASSERT_TRUE(EventuallyTrue([&] {
    for (const auto& token : doomed) {
      if (!token.cancelled()) return false;
    }
    return true;
  }));
  for (const auto& token : safe) EXPECT_FALSE(token.cancelled());
  for (uint64_t id : safe_ids) dog.Release(id);
  EXPECT_EQ(dog.trips(), kCount);
}

TEST(Watchdog, ConvertsHungSchedulerRunIntoReturn) {
  // The acceptance-criteria fixture: a run whose event loop never
  // drains because every event reschedules itself. The watchdog's
  // cooperative cancel is the only thing that ends it.
  Watchdog dog;
  sim::Scheduler sched;
  sim::CancelToken token;
  sched.SetCancelToken(&token);
  std::function<void()> forever = [&] {
    sched.ScheduleAfter(sim::Milliseconds(1), forever);
  };
  sched.ScheduleAt(sim::Milliseconds(1), forever);
  const uint64_t id = dog.Watch(&token, 0.05);
  sched.RunAll();  // Returns only because the watchdog fires.
  dog.Release(id);
  EXPECT_TRUE(sched.interrupted());
  EXPECT_EQ(sched.interrupt_cause(), sim::Scheduler::InterruptCause::kCancel);
  EXPECT_EQ(token.reason(), sim::CancelReason::kDeadline);
}

}  // namespace
}  // namespace ipda::exp
