// Multi-sink sharded aggregation correctness (DESIGN.md §13).
//
// Invariants locked down here:
//   1. The Voronoi partition is a real partition: every sensor lands in
//      exactly one shard.
//   2. The merged SUM/COUNT aggregate equals the single-sink ground truth
//      (exactly, in the loss-free case) — the shards add up to the whole.
//   3. A crashed sink degrades only its own shard: the merge proceeds and
//      the deficit is exactly the crashed shard's sensors.

#include "agg/shard/sharded.h"

#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "agg/aggregate_function.h"
#include "agg/reading.h"

namespace ipda::agg {
namespace {

RunConfig SmallConfig(uint64_t seed) {
  RunConfig config;
  config.deployment.node_count = 240;
  config.deployment.area = net::Area{400.0, 400.0};
  config.range = 60.0;
  config.seed = seed;
  return config;
}

IpdaConfig LossFreeIpda() {
  // Loss-free merge check wants every sensor to participate; retargeting
  // keeps isolated losses from muddying the exactness assertion.
  IpdaConfig ipda;
  ipda.retarget_slices = true;
  ipda.parent_failover = true;
  return ipda;
}

TEST(SinkPlacement, DeterministicSpreadOverArea) {
  const net::Area area{400.0, 400.0};
  const auto one = SinkPlacement(area, 1);
  ASSERT_EQ(one.size(), 1u);
  EXPECT_EQ(one[0], area.Center());

  const auto four = SinkPlacement(area, 4);
  ASSERT_EQ(four.size(), 4u);
  std::set<std::pair<double, double>> distinct;
  for (const net::Point2D& p : four) {
    EXPECT_TRUE(area.Contains(p));
    distinct.insert({p.x, p.y});
  }
  EXPECT_EQ(distinct.size(), 4u);  // No two sinks collide.
  // Same inputs, same placement (the digest/golden contract).
  EXPECT_EQ(SinkPlacement(area, 4), four);
}

TEST(PartitionBySink, EverySensorInExactlyOneShard) {
  RunConfig config = SmallConfig(3);
  auto topology = BuildRunTopology(config);
  ASSERT_TRUE(topology.ok());
  const auto sinks = SinkPlacement(config.deployment.area, 4);
  const auto assignment = PartitionBySink(*topology, sinks);
  ASSERT_EQ(assignment.size(), topology->node_count());
  size_t per_shard[4] = {0, 0, 0, 0};
  for (net::NodeId id = 1; id < topology->node_count(); ++id) {
    ASSERT_LT(assignment[id], 4u);
    per_shard[assignment[id]] += 1;
    // Voronoi: the assigned sink is (weakly) the nearest one.
    const double d =
        net::DistanceSquared(topology->position(id), sinks[assignment[id]]);
    for (size_t s = 0; s < sinks.size(); ++s) {
      EXPECT_LE(d, net::DistanceSquared(topology->position(id), sinks[s]));
    }
  }
  size_t total = 0;
  for (size_t c : per_shard) {
    EXPECT_GT(c, 0u);  // Centered grid over a uniform deployment: no
    total += c;        // shard starves.
  }
  EXPECT_EQ(total, topology->node_count() - 1);  // Partition, sink-less id 0.
}

TEST(RunShardedIpda, CountMergesExactlyAcrossSinkCounts) {
  const auto function = MakeCount();
  const auto field = MakeConstantField(1.0);
  for (size_t sinks : {1u, 2u, 4u}) {
    SCOPED_TRACE(::testing::Message() << "sinks=" << sinks);
    ShardedConfig sharded;
    sharded.sinks = sinks;
    auto run = RunShardedIpda(SmallConfig(7), *function, *field,
                              LossFreeIpda(), sharded);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    EXPECT_TRUE(run->decision.accepted);
    // COUNT truth: every sensor counts 1. The merged aggregate can lose
    // real data to radio effects and to the Voronoi boundary (border
    // sensors lose cross-shard neighbors), but the shards must cover the
    // whole sensor set: accuracy stays high and NEVER exceeds 1 — an
    // over-count would mean a sensor landed in two shards.
    EXPECT_EQ(run->true_acc[0],
              static_cast<double>(SmallConfig(7).deployment.node_count - 1));
    EXPECT_LE(run->accuracy, 1.0 + 1e-9);
    EXPECT_GT(run->accuracy, 0.7);
    EXPECT_EQ(run->shards.size(), sinks);
  }
}

TEST(RunShardedIpda, SumMatchesSingleSinkTruth) {
  const auto function = MakeSum();
  const auto field = MakeUniformField(15.0, 30.0, 7);
  ShardedConfig sharded;
  sharded.sinks = 4;
  auto run = RunShardedIpda(SmallConfig(7), *function, *field,
                            LossFreeIpda(), sharded);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  // The global truth is computed over the SAME deployment the single-sink
  // run would use (same seed → same positions → same readings).
  auto single = RunIpda(SmallConfig(7), *function, *field, LossFreeIpda());
  ASSERT_TRUE(single.ok());
  EXPECT_DOUBLE_EQ(run->true_acc[0], single->true_acc[0]);
  EXPECT_GT(run->accuracy, 0.9);
  EXPECT_LE(run->accuracy, 1.0 + 1e-9);
}

TEST(RunShardedIpda, ShardsPartitionTheSensorSet) {
  ShardedConfig sharded;
  sharded.sinks = 3;
  const auto function = MakeCount();
  const auto field = MakeConstantField(1.0);
  auto run = RunShardedIpda(SmallConfig(11), *function, *field,
                            LossFreeIpda(), sharded);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  size_t assigned = 0;
  for (const ShardOutcome& shard : run->shards) {
    assigned += shard.sensor_count;
  }
  EXPECT_EQ(assigned, SmallConfig(11).deployment.node_count - 1);
}

TEST(RunShardedIpda, CrashedSinkDegradesOnlyItsShard) {
  const auto function = MakeCount();
  const auto field = MakeConstantField(1.0);
  ShardedConfig healthy;
  healthy.sinks = 4;
  auto baseline = RunShardedIpda(SmallConfig(5), *function, *field,
                                 LossFreeIpda(), healthy);
  ASSERT_TRUE(baseline.ok());

  ShardedConfig crashed = healthy;
  crashed.crashed_sinks = {2};
  auto run = RunShardedIpda(SmallConfig(5), *function, *field,
                            LossFreeIpda(), crashed);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->degraded);
  EXPECT_TRUE(run->shards[2].crashed);
  EXPECT_EQ(run->shards[2].traffic.frames_sent, 0u);

  // Surviving shards are byte-for-byte the rounds they ran without the
  // crash (independent simulators), so the deficit is exactly shard 2.
  for (size_t s : {0u, 1u, 3u}) {
    EXPECT_EQ(run->shards[s].stats.decision.acc_red,
              baseline->shards[s].stats.decision.acc_red);
    EXPECT_EQ(run->shards[s].traffic.bytes_sent,
              baseline->shards[s].traffic.bytes_sent);
  }
  const double lost = baseline->decision.acc_red[0] -
                      baseline->shards[2].stats.decision.acc_red[0];
  EXPECT_DOUBLE_EQ(run->decision.acc_red[0], lost);
  // The merge still proceeds and the result stays meaningful.
  EXPECT_GT(run->accuracy, 0.5);
  EXPECT_LT(run->accuracy, baseline->accuracy);
}

TEST(RunShardedIpda, RejectsFaultAndChurnPlans) {
  const auto function = MakeCount();
  const auto field = MakeConstantField(1.0);
  RunConfig config = SmallConfig(1);
  config.faults.crashes.push_back({1, sim::SecondsF(1.0)});
  auto run = RunShardedIpda(config, *function, *field, {}, {});
  EXPECT_FALSE(run.ok());
}

TEST(RunShardedIpda, DeterministicAcrossInvocations) {
  const auto function = MakeSum();
  const auto field = MakeUniformField(15.0, 30.0, 9);
  ShardedConfig sharded;
  sharded.sinks = 2;
  auto a = RunShardedIpda(SmallConfig(9), *function, *field, LossFreeIpda(),
                          sharded);
  auto b = RunShardedIpda(SmallConfig(9), *function, *field, LossFreeIpda(),
                          sharded);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->result, b->result);
  EXPECT_EQ(a->traffic.bytes_sent, b->traffic.bytes_sent);
  EXPECT_EQ(a->decision.acc_red, b->decision.acc_red);
}

}  // namespace
}  // namespace ipda::agg
