#include <cmath>

#include <gtest/gtest.h>

#include "stats/series.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "util/random.h"

namespace ipda::stats {
namespace {

TEST(Summary, EmptyIsZero) {
  Summary s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(Summary, SingleSample) {
  Summary s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(Summary, KnownMoments) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1: 32/7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(Summary, WelfordIsNumericallyStable) {
  // Large offset, small spread: naive sum-of-squares would catastrophically
  // cancel.
  Summary s;
  const double offset = 1e12;
  for (double x : {offset + 1.0, offset + 2.0, offset + 3.0}) s.Add(x);
  EXPECT_NEAR(s.variance(), 1.0, 1e-6);
}

TEST(Summary, CiShrinksWithSamples) {
  util::Rng rng(1);
  Summary small, large;
  for (int i = 0; i < 10; ++i) small.Add(rng.UniformDouble());
  for (int i = 0; i < 10000; ++i) large.Add(rng.UniformDouble());
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
  EXPECT_NEAR(large.mean(), 0.5, 0.02);
  // CI for uniform(0,1): sigma ~ 0.2887, half-width ~1.96*sigma/100.
  EXPECT_NEAR(large.ci95_halfwidth(), 1.96 * 0.2887 / 100.0, 0.001);
}

TEST(Summary, DegradedCi95WidensWithLostRuns) {
  Summary s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.Add(x);
  // Nothing lost: the degraded CI is exactly the plain CI.
  EXPECT_DOUBLE_EQ(DegradedCi95(s, 8), s.ci95_halfwidth());
  // Also when MORE samples arrived than requested (retries can overshoot
  // on resumed sweeps) — never narrower than the plain CI either.
  EXPECT_DOUBLE_EQ(DegradedCi95(s, 4), s.ci95_halfwidth());
  // Half the runs lost: the penalty is sqrt(requested/effective).
  EXPECT_NEAR(DegradedCi95(s, 16), s.ci95_halfwidth() * std::sqrt(2.0),
              1e-12);
  // No survivors at all: report 0 (the point is failed, not precise).
  Summary empty;
  EXPECT_EQ(DegradedCi95(empty, 16), 0.0);
}

TEST(Summary, FormatDegradedMeanCiSuffix) {
  Summary s;
  for (double x : {0.94, 0.95, 0.96, 0.95}) s.Add(x);
  // Full house: plain "mean±ci", no suffix.
  const std::string full = FormatDegradedMeanCi(s, 4, 3);
  EXPECT_EQ(full, FormatMeanCi(s.mean(), s.ci95_halfwidth(), 3));
  EXPECT_EQ(full.find("[n="), std::string::npos);
  // Degraded point: the widened interval plus an explicit n=eff/req tag
  // so a reader can't mistake a gutted point for a healthy one.
  const std::string degraded = FormatDegradedMeanCi(s, 8, 3);
  EXPECT_NE(degraded.find(" [n=4/8]"), std::string::npos);
  EXPECT_EQ(degraded.find(FormatMeanCi(s.mean(), DegradedCi95(s, 8), 3)),
            0u);
}

TEST(Table, TextRenderingAligned) {
  Table t({"N", "degree"});
  t.AddRow({"200", "8.8"});
  t.AddRow({"600", "28.4"});
  const std::string text = t.ToText();
  EXPECT_NE(text.find("N    degree"), std::string::npos);
  EXPECT_NE(text.find("200  8.8"), std::string::npos);
  EXPECT_NE(text.find("600  28.4"), std::string::npos);
  EXPECT_NE(text.find("-----"), std::string::npos);
}

TEST(Table, CsvRendering) {
  Table t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(Table, RowColumnMismatchAborts) {
  Table t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"1"}), "CHECK failed");
}

TEST(Table, Formatters) {
  EXPECT_EQ(FormatInt(-42), "-42");
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(1.0, 0), "1");
  EXPECT_EQ(FormatMeanCi(0.95, 0.012, 3), "0.950 ±0.012");
}

TEST(Series, AddAndQuery) {
  SeriesSet set;
  set.Add("tag", 200, 0.95);
  set.Add("ipda", 200, 0.90);
  set.Add("tag", 300, 0.97);
  EXPECT_EQ(set.SeriesNames(),
            (std::vector<std::string>{"tag", "ipda"}));
  EXPECT_EQ(set.XValues(), (std::vector<double>{200, 300}));
  EXPECT_DOUBLE_EQ(set.At("tag", 200), 0.95);
  EXPECT_TRUE(std::isnan(set.At("ipda", 300)));
  EXPECT_TRUE(std::isnan(set.At("nope", 200)));
}

TEST(Series, OverwriteKeepsLatest) {
  SeriesSet set;
  set.Add("s", 1, 10.0);
  set.Add("s", 1, 20.0);
  EXPECT_DOUBLE_EQ(set.At("s", 1), 20.0);
}

TEST(Series, TableHasDashForMissing) {
  SeriesSet set;
  set.Add("a", 1, 0.5);
  set.Add("b", 2, 0.7);
  const Table table = set.ToTable("x");
  EXPECT_EQ(table.row_count(), 2u);
  EXPECT_EQ(table.column_count(), 3u);
  const std::string text = table.ToText();
  EXPECT_NE(text.find("-"), std::string::npos);
  EXPECT_NE(text.find("0.500"), std::string::npos);
  EXPECT_NE(text.find("0.700"), std::string::npos);
}

TEST(Series, IntegerXValuesPrintWithoutDecimals) {
  SeriesSet set;
  set.Add("a", 200, 1.0);
  const std::string text = set.ToTable("N").ToText();
  EXPECT_NE(text.find("200"), std::string::npos);
  EXPECT_EQ(text.find("200.000"), std::string::npos);
}

}  // namespace
}  // namespace ipda::stats
