// Integration tests for the observability layer (DESIGN.md §11): golden
// metrics-JSONL fixtures, snapshot/traffic reconciliation, and the
// thread-independence that makes `--metrics` files byte-identical for
// any --jobs value.
//
// Regenerate the fixtures after an *intentional* behavior change with
//   IPDA_UPDATE_GOLDEN=1 ./tests/obs_run_metrics_test

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include <gtest/gtest.h>

#include "agg/aggregate_function.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"

#ifndef IPDA_GOLDEN_DIR
#error "IPDA_GOLDEN_DIR must point at tests/golden"
#endif

namespace ipda {
namespace {

constexpr size_t kNodes = 60;
constexpr double kAreaSide = 200.0;
constexpr uint64_t kSeeds[] = {1, 2, 3};

agg::RunConfig GoldenConfig(uint64_t seed) {
  agg::RunConfig config;
  config.deployment.node_count = kNodes;
  config.deployment.area = net::Area{kAreaSide, kAreaSide};
  config.seed = seed;
  return config;
}

util::Result<agg::IpdaRunResult> GoldenRun(uint64_t seed, bool with_faults) {
  auto function = agg::MakeSum();
  auto field = agg::MakeUniformField(15.0, 30.0, 42);
  agg::RunConfig config = GoldenConfig(seed);
  agg::IpdaConfig ipda;
  if (with_faults) {
    auto plan =
        fault::ParseFaultSpec("crash-frac=0.15@0.05,loss=0.05,dup=0.01");
    if (!plan.ok()) return plan.status();
    config.faults = *plan;
    ipda.retarget_slices = true;
    ipda.parent_failover = true;
  }
  return agg::RunIpda(config, *function, *field, ipda);
}

// The full metrics file a sweep over kSeeds would emit: header plus one
// canonical JSONL record per run. Byte-compared against the fixture.
std::string MetricsJsonl(bool with_faults) {
  std::string out = obs::MetricsHeaderLine("obs_run_metrics_test",
                                           std::size(kSeeds), kSeeds[0]);
  uint64_t run = 0;
  for (uint64_t seed : kSeeds) {
    auto result = GoldenRun(seed, with_faults);
    if (!result.ok()) return "run failed: " + result.status().ToString();
    out += obs::SnapshotJsonLine(result->metrics, run++, seed);
  }
  return out;
}

void CheckGolden(const std::string& name, const std::string& actual) {
  const std::string path = std::string(IPDA_GOLDEN_DIR) + "/" + name;
  if (std::getenv("IPDA_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    ASSERT_TRUE(out.good()) << "write failed for " << path;
    GTEST_SKIP() << "golden updated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good())
      << "missing golden " << path
      << " — regenerate with IPDA_UPDATE_GOLDEN=1";
  std::ostringstream expected;
  expected << in.rdbuf();
  EXPECT_EQ(expected.str(), actual)
      << "metrics drifted from " << path
      << " — if the change is intentional, regenerate with "
         "IPDA_UPDATE_GOLDEN=1 and commit the diff";
}

TEST(GoldenMetrics, IpdaCleanRounds) {
  CheckGolden("ipda_n60_metrics.jsonl", MetricsJsonl(/*with_faults=*/false));
}

TEST(GoldenMetrics, IpdaFaultyRounds) {
  CheckGolden("ipda_n60_faults_metrics.jsonl",
              MetricsJsonl(/*with_faults=*/true));
}

// Every fixture line must parse back through the public reader — the
// format metrics_report consumes is exactly what the runs emit.
TEST(GoldenMetrics, FixtureRoundTripsThroughParser) {
  const std::string jsonl = MetricsJsonl(/*with_faults=*/true);
  std::istringstream lines(jsonl);
  std::string line;
  size_t records = 0;
  while (std::getline(lines, line)) {
    obs::ParsedLine parsed;
    std::string error;
    ASSERT_TRUE(obs::ParseMetricsLine(line, parsed, &error)) << error;
    ++records;
  }
  EXPECT_EQ(records, 1 + std::size(kSeeds));  // Header + one per run.
}

// The snapshot is the run's traffic record, not a parallel bookkeeping
// system: its counters must equal the CounterBoard totals and the
// protocol stats the run already reports.
TEST(RunMetrics, SnapshotReconcilesWithTrafficAndStats) {
  auto run = GoldenRun(kSeeds[0], /*with_faults=*/true);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const obs::Snapshot& m = run->metrics;
  const net::NodeCounters& t = run->traffic;

  EXPECT_EQ(m.CounterOr("net.bytes_sent", -1),
            static_cast<double>(t.bytes_sent));
  EXPECT_EQ(m.CounterOr("net.frames_sent", -1),
            static_cast<double>(t.frames_sent));
  EXPECT_EQ(m.CounterOr("net.injected_drops", -1),
            static_cast<double>(t.injected_drops));
  // The fig7_overhead identity: protocol traffic = sent minus MAC ACKs.
  EXPECT_EQ(m.CounterOr("net.protocol_bytes", -1),
            static_cast<double>(t.bytes_sent - t.ack_bytes_sent));
  EXPECT_EQ(m.CounterOr("net.protocol_frames", -1),
            static_cast<double>(t.frames_sent - t.ack_frames_sent));

  EXPECT_EQ(m.CounterOr("agg.participants", -1),
            static_cast<double>(run->stats.participants));
  EXPECT_EQ(m.CounterOr("agg.slices_retargeted", -1),
            static_cast<double>(run->stats.slices_retargeted));
  EXPECT_EQ(m.GaugeOr("agg.accepted", -1),
            run->stats.decision.accepted ? 1.0 : 0.0);

  // A faulty round exercises crypto and the injector; the instruments
  // must be live, not zero-filled placeholders.
  EXPECT_GT(m.CounterOr("crypto.ctr_blocks_batched", 0) +
                m.CounterOr("crypto.ctr_blocks_scalar", 0),
            0.0);
  EXPECT_GT(m.CounterOr("fault.crashes", -1), 0.0);
  EXPECT_GT(m.CounterOr("sim.events_run", 0), 0.0);

  // The five iPDA phase spans, in schedule order, covering the round
  // from time zero with no gaps.
  ASSERT_EQ(m.spans.size(), 5u);
  EXPECT_EQ(m.spans[0].name, "query.dissemination");
  EXPECT_EQ(m.spans[4].name, "verification");
  EXPECT_EQ(m.spans[0].begin_ns, 0);
  for (size_t i = 1; i < m.spans.size(); ++i) {
    EXPECT_EQ(m.spans[i].begin_ns, m.spans[i - 1].end_ns) << "gap at " << i;
  }
}

// --jobs byte-identity reduces to this: the same run on a different
// thread (fresh thread_local crypto tallies, different accumulated
// baseline) must serialize the identical snapshot.
TEST(RunMetrics, SnapshotIsThreadIndependent) {
  auto main_run = GoldenRun(kSeeds[1], /*with_faults=*/false);
  ASSERT_TRUE(main_run.ok()) << main_run.status().ToString();
  const std::string main_json =
      obs::SnapshotJsonLine(main_run->metrics, 0, kSeeds[1]);

  std::string worker_json;
  std::thread worker([&worker_json] {
    // Unrelated prior crypto work on this thread must not leak into the
    // run's delta-based crypto counters.
    auto warmup = GoldenRun(kSeeds[2], /*with_faults=*/false);
    ASSERT_TRUE(warmup.ok()) << warmup.status().ToString();
    auto run = GoldenRun(kSeeds[1], /*with_faults=*/false);
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    worker_json = obs::SnapshotJsonLine(run->metrics, 0, kSeeds[1]);
  });
  worker.join();
  EXPECT_EQ(main_json, worker_json);
}

// Collecting metrics is observation, not participation: repeating a run
// with the registry already exercised produces identical protocol output
// (this is the golden-trace "metrics on/off" invariant in unit form).
TEST(RunMetrics, CollectionDoesNotPerturbResults) {
  auto a = GoldenRun(kSeeds[0], /*with_faults=*/true);
  auto b = GoldenRun(kSeeds[0], /*with_faults=*/true);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->result, b->result);
  EXPECT_EQ(a->traffic.bytes_sent, b->traffic.bytes_sent);
  EXPECT_EQ(obs::SnapshotJsonLine(a->metrics, 0, kSeeds[0]),
            obs::SnapshotJsonLine(b->metrics, 0, kSeeds[0]));
}

}  // namespace
}  // namespace ipda
