// End-to-end runs of TAG and iPDA over the full simulated stack: random
// deployment, CSMA MAC, collisions, link encryption. These are the
// invariants the paper's evaluation relies on.

#include <cmath>

#include <gtest/gtest.h>

#include "agg/aggregate_function.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "attack/pollution.h"

namespace ipda {
namespace {

using agg::IpdaConfig;
using agg::IpdaRunHooks;
using agg::IpdaRunResult;
using agg::RunConfig;
using agg::RunIpda;
using agg::RunTag;
using agg::TagRunResult;

RunConfig DenseConfig(uint64_t seed) {
  RunConfig config;
  config.deployment.node_count = 350;
  config.deployment.area = net::Area{400.0, 400.0};
  config.range = 50.0;
  config.seed = seed;
  return config;
}

TEST(IntegrationTag, CountReachesMostNodes) {
  const RunConfig config = DenseConfig(7);
  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(25.0);
  auto result = RunTag(config, *function, *field);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Paper Fig. 8c: TAG accuracy is near 1 for dense networks.
  EXPECT_GT(result->accuracy, 0.90);
  EXPECT_LE(result->accuracy, 1.0 + 1e-9);
  EXPECT_GT(result->stats.nodes_joined, 300u);
}

TEST(IntegrationTag, SumMatchesJoinedContributions) {
  RunConfig config = DenseConfig(11);
  auto function = agg::MakeSum();
  auto field = agg::MakeUniformField(10.0, 30.0, 99);
  auto result = RunTag(config, *function, *field);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Collected sum can never exceed the ground truth (readings positive).
  EXPECT_LE(result->stats.collected[0], result->true_acc[0] + 1e-6);
  EXPECT_GT(result->accuracy, 0.85);
}

TEST(IntegrationIpda, CountAccurateAndAcceptedInDenseNetwork) {
  const RunConfig config = DenseConfig(13);
  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);
  IpdaConfig ipda;
  ipda.slice_count = 2;
  auto result = RunIpda(config, *function, *field, ipda);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& decision = result->stats.decision;
  // Without pollution the trees agree within Th (paper Fig. 6).
  EXPECT_TRUE(decision.accepted)
      << "red=" << decision.acc_red[0] << " blue=" << decision.acc_blue[0];
  // Dense network: most nodes participate and accuracy is high (Fig. 8).
  EXPECT_GT(result->accuracy, 0.85);
  EXPECT_GT(result->stats.covered_both,
            result->stats.participants - 1);  // covered ⊇ participants
}

TEST(IntegrationIpda, RedAndBlueTreesAreNodeDisjoint) {
  // Disjointness holds by construction (a node takes one role); verify the
  // census adds up: every non-excluded sensor is exactly one of
  // red/blue/leaf/undecided.
  const RunConfig config = DenseConfig(17);
  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);
  auto result = RunIpda(config, *function, *field);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const auto& s = result->stats;
  EXPECT_EQ(s.red_aggregators + s.blue_aggregators + s.leaves + s.undecided,
            config.deployment.node_count - 1);
}

TEST(IntegrationIpda, PollutionIsDetected) {
  const RunConfig config = DenseConfig(19);
  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);
  IpdaRunHooks hooks;
  size_t fired = 0;
  attack::PollutionConfig attack_config;
  attack_config.attackers = {42};
  attack_config.additive_delta = 100.0;
  hooks.pollution = attack::MakePollutionHook(attack_config, &fired);
  auto result = RunIpda(config, *function, *field, IpdaConfig{}, hooks);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  if (fired > 0) {
    EXPECT_FALSE(result->stats.decision.accepted)
        << "diff=" << result->stats.decision.max_component_diff;
  }
}

TEST(IntegrationIpda, OverheadRatioTracksTheory) {
  // Fig. 7: total bytes under iPDA(l) / TAG ≈ (2l+1)/2 once the network is
  // dense enough that nearly everyone participates.
  const RunConfig config = DenseConfig(23);
  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);

  auto tag = RunTag(config, *function, *field);
  ASSERT_TRUE(tag.ok());
  IpdaConfig l2;
  l2.slice_count = 2;
  auto ipda = RunIpda(config, *function, *field, l2);
  ASSERT_TRUE(ipda.ok());

  const double ratio =
      static_cast<double>(ipda->traffic.bytes_sent) /
      static_cast<double>(tag->traffic.bytes_sent);
  // Theory says 2.5x in messages; bytes differ by payload sizes and the
  // slice nonce, so accept a generous band around it.
  EXPECT_GT(ratio, 1.8);
  EXPECT_LT(ratio, 4.0);
}

TEST(IntegrationIpda, SparseNetworkLosesCoverage) {
  RunConfig config = DenseConfig(29);
  config.deployment.node_count = 150;  // Avg degree ~6.6: sparse.
  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);
  auto sparse = RunIpda(config, *function, *field);
  ASSERT_TRUE(sparse.ok());

  config.deployment.node_count = 450;
  config.seed = 31;
  auto dense = RunIpda(config, *function, *field);
  ASSERT_TRUE(dense.ok());

  const double sparse_cov =
      static_cast<double>(sparse->stats.covered_both) / 149.0;
  const double dense_cov =
      static_cast<double>(dense->stats.covered_both) / 449.0;
  // Fig. 8a: coverage grows with density.
  EXPECT_LT(sparse_cov, dense_cov);
  EXPECT_GT(dense_cov, 0.95);
}

TEST(IntegrationIpda, DeterministicAcrossRuns) {
  const RunConfig config = DenseConfig(37);
  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);
  auto a = RunIpda(config, *function, *field);
  auto b = RunIpda(config, *function, *field);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->stats.decision.acc_red[0], b->stats.decision.acc_red[0]);
  EXPECT_EQ(a->stats.decision.acc_blue[0], b->stats.decision.acc_blue[0]);
  EXPECT_EQ(a->traffic.bytes_sent, b->traffic.bytes_sent);
  EXPECT_EQ(a->stats.participants, b->stats.participants);
}

}  // namespace
}  // namespace ipda
