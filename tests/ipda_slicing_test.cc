#include "agg/ipda/slicing.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace ipda::agg {
namespace {

TEST(SliceVector, SlicesSumToValue) {
  util::Rng rng(1);
  const Vector value{10.0, -3.5, 0.0};
  for (uint32_t l : {1u, 2u, 3u, 5u, 10u}) {
    auto slices = SliceVector(value, l, 50.0, rng);
    ASSERT_EQ(slices.size(), l);
    Vector sum(value.size(), 0.0);
    for (const auto& s : slices) AddInto(sum, s);
    for (size_t c = 0; c < value.size(); ++c) {
      EXPECT_NEAR(sum[c], value[c], 1e-9) << "l=" << l << " c=" << c;
    }
  }
}

TEST(SliceVector, SingleSliceIsValueItself) {
  util::Rng rng(2);
  const Vector value{7.0};
  auto slices = SliceVector(value, 1, 50.0, rng);
  ASSERT_EQ(slices.size(), 1u);
  EXPECT_EQ(slices[0], value);
}

TEST(SliceVector, NoiseSlicesRespectRange) {
  util::Rng rng(3);
  const Vector value{1.0};
  for (int trial = 0; trial < 200; ++trial) {
    auto slices = SliceVector(value, 3, 2.0, rng);
    // All but the remainder slice are bounded by the range.
    EXPECT_LE(std::fabs(slices[0][0]), 2.0);
    EXPECT_LE(std::fabs(slices[1][0]), 2.0);
  }
}

TEST(SliceVector, SlicesAreRandomized) {
  util::Rng rng(4);
  const Vector value{5.0};
  auto a = SliceVector(value, 2, 50.0, rng);
  auto b = SliceVector(value, 2, 50.0, rng);
  EXPECT_NE(a[0][0], b[0][0]);
}

TEST(SliceVector, NoiseSliceIsStatisticallyIndependentOfValue) {
  // The first slice of value v and of value v' should have identical
  // distributions — here: means both near 0 regardless of value.
  util::Rng rng(5);
  double mean_small = 0.0, mean_big = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    mean_small += SliceVector({1.0}, 2, 10.0, rng)[0][0];
    mean_big += SliceVector({1000.0}, 2, 10.0, rng)[0][0];
  }
  EXPECT_NEAR(mean_small / n, 0.0, 0.2);
  EXPECT_NEAR(mean_big / n, 0.0, 0.2);
}

std::vector<net::NodeId> Ids(std::initializer_list<net::NodeId> ids) {
  return std::vector<net::NodeId>(ids);
}

TEST(PlanSlices, LeafNeedsLPerColor) {
  util::Rng rng(6);
  auto plan = PlanSlices(NodeRole::kLeaf, 2, Ids({1, 2, 3}), Ids({4, 5}),
                         rng);
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->red.targets.size(), 2u);
  EXPECT_EQ(plan->blue.targets.size(), 2u);
  EXPECT_FALSE(plan->red.keep_local);
  EXPECT_FALSE(plan->blue.keep_local);
  EXPECT_EQ(plan->TransmissionCount(), 4u);  // 2l for a leaf.
}

TEST(PlanSlices, RedAggregatorKeepsOneLocally) {
  util::Rng rng(7);
  auto plan = PlanSlices(NodeRole::kRedAggregator, 2, Ids({1}), Ids({4, 5}),
                         rng);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->red.keep_local);
  EXPECT_EQ(plan->red.targets.size(), 1u);   // l-1 remote red slices.
  EXPECT_EQ(plan->blue.targets.size(), 2u);  // l remote blue slices.
  EXPECT_EQ(plan->TransmissionCount(), 3u);  // 2l-1 (§III-C-1).
}

TEST(PlanSlices, BlueAggregatorSymmetric) {
  util::Rng rng(8);
  auto plan = PlanSlices(NodeRole::kBlueAggregator, 3, Ids({1, 2, 3}),
                         Ids({4, 5}), rng);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->blue.keep_local);
  EXPECT_EQ(plan->blue.targets.size(), 2u);
  EXPECT_EQ(plan->red.targets.size(), 3u);
  EXPECT_EQ(plan->TransmissionCount(), 5u);
}

TEST(PlanSlices, LEqualsOneAggregatorSendsToOtherColorOnly) {
  util::Rng rng(9);
  auto plan =
      PlanSlices(NodeRole::kRedAggregator, 1, Ids({}), Ids({4}), rng);
  ASSERT_TRUE(plan.ok());
  EXPECT_TRUE(plan->red.keep_local);
  EXPECT_TRUE(plan->red.targets.empty());
  EXPECT_EQ(plan->blue.targets.size(), 1u);
  EXPECT_EQ(plan->TransmissionCount(), 1u);  // 2l-1 = 1.
}

TEST(PlanSlices, InsufficientTargetsFails) {
  util::Rng rng(10);
  // Leaf wants 2+2, only one blue candidate.
  auto starved =
      PlanSlices(NodeRole::kLeaf, 2, Ids({1, 2}), Ids({3}), rng);
  EXPECT_FALSE(starved.ok());
  EXPECT_EQ(starved.status().code(), util::StatusCode::kFailedPrecondition);
  // Red aggregator with no other red neighbor still works at l=2? No:
  // needs l-1 = 1 red target.
  EXPECT_FALSE(
      PlanSlices(NodeRole::kRedAggregator, 2, Ids({}), Ids({3, 4}), rng)
          .ok());
}

TEST(PlanSlices, UndecidedAndBaseStationCannotSlice) {
  util::Rng rng(11);
  EXPECT_FALSE(
      PlanSlices(NodeRole::kUndecided, 1, Ids({1}), Ids({2}), rng).ok());
  EXPECT_FALSE(
      PlanSlices(NodeRole::kBaseStation, 1, Ids({1}), Ids({2}), rng).ok());
  EXPECT_FALSE(
      PlanSlices(NodeRole::kExcluded, 1, Ids({1}), Ids({2}), rng).ok());
}

TEST(PlanSlices, TargetsAreDistinctAndFromCandidates) {
  util::Rng rng(12);
  const auto red = Ids({1, 2, 3, 4, 5});
  const auto blue = Ids({6, 7, 8, 9});
  for (int trial = 0; trial < 100; ++trial) {
    auto plan = PlanSlices(NodeRole::kLeaf, 3, red, blue, rng);
    ASSERT_TRUE(plan.ok());
    std::set<net::NodeId> red_set(plan->red.targets.begin(),
                                  plan->red.targets.end());
    EXPECT_EQ(red_set.size(), 3u);
    for (net::NodeId id : red_set) {
      EXPECT_TRUE(std::find(red.begin(), red.end(), id) != red.end());
    }
    std::set<net::NodeId> blue_set(plan->blue.targets.begin(),
                                   plan->blue.targets.end());
    EXPECT_EQ(blue_set.size(), 3u);
  }
}

TEST(PlanSlices, SelectionIsUniformish) {
  // Every candidate should be picked reasonably often.
  util::Rng rng(13);
  const auto red = Ids({1, 2, 3, 4});
  const auto blue = Ids({5, 6, 7, 8});
  std::map<net::NodeId, int> counts;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    auto plan = PlanSlices(NodeRole::kLeaf, 2, red, blue, rng);
    for (net::NodeId id : plan->red.targets) ++counts[id];
  }
  for (net::NodeId id : red) {
    EXPECT_NEAR(static_cast<double>(counts[id]) / trials, 0.5, 0.05);
  }
}

}  // namespace
}  // namespace ipda::agg
