// Advanced metering infrastructure (AMI) scenario — the paper's motivating
// application (§I): a utility collects total neighborhood consumption from
// smart meters without learning any household's individual load, while a
// dishonest participant who under-reports the aggregate gets caught.
//
// The example runs three billing intervals:
//   interval 1: honest network, SUM of household loads accepted;
//   interval 2: a compromised aggregator scales its subtree down 40%
//               ("shift usage to cheaper intervals") — rejected;
//   interval 3: honest again — service resumes.

#include <cmath>
#include <cstdio>

#include "agg/aggregate_function.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "attack/pollution.h"

namespace {

// Household load profile: base load plus a deterministic per-home variation
// in [0.2, 3.0] kW — realistic evening-peak draws.
class HouseholdLoadField : public ipda::agg::SensorField {
 public:
  explicit HouseholdLoadField(uint64_t interval) : interval_(interval) {}

  double ReadingFor(ipda::net::NodeId id,
                    const ipda::net::Topology&) const override {
    ipda::util::Rng rng(ipda::util::Mix64(interval_, id));
    const double base = 0.2;                      // Fridge, standby.
    const double peak = rng.UniformDouble(0.0, 2.8);  // Stochastic use.
    return base + peak;
  }

 private:
  uint64_t interval_;
};

}  // namespace

int main() {
  using namespace ipda;

  agg::RunConfig config;
  config.deployment.node_count = 450;  // One meter per home + concentrator.
  config.seed = 7;

  auto function = agg::MakeSum();  // kWh per interval == kW x interval.
  agg::IpdaConfig ipda;
  ipda.slice_count = 2;
  ipda.slice_range = 3.0;   // Slice noise spans the per-home load domain.
  ipda.threshold = 8.0;     // Th in kW; >> loss noise, << any real fraud.

  std::printf("Advanced metering: %zu meters reporting interval totals\n\n",
              config.deployment.node_count - 1);

  for (int interval = 1; interval <= 3; ++interval) {
    HouseholdLoadField field(static_cast<uint64_t>(interval));
    agg::IpdaRunHooks hooks;
    size_t fired = 0;
    if (interval == 2) {
      attack::PollutionConfig fraud;
      fraud.attackers = {77};          // A compromised in-network aggregator.
      fraud.additive_delta = -120.0;   // Shave 120 kW off the total.
      hooks.pollution = attack::MakePollutionHook(fraud, &fired);
    }
    config.seed = 7 + static_cast<uint64_t>(interval);
    auto result = agg::RunIpda(config, *function, field, ipda, hooks);
    if (!result.ok()) {
      std::fprintf(stderr, "interval %d failed: %s\n", interval,
                   result.status().ToString().c_str());
      return 1;
    }
    const auto& decision = result->stats.decision;
    const double truth = function->Finalize(result->true_acc);
    std::printf("interval %d%s\n", interval,
                interval == 2
                    ? "  (meter 77 compromised, under-reports 120 kW)"
                    : "");
    std::printf("  tree totals: red %.1f kW, blue %.1f kW, |diff| %.2f\n",
                decision.acc_red[0], decision.acc_blue[0],
                decision.max_component_diff);
    if (decision.accepted) {
      std::printf("  ACCEPTED: billed total %.1f kW (true %.1f kW, "
                  "error %.2f%%)\n\n",
                  result->result, truth,
                  100.0 * std::fabs(result->result - truth) /
                      truth);
    } else {
      std::printf("  REJECTED: totals disagree beyond Th=%.0f kW — "
                  "pollution detected%s\n\n",
                  ipda.threshold,
                  fired > 0 ? " (the fraud fired, as expected)" : "");
    }
  }

  std::printf("Privacy note: every per-home reading left its meter as %u\n"
              "encrypted random slices; no single link (or tree) ever\n"
              "carried a household's load in recoverable form.\n",
              2 * ipda.slice_count);
  return 0;
}
