// Private distribution survey: collect a HISTOGRAM of sensor readings
// without exposing any individual value.
//
// Additive bucket counts ride through iPDA's slicing like any other
// contribution vector, so the base station learns the shape of the
// temperature distribution — useful for anomaly detection or HVAC
// planning — while every per-sensor reading stays hidden behind encrypted
// random slices. The integrity check covers the whole vector: tampering
// with any bucket on one tree is caught.

#include <cstdio>

#include "agg/aggregate_function.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "attack/pollution.h"

int main() {
  using namespace ipda;

  constexpr double kLo = 12.0;
  constexpr double kHi = 32.0;
  constexpr size_t kBuckets = 8;

  agg::RunConfig config;
  config.deployment.node_count = 450;
  config.seed = 2718;

  auto function = agg::MakeHistogram(kLo, kHi, kBuckets);
  // A spatial gradient plus per-node spread: warm on one side of the
  // field, cool on the other.
  auto field = agg::MakeGradientField(14.0, 0.04, 0.0);

  agg::IpdaConfig ipda;
  ipda.slice_count = 2;
  ipda.slice_range = 1.0;  // Bucket counts are 0/1 per sensor.
  ipda.threshold = 5.0;

  auto result = agg::RunIpda(config, *function, *field, ipda);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  if (!result->stats.decision.accepted) {
    std::fprintf(stderr, "rejected: trees disagree\n");
    return 1;
  }

  const agg::Vector histogram = result->stats.decision.Agreed();
  const auto bounds = agg::HistogramBucketLowerBounds(kLo, kHi, kBuckets);
  const double width = (kHi - kLo) / static_cast<double>(kBuckets);

  std::printf("private temperature survey over %zu sensors "
              "(%zu participated):\n\n",
              config.deployment.node_count - 1,
              result->stats.participants);
  double max_count = 1.0;
  for (double c : histogram) max_count = c > max_count ? c : max_count;
  for (size_t b = 0; b < kBuckets; ++b) {
    const int bar =
        static_cast<int>(histogram[b] / max_count * 40.0 + 0.5);
    std::printf("  %5.1f-%5.1f C | %-40.*s %.0f (true %.0f)\n", bounds[b],
                bounds[b] + width, bar,
                "########################################", histogram[b],
                result->true_acc[b]);
  }
  std::printf("\nper-sensor readings never left the motes in the clear;\n"
              "the distribution was assembled from encrypted slices on "
              "two\ndisjoint trees whose totals agreed within Th = %.0f.\n",
              ipda.threshold);
  return 0;
}
