// Pollution attack and §III-D polluter localization, end to end.
//
// A persistent polluter inflates its intermediate COUNT partial every
// round, forcing the base station to reject results (a DoS on the
// aggregation service). The base station responds with the paper's
// bisection countermeasure: vary which sensors participate per round and
// narrow the suspect set by whether the round was accepted — O(log N)
// rounds later the polluter is identified and excluded for good.

#include <cstdio>

#include "agg/aggregate_function.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "attack/dos.h"
#include "attack/pollution.h"

int main() {
  using namespace ipda;

  constexpr net::NodeId kPolluter = 217;
  agg::RunConfig config;
  config.deployment.node_count = 500;
  config.seed = 99;

  auto function = agg::MakeCount();
  auto field = agg::MakeConstantField(1.0);
  agg::IpdaConfig ipda;
  ipda.slice_count = 2;
  ipda.slice_range = 1.0;
  ipda.impatient_join = true;  // Keep coverage up when halves are excluded.

  attack::PollutionConfig attack_config;
  attack_config.attackers = {kPolluter};
  attack_config.additive_delta = 60.0;

  // Round 0: demonstrate the DoS — every normal round gets rejected.
  {
    agg::IpdaRunHooks hooks;
    hooks.pollution = attack::MakePollutionHook(attack_config);
    auto result = agg::RunIpda(config, *function, *field, ipda, hooks);
    if (!result.ok()) return 1;
    std::printf("normal round with hidden polluter (node %u):\n"
                "  S_red = %.0f, S_blue = %.0f -> %s\n\n",
                kPolluter, result->stats.decision.acc_red[0],
                result->stats.decision.acc_blue[0],
                result->stats.decision.accepted
                    ? "accepted (?!)"
                    : "REJECTED: someone is polluting");
  }

  // Localization: bisect the id space, excluding half the suspects each
  // round.
  size_t rounds = 0;
  attack::RoundFn run_round =
      [&](const std::vector<net::NodeId>& excluded,
          uint64_t) -> util::Result<bool> {
    ++rounds;
    agg::IpdaRunHooks hooks;
    hooks.pollution = attack::MakePollutionHook(attack_config);
    hooks.excluded = excluded;
    auto result = agg::RunIpda(config, *function, *field, ipda, hooks);
    IPDA_RETURN_IF_ERROR(result.status());
    const bool accepted = result->stats.decision.accepted;
    std::printf("  round %2zu: excluded %3zu suspects -> %s\n", rounds,
                excluded.size(), accepted ? "clean" : "polluted");
    return accepted;
  };

  std::printf("localizing by bisection over %zu sensors:\n",
              config.deployment.node_count - 1);
  attack::PolluterLocalizer localizer(config.deployment.node_count);
  auto located = localizer.Locate(run_round);
  if (!located.ok()) {
    std::fprintf(stderr, "localization failed: %s\n",
                 located.status().ToString().c_str());
    return 1;
  }
  if (!located->found) {
    std::printf("localization did not converge\n");
    return 1;
  }
  std::printf("=> suspect: node %u after %zu rounds (true polluter: %u)\n\n",
              located->suspect, rounds, kPolluter);

  // Exclude the polluter permanently: service restored.
  agg::IpdaRunHooks hooks;
  hooks.pollution = attack::MakePollutionHook(attack_config);
  hooks.excluded = {located->suspect};
  auto clean = agg::RunIpda(config, *function, *field, ipda, hooks);
  if (!clean.ok()) return 1;
  std::printf("with node %u excluded: S_red = %.0f, S_blue = %.0f -> %s\n",
              located->suspect, clean->stats.decision.acc_red[0],
              clean->stats.decision.acc_blue[0],
              clean->stats.decision.accepted
                  ? "ACCEPTED — aggregation service restored"
                  : "still rejected");
  return located->suspect == kPolluter && clean->stats.decision.accepted
             ? 0
             : 1;
}
