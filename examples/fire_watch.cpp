// Fire watch: exact private MAX temperature via KIPDA.
//
// A forest-monitoring network reports the hottest reading every round so
// the base station can raise an alarm — but individual sensor readings
// (which reveal exactly where people are camping, §I's privacy concern)
// must stay hidden. KIPDA computes the exact maximum with zero
// cryptography: every sensor hides its reading among camouflage values at
// secret vector positions; aggregators take elementwise maxima without
// understanding what they forward.

#include <algorithm>
#include <cstdio>

#include "agg/kipda/kipda_protocol.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "net/network.h"
#include "sim/simulator.h"

int main() {
  using namespace ipda;

  agg::RunConfig config;
  config.deployment.node_count = 450;
  config.seed = 1337;
  auto topology = agg::BuildRunTopology(config);
  if (!topology.ok()) {
    std::fprintf(stderr, "%s\n", topology.status().ToString().c_str());
    return 1;
  }

  // Ambient forest temperatures, with one hotspot sensor near a fire.
  auto ambient = agg::MakeUniformField(14.0, 27.0, 4242);
  sim::Simulator simulator(config.seed);
  net::Network network(&simulator, std::move(*topology));
  auto readings = ambient->Sample(network.topology());
  constexpr net::NodeId kHotspot = 321;
  readings[kHotspot] = 81.5;  // Smoldering.

  agg::KipdaConfig kipda;
  kipda.message_size = 12;
  kipda.real_positions = 4;
  kipda.value_floor = 0.0;
  kipda.value_ceiling = 120.0;
  agg::KipdaProtocol protocol(&network, kipda);
  protocol.SetReadings(readings);
  protocol.Start();
  simulator.RunUntil(protocol.Duration());

  double true_max = 0.0;
  for (size_t i = 1; i < readings.size(); ++i) {
    true_max = std::max(true_max, readings[i]);
  }
  const double reported = protocol.FinalizedResult();
  std::printf("fire watch over %zu sensors (%zu reached)\n",
              config.deployment.node_count - 1,
              protocol.stats().nodes_joined);
  std::printf("  reported MAX temperature: %.1f C (truth %.1f C)\n",
              reported, true_max);
  std::printf("  alarm: %s\n",
              reported > 60.0 ? "RAISED — dispatch a ranger"
                              : "none");

  // What an eavesdropper without the position secret reads off the wire:
  agg::KipdaConfig wrong = kipda;
  wrong.secret_seed ^= 0xDEAD;
  std::printf(
      "  eavesdropper with the wrong secret decodes: %.1f C "
      "(camouflage)\n"
      "  every per-sensor reading stayed hidden among %zu camouflage\n"
      "  slots — no keys, no ciphers, just k-indistinguishability.\n",
      agg::KipdaDecode(wrong, protocol.stats().collected),
      kipda.message_size - 1);
  return reported > 60.0 ? 0 : 1;
}
