// Privacy audit: how much does an eavesdropper actually learn?
//
// Runs the same deployment under (a) the TAG baseline, where a global
// listener reads every leaf's exact value off the air, and (b) iPDA with
// link encryption and l = 2 slicing, where the listener additionally
// decrypts a fraction p_x of all links (key exposure, §IV-A-3). Prints the
// fraction of sensors whose reading the adversary reconstructs, next to
// the paper's Eq. (11) prediction.

#include <cstdio>
#include <vector>

#include "agg/aggregate_function.h"
#include "agg/partial.h"
#include "agg/reading.h"
#include "agg/runner.h"
#include "analysis/privacy.h"
#include "attack/eavesdropper.h"
#include "crypto/link_security.h"

int main() {
  using namespace ipda;

  agg::RunConfig config;
  config.deployment.node_count = 500;
  config.seed = 1234;
  auto topology = agg::BuildRunTopology(config);
  if (!topology.ok()) return 1;
  const size_t sensors = topology->node_count() - 1;

  auto function = agg::MakeSum();
  auto field = agg::MakeUniformField(15.0, 35.0, 77);  // Temperatures.

  std::printf("privacy audit: %zu sensors, avg degree %.1f\n\n", sensors,
              topology->AverageDegree());

  // (a) TAG: a passive listener needs no keys at all. Count leaf nodes
  // whose exact reading appears verbatim in an overheard partial.
  {
    sim::Simulator simulator(config.seed);
    net::Network network(&simulator, std::move(*topology));
    const auto readings = field->Sample(network.topology());
    std::vector<bool> exposed(network.size(), false);
    network.channel().SetOverhearHandler(
        [&](const net::OverhearEvent& event) {
          if (event.packet.type != net::PacketType::kAggregate) return;
          auto partial = agg::DecodePartial(event.packet.payload);
          if (!partial.ok()) return;
          // A singleton subtree's partial IS the sender's raw reading.
          for (net::NodeId id = 1; id < network.size(); ++id) {
            if (event.packet.src == id &&
                (*partial)[0] == readings[id]) {
              exposed[id] = true;
            }
          }
        });
    agg::TagProtocol protocol(&network, function.get());
    protocol.SetReadings(readings);
    protocol.Start();
    simulator.RunUntil(protocol.Duration());
    size_t count = 0;
    for (bool e : exposed) count += e ? 1 : 0;
    std::printf("TAG baseline (no crypto, no slicing):\n"
                "  adversary reads %zu/%zu sensor values verbatim "
                "(%.0f%% — every leaf)\n\n",
                count, sensors,
                100.0 * static_cast<double>(count) /
                    static_cast<double>(sensors));
  }

  // (b) iPDA under increasing key exposure p_x.
  std::printf("iPDA (l = 2, link encryption) under key exposure p_x:\n");
  std::printf("  p_x    disclosed    empirical rate   Eq.11 prediction\n");
  auto fresh_topology = agg::BuildRunTopology(config);
  if (!fresh_topology.ok()) return 1;
  std::vector<crypto::Link> links;
  for (net::NodeId a = 0; a < fresh_topology->node_count(); ++a) {
    for (net::NodeId b : fresh_topology->neighbors(a)) {
      if (a < b) links.emplace_back(a, b);
    }
  }
  for (double px : {0.01, 0.05, 0.10, 0.25}) {
    util::Rng rng(util::Mix64(config.seed, static_cast<uint64_t>(px * 1e4)));
    auto compromise = crypto::UniformLinkCompromise(links.size(), px, rng);
    std::vector<bool> broken(compromise.broken.begin(),
                             compromise.broken.end());
    attack::Eavesdropper eve(fresh_topology->node_count(), links, broken);
    agg::IpdaConfig ipda;
    ipda.slice_count = 2;
    ipda.slice_range = 35.0;
    ipda.threshold = 80.0;
    agg::IpdaRunHooks hooks;
    hooks.slice_observer = eve.Observer();
    auto result = agg::RunIpda(config, *function, *field, ipda, hooks);
    if (!result.ok()) return 1;
    const auto report = eve.Evaluate();
    std::printf("  %.2f   %4zu/%zu       %6.4f           %6.4f\n", px,
                report.disclosed_count, report.observed_count,
                report.disclosure_rate,
                analysis::AverageDisclosureProbability(*fresh_topology, px,
                                                       2));
  }
  std::printf("\nEvery disclosed value is verified against ground truth "
              "inside the\nattack module; anything not listed stayed "
              "information-theoretically\nhidden behind incomplete slice "
              "sets.\n");
  return 0;
}
