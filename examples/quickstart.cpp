// Quickstart: one iPDA aggregation round over a simulated sensor network.
//
//   $ ./example_quickstart
//
// Deploys 400 sensors on a 400 m x 400 m field, runs the three iPDA phases
// (disjoint trees, slicing, per-tree aggregation), and prints the base
// station's integrity-checked answer next to the ground truth.

#include <cstdio>

#include "agg/aggregate_function.h"
#include "agg/reading.h"
#include "agg/runner.h"

int main() {
  using namespace ipda;

  // 1. Describe the deployment (defaults follow the iPDA paper: 400x400 m,
  //    50 m radio range, 1 Mbps).
  agg::RunConfig config;
  config.deployment.node_count = 400;
  config.seed = 42;  // Runs are fully deterministic per seed.

  // 2. Pick what to aggregate and what the sensors read. Here: average
  //    temperature over a smooth spatial gradient field.
  auto function = agg::MakeAverage();
  auto field = agg::MakeGradientField(/*base=*/18.0, /*slope_x=*/0.01,
                                      /*slope_y=*/0.005);

  // 3. Protocol parameters: l slices per reading, Th acceptance bound.
  agg::IpdaConfig ipda;
  ipda.slice_count = 2;    // Paper-recommended.
  ipda.slice_range = 25.0; // Slice noise spans the data domain.
  ipda.threshold = 50.0;   // Th, scaled to SUM-of-temperatures magnitude.

  // 4. Run one full round (deploy -> build trees -> slice -> aggregate).
  auto result = agg::RunIpda(config, *function, *field, ipda);
  if (!result.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  const auto& stats = result->stats;
  std::printf("iPDA quickstart (%zu sensors, seed %llu)\n",
              config.deployment.node_count - 1,
              static_cast<unsigned long long>(config.seed));
  std::printf("  roles: %zu red aggregators, %zu blue, %zu unreached\n",
              stats.red_aggregators, stats.blue_aggregators,
              stats.undecided);
  std::printf("  participants: %zu (sent full slice sets)\n",
              stats.participants);
  std::printf("  integrity:  |S_red - S_blue| = %.3f  (Th = %.1f)  -> %s\n",
              stats.decision.max_component_diff, ipda.threshold,
              stats.decision.accepted ? "ACCEPTED" : "REJECTED");
  const double truth = function->Finalize(result->true_acc);
  std::printf("  answer:     AVERAGE = %.3f C   (ground truth %.3f C)\n",
              result->result, truth);
  std::printf("  traffic:    %llu bytes over the air, %llu frames\n",
              static_cast<unsigned long long>(result->traffic.bytes_sent),
              static_cast<unsigned long long>(result->traffic.frames_sent));
  return stats.decision.accepted ? 0 : 1;
}
