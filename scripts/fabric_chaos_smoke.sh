#!/usr/bin/env bash
# Chaos self-test for the multi-process sweep fabric (DESIGN.md §15).
#
# Runs a bench once single-process (--jobs 8, the golden) and once under
# the fabric with chaos kill injection (--fabric N --chaos-kill-rate R:
# the dispatcher SIGKILLs its own workers mid-shard, then re-dispatches
# their leases resuming from the dead workers' journals). Requires:
#   1. the fabric stdout is BYTE-IDENTICAL to the golden, and
#   2. at least MIN_KILLS chaos SIGKILLs actually fired.
#
#   usage: fabric_chaos_smoke.sh <bench-binary> [workers] [kill-rate] [min-kills]
#
# IPDA_BENCH_RUNS should be set high enough that shards outlive the kill
# delay; the ctest wiring picks per-bench values measured on CI.

set -u

BIN="${1:?usage: fabric_chaos_smoke.sh <bench-binary> [workers] [kill-rate] [min-kills]}"
WORKERS="${2:-2}"
RATE="${3:-1.0}"
MIN_KILLS="${4:-1}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== fabric_chaos_smoke: $BIN (workers=$WORKERS, kill-rate=$RATE," \
     "min-kills=$MIN_KILLS, runs/point=${IPDA_BENCH_RUNS:-default})"

# Golden: uninterrupted single-process sweep.
"$BIN" --jobs 8 > "$WORK/golden.out" 2> "$WORK/golden.err"
GOLDEN_EXIT=$?
if [ "$GOLDEN_EXIT" -ne 0 ]; then
  echo "FAIL: golden run exited $GOLDEN_EXIT"
  cat "$WORK/golden.err"
  exit 1
fi

# Fabric under chaos: workers are SIGKILLed mid-shard and re-dispatched.
"$BIN" --fabric "$WORKERS" --fabric-dir "$WORK/fabric" \
    --chaos-kill-rate "$RATE" \
    > "$WORK/fabric.out" 2> "$WORK/fabric.err"
FABRIC_EXIT=$?
if [ "$FABRIC_EXIT" -ne 0 ]; then
  echo "FAIL: fabric run exited $FABRIC_EXIT"
  tail -40 "$WORK/fabric.err"
  exit 1
fi

KILLS=$(grep -c 'chaos SIGKILL' "$WORK/fabric.err" || true)
echo "-- $KILLS chaos SIGKILLs fired"
if [ "${KILLS:-0}" -lt "$MIN_KILLS" ]; then
  echo "FAIL: only $KILLS chaos kills fired (want >= $MIN_KILLS);" \
       "raise IPDA_BENCH_RUNS so shards outlive the kill delay"
  tail -20 "$WORK/fabric.err"
  exit 1
fi

if ! diff "$WORK/golden.out" "$WORK/fabric.out"; then
  echo "FAIL: fabric output is not byte-identical to the single-process golden"
  tail -20 "$WORK/fabric.err"
  exit 1
fi

grep '^fabric: [0-9]* shards' "$WORK/fabric.err" || true
echo "OK: fabric output byte-identical to --jobs 8 golden despite $KILLS kills"
