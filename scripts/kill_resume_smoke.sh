#!/usr/bin/env bash
# Kill-and-resume smoke test for the crash-tolerant sweep executor.
#
# Starts a journaled sweep, SIGTERMs it mid-flight, resumes from the
# journal, and requires the resumed stdout to be byte-identical to an
# uninterrupted run — the determinism contract of ISSUE's tentpole.
#
#   usage: kill_resume_smoke.sh <bench-binary> [kill-delay-seconds]
#
# Exits 0 on success. The interrupted process may legitimately finish
# before the signal lands (exit 0) or drain (exit 75); anything else
# fails the smoke.

set -u

BIN="${1:?usage: kill_resume_smoke.sh <bench-binary> [kill-delay-seconds]}"
DELAY="${2:-1}"

export IPDA_BENCH_RUNS="${IPDA_BENCH_RUNS:-8}"
JOBS=2
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== kill_resume_smoke: $BIN (runs/point=$IPDA_BENCH_RUNS, kill after ${DELAY}s)"

# Reference: uninterrupted run, no journal.
"$BIN" --jobs "$JOBS" > "$WORK/clean.out" 2> "$WORK/clean.err"
CLEAN_EXIT=$?
if [ "$CLEAN_EXIT" -ne 0 ]; then
  echo "FAIL: clean run exited $CLEAN_EXIT"
  cat "$WORK/clean.err"
  exit 1
fi

# Interrupted run: journal on, SIGTERM mid-flight.
"$BIN" --jobs "$JOBS" --journal "$WORK/sweep.jsonl" \
    > "$WORK/interrupted.out" 2> "$WORK/interrupted.err" &
PID=$!
sleep "$DELAY"
kill -TERM "$PID" 2>/dev/null
wait "$PID"
INT_EXIT=$?

if [ "$INT_EXIT" -eq 75 ]; then
  echo "-- interrupted run drained (exit 75), $(grep -c '"type":"run"' \
      "$WORK/sweep.jsonl" || true) run records journaled"
elif [ "$INT_EXIT" -eq 0 ]; then
  echo "-- interrupted run finished before the signal landed"
  if ! diff -q "$WORK/clean.out" "$WORK/interrupted.out" > /dev/null; then
    echo "FAIL: journaled run output differs from clean run"
    exit 1
  fi
else
  echo "FAIL: interrupted run exited $INT_EXIT (want 0 or 75)"
  cat "$WORK/interrupted.err"
  exit 1
fi

# Resume and require byte-identical output to the uninterrupted run.
"$BIN" --jobs "$JOBS" --resume "$WORK/sweep.jsonl" \
    > "$WORK/resumed.out" 2> "$WORK/resumed.err"
RES_EXIT=$?
if [ "$RES_EXIT" -ne 0 ]; then
  echo "FAIL: resumed run exited $RES_EXIT"
  cat "$WORK/resumed.err"
  exit 1
fi
if ! diff "$WORK/clean.out" "$WORK/resumed.out"; then
  echo "FAIL: resumed output is not byte-identical to the clean run"
  exit 1
fi

echo "OK: resumed output byte-identical to uninterrupted run"
