#!/usr/bin/env bash
# Kill-and-resume smoke test for the crash-tolerant sweep executor.
#
# For each signal in SIGTERM (graceful drain) and SIGKILL (hard crash —
# nothing flushes, the journal may end in a torn line): starts a
# journaled sweep, signals it mid-flight, resumes from the journal, and
# requires the resumed stdout to be byte-identical to an uninterrupted
# run — the determinism contract of the sweep executor.
#
# The SIGKILL phase additionally appends a torn partial record to the
# journal before resuming, simulating a crash mid-write(2): replay must
# skip the torn tail, never refuse the resume.
#
#   usage: kill_resume_smoke.sh <bench-binary> [kill-delay-seconds]
#
# Exits 0 on success. The interrupted process may legitimately finish
# before the signal lands (exit 0), drain (exit 75, SIGTERM only), or
# die by the signal (128+signo); anything else fails the smoke.

set -u

BIN="${1:?usage: kill_resume_smoke.sh <bench-binary> [kill-delay-seconds]}"
DELAY="${2:-1}"

export IPDA_BENCH_RUNS="${IPDA_BENCH_RUNS:-8}"
JOBS=2
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "== kill_resume_smoke: $BIN (runs/point=$IPDA_BENCH_RUNS, kill after ${DELAY}s)"

# Reference: uninterrupted run, no journal.
"$BIN" --jobs "$JOBS" > "$WORK/clean.out" 2> "$WORK/clean.err"
CLEAN_EXIT=$?
if [ "$CLEAN_EXIT" -ne 0 ]; then
  echo "FAIL: clean run exited $CLEAN_EXIT"
  cat "$WORK/clean.err"
  exit 1
fi

for SIG in TERM KILL; do
  JOURNAL="$WORK/sweep_$SIG.jsonl"
  echo "-- phase SIG$SIG"

  # Interrupted run: journal on, signal mid-flight.
  "$BIN" --jobs "$JOBS" --journal "$JOURNAL" \
      > "$WORK/interrupted.out" 2> "$WORK/interrupted.err" &
  PID=$!
  sleep "$DELAY"
  kill "-$SIG" "$PID" 2>/dev/null
  wait "$PID"
  INT_EXIT=$?

  # 128+signo: the signal killed it (SIGKILL always; SIGTERM only if the
  # drain handler lost the race).
  SIG_EXIT=143
  [ "$SIG" = "KILL" ] && SIG_EXIT=137
  if [ "$INT_EXIT" -eq 75 ] || [ "$INT_EXIT" -eq "$SIG_EXIT" ]; then
    echo "   interrupted (exit $INT_EXIT), $(grep -c '"type":"run"' \
        "$JOURNAL" 2>/dev/null || true) run records journaled"
  elif [ "$INT_EXIT" -eq 0 ]; then
    echo "   interrupted run finished before the signal landed"
    if ! diff -q "$WORK/clean.out" "$WORK/interrupted.out" > /dev/null; then
      echo "FAIL: journaled run output differs from clean run"
      exit 1
    fi
  else
    echo "FAIL: interrupted run exited $INT_EXIT (want 0, 75, or $SIG_EXIT)"
    cat "$WORK/interrupted.err"
    exit 1
  fi

  if [ "$SIG" = "KILL" ] && [ -s "$JOURNAL" ]; then
    # Simulate the unluckiest SIGKILL: death mid-write leaves a torn,
    # newline-less record at the journal tail.
    printf '{"type":"run","index":0,"seed":123,"at' >> "$JOURNAL"
  fi

  # Resume and require byte-identical output to the uninterrupted run.
  "$BIN" --jobs "$JOBS" --resume "$JOURNAL" \
      > "$WORK/resumed.out" 2> "$WORK/resumed.err"
  RES_EXIT=$?
  if [ "$RES_EXIT" -ne 0 ]; then
    echo "FAIL: resumed run exited $RES_EXIT"
    cat "$WORK/resumed.err"
    exit 1
  fi
  if ! diff "$WORK/clean.out" "$WORK/resumed.out"; then
    echo "FAIL: resumed output is not byte-identical to the clean run"
    exit 1
  fi
  echo "   resumed output byte-identical to uninterrupted run"
done

# Torn-header resume: a crash before the first fsync'd line completes
# must read as an empty journal (fresh start), not refuse the resume.
printf '{"type":"header","vers' > "$WORK/torn_header.jsonl"
"$BIN" --jobs "$JOBS" --resume "$WORK/torn_header.jsonl" \
    > "$WORK/torn.out" 2> "$WORK/torn.err"
TORN_EXIT=$?
if [ "$TORN_EXIT" -ne 0 ]; then
  echo "FAIL: torn-header resume exited $TORN_EXIT"
  cat "$WORK/torn.err"
  exit 1
fi
if ! diff "$WORK/clean.out" "$WORK/torn.out"; then
  echo "FAIL: torn-header resume output differs from clean run"
  exit 1
fi
echo "-- torn-header journal resumed as a fresh start, byte-identical"

echo "OK: kill-and-resume byte-identical for SIGTERM, SIGKILL, torn header"
