#!/usr/bin/env bash
# Doc-lint: keep the flag documentation honest.
#
# Extracts every `--flag` token mentioned in README.md and EXPERIMENTS.md
# and diffs the set against the union of the live `--help` output of
# ipda_sim, metrics_report, and every bench binary. Fails on
#   * phantom flags  — documented but absent from every binary's --help
#   * undocumented flags — live in some --help but never mentioned in docs
#   * table drift — user-facing flags that are alive but appear in no
#     markdown flag-table row (`| `--flag` | ... |`), or table rows
#     naming flags no binary implements. Prose mentions alone don't
#     satisfy this one: the tables are the reference the docs point
#     users at, so that's where every real flag must land.
#
# Usage: scripts/check_doc_flags.sh [build-dir]   (default: ./build)
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

DOCS=(README.md EXPERIMENTS.md)

# Flags owned by tools outside this repo that the docs legitimately
# mention (ctest/cmake/gtest/google-benchmark command lines).
IGNORE_RE='^--(gtest[a-z_-]*|benchmark[a-z_-]*|build|test-dir|output-on-failure|label-regex|parallel|rerun-failed|version)$'

# Dispatcher-internal worker flags: documented in prose as "not for
# interactive use", deliberately kept out of the user-facing tables.
INTERNAL_RE='^--worker-(shard|range|heartbeat)$'

binaries=()
for bin in "$BUILD_DIR"/src/ipda_sim "$BUILD_DIR"/src/metrics_report \
           "$BUILD_DIR"/bench/*; do
  [[ -f "$bin" && -x "$bin" ]] || continue
  # micro_benchmarks is a google-benchmark binary with its own flag
  # namespace; everything else prints the util::FlagSet usage format.
  [[ "$(basename "$bin")" == micro_benchmarks ]] && continue
  binaries+=("$bin")
done
if [[ ${#binaries[@]} -eq 0 ]]; then
  echo "check_doc_flags: no binaries under '$BUILD_DIR' — build first" >&2
  exit 2
fi

# util::FlagSet usage lines look like:  `  --name (type, default ...): ...`
live_flags="$(
  for bin in "${binaries[@]}"; do
    "$bin" --help
  done | grep -oE '^[[:space:]]+--[a-z][a-z0-9-]+ \(' |
    grep -oE -- '--[a-z][a-z0-9-]+' | sort -u
)"

doc_flags="$(
  grep -ohE -- '--[a-z][a-z0-9_-]+' "${DOCS[@]}" | sort -u |
    grep -vE "$IGNORE_RE" || true
)"

# Flags named inside markdown table rows only — the user-facing tables.
table_flags="$(
  grep -hE '^\|' "${DOCS[@]}" |
    grep -ohE -- '--[a-z][a-z0-9_-]+' | sort -u |
    grep -vE "$IGNORE_RE" || true
)"

phantom="$(comm -23 <(echo "$doc_flags") <(echo "$live_flags"))"
undocumented="$(comm -13 <(echo "$doc_flags") <(echo "$live_flags"))"
not_in_tables="$(comm -13 <(echo "$table_flags") <(echo "$live_flags") |
  grep -vE "$INTERNAL_RE" || true)"
stale_table_rows="$(comm -23 <(echo "$table_flags") <(echo "$live_flags"))"

status=0
if [[ -n "$phantom" ]]; then
  echo "PHANTOM flags (documented in ${DOCS[*]} but not in any --help):"
  echo "$phantom" | sed 's/^/  /'
  status=1
fi
if [[ -n "$undocumented" ]]; then
  echo "UNDOCUMENTED flags (in a --help but never mentioned in ${DOCS[*]}):"
  echo "$undocumented" | sed 's/^/  /'
  status=1
fi
if [[ -n "$not_in_tables" ]]; then
  echo "FLAGS MISSING FROM TABLES (live but in no ${DOCS[*]} flag-table row):"
  echo "$not_in_tables" | sed 's/^/  /'
  status=1
fi
if [[ -n "$stale_table_rows" ]]; then
  echo "STALE TABLE ROWS (flag-table entries no binary implements):"
  echo "$stale_table_rows" | sed 's/^/  /'
  status=1
fi
if [[ $status -eq 0 ]]; then
  echo "check_doc_flags: OK ($(echo "$live_flags" | wc -l) flags," \
       "$(echo "$table_flags" | wc -l) in tables)"
fi
exit $status
