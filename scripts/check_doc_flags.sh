#!/usr/bin/env bash
# Doc-lint: keep the flag documentation honest.
#
# Extracts every `--flag` token mentioned in README.md and EXPERIMENTS.md
# and diffs the set against the union of the live `--help` output of
# ipda_sim, metrics_report, and every bench binary. Fails on
#   * phantom flags  — documented but absent from every binary's --help
#   * undocumented flags — live in some --help but never mentioned in docs
#
# Usage: scripts/check_doc_flags.sh [build-dir]   (default: ./build)
set -euo pipefail

BUILD_DIR="${1:-build}"
REPO_ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$REPO_ROOT"

DOCS=(README.md EXPERIMENTS.md)

# Flags owned by tools outside this repo that the docs legitimately
# mention (ctest/cmake/gtest/google-benchmark command lines).
IGNORE_RE='^--(gtest[a-z_-]*|benchmark[a-z_-]*|build|test-dir|output-on-failure|label-regex|parallel|rerun-failed|version)$'

binaries=()
for bin in "$BUILD_DIR"/src/ipda_sim "$BUILD_DIR"/src/metrics_report \
           "$BUILD_DIR"/bench/*; do
  [[ -f "$bin" && -x "$bin" ]] || continue
  # micro_benchmarks is a google-benchmark binary with its own flag
  # namespace; everything else prints the util::FlagSet usage format.
  [[ "$(basename "$bin")" == micro_benchmarks ]] && continue
  binaries+=("$bin")
done
if [[ ${#binaries[@]} -eq 0 ]]; then
  echo "check_doc_flags: no binaries under '$BUILD_DIR' — build first" >&2
  exit 2
fi

# util::FlagSet usage lines look like:  `  --name (type, default ...): ...`
live_flags="$(
  for bin in "${binaries[@]}"; do
    "$bin" --help
  done | grep -oE '^[[:space:]]+--[a-z][a-z0-9-]+ \(' |
    grep -oE -- '--[a-z][a-z0-9-]+' | sort -u
)"

doc_flags="$(
  grep -ohE -- '--[a-z][a-z0-9_-]+' "${DOCS[@]}" | sort -u |
    grep -vE "$IGNORE_RE" || true
)"

phantom="$(comm -23 <(echo "$doc_flags") <(echo "$live_flags"))"
undocumented="$(comm -13 <(echo "$doc_flags") <(echo "$live_flags"))"

status=0
if [[ -n "$phantom" ]]; then
  echo "PHANTOM flags (documented in ${DOCS[*]} but not in any --help):"
  echo "$phantom" | sed 's/^/  /'
  status=1
fi
if [[ -n "$undocumented" ]]; then
  echo "UNDOCUMENTED flags (in a --help but never mentioned in ${DOCS[*]}):"
  echo "$undocumented" | sed 's/^/  /'
  status=1
fi
if [[ $status -eq 0 ]]; then
  echo "check_doc_flags: OK ($(echo "$live_flags" | wc -l) flags documented)"
fi
exit $status
