#include "attack/collusion.h"

#include <algorithm>

namespace ipda::attack {

std::unique_ptr<Eavesdropper> MakeCollusionEavesdropper(
    const net::Topology& topology, const CollusionConfig& config) {
  std::vector<bool> colluder(topology.node_count(), false);
  for (net::NodeId id : config.colluders) colluder[id] = true;

  std::vector<crypto::Link> links;
  for (net::NodeId a = 0; a < topology.node_count(); ++a) {
    for (net::NodeId b : topology.neighbors(a)) {
      if (a < b) links.emplace_back(a, b);
    }
  }
  std::vector<bool> broken = BrokenByColluders(links, colluder);
  return std::make_unique<Eavesdropper>(topology.node_count(),
                                        std::move(links), std::move(broken));
}

CoordinatedPollution MakeCoordinatedPollution(const CollusionConfig& config,
                                              double delta_per_tree) {
  CoordinatedPollution out;
  out.hit_red = std::make_shared<bool>(false);
  out.hit_blue = std::make_shared<bool>(false);
  // Only the first colluder reached on each tree injects, so the deltas on
  // the two trees match exactly (the colluders coordinate out of band).
  auto injected_red = std::make_shared<bool>(false);
  auto injected_blue = std::make_shared<bool>(false);
  std::vector<net::NodeId> colluders = config.colluders;
  out.hook = [colluders, delta_per_tree, injected_red, injected_blue,
              hit_red = out.hit_red, hit_blue = out.hit_blue](
                 net::NodeId node, agg::TreeColor color,
                 agg::Vector& partial) {
    if (std::find(colluders.begin(), colluders.end(), node) ==
        colluders.end()) {
      return;
    }
    auto& injected =
        color == agg::TreeColor::kRed ? *injected_red : *injected_blue;
    if (injected) return;
    injected = true;
    for (double& component : partial) component += delta_per_tree;
    (color == agg::TreeColor::kRed ? *hit_red : *hit_blue) = true;
  };
  return out;
}

std::vector<net::NodeId> SampleColluders(size_t node_count, size_t count,
                                         util::Rng& rng) {
  std::vector<net::NodeId> out;
  if (node_count <= 1) return out;
  const size_t sensors = node_count - 1;
  for (size_t idx :
       rng.SampleWithoutReplacement(sensors, std::min(count, sensors))) {
    out.push_back(static_cast<net::NodeId>(idx + 1));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace ipda::attack
