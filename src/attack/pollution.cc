#include "attack/pollution.h"

#include <algorithm>
#include <utility>

namespace ipda::attack {

agg::IpdaProtocol::PollutionHook MakePollutionHook(PollutionConfig config) {
  return MakePollutionHook(std::move(config), nullptr);
}

agg::IpdaProtocol::PollutionHook MakePollutionHook(PollutionConfig config,
                                                   size_t* fired) {
  return [config = std::move(config), fired](
             net::NodeId node, agg::TreeColor, agg::Vector& partial) {
    if (std::find(config.attackers.begin(), config.attackers.end(), node) ==
        config.attackers.end()) {
      return;
    }
    for (double& component : partial) {
      component = (component + config.additive_delta) * config.scale;
    }
    if (fired != nullptr) *fired += 1;
  };
}

}  // namespace ipda::attack
