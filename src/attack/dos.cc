#include "attack/dos.h"

#include "util/check.h"

namespace ipda::attack {

PolluterLocalizer::PolluterLocalizer(size_t node_count)
    : node_count_(node_count) {
  IPDA_CHECK_GE(node_count, 2u);
}

util::Result<LocalizationResult> PolluterLocalizer::Locate(
    const RoundFn& run_round, size_t max_rounds) {
  std::vector<net::NodeId> suspects;
  suspects.reserve(node_count_ - 1);
  for (net::NodeId id = 1; id < node_count_; ++id) suspects.push_back(id);

  LocalizationResult result;
  uint64_t round = 0;
  while (suspects.size() > 1 && round < max_rounds) {
    // Exclude the first half of the suspect set this round.
    const size_t half = suspects.size() / 2;
    std::vector<net::NodeId> excluded(suspects.begin(),
                                      suspects.begin() + half);
    IPDA_ASSIGN_OR_RETURN(bool accepted, run_round(excluded, round));
    ++round;
    if (accepted) {
      // Pollution vanished: the polluter sat this round out.
      suspects = std::move(excluded);
    } else {
      // Still polluted: the polluter was active.
      suspects.assign(suspects.begin() + half, suspects.end());
    }
    result.suspect_sizes.push_back(suspects.size());
  }
  result.rounds = round;
  if (suspects.size() == 1) {
    result.found = true;
    result.suspect = suspects.front();
  }
  return result;
}

}  // namespace ipda::attack
