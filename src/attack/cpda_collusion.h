// Collusion attack against CPDA's polynomial masking.
//
// A CPDA member hands every co-member one evaluation of its degree-d
// masking polynomial. Each point alone reveals nothing; but d+1 colluding
// co-members pooling their points reconstruct the whole polynomial —
// constant term (the private value) included. PDA documents this
// threshold (d = 2 ⇒ 3-collusion); this module measures it on real
// protocol runs via CpdaProtocol::ShareObserver.

#ifndef IPDA_ATTACK_CPDA_COLLUSION_H_
#define IPDA_ATTACK_CPDA_COLLUSION_H_

#include <map>
#include <unordered_set>
#include <vector>

#include "agg/aggregate_function.h"
#include "agg/cpda/cpda_protocol.h"
#include "net/topology.h"

namespace ipda::attack {

struct CpdaCollusionReport {
  size_t victims_observed = 0;  // Non-colluders who shared with colluders.
  size_t victims_exposed = 0;   // Enough pooled points to reconstruct.
  double exposure_rate = 0.0;   // exposed / observed.
  // Reconstructed contribution vectors; tests verify them against truth.
  std::map<net::NodeId, agg::Vector> reconstructed;
};

class CpdaCollusionAnalysis {
 public:
  CpdaCollusionAnalysis(std::vector<net::NodeId> colluders,
                        size_t poly_degree);

  // Install via CpdaProtocol::SetShareObserver.
  agg::CpdaProtocol::ShareObserver Observer();

  // Pools the colluders' received points and reconstructs every victim
  // with >= poly_degree+1 of them.
  CpdaCollusionReport Evaluate() const;

 private:
  struct Point {
    double x;
    agg::Vector evaluation;
  };

  std::unordered_set<net::NodeId> colluders_;
  size_t poly_degree_;
  std::map<net::NodeId, std::vector<Point>> pooled_;  // Per victim.
};

}  // namespace ipda::attack

#endif  // IPDA_ATTACK_CPDA_COLLUSION_H_
