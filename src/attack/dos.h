// Persistent-polluter (DoS) mitigation: round-based localization (§III-D).
//
// A polluter that tampers every round forces the base station to reject
// every result. The paper's countermeasure: vary which sensors participate
// per round and bisect — if a round's result is rejected the polluter was
// among the active half, otherwise among the excluded half — localizing
// the malicious node in O(log N) rounds, after which it is excluded for
// good.

#ifndef IPDA_ATTACK_DOS_H_
#define IPDA_ATTACK_DOS_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "net/topology.h"
#include "util/result.h"

namespace ipda::attack {

struct LocalizationResult {
  bool found = false;
  net::NodeId suspect = net::kBroadcastId;
  size_t rounds = 0;                  // Aggregation rounds consumed.
  std::vector<size_t> suspect_sizes;  // |suspect set| after each round.
};

// One aggregation round with the given nodes excluded; returns whether the
// base station ACCEPTED the round's result.
using RoundFn = std::function<util::Result<bool>(
    const std::vector<net::NodeId>& excluded, uint64_t round_index)>;

class PolluterLocalizer {
 public:
  explicit PolluterLocalizer(size_t node_count);

  // Bisects the sensor id space {1..N-1}. Assumes a single non-colluding
  // persistent polluter (the paper's §III-D setting). `max_rounds` bounds
  // runaway loops when the assumption is violated.
  util::Result<LocalizationResult> Locate(const RoundFn& run_round,
                                          size_t max_rounds = 64);

 private:
  size_t node_count_;
};

}  // namespace ipda::attack

#endif  // IPDA_ATTACK_DOS_H_
