// Data-pollution attackers (§II-C): compromised aggregators that tamper
// with the intermediate result they forward. Built as IpdaProtocol
// PollutionHooks; the same hooks also pollute TAG-style baselines in
// benches by post-processing, since TAG has no defense to exercise.

#ifndef IPDA_ATTACK_POLLUTION_H_
#define IPDA_ATTACK_POLLUTION_H_

#include <vector>

#include "agg/ipda/protocol.h"
#include "net/topology.h"

namespace ipda::attack {

struct PollutionConfig {
  std::vector<net::NodeId> attackers;
  // partial[c] += additive_delta, then partial[c] *= scale, on every
  // component c. Identity: delta 0, scale 1.
  double additive_delta = 0.0;
  double scale = 1.0;
};

// Hook that applies the tampering whenever an attacker transmits. The
// returned hook also exposes how many times it fired through `fired`
// (owned by the hook's shared state; optional).
agg::IpdaProtocol::PollutionHook MakePollutionHook(PollutionConfig config);

// Variant that counts activations into *fired (must outlive the run).
agg::IpdaProtocol::PollutionHook MakePollutionHook(PollutionConfig config,
                                                   size_t* fired);

}  // namespace ipda::attack

#endif  // IPDA_ATTACK_POLLUTION_H_
