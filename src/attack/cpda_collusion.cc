#include "attack/cpda_collusion.h"

#include <utility>

#include "agg/cpda/interpolation.h"

namespace ipda::attack {

CpdaCollusionAnalysis::CpdaCollusionAnalysis(
    std::vector<net::NodeId> colluders, size_t poly_degree)
    : colluders_(colluders.begin(), colluders.end()),
      poly_degree_(poly_degree) {}

agg::CpdaProtocol::ShareObserver CpdaCollusionAnalysis::Observer() {
  return [this](net::NodeId from, net::NodeId to,
                const agg::Vector& evaluation) {
    if (from == to) return;                     // Kept share: never leaves.
    if (colluders_.count(from) > 0) return;     // Colluder's own value.
    if (colluders_.count(to) == 0) return;      // Honest recipient.
    pooled_[from].push_back(
        Point{static_cast<double>(to), evaluation});
  };
}

CpdaCollusionReport CpdaCollusionAnalysis::Evaluate() const {
  CpdaCollusionReport report;
  report.victims_observed = pooled_.size();
  const size_t needed = poly_degree_ + 1;
  for (const auto& [victim, points] : pooled_) {
    if (points.size() < needed) continue;
    std::vector<double> xs;
    xs.reserve(needed);
    for (size_t i = 0; i < needed; ++i) xs.push_back(points[i].x);
    const size_t arity = points.front().evaluation.size();
    agg::Vector value(arity, 0.0);
    bool ok = true;
    for (size_t c = 0; c < arity && ok; ++c) {
      std::vector<double> ys;
      ys.reserve(needed);
      for (size_t i = 0; i < needed; ++i) {
        ys.push_back(points[i].evaluation[c]);
      }
      auto coeffs = agg::InterpolateCoefficients(xs, ys);
      if (!coeffs.ok()) {
        ok = false;
        break;
      }
      value[c] = (*coeffs)[0];  // The private constant term.
    }
    if (!ok) continue;
    report.victims_exposed += 1;
    report.reconstructed[victim] = std::move(value);
  }
  report.exposure_rate =
      report.victims_observed == 0
          ? 0.0
          : static_cast<double>(report.victims_exposed) /
                static_cast<double>(report.victims_observed);
  return report;
}

}  // namespace ipda::attack
