// Colluding-neighbor adversary — the paper's future-work direction (§VI).
//
// c captured nodes pool everything they hold: their link keys (so every
// incident link leaks) and the slices addressed to them. Privacy-wise this
// reduces to an Eavesdropper whose broken-link set is "links incident to a
// colluder"; integrity-wise colluders on *both* trees can pollute
// consistently (same delta on red and blue), which defeats the Th check —
// quantified by benches as the scheme's documented limitation.

#ifndef IPDA_ATTACK_COLLUSION_H_
#define IPDA_ATTACK_COLLUSION_H_

#include <memory>
#include <vector>

#include "attack/eavesdropper.h"
#include "attack/pollution.h"
#include "crypto/pairwise.h"
#include "net/topology.h"
#include "util/random.h"

namespace ipda::attack {

struct CollusionConfig {
  std::vector<net::NodeId> colluders;
};

// Eavesdropper primed with the colluders' pooled key material.
std::unique_ptr<Eavesdropper> MakeCollusionEavesdropper(
    const net::Topology& topology, const CollusionConfig& config);

// Coordinated pollution: every colluder applies the same additive delta on
// whichever tree it sits, so when the colluder set covers both trees the
// totals move together and |S_red − S_blue| stays under Th. Returns the
// hook plus flags (set after the run) saying which trees were actually hit.
struct CoordinatedPollution {
  agg::IpdaProtocol::PollutionHook hook;
  std::shared_ptr<bool> hit_red;
  std::shared_ptr<bool> hit_blue;
};

CoordinatedPollution MakeCoordinatedPollution(
    const CollusionConfig& config, double delta_per_tree);

// Samples a random colluder set of size c from {1..N-1}.
std::vector<net::NodeId> SampleColluders(size_t node_count, size_t count,
                                         util::Rng& rng);

}  // namespace ipda::attack

#endif  // IPDA_ATTACK_COLLUSION_H_
