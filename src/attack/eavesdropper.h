// Eavesdropping adversary evaluation (§II-C, §IV-A-3).
//
// The adversary is a global passive listener that can decrypt the subset of
// links given by a LinkCompromiseReport (however produced — uniform p_x,
// node capture, or collusion). Subscribed as the protocol's SliceObserver,
// it records every slice's (from, to, color, value) and afterwards decides,
// per node, whether the reading was disclosed:
//
//  * all l slices of one color were transmitted (leaf, or the other-color
//    set of an aggregator) over broken links            → disclosed; or
//  * the l-1 transmitted same-color slices AND every incoming slice link
//    were broken (the kept d_ii then follows from the node's plaintext
//    Phase-III partial: r(i) − Σ incoming)              → disclosed.
//
// This is exactly the case analysis behind the paper's Eq. (11).

#ifndef IPDA_ATTACK_EAVESDROPPER_H_
#define IPDA_ATTACK_EAVESDROPPER_H_

#include <unordered_map>
#include <vector>

#include "agg/aggregate_function.h"
#include "agg/ipda/messages.h"
#include "agg/ipda/protocol.h"
#include "crypto/pairwise.h"
#include "net/topology.h"

namespace ipda::attack {

struct DisclosureReport {
  std::vector<bool> disclosed;  // Indexed by NodeId; [0] (BS) always false.
  size_t disclosed_count = 0;
  size_t observed_count = 0;    // Nodes that produced any slices.
  // disclosed_count / observed_count (0 if nothing observed): the
  // empirical P_disclose of Fig. 5.
  double disclosure_rate = 0.0;
  // For every disclosed node, the value the adversary reconstructed —
  // tests verify it equals the true contribution.
  std::unordered_map<net::NodeId, agg::Vector> reconstructed;
};

class Eavesdropper {
 public:
  // `links` + parallel `broken` flags define what the adversary can
  // decrypt. Node count sizes the per-node tables.
  Eavesdropper(size_t node_count, std::vector<crypto::Link> links,
               std::vector<bool> broken);

  // Returns the observer to install via IpdaProtocol::SetSliceObserver or
  // IpdaRunHooks::slice_observer.
  agg::IpdaProtocol::SliceObserver Observer();

  // True if the adversary can decrypt traffic on (a, b) (symmetric).
  bool LinkBroken(net::NodeId a, net::NodeId b) const;

  // Evaluates disclosure over everything recorded so far.
  DisclosureReport Evaluate() const;

 private:
  struct SliceRecord {
    net::NodeId to;
    agg::TreeColor color;
    agg::Vector value;
    bool kept_local;
  };

  void Record(net::NodeId from, net::NodeId to, agg::TreeColor color,
              const agg::Vector& value);

  size_t node_count_;
  // Broken links as a hash set of packed (lo, hi) pairs.
  std::unordered_map<uint64_t, bool> broken_;
  std::vector<std::vector<SliceRecord>> outgoing_;  // Per source node.
  std::vector<std::vector<net::NodeId>> incoming_;  // Slice senders per node.
};

// Convenience: broken set for a colluding-nodes adversary — every link
// incident to a colluder leaks (the colluders hold those keys). Used by
// attack/collusion.h.
std::vector<bool> BrokenByColluders(const std::vector<crypto::Link>& links,
                                    const std::vector<bool>& colluder);

}  // namespace ipda::attack

#endif  // IPDA_ATTACK_EAVESDROPPER_H_
