#include "attack/eavesdropper.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace ipda::attack {
namespace {

uint64_t PackLink(net::NodeId a, net::NodeId b) {
  const net::NodeId lo = std::min(a, b);
  const net::NodeId hi = std::max(a, b);
  return (static_cast<uint64_t>(lo) << 32) | hi;
}

}  // namespace

Eavesdropper::Eavesdropper(size_t node_count, std::vector<crypto::Link> links,
                           std::vector<bool> broken)
    : node_count_(node_count),
      outgoing_(node_count),
      incoming_(node_count) {
  IPDA_CHECK_EQ(links.size(), broken.size());
  for (size_t i = 0; i < links.size(); ++i) {
    broken_[PackLink(links[i].first, links[i].second)] = broken[i];
  }
}

agg::IpdaProtocol::SliceObserver Eavesdropper::Observer() {
  return [this](net::NodeId from, net::NodeId to, agg::TreeColor color,
                const agg::Vector& value) {
    Record(from, to, color, value);
  };
}

bool Eavesdropper::LinkBroken(net::NodeId a, net::NodeId b) const {
  auto it = broken_.find(PackLink(a, b));
  return it != broken_.end() && it->second;
}

void Eavesdropper::Record(net::NodeId from, net::NodeId to,
                          agg::TreeColor color, const agg::Vector& value) {
  IPDA_CHECK_LT(from, node_count_);
  IPDA_CHECK_LT(to, node_count_);
  outgoing_[from].push_back(SliceRecord{to, color, value, from == to});
  if (from != to) incoming_[to].push_back(from);
}

DisclosureReport Eavesdropper::Evaluate() const {
  DisclosureReport report;
  report.disclosed.assign(node_count_, false);
  for (net::NodeId node = 1; node < node_count_; ++node) {
    const auto& out = outgoing_[node];
    if (out.empty()) continue;
    report.observed_count += 1;

    // Incoming slice links all broken? (Needed to peel the kept d_ii.)
    bool all_incoming_broken = true;
    for (net::NodeId sender : incoming_[node]) {
      if (!LinkBroken(sender, node)) {
        all_incoming_broken = false;
        break;
      }
    }

    for (agg::TreeColor color : {agg::TreeColor::kRed,
                                 agg::TreeColor::kBlue}) {
      bool any = false;
      bool kept_local = false;
      bool all_tx_broken = true;
      agg::Vector sum;
      for (const SliceRecord& record : out) {
        if (record.color != color) continue;
        any = true;
        if (sum.empty()) sum.assign(record.value.size(), 0.0);
        if (record.kept_local) {
          kept_local = true;
          // Reconstructable only through the incoming-peel path; value
          // still contributes to the (oracle-verified) reconstruction.
          agg::AddInto(sum, record.value);
          continue;
        }
        if (!LinkBroken(node, record.to)) {
          all_tx_broken = false;
          break;
        }
        agg::AddInto(sum, record.value);
      }
      if (!any || !all_tx_broken) continue;
      if (kept_local && !all_incoming_broken) continue;
      report.disclosed[node] = true;
      report.reconstructed[node] = std::move(sum);
      break;
    }
    if (report.disclosed[node]) report.disclosed_count += 1;
  }
  report.disclosure_rate =
      report.observed_count == 0
          ? 0.0
          : static_cast<double>(report.disclosed_count) /
                static_cast<double>(report.observed_count);
  return report;
}

std::vector<bool> BrokenByColluders(const std::vector<crypto::Link>& links,
                                    const std::vector<bool>& colluder) {
  std::vector<bool> broken;
  broken.reserve(links.size());
  for (const auto& [a, b] : links) {
    broken.push_back(colluder[a] || colluder[b]);
  }
  return broken;
}

}  // namespace ipda::attack
