#include "util/flags.h"

#include <cstdlib>

#include "util/check.h"

namespace ipda::util {
namespace {

std::string TypeName(int type) {
  switch (type) {
    case 0:
      return "string";
    case 1:
      return "int";
    case 2:
      return "double";
    case 3:
      return "bool";
  }
  return "?";
}

}  // namespace

void FlagSet::DefineString(const std::string& name, const std::string& def,
                           const std::string& help) {
  IPDA_CHECK(flags_.emplace(name, Flag{Type::kString, help, def, def}).second);
  order_.push_back(name);
}

void FlagSet::DefineInt(const std::string& name, int64_t def,
                        const std::string& help) {
  IPDA_CHECK(flags_
                 .emplace(name, Flag{Type::kInt, help,
                                     std::to_string(def),
                                     std::to_string(def)})
                 .second);
  order_.push_back(name);
}

void FlagSet::DefineDouble(const std::string& name, double def,
                           const std::string& help) {
  IPDA_CHECK(flags_
                 .emplace(name, Flag{Type::kDouble, help,
                                     std::to_string(def),
                                     std::to_string(def)})
                 .second);
  order_.push_back(name);
}

void FlagSet::DefineBool(const std::string& name, bool def,
                         const std::string& help) {
  IPDA_CHECK(flags_
                 .emplace(name, Flag{Type::kBool, help,
                                     def ? "true" : "false",
                                     def ? "true" : "false"})
                 .second);
  order_.push_back(name);
}

Status FlagSet::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return InvalidArgumentError("unknown flag --" + name);
  }
  Flag& flag = it->second;
  if (flag.set) {
    // A repeated flag is almost always a copy-paste slip; last-one-wins
    // would silently discard half the command line.
    return InvalidArgumentError("duplicate flag --" + name +
                                " (already set to '" + flag.value + "')");
  }
  char* end = nullptr;
  switch (flag.type) {
    case Type::kString:
      break;
    case Type::kInt: {
      (void)std::strtoll(value.c_str(), &end, 10);
      if (value.empty() || *end != '\0') {
        return InvalidArgumentError("flag --" + name +
                                    " expects an integer, got '" + value +
                                    "'");
      }
      break;
    }
    case Type::kDouble: {
      (void)std::strtod(value.c_str(), &end);
      if (value.empty() || *end != '\0') {
        return InvalidArgumentError("flag --" + name +
                                    " expects a number, got '" + value +
                                    "'");
      }
      break;
    }
    case Type::kBool: {
      if (value != "true" && value != "false" && value != "1" &&
          value != "0") {
        return InvalidArgumentError("flag --" + name +
                                    " expects true/false, got '" + value +
                                    "'");
      }
      break;
    }
  }
  flag.value = value;
  flag.set = true;
  return OkStatus();
}

Status FlagSet::Parse(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      return InvalidArgumentError("unexpected positional argument '" + arg +
                                  "'");
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      IPDA_RETURN_IF_ERROR(SetValue(arg.substr(0, eq), arg.substr(eq + 1)));
      continue;
    }
    // --flag / --no-flag for bools; --key value otherwise.
    auto it = flags_.find(arg);
    if (it != flags_.end() && it->second.type == Type::kBool) {
      IPDA_RETURN_IF_ERROR(SetValue(arg, "true"));
      continue;
    }
    if (arg.rfind("no-", 0) == 0) {
      auto neg = flags_.find(arg.substr(3));
      if (neg != flags_.end() && neg->second.type == Type::kBool) {
        IPDA_RETURN_IF_ERROR(SetValue(arg.substr(3), "false"));
        continue;
      }
    }
    if (it == flags_.end()) {
      return InvalidArgumentError("unknown flag --" + arg);
    }
    if (i + 1 >= argc) {
      return InvalidArgumentError("flag --" + arg + " is missing a value");
    }
    IPDA_RETURN_IF_ERROR(SetValue(arg, argv[++i]));
  }
  return OkStatus();
}

const FlagSet::Flag& FlagSet::Require(const std::string& name,
                                      Type type) const {
  auto it = flags_.find(name);
  IPDA_CHECK(it != flags_.end());
  IPDA_CHECK(it->second.type == type);
  return it->second;
}

std::string FlagSet::GetString(const std::string& name) const {
  return Require(name, Type::kString).value;
}

int64_t FlagSet::GetInt(const std::string& name) const {
  return std::strtoll(Require(name, Type::kInt).value.c_str(), nullptr, 10);
}

double FlagSet::GetDouble(const std::string& name) const {
  return std::strtod(Require(name, Type::kDouble).value.c_str(), nullptr);
}

bool FlagSet::GetBool(const std::string& name) const {
  const std::string& v = Require(name, Type::kBool).value;
  return v == "true" || v == "1";
}

bool FlagSet::WasSet(const std::string& name) const {
  auto it = flags_.find(name);
  IPDA_CHECK(it != flags_.end());
  return it->second.set;
}

std::string FlagSet::Canonical(
    const std::vector<std::string>& exclude) const {
  std::string out;
  for (const std::string& name : order_) {
    bool skip = false;
    for (const std::string& excluded : exclude) {
      if (name == excluded) {
        skip = true;
        break;
      }
    }
    if (skip) continue;
    if (!out.empty()) out += ',';
    out += name + "=" + flags_.at(name).value;
  }
  return out;
}

std::string FlagSet::Usage(const std::string& program) const {
  std::string out = "usage: " + program + " [flags]\n";
  for (const std::string& name : order_) {
    const Flag& flag = flags_.at(name);
    out += "  --" + name + " (" + TypeName(static_cast<int>(flag.type)) +
           ", default " + flag.default_value + "): " + flag.help + "\n";
  }
  return out;
}

}  // namespace ipda::util
