#include "util/proc.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/time.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <utility>

namespace ipda::util {
namespace {

std::string Errno(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

// Child-side redirect; async-signal-safe (open/dup2 only). Returns false
// on failure so the child can _exit(127) like a failed exec.
bool RedirectTo(const char* path, int target_fd) {
  int fd;
  do {
    fd = ::open(path, O_WRONLY | O_CREAT | O_TRUNC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return false;
  if (::dup2(fd, target_fd) < 0) {
    ::close(fd);
    return false;
  }
  if (fd != target_fd) ::close(fd);
  return true;
}

WaitOutcome DecodeWaitStatus(int status) {
  WaitOutcome outcome;
  if (WIFSIGNALED(status)) {
    outcome.signaled = true;
    outcome.term_signal = WTERMSIG(status);
  } else if (WIFEXITED(status)) {
    outcome.exit_code = WEXITSTATUS(status);
  }
  return outcome;
}

}  // namespace

Result<int64_t> SpawnProcess(const std::vector<std::string>& argv,
                             const SpawnOptions& options) {
  if (argv.empty()) return InvalidArgumentError("spawn of empty argv");
  std::vector<char*> args;
  args.reserve(argv.size() + 1);
  for (const std::string& arg : argv) {
    args.push_back(const_cast<char*>(arg.c_str()));
  }
  args.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) return UnavailableError(Errno("fork"));
  if (pid == 0) {
    // Child: only async-signal-safe calls until execv (the parent may
    // hold locks in other threads).
    if (!options.stdout_path.empty() &&
        !RedirectTo(options.stdout_path.c_str(), STDOUT_FILENO)) {
      _exit(127);
    }
    if (!options.stderr_path.empty() &&
        !RedirectTo(options.stderr_path.c_str(), STDERR_FILENO)) {
      _exit(127);
    }
    ::execv(args[0], args.data());
    _exit(127);
  }
  return static_cast<int64_t>(pid);
}

Result<WaitOutcome> TryWaitProcess(int64_t pid) {
  int status = 0;
  pid_t reaped;
  do {
    reaped = ::waitpid(static_cast<pid_t>(pid), &status, WNOHANG);
  } while (reaped < 0 && errno == EINTR);
  if (reaped < 0) return UnavailableError(Errno("waitpid"));
  if (reaped == 0) {
    WaitOutcome outcome;
    outcome.running = true;
    return outcome;
  }
  return DecodeWaitStatus(status);
}

Result<WaitOutcome> WaitProcess(int64_t pid) {
  int status = 0;
  pid_t reaped;
  do {
    reaped = ::waitpid(static_cast<pid_t>(pid), &status, 0);
  } while (reaped < 0 && errno == EINTR);
  if (reaped < 0) return UnavailableError(Errno("waitpid"));
  return DecodeWaitStatus(status);
}

Status KillProcess(int64_t pid, int signum) {
  if (::kill(static_cast<pid_t>(pid), signum) == 0) return OkStatus();
  if (errno == ESRCH) return OkStatus();
  return UnavailableError(Errno("kill"));
}

bool PidAlive(int64_t pid) {
  if (pid <= 0) return false;
  if (::kill(static_cast<pid_t>(pid), 0) == 0) return true;
  return errno == EPERM;
}

Status TouchFile(const std::string& path) {
  // Create if missing (a fresh file's mtime is already "now")...
  int fd;
  do {
    fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return UnavailableError(Errno("cannot touch " + path));
  ::close(fd);
  // ...and bump the mtime when it already existed.
  if (::utimensat(AT_FDCWD, path.c_str(), nullptr, 0) != 0) {
    return UnavailableError(Errno("utimensat of " + path));
  }
  return OkStatus();
}

Result<double> FileAgeSeconds(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) {
    return UnavailableError(Errno("stat of " + path));
  }
  struct timespec now;
  ::clock_gettime(CLOCK_REALTIME, &now);
  const double age =
      (static_cast<double>(now.tv_sec) - static_cast<double>(st.st_mtim.tv_sec)) +
      (static_cast<double>(now.tv_nsec) -
       static_cast<double>(st.st_mtim.tv_nsec)) *
          1e-9;
  return age < 0.0 ? 0.0 : age;
}

Status MakeDirs(const std::string& path) {
  if (path.empty()) return InvalidArgumentError("mkdir of empty path");
  std::string partial;
  partial.reserve(path.size());
  size_t start = 0;
  while (start <= path.size()) {
    const size_t slash = path.find('/', start);
    const size_t end = slash == std::string::npos ? path.size() : slash;
    partial.assign(path, 0, end);
    start = end + 1;
    if (partial.empty()) continue;  // Leading '/'.
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return UnavailableError(Errno("mkdir " + partial));
    }
    if (slash == std::string::npos) break;
  }
  return OkStatus();
}

LockFile::LockFile(LockFile&& other) noexcept : path_(std::move(other.path_)) {
  other.path_.clear();
}

LockFile& LockFile::operator=(LockFile&& other) noexcept {
  if (this != &other) {
    Release();
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

LockFile::~LockFile() { Release(); }

void LockFile::Release() {
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

Result<LockFile> LockFile::Acquire(const std::string& path) {
  for (int round = 0; round < 2; ++round) {
    int fd;
    do {
      fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL | O_CLOEXEC,
                  0644);
    } while (fd < 0 && errno == EINTR);
    if (fd >= 0) {
      char buf[32];
      const int n = std::snprintf(buf, sizeof(buf), "%lld\n",
                                  static_cast<long long>(::getpid()));
      (void)!::write(fd, buf, static_cast<size_t>(n));
      ::fsync(fd);
      ::close(fd);
      return LockFile(path);
    }
    if (errno != EEXIST) {
      return UnavailableError(Errno("cannot create lockfile " + path));
    }
    // Held or stale? The file records the owner pid.
    int64_t owner = 0;
    {
      std::FILE* f = std::fopen(path.c_str(), "r");
      if (f != nullptr) {
        long long parsed = 0;
        if (std::fscanf(f, "%lld", &parsed) == 1) owner = parsed;
        std::fclose(f);
      }
    }
    if (owner > 0 && PidAlive(owner)) {
      return FailedPreconditionError("lockfile " + path +
                                     " is held by live pid " +
                                     std::to_string(owner));
    }
    // Stale (owner dead or unreadable): break it and retry once. The
    // unlink+recreate race between two breakers resolves via O_EXCL.
    ::unlink(path.c_str());
  }
  return UnavailableError("lockfile " + path +
                          " kept reappearing while breaking a stale lock");
}

}  // namespace ipda::util
