// Result<T>: a value or a Status, never both. Minimal expected-style type so
// library code can return errors without exceptions.

#ifndef IPDA_UTIL_RESULT_H_
#define IPDA_UTIL_RESULT_H_

#include <utility>
#include <variant>

#include "util/check.h"
#include "util/status.h"

namespace ipda::util {

template <typename T>
class Result {
 public:
  // Implicit from both T and Status keeps call sites terse:
  //   return InvalidArgumentError("...");
  //   return computed_value;
  Result(T value) : state_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status)                          // NOLINT(runtime/explicit)
      : state_(std::move(status)) {
    IPDA_CHECK(!std::get<Status>(state_).ok());  // OK must carry a value.
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) = default;
  Result& operator=(Result&&) = default;

  bool ok() const { return std::holds_alternative<T>(state_); }

  // Status of the held error, or OK when a value is present.
  Status status() const {
    if (ok()) return OkStatus();
    return std::get<Status>(state_);
  }

  // Value accessors; calling these on an error Result aborts.
  const T& value() const& {
    IPDA_CHECK(ok());
    return std::get<T>(state_);
  }
  T& value() & {
    IPDA_CHECK(ok());
    return std::get<T>(state_);
  }
  T&& value() && {
    IPDA_CHECK(ok());
    return std::get<T>(std::move(state_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> state_;
};

}  // namespace ipda::util

// Evaluates a Result<T> expression; on error returns its Status, otherwise
// moves the value into `lhs` (a declaration or existing lvalue).
#define IPDA_ASSIGN_OR_RETURN(lhs, expr)                       \
  IPDA_ASSIGN_OR_RETURN_IMPL_(                                 \
      IPDA_RESULT_CONCAT_(ipda_result_, __LINE__), lhs, expr)

#define IPDA_RESULT_CONCAT_INNER_(a, b) a##b
#define IPDA_RESULT_CONCAT_(a, b) IPDA_RESULT_CONCAT_INNER_(a, b)

#define IPDA_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr) \
  auto tmp = (expr);                                \
  if (!tmp.ok()) return tmp.status();               \
  lhs = std::move(tmp).value()

#endif  // IPDA_UTIL_RESULT_H_
