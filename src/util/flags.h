// Minimal --key=value command-line parsing for the tools and examples.
//
// Supported forms: --key=value, --key value, --flag (bool true),
// --no-flag (bool false). Unknown keys are an error so typos don't
// silently fall back to defaults, and a flag repeated on one command
// line is an error so last-one-wins never hides half the invocation.

#ifndef IPDA_UTIL_FLAGS_H_
#define IPDA_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace ipda::util {

class FlagSet {
 public:
  FlagSet() = default;

  // Declares a flag with its default and help text. Call before Parse.
  void DefineString(const std::string& name, const std::string& def,
                    const std::string& help);
  void DefineInt(const std::string& name, int64_t def,
                 const std::string& help);
  void DefineDouble(const std::string& name, double def,
                    const std::string& help);
  void DefineBool(const std::string& name, bool def,
                  const std::string& help);

  // Parses argv (excluding argv[0]). Returns an error for unknown flags,
  // malformed values, or missing values.
  Status Parse(int argc, const char* const* argv);

  // Typed access; aborts on undeclared names (programming error).
  std::string GetString(const std::string& name) const;
  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  // True if the flag was explicitly set on the command line.
  bool WasSet(const std::string& name) const;

  // Canonical "name=value,..." string of every flag (current values, in
  // declaration order), minus the names in `exclude`. Sweep tools hash
  // this into their run journal header so a --resume against a journal
  // written under different settings is rejected instead of silently
  // mixing configurations.
  std::string Canonical(const std::vector<std::string>& exclude = {}) const;

  // Usage text listing every declared flag with default and help.
  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kString, kInt, kDouble, kBool };
  struct Flag {
    Type type;
    std::string help;
    std::string value;          // Current value, canonical string form.
    std::string default_value;  // As declared; shown in Usage().
    bool set = false;
  };

  Status SetValue(const std::string& name, const std::string& value);
  const Flag& Require(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> order_;
};

}  // namespace ipda::util

#endif  // IPDA_UTIL_FLAGS_H_
