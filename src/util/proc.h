// Process-control primitives for the multi-process sweep fabric:
// spawn/wait/kill of worker processes, pid liveness probes, mtime-based
// file freshness (worker heartbeats), and a pid-stamped lockfile that
// keeps two dispatchers out of one fabric directory.
//
// Everything here is POSIX (fork/execv/waitpid/kill/stat); the fabric's
// crash-tolerance story leans on two properties: a SIGKILLed child is
// always reapable and detectable through waitpid, and a lockfile whose
// recorded owner pid is no longer alive is stale and may be broken.

#ifndef IPDA_UTIL_PROC_H_
#define IPDA_UTIL_PROC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace ipda::util {

struct SpawnOptions {
  // Redirect targets for the child's stdout/stderr; "" inherits the
  // parent's stream. Files are created/truncated.
  std::string stdout_path;
  std::string stderr_path;
};

// fork+execv of argv (argv[0] is the binary path). Returns the child
// pid; a failed exec surfaces as the child exiting 127.
Result<int64_t> SpawnProcess(const std::vector<std::string>& argv,
                             const SpawnOptions& options = {});

// Terminal state of a reaped child.
struct WaitOutcome {
  bool running = false;   // TryWaitProcess only: child not yet exited.
  bool signaled = false;  // Killed by a signal (term_signal set).
  int exit_code = 0;      // Valid when !signaled.
  int term_signal = 0;    // Valid when signaled.
};

// Non-blocking reap (waitpid WNOHANG). outcome.running is true while the
// child is still alive; once it reports exited, the pid is reaped and
// must not be waited again.
Result<WaitOutcome> TryWaitProcess(int64_t pid);

// Blocking reap.
Result<WaitOutcome> WaitProcess(int64_t pid);

// kill(pid, signum). Ok also when the process is already gone (ESRCH):
// revoking a lease of a just-exited worker is not an error.
Status KillProcess(int64_t pid, int signum);

// True while a process with this pid exists (kill(pid, 0), with EPERM
// counting as alive).
bool PidAlive(int64_t pid);

// Creates `path` if missing and bumps its mtime to now — the worker
// heartbeat primitive.
Status TouchFile(const std::string& path);

// Seconds since `path`'s last mtime (clamped at 0); the dispatcher's
// heartbeat-staleness probe.
Result<double> FileAgeSeconds(const std::string& path);

// mkdir -p: creates `path` and any missing parents.
Status MakeDirs(const std::string& path);

// Exclusive pid-stamped lockfile. Acquire creates the file O_EXCL and
// writes the owner pid; if the file already exists but its recorded pid
// is dead, the stale lock is broken and re-acquired. The lock is
// released (file unlinked) on destruction.
class LockFile {
 public:
  static Result<LockFile> Acquire(const std::string& path);

  LockFile() = default;
  LockFile(LockFile&& other) noexcept;
  LockFile& operator=(LockFile&& other) noexcept;
  ~LockFile();

  LockFile(const LockFile&) = delete;
  LockFile& operator=(const LockFile&) = delete;

  bool held() const { return !path_.empty(); }
  const std::string& path() const { return path_; }

  void Release();

 private:
  explicit LockFile(std::string path) : path_(std::move(path)) {}

  std::string path_;
};

}  // namespace ipda::util

#endif  // IPDA_UTIL_PROC_H_
