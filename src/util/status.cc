#include "util/status.h"

namespace ipda::util {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

Status OkStatus() { return Status(); }

Status InvalidArgumentError(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}

Status NotFoundError(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}

Status FailedPreconditionError(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}

Status OutOfRangeError(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}

Status UnavailableError(std::string message) {
  return Status(StatusCode::kUnavailable, std::move(message));
}

Status InternalError(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

}  // namespace ipda::util
