#include "util/logging.h"

#include <cstdio>
#include <cstring>

namespace ipda::util {
namespace {

LogLevel g_level = LogLevel::kWarning;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}

const char* Basename(const char* path) {
  const char* slash = std::strrchr(path, '/');
  return slash != nullptr ? slash + 1 : path;
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : enabled_(level >= g_level && level != LogLevel::kOff),
      level_(level),
      file_(file),
      line_(line) {}

LogMessage::~LogMessage() {
  if (!enabled_) return;
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelTag(level_), Basename(file_),
               line_, stream_.str().c_str());
}

}  // namespace internal
}  // namespace ipda::util
