// Error propagation without exceptions: Status for fallible void operations,
// Result<T> (in util/result.h) for fallible value-returning ones.

#ifndef IPDA_UTIL_STATUS_H_
#define IPDA_UTIL_STATUS_H_

#include <string>
#include <string_view>
#include <utility>

namespace ipda::util {

// Broad error taxonomy; fine-grained context goes in the message.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kUnavailable,
  kInternal,
};

// Human-readable name for a StatusCode, e.g. "InvalidArgument".
std::string_view StatusCodeName(StatusCode code);

// Value-semantic error descriptor. Default-constructed Status is OK.
class Status {
 public:
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  Status(const Status&) = default;
  Status& operator=(const Status&) = default;
  Status(Status&&) = default;
  Status& operator=(Status&&) = default;

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_ && a.message_ == b.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

Status OkStatus();
Status InvalidArgumentError(std::string message);
Status NotFoundError(std::string message);
Status FailedPreconditionError(std::string message);
Status OutOfRangeError(std::string message);
Status UnavailableError(std::string message);
Status InternalError(std::string message);

}  // namespace ipda::util

// Propagates a non-OK Status to the caller.
#define IPDA_RETURN_IF_ERROR(expr)                   \
  do {                                               \
    ::ipda::util::Status ipda_status_ = (expr);      \
    if (!ipda_status_.ok()) return ipda_status_;     \
  } while (false)

#endif  // IPDA_UTIL_STATUS_H_
