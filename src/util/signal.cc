#include "util/signal.h"

#include <atomic>
#include <csignal>

namespace ipda::util {
namespace {

// 0 = not draining; a positive value is the triggering signal number;
// -1 marks a programmatic RequestDrain().
std::atomic<int> g_drain{0};

void DrainHandler(int sig) {
  int expected = 0;
  if (!g_drain.compare_exchange_strong(expected, sig,
                                       std::memory_order_relaxed)) {
    // Second signal: the operator wants out now, not a drain.
    std::signal(sig, SIG_DFL);
    std::raise(sig);
  }
}

}  // namespace

void InstallDrainHandler() {
  std::signal(SIGINT, &DrainHandler);
  std::signal(SIGTERM, &DrainHandler);
}

bool DrainRequested() {
  return g_drain.load(std::memory_order_relaxed) != 0;
}

int DrainSignal() {
  const int value = g_drain.load(std::memory_order_relaxed);
  return value > 0 ? value : 0;
}

void RequestDrain() {
  int expected = 0;
  g_drain.compare_exchange_strong(expected, -1,
                                  std::memory_order_relaxed);
}

void ResetDrainForTest() {
  g_drain.store(0, std::memory_order_relaxed);
}

}  // namespace ipda::util
