#include "util/random.h"

#include <cmath>

#include "util/check.h"

namespace ipda::util {
namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

constexpr double kTwoPi = 6.283185307179586476925286766559;

}  // namespace

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Mix64(uint64_t a, uint64_t b) {
  uint64_t state = a ^ Rotl(b, 32) ^ 0x2545f4914f6cdd1dULL;
  (void)SplitMix64(state);
  return SplitMix64(state);
}

uint64_t HashLabel(std::string_view label) {
  uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis.
  for (unsigned char c : label) {
    h ^= c;
    h *= 0x100000001b3ULL;  // FNV prime.
  }
  return h;
}

Rng::Rng(uint64_t seed) : seed_(seed) {
  uint64_t sm = seed;
  for (auto& word : s_) word = SplitMix64(sm);
}

Rng Rng::Fork(std::string_view label) const {
  return Rng(Mix64(seed_, HashLabel(label)));
}

Rng Rng::Fork(uint64_t index) const {
  return Rng(Mix64(seed_, index ^ 0x9e3779b97f4a7c15ULL));
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Rng::UniformUint64(uint64_t bound) {
  IPDA_CHECK_GT(bound, 0u);
  // Rejection sampling over the largest multiple of `bound` below 2^64.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  IPDA_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // Full range.
  return lo + static_cast<int64_t>(UniformUint64(span));
}

double Rng::UniformDouble() {
  // 53 high-quality bits -> [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::UniformDouble(double lo, double hi) {
  IPDA_CHECK_LE(lo, hi);
  return lo + (hi - lo) * UniformDouble();
}

bool Rng::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return UniformDouble() < p;
}

double Rng::Exponential(double mean) {
  IPDA_CHECK_GT(mean, 0.0);
  double u;
  do {
    u = UniformDouble();
  } while (u <= 0.0);
  return -mean * std::log(u);
}

double Rng::Normal(double mean, double stddev) {
  double u1;
  do {
    u1 = UniformDouble();
  } while (u1 <= 0.0);
  const double u2 = UniformDouble();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(kTwoPi * u2);
  return mean + stddev * z;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  IPDA_CHECK_LE(k, n);
  // Floyd's algorithm: O(k) expected draws, no O(n) scratch for small k.
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(UniformUint64(j + 1));
    bool seen = false;
    for (size_t s : out) {
      if (s == t) {
        seen = true;
        break;
      }
    }
    out.push_back(seen ? j : t);
  }
  return out;
}

}  // namespace ipda::util
