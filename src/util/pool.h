// Arena/free-list pools for hot-path allocations.
//
// A simulation round allocates the same few shapes over and over: one
// shared Packet per transmission, one scheduler event per delivery edge.
// General-purpose malloc pays lock/metadata costs per call and scatters
// these short-lived objects across the heap; the pools below recycle
// fixed-size slots from chunked slabs, so steady-state allocation is a
// free-list pop and locality follows the simulation's churn.
//
// Pools are single-threaded by design, matching the shared-nothing run
// model: every Simulator/Channel owns its own pools, so parallel sweeps
// never contend. Double-free and delete-of-foreign-pointer are IPDA_CHECK
// failures, not corruption (tests/util_pool_test.cc exercises this under
// randomized interleavings and ASan).

#ifndef IPDA_UTIL_POOL_H_
#define IPDA_UTIL_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <utility>
#include <vector>

#include "util/check.h"

namespace ipda::util {

// Typed free-list pool. New() placement-constructs into a recycled slot;
// Delete() destroys and recycles. Slabs grow geometrically and are only
// returned to the OS on pool destruction; objects still live at that
// point are destroyed by the pool (a scheduler torn down with pending
// events must not leak their closures).
template <typename T>
class ObjectPool {
 public:
  explicit ObjectPool(size_t first_chunk = 64) : next_chunk_(first_chunk) {
    IPDA_CHECK_GE(first_chunk, 1u);
  }

  ObjectPool(const ObjectPool&) = delete;
  ObjectPool& operator=(const ObjectPool&) = delete;

  ~ObjectPool() {
    for (auto& chunk : chunks_) {
      for (size_t i = 0; i < chunk.size; ++i) {
        Slot& slot = chunk.slots[i];
        if (slot.live) Object(&slot)->~T();
      }
    }
  }

  template <typename... Args>
  T* New(Args&&... args) {
    if (free_ == nullptr) Grow();
    Slot* slot = free_;
    free_ = slot->next_free;
    T* object = new (slot->storage) T(std::forward<Args>(args)...);
    slot->live = true;
    ++live_;
    ++new_count_;
    if (live_ > high_water_) high_water_ = live_;
    return object;
  }

  void Delete(T* object) {
    Slot* slot = reinterpret_cast<Slot*>(object);
    // Catches double-free and pointers the pool never handed out (a
    // foreign pointer's flag byte is unlikely to read exactly true, and
    // the slot scan below settles it in debug builds).
    IPDA_CHECK(slot->live);
    slot->live = false;
    object->~T();
    slot->next_free = free_;
    free_ = slot;
    IPDA_CHECK_GT(live_, 0u);
    --live_;
  }

  size_t live() const { return live_; }
  size_t capacity() const { return capacity_; }
  // Lifetime New() calls and the peak concurrent live count; the metrics
  // registry reports these as pool.* counters (DESIGN.md §11).
  uint64_t new_count() const { return new_count_; }
  size_t high_water() const { return high_water_; }

 private:
  struct Slot {
    alignas(T) unsigned char storage[sizeof(T)];  // Must stay first.
    Slot* next_free = nullptr;  // Valid only while !live.
    bool live = false;
  };
  struct Chunk {
    std::unique_ptr<Slot[]> slots;
    size_t size = 0;
  };

  static T* Object(Slot* slot) {
    return std::launder(reinterpret_cast<T*>(slot->storage));
  }

  void Grow() {
    Chunk chunk;
    chunk.size = next_chunk_;
    chunk.slots = std::make_unique<Slot[]>(chunk.size);
    for (size_t i = chunk.size; i > 0; --i) {
      chunk.slots[i - 1].next_free = free_;
      free_ = &chunk.slots[i - 1];
    }
    capacity_ += chunk.size;
    next_chunk_ *= 2;
    chunks_.push_back(std::move(chunk));
  }

  std::vector<Chunk> chunks_;
  Slot* free_ = nullptr;
  size_t next_chunk_;
  size_t live_ = 0;
  size_t capacity_ = 0;
  uint64_t new_count_ = 0;
  size_t high_water_ = 0;
};

// Untyped size-class pool backing PoolAllocator, so standard containers
// and allocate_shared control blocks can recycle through an arena too.
// Requests round up to the next power-of-two class (min 32 B); requests
// beyond the largest class fall through to operator new.
class BytePool {
 public:
  BytePool() = default;
  BytePool(const BytePool&) = delete;
  BytePool& operator=(const BytePool&) = delete;

  ~BytePool() {
    for (void* slab : slabs_) ::operator delete(slab);
  }

  void* Allocate(size_t bytes) {
    const size_t cls = ClassIndex(bytes);
    ++alloc_count_;
    if (cls == kClassCount) {
      ++oversize_live_;
      if (live_ + oversize_live_ > high_water_)
        high_water_ = live_ + oversize_live_;
      return ::operator new(bytes);
    }
    if (free_[cls] == nullptr) Grow(cls);
    FreeNode* node = free_[cls];
    free_[cls] = node->next;
    ++live_;
    if (live_ + oversize_live_ > high_water_)
      high_water_ = live_ + oversize_live_;
    return node;
  }

  void Deallocate(void* p, size_t bytes) {
    if (p == nullptr) return;
    const size_t cls = ClassIndex(bytes);
    if (cls == kClassCount) {
      IPDA_CHECK_GT(oversize_live_, 0u);
      --oversize_live_;
      ::operator delete(p);
      return;
    }
    FreeNode* node = static_cast<FreeNode*>(p);
    node->next = free_[cls];
    free_[cls] = node;
    IPDA_CHECK_GT(live_, 0u);
    --live_;
  }

  size_t live_blocks() const { return live_ + oversize_live_; }
  // Slabs allocated so far; flat across a steady-state workload once the
  // free lists are warm (the scheduler stress test asserts exactly that).
  size_t slab_count() const { return slabs_.size(); }
  // Lifetime Allocate() calls and the peak concurrent live-block count;
  // the metrics registry reports these as pool.* counters (DESIGN.md §11).
  uint64_t alloc_count() const { return alloc_count_; }
  size_t high_water() const { return high_water_; }

 private:
  struct FreeNode {
    FreeNode* next;
  };

  static constexpr size_t kMinBlock = 32;
  static constexpr size_t kClassCount = 6;  // 32..1024 B.
  static constexpr size_t kBlocksPerSlab = 64;

  static size_t ClassIndex(size_t bytes) {
    size_t block = kMinBlock;
    for (size_t cls = 0; cls < kClassCount; ++cls, block *= 2) {
      if (bytes <= block) return cls;
    }
    return kClassCount;
  }

  void Grow(size_t cls) {
    const size_t block = kMinBlock << cls;
    unsigned char* slab = static_cast<unsigned char*>(
        ::operator new(block * kBlocksPerSlab));
    slabs_.push_back(slab);
    for (size_t i = kBlocksPerSlab; i > 0; --i) {
      FreeNode* node =
          reinterpret_cast<FreeNode*>(slab + (i - 1) * block);
      node->next = free_[cls];
      free_[cls] = node;
    }
  }

  std::vector<void*> slabs_;
  FreeNode* free_[kClassCount] = {};
  size_t live_ = 0;
  size_t oversize_live_ = 0;
  uint64_t alloc_count_ = 0;
  size_t high_water_ = 0;
};

// Minimal std allocator over a BytePool (rebind-friendly, stateful).
template <typename T>
class PoolAllocator {
 public:
  using value_type = T;

  explicit PoolAllocator(BytePool* pool) : pool_(pool) {
    IPDA_CHECK(pool != nullptr);
  }
  template <typename U>
  PoolAllocator(const PoolAllocator<U>& other) : pool_(other.pool()) {}

  T* allocate(size_t n) {
    return static_cast<T*>(pool_->Allocate(n * sizeof(T)));
  }
  void deallocate(T* p, size_t n) { pool_->Deallocate(p, n * sizeof(T)); }

  BytePool* pool() const { return pool_; }

  template <typename U>
  bool operator==(const PoolAllocator<U>& other) const {
    return pool_ == other.pool();
  }

 private:
  BytePool* pool_;
};

}  // namespace ipda::util

#endif  // IPDA_UTIL_POOL_H_
