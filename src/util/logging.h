// Leveled logging to stderr. Simulation code logs sparingly; benches raise
// the threshold to keep figure output clean.

#ifndef IPDA_UTIL_LOGGING_H_
#define IPDA_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace ipda::util {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarning = 2,
  kError = 3,
  kOff = 4,
};

// Process-wide minimum level; messages below it are dropped. Default kWarning
// so library users are not spammed. Not thread-safe by design: the simulator
// is single-threaded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

// Stream-style collector flushed to stderr on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& value) {
    if (enabled_) stream_ << value;
    return *this;
  }

 private:
  bool enabled_;
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace ipda::util

#define IPDA_LOG(level)                                              \
  ::ipda::util::internal::LogMessage(::ipda::util::LogLevel::level,  \
                                     __FILE__, __LINE__)

#endif  // IPDA_UTIL_LOGGING_H_
