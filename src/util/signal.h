// Graceful drain on SIGINT/SIGTERM.
//
// Long sweeps install the drain handler once at startup. The first
// signal flips a process-wide flag that the experiment harness polls
// between runs: no new run starts, in-flight runs finish (or are cut
// down by their watchdog deadline), the journal is flushed, and the tool
// prints a resume command line before exiting with kDrainExitCode. A
// second signal restores the default disposition and re-raises it, so a
// stuck drain can still be killed from the same terminal.

#ifndef IPDA_UTIL_SIGNAL_H_
#define IPDA_UTIL_SIGNAL_H_

namespace ipda::util {

// Installs the SIGINT/SIGTERM drain handler. Idempotent; the handler is
// async-signal-safe (one lock-free atomic exchange).
void InstallDrainHandler();

// True once a drain was requested (signal or RequestDrain()).
bool DrainRequested();

// The signal number that triggered the drain; 0 when none arrived (not
// draining, or the drain was programmatic).
int DrainSignal();

// Programmatic drain, for tests and in-process tooling.
void RequestDrain();

// Test-only: forget a previous drain so later cases start clean.
void ResetDrainForTest();

// Exit code for "sweep drained; journal is resumable" (EX_TEMPFAIL).
// Scripts use it to distinguish a clean drain from success (0) and from
// hard failure.
inline constexpr int kDrainExitCode = 75;

}  // namespace ipda::util

#endif  // IPDA_UTIL_SIGNAL_H_
