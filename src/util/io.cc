#include "util/io.h"

#include <dirent.h>
#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <utility>

namespace ipda::util {
namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

util::Result<AppendFile> AppendFile::Open(const std::string& path,
                                          bool truncate) {
  int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
  if (truncate) flags |= O_TRUNC;
  int fd;
  do {
    fd = ::open(path.c_str(), flags, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return UnavailableError(Errno("cannot open", path));
  return AppendFile(fd, path);
}

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

AppendFile::~AppendFile() { Close(); }

Status AppendFile::AppendLine(std::string_view line, bool sync) {
  if (fd_ < 0) return FailedPreconditionError("append to closed file");
  std::string buffer;
  buffer.reserve(line.size() + 1);
  buffer.append(line);
  buffer.push_back('\n');
  // O_APPEND makes each write land atomically at the current end even
  // with concurrent writers; loop for EINTR and short writes anyway.
  size_t written = 0;
  while (written < buffer.size()) {
    const ssize_t n =
        ::write(fd_, buffer.data() + written, buffer.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return UnavailableError(Errno("write to", path_));
    }
    written += static_cast<size_t>(n);
  }
  if (sync) return Sync();
  return OkStatus();
}

Status AppendFile::Sync() {
  if (fd_ < 0) return FailedPreconditionError("sync of closed file");
  if (::fsync(fd_) != 0) {
    return UnavailableError(Errno("fsync of", path_));
  }
  return OkStatus();
}

void AppendFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Result<std::string> ReadFileToString(const std::string& path) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return UnavailableError(Errno("cannot open", path));
  std::string content;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string error = Errno("read of", path);
      ::close(fd);
      return UnavailableError(error);
    }
    if (n == 0) break;
    content.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return content;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

Result<std::string> MakeTempDir(const std::string& prefix,
                                const std::string& parent) {
  std::string base = parent;
  if (base.empty()) {
    const char* env = std::getenv("TMPDIR");
    base = env != nullptr && *env != '\0' ? env : "/tmp";
  }
  std::string pattern = base + "/" + prefix + "XXXXXX";
  if (::mkdtemp(pattern.data()) == nullptr) {
    return UnavailableError(Errno("mkdtemp", pattern));
  }
  return pattern;
}

void RemoveDirTree(const std::string& path) {
  DIR* dir = ::opendir(path.c_str());
  if (dir != nullptr) {
    while (struct dirent* entry = ::readdir(dir)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      ::unlink((path + "/" + name).c_str());
    }
    ::closedir(dir);
  }
  ::rmdir(path.c_str());
}

Result<uint64_t> ParseByteSize(std::string_view text) {
  if (text.empty()) return InvalidArgumentError("empty byte size");
  if (text == "unlimited") return uint64_t{0};
  uint64_t value = 0;
  size_t i = 0;
  for (; i < text.size(); ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') break;
    const uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return InvalidArgumentError("byte size overflows: '" +
                                  std::string(text) + "'");
    }
    value = value * 10 + digit;
  }
  if (i == 0) {
    return InvalidArgumentError("malformed byte size: '" +
                                std::string(text) + "'");
  }
  uint64_t shift = 0;
  if (i < text.size()) {
    switch (text[i]) {
      case 'k': case 'K': shift = 10; break;
      case 'm': case 'M': shift = 20; break;
      case 'g': case 'G': shift = 30; break;
      default:
        return InvalidArgumentError("bad byte-size suffix: '" +
                                    std::string(text) + "'");
    }
    ++i;
    // Tolerate an explicit "iB"/"B"/"b" tail ("64KiB", "64kb").
    if (i < text.size() && (text[i] == 'i' || text[i] == 'I')) ++i;
    if (i < text.size() && (text[i] == 'b' || text[i] == 'B')) ++i;
  }
  if (i != text.size()) {
    return InvalidArgumentError("malformed byte size: '" +
                                std::string(text) + "'");
  }
  if (shift > 0 && value > (UINT64_MAX >> shift)) {
    return InvalidArgumentError("byte size overflows: '" +
                                std::string(text) + "'");
  }
  return value << shift;
}

}  // namespace ipda::util
