#include "util/io.h"

#include <errno.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace ipda::util {
namespace {

std::string Errno(const std::string& what, const std::string& path) {
  return what + " " + path + ": " + std::strerror(errno);
}

}  // namespace

util::Result<AppendFile> AppendFile::Open(const std::string& path,
                                          bool truncate) {
  int flags = O_WRONLY | O_CREAT | O_APPEND | O_CLOEXEC;
  if (truncate) flags |= O_TRUNC;
  int fd;
  do {
    fd = ::open(path.c_str(), flags, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return UnavailableError(Errno("cannot open", path));
  return AppendFile(fd, path);
}

AppendFile::AppendFile(AppendFile&& other) noexcept
    : fd_(other.fd_), path_(std::move(other.path_)) {
  other.fd_ = -1;
}

AppendFile& AppendFile::operator=(AppendFile&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = other.fd_;
    path_ = std::move(other.path_);
    other.fd_ = -1;
  }
  return *this;
}

AppendFile::~AppendFile() { Close(); }

Status AppendFile::AppendLine(std::string_view line, bool sync) {
  if (fd_ < 0) return FailedPreconditionError("append to closed file");
  std::string buffer;
  buffer.reserve(line.size() + 1);
  buffer.append(line);
  buffer.push_back('\n');
  // O_APPEND makes each write land atomically at the current end even
  // with concurrent writers; loop for EINTR and short writes anyway.
  size_t written = 0;
  while (written < buffer.size()) {
    const ssize_t n =
        ::write(fd_, buffer.data() + written, buffer.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return UnavailableError(Errno("write to", path_));
    }
    written += static_cast<size_t>(n);
  }
  if (sync) return Sync();
  return OkStatus();
}

Status AppendFile::Sync() {
  if (fd_ < 0) return FailedPreconditionError("sync of closed file");
  if (::fsync(fd_) != 0) {
    return UnavailableError(Errno("fsync of", path_));
  }
  return OkStatus();
}

void AppendFile::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

util::Result<std::string> ReadFileToString(const std::string& path) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return UnavailableError(Errno("cannot open", path));
  std::string content;
  char buffer[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buffer, sizeof(buffer));
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string error = Errno("read of", path);
      ::close(fd);
      return UnavailableError(error);
    }
    if (n == 0) break;
    content.append(buffer, static_cast<size_t>(n));
  }
  ::close(fd);
  return content;
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace ipda::util
