// Deterministic pseudo-random generation for reproducible simulations.
//
// Rng is xoshiro256** seeded through SplitMix64, the recommended seeding
// procedure from the xoshiro authors. Every experiment takes an explicit
// 64-bit seed; `Fork` derives an independent, label-addressed child stream
// so subsystems (deployment, MAC backoff, slicing, ...) never share state
// and adding draws to one subsystem cannot perturb another.

#ifndef IPDA_UTIL_RANDOM_H_
#define IPDA_UTIL_RANDOM_H_

#include <cstdint>
#include <string_view>
#include <vector>

namespace ipda::util {

// SplitMix64 step; also usable as a cheap 64-bit mixer/hash.
uint64_t SplitMix64(uint64_t& state);

// Stateless mix of two 64-bit values into one (for label-derived seeds).
uint64_t Mix64(uint64_t a, uint64_t b);

// FNV-1a hash of a string, for deriving child-stream seeds from labels.
uint64_t HashLabel(std::string_view label);

class Rng {
 public:
  explicit Rng(uint64_t seed);

  // Independent child stream identified by (this stream's seed, label).
  Rng Fork(std::string_view label) const;
  // Independent child stream identified by an integer (e.g. node id).
  Rng Fork(uint64_t index) const;

  // Raw 64 uniform bits.
  uint64_t NextUint64();

  // Uniform in [0, bound). bound must be > 0. Unbiased (rejection sampling).
  uint64_t UniformUint64(uint64_t bound);

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  // Uniform double in [0, 1).
  double UniformDouble();

  // Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi);

  // True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  // Exponentially distributed with the given mean (> 0).
  double Exponential(double mean);

  // Standard normal via Box-Muller.
  double Normal(double mean, double stddev);

  // Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformUint64(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

  // Sample k distinct indices from [0, n) uniformly (k <= n).
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  uint64_t seed() const { return seed_; }

 private:
  uint64_t seed_;
  uint64_t s_[4];
};

}  // namespace ipda::util

#endif  // IPDA_UTIL_RANDOM_H_
