#include "util/bytes.h"

#include <cstring>

namespace ipda::util {

void ByteWriter::Append(const void* data, size_t n) {
  const auto* p = static_cast<const uint8_t*>(data);
  out_.insert(out_.end(), p, p + n);
}

void ByteWriter::WriteU8(uint8_t v) { out_.push_back(v); }

void ByteWriter::WriteU16(uint16_t v) {
  uint8_t buf[2] = {static_cast<uint8_t>(v), static_cast<uint8_t>(v >> 8)};
  Append(buf, sizeof(buf));
}

void ByteWriter::WriteU32(uint32_t v) {
  uint8_t buf[4];
  for (int i = 0; i < 4; ++i) buf[i] = static_cast<uint8_t>(v >> (8 * i));
  Append(buf, sizeof(buf));
}

void ByteWriter::WriteU64(uint64_t v) {
  uint8_t buf[8];
  for (int i = 0; i < 8; ++i) buf[i] = static_cast<uint8_t>(v >> (8 * i));
  Append(buf, sizeof(buf));
}

void ByteWriter::WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }

void ByteWriter::WriteF64(double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  WriteU64(bits);
}

void ByteWriter::WriteBytes(const Bytes& v) {
  WriteU32(static_cast<uint32_t>(v.size()));
  Append(v.data(), v.size());
}

void ByteWriter::WriteString(const std::string& v) {
  WriteU32(static_cast<uint32_t>(v.size()));
  Append(v.data(), v.size());
}

Status ByteReader::Take(void* dst, size_t n) {
  if (remaining() < n) {
    return OutOfRangeError("byte reader underflow");
  }
  std::memcpy(dst, data_.data() + pos_, n);
  pos_ += n;
  return OkStatus();
}

Result<uint8_t> ByteReader::ReadU8() {
  uint8_t v = 0;
  IPDA_RETURN_IF_ERROR(Take(&v, sizeof(v)));
  return v;
}

Result<uint16_t> ByteReader::ReadU16() {
  uint8_t buf[2];
  IPDA_RETURN_IF_ERROR(Take(buf, sizeof(buf)));
  return static_cast<uint16_t>(buf[0] | (buf[1] << 8));
}

Result<uint32_t> ByteReader::ReadU32() {
  uint8_t buf[4];
  IPDA_RETURN_IF_ERROR(Take(buf, sizeof(buf)));
  uint32_t v = 0;
  for (int i = 3; i >= 0; --i) v = (v << 8) | buf[i];
  return v;
}

Result<uint64_t> ByteReader::ReadU64() {
  uint8_t buf[8];
  IPDA_RETURN_IF_ERROR(Take(buf, sizeof(buf)));
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | buf[i];
  return v;
}

Result<int64_t> ByteReader::ReadI64() {
  IPDA_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<double> ByteReader::ReadF64() {
  IPDA_ASSIGN_OR_RETURN(uint64_t bits, ReadU64());
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<Bytes> ByteReader::ReadBytes() {
  IPDA_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
  if (remaining() < n) return OutOfRangeError("byte reader underflow");
  Bytes out(data_.begin() + static_cast<long>(pos_),
            data_.begin() + static_cast<long>(pos_ + n));
  pos_ += n;
  return out;
}

Result<std::string> ByteReader::ReadString() {
  IPDA_ASSIGN_OR_RETURN(Bytes b, ReadBytes());
  return std::string(b.begin(), b.end());
}

}  // namespace ipda::util
