// Fail-fast invariant checking.
//
// Library code follows the no-exceptions rule: recoverable errors travel as
// util::Status / util::Result<T>, while violated internal invariants abort
// through these macros. CHECK is always on; DCHECK compiles out of release
// builds.

#ifndef IPDA_UTIL_CHECK_H_
#define IPDA_UTIL_CHECK_H_

#include <cstdio>
#include <cstdlib>

namespace ipda::util::internal {

[[noreturn]] inline void CheckFailed(const char* file, int line,
                                     const char* expr) {
  std::fprintf(stderr, "CHECK failed at %s:%d: %s\n", file, line, expr);
  std::fflush(stderr);
  std::abort();
}

}  // namespace ipda::util::internal

#define IPDA_CHECK(expr)                                           \
  do {                                                             \
    if (!(expr)) {                                                 \
      ::ipda::util::internal::CheckFailed(__FILE__, __LINE__,      \
                                          #expr);                  \
    }                                                              \
  } while (false)

#define IPDA_CHECK_OP(lhs, op, rhs) IPDA_CHECK((lhs)op(rhs))
#define IPDA_CHECK_EQ(lhs, rhs) IPDA_CHECK_OP(lhs, ==, rhs)
#define IPDA_CHECK_NE(lhs, rhs) IPDA_CHECK_OP(lhs, !=, rhs)
#define IPDA_CHECK_LT(lhs, rhs) IPDA_CHECK_OP(lhs, <, rhs)
#define IPDA_CHECK_LE(lhs, rhs) IPDA_CHECK_OP(lhs, <=, rhs)
#define IPDA_CHECK_GT(lhs, rhs) IPDA_CHECK_OP(lhs, >, rhs)
#define IPDA_CHECK_GE(lhs, rhs) IPDA_CHECK_OP(lhs, >=, rhs)

#ifdef NDEBUG
#define IPDA_DCHECK(expr) \
  do {                    \
  } while (false)
#else
#define IPDA_DCHECK(expr) IPDA_CHECK(expr)
#endif

#endif  // IPDA_UTIL_CHECK_H_
