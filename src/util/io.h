// Durable file primitives for the run journal: append-only line writes
// with per-line fsync, plus whole-file reads.
//
// The journal's crash-tolerance contract leans on AppendLine: a record
// either reaches the disk whole (write(2) of the full line, then fsync)
// or is a torn tail the reader discards, so a sweep killed at any
// instant loses at most the record in flight.

#ifndef IPDA_UTIL_IO_H_
#define IPDA_UTIL_IO_H_

#include <string>
#include <string_view>

#include "util/result.h"
#include "util/status.h"

namespace ipda::util {

// Append-only file handle (created if missing; truncated only when a
// caller starting a fresh journal asks for it).
class AppendFile {
 public:
  static Result<AppendFile> Open(const std::string& path,
                                 bool truncate = false);

  AppendFile() = default;
  AppendFile(AppendFile&& other) noexcept;
  AppendFile& operator=(AppendFile&& other) noexcept;
  ~AppendFile();

  AppendFile(const AppendFile&) = delete;
  AppendFile& operator=(const AppendFile&) = delete;

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }

  // Writes `line` plus a trailing '\n' in one write call; when `sync`,
  // fsyncs afterwards so the record survives power loss, not just
  // process death.
  Status AppendLine(std::string_view line, bool sync = true);

  Status Sync();
  void Close();

 private:
  AppendFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}

  int fd_ = -1;
  std::string path_;
};

Result<std::string> ReadFileToString(const std::string& path);

bool FileExists(const std::string& path);

// --- Spill-file primitives (exp/agg_store.h) ---------------------------

// Fresh private directory `<parent>/<prefix>XXXXXX` via mkdtemp; parent
// defaults to $TMPDIR (or /tmp). Callers own cleanup (RemoveDirTree).
Result<std::string> MakeTempDir(const std::string& prefix,
                                const std::string& parent = "");

// Best-effort recursive removal of one directory of regular files (the
// shape spill dirs have — no nested traversal). Missing path is ok.
void RemoveDirTree(const std::string& path);

// "64k" / "256M" / "1g" / "4096" -> bytes (binary suffixes, case-
// insensitive; bare numbers are bytes; "0" and "unlimited" -> 0).
// Error on malformed or overflowing input.
Result<uint64_t> ParseByteSize(std::string_view text);

}  // namespace ipda::util

#endif  // IPDA_UTIL_IO_H_
