// Byte-level serialization for packet payloads.
//
// ByteWriter appends fixed-width little-endian integers and IEEE-754
// doubles; ByteReader consumes them with explicit bounds checking (reads
// past the end return an error Status instead of crashing, because payload
// bytes may arrive corrupted off the simulated channel).

#ifndef IPDA_UTIL_BYTES_H_
#define IPDA_UTIL_BYTES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace ipda::util {

using Bytes = std::vector<uint8_t>;

class ByteWriter {
 public:
  ByteWriter() = default;

  void WriteU8(uint8_t v);
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  void WriteF64(double v);
  void WriteBytes(const Bytes& v);  // Length-prefixed (u32).
  void WriteString(const std::string& v);

  const Bytes& bytes() const { return out_; }
  Bytes TakeBytes() { return std::move(out_); }
  size_t size() const { return out_.size(); }

 private:
  void Append(const void* data, size_t n);

  Bytes out_;
};

class ByteReader {
 public:
  explicit ByteReader(const Bytes& data) : data_(data) {}

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<double> ReadF64();
  Result<Bytes> ReadBytes();        // Length-prefixed (u32).
  Result<std::string> ReadString();

  size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  Status Take(void* dst, size_t n);

  const Bytes& data_;
  size_t pos_ = 0;
};

}  // namespace ipda::util

#endif  // IPDA_UTIL_BYTES_H_
