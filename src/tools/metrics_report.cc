// Pretty-printer for --metrics JSONL files (EXPERIMENTS.md, "Metrics
// pipeline"). Default view aggregates every run in the file: counters sum
// across runs, gauges report min/mean/max, histograms merge bucket-wise.
// --run=N switches to the full single-run record, spans included.

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.h"
#include "util/flags.h"

namespace {

using ipda::obs::ParsedLine;
using ipda::obs::Snapshot;

struct GaugeAgg {
  double min = 0.0, max = 0.0, sum = 0.0;
  uint64_t n = 0;
};

bool NameSelected(std::string_view name, const std::string& filter) {
  return filter.empty() || name.find(filter) != std::string_view::npos;
}

void PrintRun(const ParsedLine& line, const std::string& filter) {
  std::printf("run %" PRIu64 " (seed %" PRIu64 ")\n", line.run, line.seed);
  for (const auto& [name, v] : line.snapshot.counters) {
    if (NameSelected(name, filter)) {
      std::printf("  %-34s %20" PRIu64 "\n", name.c_str(), v);
    }
  }
  for (const auto& [name, v] : line.snapshot.gauges) {
    if (NameSelected(name, filter)) {
      std::printf("  %-34s %20.6g\n", name.c_str(), v);
    }
  }
  for (const auto& [name, h] : line.snapshot.histograms) {
    if (!NameSelected(name, filter)) continue;
    std::printf("  %-34s count=%" PRIu64 " sum=%.6g\n", name.c_str(),
                h.count, h.sum);
    for (size_t i = 0; i < h.counts.size(); ++i) {
      if (i < h.bounds.size()) {
        std::printf("    <= %-12.6g %20" PRIu64 "\n", h.bounds[i],
                    h.counts[i]);
      } else {
        std::printf("    >  %-12.6g %20" PRIu64 "\n",
                    h.bounds.empty() ? 0.0 : h.bounds.back(), h.counts[i]);
      }
    }
  }
  if (!line.snapshot.spans.empty()) std::printf("  spans:\n");
  for (const auto& span : line.snapshot.spans) {
    std::printf("    %-32s [%12" PRId64 " ns, %12" PRId64 " ns)  %.6g ms\n",
                span.name.c_str(), span.begin_ns, span.end_ns,
                static_cast<double>(span.end_ns - span.begin_ns) / 1e6);
  }
}

}  // namespace

int main(int argc, char** argv) {
  ipda::util::FlagSet flags;
  flags.DefineString("file", "", "Metrics JSONL file to report on");
  flags.DefineInt("run", -1, "Print one run in full instead of aggregating");
  flags.DefineString("metric", "", "Only metrics whose name contains this");
  flags.DefineBool("help", false, "Show usage");

  // Accept the file as the sole positional argument too.
  std::vector<const char*> args;
  std::string positional;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-' && positional.empty()) {
      positional = argv[i];
    } else {
      args.push_back(argv[i]);
    }
  }
  const auto status =
      flags.Parse(static_cast<int>(args.size()), args.data());
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.message().c_str(),
                 flags.Usage("metrics_report").c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::printf("%s", flags.Usage("metrics_report").c_str());
    return 0;
  }
  std::string path = flags.GetString("file");
  if (path.empty()) path = positional;
  if (path.empty()) {
    std::fprintf(stderr, "usage: metrics_report <file.jsonl> [--run=N]\n");
    return 2;
  }

  // Stream the file line by line: a city-scale sweep's --metrics JSONL
  // (one record per run, spans included) runs to hundreds of MiB, and
  // the aggregation only ever needs one record in memory at a time.
  std::ifstream in(path);
  if (!in) {
    std::fprintf(stderr, "metrics_report: cannot open %s\n", path.c_str());
    return 1;
  }

  const int64_t want_run = flags.GetInt("run");
  const std::string filter = flags.GetString("metric");

  std::vector<std::pair<std::string, uint64_t>> counter_sums;
  std::vector<std::pair<std::string, GaugeAgg>> gauge_aggs;
  uint64_t run_lines = 0;
  uint64_t skipped_lines = 0;
  size_t line_no = 0;
  std::string raw;
  while (std::getline(in, raw)) {
    ++line_no;
    if (raw.empty()) continue;
    ParsedLine line;
    std::string error;
    if (!ipda::obs::ParseMetricsLine(raw, line, &error)) {
      // A corrupt line (torn write, truncation mid-crash) must not void
      // the intact records around it: warn, count, move on.
      std::fprintf(stderr,
                   "metrics_report: %s:%zu: skipping corrupt line: %s\n",
                   path.c_str(), line_no, error.c_str());
      ++skipped_lines;
      continue;
    }
    if (line.kind == "metrics_header") {
      std::printf("experiment %s: %" PRIu64 " runs, seed %" PRIu64 "\n",
                  line.experiment.c_str(), line.runs, line.seed);
      continue;
    }
    ++run_lines;
    if (want_run >= 0) {
      if (line.run == static_cast<uint64_t>(want_run)) {
        PrintRun(line, filter);
      }
      continue;
    }
    // Aggregate. Names are sorted within each snapshot and the instrument
    // sets of runs of one sweep coincide, so a merge by linear probe with
    // insertion keeps the output sorted without a map.
    for (const auto& [name, v] : line.snapshot.counters) {
      if (!NameSelected(name, filter)) continue;
      auto it = std::lower_bound(
          counter_sums.begin(), counter_sums.end(), name,
          [](const auto& a, const std::string& b) { return a.first < b; });
      if (it == counter_sums.end() || it->first != name) {
        it = counter_sums.insert(it, {name, 0});
      }
      it->second += v;
    }
    for (const auto& [name, v] : line.snapshot.gauges) {
      if (!NameSelected(name, filter)) continue;
      auto it = std::lower_bound(
          gauge_aggs.begin(), gauge_aggs.end(), name,
          [](const auto& a, const std::string& b) { return a.first < b; });
      if (it == gauge_aggs.end() || it->first != name) {
        it = gauge_aggs.insert(it, {name, GaugeAgg{v, v, 0.0, 0}});
      }
      GaugeAgg& agg = it->second;
      if (v < agg.min) agg.min = v;
      if (v > agg.max) agg.max = v;
      agg.sum += v;
      ++agg.n;
    }
  }

  if (skipped_lines > 0) {
    std::fprintf(stderr,
                 "metrics_report: skipped %" PRIu64
                 " corrupt line(s) in %s\n",
                 skipped_lines, path.c_str());
  }
  if (run_lines == 0) {
    // An empty or fully truncated file means the producing run wrote no
    // usable record — make that loud (and fatal for scripts) instead of
    // printing an innocuous zero-run report.
    std::fprintf(stderr,
                 "metrics_report: %s contains no valid run records "
                 "(empty or truncated --metrics file?)\n",
                 path.c_str());
    return 1;
  }
  if (want_run >= 0) return 0;

  std::printf("%" PRIu64 " run record(s)\n", run_lines);
  if (!counter_sums.empty()) {
    std::printf("counters (summed over runs):\n");
    for (const auto& [name, v] : counter_sums) {
      std::printf("  %-34s %20" PRIu64 "\n", name.c_str(), v);
    }
  }
  if (!gauge_aggs.empty()) {
    std::printf("gauges (min / mean / max over runs):\n");
    for (const auto& [name, agg] : gauge_aggs) {
      std::printf("  %-34s %14.6g %14.6g %14.6g\n", name.c_str(), agg.min,
                  agg.sum / static_cast<double>(agg.n), agg.max);
    }
  }
  return 0;
}
