// Pretty-printer for --metrics JSONL files (EXPERIMENTS.md, "Metrics
// pipeline"). Default view aggregates every run in the file: counters
// sum across runs, gauges report min/p50/p95/p99/max/mean, histograms
// merge bucket-wise. --run=N switches to the full single-run record,
// spans included. All the work happens in exp::RunMetricsReport, which
// keeps RSS bounded by --agg-memory-budget regardless of file size.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "exp/report.h"
#include "util/flags.h"
#include "util/io.h"

int main(int argc, char** argv) {
  ipda::util::FlagSet flags;
  flags.DefineString("file", "", "Metrics JSONL file to report on");
  flags.DefineInt("run", -1, "Print one run in full instead of aggregating");
  flags.DefineString("metric", "", "Only metrics whose name contains this");
  flags.DefineString("agg-memory-budget", "unlimited",
                     "Byte budget for gauge aggregation (e.g. 64k, 256M; "
                     "0/unlimited = never spill)");
  flags.DefineString("spill-dir", "",
                     "Directory for aggregation spill runs (default: a "
                     "private temp dir)");
  flags.DefineBool("help", false, "Show usage");

  // Accept the file as the sole positional argument too. An arg is only
  // positional if it isn't the space-separated value of the flag before
  // it (`--run 3 file.jsonl` and `--agg-memory-budget 64k file.jsonl`
  // must both leave file.jsonl as the file).
  const auto takes_value = [](const char* arg) {
    for (const char* name : {"--file", "--run", "--metric",
                             "--agg-memory-budget", "--spill-dir"}) {
      if (std::strcmp(arg, name) == 0) return true;
    }
    return false;
  };
  std::vector<const char*> args;
  std::string positional;
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] != '-' && positional.empty() &&
        (args.empty() || !takes_value(args.back()))) {
      positional = argv[i];
    } else {
      args.push_back(argv[i]);
    }
  }
  const auto status =
      flags.Parse(static_cast<int>(args.size()), args.data());
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.message().c_str(),
                 flags.Usage("metrics_report").c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::printf("%s", flags.Usage("metrics_report").c_str());
    return 0;
  }
  std::string path = flags.GetString("file");
  if (path.empty()) path = positional;
  if (path.empty()) {
    std::fprintf(stderr, "usage: metrics_report <file.jsonl> [--run=N]\n");
    return 2;
  }

  ipda::exp::MetricsReportOptions options;
  options.run = flags.GetInt("run");
  options.metric_filter = flags.GetString("metric");
  options.spill_dir = flags.GetString("spill-dir");
  const auto budget =
      ipda::util::ParseByteSize(flags.GetString("agg-memory-budget"));
  if (!budget.ok()) {
    std::fprintf(stderr, "metrics_report: --agg-memory-budget: %s\n",
                 budget.status().message().c_str());
    return 2;
  }
  options.agg_memory_budget_bytes = budget.value();

  return ipda::exp::RunMetricsReport(path, options, stdout, stderr);
}
