// ipda_sim: command-line driver for one-off aggregation experiments.
//
//   $ ipda_sim --protocol=ipda --nodes=500 --function=average --l=2
//              [--runs=10 --seed=1 --csv]
//   $ ipda_sim --protocol=tag --nodes=300 --function=sum
//   $ ipda_sim --nodes=400 --dot-out=/tmp/trees.dot   # Render with neato.
//
// Prints one row per run plus a summary; --csv switches to
// machine-readable output.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "agg/aggregate_function.h"
#include "agg/export.h"
#include "agg/kipda/kipda_protocol.h"
#include "agg/reading.h"
#include "agg/run_metrics.h"
#include "agg/runner.h"
#include "agg/shard/sharded.h"
#include "crypto/stats.h"
#include "exp/engine.h"
#include "exp/resilient.h"
#include "fault/churn_plan.h"
#include "fault/fault_plan.h"
#include "obs/metrics.h"
#include "sim/simulator.h"
#include "stats/summary.h"
#include "stats/table.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/signal.h"

namespace ipda {
namespace {

std::unique_ptr<agg::AggregateFunction> MakeFunction(
    const std::string& name) {
  if (name == "count") return agg::MakeCount();
  if (name == "sum") return agg::MakeSum();
  if (name == "average") return agg::MakeAverage();
  if (name == "variance") return agg::MakeVariance();
  if (name == "max") return agg::MakePowerMeanExtremum(32.0);
  if (name == "min") return agg::MakePowerMeanExtremum(-32.0);
  return nullptr;
}

int Main(int argc, char** argv) {
  util::FlagSet flags;
  flags.DefineString("protocol", "ipda",
                     "ipda | tag | smart | cpda | kipda (max/min only)");
  flags.DefineInt("nodes", 400, "deployment size incl. base station");
  flags.DefineDouble("area", 400.0, "square side in meters");
  flags.DefineDouble("range", 50.0, "radio range in meters");
  flags.DefineString("function", "count",
                     "count|sum|average|variance|max|min");
  flags.DefineDouble("reading-lo", 15.0, "uniform sensor reading lower");
  flags.DefineDouble("reading-hi", 30.0, "uniform sensor reading upper");
  flags.DefineInt("l", 2, "iPDA slices per reading");
  flags.DefineDouble("th", 5.0, "iPDA acceptance threshold Th");
  flags.DefineDouble("slice-range", 0.0,
                     "slice noise range (0 = auto from readings)");
  flags.DefineBool("adaptive", false, "adaptive role probabilities (Eq.1)");
  flags.DefineBool("impatient", false, "impatient-join extension");
  flags.DefineBool("encrypt", true, "link-encrypt slices");
  flags.DefineString("cipher", "xtea",
                     "link cipher backend: xtea | aesni | chacha20");
  flags.DefineString("faults", "",
                     "fault spec: crash=<id>@<s>, recover=<id>@<s>, "
                     "crash-frac=<f>@<s>, loss=<p>, dup=<p>, jitter=<ms>; "
                     "comma-separated");
  flags.DefineBool("failover", false,
                   "iPDA failure resilience (slice retargeting + parent "
                   "failover + round deadline)");
  flags.DefineString("churn", "",
                     "churn spec: join=<id>@<s>, leave=<id>@<s>, "
                     "move=<id>:<x>:<y>:<v>@<s>, churn=<rate>[:<down_s>], "
                     "mobility=<frac>:<v>; comma-separated");
  flags.DefineString("churn-policy", "none",
                     "iPDA response to --churn events: none | repair "
                     "(incremental disjoint-tree self-healing) | rebuild "
                     "(throttled full HELLO re-flood)");
  flags.DefineInt("sinks", 1,
                  "base stations; >1 shards the deployment across a "
                  "Voronoi partition of sinks and merges per-shard "
                  "aggregates at a top-level sink (ipda only)");
  flags.DefineInt("runs", 5, "independent runs");
  flags.DefineInt("seed", 1, "base seed (run i uses seed+i)");
  flags.DefineInt("jobs", 0,
                  "worker threads for the runs (0 = all hardware "
                  "threads); output is identical for any value");
  flags.DefineString("journal", "",
                     "append-only JSONL run journal; completed runs are "
                     "fsynced so a killed invocation is resumable");
  flags.DefineString("resume", "",
                     "journal from an interrupted invocation; completed "
                     "runs replay byte-identically, the rest execute");
  flags.DefineDouble("run-deadline", 0.0,
                     "wall-clock seconds per run attempt before the "
                     "watchdog cancels it (0 = no watchdog)");
  flags.DefineInt("event-budget", 0,
                  "max simulator events per run attempt (0 = unlimited; "
                  "deterministic, unlike --run-deadline)");
  flags.DefineInt("max-retries", 0,
                  "failed-run retries with a forked seed before the run "
                  "is recorded as a permanent failure");
  flags.DefineBool("csv", false, "machine-readable output");
  flags.DefineString("metrics", "",
                     "write per-run metrics snapshots (counters, gauges, "
                     "histograms, phase spans) as JSONL; see EXPERIMENTS.md");
  flags.DefineString("dot-out", "",
                     "write the constructed trees as Graphviz DOT "
                     "(ipda, first run only)");
  flags.DefineString("roles-out", "",
                     "write per-node roles as CSV (ipda, first run only)");
  flags.DefineBool("help", false, "show usage");

  if (auto status = flags.Parse(argc - 1, argv + 1); !status.ok()) {
    std::fprintf(stderr, "%s\n%s", status.ToString().c_str(),
                 flags.Usage(argv[0]).c_str());
    return 2;
  }
  if (flags.GetBool("help")) {
    std::fputs(flags.Usage(argv[0]).c_str(), stdout);
    return 0;
  }

  const std::string protocol = flags.GetString("protocol");
  auto function = MakeFunction(flags.GetString("function"));
  if (function == nullptr) {
    std::fprintf(stderr, "unknown --function=%s\n",
                 flags.GetString("function").c_str());
    return 2;
  }
  const bool counting = flags.GetString("function") == "count";
  auto field = counting
                   ? agg::MakeConstantField(1.0)
                   : agg::MakeUniformField(
                         flags.GetDouble("reading-lo"),
                         flags.GetDouble("reading-hi"),
                         static_cast<uint64_t>(flags.GetInt("seed")));

  agg::RunConfig config;
  config.deployment.node_count =
      static_cast<size_t>(flags.GetInt("nodes"));
  config.deployment.area =
      net::Area{flags.GetDouble("area"), flags.GetDouble("area")};
  config.range = flags.GetDouble("range");
  if (const std::string spec = flags.GetString("faults"); !spec.empty()) {
    auto plan = fault::ParseFaultSpec(spec);
    if (!plan.ok()) {
      std::fprintf(stderr, "bad --faults: %s\n",
                   plan.status().ToString().c_str());
      return 2;
    }
    config.faults = *plan;
  }
  if (const std::string spec = flags.GetString("churn"); !spec.empty()) {
    auto plan = fault::ParseChurnSpec(spec);
    if (!plan.ok()) {
      std::fprintf(stderr, "bad --churn: %s\n",
                   plan.status().ToString().c_str());
      return 2;
    }
    config.churn = *plan;
  }

  agg::IpdaConfig ipda;
  ipda.slice_count = static_cast<uint32_t>(flags.GetInt("l"));
  ipda.threshold = flags.GetDouble("th");
  ipda.adaptive_roles = flags.GetBool("adaptive");
  ipda.impatient_join = flags.GetBool("impatient");
  ipda.encrypt_slices = flags.GetBool("encrypt");
  {
    auto cipher = crypto::ParseCipherKind(flags.GetString("cipher"));
    if (!cipher.ok()) {
      std::fprintf(stderr, "bad --cipher: %s\n",
                   cipher.status().ToString().c_str());
      return 2;
    }
    ipda.cipher = *cipher;
  }
  if (flags.GetBool("failover")) {
    ipda.retarget_slices = true;
    ipda.parent_failover = true;
  }
  if (const std::string policy = flags.GetString("churn-policy");
      policy == "repair") {
    ipda.churn_response = agg::ChurnResponse::kRepair;
  } else if (policy == "rebuild") {
    ipda.churn_response = agg::ChurnResponse::kRebuild;
  } else if (policy != "none") {
    std::fprintf(stderr, "unknown --churn-policy=%s\n", policy.c_str());
    return 2;
  }
  const double slice_range = flags.GetDouble("slice-range");
  ipda.slice_range = slice_range > 0.0
                         ? slice_range
                         : (counting ? 1.0 : flags.GetDouble("reading-hi"));

  const bool csv = flags.GetBool("csv");
  const size_t runs = static_cast<size_t>(flags.GetInt("runs"));
  const uint64_t base_seed = static_cast<uint64_t>(flags.GetInt("seed"));

  if (protocol != "tag" && protocol != "smart" && protocol != "cpda" &&
      protocol != "kipda" && protocol != "ipda") {
    std::fprintf(stderr, "unknown --protocol=%s\n", protocol.c_str());
    return 2;
  }
  if (protocol == "kipda") {
    const std::string fn = flags.GetString("function");
    if (fn != "max" && fn != "min") {
      std::fprintf(stderr, "kipda computes max or min only\n");
      return 2;
    }
  }
  const size_t sinks = static_cast<size_t>(flags.GetInt("sinks"));
  if (sinks == 0) {
    std::fprintf(stderr, "--sinks must be >= 1\n");
    return 2;
  }
  if (sinks > 1 && protocol != "ipda") {
    std::fprintf(stderr, "--sinks=%zu requires --protocol=ipda\n", sinks);
    return 2;
  }
  if (sinks > 1 && (!config.faults.empty() || !config.churn.empty())) {
    std::fprintf(stderr,
                 "--faults/--churn are not supported with --sinks > 1\n");
    return 2;
  }

  // Every run is shared-nothing (own Simulator, own Network), so the runs
  // fan across the engine; the ordered fold below keeps output identical
  // for any --jobs value. The resilient executor adds journaling, retry
  // and drain on top without touching that contract: attempt-0 seeds stay
  // base_seed + r via base_seed_fn.
  struct RunOutcome {
    double result = 0.0;
    double truth = 0.0;
    double accuracy = 0.0;
    uint64_t bytes = 0;
    bool accepted = true;
    bool degraded = false;
  };
  util::InstallDrainHandler();
  exp::Engine engine(exp::ResolveJobs(flags.GetInt("jobs")));

  // Per-run metrics side channel. Each body writes only its own slot
  // (shared-nothing, like the payloads), and the ordered emission below
  // joins them after the sweep — so the file's bytes are identical for
  // any --jobs value. Runs replayed from a resume journal never execute
  // a body and leave their slot empty; the header's run count lets a
  // reader detect the gap.
  const std::string metrics_path = flags.GetString("metrics");
  std::vector<std::string> metrics_lines(runs);

  exp::ResilientOptions resilience;
  resilience.sweep_seed = base_seed;
  resilience.event_budget =
      static_cast<uint64_t>(flags.GetInt("event-budget"));
  resilience.run_deadline_s = flags.GetDouble("run-deadline");
  resilience.max_retries = static_cast<uint32_t>(flags.GetInt("max-retries"));
  resilience.journal_path = flags.GetString("journal");
  resilience.resume_path = flags.GetString("resume");
  resilience.experiment = "ipda_sim";
  // Everything result-affecting goes into the digest; scheduling and
  // output-shape flags stay out so e.g. --jobs may differ across resume.
  resilience.config_digest = "ipda_sim|" + flags.Canonical({
                                 "jobs", "journal", "resume", "run-deadline",
                                 "csv", "dot-out", "roles-out", "metrics",
                                 "help"});
  resilience.base_seed_fn = [base_seed](size_t, size_t r) {
    return base_seed + r;
  };

  const auto body =
      [&](const exp::AttemptContext& ctx) -> util::Result<std::string> {
    agg::RunConfig run_config = config;
    run_config.seed = ctx.seed;
    run_config.control.cancel = ctx.cancel;
    run_config.control.event_budget = ctx.event_budget;
    RunOutcome out;
    // Stashes the run's registry snapshot in its side-channel slot.
    const auto stash_metrics = [&](const obs::Snapshot& snapshot) {
      if (metrics_path.empty()) return;
      metrics_lines[ctx.run] =
          obs::SnapshotJsonLine(snapshot, ctx.run, ctx.seed);
    };
    if (protocol == "tag") {
      auto run = agg::RunTag(run_config, *function, *field);
      if (!run.ok()) return run.status();
      out.result = run->result;
      out.truth = function->Finalize(run->true_acc);
      out.accuracy = run->accuracy;
      out.bytes = run->traffic.bytes_sent;
      stash_metrics(run->metrics);
    } else if (protocol == "smart") {
      agg::SmartConfig smart;
      smart.slice_count =
          static_cast<uint32_t>(flags.GetInt("l")) + 1;  // J = l+1 pieces.
      smart.slice_range = ipda.slice_range;
      smart.encrypt_slices = ipda.encrypt_slices;
      smart.cipher = ipda.cipher;
      auto run = agg::RunSmart(run_config, *function, *field, smart);
      if (!run.ok()) return run.status();
      out.result = run->result;
      out.truth = function->Finalize(run->true_acc);
      out.accuracy = run->accuracy;
      out.bytes = run->traffic.bytes_sent;
      stash_metrics(run->metrics);
    } else if (protocol == "cpda") {
      agg::CpdaConfig cpda;
      cpda.encrypt_shares = ipda.encrypt_slices;
      cpda.cipher = ipda.cipher;
      auto run = agg::RunCpda(run_config, *function, *field, cpda);
      if (!run.ok()) return run.status();
      out.result = run->result;
      out.truth = function->Finalize(run->true_acc);
      out.accuracy = run->accuracy;
      out.bytes = run->traffic.bytes_sent;
      stash_metrics(run->metrics);
    } else if (protocol == "kipda") {
      auto topology = agg::BuildRunTopology(run_config);
      if (!topology.ok()) return topology.status();
      sim::Simulator simulator(run_config.seed);
      simulator.scheduler().SetCancelToken(run_config.control.cancel);
      simulator.scheduler().SetEventBudget(run_config.control.event_budget);
      const crypto::CryptoStats crypto_base = crypto::ThreadCryptoStats();
      net::Network network(&simulator, std::move(*topology));
      agg::KipdaConfig kipda;
      kipda.maximize = flags.GetString("function") == "max";
      kipda.value_floor = flags.GetDouble("reading-lo") - 1.0;
      kipda.value_ceiling = flags.GetDouble("reading-hi") + 1.0;
      const auto readings = field->Sample(network.topology());
      agg::KipdaProtocol live(&network, kipda);
      live.SetReadings(readings);
      live.Start();
      simulator.RunUntil(live.Duration());
      if (simulator.scheduler().interrupted()) {
        return util::UnavailableError("kipda run interrupted");
      }
      out.result = live.FinalizedResult();
      out.truth = kipda.maximize ? kipda.value_floor : kipda.value_ceiling;
      for (size_t i = 1; i < readings.size(); ++i) {
        out.truth = kipda.maximize ? std::max(out.truth, readings[i])
                                   : std::min(out.truth, readings[i]);
      }
      out.accuracy = out.truth != 0.0 ? out.result / out.truth : 0.0;
      out.bytes = network.counters().Totals().bytes_sent;
      if (!metrics_path.empty()) {
        agg::CollectRunMetrics(simulator, network, crypto_base);
        stash_metrics(
            obs::TakeSnapshot(simulator.metrics(), &simulator.trace()));
      }
    } else if (sinks > 1) {  // sharded ipda
      agg::ShardedConfig sharded;
      sharded.sinks = sinks;
      auto run = agg::RunShardedIpda(run_config, *function, *field, ipda,
                                     sharded);
      if (!run.ok()) return run.status();
      out.result = run->result;
      out.truth = function->Finalize(run->true_acc);
      out.accuracy = run->accuracy;
      out.bytes = run->traffic.bytes_sent;
      out.accepted = run->decision.accepted;
      out.degraded = run->degraded;
      // No metrics side channel: each shard has its own registry, and a
      // merged snapshot would double-count nothing meaningfully.
    } else {  // ipda
      auto run = agg::RunIpda(run_config, *function, *field, ipda);
      if (!run.ok()) return run.status();
      out.result = run->result;
      out.truth = function->Finalize(run->true_acc);
      out.accuracy = run->accuracy;
      out.bytes = run->traffic.bytes_sent;
      out.accepted = run->stats.decision.accepted;
      out.degraded = run->stats.degraded;
      stash_metrics(run->metrics);
    }
    // "%.17g" round-trips doubles exactly, so replayed runs print the
    // same bytes a live run would.
    char buf[200];
    std::snprintf(buf, sizeof(buf), "%.17g,%.17g,%.17g,%llu,%d,%d",
                  out.result, out.truth, out.accuracy,
                  static_cast<unsigned long long>(out.bytes),
                  out.accepted ? 1 : 0, out.degraded ? 1 : 0);
    return std::string(buf);
  };

  auto swept = exp::RunResilientSweep(engine, {protocol}, runs, resilience,
                                      body);
  if (!swept.ok()) {
    std::fprintf(stderr, "%s\n", swept.status().ToString().c_str());
    return 1;
  }
  const exp::ResilientReport& report = *swept;
  if (report.drained) {
    std::fprintf(stderr,
                 "drained with %zu/%zu runs journaled; resume with: %s "
                 "--resume %s\n",
                 report.replayed + report.executed, report.runs.size(),
                 argv[0],
                 report.journal_path.empty() ? "<journal>"
                                             : report.journal_path.c_str());
    return util::kDrainExitCode;
  }

  if (!metrics_path.empty()) {
    std::FILE* mf = std::fopen(metrics_path.c_str(), "w");
    if (mf == nullptr) {
      std::fprintf(stderr, "cannot write --metrics file %s\n",
                   metrics_path.c_str());
      return 1;
    }
    const std::string header =
        obs::MetricsHeaderLine("ipda_sim", runs, base_seed);
    std::fwrite(header.data(), 1, header.size(), mf);
    // Runs emit in index order regardless of completion order; replayed
    // (--resume) and permanently failed runs have empty slots and emit
    // nothing.
    for (size_t r = 0; r < runs; ++r) {
      std::fwrite(metrics_lines[r].data(), 1, metrics_lines[r].size(), mf);
    }
    std::fclose(mf);
  }

  stats::Summary accuracy, bytes, result_summary;
  size_t accepted = 0;
  if (csv) {
    std::printf("run,seed,result,truth,accuracy,accepted,degraded,bytes\n");
  }
  for (size_t r = 0; r < runs; ++r) {
    const exp::RunStatus& slot = report.runs[r];
    RunOutcome out;
    int out_accepted = 0;
    int out_degraded = 0;
    unsigned long long out_bytes = 0;
    if (!slot.ok ||
        std::sscanf(slot.payload.c_str(), "%lg,%lg,%lg,%llu,%d,%d",
                    &out.result, &out.truth, &out.accuracy, &out_bytes,
                    &out_accepted, &out_degraded) != 6) {
      std::fprintf(stderr, "run %zu failed permanently (%u attempts): %s\n",
                   r, slot.attempts, slot.payload.c_str());
      continue;
    }
    out.bytes = out_bytes;
    out.accepted = out_accepted != 0;
    out.degraded = out_degraded != 0;
    accuracy.Add(out.accuracy);
    bytes.Add(static_cast<double>(out.bytes));
    result_summary.Add(out.result);
    accepted += out.accepted ? 1 : 0;
    if (csv) {
      std::printf("%zu,%llu,%.6f,%.6f,%.6f,%d,%d,%llu\n", r,
                  static_cast<unsigned long long>(slot.seed),
                  out.result, out.truth, out.accuracy,
                  out.accepted ? 1 : 0, out.degraded ? 1 : 0,
                  static_cast<unsigned long long>(out.bytes));
    } else {
      std::printf("run %2zu: %s = %.4f (truth %.4f, accuracy %.4f) %s%s, "
                  "%llu bytes\n",
                  r, function->name().c_str(), out.result, out.truth,
                  out.accuracy, out.accepted ? "accepted" : "REJECTED",
                  out.degraded ? " (degraded)" : "",
                  static_cast<unsigned long long>(out.bytes));
    }
  }

  if (protocol == "ipda" && runs > 0 &&
      (!flags.GetString("dot-out").empty() ||
       !flags.GetString("roles-out").empty())) {
    // Re-run the first deployment with direct protocol access for the
    // exports.
    agg::RunConfig run_config = config;
    run_config.seed = base_seed;
    auto topology = agg::BuildRunTopology(run_config);
    if (!topology.ok()) return 1;
    sim::Simulator simulator(run_config.seed);
    net::Network network(&simulator, std::move(*topology));
    agg::IpdaProtocol live(&network, function.get(), ipda);
    live.SetReadings(field->Sample(network.topology()));
    live.Start();
    simulator.RunUntil(live.Duration());
    live.Finish();
    if (const std::string path = flags.GetString("dot-out");
        !path.empty()) {
      auto status = agg::WriteTextFile(
          path, agg::IpdaTreesToDot(live, network.topology()));
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
    }
    if (const std::string path = flags.GetString("roles-out");
        !path.empty()) {
      auto status = agg::WriteTextFile(
          path, agg::IpdaRolesToCsv(live, network.topology()));
      if (!status.ok()) {
        std::fprintf(stderr, "%s\n", status.ToString().c_str());
        return 1;
      }
    }
  }
  if (!csv) {
    // FormatDegradedMeanCi prints the plain CI when every run survived;
    // with permanent failures it widens the interval and appends
    // " [n=<effective>/<requested>]".
    std::printf("\n%zu runs: accuracy %s, %zu accepted, mean %.1f bytes\n",
                runs,
                stats::FormatDegradedMeanCi(accuracy, runs, 4).c_str(),
                accepted, bytes.mean());
  }
  return report.failed > 0 ? 1 : 0;
}

}  // namespace
}  // namespace ipda

int main(int argc, char** argv) { return ipda::Main(argc, argv); }
