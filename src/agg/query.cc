#include "agg/query.h"

namespace ipda::agg {

void EncodeQueryInto(const Query& query, util::ByteWriter& writer) {
  writer.WriteU8(static_cast<uint8_t>(query.kind));
  writer.WriteU16(query.round);
  writer.WriteF64(query.param_a);
  writer.WriteF64(query.param_b);
  writer.WriteU16(query.param_c);
}

util::Bytes EncodeQuery(const Query& query) {
  util::ByteWriter writer;
  EncodeQueryInto(query, writer);
  return writer.TakeBytes();
}

util::Result<Query> DecodeQuery(const util::Bytes& payload) {
  util::ByteReader reader(payload);
  return DecodeQueryFrom(reader);
}

util::Result<Query> DecodeQueryFrom(util::ByteReader& reader) {
  IPDA_ASSIGN_OR_RETURN(uint8_t kind, reader.ReadU8());
  if (kind < 1 || kind > 7) {
    return util::InvalidArgumentError("bad query kind");
  }
  Query query;
  query.kind = static_cast<QueryKind>(kind);
  IPDA_ASSIGN_OR_RETURN(query.round, reader.ReadU16());
  IPDA_ASSIGN_OR_RETURN(query.param_a, reader.ReadF64());
  IPDA_ASSIGN_OR_RETURN(query.param_b, reader.ReadF64());
  IPDA_ASSIGN_OR_RETURN(query.param_c, reader.ReadU16());
  return query;
}

util::Result<std::unique_ptr<AggregateFunction>> FunctionForQuery(
    const Query& query) {
  switch (query.kind) {
    case QueryKind::kCount:
      return MakeCount();
    case QueryKind::kSum:
      return MakeSum();
    case QueryKind::kAverage:
      return MakeAverage();
    case QueryKind::kVariance:
      return MakeVariance();
    case QueryKind::kMaxApprox:
      if (query.param_a <= 0.0) {
        return util::InvalidArgumentError("MAX query needs exponent > 0");
      }
      return MakePowerMeanExtremum(query.param_a);
    case QueryKind::kMinApprox:
      if (query.param_a <= 0.0) {
        return util::InvalidArgumentError("MIN query needs exponent > 0");
      }
      return MakePowerMeanExtremum(-query.param_a);
    case QueryKind::kHistogram:
      if (query.param_c == 0 || query.param_a >= query.param_b) {
        return util::InvalidArgumentError("bad histogram query params");
      }
      return MakeHistogram(query.param_a, query.param_b, query.param_c);
  }
  return util::InvalidArgumentError("unhandled query kind");
}

Query CountQuery(uint16_t round) {
  return Query{QueryKind::kCount, round, 0.0, 0.0, 0};
}

Query SumQuery(uint16_t round) {
  return Query{QueryKind::kSum, round, 0.0, 0.0, 0};
}

Query AverageQuery(uint16_t round) {
  return Query{QueryKind::kAverage, round, 0.0, 0.0, 0};
}

Query VarianceQuery(uint16_t round) {
  return Query{QueryKind::kVariance, round, 0.0, 0.0, 0};
}

Query MaxQuery(double exponent, uint16_t round) {
  return Query{QueryKind::kMaxApprox, round, exponent, 0.0, 0};
}

Query MinQuery(double exponent, uint16_t round) {
  return Query{QueryKind::kMinApprox, round, exponent, 0.0, 0};
}

Query HistogramQuery(double lo, double hi, uint16_t buckets,
                     uint16_t round) {
  return Query{QueryKind::kHistogram, round, lo, hi, buckets};
}

}  // namespace ipda::agg
