// Additive aggregate functions (§II-B).
//
// The paper restricts attention to additive aggregation y = Σ f_i because
// it underlies most statistics: each sensor maps its reading to a small
// vector of contributions, the network adds vectors componentwise, and the
// base station finalizes. SUM/COUNT/AVERAGE/VARIANCE are exact; MIN/MAX are
// approximated by the paper's power-mean trick
// max(x_1..x_n) = lim_{k→∞} (Σ x_i^k)^{1/k}.

#ifndef IPDA_AGG_AGGREGATE_FUNCTION_H_
#define IPDA_AGG_AGGREGATE_FUNCTION_H_

#include <memory>
#include <string>
#include <vector>

#include "util/result.h"

namespace ipda::agg {

// Componentwise additive accumulator.
using Vector = std::vector<double>;

// a += b. Sizes must match.
void AddInto(Vector& a, const Vector& b);

class AggregateFunction {
 public:
  virtual ~AggregateFunction() = default;

  virtual std::string name() const = 0;

  // Number of additive components each sensor contributes.
  virtual size_t arity() const = 0;

  // Maps one sensor reading to its contribution vector (size == arity()).
  virtual Vector Contribution(double reading) const = 0;

  // Reduces the network-wide accumulated vector to the answer.
  virtual double Finalize(const Vector& accumulated) const = 0;
};

// y = Σ r_i.
std::unique_ptr<AggregateFunction> MakeSum();
// y = N (every sensor contributes 1).
std::unique_ptr<AggregateFunction> MakeCount();
// y = Σ r_i / N, via components [1, r].
std::unique_ptr<AggregateFunction> MakeAverage();
// y = Σ r_i² / N − (Σ r_i / N)², via components [1, r, r²] (§II-B example).
std::unique_ptr<AggregateFunction> MakeVariance();
// Power-mean approximation of MAX (k > 0) or MIN (k < 0): (Σ r^k)^{1/k}.
// Readings must be positive. Larger |k| tightens the approximation.
std::unique_ptr<AggregateFunction> MakePowerMeanExtremum(double k);
// Histogram over [lo, hi) with `buckets` equal-width bins (readings
// outside clamp to the edge bins). Bucket counts are additive, so the
// whole distribution aggregates privately through slicing like any other
// vector. The accumulated Vector IS the histogram; Finalize() returns the
// total count.
std::unique_ptr<AggregateFunction> MakeHistogram(double lo, double hi,
                                                 size_t buckets);
// Lower edge of each histogram bin, for labeling results.
std::vector<double> HistogramBucketLowerBounds(double lo, double hi,
                                               size_t buckets);

}  // namespace ipda::agg

#endif  // IPDA_AGG_AGGREGATE_FUNCTION_H_
