#include "agg/aggregate_function.h"

#include <cmath>

#include "util/check.h"

namespace ipda::agg {

void AddInto(Vector& a, const Vector& b) {
  IPDA_CHECK_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) a[i] += b[i];
}

namespace {

class SumFunction : public AggregateFunction {
 public:
  std::string name() const override { return "SUM"; }
  size_t arity() const override { return 1; }
  Vector Contribution(double reading) const override { return {reading}; }
  double Finalize(const Vector& acc) const override { return acc[0]; }
};

class CountFunction : public AggregateFunction {
 public:
  std::string name() const override { return "COUNT"; }
  size_t arity() const override { return 1; }
  Vector Contribution(double) const override { return {1.0}; }
  double Finalize(const Vector& acc) const override { return acc[0]; }
};

class AverageFunction : public AggregateFunction {
 public:
  std::string name() const override { return "AVERAGE"; }
  size_t arity() const override { return 2; }
  Vector Contribution(double reading) const override {
    return {1.0, reading};
  }
  double Finalize(const Vector& acc) const override {
    return acc[0] > 0.0 ? acc[1] / acc[0] : 0.0;
  }
};

class VarianceFunction : public AggregateFunction {
 public:
  std::string name() const override { return "VARIANCE"; }
  size_t arity() const override { return 3; }
  Vector Contribution(double reading) const override {
    return {1.0, reading, reading * reading};
  }
  double Finalize(const Vector& acc) const override {
    if (acc[0] <= 0.0) return 0.0;
    const double mean = acc[1] / acc[0];
    return acc[2] / acc[0] - mean * mean;
  }
};

class PowerMeanExtremum : public AggregateFunction {
 public:
  explicit PowerMeanExtremum(double k) : k_(k) {}
  std::string name() const override { return k_ > 0 ? "MAX~" : "MIN~"; }
  size_t arity() const override { return 1; }
  Vector Contribution(double reading) const override {
    IPDA_DCHECK(reading > 0.0);
    return {std::pow(reading, k_)};
  }
  double Finalize(const Vector& acc) const override {
    if (acc[0] <= 0.0) return 0.0;
    return std::pow(acc[0], 1.0 / k_);
  }

 private:
  double k_;
};

class HistogramFunction : public AggregateFunction {
 public:
  HistogramFunction(double lo, double hi, size_t buckets)
      : lo_(lo), hi_(hi), buckets_(buckets) {
    IPDA_CHECK_GT(buckets, 0u);
    IPDA_CHECK_LT(lo, hi);
  }
  std::string name() const override { return "HISTOGRAM"; }
  size_t arity() const override { return buckets_; }
  Vector Contribution(double reading) const override {
    Vector v(buckets_, 0.0);
    const double span = hi_ - lo_;
    double idx = (reading - lo_) / span * static_cast<double>(buckets_);
    if (idx < 0.0) idx = 0.0;
    size_t bucket = static_cast<size_t>(idx);
    if (bucket >= buckets_) bucket = buckets_ - 1;
    v[bucket] = 1.0;
    return v;
  }
  double Finalize(const Vector& acc) const override {
    double total = 0.0;
    for (double c : acc) total += c;
    return total;
  }

 private:
  double lo_;
  double hi_;
  size_t buckets_;
};

}  // namespace

std::unique_ptr<AggregateFunction> MakeSum() {
  return std::make_unique<SumFunction>();
}

std::unique_ptr<AggregateFunction> MakeCount() {
  return std::make_unique<CountFunction>();
}

std::unique_ptr<AggregateFunction> MakeAverage() {
  return std::make_unique<AverageFunction>();
}

std::unique_ptr<AggregateFunction> MakeVariance() {
  return std::make_unique<VarianceFunction>();
}

std::unique_ptr<AggregateFunction> MakePowerMeanExtremum(double k) {
  IPDA_CHECK_NE(k, 0.0);
  return std::make_unique<PowerMeanExtremum>(k);
}

std::unique_ptr<AggregateFunction> MakeHistogram(double lo, double hi,
                                                 size_t buckets) {
  return std::make_unique<HistogramFunction>(lo, hi, buckets);
}

std::vector<double> HistogramBucketLowerBounds(double lo, double hi,
                                               size_t buckets) {
  IPDA_CHECK_GT(buckets, 0u);
  IPDA_CHECK_LT(lo, hi);
  std::vector<double> bounds;
  bounds.reserve(buckets);
  const double width = (hi - lo) / static_cast<double>(buckets);
  for (size_t b = 0; b < buckets; ++b) {
    bounds.push_back(lo + width * static_cast<double>(b));
  }
  return bounds;
}

}  // namespace ipda::agg
