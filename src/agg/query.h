// Aggregation queries (§III-A: "Data aggregation is initiated by a base
// station, which broadcasts a query to the whole network").
//
// The query spec rides inside every HELLO frame (as in TAG, where tree
// construction and query dissemination are one flood), so each sensor
// learns what to compute — function, parameters, round id — from the same
// message that recruits it into the tree.

#ifndef IPDA_AGG_QUERY_H_
#define IPDA_AGG_QUERY_H_

#include <cstdint>
#include <memory>

#include "agg/aggregate_function.h"
#include "util/bytes.h"
#include "util/result.h"

namespace ipda::agg {

enum class QueryKind : uint8_t {
  kCount = 1,
  kSum = 2,
  kAverage = 3,
  kVariance = 4,
  kMaxApprox = 5,   // Power mean, exponent in param_a.
  kMinApprox = 6,   // Power mean, exponent -param_a.
  kHistogram = 7,   // [param_a, param_b) split into param_c buckets.
};

struct Query {
  QueryKind kind = QueryKind::kCount;
  uint16_t round = 0;   // Aggregation round / epoch id.
  double param_a = 0.0;
  double param_b = 0.0;
  uint16_t param_c = 0;

  friend bool operator==(const Query& a, const Query& b) {
    return a.kind == b.kind && a.round == b.round &&
           a.param_a == b.param_a && a.param_b == b.param_b &&
           a.param_c == b.param_c;
  }
};

// Wire format: [u8 kind][u16 round][f64 a][f64 b][u16 c] = 21 bytes.
util::Bytes EncodeQuery(const Query& query);
util::Result<Query> DecodeQuery(const util::Bytes& payload);
inline constexpr size_t kQueryWireBytes = 21;

// In-place variants for enclosing codecs (HELLO piggybacks the query).
void EncodeQueryInto(const Query& query, util::ByteWriter& writer);
util::Result<Query> DecodeQueryFrom(util::ByteReader& reader);

// Instantiates the aggregate function a sensor must run for `query`.
// Fails on malformed parameters (e.g. zero histogram buckets).
util::Result<std::unique_ptr<AggregateFunction>> FunctionForQuery(
    const Query& query);

// Convenience constructors.
Query CountQuery(uint16_t round = 0);
Query SumQuery(uint16_t round = 0);
Query AverageQuery(uint16_t round = 0);
Query VarianceQuery(uint16_t round = 0);
Query MaxQuery(double exponent = 32.0, uint16_t round = 0);
Query MinQuery(double exponent = 32.0, uint16_t round = 0);
Query HistogramQuery(double lo, double hi, uint16_t buckets,
                     uint16_t round = 0);

}  // namespace ipda::agg

#endif  // IPDA_AGG_QUERY_H_
