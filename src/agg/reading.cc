#include "agg/reading.h"

namespace ipda::agg {

std::vector<double> SensorField::Sample(
    const net::Topology& topology) const {
  std::vector<double> readings(topology.node_count(), 0.0);
  for (net::NodeId id = 1; id < topology.node_count(); ++id) {
    readings[id] = ReadingFor(id, topology);
  }
  return readings;
}

namespace {

class ConstantField : public SensorField {
 public:
  explicit ConstantField(double value) : value_(value) {}
  double ReadingFor(net::NodeId, const net::Topology&) const override {
    return value_;
  }

 private:
  double value_;
};

class UniformField : public SensorField {
 public:
  UniformField(double lo, double hi, uint64_t seed)
      : lo_(lo), hi_(hi), seed_(seed) {}
  double ReadingFor(net::NodeId id, const net::Topology&) const override {
    util::Rng rng(util::Mix64(seed_, id));
    return rng.UniformDouble(lo_, hi_);
  }

 private:
  double lo_;
  double hi_;
  uint64_t seed_;
};

class GradientField : public SensorField {
 public:
  GradientField(double base, double slope_x, double slope_y)
      : base_(base), slope_x_(slope_x), slope_y_(slope_y) {}
  double ReadingFor(net::NodeId id,
                    const net::Topology& topology) const override {
    const net::Point2D& p = topology.position(id);
    return base_ + slope_x_ * p.x + slope_y_ * p.y;
  }

 private:
  double base_;
  double slope_x_;
  double slope_y_;
};

}  // namespace

std::unique_ptr<SensorField> MakeConstantField(double value) {
  return std::make_unique<ConstantField>(value);
}

std::unique_ptr<SensorField> MakeUniformField(double lo, double hi,
                                              uint64_t seed) {
  return std::make_unique<UniformField>(lo, hi, seed);
}

std::unique_ptr<SensorField> MakeGradientField(double base, double slope_x,
                                               double slope_y) {
  return std::make_unique<GradientField>(base, slope_x, slope_y);
}

}  // namespace ipda::agg
