// One-call experiment runs: deployment → network → protocol → outcome.
// Benches, examples, and integration tests all drive simulations through
// these helpers so every experiment shares identical plumbing.

#ifndef IPDA_AGG_RUNNER_H_
#define IPDA_AGG_RUNNER_H_

#include <vector>

#include "agg/aggregate_function.h"
#include "agg/cpda/cpda_protocol.h"
#include "agg/ipda/protocol.h"
#include "agg/reading.h"
#include "agg/smart/smart_protocol.h"
#include "agg/tag/tag_protocol.h"
#include "fault/churn_plan.h"
#include "fault/fault_plan.h"
#include "net/network.h"
#include "obs/metrics.h"
#include "sim/cancel.h"
#include "util/result.h"

namespace ipda::agg {

// Per-run execution guards, wired into the run's scheduler. Both default
// off, so a plain RunConfig behaves exactly as before; when a guard
// trips, the Run* helper returns Unavailable instead of a result (the
// run's state is consistent but incomplete — discard it).
struct RunControl {
  // Cooperative cancellation (watchdog deadline, drain). Must outlive
  // the run. Null = never cancelled.
  const sim::CancelToken* cancel = nullptr;
  // Max scheduler events for the run's simulator; 0 = unlimited. A
  // deterministic stand-in for a wall-clock deadline: the same config
  // and seed trip it at exactly the same event, on every machine.
  uint64_t event_budget = 0;
};

struct RunConfig {
  net::DeploymentConfig deployment;  // Paper default: 400x400 m.
  double range = 50.0;               // Paper: 50 m transmission range.
  net::PhyConfig phy;                // Paper: 1 Mbps.
  net::MacConfig mac;
  uint64_t seed = 1;
  // Deterministic fault schedule armed against the run's network before
  // the protocol starts; an empty plan injects nothing. The same
  // (seed, faults) pair reproduces the same crashes/losses event for
  // event, for every protocol under comparison.
  fault::FaultPlan faults;
  // Deterministic mid-round topology churn (joins, leaves, mobility),
  // armed like `faults`. Currently honored by RunIpda only; for the
  // protocol to react (repair or rebuild the trees) set
  // IpdaConfig::churn_response as well — an empty plan mutates nothing.
  fault::ChurnPlan churn;
  RunControl control;
  // Optional prebuilt graph (non-owning; must outlive the run). When set,
  // BuildRunTopology copies it instead of re-deploying and re-linking, so
  // a caller comparing several protocols on the SAME network pays for one
  // build instead of one per protocol. The caller owns keeping it
  // consistent with `deployment`/`range`/`seed`.
  const net::Topology* topology = nullptr;
};

// Deterministic topology for a RunConfig (same seed → same deployment).
// Honors config.topology when set (see its comment).
util::Result<net::Topology> BuildRunTopology(const RunConfig& config);

// collected[0] / truth[0]; the paper's accuracy metric ("ratio of the
// collected sum to the real sum", §IV-B-3). 1.0 = no data loss.
double AccuracyRatio(const Vector& collected, const Vector& truth);

struct TagRunResult {
  TagStats stats;
  Vector true_acc;            // Ground-truth total over all sensors.
  net::NodeCounters traffic;  // Network-wide totals.
  obs::Snapshot metrics;      // Full registry snapshot (DESIGN.md §11).
  double average_degree = 0.0;
  double accuracy = 0.0;
  double result = 0.0;        // Finalized base-station answer.
};

util::Result<TagRunResult> RunTag(const RunConfig& config,
                                  const AggregateFunction& function,
                                  const SensorField& field,
                                  const TagConfig& tag_config = {});

struct SmartRunResult {
  SmartStats stats;
  Vector true_acc;
  net::NodeCounters traffic;
  obs::Snapshot metrics;
  double average_degree = 0.0;
  double accuracy = 0.0;
  double result = 0.0;
};

// SMART baseline (privacy, single tree, no integrity).
util::Result<SmartRunResult> RunSmart(
    const RunConfig& config, const AggregateFunction& function,
    const SensorField& field, const SmartConfig& smart_config = {},
    SmartProtocol::SliceObserver slice_observer = nullptr);

struct CpdaRunResult {
  CpdaStats stats;
  Vector true_acc;
  net::NodeCounters traffic;
  obs::Snapshot metrics;
  double average_degree = 0.0;
  double accuracy = 0.0;
  double result = 0.0;
};

// CPDA baseline (cluster-based privacy, single tree, no integrity).
util::Result<CpdaRunResult> RunCpda(const RunConfig& config,
                                    const AggregateFunction& function,
                                    const SensorField& field,
                                    const CpdaConfig& cpda_config = {});

struct IpdaRunResult {
  IpdaStats stats;
  Vector true_acc;
  net::NodeCounters traffic;
  obs::Snapshot metrics;  // Includes the round's phase spans.
  double average_degree = 0.0;
  double accuracy_red = 0.0;   // Red-tree total vs truth.
  double accuracy_blue = 0.0;  // Blue-tree total vs truth.
  double accuracy = 0.0;       // Agreed (mean) total vs truth.
  double result = 0.0;         // Finalized answer (valid when accepted).
};

// Optional per-run attack instrumentation.
struct IpdaRunHooks {
  IpdaProtocol::PollutionHook pollution;
  IpdaProtocol::SliceObserver slice_observer;
  std::vector<net::NodeId> excluded;
};

util::Result<IpdaRunResult> RunIpda(const RunConfig& config,
                                    const AggregateFunction& function,
                                    const SensorField& field,
                                    const IpdaConfig& ipda_config = {},
                                    const IpdaRunHooks& hooks = {});

}  // namespace ipda::agg

#endif  // IPDA_AGG_RUNNER_H_
