// CPDA — Cluster-based Private Data Aggregation (the second scheme of
// PDA, INFOCOM 2007, the paper's reference [11]).
//
// Sensors form one-hop clusters around self-elected leaders. Within a
// cluster of m >= 3 members, each member hides its contribution in a
// degree-2 masking polynomial, hands every other member one evaluation,
// and sends the leader the SUM of the evaluations it received. The summed
// points lie on Σ_i p_i(x); its constant term — the cluster total — falls
// out of Lagrange interpolation, while individual values stay hidden
// unless three members collude. Leaders then aggregate cluster totals up
// a TAG-style tree.
//
// Like SMART this protects privacy but not integrity; it trades SMART's
// per-slice traffic for two in-cluster rounds of point exchange. Included
// as the second baseline the iPDA lineage builds on.

#ifndef IPDA_AGG_CPDA_CPDA_PROTOCOL_H_
#define IPDA_AGG_CPDA_CPDA_PROTOCOL_H_

#include <optional>
#include <unordered_map>
#include <vector>

#include "agg/aggregate_function.h"
#include "crypto/keystore.h"
#include "crypto/pairwise.h"
#include "net/network.h"
#include "sim/time.h"
#include "util/status.h"

namespace ipda::agg {

struct CpdaConfig {
  double leader_probability = 0.3;  // p_c: self-election chance.
  double coeff_range = 100.0;       // Masking coefficient range.
  size_t poly_degree = 2;           // PDA uses degree 2 (3-collusion).
  // In-cluster share traffic is quadratic in cluster size, so leaders
  // close enrollment here; later joiners fall back (PDA keeps clusters
  // small for the same reason).
  size_t max_cluster_size = 6;
  bool encrypt_shares = true;
  crypto::CipherKind cipher = crypto::CipherKind::kXtea;
  // Nodes that hear no leader contribute unmasked (counted as
  // `unprotected`) instead of dropping out; set false to drop them.
  bool fallback_unclustered = true;

  sim::SimTime hello_jitter_max = sim::Milliseconds(50);
  sim::SimTime build_window = sim::Seconds(2);        // TAG tree flood.
  sim::SimTime announce_window = sim::Milliseconds(300);
  sim::SimTime join_window = sim::Milliseconds(300);
  sim::SimTime roster_window = sim::Milliseconds(300);
  sim::SimTime share_window = sim::Milliseconds(1500);
  sim::SimTime response_window = sim::Milliseconds(800);
  sim::SimTime slot = sim::Milliseconds(100);
  uint32_t max_depth = 24;
  sim::SimTime report_jitter_max = sim::Milliseconds(60);
};

util::Status ValidateCpdaConfig(const CpdaConfig& config);

struct CpdaStats {
  size_t nodes_joined = 0;      // In the routing tree.
  size_t leaders = 0;
  size_t clustered = 0;         // Members of a >=3 cluster (incl. leader).
  size_t unprotected = 0;       // Contributed unmasked (fallback).
  size_t shares_sent = 0;       // Point-evaluation messages.
  size_t responses_sent = 0;
  size_t clusters_solved = 0;   // Interpolation succeeded.
  size_t clusters_lost = 0;     // Too few complete responses.
  Vector collected;             // At the base station. No integrity check.
};

class CpdaProtocol {
 public:
  // Ground-truth tap for every polynomial evaluation a member produces
  // (the kept self-evaluation reports to == from). Collusion analyses
  // subscribe here: deg+1 colluding co-members holding a victim's points
  // can reconstruct its value.
  using ShareObserver = std::function<void(
      net::NodeId from, net::NodeId to, const Vector& evaluation)>;

  CpdaProtocol(net::Network* network, const AggregateFunction* function,
               CpdaConfig config = {});

  CpdaProtocol(const CpdaProtocol&) = delete;
  CpdaProtocol& operator=(const CpdaProtocol&) = delete;

  void SetReadings(std::vector<double> readings);
  void SetLinkCrypto(std::vector<crypto::LinkCrypto>* cryptos);
  void SetShareObserver(ShareObserver observer);

  void Start();
  sim::SimTime Duration() const;
  // Finalizes cluster bookkeeping; call after the run. Idempotent.
  const CpdaStats& Finish();
  const CpdaStats& stats() const { return stats_; }
  double FinalizedResult() const {
    return function_->Finalize(stats_.collected);
  }

 private:
  struct NodeState {
    bool joined = false;
    net::NodeId parent = 0;
    uint32_t level = 0;
    // Cluster bookkeeping.
    bool is_leader = false;
    net::NodeId leader = net::kBroadcastId;  // Chosen cluster.
    std::vector<net::NodeId> heard_leaders;
    std::vector<net::NodeId> members;        // Leader: the roster.
    std::vector<net::NodeId> roster;         // Member: roster received.
    Vector share_sum;          // Σ received evaluations (incl. own).
    size_t shares_received = 0;
    // Leader: complete responses, point x -> summed evaluations.
    std::unordered_map<net::NodeId, Vector> responses;
    Vector pending;            // Cluster sum / fallback for the report.
    Vector children;
  };

  void ProvisionPairwiseKeys();
  // Ensures `self` can seal to co-member `member`. With the built-in
  // master-key scheme both endpoints derive the pair key independently;
  // with external keys (e.g. EG) a missing key means the share is lost.
  bool EnsurePairKey(net::NodeId self, net::NodeId member);
  void OnPacket(net::NodeId self, const net::Packet& packet);
  void OnControl(net::NodeId self, const net::Packet& packet);
  void Join(net::NodeId self, net::NodeId parent, uint32_t level);
  void AnnounceOrJoin(net::NodeId self);
  void PickLeader(net::NodeId self);
  void SendRoster(net::NodeId self);
  void SendShares(net::NodeId self);
  void SendResponse(net::NodeId self);
  void SolveCluster(net::NodeId self);
  void Report(net::NodeId self);
  sim::SimTime ReportStart() const;
  crypto::LinkCrypto& crypto_for(net::NodeId id) { return (*cryptos_)[id]; }
  util::Bytes MaybeSeal(net::NodeId self, net::NodeId to,
                        const util::Bytes& plaintext);
  std::optional<util::Bytes> MaybeOpen(net::NodeId self, net::NodeId from,
                                       const util::Bytes& wire);

  net::Network* network_;
  const AggregateFunction* function_;
  CpdaConfig config_;
  std::vector<double> readings_;
  std::vector<NodeState> states_;
  std::vector<crypto::LinkCrypto> owned_cryptos_;
  std::vector<crypto::LinkCrypto>* cryptos_ = nullptr;
  std::optional<crypto::PairwiseKeyScheme> pairwise_scheme_;
  ShareObserver share_observer_;
  CpdaStats stats_;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace ipda::agg

#endif  // IPDA_AGG_CPDA_CPDA_PROTOCOL_H_
