#include "agg/cpda/interpolation.h"

#include <cmath>

#include "util/check.h"

namespace ipda::agg {

MaskingPolynomial::MaskingPolynomial(double value, size_t degree,
                                     double coeff_range, util::Rng& rng) {
  IPDA_CHECK_GT(coeff_range, 0.0);
  coefficients_.reserve(degree + 1);
  coefficients_.push_back(value);
  for (size_t d = 0; d < degree; ++d) {
    coefficients_.push_back(rng.UniformDouble(-coeff_range, coeff_range));
  }
}

double MaskingPolynomial::Evaluate(double x) const {
  // Horner.
  double acc = 0.0;
  for (size_t i = coefficients_.size(); i-- > 0;) {
    acc = acc * x + coefficients_[i];
  }
  return acc;
}

namespace {

util::Status ValidatePoints(const std::vector<double>& xs,
                            const std::vector<double>& ys) {
  if (xs.size() != ys.size()) {
    return util::InvalidArgumentError("xs/ys size mismatch");
  }
  if (xs.size() < 2) {
    return util::InvalidArgumentError("need at least 2 points");
  }
  for (size_t i = 0; i < xs.size(); ++i) {
    if (xs[i] == 0.0) {
      return util::InvalidArgumentError("x = 0 not allowed");
    }
    for (size_t j = i + 1; j < xs.size(); ++j) {
      if (xs[i] == xs[j]) {
        return util::InvalidArgumentError("duplicate x points");
      }
    }
  }
  return util::OkStatus();
}

}  // namespace

util::Result<double> InterpolateConstantTerm(const std::vector<double>& xs,
                                             const std::vector<double>& ys) {
  IPDA_RETURN_IF_ERROR(ValidatePoints(xs, ys));
  // P(0) = Σ_j y_j Π_{k≠j} x_k / (x_k − x_j).
  double result = 0.0;
  for (size_t j = 0; j < xs.size(); ++j) {
    double weight = 1.0;
    for (size_t k = 0; k < xs.size(); ++k) {
      if (k == j) continue;
      weight *= xs[k] / (xs[k] - xs[j]);
    }
    result += ys[j] * weight;
  }
  return result;
}

util::Result<std::vector<double>> InterpolateCoefficients(
    const std::vector<double>& xs, const std::vector<double>& ys) {
  IPDA_RETURN_IF_ERROR(ValidatePoints(xs, ys));
  const size_t n = xs.size();
  // Newton divided differences.
  std::vector<double> divided = ys;
  for (size_t level = 1; level < n; ++level) {
    for (size_t i = n - 1; i >= level; --i) {
      divided[i] = (divided[i] - divided[i - 1]) /
                   (xs[i] - xs[i - level]);
      if (i == level) break;
    }
  }
  // Expand Newton form into monomial coefficients.
  std::vector<double> coeffs(n, 0.0);
  std::vector<double> basis{1.0};  // Π (x - x_k) so far.
  for (size_t level = 0; level < n; ++level) {
    for (size_t i = 0; i < basis.size(); ++i) {
      coeffs[i] += divided[level] * basis[i];
    }
    if (level + 1 < n) {
      // basis *= (x - xs[level]).
      std::vector<double> next(basis.size() + 1, 0.0);
      for (size_t i = 0; i < basis.size(); ++i) {
        next[i + 1] += basis[i];
        next[i] -= xs[level] * basis[i];
      }
      basis = std::move(next);
    }
  }
  return coeffs;
}

}  // namespace ipda::agg
