// Polynomial masking and interpolation for CPDA (the cluster-based scheme
// of PDA, INFOCOM 2007 — the paper's reference [11]).
//
// Within a cluster, member i hides its value v_i inside the polynomial
//   p_i(x) = v_i + r_{i,1} x + ... + r_{i,deg} x^deg
// with private random coefficients, and hands p_i(x_j) to member j (the
// x_j are distinct public points, e.g. node ids). Each member sums what it
// received; the summed evaluations lie on P(x) = Σ_i p_i(x), whose
// constant term P(0) = Σ_i v_i is the cluster sum — recoverable by the
// leader via Lagrange interpolation once it has deg+1 summed points, while
// individual v_i stay hidden unless deg members collude.

#ifndef IPDA_AGG_CPDA_INTERPOLATION_H_
#define IPDA_AGG_CPDA_INTERPOLATION_H_

#include <cstddef>
#include <vector>

#include "util/random.h"
#include "util/result.h"

namespace ipda::agg {

// One member's masking polynomial.
class MaskingPolynomial {
 public:
  // Degree-`degree` polynomial with constant term `value` and uniform
  // random coefficients in [-coeff_range, coeff_range].
  MaskingPolynomial(double value, size_t degree, double coeff_range,
                    util::Rng& rng);

  double Evaluate(double x) const;
  size_t degree() const { return coefficients_.size() - 1; }
  double value() const { return coefficients_[0]; }

 private:
  std::vector<double> coefficients_;  // [0] = constant term.
};

// Lagrange interpolation of the constant term P(0) from points
// (xs[i], ys[i]). Requires >= 2 points, all xs distinct and nonzero.
// With exactly deg+1 points of a degree-deg polynomial this is exact.
util::Result<double> InterpolateConstantTerm(const std::vector<double>& xs,
                                             const std::vector<double>& ys);

// Full coefficient recovery (Newton form evaluated back to monomial
// coefficients). Used by collusion analysis: deg+1 colluders holding
// p_i(x_j) points can reconstruct p_i entirely, exposing v_i.
util::Result<std::vector<double>> InterpolateCoefficients(
    const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace ipda::agg

#endif  // IPDA_AGG_CPDA_INTERPOLATION_H_
