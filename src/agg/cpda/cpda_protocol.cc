#include "agg/cpda/cpda_protocol.h"

#include <algorithm>
#include <utility>

#include "agg/cpda/interpolation.h"
#include "agg/partial.h"
#include "crypto/pairwise.h"
#include "net/packet.h"
#include "util/check.h"

namespace ipda::agg {
namespace {

// Control-frame subtypes (first payload byte of kControl / kHello reuse).
enum class CpdaMsg : uint8_t {
  kAnnounce = 1,    // "I am a cluster leader."
  kJoin = 2,        // Member -> leader.
  kRoster = 3,      // Leader -> broadcast member list.
  kShare = 4,       // Member -> member polynomial evaluation (sealed).
  kResponse = 5,    // Member -> leader summed evaluations (sealed).
  kShareRelay = 6,  // Member -> leader: forward to a non-adjacent member.
  kShareFwd = 7,    // Leader -> member: relayed share (still sealed).
};

// Relay envelopes: [u32 peer][sealed share bytes]. On kShareRelay `peer`
// is the destination; on kShareFwd it is the original sender (needed to
// pick the decryption key).
util::Bytes EncodeRelay(net::NodeId peer, const util::Bytes& sealed) {
  util::ByteWriter writer;
  writer.WriteU32(peer);
  util::Bytes out = writer.TakeBytes();
  out.insert(out.end(), sealed.begin(), sealed.end());
  return out;
}

util::Result<std::pair<net::NodeId, util::Bytes>> DecodeRelay(
    const util::Bytes& payload) {
  if (payload.size() < 4) {
    return util::OutOfRangeError("relay envelope too short");
  }
  util::ByteReader reader(payload);
  IPDA_ASSIGN_OR_RETURN(uint32_t peer, reader.ReadU32());
  return std::make_pair(peer,
                        util::Bytes(payload.begin() + 4, payload.end()));
}

util::Bytes EncodeTreeHello(uint32_t level) {
  util::ByteWriter writer;
  writer.WriteU16(static_cast<uint16_t>(std::min(level, 0xffffu)));
  return writer.TakeBytes();
}

util::Result<uint32_t> DecodeTreeHello(const util::Bytes& payload) {
  util::ByteReader reader(payload);
  IPDA_ASSIGN_OR_RETURN(uint16_t level, reader.ReadU16());
  return static_cast<uint32_t>(level);
}

util::Bytes Tagged(CpdaMsg msg, const util::Bytes& body = {}) {
  util::Bytes out;
  out.reserve(1 + body.size());
  out.push_back(static_cast<uint8_t>(msg));
  if (!body.empty()) {
    out.insert(out.end(), body.begin(), body.end());
  }
  return out;
}

util::Bytes EncodeRoster(const std::vector<net::NodeId>& members) {
  util::ByteWriter writer;
  writer.WriteU16(static_cast<uint16_t>(members.size()));
  for (net::NodeId id : members) writer.WriteU32(id);
  return writer.TakeBytes();
}

util::Result<std::vector<net::NodeId>> DecodeRoster(
    const util::Bytes& payload) {
  util::ByteReader reader(payload);
  IPDA_ASSIGN_OR_RETURN(uint16_t count, reader.ReadU16());
  std::vector<net::NodeId> members;
  members.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    IPDA_ASSIGN_OR_RETURN(uint32_t id, reader.ReadU32());
    members.push_back(id);
  }
  return members;
}

// Response body: [u16 contributors][partial vector].
util::Bytes EncodeResponse(size_t contributors, const Vector& sums) {
  util::ByteWriter writer;
  writer.WriteU16(static_cast<uint16_t>(contributors));
  util::Bytes out = writer.TakeBytes();
  const util::Bytes body = EncodePartial(sums);
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

struct Response {
  size_t contributors;
  Vector sums;
};

util::Result<Response> DecodeResponse(const util::Bytes& payload) {
  if (payload.size() < 2) {
    return util::OutOfRangeError("response too short");
  }
  util::ByteReader reader(payload);
  IPDA_ASSIGN_OR_RETURN(uint16_t contributors, reader.ReadU16());
  util::Bytes rest(payload.begin() + 2, payload.end());
  IPDA_ASSIGN_OR_RETURN(Vector sums, DecodePartial(rest));
  return Response{contributors, std::move(sums)};
}

sim::SimTime UniformDelay(util::Rng& rng, sim::SimTime max) {
  return static_cast<sim::SimTime>(
      rng.UniformUint64(static_cast<uint64_t>(max) + 1));
}

double PointOf(net::NodeId id) { return static_cast<double>(id); }

}  // namespace

util::Status ValidateCpdaConfig(const CpdaConfig& config) {
  if (config.leader_probability <= 0.0 ||
      config.leader_probability >= 1.0) {
    return util::InvalidArgumentError("leader_probability must be in (0,1)");
  }
  if (config.poly_degree < 1) {
    return util::InvalidArgumentError("poly_degree must be >= 1");
  }
  if (config.coeff_range <= 0.0) {
    return util::InvalidArgumentError("coeff_range must be positive");
  }
  if (config.build_window <= 0 || config.share_window <= 0 ||
      config.slot <= 0 || config.max_depth == 0) {
    return util::InvalidArgumentError("CPDA windows must be positive");
  }
  return util::OkStatus();
}

CpdaProtocol::CpdaProtocol(net::Network* network,
                           const AggregateFunction* function,
                           CpdaConfig config)
    : network_(network), function_(function), config_(config) {
  IPDA_CHECK(network != nullptr);
  IPDA_CHECK(function != nullptr);
  IPDA_CHECK(ValidateCpdaConfig(config).ok());
  readings_.assign(network_->size(), 0.0);
  states_.resize(network_->size());
  for (auto& state : states_) {
    state.share_sum.assign(function_->arity(), 0.0);
    state.pending.assign(function_->arity(), 0.0);
    state.children.assign(function_->arity(), 0.0);
  }
  stats_.collected.assign(function_->arity(), 0.0);
}

void CpdaProtocol::SetReadings(std::vector<double> readings) {
  IPDA_CHECK_EQ(readings.size(), network_->size());
  readings_ = std::move(readings);
}

void CpdaProtocol::SetLinkCrypto(std::vector<crypto::LinkCrypto>* cryptos) {
  IPDA_CHECK(!started_);
  IPDA_CHECK(cryptos != nullptr);
  IPDA_CHECK_EQ(cryptos->size(), network_->size());
  cryptos_ = cryptos;
}

void CpdaProtocol::SetShareObserver(ShareObserver observer) {
  share_observer_ = std::move(observer);
}

void CpdaProtocol::ProvisionPairwiseKeys() {
  owned_cryptos_.reserve(network_->size());
  for (net::NodeId id = 0; id < network_->size(); ++id) {
    owned_cryptos_.emplace_back(id, config_.cipher);
  }
  std::vector<crypto::Link> links;
  const net::Topology& topology = network_->topology();
  for (net::NodeId a = 0; a < topology.node_count(); ++a) {
    for (net::NodeId b : topology.neighbors(a)) {
      if (a < b) links.emplace_back(a, b);
    }
  }
  pairwise_scheme_.emplace(
      util::Mix64(network_->sim().seed(), 0x43504441ULL));  // "CPDA".
  pairwise_scheme_->Provision(links, owned_cryptos_);
  cryptos_ = &owned_cryptos_;
}

bool CpdaProtocol::EnsurePairKey(net::NodeId self, net::NodeId member) {
  if (!config_.encrypt_shares) return true;
  if (crypto_for(self).keystore().HasLinkKey(member)) return true;
  if (!pairwise_scheme_.has_value()) return false;
  // Both co-members derive the same key from the master secret; install
  // it on this side (the peer does the same when it needs it).
  crypto_for(self).keystore().SetLinkKey(
      member, pairwise_scheme_->LinkKey(self, member));
  return true;
}

util::Bytes CpdaProtocol::MaybeSeal(net::NodeId self, net::NodeId to,
                                    const util::Bytes& plaintext) {
  if (!config_.encrypt_shares) return plaintext;
  auto sealed = crypto_for(self).Seal(to, plaintext);
  IPDA_CHECK(sealed.ok());
  return std::move(*sealed);
}

std::optional<util::Bytes> CpdaProtocol::MaybeOpen(
    net::NodeId self, net::NodeId from, const util::Bytes& wire) {
  if (!config_.encrypt_shares) return wire;
  auto opened = crypto_for(self).Open(from, wire);
  if (!opened.ok()) return std::nullopt;
  return std::move(*opened);
}

sim::SimTime CpdaProtocol::ReportStart() const {
  return config_.build_window + config_.announce_window +
         config_.join_window + config_.roster_window +
         config_.share_window + config_.response_window +
         sim::Milliseconds(200);
}

sim::SimTime CpdaProtocol::Duration() const {
  return ReportStart() +
         config_.slot * static_cast<sim::SimTime>(config_.max_depth + 1) +
         config_.report_jitter_max + sim::Milliseconds(200);
}

void CpdaProtocol::Start() {
  IPDA_CHECK(!started_);
  started_ = true;
  if (config_.encrypt_shares && cryptos_ == nullptr) {
    ProvisionPairwiseKeys();
  }
  if (config_.encrypt_shares) {
    // Pairwise keys densify here; cluster keys negotiated later land in
    // the dynamic overflow map, which Seal() handles transparently.
    for (crypto::LinkCrypto& c : *cryptos_) c.Compile();
  }
  for (net::NodeId id = 0; id < network_->size(); ++id) {
    network_->node(id).SetReceiveHandler(
        [this, id](const net::Packet& packet) { OnPacket(id, packet); });
  }
  states_[net::kBaseStationId].joined = true;
  auto& bs = network_->base_station();
  util::Rng bs_rng = bs.rng().Fork("cpda-start");
  network_->sim().After(
      UniformDelay(bs_rng, config_.hello_jitter_max), [this] {
        network_->base_station().Broadcast(net::PacketType::kHello,
                                           EncodeTreeHello(0));
      });

  // Cluster phase schedule for every sensor.
  const sim::SimTime announce_at = config_.build_window;
  const sim::SimTime pick_at = announce_at + config_.announce_window;
  const sim::SimTime roster_at = pick_at + config_.join_window;
  const sim::SimTime share_at = roster_at + config_.roster_window;
  const sim::SimTime respond_at = share_at + config_.share_window;
  const sim::SimTime solve_at = respond_at + config_.response_window;
  for (net::NodeId id = 1; id < network_->size(); ++id) {
    util::Rng rng = network_->node(id).rng().Fork("cpda-schedule");
    network_->sim().At(
        announce_at + UniformDelay(rng, config_.announce_window / 2),
        [this, id] { AnnounceOrJoin(id); });
    network_->sim().At(pick_at + UniformDelay(rng, config_.join_window / 2),
                       [this, id] { PickLeader(id); });
    network_->sim().At(
        roster_at + UniformDelay(rng, config_.roster_window / 2),
        [this, id] { SendRoster(id); });
    network_->sim().At(
        share_at + UniformDelay(rng, config_.share_window / 2),
        [this, id] { SendShares(id); });
    network_->sim().At(
        respond_at + UniformDelay(rng, config_.response_window / 2),
        [this, id] { SendResponse(id); });
    network_->sim().At(solve_at, [this, id] { SolveCluster(id); });
  }
}

void CpdaProtocol::OnPacket(net::NodeId self, const net::Packet& packet) {
  switch (packet.type) {
    case net::PacketType::kHello: {
      auto level = DecodeTreeHello(packet.payload);
      if (!level.ok()) return;
      if (self != net::kBaseStationId && !states_[self].joined) {
        Join(self, packet.src, *level + 1);
      }
      break;
    }
    case net::PacketType::kControl:
      OnControl(self, packet);
      break;
    case net::PacketType::kAggregate: {
      auto partial = DecodePartial(packet.payload);
      if (!partial.ok() || partial->size() != function_->arity()) return;
      if (self == net::kBaseStationId) {
        AddInto(stats_.collected, *partial);
      } else {
        AddInto(states_[self].children, *partial);
      }
      break;
    }
    default:
      break;
  }
}

void CpdaProtocol::OnControl(net::NodeId self, const net::Packet& packet) {
  if (packet.payload.empty() || self == net::kBaseStationId) return;
  NodeState& state = states_[self];
  const auto msg = static_cast<CpdaMsg>(packet.payload[0]);
  const util::Bytes body(packet.payload.begin() + 1, packet.payload.end());
  switch (msg) {
    case CpdaMsg::kAnnounce: {
      if (std::find(state.heard_leaders.begin(), state.heard_leaders.end(),
                    packet.src) == state.heard_leaders.end()) {
        state.heard_leaders.push_back(packet.src);
      }
      break;
    }
    case CpdaMsg::kJoin: {
      if (!state.is_leader) return;
      if (state.members.size() >= config_.max_cluster_size) return;
      if (std::find(state.members.begin(), state.members.end(),
                    packet.src) == state.members.end()) {
        state.members.push_back(packet.src);
      }
      break;
    }
    case CpdaMsg::kRoster: {
      if (state.leader != packet.src) return;
      auto roster = DecodeRoster(body);
      if (!roster.ok()) return;
      // Rejected by a full cluster: fall back to unclustered.
      if (std::find(roster->begin(), roster->end(), self) ==
          roster->end()) {
        state.leader = net::kBroadcastId;
        state.roster.clear();
        return;
      }
      state.roster = std::move(*roster);
      break;
    }
    case CpdaMsg::kShare: {
      auto plaintext = MaybeOpen(self, packet.src, body);
      if (!plaintext.has_value()) return;
      auto share = DecodePartial(*plaintext);
      if (!share.ok() || share->size() != function_->arity()) return;
      AddInto(state.share_sum, *share);
      state.shares_received += 1;
      break;
    }
    case CpdaMsg::kShareRelay: {
      // Leader forwards the (still sealed) share to the intended member.
      if (!state.is_leader) return;
      auto relay = DecodeRelay(body);
      if (!relay.ok()) return;
      const auto [dst, sealed] = *relay;
      if (std::find(state.members.begin(), state.members.end(), dst) ==
          state.members.end()) {
        return;
      }
      network_->node(self).Unicast(
          dst, net::PacketType::kControl,
          Tagged(CpdaMsg::kShareFwd, EncodeRelay(packet.src, sealed)));
      break;
    }
    case CpdaMsg::kShareFwd: {
      auto relay = DecodeRelay(body);
      if (!relay.ok()) return;
      const auto [origin, sealed] = *relay;
      if (!EnsurePairKey(self, origin)) return;
      auto plaintext = MaybeOpen(self, origin, sealed);
      if (!plaintext.has_value()) return;
      auto share = DecodePartial(*plaintext);
      if (!share.ok() || share->size() != function_->arity()) return;
      AddInto(state.share_sum, *share);
      state.shares_received += 1;
      break;
    }
    case CpdaMsg::kResponse: {
      if (!state.is_leader) return;
      auto plaintext = MaybeOpen(self, packet.src, body);
      if (!plaintext.has_value()) return;
      auto response = DecodeResponse(*plaintext);
      if (!response.ok() ||
          response->sums.size() != function_->arity()) {
        return;
      }
      // Only complete responses lie on the summed polynomial.
      if (response->contributors != state.members.size()) return;
      state.responses[packet.src] = std::move(response->sums);
      break;
    }
  }
}

void CpdaProtocol::Join(net::NodeId self, net::NodeId parent,
                        uint32_t level) {
  NodeState& state = states_[self];
  state.joined = true;
  state.parent = parent;
  state.level = level;
  stats_.nodes_joined += 1;
  util::Rng rng = network_->node(self).rng().Fork("cpda-join");
  network_->sim().After(
      UniformDelay(rng, config_.hello_jitter_max), [this, self, level] {
        network_->node(self).Broadcast(net::PacketType::kHello,
                                       EncodeTreeHello(level));
      });
  const sim::SimTime slot_time =
      ReportTime(ReportStart(), config_.slot, config_.max_depth, level) +
      UniformDelay(rng, config_.report_jitter_max);
  const sim::SimTime at =
      std::max(slot_time, network_->sim().now() + sim::Milliseconds(1));
  network_->sim().At(at, [this, self] { Report(self); });
}

void CpdaProtocol::AnnounceOrJoin(net::NodeId self) {
  NodeState& state = states_[self];
  if (!state.joined) return;  // Outside the routing tree.
  util::Rng rng = network_->node(self).rng().Fork("cpda-role");
  if (rng.Bernoulli(config_.leader_probability)) {
    state.is_leader = true;
    state.leader = self;
    state.members.push_back(self);
    network_->node(self).Broadcast(net::PacketType::kControl,
                                   Tagged(CpdaMsg::kAnnounce));
  }
}

void CpdaProtocol::PickLeader(net::NodeId self) {
  NodeState& state = states_[self];
  if (!state.joined || state.is_leader) return;
  if (state.heard_leaders.empty()) return;  // Unclustered; fallback later.
  // Uniform random pick among heard leaders (keys permitting) — spreads
  // membership so fewer leaders end up below the privacy threshold.
  std::vector<net::NodeId> usable;
  for (net::NodeId leader : state.heard_leaders) {
    if (!config_.encrypt_shares ||
        crypto_for(self).keystore().HasLinkKey(leader)) {
      usable.push_back(leader);
    }
  }
  if (usable.empty()) return;
  util::Rng rng = network_->node(self).rng().Fork("cpda-pick");
  const net::NodeId leader =
      usable[rng.UniformUint64(usable.size())];
  state.leader = leader;
  network_->node(self).Unicast(leader, net::PacketType::kControl,
                               Tagged(CpdaMsg::kJoin));
}

void CpdaProtocol::SendRoster(net::NodeId self) {
  NodeState& state = states_[self];
  if (!state.is_leader) return;
  std::sort(state.members.begin(), state.members.end());
  const util::Bytes payload =
      Tagged(CpdaMsg::kRoster, EncodeRoster(state.members));
  // Broadcasts carry no ARQ and one lost roster kills the whole cluster
  // (every response would be incomplete), so send it twice.
  network_->node(self).Broadcast(net::PacketType::kControl, payload);
  network_->sim().After(config_.roster_window / 3, [this, self, payload] {
    network_->node(self).Broadcast(net::PacketType::kControl, payload);
  });
  state.roster = state.members;  // The leader is also a member.
}

void CpdaProtocol::SendShares(net::NodeId self) {
  NodeState& state = states_[self];
  if (state.leader == net::kBroadcastId || state.roster.empty()) return;
  // Need deg+1 distinct points, so a cluster smaller than deg+1 cannot be
  // solved; those members fall back at report time.
  if (state.roster.size() < config_.poly_degree + 1) {
    state.roster.clear();
    return;
  }
  util::Rng rng = network_->node(self).rng().Fork("cpda-mask");
  const Vector contribution = function_->Contribution(readings_[self]);
  // One masking polynomial per component.
  std::vector<MaskingPolynomial> polys;
  polys.reserve(contribution.size());
  for (double component : contribution) {
    polys.emplace_back(component, config_.poly_degree,
                       config_.coeff_range, rng);
  }
  for (net::NodeId member : state.roster) {
    Vector evaluation(contribution.size());
    for (size_t c = 0; c < polys.size(); ++c) {
      evaluation[c] = polys[c].Evaluate(PointOf(member));
    }
    if (share_observer_) share_observer_(self, member, evaluation);
    if (member == self) {
      AddInto(state.share_sum, evaluation);
      state.shares_received += 1;
      continue;
    }
    if (!EnsurePairKey(self, member)) {
      continue;  // No derivable key for this co-member: share lost.
    }
    const util::Bytes sealed =
        MaybeSeal(self, member, EncodePartial(evaluation));
    if (network_->topology().AreNeighbors(self, member)) {
      network_->node(self).Unicast(member, net::PacketType::kControl,
                                   Tagged(CpdaMsg::kShare, sealed));
    } else {
      // Co-member beyond radio range (both of us only border the
      // leader): relay the sealed share through the leader.
      network_->node(self).Unicast(
          state.leader, net::PacketType::kControl,
          Tagged(CpdaMsg::kShareRelay, EncodeRelay(member, sealed)));
    }
    stats_.shares_sent += 1;
  }
}

void CpdaProtocol::SendResponse(net::NodeId self) {
  NodeState& state = states_[self];
  if (state.leader == net::kBroadcastId || state.roster.empty()) return;
  if (state.is_leader) {
    // The leader's own point goes straight into its response set.
    if (state.shares_received == state.members.size()) {
      state.responses[self] = state.share_sum;
    }
    return;
  }
  network_->node(self).Unicast(
      state.leader, net::PacketType::kControl,
      Tagged(CpdaMsg::kResponse,
             MaybeSeal(self, state.leader,
                       EncodeResponse(state.shares_received,
                                      state.share_sum))));
  stats_.responses_sent += 1;
}

void CpdaProtocol::SolveCluster(net::NodeId self) {
  NodeState& state = states_[self];
  if (!state.is_leader) return;
  const size_t needed = config_.poly_degree + 1;
  if (state.members.size() < needed ||
      state.responses.size() < needed) {
    state.responses.clear();
    return;  // Cluster lost; counted in Finish().
  }
  // Interpolate each component from deg+1 complete responses (lowest ids
  // first, for determinism).
  std::vector<net::NodeId> responders;
  responders.reserve(state.responses.size());
  for (const auto& [member, sums] : state.responses) {
    responders.push_back(member);
  }
  std::sort(responders.begin(), responders.end());
  std::vector<double> xs;
  std::vector<net::NodeId> used;
  for (net::NodeId member : responders) {
    xs.push_back(PointOf(member));
    used.push_back(member);
    if (xs.size() == needed) break;
  }
  Vector total(function_->arity(), 0.0);
  for (size_t c = 0; c < function_->arity(); ++c) {
    std::vector<double> ys;
    ys.reserve(needed);
    for (net::NodeId member : used) {
      ys.push_back(state.responses.at(member)[c]);
    }
    auto constant = InterpolateConstantTerm(xs, ys);
    if (!constant.ok()) {
      state.responses.clear();
      return;
    }
    total[c] = *constant;
  }
  state.pending = total;
}

void CpdaProtocol::Report(net::NodeId self) {
  NodeState& state = states_[self];
  Vector partial = state.children;
  AddInto(partial, state.pending);
  // Fallback: an unclustered (or unsolvable-cluster) node contributes its
  // raw value so the aggregate stays complete — at a privacy cost that
  // Finish() tallies.
  const bool clustered =
      state.leader != net::kBroadcastId && !state.roster.empty();
  const bool counted = state.is_leader ? !state.responses.empty()
                                       : clustered;
  if (!counted && config_.fallback_unclustered) {
    AddInto(partial, function_->Contribution(readings_[self]));
  }
  network_->node(self).Unicast(state.parent, net::PacketType::kAggregate,
                               EncodePartial(partial));
}

const CpdaStats& CpdaProtocol::Finish() {
  if (finished_) return stats_;
  finished_ = true;
  for (net::NodeId id = 1; id < network_->size(); ++id) {
    const NodeState& state = states_[id];
    if (state.is_leader) {
      stats_.leaders += 1;
      if (!state.responses.empty()) {
        stats_.clusters_solved += 1;
      } else if (state.members.size() >= config_.poly_degree + 1) {
        stats_.clusters_lost += 1;
      }
    }
    const bool clustered =
        state.leader != net::kBroadcastId && !state.roster.empty() &&
        state.roster.size() >= config_.poly_degree + 1;
    if (clustered) {
      stats_.clustered += 1;
    } else if (state.joined && config_.fallback_unclustered) {
      stats_.unprotected += 1;
    }
  }
  return stats_;
}

}  // namespace ipda::agg
