#include "agg/partial.h"

#include <algorithm>

namespace ipda::agg {

void EncodePartialInto(const Vector& acc, util::ByteWriter& writer) {
  writer.WriteU8(static_cast<uint8_t>(acc.size()));
  for (double v : acc) writer.WriteF64(v);
}

util::Result<Vector> DecodePartialFrom(util::ByteReader& reader) {
  IPDA_ASSIGN_OR_RETURN(uint8_t count, reader.ReadU8());
  Vector acc;
  acc.reserve(count);
  for (uint8_t i = 0; i < count; ++i) {
    IPDA_ASSIGN_OR_RETURN(double v, reader.ReadF64());
    acc.push_back(v);
  }
  return acc;
}

util::Bytes EncodePartial(const Vector& acc) {
  util::ByteWriter writer;
  EncodePartialInto(acc, writer);
  return writer.TakeBytes();
}

util::Result<Vector> DecodePartial(const util::Bytes& payload) {
  util::ByteReader reader(payload);
  return DecodePartialFrom(reader);
}

sim::SimTime ReportTime(sim::SimTime start, sim::SimTime slot,
                        uint32_t max_depth, uint32_t hop) {
  const uint32_t clamped = std::min(hop, max_depth);
  return start + slot * static_cast<sim::SimTime>(max_depth - clamped);
}

}  // namespace ipda::agg
