#include "agg/smart/smart_protocol.h"

#include <algorithm>
#include <utility>

#include "agg/ipda/slicing.h"
#include "agg/partial.h"
#include "crypto/pairwise.h"
#include "net/packet.h"
#include "util/check.h"

namespace ipda::agg {
namespace {

util::Bytes EncodeSmartHello(uint32_t level) {
  util::ByteWriter writer;
  writer.WriteU16(static_cast<uint16_t>(std::min(level, 0xffffu)));
  return writer.TakeBytes();
}

util::Result<uint32_t> DecodeSmartHello(const util::Bytes& payload) {
  util::ByteReader reader(payload);
  IPDA_ASSIGN_OR_RETURN(uint16_t level, reader.ReadU16());
  return static_cast<uint32_t>(level);
}

sim::SimTime UniformDelay(util::Rng& rng, sim::SimTime max) {
  return static_cast<sim::SimTime>(
      rng.UniformUint64(static_cast<uint64_t>(max) + 1));
}

}  // namespace

util::Status ValidateSmartConfig(const SmartConfig& config) {
  if (config.slice_count == 0) {
    return util::InvalidArgumentError("slice_count (J) must be >= 1");
  }
  if (config.slice_range <= 0.0) {
    return util::InvalidArgumentError("slice_range must be positive");
  }
  if (config.build_window <= 0 || config.slice_window <= 0 ||
      config.slot <= 0 || config.max_depth == 0) {
    return util::InvalidArgumentError("SMART windows must be positive");
  }
  return util::OkStatus();
}

SmartProtocol::SmartProtocol(net::Network* network,
                             const AggregateFunction* function,
                             SmartConfig config)
    : network_(network), function_(function), config_(config) {
  IPDA_CHECK(network != nullptr);
  IPDA_CHECK(function != nullptr);
  IPDA_CHECK(ValidateSmartConfig(config).ok());
  readings_.assign(network_->size(), 0.0);
  states_.resize(network_->size());
  for (auto& state : states_) {
    state.mixed.assign(function_->arity(), 0.0);
    state.children.assign(function_->arity(), 0.0);
  }
  stats_.collected.assign(function_->arity(), 0.0);
}

void SmartProtocol::SetReadings(std::vector<double> readings) {
  IPDA_CHECK_EQ(readings.size(), network_->size());
  readings_ = std::move(readings);
}

void SmartProtocol::SetLinkCrypto(std::vector<crypto::LinkCrypto>* cryptos) {
  IPDA_CHECK(!started_);
  IPDA_CHECK(cryptos != nullptr);
  IPDA_CHECK_EQ(cryptos->size(), network_->size());
  cryptos_ = cryptos;
}

void SmartProtocol::SetSliceObserver(SliceObserver observer) {
  slice_observer_ = std::move(observer);
}

void SmartProtocol::ProvisionPairwiseKeys() {
  owned_cryptos_.reserve(network_->size());
  for (net::NodeId id = 0; id < network_->size(); ++id) {
    owned_cryptos_.emplace_back(id, config_.cipher);
  }
  std::vector<crypto::Link> links;
  const net::Topology& topology = network_->topology();
  for (net::NodeId a = 0; a < topology.node_count(); ++a) {
    for (net::NodeId b : topology.neighbors(a)) {
      if (a < b) links.emplace_back(a, b);
    }
  }
  const crypto::PairwiseKeyScheme scheme(
      util::Mix64(network_->sim().seed(), 0x534d415254ULL));  // "SMART".
  scheme.Provision(links, owned_cryptos_);
  cryptos_ = &owned_cryptos_;
}

sim::SimTime SmartProtocol::Duration() const {
  const sim::SimTime report_start =
      config_.build_window + config_.slice_window + sim::Milliseconds(200);
  return report_start +
         config_.slot * static_cast<sim::SimTime>(config_.max_depth + 1) +
         config_.report_jitter_max + sim::Milliseconds(200);
}

void SmartProtocol::Start() {
  IPDA_CHECK(!started_);
  started_ = true;
  if (config_.encrypt_slices && cryptos_ == nullptr) {
    ProvisionPairwiseKeys();
  }
  if (config_.encrypt_slices) {
    // Freeze link keys into dense slots (precomputed schedules) before
    // the slicing hot path starts sealing.
    for (crypto::LinkCrypto& c : *cryptos_) c.Compile();
  }
  for (net::NodeId id = 0; id < network_->size(); ++id) {
    network_->node(id).SetReceiveHandler(
        [this, id](const net::Packet& packet) { OnPacket(id, packet); });
  }
  states_[net::kBaseStationId].joined = true;
  auto& bs = network_->base_station();
  util::Rng bs_rng = bs.rng().Fork("smart-start");
  network_->sim().After(
      UniformDelay(bs_rng, config_.hello_jitter_max), [this] {
        network_->base_station().Broadcast(net::PacketType::kHello,
                                           EncodeSmartHello(0));
      });
  // Phase 2 slicing for every sensor at a jittered point.
  for (net::NodeId id = 1; id < network_->size(); ++id) {
    util::Rng rng = network_->node(id).rng().Fork("smart-slice-schedule");
    const sim::SimTime at =
        config_.build_window + UniformDelay(rng, config_.slice_window);
    network_->sim().At(at, [this, id] { DoSlicing(id); });
  }
}

void SmartProtocol::OnPacket(net::NodeId self, const net::Packet& packet) {
  NodeState& state = states_[self];
  switch (packet.type) {
    case net::PacketType::kHello: {
      auto level = DecodeSmartHello(packet.payload);
      if (!level.ok()) return;
      if (std::find(state.heard.begin(), state.heard.end(), packet.src) ==
          state.heard.end()) {
        state.heard.push_back(packet.src);
      }
      if (self != net::kBaseStationId && !state.joined) {
        Join(self, packet.src, *level + 1);
      }
      break;
    }
    case net::PacketType::kSlice: {
      util::Bytes plaintext;
      if (config_.encrypt_slices) {
        auto opened = crypto_for(self).Open(packet.src, packet.payload);
        if (!opened.ok()) return;
        plaintext = std::move(*opened);
      } else {
        plaintext = packet.payload;
      }
      auto slice = DecodePartial(plaintext);
      if (!slice.ok() || slice->size() != function_->arity()) return;
      if (self == net::kBaseStationId) {
        AddInto(stats_.collected, *slice);
        return;
      }
      AddInto(state.mixed, *slice);
      break;
    }
    case net::PacketType::kAggregate: {
      auto partial = DecodePartial(packet.payload);
      if (!partial.ok() || partial->size() != function_->arity()) return;
      if (self == net::kBaseStationId) {
        AddInto(stats_.collected, *partial);
        return;
      }
      AddInto(state.children, *partial);
      break;
    }
    default:
      break;
  }
}

void SmartProtocol::Join(net::NodeId self, net::NodeId parent,
                         uint32_t level) {
  NodeState& state = states_[self];
  state.joined = true;
  state.parent = parent;
  state.level = level;
  stats_.nodes_joined += 1;

  util::Rng rng = network_->node(self).rng().Fork("smart-join");
  network_->sim().After(
      UniformDelay(rng, config_.hello_jitter_max), [this, self, level] {
        network_->node(self).Broadcast(net::PacketType::kHello,
                                       EncodeSmartHello(level));
      });
  const sim::SimTime report_start =
      config_.build_window + config_.slice_window + sim::Milliseconds(200);
  const sim::SimTime slot_time =
      ReportTime(report_start, config_.slot, config_.max_depth, level) +
      UniformDelay(rng, config_.report_jitter_max);
  const sim::SimTime at =
      std::max(slot_time, network_->sim().now() + sim::Milliseconds(1));
  network_->sim().At(at, [this, self] { Report(self); });
}

void SmartProtocol::DoSlicing(net::NodeId self) {
  NodeState& state = states_[self];
  if (!state.joined) return;  // Outside the tree: data cannot flow up.

  // Targets: any joined neighbor we heard (keys permitting).
  std::vector<net::NodeId> candidates;
  for (net::NodeId id : state.heard) {
    if (!config_.encrypt_slices ||
        crypto_for(self).keystore().HasLinkKey(id)) {
      candidates.push_back(id);
    }
  }
  const uint32_t j = config_.slice_count;
  if (candidates.size() + 1 < j) return;  // Too few neighbors for J-1.

  util::Rng rng = network_->node(self).rng().Fork("smart-slice");
  const Vector contribution = function_->Contribution(readings_[self]);
  std::vector<Vector> slices =
      SliceVector(contribution, j, config_.slice_range, rng);
  // Keep slices[0]; send the rest to distinct random neighbors.
  if (slice_observer_) slice_observer_(self, self, slices[0]);
  AddInto(state.mixed, slices[0]);
  const auto picks =
      rng.SampleWithoutReplacement(candidates.size(), j - 1);
  for (uint32_t i = 0; i + 1 < j; ++i) {
    const net::NodeId target = candidates[picks[i]];
    if (slice_observer_) slice_observer_(self, target, slices[i + 1]);
    util::Bytes wire = EncodePartial(slices[i + 1]);
    if (config_.encrypt_slices) {
      auto sealed = crypto_for(self).Seal(target, std::move(wire));
      IPDA_CHECK(sealed.ok());
      wire = std::move(*sealed);
    }
    network_->node(self).Unicast(target, net::PacketType::kSlice,
                                 std::move(wire));
    stats_.slices_sent += 1;
  }
  state.participated = true;
  stats_.participants += 1;
}

void SmartProtocol::Report(net::NodeId self) {
  NodeState& state = states_[self];
  Vector partial = state.mixed;
  AddInto(partial, state.children);
  stats_.reports_sent += 1;
  network_->node(self).Unicast(state.parent, net::PacketType::kAggregate,
                               EncodePartial(partial));
}

}  // namespace ipda::agg
