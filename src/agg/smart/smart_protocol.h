// SMART — Slice-Mix-AggRegaTe (He et al., "PDA: Privacy-preserving Data
// Aggregation in Wireless Sensor Networks", INFOCOM 2007 — the paper's
// reference [11], whose slicing technique iPDA §III-C "tailors").
//
// SMART provides privacy but NO integrity protection: one TAG-style
// spanning tree, with each sensor hiding its reading by slicing it into J
// pieces, keeping one, and sending J−1 link-encrypted pieces to random
// tree neighbors, which mix (sum) what they receive before normal tree
// aggregation. Implemented here as the intermediate baseline between TAG
// (no privacy, no integrity) and iPDA (both): it isolates what the
// disjoint-tree redundancy costs and buys.

#ifndef IPDA_AGG_SMART_SMART_PROTOCOL_H_
#define IPDA_AGG_SMART_SMART_PROTOCOL_H_

#include <functional>
#include <optional>
#include <vector>

#include "agg/aggregate_function.h"
#include "crypto/keystore.h"
#include "net/network.h"
#include "sim/time.h"
#include "util/status.h"

namespace ipda::agg {

struct SmartConfig {
  uint32_t slice_count = 3;     // J: pieces per reading (PDA evaluates 3).
  double slice_range = 50.0;    // Random slices uniform in +/- range.
  bool encrypt_slices = true;
  crypto::CipherKind cipher = crypto::CipherKind::kXtea;
  sim::SimTime hello_jitter_max = sim::Milliseconds(50);
  sim::SimTime build_window = sim::Seconds(2);
  sim::SimTime slice_window = sim::Milliseconds(800);
  sim::SimTime slot = sim::Milliseconds(100);
  uint32_t max_depth = 24;
  sim::SimTime report_jitter_max = sim::Milliseconds(60);
};

util::Status ValidateSmartConfig(const SmartConfig& config);

struct SmartStats {
  size_t nodes_joined = 0;
  size_t participants = 0;   // Sent their full J-1 slice set.
  size_t slices_sent = 0;
  size_t reports_sent = 0;
  Vector collected;          // At the base station. No integrity check.
};

class SmartProtocol {
 public:
  // Ground-truth tap with the same shape as IpdaProtocol's: transmitted
  // slices carry the target, the kept slice reports to == from. SMART has
  // no trees, so the color argument is absent.
  using SliceObserver = std::function<void(
      net::NodeId from, net::NodeId to, const Vector& slice)>;

  SmartProtocol(net::Network* network, const AggregateFunction* function,
                SmartConfig config = {});

  SmartProtocol(const SmartProtocol&) = delete;
  SmartProtocol& operator=(const SmartProtocol&) = delete;

  void SetReadings(std::vector<double> readings);
  // External keys (indexed by node id); defaults to pairwise provisioning.
  void SetLinkCrypto(std::vector<crypto::LinkCrypto>* cryptos);
  void SetSliceObserver(SliceObserver observer);

  void Start();
  sim::SimTime Duration() const;
  const SmartStats& stats() const { return stats_; }
  double FinalizedResult() const {
    return function_->Finalize(stats_.collected);
  }

 private:
  struct NodeState {
    bool joined = false;
    net::NodeId parent = 0;
    uint32_t level = 0;
    std::vector<net::NodeId> heard;  // Joined neighbors (slice targets).
    Vector mixed;                    // Kept slice + received slices.
    Vector children;
    bool participated = false;
  };

  void ProvisionPairwiseKeys();
  void OnPacket(net::NodeId self, const net::Packet& packet);
  void Join(net::NodeId self, net::NodeId parent, uint32_t level);
  void DoSlicing(net::NodeId self);
  void Report(net::NodeId self);
  crypto::LinkCrypto& crypto_for(net::NodeId id) { return (*cryptos_)[id]; }

  net::Network* network_;
  const AggregateFunction* function_;
  SmartConfig config_;
  std::vector<double> readings_;
  std::vector<NodeState> states_;
  std::vector<crypto::LinkCrypto> owned_cryptos_;
  std::vector<crypto::LinkCrypto>* cryptos_ = nullptr;
  SliceObserver slice_observer_;
  SmartStats stats_;
  bool started_ = false;
};

}  // namespace ipda::agg

#endif  // IPDA_AGG_SMART_SMART_PROTOCOL_H_
