// TAG (Madden et al., OSDI 2002) tree aggregation — the paper's baseline.
//
// The base station floods a HELLO; each node adopts the first sender it
// hears as parent, forming a spanning tree, and rebroadcasts once. During
// the report phase nodes transmit partial aggregates to their parents in
// depth-ordered slots (deepest first) so parents fold children in before
// their own slot. No privacy (readings travel as plaintext partials) and
// no integrity protection — exactly the comparison point of §IV.

#ifndef IPDA_AGG_TAG_TAG_PROTOCOL_H_
#define IPDA_AGG_TAG_TAG_PROTOCOL_H_

#include <optional>
#include <vector>

#include "agg/aggregate_function.h"
#include "agg/query.h"
#include "net/network.h"
#include "sim/time.h"
#include "util/status.h"

namespace ipda::agg {

struct TagConfig {
  sim::SimTime hello_jitter_max = sim::Milliseconds(50);
  sim::SimTime build_window = sim::Seconds(2);     // HELLO flood budget.
  sim::SimTime slot = sim::Milliseconds(100);      // Per-depth report slot.
  uint32_t max_depth = 24;
  sim::SimTime report_jitter_max = sim::Milliseconds(60);
};

util::Status ValidateTagConfig(const TagConfig& config);

struct TagStats {
  size_t nodes_joined = 0;     // In the spanning tree (excluding the BS).
  size_t reports_sent = 0;     // Nodes that transmitted a partial.
  Vector collected;            // Accumulated at the base station.
};

class TagProtocol {
 public:
  // `network` and `function` must outlive the protocol. Readings default
  // to zero; set them before Start().
  TagProtocol(net::Network* network, const AggregateFunction* function,
              TagConfig config = {});

  TagProtocol(const TagProtocol&) = delete;
  TagProtocol& operator=(const TagProtocol&) = delete;

  // readings[id] is node id's sensor value; index 0 (base station) ignored.
  void SetReadings(std::vector<double> readings);

  // Disseminates `query` with the HELLO flood; sensors then compute what
  // the received query asks for (must match the constructor's function).
  void SetQuery(const Query& query);

  // Installs handlers and schedules the run; afterwards advance the
  // simulator to at least Duration().
  void Start();

  // Simulated time from Start() until the base station's answer is final.
  sim::SimTime Duration() const;

  const TagStats& stats() const { return stats_; }

  // Base-station answer after the run.
  double FinalizedResult() const {
    return function_->Finalize(stats_.collected);
  }

 private:
  struct NodeState {
    bool joined = false;
    net::NodeId parent = 0;
    uint32_t level = 0;
    Vector acc;  // Children partials; own contribution added at report.
    std::optional<Query> received_query;
  };

  void OnPacket(net::NodeId self, const net::Packet& packet);
  void Join(net::NodeId self, net::NodeId parent, uint32_t level);
  void Report(net::NodeId self);
  util::Bytes HelloPayload(net::NodeId self, uint32_t level) const;

  net::Network* network_;
  const AggregateFunction* function_;
  TagConfig config_;
  std::optional<Query> query_;
  std::vector<double> readings_;
  std::vector<NodeState> states_;
  TagStats stats_;
  bool started_ = false;
};

}  // namespace ipda::agg

#endif  // IPDA_AGG_TAG_TAG_PROTOCOL_H_
