#include "agg/tag/tag_protocol.h"

#include <algorithm>
#include <utility>

#include "agg/partial.h"
#include "net/packet.h"
#include "util/check.h"
#include "util/logging.h"

namespace ipda::agg {
namespace {

struct TagHello {
  uint32_t level = 0;
  std::optional<Query> query;
};

util::Bytes EncodeHello(const TagHello& hello) {
  util::ByteWriter writer;
  writer.WriteU16(static_cast<uint16_t>(std::min(hello.level, 0xffffu)));
  writer.WriteU8(hello.query.has_value() ? 1 : 0);
  util::Bytes out = writer.TakeBytes();
  if (hello.query.has_value()) {
    const util::Bytes query = EncodeQuery(*hello.query);
    out.insert(out.end(), query.begin(), query.end());
  }
  return out;
}

util::Result<TagHello> DecodeHello(const util::Bytes& payload) {
  util::ByteReader reader(payload);
  TagHello hello;
  IPDA_ASSIGN_OR_RETURN(uint16_t level, reader.ReadU16());
  hello.level = level;
  IPDA_ASSIGN_OR_RETURN(uint8_t has_query, reader.ReadU8());
  if (has_query != 0) {
    util::Bytes rest(payload.begin() + 3, payload.end());
    IPDA_ASSIGN_OR_RETURN(Query query, DecodeQuery(rest));
    hello.query = query;
  }
  return hello;
}

}  // namespace

util::Status ValidateTagConfig(const TagConfig& config) {
  if (config.build_window <= 0 || config.slot <= 0) {
    return util::InvalidArgumentError("TAG windows must be positive");
  }
  if (config.max_depth == 0) {
    return util::InvalidArgumentError("TAG max_depth must be positive");
  }
  return util::OkStatus();
}

TagProtocol::TagProtocol(net::Network* network,
                         const AggregateFunction* function, TagConfig config)
    : network_(network), function_(function), config_(config) {
  IPDA_CHECK(network != nullptr);
  IPDA_CHECK(function != nullptr);
  IPDA_CHECK(ValidateTagConfig(config).ok());
  readings_.assign(network_->size(), 0.0);
  states_.resize(network_->size());
  for (auto& state : states_) {
    state.acc.assign(function_->arity(), 0.0);
  }
  stats_.collected.assign(function_->arity(), 0.0);
}

void TagProtocol::SetReadings(std::vector<double> readings) {
  IPDA_CHECK_EQ(readings.size(), network_->size());
  readings_ = std::move(readings);
}

void TagProtocol::SetQuery(const Query& query) {
  IPDA_CHECK(!started_);
  auto resolved = FunctionForQuery(query);
  IPDA_CHECK(resolved.ok());
  IPDA_CHECK_EQ((*resolved)->arity(), function_->arity());
  query_ = query;
}

util::Bytes TagProtocol::HelloPayload(net::NodeId self,
                                      uint32_t level) const {
  return EncodeHello(TagHello{level, states_[self].received_query});
}

sim::SimTime TagProtocol::Duration() const {
  // Report phase ends after the level-0 slot plus margin for MAC delays.
  return config_.build_window +
         config_.slot * static_cast<sim::SimTime>(config_.max_depth + 1) +
         config_.report_jitter_max + sim::Milliseconds(200);
}

void TagProtocol::Start() {
  IPDA_CHECK(!started_);
  started_ = true;
  for (net::NodeId id = 0; id < network_->size(); ++id) {
    network_->node(id).SetReceiveHandler(
        [this, id](const net::Packet& packet) { OnPacket(id, packet); });
  }
  // The base station roots the tree and kicks off the flood.
  states_[net::kBaseStationId].joined = true;
  states_[net::kBaseStationId].level = 0;
  states_[net::kBaseStationId].received_query = query_;
  auto& bs = network_->base_station();
  const sim::SimTime jitter = static_cast<sim::SimTime>(
      bs.rng().Fork("tag-hello").UniformUint64(
          static_cast<uint64_t>(config_.hello_jitter_max) + 1));
  network_->sim().After(jitter, [this] {
    network_->base_station().Broadcast(
        net::PacketType::kHello, HelloPayload(net::kBaseStationId, 0));
  });
}

void TagProtocol::OnPacket(net::NodeId self, const net::Packet& packet) {
  switch (packet.type) {
    case net::PacketType::kHello: {
      auto hello = DecodeHello(packet.payload);
      if (!hello.ok()) return;  // Corrupt payloads are dropped silently.
      if (self != net::kBaseStationId && !states_[self].joined) {
        if (hello->query.has_value()) {
          states_[self].received_query = hello->query;
        }
        Join(self, packet.src, hello->level + 1);
      }
      break;
    }
    case net::PacketType::kAggregate: {
      auto partial = DecodePartial(packet.payload);
      if (!partial.ok() || partial->size() != function_->arity()) return;
      if (self == net::kBaseStationId) {
        AddInto(stats_.collected, *partial);
      } else {
        AddInto(states_[self].acc, *partial);
      }
      break;
    }
    default:
      break;
  }
}

void TagProtocol::Join(net::NodeId self, net::NodeId parent, uint32_t level) {
  NodeState& state = states_[self];
  state.joined = true;
  state.parent = parent;
  state.level = level;
  stats_.nodes_joined += 1;

  auto& node = network_->node(self);
  util::Rng rng = node.rng().Fork("tag-join");
  const sim::SimTime hello_jitter = static_cast<sim::SimTime>(
      rng.UniformUint64(static_cast<uint64_t>(config_.hello_jitter_max) + 1));
  network_->sim().After(hello_jitter, [this, self, level] {
    network_->node(self).Broadcast(net::PacketType::kHello,
                                   HelloPayload(self, level));
  });

  const sim::SimTime report_jitter = static_cast<sim::SimTime>(
      rng.UniformUint64(
          static_cast<uint64_t>(config_.report_jitter_max) + 1));
  const sim::SimTime slot_time =
      ReportTime(config_.build_window, config_.slot, config_.max_depth,
                 level) +
      report_jitter;
  const sim::SimTime at =
      std::max(slot_time, network_->sim().now() + sim::Milliseconds(1));
  network_->sim().At(at, [this, self] { Report(self); });
}

void TagProtocol::Report(net::NodeId self) {
  NodeState& state = states_[self];
  Vector partial = state.acc;
  if (query_.has_value()) {
    // Query-driven mode: contribute what the received query asks for. A
    // node the dissemination missed still forwards its children's data.
    if (state.received_query.has_value()) {
      auto resolved = FunctionForQuery(*state.received_query);
      if (resolved.ok() && (*resolved)->arity() == function_->arity()) {
        AddInto(partial, (*resolved)->Contribution(readings_[self]));
      }
    }
  } else {
    AddInto(partial, function_->Contribution(readings_[self]));
  }
  stats_.reports_sent += 1;
  network_->node(self).Unicast(state.parent, net::PacketType::kAggregate,
                               EncodePartial(partial));
}

}  // namespace ipda::agg
