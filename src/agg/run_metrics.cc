#include "agg/run_metrics.h"

#include <algorithm>
#include <string>

#include "obs/metrics.h"

namespace ipda::agg {
namespace {

// Bucket bounds for the per-node bytes-sent histogram: powers of four
// from one short frame to well past any single node's round traffic.
const std::vector<double>& NodeBytesBounds() {
  static const std::vector<double> bounds = {64,    256,    1024,
                                             4096,  16384,  65536};
  return bounds;
}

void SetCounter(obs::Registry& reg, const char* name, uint64_t v) {
  reg.GetCounter(name)->Set(v);
}

void SetGauge(obs::Registry& reg, const char* name, double v) {
  reg.GetGauge(name)->Set(v);
}

}  // namespace

void CollectRunMetrics(sim::Simulator& simulator,
                       const net::Network& network,
                       const crypto::CryptoStats& crypto_base,
                       const fault::FaultInjector* injector,
                       const fault::ChurnInjector* churn,
                       crypto::CipherKind cipher) {
  simulator.CollectKernelMetrics();
  obs::Registry& reg = simulator.metrics();
  SetGauge(reg, "sim.duration_s",
           sim::ToSeconds(simulator.now()));

  const net::NodeCounters t = network.counters().Totals();
  SetCounter(reg, "net.frames_sent", t.frames_sent);
  SetCounter(reg, "net.bytes_sent", t.bytes_sent);
  SetCounter(reg, "net.ack_frames_sent", t.ack_frames_sent);
  SetCounter(reg, "net.ack_bytes_sent", t.ack_bytes_sent);
  SetCounter(reg, "net.frames_delivered", t.frames_delivered);
  SetCounter(reg, "net.bytes_delivered", t.bytes_delivered);
  SetCounter(reg, "net.frames_collided", t.frames_collided);
  SetCounter(reg, "net.frames_missed_tx", t.frames_missed_tx);
  SetCounter(reg, "net.mac_drops", t.mac_drops);
  SetCounter(reg, "net.arq_retries", t.arq_retries);
  SetCounter(reg, "net.injected_drops", t.injected_drops);
  SetCounter(reg, "net.injected_dup", t.injected_dup);
  SetCounter(reg, "net.recoveries", t.recoveries);
  // Protocol-only traffic: what fig7_overhead plots (MAC ACKs excluded).
  SetCounter(reg, "net.protocol_frames", t.frames_sent - t.ack_frames_sent);
  SetCounter(reg, "net.protocol_bytes", t.bytes_sent - t.ack_bytes_sent);

  SetGauge(reg, "net.energy_total_j", t.TotalEnergyJ());
  double hottest = 0.0;
  obs::Histogram* node_bytes =
      reg.GetHistogram("net.node_bytes_sent", NodeBytesBounds());
  // Node 0 is the base station; it is a real radio, so it counts too.
  for (size_t id = 0; id < network.counters().node_count(); ++id) {
    const net::NodeCounters& c = network.counters().at(id);
    hottest = std::max(hottest, c.TotalEnergyJ());
    node_bytes->Observe(static_cast<double>(c.bytes_sent));
  }
  SetGauge(reg, "net.energy_hottest_node_j", hottest);

  const crypto::CryptoStats d = crypto::ThreadCryptoStats() - crypto_base;
  SetCounter(reg, "crypto.ctr_blocks_scalar", d.ctr_blocks_scalar);
  SetCounter(reg, "crypto.ctr_blocks_batched", d.ctr_blocks_batched);
  SetCounter(reg, "crypto.keystream_bytes", d.keystream_bytes);
  SetCounter(reg, "crypto.keystore_dense_hits", d.keystore_dense_hits);
  SetCounter(reg, "crypto.keystore_dynamic_hits", d.keystore_dynamic_hits);
  // Gauge name carries the backend so snapshot diffs across cipher
  // choices are self-describing (value is always 1).
  const std::string backend_gauge =
      std::string("crypto.backend.") + crypto::CipherKindName(cipher);
  SetGauge(reg, backend_gauge.c_str(), 1.0);

  if (injector != nullptr) {
    SetCounter(reg, "fault.crashes", injector->crashes_fired());
    SetCounter(reg, "fault.recoveries", injector->recoveries_fired());
  }
  if (churn != nullptr) {
    SetCounter(reg, "fault.churn_joins", churn->joins_fired());
    SetCounter(reg, "fault.churn_leaves", churn->leaves_fired());
    SetCounter(reg, "fault.churn_move_steps", churn->move_steps_fired());
  }
}

void CollectIpdaMetrics(sim::Simulator& simulator, const IpdaStats& stats,
                        const IpdaConfig& config) {
  obs::Registry& reg = simulator.metrics();
  SetCounter(reg, "agg.covered_both", stats.covered_both);
  SetCounter(reg, "agg.red_aggregators", stats.red_aggregators);
  SetCounter(reg, "agg.blue_aggregators", stats.blue_aggregators);
  SetCounter(reg, "agg.leaves", stats.leaves);
  SetCounter(reg, "agg.undecided", stats.undecided);
  SetCounter(reg, "agg.excluded", stats.excluded);
  SetCounter(reg, "agg.participants", stats.participants);
  SetCounter(reg, "agg.slices_sent", stats.slices_sent);
  SetCounter(reg, "agg.slice_decrypt_failures",
             stats.slice_decrypt_failures);
  SetCounter(reg, "agg.reports_sent", stats.reports_sent);
  SetCounter(reg, "agg.slices_retargeted", stats.slices_retargeted);
  SetCounter(reg, "agg.slices_lost", stats.slices_lost);
  SetCounter(reg, "agg.reports_rerouted", stats.reports_rerouted);
  SetCounter(reg, "agg.orphaned_partials", stats.orphaned_partials);
  SetCounter(reg, "agg.late_partials", stats.late_partials);
  SetGauge(reg, "agg.completeness_red", stats.completeness_red);
  SetGauge(reg, "agg.completeness_blue", stats.completeness_blue);
  SetGauge(reg, "agg.degraded", stats.degraded ? 1.0 : 0.0);
  SetGauge(reg, "agg.accepted", stats.decision.accepted ? 1.0 : 0.0);
  SetGauge(reg, "agg.red_blue_diff", stats.decision.max_component_diff);

  // Churn-response instruments exist only when the feature is on, so
  // churn-free registries (and their golden snapshots) stay unchanged.
  if (config.churn_response != ChurnResponse::kNone) {
    SetCounter(reg, "agg.joins_absorbed", stats.joins_absorbed);
    SetCounter(reg, "agg.grafts", stats.grafts);
    SetCounter(reg, "agg.disjoint_violations", stats.disjoint_violations);
    SetCounter(reg, "agg.backoff_retries", stats.backoff_retries);
    SetCounter(reg, "agg.repair_budget_exhausted",
               stats.repair_budget_exhausted);
    SetCounter(reg, "agg.relay_forwards", stats.relay_forwards);
    SetCounter(reg, "agg.relays_lost", stats.relays_lost);
    SetCounter(reg, "agg.rebuild_floods", stats.rebuild_floods);
    SetCounter(reg, "agg.churn_control_msgs", stats.churn_control_msgs);
    static const std::vector<double> kRepairBounds = {1, 2, 4, 8, 16, 32};
    reg.GetHistogram("agg.repairs_per_round", kRepairBounds)
        ->Observe(static_cast<double>(stats.grafts));
    static const std::vector<double> kLatencyBounds = {10,  25,  50, 100,
                                                       200, 400, 800};
    obs::Histogram* latency =
        reg.GetHistogram("agg.repair_latency_ms", kLatencyBounds);
    for (double ms : stats.repair_latencies_ms) latency->Observe(ms);
  }

  // Phase spans on the round's deterministic schedule. The boundaries are
  // config-derived, never measured, so the trace is byte-identical across
  // machines and --jobs values; verification closes at the simulator's
  // clock (itself deterministic) since Finish() runs after the deadline.
  obs::Trace& trace = simulator.trace();
  const sim::SimTime slice_start = IpdaSliceStart(config);
  const sim::SimTime report_start = IpdaReportStart(config);
  const sim::SimTime deadline = IpdaRoundDeadline(config);
  trace.Span("query.dissemination", 0, slice_start);
  trace.Span("slicing", slice_start, slice_start + config.slice_window);
  trace.Span("assembly", slice_start + config.slice_window, report_start);
  trace.Span("aggregation", report_start, std::max(report_start, deadline));
  trace.Span("verification", std::max(report_start, deadline),
             std::max(simulator.now(),
                      std::max(report_start, deadline)));
}

}  // namespace ipda::agg
