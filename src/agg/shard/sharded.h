// Multi-sink sharded iPDA aggregation (DESIGN.md §13).
//
// At city scale a single base station is the bottleneck twice over: the
// tree diameter outgrows the fixed phase schedule (accuracy collapses once
// depth exceeds max_depth / the Phase I window), and every frame funnels
// through one radio neighborhood. Sharding deploys B sinks over the same
// area, assigns each sensor to its nearest sink (Voronoi), runs one
// independent iPDA round per shard — disjoint red/blue trees, slicing,
// per-shard Th check — and merges the per-shard tree totals at a top-level
// sink with the same |S_red − S_blue| ≤ Th integrity decision. SUM-like
// aggregates merge exactly: the shards partition the sensor set, so the
// summed red (resp. blue) totals equal the single-sink tree totals in the
// loss-free case.
//
// The global deployment is byte-identical to the single-sink run with the
// same RunConfig (same "deployment" rng fork), so sharded and unsharded
// results are comparable run for run. Sensor node ids 1..N-1 keep their
// global meaning; the original base-station slot (global id 0) senses
// nothing in either mode. Each shard simulates an independent radio
// domain — spatially, inter-shard interference is a border effect this
// model ignores in exchange for embarrassingly parallel shards.

#ifndef IPDA_AGG_SHARD_SHARDED_H_
#define IPDA_AGG_SHARD_SHARDED_H_

#include <vector>

#include "agg/runner.h"

namespace ipda::agg {

struct ShardedConfig {
  size_t sinks = 2;  // B: base stations deployed over the area.
  // Shard indices whose sink crash-fails for the whole round: the shard is
  // not simulated and its sensors' contributions are lost. Degradation is
  // contained — other shards still merge (the availability argument for
  // multiple sinks).
  std::vector<size_t> crashed_sinks;
};

// One shard's round, in global terms.
struct ShardOutcome {
  size_t shard = 0;
  size_t sensor_count = 0;  // Sensors assigned to this sink.
  bool crashed = false;     // Sink was down; stats/traffic are zero.
  IpdaStats stats;
  net::NodeCounters traffic;
  double average_degree = 0.0;
};

struct ShardedRunResult {
  std::vector<ShardOutcome> shards;
  Vector true_acc;             // Ground truth over ALL sensors (global).
  net::NodeCounters traffic;   // Summed over live shards.
  // Top-level merge: per-shard red (resp. blue) totals summed, then the
  // usual Th test. Additionally rejected if any live shard's own decision
  // rejected (cross-shard cancellation must not mask a polluted shard).
  IntegrityDecision decision;
  double average_degree = 0.0;  // Sensor-weighted mean over live shards.
  double accuracy_red = 0.0;
  double accuracy_blue = 0.0;
  double accuracy = 0.0;
  double result = 0.0;
  bool degraded = false;  // Any shard crashed or finished degraded.
};

// Deterministic sink placement: cell centers of the smallest near-square
// grid covering `sinks` cells over the area, row-major. One sink lands at
// the area center when sinks == 1.
std::vector<net::Point2D> SinkPlacement(const net::Area& area, size_t sinks);

// Nearest-sink (Voronoi) shard index for every node of `topology`.
// Index 0 (the global base-station slot) is assigned like any node but
// carries no reading. Ties break toward the lower shard index.
std::vector<uint32_t> PartitionBySink(
    const net::Topology& topology, const std::vector<net::Point2D>& sinks);

// Runs one sharded iPDA round. `config.faults` and `config.churn` must be
// empty (per-shard fault schedules are future work); use
// ShardedConfig::crashed_sinks for the sink-failure story.
util::Result<ShardedRunResult> RunShardedIpda(
    const RunConfig& config, const AggregateFunction& function,
    const SensorField& field, const IpdaConfig& ipda_config = {},
    const ShardedConfig& sharded_config = {});

}  // namespace ipda::agg

#endif  // IPDA_AGG_SHARD_SHARDED_H_
