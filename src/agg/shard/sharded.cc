#include "agg/shard/sharded.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "net/network.h"
#include "sim/simulator.h"
#include "util/check.h"
#include "util/random.h"

namespace ipda::agg {
namespace {

// Shard simulators need distinct, reproducible seeds: same (run seed,
// shard) → same shard round, and no shard shares a stream with the
// single-sink run of the same seed.
constexpr uint64_t kShardSeedSalt = 0x5348415244534Bull;  // "SHARDSK"

Vector GlobalTruth(const AggregateFunction& function,
                   const std::vector<double>& readings) {
  Vector total(function.arity(), 0.0);
  for (size_t id = 1; id < readings.size(); ++id) {
    AddInto(total, function.Contribution(readings[id]));
  }
  return total;
}

util::Status ShardInterruptStatus(const RunConfig& config, size_t shard,
                                  const sim::Simulator& simulator) {
  switch (simulator.scheduler().interrupt_cause()) {
    case sim::Scheduler::InterruptCause::kNone:
      return util::OkStatus();
    case sim::Scheduler::InterruptCause::kCancel:
      return util::UnavailableError("shard " + std::to_string(shard) +
                                    " cancelled");
    case sim::Scheduler::InterruptCause::kEventBudget:
      return util::UnavailableError(
          "shard " + std::to_string(shard) + " exceeded event budget (" +
          std::to_string(config.control.event_budget) + " events)");
  }
  return util::InternalError("unknown interrupt cause");
}

}  // namespace

std::vector<net::Point2D> SinkPlacement(const net::Area& area,
                                        size_t sinks) {
  std::vector<net::Point2D> out;
  if (sinks == 0) return out;
  if (sinks == 1) {
    out.push_back(area.Center());
    return out;
  }
  // Smallest near-square grid with at least `sinks` cells; the first
  // `sinks` cell centers, row-major. Deterministic, spread over the area,
  // and stable as B grows within one row count.
  const size_t cols =
      static_cast<size_t>(std::ceil(std::sqrt(static_cast<double>(sinks))));
  const size_t rows = (sinks + cols - 1) / cols;
  out.reserve(sinks);
  for (size_t r = 0; r < rows && out.size() < sinks; ++r) {
    for (size_t c = 0; c < cols && out.size() < sinks; ++c) {
      out.push_back(net::Point2D{
          area.width * (2.0 * static_cast<double>(c) + 1.0) /
              (2.0 * static_cast<double>(cols)),
          area.height * (2.0 * static_cast<double>(r) + 1.0) /
              (2.0 * static_cast<double>(rows))});
    }
  }
  return out;
}

std::vector<uint32_t> PartitionBySink(
    const net::Topology& topology,
    const std::vector<net::Point2D>& sinks) {
  IPDA_CHECK(!sinks.empty());
  std::vector<uint32_t> assignment(topology.node_count(), 0);
  for (net::NodeId id = 0; id < topology.node_count(); ++id) {
    const net::Point2D p = topology.position(id);
    double best = DistanceSquared(p, sinks[0]);
    uint32_t best_shard = 0;
    for (uint32_t s = 1; s < sinks.size(); ++s) {
      const double d = DistanceSquared(p, sinks[s]);
      if (d < best) {
        best = d;
        best_shard = s;
      }
    }
    assignment[id] = best_shard;
  }
  return assignment;
}

util::Result<ShardedRunResult> RunShardedIpda(
    const RunConfig& config, const AggregateFunction& function,
    const SensorField& field, const IpdaConfig& ipda_config,
    const ShardedConfig& sharded_config) {
  if (sharded_config.sinks == 0) {
    return util::InvalidArgumentError("sharded run needs at least one sink");
  }
  if (!config.faults.empty() || !config.churn.empty()) {
    return util::InvalidArgumentError(
        "fault/churn plans are not supported in sharded mode; model sink "
        "failure via ShardedConfig::crashed_sinks");
  }
  for (size_t s : sharded_config.crashed_sinks) {
    if (s >= sharded_config.sinks) {
      return util::InvalidArgumentError("crashed sink index out of range");
    }
  }

  // The global deployment — identical positions to the single-sink run of
  // this RunConfig, so sharded vs unsharded results compare run for run.
  IPDA_ASSIGN_OR_RETURN(net::Topology global, BuildRunTopology(config));
  const std::vector<double> readings = field.Sample(global);

  const std::vector<net::Point2D> sink_positions =
      SinkPlacement(config.deployment.area, sharded_config.sinks);
  const std::vector<uint32_t> assignment =
      PartitionBySink(global, sink_positions);

  // Sensor membership per shard. Global id 0 (the single-sink base
  // station's slot) senses nothing in either mode, so it joins no shard;
  // every actual sensor 1..N-1 joins exactly one — the shards partition
  // the sensor set, which is what makes SUM-like merges exact.
  std::vector<std::vector<net::NodeId>> members(sharded_config.sinks);
  for (net::NodeId id = 1; id < global.node_count(); ++id) {
    members[assignment[id]].push_back(id);
  }

  ShardedRunResult result;
  result.true_acc = GlobalTruth(function, readings);
  BaseStationAccumulator merge(function.arity());
  bool any_rejected = false;
  double degree_weight = 0.0;
  double degree_sum = 0.0;

  for (size_t s = 0; s < sharded_config.sinks; ++s) {
    ShardOutcome outcome;
    outcome.shard = s;
    outcome.sensor_count = members[s].size();
    const bool crashed =
        std::find(sharded_config.crashed_sinks.begin(),
                  sharded_config.crashed_sinks.end(),
                  s) != sharded_config.crashed_sinks.end();
    if (crashed) {
      // The whole shard's data is lost, but the loss is contained: the
      // merge proceeds over the surviving shards.
      outcome.crashed = true;
      result.degraded = true;
      result.shards.push_back(std::move(outcome));
      continue;
    }

    // Local node space: id 0 is this shard's sink, ids 1..k map to the
    // shard's sensors in ascending global-id order.
    std::vector<net::Point2D> local_positions;
    local_positions.reserve(members[s].size() + 1);
    local_positions.push_back(sink_positions[s]);
    std::vector<double> local_readings;
    local_readings.reserve(members[s].size() + 1);
    local_readings.push_back(0.0);
    for (net::NodeId global_id : members[s]) {
      local_positions.push_back(global.position(global_id));
      local_readings.push_back(readings[global_id]);
    }

    IPDA_ASSIGN_OR_RETURN(
        net::Topology topology,
        net::Topology::Build(std::move(local_positions), config.range));
    sim::Simulator simulator(
        util::Mix64(util::Mix64(config.seed, kShardSeedSalt), s));
    simulator.scheduler().SetCancelToken(config.control.cancel);
    simulator.scheduler().SetEventBudget(config.control.event_budget);
    net::Network network(&simulator, std::move(topology), config.phy,
                         config.mac);
    IpdaProtocol protocol(&network, &function, ipda_config);
    protocol.SetReadings(local_readings);
    protocol.Start();
    simulator.RunUntil(protocol.Duration());
    IPDA_RETURN_IF_ERROR(ShardInterruptStatus(config, s, simulator));
    protocol.Finish();

    outcome.stats = protocol.stats();
    outcome.traffic = network.counters().Totals();
    outcome.average_degree = network.topology().AverageDegree();
    merge.Add(TreeColor::kRed, outcome.stats.decision.acc_red);
    merge.Add(TreeColor::kBlue, outcome.stats.decision.acc_blue);
    any_rejected |= !outcome.stats.decision.accepted;
    result.degraded |= outcome.stats.degraded;
    result.traffic += outcome.traffic;
    const double weight = static_cast<double>(network.size());
    degree_sum += outcome.average_degree * weight;
    degree_weight += weight;
    result.shards.push_back(std::move(outcome));
  }

  result.decision = merge.Decide(ipda_config.threshold);
  // A polluted shard must not hide behind cross-shard cancellation: the
  // merged totals could agree even though one shard's red/blue pair did
  // not. Every live shard's own Th verdict gates acceptance too.
  if (any_rejected) result.decision.accepted = false;
  result.average_degree =
      degree_weight > 0.0 ? degree_sum / degree_weight : 0.0;
  result.accuracy_red =
      AccuracyRatio(result.decision.acc_red, result.true_acc);
  result.accuracy_blue =
      AccuracyRatio(result.decision.acc_blue, result.true_acc);
  result.accuracy = AccuracyRatio(result.decision.Agreed(), result.true_acc);
  result.result = function.Finalize(result.decision.Agreed());
  return result;
}

}  // namespace ipda::agg
