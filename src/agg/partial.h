// Wire codec for intermediate aggregation results and the level-slotted
// report schedule shared by TAG and iPDA Phase III.

#ifndef IPDA_AGG_PARTIAL_H_
#define IPDA_AGG_PARTIAL_H_

#include <cstdint>

#include "agg/aggregate_function.h"
#include "sim/time.h"
#include "util/bytes.h"
#include "util/result.h"

namespace ipda::agg {

// Payload: [u8 component-count][f64 x count].
util::Bytes EncodePartial(const Vector& acc);
util::Result<Vector> DecodePartial(const util::Bytes& payload);

// In-place variants for composing codecs: append to / consume from an
// existing stream so enclosing messages need neither a temporary body
// buffer nor a tail copy of the payload.
void EncodePartialInto(const Vector& acc, util::ByteWriter& writer);
util::Result<Vector> DecodePartialFrom(util::ByteReader& reader);

// When a node at tree depth `hop` transmits its partial: deeper nodes go
// first so parents can fold children in before their own slot. Hops beyond
// `max_depth` share the earliest slot.
sim::SimTime ReportTime(sim::SimTime start, sim::SimTime slot,
                        uint32_t max_depth, uint32_t hop);

}  // namespace ipda::agg

#endif  // IPDA_AGG_PARTIAL_H_
