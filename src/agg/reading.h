// Sensor reading sources. Experiments need reproducible per-node readings;
// examples model concrete phenomena (e.g. household meter loads).

#ifndef IPDA_AGG_READING_H_
#define IPDA_AGG_READING_H_

#include <memory>
#include <vector>

#include "net/topology.h"
#include "util/random.h"

namespace ipda::agg {

class SensorField {
 public:
  virtual ~SensorField() = default;

  // Reading of node `id`. The topology gives position-dependent fields
  // access to node coordinates.
  virtual double ReadingFor(net::NodeId id,
                            const net::Topology& topology) const = 0;

  // Materializes a reading per node (index == NodeId). The base station
  // (id 0) gets 0: it queries, it does not sense.
  std::vector<double> Sample(const net::Topology& topology) const;
};

// Every sensor reads `value`.
std::unique_ptr<SensorField> MakeConstantField(double value);

// Independent uniform readings in [lo, hi], deterministic per (seed, id).
std::unique_ptr<SensorField> MakeUniformField(double lo, double hi,
                                              uint64_t seed);

// Smooth spatial gradient: base + slope_x·x + slope_y·y — a plausible
// temperature/irradiance field where nearby sensors agree.
std::unique_ptr<SensorField> MakeGradientField(double base, double slope_x,
                                               double slope_y);

}  // namespace ipda::agg

#endif  // IPDA_AGG_READING_H_
