#include "agg/runner.h"

#include <utility>

#include "sim/simulator.h"
#include "util/check.h"

namespace ipda::agg {
namespace {

Vector TrueTotal(const AggregateFunction& function,
                 const std::vector<double>& readings) {
  Vector total(function.arity(), 0.0);
  for (size_t id = 1; id < readings.size(); ++id) {
    AddInto(total, function.Contribution(readings[id]));
  }
  return total;
}

}  // namespace

util::Result<net::Topology> BuildRunTopology(const RunConfig& config) {
  util::Rng rng = util::Rng(config.seed).Fork("deployment");
  return net::Topology::RandomGeometric(config.deployment, config.range,
                                        rng);
}

double AccuracyRatio(const Vector& collected, const Vector& truth) {
  if (truth.empty() || truth[0] == 0.0) return 0.0;
  return collected[0] / truth[0];
}

util::Result<TagRunResult> RunTag(const RunConfig& config,
                                  const AggregateFunction& function,
                                  const SensorField& field,
                                  const TagConfig& tag_config) {
  IPDA_ASSIGN_OR_RETURN(net::Topology topology, BuildRunTopology(config));
  sim::Simulator simulator(config.seed);
  net::Network network(&simulator, std::move(topology), config.phy,
                       config.mac);
  TagProtocol protocol(&network, &function, tag_config);
  const std::vector<double> readings = field.Sample(network.topology());
  protocol.SetReadings(readings);
  protocol.Start();
  simulator.RunUntil(protocol.Duration());

  TagRunResult result;
  result.stats = protocol.stats();
  result.true_acc = TrueTotal(function, readings);
  result.traffic = network.counters().Totals();
  result.average_degree = network.topology().AverageDegree();
  result.accuracy = AccuracyRatio(result.stats.collected, result.true_acc);
  result.result = protocol.FinalizedResult();
  return result;
}

util::Result<SmartRunResult> RunSmart(
    const RunConfig& config, const AggregateFunction& function,
    const SensorField& field, const SmartConfig& smart_config,
    SmartProtocol::SliceObserver slice_observer) {
  IPDA_ASSIGN_OR_RETURN(net::Topology topology, BuildRunTopology(config));
  sim::Simulator simulator(config.seed);
  net::Network network(&simulator, std::move(topology), config.phy,
                       config.mac);
  SmartProtocol protocol(&network, &function, smart_config);
  const std::vector<double> readings = field.Sample(network.topology());
  protocol.SetReadings(readings);
  if (slice_observer) protocol.SetSliceObserver(std::move(slice_observer));
  protocol.Start();
  simulator.RunUntil(protocol.Duration());

  SmartRunResult result;
  result.stats = protocol.stats();
  result.true_acc = TrueTotal(function, readings);
  result.traffic = network.counters().Totals();
  result.average_degree = network.topology().AverageDegree();
  result.accuracy = AccuracyRatio(result.stats.collected, result.true_acc);
  result.result = protocol.FinalizedResult();
  return result;
}

util::Result<CpdaRunResult> RunCpda(const RunConfig& config,
                                    const AggregateFunction& function,
                                    const SensorField& field,
                                    const CpdaConfig& cpda_config) {
  IPDA_ASSIGN_OR_RETURN(net::Topology topology, BuildRunTopology(config));
  sim::Simulator simulator(config.seed);
  net::Network network(&simulator, std::move(topology), config.phy,
                       config.mac);
  CpdaProtocol protocol(&network, &function, cpda_config);
  const std::vector<double> readings = field.Sample(network.topology());
  protocol.SetReadings(readings);
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  protocol.Finish();

  CpdaRunResult result;
  result.stats = protocol.stats();
  result.true_acc = TrueTotal(function, readings);
  result.traffic = network.counters().Totals();
  result.average_degree = network.topology().AverageDegree();
  result.accuracy = AccuracyRatio(result.stats.collected, result.true_acc);
  result.result = protocol.FinalizedResult();
  return result;
}

util::Result<IpdaRunResult> RunIpda(const RunConfig& config,
                                    const AggregateFunction& function,
                                    const SensorField& field,
                                    const IpdaConfig& ipda_config,
                                    const IpdaRunHooks& hooks) {
  IPDA_ASSIGN_OR_RETURN(net::Topology topology, BuildRunTopology(config));
  sim::Simulator simulator(config.seed);
  net::Network network(&simulator, std::move(topology), config.phy,
                       config.mac);
  IpdaProtocol protocol(&network, &function, ipda_config);
  const std::vector<double> readings = field.Sample(network.topology());
  protocol.SetReadings(readings);
  if (hooks.pollution) protocol.SetPollutionHook(hooks.pollution);
  if (hooks.slice_observer) protocol.SetSliceObserver(hooks.slice_observer);
  if (!hooks.excluded.empty()) protocol.SetExcludedNodes(hooks.excluded);
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  protocol.Finish();

  IpdaRunResult result;
  result.stats = protocol.stats();
  result.true_acc = TrueTotal(function, readings);
  result.traffic = network.counters().Totals();
  result.average_degree = network.topology().AverageDegree();
  result.accuracy_red =
      AccuracyRatio(result.stats.decision.acc_red, result.true_acc);
  result.accuracy_blue =
      AccuracyRatio(result.stats.decision.acc_blue, result.true_acc);
  result.accuracy =
      AccuracyRatio(result.stats.decision.Agreed(), result.true_acc);
  result.result = protocol.FinalizedResult();
  return result;
}

}  // namespace ipda::agg
