#include "agg/runner.h"

#include <optional>
#include <utility>

#include "agg/run_metrics.h"
#include "crypto/stats.h"
#include "fault/churn_injector.h"
#include "fault/fault_injector.h"
#include "sim/simulator.h"
#include "util/check.h"

namespace ipda::agg {
namespace {

Vector TrueTotal(const AggregateFunction& function,
                 const std::vector<double>& readings) {
  Vector total(function.arity(), 0.0);
  for (size_t id = 1; id < readings.size(); ++id) {
    AddInto(total, function.Contribution(readings[id]));
  }
  return total;
}

// A deployed MAC tunes its ACK timeout to the link's latency budget. The
// fault plan may delay the data frame by up to jitter_max and the ACK by
// up to jitter_max again, so widen the ARQ window accordingly: a dead-peer
// verdict must mean loss or crash, never delay alone (a jittered-but-
// delivered frame that times out would be re-sent via retarget/failover
// and absorbed twice, inflating one tree).
net::MacConfig RunMacConfig(const RunConfig& config) {
  net::MacConfig mac = config.mac;
  mac.ack_timeout += 2 * config.faults.link.jitter_max;
  return mac;
}

// Arms config.faults against the run's network. The injector is emplaced
// into caller-owned storage (it is non-movable and must outlive RunUntil).
util::Status ArmFaults(const RunConfig& config, sim::Simulator& simulator,
                       net::Network& network,
                       std::optional<fault::FaultInjector>& injector) {
  if (config.faults.empty()) return util::OkStatus();
  IPDA_RETURN_IF_ERROR(fault::ValidateFaultPlan(config.faults));
  injector.emplace(&simulator, &network.channel(), network.size(),
                   config.faults);
  injector->Arm();
  return util::OkStatus();
}

// Arms config.churn against the run's live topology, wiring the churn
// signals into the protocol (joins solicit tree admission, edge changes
// may trigger a rebuild flood). Must run before protocol->Start() so
// pending joiners are detached ahead of the Phase I flood.
util::Status ArmChurn(const RunConfig& config, sim::Simulator& simulator,
                      net::Network& network, sim::SimTime horizon,
                      std::optional<fault::ChurnInjector>& injector,
                      IpdaProtocol* protocol) {
  if (config.churn.empty()) return util::OkStatus();
  IPDA_RETURN_IF_ERROR(fault::ValidateChurnPlan(config.churn));
  injector.emplace(&simulator, &network.channel(),
                   network.mutable_topology(), config.churn,
                   config.deployment.area, horizon);
  if (protocol != nullptr) {
    injector->SetJoinListener(
        [protocol](net::NodeId id) { protocol->OnChurnJoin(id); });
    injector->SetChangeListener(
        [protocol] { protocol->OnTopologyChange(); });
  }
  injector->Arm();
  return util::OkStatus();
}

// Arms the run's execution guards (cancel token, event budget) on its
// scheduler before any event runs.
void ApplyControl(const RunConfig& config, sim::Simulator& simulator) {
  simulator.scheduler().SetCancelToken(config.control.cancel);
  simulator.scheduler().SetEventBudget(config.control.event_budget);
}

// Collects the generic cross-layer metrics and freezes the registry into
// the result's snapshot. Shared verbatim by every Run* helper so all
// protocols expose the same sim/net/crypto/pool instrument set.
// `round_duration` is the protocol's nominal schedule length (what the
// run's RunUntil used as its deadline), published as agg.round_duration_s
// for the energy bench's idle-listening pricing.
obs::Snapshot FinishMetrics(
    sim::Simulator& simulator, const net::Network& network,
    const crypto::CryptoStats& crypto_base,
    const std::optional<fault::FaultInjector>& injector,
    sim::SimTime round_duration,
    const std::optional<fault::ChurnInjector>& churn = std::nullopt,
    crypto::CipherKind cipher = crypto::CipherKind::kXtea) {
  simulator.metrics().GetGauge("agg.round_duration_s")
      ->Set(sim::ToSeconds(round_duration));
  CollectRunMetrics(simulator, network, crypto_base,
                    injector.has_value() ? &*injector : nullptr,
                    churn.has_value() ? &*churn : nullptr, cipher);
  return obs::TakeSnapshot(simulator.metrics(), &simulator.trace());
}

// Non-OK when the run's RunUntil stopped early on a tripped guard; the
// protocol's state is consistent but the round is incomplete, so the
// caller must get a failure, never a half-aggregated result.
util::Status InterruptStatus(const RunConfig& config,
                             const sim::Simulator& simulator) {
  switch (simulator.scheduler().interrupt_cause()) {
    case sim::Scheduler::InterruptCause::kNone:
      return util::OkStatus();
    case sim::Scheduler::InterruptCause::kCancel:
      return util::UnavailableError(
          "run cancelled (" +
          std::string(sim::CancelReasonName(
              config.control.cancel != nullptr
                  ? config.control.cancel->reason()
                  : sim::CancelReason::kExternal)) +
          ")");
    case sim::Scheduler::InterruptCause::kEventBudget:
      return util::UnavailableError(
          "run exceeded event budget (" +
          std::to_string(config.control.event_budget) + " events)");
  }
  return util::InternalError("unknown interrupt cause");
}

}  // namespace

util::Result<net::Topology> BuildRunTopology(const RunConfig& config) {
  if (config.topology != nullptr) return *config.topology;
  util::Rng rng = util::Rng(config.seed).Fork("deployment");
  return net::Topology::RandomGeometric(config.deployment, config.range,
                                        rng);
}

double AccuracyRatio(const Vector& collected, const Vector& truth) {
  if (truth.empty() || truth[0] == 0.0) return 0.0;
  return collected[0] / truth[0];
}

util::Result<TagRunResult> RunTag(const RunConfig& config,
                                  const AggregateFunction& function,
                                  const SensorField& field,
                                  const TagConfig& tag_config) {
  IPDA_ASSIGN_OR_RETURN(net::Topology topology, BuildRunTopology(config));
  sim::Simulator simulator(config.seed);
  ApplyControl(config, simulator);
  const crypto::CryptoStats crypto_base = crypto::ThreadCryptoStats();
  net::Network network(&simulator, std::move(topology), config.phy,
                       RunMacConfig(config));
  TagProtocol protocol(&network, &function, tag_config);
  std::optional<fault::FaultInjector> injector;
  IPDA_RETURN_IF_ERROR(ArmFaults(config, simulator, network, injector));
  const std::vector<double> readings = field.Sample(network.topology());
  protocol.SetReadings(readings);
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  IPDA_RETURN_IF_ERROR(InterruptStatus(config, simulator));

  TagRunResult result;
  result.stats = protocol.stats();
  result.true_acc = TrueTotal(function, readings);
  result.traffic = network.counters().Totals();
  result.metrics = FinishMetrics(simulator, network, crypto_base, injector,
                                 protocol.Duration());
  result.average_degree = network.topology().AverageDegree();
  result.accuracy = AccuracyRatio(result.stats.collected, result.true_acc);
  result.result = protocol.FinalizedResult();
  return result;
}

util::Result<SmartRunResult> RunSmart(
    const RunConfig& config, const AggregateFunction& function,
    const SensorField& field, const SmartConfig& smart_config,
    SmartProtocol::SliceObserver slice_observer) {
  IPDA_ASSIGN_OR_RETURN(net::Topology topology, BuildRunTopology(config));
  sim::Simulator simulator(config.seed);
  ApplyControl(config, simulator);
  const crypto::CryptoStats crypto_base = crypto::ThreadCryptoStats();
  net::Network network(&simulator, std::move(topology), config.phy,
                       RunMacConfig(config));
  SmartProtocol protocol(&network, &function, smart_config);
  std::optional<fault::FaultInjector> injector;
  IPDA_RETURN_IF_ERROR(ArmFaults(config, simulator, network, injector));
  const std::vector<double> readings = field.Sample(network.topology());
  protocol.SetReadings(readings);
  if (slice_observer) protocol.SetSliceObserver(std::move(slice_observer));
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  IPDA_RETURN_IF_ERROR(InterruptStatus(config, simulator));

  SmartRunResult result;
  result.stats = protocol.stats();
  result.true_acc = TrueTotal(function, readings);
  result.traffic = network.counters().Totals();
  result.metrics =
      FinishMetrics(simulator, network, crypto_base, injector,
                    protocol.Duration(), std::nullopt, smart_config.cipher);
  result.average_degree = network.topology().AverageDegree();
  result.accuracy = AccuracyRatio(result.stats.collected, result.true_acc);
  result.result = protocol.FinalizedResult();
  return result;
}

util::Result<CpdaRunResult> RunCpda(const RunConfig& config,
                                    const AggregateFunction& function,
                                    const SensorField& field,
                                    const CpdaConfig& cpda_config) {
  IPDA_ASSIGN_OR_RETURN(net::Topology topology, BuildRunTopology(config));
  sim::Simulator simulator(config.seed);
  ApplyControl(config, simulator);
  const crypto::CryptoStats crypto_base = crypto::ThreadCryptoStats();
  net::Network network(&simulator, std::move(topology), config.phy,
                       RunMacConfig(config));
  CpdaProtocol protocol(&network, &function, cpda_config);
  std::optional<fault::FaultInjector> injector;
  IPDA_RETURN_IF_ERROR(ArmFaults(config, simulator, network, injector));
  const std::vector<double> readings = field.Sample(network.topology());
  protocol.SetReadings(readings);
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  IPDA_RETURN_IF_ERROR(InterruptStatus(config, simulator));
  protocol.Finish();

  CpdaRunResult result;
  result.stats = protocol.stats();
  result.true_acc = TrueTotal(function, readings);
  result.traffic = network.counters().Totals();
  result.metrics =
      FinishMetrics(simulator, network, crypto_base, injector,
                    protocol.Duration(), std::nullopt, cpda_config.cipher);
  result.average_degree = network.topology().AverageDegree();
  result.accuracy = AccuracyRatio(result.stats.collected, result.true_acc);
  result.result = protocol.FinalizedResult();
  return result;
}

util::Result<IpdaRunResult> RunIpda(const RunConfig& config,
                                    const AggregateFunction& function,
                                    const SensorField& field,
                                    const IpdaConfig& ipda_config,
                                    const IpdaRunHooks& hooks) {
  IPDA_ASSIGN_OR_RETURN(net::Topology topology, BuildRunTopology(config));
  sim::Simulator simulator(config.seed);
  ApplyControl(config, simulator);
  const crypto::CryptoStats crypto_base = crypto::ThreadCryptoStats();
  net::Network network(&simulator, std::move(topology), config.phy,
                       RunMacConfig(config));
  IpdaProtocol protocol(&network, &function, ipda_config);
  std::optional<fault::FaultInjector> injector;
  IPDA_RETURN_IF_ERROR(ArmFaults(config, simulator, network, injector));
  // Readings are sampled before churn arms: positions are final by now
  // (the deployment is seed-determined), and detaching pending joiners
  // must not change who has a reading.
  const std::vector<double> readings = field.Sample(network.topology());
  std::optional<fault::ChurnInjector> churn;
  IPDA_RETURN_IF_ERROR(ArmChurn(config, simulator, network,
                                protocol.Duration(), churn, &protocol));
  protocol.SetReadings(readings);
  if (hooks.pollution) protocol.SetPollutionHook(hooks.pollution);
  if (hooks.slice_observer) protocol.SetSliceObserver(hooks.slice_observer);
  if (!hooks.excluded.empty()) protocol.SetExcludedNodes(hooks.excluded);
  protocol.Start();
  simulator.RunUntil(protocol.Duration());
  IPDA_RETURN_IF_ERROR(InterruptStatus(config, simulator));
  protocol.Finish();
  // Round boundary: fold any churn mutations back into flat CSR form so a
  // follow-on round (or the degree census below) runs on the hot path.
  network.mutable_topology()->Compact();

  IpdaRunResult result;
  result.stats = protocol.stats();
  result.true_acc = TrueTotal(function, readings);
  result.traffic = network.counters().Totals();
  CollectIpdaMetrics(simulator, result.stats, protocol.config());
  result.metrics =
      FinishMetrics(simulator, network, crypto_base, injector,
                    protocol.Duration(), churn, ipda_config.cipher);
  result.average_degree = network.topology().AverageDegree();
  result.accuracy_red =
      AccuracyRatio(result.stats.decision.acc_red, result.true_acc);
  result.accuracy_blue =
      AccuracyRatio(result.stats.decision.acc_blue, result.true_acc);
  result.accuracy =
      AccuracyRatio(result.stats.decision.Agreed(), result.true_acc);
  result.result = protocol.FinalizedResult();
  return result;
}

}  // namespace ipda::agg
