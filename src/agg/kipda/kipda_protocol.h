// KIPDA — k-Indistinguishable Privacy-preserving Data Aggregation
// (Groat, He, Forrest — INFOCOM 2011; listed among this paper's directly
// related work, and the follow-up that gives "indistinguishable privacy"
// its name).
//
// KIPDA privately computes exact MAX (or MIN) with NO cryptography at
// all: each sensor transmits a message of M values in which its real
// reading hides among camouflage. A global secret S ⊂ {0..M-1} of "real
// positions" is shared by sensors and the base station:
//   * the reading is placed at one (random) position in S;
//   * other positions in S carry camouflage ≤ the reading (so they can
//     never corrupt an elementwise maximum over S);
//   * positions outside S carry unconstrained camouflage — values that
//     may exceed every real reading, which is what makes the real value
//     indistinguishable inside the vector.
// Aggregators combine children by elementwise max — no decryption, no
// per-hop latency cost — and the base station reads max over S.
//
// Included as the third related baseline: it trades iPDA's additive
// generality and integrity for exact extremes with zero crypto.

#ifndef IPDA_AGG_KIPDA_KIPDA_PROTOCOL_H_
#define IPDA_AGG_KIPDA_KIPDA_PROTOCOL_H_

#include <vector>

#include "agg/aggregate_function.h"
#include "net/network.h"
#include "sim/time.h"
#include "util/random.h"
#include "util/status.h"

namespace ipda::agg {

struct KipdaConfig {
  size_t message_size = 12;    // M: slots per message.
  size_t real_positions = 4;   // |S|: secret real-position count.
  uint64_t secret_seed = 0x51EC437;  // Shared secret selecting S.
  // Readings must lie in [value_floor, value_ceiling]; camouflage outside
  // S is drawn over the whole range (and may exceed every real reading).
  double value_floor = 0.0;
  double value_ceiling = 100.0;
  bool maximize = true;  // false computes MIN (mirrored constraints).

  sim::SimTime hello_jitter_max = sim::Milliseconds(50);
  sim::SimTime build_window = sim::Seconds(2);
  sim::SimTime slot = sim::Milliseconds(100);
  uint32_t max_depth = 24;
  sim::SimTime report_jitter_max = sim::Milliseconds(60);
};

util::Status ValidateKipdaConfig(const KipdaConfig& config);

// The secret position set S for a given config (sorted, deterministic in
// secret_seed). Exposed for the base station, tests, and attack models.
std::vector<size_t> KipdaRealPositions(const KipdaConfig& config);

// Builds one sensor's camouflaged message for `reading`.
Vector KipdaEncode(const KipdaConfig& config, double reading,
                   util::Rng& rng);

// Elementwise combine (max or min per config).
void KipdaCombine(const KipdaConfig& config, Vector& acc, const Vector& in);

// Base-station readout: extreme over the secret positions.
double KipdaDecode(const KipdaConfig& config, const Vector& message);

struct KipdaStats {
  size_t nodes_joined = 0;
  size_t reports_sent = 0;
  Vector collected;  // Elementwise-combined message at the base station.
};

class KipdaProtocol {
 public:
  KipdaProtocol(net::Network* network, KipdaConfig config = {});

  KipdaProtocol(const KipdaProtocol&) = delete;
  KipdaProtocol& operator=(const KipdaProtocol&) = delete;

  void SetReadings(std::vector<double> readings);
  void Start();
  sim::SimTime Duration() const;
  const KipdaStats& stats() const { return stats_; }
  // The MAX (or MIN) answer.
  double FinalizedResult() const {
    return KipdaDecode(config_, stats_.collected);
  }

 private:
  struct NodeState {
    bool joined = false;
    net::NodeId parent = 0;
    uint32_t level = 0;
    Vector acc;  // Elementwise-combined children messages.
    bool has_children_data = false;
  };

  void OnPacket(net::NodeId self, const net::Packet& packet);
  void Join(net::NodeId self, net::NodeId parent, uint32_t level);
  void Report(net::NodeId self);

  net::Network* network_;
  KipdaConfig config_;
  std::vector<double> readings_;
  std::vector<NodeState> states_;
  KipdaStats stats_;
  bool started_ = false;
};

}  // namespace ipda::agg

#endif  // IPDA_AGG_KIPDA_KIPDA_PROTOCOL_H_
