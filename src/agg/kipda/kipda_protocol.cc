#include "agg/kipda/kipda_protocol.h"

#include <algorithm>
#include <utility>

#include "agg/partial.h"
#include "net/packet.h"
#include "util/check.h"

namespace ipda::agg {
namespace {

util::Bytes EncodeKipdaHello(uint32_t level) {
  util::ByteWriter writer;
  writer.WriteU16(static_cast<uint16_t>(std::min(level, 0xffffu)));
  return writer.TakeBytes();
}

util::Result<uint32_t> DecodeKipdaHello(const util::Bytes& payload) {
  util::ByteReader reader(payload);
  IPDA_ASSIGN_OR_RETURN(uint16_t level, reader.ReadU16());
  return static_cast<uint32_t>(level);
}

sim::SimTime UniformDelay(util::Rng& rng, sim::SimTime max) {
  return static_cast<sim::SimTime>(
      rng.UniformUint64(static_cast<uint64_t>(max) + 1));
}

// Identity element for the elementwise combine.
double Identity(const KipdaConfig& config) {
  return config.maximize ? config.value_floor : config.value_ceiling;
}

}  // namespace

util::Status ValidateKipdaConfig(const KipdaConfig& config) {
  if (config.message_size == 0 || config.message_size > 255) {
    return util::InvalidArgumentError("message_size must be in [1, 255]");
  }
  if (config.real_positions == 0 ||
      config.real_positions > config.message_size) {
    return util::InvalidArgumentError(
        "real_positions must be in [1, message_size]");
  }
  if (config.value_floor >= config.value_ceiling) {
    return util::InvalidArgumentError("value range must be non-empty");
  }
  if (config.build_window <= 0 || config.slot <= 0 ||
      config.max_depth == 0) {
    return util::InvalidArgumentError("KIPDA windows must be positive");
  }
  return util::OkStatus();
}

std::vector<size_t> KipdaRealPositions(const KipdaConfig& config) {
  util::Rng rng(config.secret_seed);
  auto positions = rng.SampleWithoutReplacement(config.message_size,
                                                config.real_positions);
  std::sort(positions.begin(), positions.end());
  return positions;
}

Vector KipdaEncode(const KipdaConfig& config, double reading,
                   util::Rng& rng) {
  IPDA_DCHECK(reading >= config.value_floor &&
              reading <= config.value_ceiling);
  const auto real = KipdaRealPositions(config);
  std::vector<bool> is_real(config.message_size, false);
  for (size_t pos : real) is_real[pos] = true;

  Vector message(config.message_size);
  for (size_t pos = 0; pos < config.message_size; ++pos) {
    if (is_real[pos]) {
      // Dominated camouflage: can never beat any real reading in the
      // aggregate extreme.
      message[pos] = config.maximize
                         ? rng.UniformDouble(config.value_floor, reading)
                         : rng.UniformDouble(reading,
                                             config.value_ceiling);
    } else {
      // Free camouflage over the whole range — may exceed every real
      // reading, which is what hides the real one.
      message[pos] =
          rng.UniformDouble(config.value_floor, config.value_ceiling);
    }
  }
  // The reading itself lands on a random secret position.
  message[real[rng.UniformUint64(real.size())]] = reading;
  return message;
}

void KipdaCombine(const KipdaConfig& config, Vector& acc,
                  const Vector& in) {
  IPDA_CHECK_EQ(acc.size(), in.size());
  for (size_t i = 0; i < acc.size(); ++i) {
    acc[i] = config.maximize ? std::max(acc[i], in[i])
                             : std::min(acc[i], in[i]);
  }
}

double KipdaDecode(const KipdaConfig& config, const Vector& message) {
  double result = Identity(config);
  for (size_t pos : KipdaRealPositions(config)) {
    result = config.maximize ? std::max(result, message[pos])
                             : std::min(result, message[pos]);
  }
  return result;
}

KipdaProtocol::KipdaProtocol(net::Network* network, KipdaConfig config)
    : network_(network), config_(config) {
  IPDA_CHECK(network != nullptr);
  IPDA_CHECK(ValidateKipdaConfig(config).ok());
  readings_.assign(network_->size(), config.value_floor);
  states_.resize(network_->size());
  for (auto& state : states_) {
    state.acc.assign(config_.message_size, Identity(config_));
  }
  stats_.collected.assign(config_.message_size, Identity(config_));
}

void KipdaProtocol::SetReadings(std::vector<double> readings) {
  IPDA_CHECK_EQ(readings.size(), network_->size());
  readings_ = std::move(readings);
}

sim::SimTime KipdaProtocol::Duration() const {
  return config_.build_window +
         config_.slot * static_cast<sim::SimTime>(config_.max_depth + 1) +
         config_.report_jitter_max + sim::Milliseconds(200);
}

void KipdaProtocol::Start() {
  IPDA_CHECK(!started_);
  started_ = true;
  for (net::NodeId id = 0; id < network_->size(); ++id) {
    network_->node(id).SetReceiveHandler(
        [this, id](const net::Packet& packet) { OnPacket(id, packet); });
  }
  states_[net::kBaseStationId].joined = true;
  auto& bs = network_->base_station();
  util::Rng bs_rng = bs.rng().Fork("kipda-start");
  network_->sim().After(
      UniformDelay(bs_rng, config_.hello_jitter_max), [this] {
        network_->base_station().Broadcast(net::PacketType::kHello,
                                           EncodeKipdaHello(0));
      });
}

void KipdaProtocol::OnPacket(net::NodeId self, const net::Packet& packet) {
  NodeState& state = states_[self];
  switch (packet.type) {
    case net::PacketType::kHello: {
      auto level = DecodeKipdaHello(packet.payload);
      if (!level.ok()) return;
      if (self != net::kBaseStationId && !state.joined) {
        Join(self, packet.src, *level + 1);
      }
      break;
    }
    case net::PacketType::kAggregate: {
      auto message = DecodePartial(packet.payload);
      if (!message.ok() || message->size() != config_.message_size) {
        return;
      }
      if (self == net::kBaseStationId) {
        KipdaCombine(config_, stats_.collected, *message);
        return;
      }
      KipdaCombine(config_, state.acc, *message);
      state.has_children_data = true;
      break;
    }
    default:
      break;
  }
}

void KipdaProtocol::Join(net::NodeId self, net::NodeId parent,
                         uint32_t level) {
  NodeState& state = states_[self];
  state.joined = true;
  state.parent = parent;
  state.level = level;
  stats_.nodes_joined += 1;
  util::Rng rng = network_->node(self).rng().Fork("kipda-join");
  network_->sim().After(
      UniformDelay(rng, config_.hello_jitter_max), [this, self, level] {
        network_->node(self).Broadcast(net::PacketType::kHello,
                                       EncodeKipdaHello(level));
      });
  const sim::SimTime slot_time =
      ReportTime(config_.build_window, config_.slot, config_.max_depth,
                 level) +
      UniformDelay(rng, config_.report_jitter_max);
  const sim::SimTime at =
      std::max(slot_time, network_->sim().now() + sim::Milliseconds(1));
  network_->sim().At(at, [this, self] { Report(self); });
}

void KipdaProtocol::Report(net::NodeId self) {
  NodeState& state = states_[self];
  util::Rng rng = network_->node(self).rng().Fork("kipda-encode");
  Vector message = KipdaEncode(config_, readings_[self], rng);
  KipdaCombine(config_, message, state.acc);
  stats_.reports_sent += 1;
  network_->node(self).Unicast(state.parent, net::PacketType::kAggregate,
                               EncodePartial(message));
}

}  // namespace ipda::agg
