// iPDA protocol parameters (§III).

#ifndef IPDA_AGG_IPDA_CONFIG_H_
#define IPDA_AGG_IPDA_CONFIG_H_

#include <cstdint>

#include "crypto/cipher.h"
#include "sim/time.h"
#include "util/status.h"

namespace ipda::agg {

// How the protocol reacts to mid-round topology churn (DESIGN.md §12).
enum class ChurnResponse : uint8_t {
  kNone = 0,     // Ignore churn signals; only PR-1 failover applies.
  kRepair = 1,   // Incremental disjoint-tree repair: orphaned subtrees
                 // graft onto a new same-color parent, joiners attach as
                 // leaves via kJoin solicitation.
  kRebuild = 2,  // Re-flood HELLOs from every decided aggregator on any
                 // topology change (throttled) — the from-scratch
                 // baseline the repair path is benchmarked against.
};

struct IpdaConfig {
  // --- Paper parameters ---
  uint32_t slice_count = 2;   // l: pieces per reading (paper recommends 2).
  uint32_t k = 4;             // Aggregator budget for adaptive roles (§III-B).
  bool adaptive_roles = false;  // Eq. (1) adaptive p_r/p_b; false = Eq. (2),
                                // p_r = p_b = 0.5, the evaluation setting.
  double threshold = 5.0;     // Th: |S_red - S_blue| acceptance bound.
  double slice_range = 50.0;  // Random slices drawn uniform in +/- range.
  bool encrypt_slices = true;  // Link-level encryption of slices (§III-C-1).
  // Link cipher sealing the slices (crypto/cipher.h). XTEA is the
  // paper-faithful default whose wire bytes the golden traces pin; all
  // backends share the wire format, so traffic counts are identical.
  crypto::CipherKind cipher = crypto::CipherKind::kXtea;

  // --- Robustness extensions (not in the paper; ablation bench) ---
  // Extra HELLO re-broadcasts per aggregator during Phase I. Covers HELLO
  // collision losses; measurement shows it does NOT fix sparse-network
  // coverage, because the dominant stall is color starvation, not loss.
  uint32_t hello_repeats = 0;
  sim::SimTime hello_repeat_interval = sim::Milliseconds(700);
  // Impatient join: a node that heard only one color for `impatient_wait`
  // joins that color's tree as an aggregator instead of waiting forever.
  // This breaks the color-starvation deadlock (a frontier where every
  // waiting node needs the *other* color can never unblock itself) and is
  // the extension that actually recovers sparse-network coverage.
  bool impatient_join = false;
  sim::SimTime impatient_wait = sim::Milliseconds(900);

  // --- Failure resilience (not in the paper; fault-injection rounds) ---
  // The MAC's ARQ doubles as a liveness probe: a unicast that exhausts
  // its retries declares the peer dead. With retarget_slices on, a sensor
  // whose slice died that way re-aims it at a different live aggregator
  // of the same tree before Phase II commits (at most slice_retarget_max
  // re-aims per slice). With parent_failover on, an aggregator whose
  // parent died re-sends its partial to a live strictly-lower-hop
  // aggregator of its color (the base station always qualifies), riding
  // the depth-slotted report schedule: lower-hop parents report later,
  // so the re-sent partial still catches the next slot rootward.
  bool retarget_slices = false;
  uint32_t slice_retarget_max = 2;
  bool parent_failover = false;
  // Base-station finalization deadline; 0 = IpdaDuration(config). At the
  // deadline both accumulators freeze and the round is decided with
  // whatever partials arrived — a vanished subtree degrades the round
  // (IpdaStats::degraded) instead of stalling it.
  sim::SimTime round_deadline = 0;

  // --- Mid-round churn response (not in the paper; DESIGN.md §12) ---
  // Tree-control messages (join solicits, graft resends, rebuild floods)
  // retry under jittered exponential backoff: attempt i waits
  // min(base * 2^i, max) plus uniform jitter in [0, base), and each node
  // spends at most repair_attempt_budget control attempts per round.
  ChurnResponse churn_response = ChurnResponse::kNone;
  uint32_t repair_attempt_budget = 8;
  sim::SimTime repair_backoff_base = sim::Milliseconds(25);
  sim::SimTime repair_backoff_max = sim::Milliseconds(400);
  // Minimum spacing between full rebuild floods (kRebuild only).
  sim::SimTime rebuild_min_interval = sim::Milliseconds(400);

  // --- Phase timing ---
  sim::SimTime hello_jitter_max = sim::Milliseconds(40);
  sim::SimTime decide_window = sim::Milliseconds(120);  // HELLO gather time.
  sim::SimTime phase1_window = sim::Seconds(4);         // Tree construction.
  sim::SimTime slice_window = sim::Milliseconds(800);   // Slicing spread.
  sim::SimTime slot = sim::Milliseconds(100);           // Phase III slots.
  uint32_t max_depth = 24;
  sim::SimTime report_jitter_max = sim::Milliseconds(60);
};

util::Status ValidateIpdaConfig(const IpdaConfig& config);

// Simulated time from protocol start until the base-station decision.
sim::SimTime IpdaDuration(const IpdaConfig& config);

// When the base station freezes its accumulators and decides: the
// configured round_deadline, or IpdaDuration when unset.
sim::SimTime IpdaRoundDeadline(const IpdaConfig& config);

// Start of Phase II (slicing) relative to protocol start.
sim::SimTime IpdaSliceStart(const IpdaConfig& config);

// Start of Phase III (tree reports) relative to protocol start.
sim::SimTime IpdaReportStart(const IpdaConfig& config);

}  // namespace ipda::agg

#endif  // IPDA_AGG_IPDA_CONFIG_H_
