#include "agg/ipda/base_station.h"

#include <cmath>

#include "util/check.h"

namespace ipda::agg {

Vector IntegrityDecision::Agreed() const {
  Vector out(acc_red.size());
  for (size_t i = 0; i < out.size(); ++i) {
    out[i] = (acc_red[i] + acc_blue[i]) / 2.0;
  }
  return out;
}

BaseStationAccumulator::BaseStationAccumulator(size_t arity)
    : red_(arity, 0.0), blue_(arity, 0.0) {}

void BaseStationAccumulator::Add(TreeColor color, const Vector& partial) {
  IPDA_CHECK(color == TreeColor::kRed || color == TreeColor::kBlue);
  AddInto(color == TreeColor::kRed ? red_ : blue_, partial);
}

const Vector& BaseStationAccumulator::acc(TreeColor color) const {
  IPDA_CHECK(color == TreeColor::kRed || color == TreeColor::kBlue);
  return color == TreeColor::kRed ? red_ : blue_;
}

IntegrityDecision BaseStationAccumulator::Decide(double threshold) const {
  IntegrityDecision decision;
  decision.acc_red = red_;
  decision.acc_blue = blue_;
  decision.threshold = threshold;
  double diff = 0.0;
  for (size_t i = 0; i < red_.size(); ++i) {
    diff = std::max(diff, std::fabs(red_[i] - blue_[i]));
  }
  decision.max_component_diff = diff;
  decision.accepted = diff <= threshold;
  return decision;
}

void BaseStationAccumulator::Reset() {
  red_.assign(red_.size(), 0.0);
  blue_.assign(blue_.size(), 0.0);
}

}  // namespace ipda::agg
