#include "agg/ipda/tree_construction.h"

#include <utility>

#include "util/check.h"

namespace ipda::agg {

TreeBuilder::TreeBuilder(net::NodeId self, const IpdaConfig* config,
                         util::Rng rng, ScheduleFn schedule, JoinedFn joined)
    : self_(self),
      config_(config),
      rng_(std::move(rng)),
      schedule_(std::move(schedule)),
      joined_(std::move(joined)) {
  IPDA_CHECK(config != nullptr);
  IPDA_CHECK(schedule_ != nullptr);
  IPDA_CHECK(joined_ != nullptr);
}

void TreeBuilder::ForceRole(NodeRole role) {
  IPDA_CHECK(!decided());
  role_ = role;
}

void TreeBuilder::OnHello(net::NodeId src, const HelloMsg& msg) {
  auto [it, inserted] = heard_.try_emplace(
      src, HeardEntry{msg.color, msg.hop, /*conflicted=*/false});
  if (inserted) {
    heard_order_.push_back(src);
  } else {
    if (it->second.conflicted) return;
    if (it->second.color != msg.color) {
      // Double-color advertisement: neighbors detect this over the shared
      // medium and exclude the sender from both trees (§III-B).
      if (it->second.color == TreeColor::kRed ||
          it->second.color == TreeColor::kBoth) {
        --n_red_;
      }
      if (it->second.color == TreeColor::kBlue ||
          it->second.color == TreeColor::kBoth) {
        --n_blue_;
      }
      it->second.conflicted = true;
      return;
    }
    // Duplicate HELLO with consistent color: keep the better hop.
    if (msg.hop < it->second.hop) it->second.hop = msg.hop;
    return;
  }

  if (msg.color == TreeColor::kRed || msg.color == TreeColor::kBoth) {
    ++n_red_;
  }
  if (msg.color == TreeColor::kBlue || msg.color == TreeColor::kBoth) {
    ++n_blue_;
  }

  if (role_ == NodeRole::kBaseStation || role_ == NodeRole::kExcluded) {
    return;
  }
  if (!decided() && covered() && !timer_armed_) {
    timer_armed_ = true;
    schedule_(config_->decide_window, [this] { Decide(); });
  }
  if (config_->impatient_join && !decided() && !covered() &&
      !impatient_armed_) {
    impatient_armed_ = true;
    schedule_(config_->impatient_wait, [this] { ImpatientDecide(); });
  }
}

void TreeBuilder::ImpatientDecide() {
  // Extension (see IpdaConfig::impatient_join): still stuck with a single
  // color after the wait — join that tree as an aggregator so the flood
  // keeps moving. Slicing eligibility may still complete later if the
  // other color eventually shows up in the neighborhood.
  if (decided() || covered()) return;
  if (leaf_only_) return;  // Late joiners never become aggregators.
  if (n_red_ == 0 && n_blue_ == 0) return;  // Heard nothing: stay out.
  const TreeColor color =
      n_red_ > 0 ? TreeColor::kRed : TreeColor::kBlue;
  net::NodeId best = net::kBroadcastId;
  uint32_t best_hop = UINT32_MAX;
  for (net::NodeId src : heard_order_) {
    const HeardEntry& entry = heard_.at(src);
    if (entry.conflicted) continue;
    const bool matches =
        entry.color == color || entry.color == TreeColor::kBoth;
    if (matches && entry.hop < best_hop) {
      best = src;
      best_hop = entry.hop;
    }
  }
  if (best == net::kBroadcastId) return;
  role_ = color == TreeColor::kRed ? NodeRole::kRedAggregator
                                   : NodeRole::kBlueAggregator;
  parent_ = best;
  hop_ = best_hop + 1;
  joined_(HelloMsg{color, hop_, std::nullopt});
}

double TreeBuilder::ProbRed() const {
  if (!config_->adaptive_roles) return 0.5;  // Eq. (2).
  const double total = static_cast<double>(n_red_ + n_blue_);
  if (total <= 0.0) return 0.0;
  const double p =
      total > static_cast<double>(config_->k)
          ? static_cast<double>(config_->k) / total
          : 1.0;
  // Eq. (1): bias toward the under-represented color.
  return p * static_cast<double>(n_blue_) / total;
}

double TreeBuilder::ProbBlue() const {
  if (!config_->adaptive_roles) return 0.5;
  const double total = static_cast<double>(n_red_ + n_blue_);
  if (total <= 0.0) return 0.0;
  const double p =
      total > static_cast<double>(config_->k)
          ? static_cast<double>(config_->k) / total
          : 1.0;
  return p * static_cast<double>(n_red_) / total;
}

bool TreeBuilder::JoinAsLeaf() {
  if (decided()) return role_ == NodeRole::kLeaf;
  if (!covered()) return false;
  role_ = NodeRole::kLeaf;
  return true;
}

void TreeBuilder::Reparent(net::NodeId parent, uint32_t parent_hop) {
  IPDA_CHECK(role_ == NodeRole::kRedAggregator ||
             role_ == NodeRole::kBlueAggregator);
  parent_ = parent;
  hop_ = parent_hop + 1;
}

void TreeBuilder::Decide() {
  if (decided()) return;
  if (!covered()) {
    // A conflicted sender was blacklisted after the timer armed; wait for
    // fresh HELLOs to restore coverage.
    timer_armed_ = false;
    return;
  }
  if (leaf_only_) {
    role_ = NodeRole::kLeaf;
    return;
  }

  const double pr = ProbRed();
  const double pb = ProbBlue();
  const double u = rng_.UniformDouble();
  TreeColor color;
  if (u < pr) {
    color = TreeColor::kRed;
  } else if (u < pr + pb) {
    color = TreeColor::kBlue;
  } else {
    role_ = NodeRole::kLeaf;
    return;
  }

  // Parent: lowest-hop heard aggregator of our color; first-heard on ties.
  net::NodeId best = net::kBroadcastId;
  uint32_t best_hop = UINT32_MAX;
  for (net::NodeId src : heard_order_) {
    const HeardEntry& entry = heard_.at(src);
    if (entry.conflicted) continue;
    const bool matches =
        entry.color == color || entry.color == TreeColor::kBoth;
    if (matches && entry.hop < best_hop) {
      best = src;
      best_hop = entry.hop;
    }
  }
  IPDA_CHECK_NE(best, net::kBroadcastId);

  role_ = color == TreeColor::kRed ? NodeRole::kRedAggregator
                                   : NodeRole::kBlueAggregator;
  parent_ = best;
  hop_ = best_hop + 1;
  joined_(HelloMsg{color, hop_, std::nullopt});
}

net::NodeId TreeBuilder::parent() const {
  IPDA_CHECK(role_ == NodeRole::kRedAggregator ||
             role_ == NodeRole::kBlueAggregator);
  return parent_;
}

uint32_t TreeBuilder::hop() const {
  if (role_ == NodeRole::kBaseStation) return 0;
  IPDA_CHECK(role_ == NodeRole::kRedAggregator ||
             role_ == NodeRole::kBlueAggregator);
  return hop_;
}

std::vector<net::NodeId> TreeBuilder::AggregatorNeighbors(
    TreeColor color) const {
  std::vector<net::NodeId> out;
  for (net::NodeId src : heard_order_) {
    const HeardEntry& entry = heard_.at(src);
    if (entry.conflicted) continue;
    if (entry.color == color || entry.color == TreeColor::kBoth) {
      out.push_back(src);
    }
  }
  return out;
}

std::vector<NeighborAggregator> TreeBuilder::AggregatorNeighborInfos(
    TreeColor color) const {
  std::vector<NeighborAggregator> out;
  for (net::NodeId src : heard_order_) {
    const HeardEntry& entry = heard_.at(src);
    if (entry.conflicted) continue;
    if (entry.color == color || entry.color == TreeColor::kBoth) {
      out.push_back(NeighborAggregator{src, entry.color, entry.hop});
    }
  }
  return out;
}

}  // namespace ipda::agg
