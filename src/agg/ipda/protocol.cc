#include "agg/ipda/protocol.h"

#include <algorithm>
#include <utility>

#include "agg/partial.h"
#include "crypto/pairwise.h"
#include "net/packet.h"
#include "util/check.h"
#include "util/logging.h"

namespace ipda::agg {
namespace {

sim::SimTime UniformDelay(util::Rng& rng, sim::SimTime max) {
  return static_cast<sim::SimTime>(
      rng.UniformUint64(static_cast<uint64_t>(max) + 1));
}

}  // namespace

IpdaProtocol::IpdaProtocol(net::Network* network,
                           const AggregateFunction* function,
                           IpdaConfig config)
    : network_(network),
      function_(function),
      config_(config),
      bs_acc_(function != nullptr ? function->arity() : 0) {
  IPDA_CHECK(network != nullptr);
  IPDA_CHECK(function != nullptr);
  IPDA_CHECK(ValidateIpdaConfig(config).ok());
  readings_.assign(network_->size(), 0.0);
  partial_delivered_.assign(network_->size(), false);
  states_.resize(network_->size());
  for (net::NodeId id = 0; id < network_->size(); ++id) {
    NodeState& state = states_[id];
    state.assembled.assign(function_->arity(), 0.0);
    state.children.assign(function_->arity(), 0.0);
    state.builder = std::make_unique<TreeBuilder>(
        id, &config_, network_->node(id).rng().Fork("tree-builder"),
        [this, id](sim::SimTime delay, std::function<void()> fn) {
          network_->sim().After(delay, std::move(fn));
        },
        [this, id](const HelloMsg& hello) { OnJoined(id, hello); });
  }
}

void IpdaProtocol::SetReadings(std::vector<double> readings) {
  IPDA_CHECK_EQ(readings.size(), network_->size());
  readings_ = std::move(readings);
}

void IpdaProtocol::SetQuery(const Query& query) {
  IPDA_CHECK(!started_);
  auto resolved = FunctionForQuery(query);
  IPDA_CHECK(resolved.ok());
  IPDA_CHECK_EQ((*resolved)->arity(), function_->arity());
  query_ = query;
}

void IpdaProtocol::SetLinkCrypto(std::vector<crypto::LinkCrypto>* cryptos) {
  IPDA_CHECK(!started_);
  IPDA_CHECK(cryptos != nullptr);
  IPDA_CHECK_EQ(cryptos->size(), network_->size());
  cryptos_ = cryptos;
}

void IpdaProtocol::SetPollutionHook(PollutionHook hook) {
  pollution_hook_ = std::move(hook);
}

void IpdaProtocol::SetSliceObserver(SliceObserver observer) {
  slice_observer_ = std::move(observer);
}

void IpdaProtocol::SetExcludedNodes(const std::vector<net::NodeId>& nodes) {
  IPDA_CHECK(!started_);
  for (net::NodeId id : nodes) {
    IPDA_CHECK_NE(id, net::kBaseStationId);
    if (!states_[id].excluded) {
      states_[id].excluded = true;
      states_[id].builder->ForceRole(NodeRole::kExcluded);
    }
  }
}

void IpdaProtocol::ProvisionPairwiseKeys() {
  owned_cryptos_.reserve(network_->size());
  for (net::NodeId id = 0; id < network_->size(); ++id) {
    owned_cryptos_.emplace_back(id, config_.cipher);
  }
  std::vector<crypto::Link> links;
  const net::Topology& topology = network_->topology();
  for (net::NodeId a = 0; a < topology.node_count(); ++a) {
    for (net::NodeId b : topology.neighbors(a)) {
      if (a < b) links.emplace_back(a, b);
    }
  }
  const crypto::PairwiseKeyScheme scheme(
      util::Mix64(network_->sim().seed(), 0x697044414b455953ULL));
  scheme.Provision(links, owned_cryptos_);
  if (config_.churn_response != ChurnResponse::kNone) {
    // Under churn, any pair can become a link mid-round (movers, joiners).
    // The master-secret scheme lets two nodes derive their pairwise key on
    // first contact, so instead of materializing all N(N-1)/2 keys up
    // front (quadratic memory — the city-scale OOM), each node derives
    // missing keys lazily. Wire output is byte-identical either way.
    for (net::NodeId id = 0; id < network_->size(); ++id) {
      owned_cryptos_[id].keystore().SetKeyDeriver(
          [scheme, id](crypto::PeerId peer) {
            return scheme.LinkKey(static_cast<crypto::PeerId>(id), peer);
          });
    }
  }
  cryptos_ = &owned_cryptos_;
}

void IpdaProtocol::Start() {
  IPDA_CHECK(!started_);
  started_ = true;
  if (config_.encrypt_slices && cryptos_ == nullptr) {
    ProvisionPairwiseKeys();
  }
  if (config_.encrypt_slices) {
    // Tree setup is where the neighbor set is final: freeze each node's
    // link keys into dense slots with precomputed XTEA schedules so
    // per-slice sealing does no hashing and no key expansion.
    for (crypto::LinkCrypto& c : *cryptos_) c.Compile();
  }

  for (net::NodeId id = 0; id < network_->size(); ++id) {
    network_->node(id).SetReceiveHandler(
        [this, id](const net::Packet& packet) { OnPacket(id, packet); });
  }
  if (config_.retarget_slices || config_.parent_failover ||
      config_.churn_response != ChurnResponse::kNone) {
    // ARQ exhaustion is the liveness signal: the MAC hands back the frame
    // it gave up on, and the protocol reroutes around the dead peer.
    for (net::NodeId id = 1; id < network_->size(); ++id) {
      network_->node(id).SetSendFailureHandler(
          [this, id](const net::Packet& packet) { OnSendFailure(id, packet); });
    }
  }
  if (config_.churn_response != ChurnResponse::kNone) {
    // One advancing backoff/jitter stream per node for the whole round.
    for (net::NodeId id = 0; id < network_->size(); ++id) {
      states_[id].repair_rng = network_->node(id).rng().Fork("churn-repair");
    }
  }

  // The round decides at the deadline no matter what arrived; scheduling
  // from here (time 0) gives the freeze the lowest sequence number at its
  // timestamp, so no same-instant report can sneak into the accumulators.
  network_->sim().At(IpdaRoundDeadline(config_), [this] { Finish(); });

  // Base station roots both trees.
  states_[net::kBaseStationId].builder->ForceRole(NodeRole::kBaseStation);
  auto& bs = network_->base_station();
  util::Rng bs_rng = bs.rng().Fork("ipda-start");
  ScheduleHellos(net::kBaseStationId,
                 HelloMsg{TreeColor::kBoth, 0, query_}, bs_rng);

  // Phase II: every sensor attempts slicing at a jittered point inside the
  // slice window. Nodes that turn out uncovered or target-starved no-op.
  const sim::SimTime slice_start = IpdaSliceStart(config_);
  for (net::NodeId id = 1; id < network_->size(); ++id) {
    if (states_[id].excluded) continue;
    util::Rng rng = network_->node(id).rng().Fork("slice-schedule");
    const sim::SimTime at =
        slice_start + UniformDelay(rng, config_.slice_window);
    network_->sim().At(at, [this, id] { DoSlicing(id); });
  }
}

void IpdaProtocol::OnPacket(net::NodeId self, const net::Packet& packet) {
  if (finished_) return;  // Accumulators froze at the round deadline.
  NodeState& state = states_[self];
  if (state.excluded) return;
  switch (packet.type) {
    case net::PacketType::kHello: {
      auto hello = DecodeHelloMsg(packet.payload);
      if (!hello.ok()) return;
      if (hello->query.has_value() && !state.received_query.has_value()) {
        state.received_query = hello->query;
      }
      state.builder->OnHello(packet.src, *hello);
      break;
    }
    case net::PacketType::kSlice: {
      util::Bytes plaintext;
      if (config_.encrypt_slices) {
        auto opened = crypto_for(self).Open(packet.src, packet.payload);
        if (!opened.ok()) {
          stats_.slice_decrypt_failures += 1;
          return;
        }
        plaintext = std::move(*opened);
      } else {
        plaintext = packet.payload;
      }
      auto slice = DecodeSliceMsg(plaintext);
      if (!slice.ok() || slice->slice.size() != function_->arity()) return;
      if (self == net::kBaseStationId) {
        bs_acc_.Add(slice->color, slice->slice);
        return;
      }
      // Only the intended tree may absorb the slice.
      if (!RoleMatchesColor(state.builder->role(), slice->color)) return;
      AddInto(state.assembled, slice->slice);
      break;
    }
    case net::PacketType::kAggregate: {
      auto msg = DecodeAggregateMsg(packet.payload);
      if (!msg.ok() || msg->partial.size() != function_->arity()) return;
      if (self == net::kBaseStationId) {
        partial_delivered_[packet.src] = true;
        bs_acc_.Add(msg->color, msg->partial);
        return;
      }
      if (!RoleMatchesColor(state.builder->role(), msg->color)) return;
      if (state.reported) {
        // Our own partial already left; absorbing now would change
        // nothing downstream. Count the orphan instead of hiding it.
        stats_.late_partials += 1;
        return;
      }
      partial_delivered_[packet.src] = true;
      AddInto(state.children, msg->partial);
      break;
    }
    case net::PacketType::kJoin: {
      if (config_.churn_response == ChurnResponse::kNone) break;
      if (!IsJoinSolicitMsg(packet.payload)) break;
      // Only tree members that can serve as parents answer: the base
      // station and decided aggregators re-advertise their position
      // (leaves stay silent, as in Phase I).
      HelloMsg reply;
      if (self == net::kBaseStationId) {
        reply = HelloMsg{TreeColor::kBoth, 0, query_};
      } else {
        const NodeRole role = state.builder->role();
        if (role != NodeRole::kRedAggregator &&
            role != NodeRole::kBlueAggregator) {
          break;
        }
        reply = HelloMsg{role == NodeRole::kRedAggregator ? TreeColor::kRed
                                                          : TreeColor::kBlue,
                         state.builder->hop(), state.received_query};
      }
      const sim::SimTime jitter =
          UniformDelay(*state.repair_rng, config_.hello_jitter_max);
      const net::NodeId joiner = packet.src;
      network_->sim().After(jitter, [this, self, joiner, reply] {
        if (finished_) return;
        network_->node(self).Unicast(joiner, net::PacketType::kHello,
                                     EncodeHelloMsg(reply));
        stats_.churn_control_msgs += 1;
      });
      break;
    }
    case net::PacketType::kRelay: {
      if (config_.churn_response == ChurnResponse::kNone) break;
      auto msg = DecodeRelayMsg(packet.payload);
      if (!msg.ok() || msg->partial.size() != function_->arity()) return;
      if (self == net::kBaseStationId) {
        // The relay carries its true color and origin, so the partial is
        // booked against the right tree despite the cross-tree path.
        partial_delivered_[msg->origin] = true;
        bs_acc_.Add(msg->color, msg->partial);
        return;
      }
      const NodeRole role = state.builder->role();
      if (role != NodeRole::kRedAggregator &&
          role != NodeRole::kBlueAggregator) {
        return;  // Only tree members forward relays rootward.
      }
      // Forward the payload unchanged up our own tree: the relay is
      // opaque cargo, never folded into this node's partial.
      network_->node(self).Unicast(state.builder->parent(),
                                   net::PacketType::kRelay, packet.payload);
      stats_.relay_forwards += 1;
      break;
    }
    default:
      break;
  }
}

bool IpdaProtocol::IsDeadNeighbor(const NodeState& state,
                                  net::NodeId id) const {
  return std::find(state.dead_neighbors.begin(), state.dead_neighbors.end(),
                   id) != state.dead_neighbors.end();
}

void IpdaProtocol::OnSendFailure(net::NodeId self, const net::Packet& packet) {
  if (finished_) return;
  NodeState& state = states_[self];
  if (state.excluded) return;
  if (!IsDeadNeighbor(state, packet.dst)) {
    state.dead_neighbors.push_back(packet.dst);
  }
  if (packet.type == net::PacketType::kSlice && config_.retarget_slices) {
    RetargetSlice(self, packet.dst);
  } else if (packet.type == net::PacketType::kAggregate) {
    if (config_.churn_response == ChurnResponse::kRepair) {
      // Incremental repair supersedes plain failover: the node re-parents
      // (keeping the tree consistent for any later traffic), not just
      // re-aims this one partial.
      RepairGraft(self);
    } else if (config_.parent_failover) {
      FailoverReport(self);
    }
  } else if (packet.type == net::PacketType::kRelay) {
    stats_.relays_lost += 1;
  }
}

sim::SimTime IpdaProtocol::BackoffDelay(NodeState& state, uint32_t attempt) {
  const sim::SimTime base = config_.repair_backoff_base;
  sim::SimTime backoff = base;
  for (uint32_t i = 0; i < attempt && backoff < config_.repair_backoff_max;
       ++i) {
    backoff *= 2;
  }
  backoff = std::min(backoff, config_.repair_backoff_max);
  return backoff + UniformDelay(*state.repair_rng, base - 1);
}

void IpdaProtocol::OnChurnJoin(net::NodeId id) {
  if (finished_ || config_.churn_response == ChurnResponse::kNone) return;
  NodeState& state = states_[id];
  if (state.excluded) return;
  if (state.builder->decided()) return;  // Rejoin: tree state survives.
  // Late joiners must not perturb the decided trees: they enter as
  // leaves on both, never as aggregators (DESIGN.md §12).
  state.builder->SetLeafOnly(true);
  state.join_pending = true;
  if (config_.churn_response == ChurnResponse::kRepair) {
    SendJoinSolicit(id, 0);
  } else {
    OnTopologyChange();  // The rebuild flood will cover the joiner.
  }
}

void IpdaProtocol::SendJoinSolicit(net::NodeId self, uint32_t attempt) {
  if (finished_) return;
  NodeState& state = states_[self];
  if (state.builder->decided()) return;
  if (state.builder->covered()) {
    CompleteJoin(self);
    return;
  }
  if (attempt >= config_.repair_attempt_budget) {
    stats_.repair_budget_exhausted += 1;
    return;
  }
  if (attempt > 0) stats_.backoff_retries += 1;
  network_->node(self).Broadcast(net::PacketType::kJoin,
                                 EncodeJoinSolicitMsg());
  stats_.churn_control_msgs += 1;
  // Re-check after the neighbors' reply jitter plus decide window; the
  // backoff spreads repeat solicits when no one answers.
  const sim::SimTime recheck = config_.hello_jitter_max +
                               config_.decide_window +
                               BackoffDelay(state, attempt);
  network_->sim().After(recheck, [this, self, attempt] {
    SendJoinSolicit(self, attempt + 1);
  });
}

void IpdaProtocol::CompleteJoin(net::NodeId self) {
  NodeState& state = states_[self];
  if (!state.builder->JoinAsLeaf()) return;
  // Contribute if slices can still fold into partials: aggregators absorb
  // until their Phase III slot, so anything before the report phase
  // counts. Later joins are admitted topology-only.
  if (network_->sim().now() < IpdaReportStart(config_)) {
    DoSlicing(self);
  }
}

void IpdaProtocol::RepairGraft(net::NodeId self) {
  NodeState& state = states_[self];
  const NodeRole role = state.builder->role();
  if (role != NodeRole::kRedAggregator &&
      role != NodeRole::kBlueAggregator) {
    return;
  }
  if (state.last_partial.empty()) return;  // Nothing reported yet.
  if (state.repair_attempts >= config_.repair_attempt_budget) {
    stats_.repair_budget_exhausted += 1;
    stats_.orphaned_partials += 1;
    return;
  }
  const uint32_t attempt = state.repair_attempts++;
  if (attempt > 0) stats_.backoff_retries += 1;
  const TreeColor color = role == NodeRole::kRedAggregator
                              ? TreeColor::kRed
                              : TreeColor::kBlue;
  const uint32_t my_hop = state.builder->hop();

  // Preferred graft: a live strictly-lower-hop aggregator of our own
  // color (the base station, hop 0 on both trees, always qualifies when
  // in range) — node-disjointness holds by construction.
  net::NodeId best = net::kBroadcastId;
  uint32_t best_hop = UINT32_MAX;
  for (const NeighborAggregator& cand :
       state.builder->AggregatorNeighborInfos(color)) {
    if (cand.hop >= my_hop || IsDeadNeighbor(state, cand.id)) continue;
    if (cand.hop < best_hop) {
      best = cand.id;
      best_hop = cand.hop;
    }
  }
  const sim::SimTime delay = BackoffDelay(state, attempt);
  stats_.repair_latencies_ms.push_back(sim::ToSeconds(delay) * 1e3);
  if (best != net::kBroadcastId) {
    state.builder->Reparent(best, best_hop);
    grafts_.push_back(GraftRecord{self, color, best, /*degraded=*/false});
    stats_.grafts += 1;
    network_->sim().After(delay, [this, self, best, color] {
      if (finished_) return;
      network_->node(self).Unicast(
          best, net::PacketType::kAggregate,
          EncodeAggregateMsg(
              AggregateMsg{color, states_[self].last_partial}));
      stats_.reports_rerouted += 1;
      stats_.churn_control_msgs += 1;
    });
    return;
  }

  // Degraded fallback: no disjoint graft exists. Hand the partial to a
  // strictly-lower-hop aggregator of the *other* tree as an opaque
  // relay — the round completes, flagged degraded, and the disjointness
  // the privacy argument rests on is recorded as violated.
  const TreeColor other =
      color == TreeColor::kRed ? TreeColor::kBlue : TreeColor::kRed;
  for (const NeighborAggregator& cand :
       state.builder->AggregatorNeighborInfos(other)) {
    if (cand.hop >= my_hop || IsDeadNeighbor(state, cand.id)) continue;
    if (cand.hop < best_hop) {
      best = cand.id;
      best_hop = cand.hop;
    }
  }
  if (best == net::kBroadcastId) {
    stats_.orphaned_partials += 1;  // Truly stranded.
    return;
  }
  grafts_.push_back(GraftRecord{self, color, best, /*degraded=*/true});
  stats_.disjoint_violations += 1;
  const net::NodeId relay_via = best;
  network_->sim().After(delay, [this, self, relay_via, color] {
    if (finished_) return;
    network_->node(self).Unicast(
        relay_via, net::PacketType::kRelay,
        EncodeRelayMsg(RelayMsg{color, self, states_[self].last_partial}));
    stats_.churn_control_msgs += 1;
  });
}

void IpdaProtocol::OnTopologyChange() {
  if (finished_ || config_.churn_response != ChurnResponse::kRebuild) return;
  if (rebuild_pending_) return;
  const sim::SimTime now = network_->sim().now();
  if (last_rebuild_ >= 0 &&
      now < last_rebuild_ + config_.rebuild_min_interval) {
    rebuild_pending_ = true;
    network_->sim().At(last_rebuild_ + config_.rebuild_min_interval,
                       [this] { DoRebuildFlood(); });
    return;
  }
  DoRebuildFlood();
}

void IpdaProtocol::DoRebuildFlood() {
  if (finished_) return;
  rebuild_pending_ = false;
  last_rebuild_ = network_->sim().now();
  stats_.rebuild_floods += 1;
  // Everyone with a tree position re-advertises it, jittered — the
  // from-scratch baseline the incremental repair path is benchmarked
  // against. Cost scales with the aggregator census per event.
  for (net::NodeId id = 0; id < network_->size(); ++id) {
    NodeState& state = states_[id];
    if (state.excluded) continue;
    HelloMsg hello;
    if (id == net::kBaseStationId) {
      hello = HelloMsg{TreeColor::kBoth, 0, query_};
    } else {
      const NodeRole role = state.builder->role();
      if (role != NodeRole::kRedAggregator &&
          role != NodeRole::kBlueAggregator) {
        continue;
      }
      hello = HelloMsg{role == NodeRole::kRedAggregator ? TreeColor::kRed
                                                        : TreeColor::kBlue,
                       state.builder->hop(), state.received_query};
    }
    const sim::SimTime jitter =
        UniformDelay(*state.repair_rng, config_.hello_jitter_max);
    network_->sim().After(jitter, [this, id, hello] {
      if (finished_) return;
      network_->node(id).Broadcast(net::PacketType::kHello,
                                   EncodeHelloMsg(hello));
      stats_.churn_control_msgs += 1;
    });
  }
}

void IpdaProtocol::RetargetSlice(net::NodeId self, net::NodeId dead_target) {
  NodeState& state = states_[self];
  auto it = std::find_if(
      state.pending_slices.begin(), state.pending_slices.end(),
      [&](const PendingSlice& p) { return p.target == dead_target; });
  if (it == state.pending_slices.end()) return;

  net::NodeId chosen = net::kBroadcastId;
  if (it->attempts < config_.slice_retarget_max) {
    for (net::NodeId cand :
         state.builder->AggregatorNeighbors(it->color)) {
      if (cand == dead_target || IsDeadNeighbor(state, cand)) continue;
      if (config_.encrypt_slices &&
          !crypto_for(self).keystore().HasLinkKey(cand)) {
        continue;
      }
      chosen = cand;
      break;
    }
  }
  if (chosen == net::kBroadcastId) {
    // Re-aim budget spent or no live keyed aggregator left: the slice —
    // and with it part of this sensor's contribution to one tree — is
    // gone. The tree sums now straddle the §III-D ambiguity: the base
    // station sees a deficit it cannot attribute to failure vs pollution.
    stats_.slices_lost += 1;
    state.pending_slices.erase(it);
    return;
  }
  it->target = chosen;
  it->attempts += 1;
  stats_.slices_retargeted += 1;
  SendSlice(self, chosen, it->color, it->slice);
}

void IpdaProtocol::FailoverReport(net::NodeId self) {
  NodeState& state = states_[self];
  const NodeRole role = state.builder->role();
  if (role != NodeRole::kRedAggregator &&
      role != NodeRole::kBlueAggregator) {
    return;
  }
  if (state.last_partial.empty()) return;  // Nothing reported yet.
  const TreeColor color = role == NodeRole::kRedAggregator
                              ? TreeColor::kRed
                              : TreeColor::kBlue;
  // Any live strictly-lower-hop aggregator of our color keeps the partial
  // moving rootward; lower hops report later (ReportTime), so the re-sent
  // partial still catches the alternate's slot. The base station (hop 0,
  // both colors) is always an admissible last resort when in range.
  const uint32_t my_hop = state.builder->hop();
  net::NodeId best = net::kBroadcastId;
  uint32_t best_hop = UINT32_MAX;
  for (const NeighborAggregator& cand :
       state.builder->AggregatorNeighborInfos(color)) {
    if (cand.hop >= my_hop || IsDeadNeighbor(state, cand.id)) continue;
    if (cand.hop < best_hop) {
      best = cand.id;
      best_hop = cand.hop;
    }
  }
  if (best == net::kBroadcastId) {
    stats_.orphaned_partials += 1;
    return;
  }
  network_->node(self).Unicast(
      best, net::PacketType::kAggregate,
      EncodeAggregateMsg(AggregateMsg{color, state.last_partial}));
  stats_.reports_rerouted += 1;
}

void IpdaProtocol::ScheduleHellos(net::NodeId self, const HelloMsg& hello,
                                  util::Rng& rng) {
  // Initial announcement plus optional repeats (hello_repeats > 0) while
  // Phase I lasts; repeats re-seed stalled flood frontiers.
  for (uint32_t i = 0; i <= config_.hello_repeats; ++i) {
    const sim::SimTime at =
        config_.hello_repeat_interval * static_cast<sim::SimTime>(i) +
        UniformDelay(rng, config_.hello_jitter_max);
    if (network_->sim().now() + at >= IpdaSliceStart(config_)) break;
    network_->sim().After(at, [this, self, hello] {
      network_->node(self).Broadcast(net::PacketType::kHello,
                                     EncodeHelloMsg(hello));
    });
  }
}

void IpdaProtocol::OnJoined(net::NodeId self, const HelloMsg& hello) {
  util::Rng rng = network_->node(self).rng().Fork("ipda-join");
  // Rebroadcast HELLO — with the query we received — so deeper nodes can
  // join this tree and learn what to compute.
  HelloMsg rebroadcast = hello;
  rebroadcast.query = states_[self].received_query;
  ScheduleHellos(self, rebroadcast, rng);
  // Aggregators report in Phase III at their depth slot.
  const sim::SimTime slot_time =
      ReportTime(IpdaReportStart(config_), config_.slot, config_.max_depth,
                 hello.hop) +
      UniformDelay(rng, config_.report_jitter_max);
  const sim::SimTime at =
      std::max(slot_time, network_->sim().now() + sim::Milliseconds(1));
  network_->sim().At(at, [this, self] { Report(self); });
}

void IpdaProtocol::DoSlicing(net::NodeId self) {
  NodeState& state = states_[self];
  TreeBuilder& builder = *state.builder;
  const NodeRole role = builder.role();
  if (role != NodeRole::kLeaf && role != NodeRole::kRedAggregator &&
      role != NodeRole::kBlueAggregator) {
    return;  // Uncovered/undecided: sits out (loss factor (a)).
  }

  auto usable = [&](std::vector<net::NodeId> candidates) {
    if (!config_.encrypt_slices) return candidates;
    // A slice can only go where a link key exists (relevant under EG
    // predistribution, where some links stay unkeyed).
    std::vector<net::NodeId> filtered;
    filtered.reserve(candidates.size());
    for (net::NodeId id : candidates) {
      if (crypto_for(self).keystore().HasLinkKey(id)) {
        filtered.push_back(id);
      }
    }
    return filtered;
  };

  util::Rng rng = network_->node(self).rng().Fork("slice-plan");
  auto plan = PlanSlices(role, config_.slice_count,
                         usable(builder.AggregatorNeighbors(TreeColor::kRed)),
                         usable(builder.AggregatorNeighbors(TreeColor::kBlue)),
                         rng);
  if (!plan.ok()) {
    return;  // Target-starved: sits out (loss factor (b)).
  }

  Vector contribution;
  if (query_.has_value()) {
    // Query-driven mode: compute what the *received* query asks for; a
    // node the dissemination missed sits the round out.
    if (!state.received_query.has_value()) return;
    auto resolved = FunctionForQuery(*state.received_query);
    if (!resolved.ok() || (*resolved)->arity() != function_->arity()) {
      return;
    }
    contribution = (*resolved)->Contribution(readings_[self]);
  } else {
    contribution = function_->Contribution(readings_[self]);
  }
  DeliverSlices(self, TreeColor::kRed, plan->red, contribution, rng);
  DeliverSlices(self, TreeColor::kBlue, plan->blue, contribution, rng);
  state.participated = true;
}

void IpdaProtocol::DeliverSlices(net::NodeId self, TreeColor color,
                                 const ColorPlan& plan,
                                 const Vector& contribution, util::Rng& rng) {
  const uint32_t l = config_.slice_count;
  std::vector<Vector> slices =
      SliceVector(contribution, l, config_.slice_range, rng);
  size_t next = 0;
  if (plan.keep_local) {
    // d_ii never touches the air (§III-C-1, Fig. 2).
    if (slice_observer_) slice_observer_(self, self, color, slices[next]);
    AddInto(states_[self].assembled, slices[next++]);
  }
  for (net::NodeId target : plan.targets) {
    IPDA_CHECK_LT(next, slices.size());
    const Vector& slice = slices[next++];
    SendSlice(self, target, color, slice);
    if (config_.retarget_slices) {
      // Remember the slice until the round ends so an ARQ failure can
      // re-aim it at a surviving aggregator.
      states_[self].pending_slices.push_back(
          PendingSlice{target, color, slice, /*attempts=*/0});
    }
  }
  IPDA_CHECK_EQ(next, slices.size());
}

void IpdaProtocol::SendSlice(net::NodeId self, net::NodeId target,
                             TreeColor color, const Vector& slice) {
  if (slice_observer_) slice_observer_(self, target, color, slice);
  util::Bytes wire = EncodeSliceMsg(SliceMsg{color, slice});
  if (config_.encrypt_slices) {
    auto sealed = crypto_for(self).Seal(target, std::move(wire));
    IPDA_CHECK(sealed.ok());  // Targets were filtered for key presence.
    wire = std::move(*sealed);
  }
  network_->node(self).Unicast(target, net::PacketType::kSlice,
                               std::move(wire));
  stats_.slices_sent += 1;
}

void IpdaProtocol::Report(net::NodeId self) {
  NodeState& state = states_[self];
  const NodeRole role = state.builder->role();
  if (role != NodeRole::kRedAggregator &&
      role != NodeRole::kBlueAggregator) {
    return;
  }
  const TreeColor color = role == NodeRole::kRedAggregator
                              ? TreeColor::kRed
                              : TreeColor::kBlue;
  Vector partial = state.assembled;
  AddInto(partial, state.children);
  if (pollution_hook_) pollution_hook_(self, color, partial);
  // Failover resends exactly what we sent.
  state.last_partial = std::move(partial);
  state.reported = true;
  network_->node(self).Unicast(
      state.builder->parent(), net::PacketType::kAggregate,
      EncodeAggregateMsg(AggregateMsg{color, state.last_partial}));
  stats_.reports_sent += 1;
}

sim::SimTime IpdaProtocol::Duration() const {
  return std::max(IpdaDuration(config_), config_.round_deadline);
}

const IpdaStats& IpdaProtocol::Finish() {
  if (finished_) return stats_;
  finished_ = true;
  size_t red_delivered = 0;
  size_t blue_delivered = 0;
  for (net::NodeId id = 1; id < network_->size(); ++id) {
    const NodeState& state = states_[id];
    if (state.excluded) {
      stats_.excluded += 1;
      continue;
    }
    if (state.builder->covered()) stats_.covered_both += 1;
    if (state.participated) stats_.participants += 1;
    if (state.join_pending && state.builder->decided()) {
      stats_.joins_absorbed += 1;
    }
    switch (state.builder->role()) {
      case NodeRole::kRedAggregator:
        stats_.red_aggregators += 1;
        if (partial_delivered_[id]) red_delivered += 1;
        break;
      case NodeRole::kBlueAggregator:
        stats_.blue_aggregators += 1;
        if (partial_delivered_[id]) blue_delivered += 1;
        break;
      case NodeRole::kLeaf:
        stats_.leaves += 1;
        break;
      default:
        stats_.undecided += 1;
        break;
    }
  }
  stats_.completeness_red =
      stats_.red_aggregators == 0
          ? 1.0
          : static_cast<double>(red_delivered) /
                static_cast<double>(stats_.red_aggregators);
  stats_.completeness_blue =
      stats_.blue_aggregators == 0
          ? 1.0
          : static_cast<double>(blue_delivered) /
                static_cast<double>(stats_.blue_aggregators);
  stats_.degraded = stats_.completeness_red < 1.0 ||
                    stats_.completeness_blue < 1.0 ||
                    stats_.slices_lost > 0 || stats_.orphaned_partials > 0 ||
                    stats_.disjoint_violations > 0 || stats_.relays_lost > 0;
  stats_.decision = bs_acc_.Decide(config_.threshold);
  return stats_;
}

}  // namespace ipda::agg
