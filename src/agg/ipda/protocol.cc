#include "agg/ipda/protocol.h"

#include <algorithm>
#include <utility>

#include "agg/partial.h"
#include "crypto/pairwise.h"
#include "net/packet.h"
#include "util/check.h"
#include "util/logging.h"

namespace ipda::agg {
namespace {

sim::SimTime UniformDelay(util::Rng& rng, sim::SimTime max) {
  return static_cast<sim::SimTime>(
      rng.UniformUint64(static_cast<uint64_t>(max) + 1));
}

}  // namespace

IpdaProtocol::IpdaProtocol(net::Network* network,
                           const AggregateFunction* function,
                           IpdaConfig config)
    : network_(network),
      function_(function),
      config_(config),
      bs_acc_(function != nullptr ? function->arity() : 0) {
  IPDA_CHECK(network != nullptr);
  IPDA_CHECK(function != nullptr);
  IPDA_CHECK(ValidateIpdaConfig(config).ok());
  readings_.assign(network_->size(), 0.0);
  states_.resize(network_->size());
  for (net::NodeId id = 0; id < network_->size(); ++id) {
    NodeState& state = states_[id];
    state.assembled.assign(function_->arity(), 0.0);
    state.children.assign(function_->arity(), 0.0);
    state.builder = std::make_unique<TreeBuilder>(
        id, &config_, network_->node(id).rng().Fork("tree-builder"),
        [this, id](sim::SimTime delay, std::function<void()> fn) {
          network_->sim().After(delay, std::move(fn));
        },
        [this, id](const HelloMsg& hello) { OnJoined(id, hello); });
  }
}

void IpdaProtocol::SetReadings(std::vector<double> readings) {
  IPDA_CHECK_EQ(readings.size(), network_->size());
  readings_ = std::move(readings);
}

void IpdaProtocol::SetQuery(const Query& query) {
  IPDA_CHECK(!started_);
  auto resolved = FunctionForQuery(query);
  IPDA_CHECK(resolved.ok());
  IPDA_CHECK_EQ((*resolved)->arity(), function_->arity());
  query_ = query;
}

void IpdaProtocol::SetLinkCrypto(std::vector<crypto::LinkCrypto>* cryptos) {
  IPDA_CHECK(!started_);
  IPDA_CHECK(cryptos != nullptr);
  IPDA_CHECK_EQ(cryptos->size(), network_->size());
  cryptos_ = cryptos;
}

void IpdaProtocol::SetPollutionHook(PollutionHook hook) {
  pollution_hook_ = std::move(hook);
}

void IpdaProtocol::SetSliceObserver(SliceObserver observer) {
  slice_observer_ = std::move(observer);
}

void IpdaProtocol::SetExcludedNodes(const std::vector<net::NodeId>& nodes) {
  IPDA_CHECK(!started_);
  for (net::NodeId id : nodes) {
    IPDA_CHECK_NE(id, net::kBaseStationId);
    if (!states_[id].excluded) {
      states_[id].excluded = true;
      states_[id].builder->ForceRole(NodeRole::kExcluded);
    }
  }
}

void IpdaProtocol::ProvisionPairwiseKeys() {
  owned_cryptos_.reserve(network_->size());
  for (net::NodeId id = 0; id < network_->size(); ++id) {
    owned_cryptos_.emplace_back(id);
  }
  std::vector<crypto::Link> links;
  const net::Topology& topology = network_->topology();
  for (net::NodeId a = 0; a < topology.node_count(); ++a) {
    for (net::NodeId b : topology.neighbors(a)) {
      if (a < b) links.emplace_back(a, b);
    }
  }
  const crypto::PairwiseKeyScheme scheme(
      util::Mix64(network_->sim().seed(), 0x697044414b455953ULL));
  scheme.Provision(links, owned_cryptos_);
  cryptos_ = &owned_cryptos_;
}

void IpdaProtocol::Start() {
  IPDA_CHECK(!started_);
  started_ = true;
  if (config_.encrypt_slices && cryptos_ == nullptr) {
    ProvisionPairwiseKeys();
  }

  for (net::NodeId id = 0; id < network_->size(); ++id) {
    network_->node(id).SetReceiveHandler(
        [this, id](const net::Packet& packet) { OnPacket(id, packet); });
  }

  // Base station roots both trees.
  states_[net::kBaseStationId].builder->ForceRole(NodeRole::kBaseStation);
  auto& bs = network_->base_station();
  util::Rng bs_rng = bs.rng().Fork("ipda-start");
  ScheduleHellos(net::kBaseStationId,
                 HelloMsg{TreeColor::kBoth, 0, query_}, bs_rng);

  // Phase II: every sensor attempts slicing at a jittered point inside the
  // slice window. Nodes that turn out uncovered or target-starved no-op.
  const sim::SimTime slice_start = IpdaSliceStart(config_);
  for (net::NodeId id = 1; id < network_->size(); ++id) {
    if (states_[id].excluded) continue;
    util::Rng rng = network_->node(id).rng().Fork("slice-schedule");
    const sim::SimTime at =
        slice_start + UniformDelay(rng, config_.slice_window);
    network_->sim().At(at, [this, id] { DoSlicing(id); });
  }
}

void IpdaProtocol::OnPacket(net::NodeId self, const net::Packet& packet) {
  NodeState& state = states_[self];
  if (state.excluded) return;
  switch (packet.type) {
    case net::PacketType::kHello: {
      auto hello = DecodeHelloMsg(packet.payload);
      if (!hello.ok()) return;
      if (hello->query.has_value() && !state.received_query.has_value()) {
        state.received_query = hello->query;
      }
      state.builder->OnHello(packet.src, *hello);
      break;
    }
    case net::PacketType::kSlice: {
      util::Bytes plaintext;
      if (config_.encrypt_slices) {
        auto opened = crypto_for(self).Open(packet.src, packet.payload);
        if (!opened.ok()) {
          stats_.slice_decrypt_failures += 1;
          return;
        }
        plaintext = std::move(*opened);
      } else {
        plaintext = packet.payload;
      }
      auto slice = DecodeSliceMsg(plaintext);
      if (!slice.ok() || slice->slice.size() != function_->arity()) return;
      if (self == net::kBaseStationId) {
        bs_acc_.Add(slice->color, slice->slice);
        return;
      }
      // Only the intended tree may absorb the slice.
      if (!RoleMatchesColor(state.builder->role(), slice->color)) return;
      AddInto(state.assembled, slice->slice);
      break;
    }
    case net::PacketType::kAggregate: {
      auto msg = DecodeAggregateMsg(packet.payload);
      if (!msg.ok() || msg->partial.size() != function_->arity()) return;
      if (self == net::kBaseStationId) {
        bs_acc_.Add(msg->color, msg->partial);
        return;
      }
      if (!RoleMatchesColor(state.builder->role(), msg->color)) return;
      AddInto(state.children, msg->partial);
      break;
    }
    default:
      break;
  }
}

void IpdaProtocol::ScheduleHellos(net::NodeId self, const HelloMsg& hello,
                                  util::Rng& rng) {
  // Initial announcement plus optional repeats (hello_repeats > 0) while
  // Phase I lasts; repeats re-seed stalled flood frontiers.
  for (uint32_t i = 0; i <= config_.hello_repeats; ++i) {
    const sim::SimTime at =
        config_.hello_repeat_interval * static_cast<sim::SimTime>(i) +
        UniformDelay(rng, config_.hello_jitter_max);
    if (network_->sim().now() + at >= IpdaSliceStart(config_)) break;
    network_->sim().After(at, [this, self, hello] {
      network_->node(self).Broadcast(net::PacketType::kHello,
                                     EncodeHelloMsg(hello));
    });
  }
}

void IpdaProtocol::OnJoined(net::NodeId self, const HelloMsg& hello) {
  util::Rng rng = network_->node(self).rng().Fork("ipda-join");
  // Rebroadcast HELLO — with the query we received — so deeper nodes can
  // join this tree and learn what to compute.
  HelloMsg rebroadcast = hello;
  rebroadcast.query = states_[self].received_query;
  ScheduleHellos(self, rebroadcast, rng);
  // Aggregators report in Phase III at their depth slot.
  const sim::SimTime slot_time =
      ReportTime(IpdaReportStart(config_), config_.slot, config_.max_depth,
                 hello.hop) +
      UniformDelay(rng, config_.report_jitter_max);
  const sim::SimTime at =
      std::max(slot_time, network_->sim().now() + sim::Milliseconds(1));
  network_->sim().At(at, [this, self] { Report(self); });
}

void IpdaProtocol::DoSlicing(net::NodeId self) {
  NodeState& state = states_[self];
  TreeBuilder& builder = *state.builder;
  const NodeRole role = builder.role();
  if (role != NodeRole::kLeaf && role != NodeRole::kRedAggregator &&
      role != NodeRole::kBlueAggregator) {
    return;  // Uncovered/undecided: sits out (loss factor (a)).
  }

  auto usable = [&](std::vector<net::NodeId> candidates) {
    if (!config_.encrypt_slices) return candidates;
    // A slice can only go where a link key exists (relevant under EG
    // predistribution, where some links stay unkeyed).
    std::vector<net::NodeId> filtered;
    filtered.reserve(candidates.size());
    for (net::NodeId id : candidates) {
      if (crypto_for(self).keystore().HasLinkKey(id)) {
        filtered.push_back(id);
      }
    }
    return filtered;
  };

  util::Rng rng = network_->node(self).rng().Fork("slice-plan");
  auto plan = PlanSlices(role, config_.slice_count,
                         usable(builder.AggregatorNeighbors(TreeColor::kRed)),
                         usable(builder.AggregatorNeighbors(TreeColor::kBlue)),
                         rng);
  if (!plan.ok()) {
    return;  // Target-starved: sits out (loss factor (b)).
  }

  Vector contribution;
  if (query_.has_value()) {
    // Query-driven mode: compute what the *received* query asks for; a
    // node the dissemination missed sits the round out.
    if (!state.received_query.has_value()) return;
    auto resolved = FunctionForQuery(*state.received_query);
    if (!resolved.ok() || (*resolved)->arity() != function_->arity()) {
      return;
    }
    contribution = (*resolved)->Contribution(readings_[self]);
  } else {
    contribution = function_->Contribution(readings_[self]);
  }
  DeliverSlices(self, TreeColor::kRed, plan->red, contribution, rng);
  DeliverSlices(self, TreeColor::kBlue, plan->blue, contribution, rng);
  state.participated = true;
}

void IpdaProtocol::DeliverSlices(net::NodeId self, TreeColor color,
                                 const ColorPlan& plan,
                                 const Vector& contribution, util::Rng& rng) {
  const uint32_t l = config_.slice_count;
  std::vector<Vector> slices =
      SliceVector(contribution, l, config_.slice_range, rng);
  size_t next = 0;
  if (plan.keep_local) {
    // d_ii never touches the air (§III-C-1, Fig. 2).
    if (slice_observer_) slice_observer_(self, self, color, slices[next]);
    AddInto(states_[self].assembled, slices[next++]);
  }
  for (net::NodeId target : plan.targets) {
    IPDA_CHECK_LT(next, slices.size());
    if (slice_observer_) slice_observer_(self, target, color, slices[next]);
    const util::Bytes plaintext =
        EncodeSliceMsg(SliceMsg{color, slices[next++]});
    util::Bytes wire;
    if (config_.encrypt_slices) {
      auto sealed = crypto_for(self).Seal(target, plaintext);
      IPDA_CHECK(sealed.ok());  // Targets were filtered for key presence.
      wire = std::move(*sealed);
    } else {
      wire = plaintext;
    }
    network_->node(self).Unicast(target, net::PacketType::kSlice,
                                 std::move(wire));
    stats_.slices_sent += 1;
  }
  IPDA_CHECK_EQ(next, slices.size());
}

void IpdaProtocol::Report(net::NodeId self) {
  NodeState& state = states_[self];
  const NodeRole role = state.builder->role();
  if (role != NodeRole::kRedAggregator &&
      role != NodeRole::kBlueAggregator) {
    return;
  }
  const TreeColor color = role == NodeRole::kRedAggregator
                              ? TreeColor::kRed
                              : TreeColor::kBlue;
  Vector partial = state.assembled;
  AddInto(partial, state.children);
  if (pollution_hook_) pollution_hook_(self, color, partial);
  network_->node(self).Unicast(state.builder->parent(),
                               net::PacketType::kAggregate,
                               EncodeAggregateMsg(AggregateMsg{color,
                                                               partial}));
  stats_.reports_sent += 1;
}

const IpdaStats& IpdaProtocol::Finish() {
  if (finished_) return stats_;
  finished_ = true;
  for (net::NodeId id = 1; id < network_->size(); ++id) {
    const NodeState& state = states_[id];
    if (state.excluded) {
      stats_.excluded += 1;
      continue;
    }
    if (state.builder->covered()) stats_.covered_both += 1;
    if (state.participated) stats_.participants += 1;
    switch (state.builder->role()) {
      case NodeRole::kRedAggregator:
        stats_.red_aggregators += 1;
        break;
      case NodeRole::kBlueAggregator:
        stats_.blue_aggregators += 1;
        break;
      case NodeRole::kLeaf:
        stats_.leaves += 1;
        break;
      default:
        stats_.undecided += 1;
        break;
    }
  }
  stats_.decision = bs_acc_.Decide(config_.threshold);
  return stats_;
}

}  // namespace ipda::agg
