// iPDA Phase II: data slicing and assembling (§III-C).
//
// A node hides its contribution vector by splitting it into l random
// slices per tree: l-1 slices are uniform noise, the last makes the sum
// exact, so any proper subset of slices is statistically independent of
// the reading. Aggregators keep one slice local (d_ii); everything else is
// link-encrypted and unicast to chosen neighbor aggregators.

#ifndef IPDA_AGG_IPDA_SLICING_H_
#define IPDA_AGG_IPDA_SLICING_H_

#include <vector>

#include "agg/aggregate_function.h"
#include "agg/ipda/messages.h"
#include "net/topology.h"
#include "util/random.h"
#include "util/result.h"

namespace ipda::agg {

// Splits `value` into `l` slices that sum componentwise to `value`. The
// first l-1 slices are uniform in [-range, range] per component.
std::vector<Vector> SliceVector(const Vector& value, uint32_t l, double range,
                                util::Rng& rng);

// Where one node's slices go for a single tree color.
struct ColorPlan {
  std::vector<net::NodeId> targets;  // Remote aggregators, one slice each.
  bool keep_local = false;           // One slice stays at the node (d_ii).
};

// Both trees' plans; total transmissions = red.targets + blue.targets
// (2l for leaves, 2l-1 for aggregators — §III-C-1).
struct SlicePlan {
  ColorPlan red;
  ColorPlan blue;
  size_t TransmissionCount() const {
    return red.targets.size() + blue.targets.size();
  }
};

// Chooses slice targets per §III-C-1. `red_candidates`/`blue_candidates`
// are the neighbor aggregators the node may send to (already filtered for
// key availability by the caller); they must not contain the node itself.
// Fails with FailedPrecondition when the neighborhood cannot absorb l
// slices per tree — the node then sits out this round (loss factor (b)).
util::Result<SlicePlan> PlanSlices(
    NodeRole role, uint32_t l, const std::vector<net::NodeId>& red_candidates,
    const std::vector<net::NodeId>& blue_candidates, util::Rng& rng);

}  // namespace ipda::agg

#endif  // IPDA_AGG_IPDA_SLICING_H_
