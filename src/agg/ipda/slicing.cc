#include "agg/ipda/slicing.h"

#include "util/check.h"

namespace ipda::agg {
namespace {

std::vector<net::NodeId> PickTargets(const std::vector<net::NodeId>& pool,
                                     size_t count, util::Rng& rng) {
  std::vector<net::NodeId> out;
  out.reserve(count);
  for (size_t idx : rng.SampleWithoutReplacement(pool.size(), count)) {
    out.push_back(pool[idx]);
  }
  return out;
}

}  // namespace

std::vector<Vector> SliceVector(const Vector& value, uint32_t l, double range,
                                util::Rng& rng) {
  IPDA_CHECK_GE(l, 1u);
  IPDA_CHECK_GT(range, 0.0);
  std::vector<Vector> slices;
  slices.reserve(l);
  Vector remainder = value;
  for (uint32_t i = 0; i + 1 < l; ++i) {
    Vector slice(value.size());
    for (size_t c = 0; c < value.size(); ++c) {
      slice[c] = rng.UniformDouble(-range, range);
      remainder[c] -= slice[c];
    }
    slices.push_back(std::move(slice));
  }
  slices.push_back(std::move(remainder));
  return slices;
}

util::Result<SlicePlan> PlanSlices(
    NodeRole role, uint32_t l, const std::vector<net::NodeId>& red_candidates,
    const std::vector<net::NodeId>& blue_candidates, util::Rng& rng) {
  IPDA_CHECK_GE(l, 1u);
  size_t red_remote = l;
  size_t blue_remote = l;
  SlicePlan plan;
  switch (role) {
    case NodeRole::kRedAggregator:
      plan.red.keep_local = true;
      red_remote = l - 1;
      break;
    case NodeRole::kBlueAggregator:
      plan.blue.keep_local = true;
      blue_remote = l - 1;
      break;
    case NodeRole::kLeaf:
      break;
    default:
      return util::FailedPreconditionError(
          "only decided sensor roles can slice");
  }
  if (red_candidates.size() < red_remote) {
    return util::FailedPreconditionError(
        "not enough red aggregator neighbors for l slices");
  }
  if (blue_candidates.size() < blue_remote) {
    return util::FailedPreconditionError(
        "not enough blue aggregator neighbors for l slices");
  }
  plan.red.targets = PickTargets(red_candidates, red_remote, rng);
  plan.blue.targets = PickTargets(blue_candidates, blue_remote, rng);
  return plan;
}

}  // namespace ipda::agg
