// iPDA protocol engine (§III): runs the three phases over a net::Network.
//
//   Phase I   disjoint tree construction  (TreeBuilder per node)
//   Phase II  slicing + assembling        (SliceVector/PlanSlices + crypto)
//   Phase III per-tree aggregation        (depth-slotted reports)
//
// The engine is attack-instrumentable: a pollution hook lets a compromised
// aggregator tamper with its outgoing partial, and nodes can be excluded
// per round for the §III-D polluter-localization procedure.

#ifndef IPDA_AGG_IPDA_PROTOCOL_H_
#define IPDA_AGG_IPDA_PROTOCOL_H_

#include <functional>
#include <memory>
#include <vector>

#include "agg/aggregate_function.h"
#include "agg/ipda/base_station.h"
#include "agg/ipda/config.h"
#include "agg/ipda/messages.h"
#include "agg/ipda/slicing.h"
#include "agg/ipda/tree_construction.h"
#include "crypto/keystore.h"
#include "net/network.h"

namespace ipda::agg {

struct IpdaStats {
  // Phase I census.
  size_t covered_both = 0;   // Heard both colors (Fig. 8a numerator).
  size_t red_aggregators = 0;
  size_t blue_aggregators = 0;
  size_t leaves = 0;
  size_t undecided = 0;      // Never covered; outside both trees.
  size_t excluded = 0;
  // Phase II.
  size_t participants = 0;   // Contributed a full slice set (Fig. 8b).
  size_t slices_sent = 0;    // Over-the-air slice transmissions.
  size_t slice_decrypt_failures = 0;
  // Phase III.
  size_t reports_sent = 0;
  // Failure resilience (fault-injection rounds; see IpdaConfig knobs).
  size_t slices_retargeted = 0;  // Re-aimed away from a dead aggregator.
  size_t slices_lost = 0;        // ARQ failed, no live alternate target.
  size_t reports_rerouted = 0;   // Partials re-sent to an alternate parent.
  size_t orphaned_partials = 0;  // Partials with no live rootward parent.
  size_t late_partials = 0;      // Absorbed after the parent had reported.
  // Mid-round churn response (churn_response != kNone; DESIGN.md §12).
  size_t joins_absorbed = 0;        // Late joiners admitted to the trees.
  size_t grafts = 0;                // Orphaned aggregators re-parented.
  size_t disjoint_violations = 0;   // Grafts that crossed tree colors.
  size_t backoff_retries = 0;       // Control retries past the first try.
  size_t repair_budget_exhausted = 0;  // Nodes that ran out of attempts.
  size_t relay_forwards = 0;        // Cross-tree relays forwarded rootward.
  size_t relays_lost = 0;           // Relays that died on a dead link.
  size_t rebuild_floods = 0;        // Full HELLO re-floods (kRebuild).
  size_t churn_control_msgs = 0;    // Tree-control frames churn cost us.
  // Backoff delay between losing a parent and re-sending the partial.
  std::vector<double> repair_latencies_ms;
  // Delivered / expected aggregator partials per tree (1.0 when whole).
  double completeness_red = 1.0;
  double completeness_blue = 1.0;
  // True when the round finalized knowing data went missing: a partial
  // never arrived, arrived too late to be forwarded, or a slice died with
  // its target. §III-D's ambiguity made concrete: the base station can
  // tell *that* data is missing, not whether failure or pollution did it.
  bool degraded = false;
  // Base-station outcome.
  IntegrityDecision decision;
};

// One incremental tree repair: `node` (an aggregator of `color`) lost its
// parent and re-attached under `new_parent`. `degraded` marks the
// fallback where no node-disjoint (same-color) parent existed and the
// partial traveled up the other tree as a kRelay instead.
struct GraftRecord {
  net::NodeId node = 0;
  TreeColor color = TreeColor::kRed;
  net::NodeId new_parent = 0;
  bool degraded = false;
};

class IpdaProtocol {
 public:
  // Invoked as (node, tree color, partial) just before a compromised
  // aggregator transmits; mutate `partial` to pollute.
  using PollutionHook =
      std::function<void(net::NodeId, TreeColor, Vector& partial)>;

  // Ground-truth tap for every slice a node produces: transmitted slices
  // carry the target id; the locally kept slice (d_ii) reports
  // to == from. Attack evaluations subscribe here to decide what a given
  // link-compromise set would reveal.
  using SliceObserver = std::function<void(
      net::NodeId from, net::NodeId to, TreeColor color,
      const Vector& slice)>;

  // `network` and `function` must outlive the protocol.
  IpdaProtocol(net::Network* network, const AggregateFunction* function,
               IpdaConfig config = {});

  IpdaProtocol(const IpdaProtocol&) = delete;
  IpdaProtocol& operator=(const IpdaProtocol&) = delete;

  // readings[id] is node id's sensor value; index 0 (base station) ignored.
  void SetReadings(std::vector<double> readings);

  // Disseminates `query` with the HELLO flood (§III-A). Sensors then
  // derive their contribution from the query they actually received —
  // one that never reaches a node keeps it out of the round. The query
  // must describe the same aggregate as the constructor's function.
  void SetQuery(const Query& query);

  // Supplies externally provisioned link keys (e.g. EG predistribution).
  // Indexed by node id; must outlive the protocol. Without this call the
  // protocol provisions pairwise keys over every topology edge itself.
  void SetLinkCrypto(std::vector<crypto::LinkCrypto>* cryptos);

  void SetPollutionHook(PollutionHook hook);

  void SetSliceObserver(SliceObserver observer);

  // Nodes barred from this round (forced out of both trees and slicing).
  void SetExcludedNodes(const std::vector<net::NodeId>& nodes);

  // Installs handlers and schedules all three phases; afterwards advance
  // the simulator to at least Duration(), then call Finish().
  void Start();

  // Churn signals (wired by agg::Runner to the fault::ChurnInjector).
  // `id` (re)joined the network with fresh topology edges: under kRepair
  // it solicits admission as a leaf on both trees; under kRebuild the
  // next flood covers it. No-op when churn_response is kNone.
  void OnChurnJoin(net::NodeId id);
  // Some edge set changed. kRebuild re-floods HELLOs (throttled by
  // rebuild_min_interval); kRepair relies on ARQ-driven grafting instead.
  void OnTopologyChange();

  // Covers the configured round deadline even when it exceeds the
  // nominal three-phase schedule.
  sim::SimTime Duration() const;

  // Computes the base-station decision and the role census. Idempotent.
  const IpdaStats& Finish();

  const IpdaStats& stats() const { return stats_; }
  const IpdaConfig& config() const { return config_; }

  // Base-station answer (red/blue mean) after Finish().
  double FinalizedResult() const {
    return function_->Finalize(stats_.decision.Agreed());
  }

  // Introspection for tests and analyses.
  const TreeBuilder& builder(net::NodeId id) const {
    return *states_[id].builder;
  }
  bool participated(net::NodeId id) const {
    return states_[id].participated;
  }
  // Every repair graft performed this round, in order. Tests assert the
  // node-disjointness invariant over these records.
  const std::vector<GraftRecord>& graft_log() const { return grafts_; }

 private:
  // A transmitted slice the sender remembers until the round ends, so an
  // ARQ failure can re-aim it at a live aggregator (retarget_slices).
  struct PendingSlice {
    net::NodeId target;
    TreeColor color;
    Vector slice;
    uint32_t attempts = 0;  // Re-aims consumed.
  };

  struct NodeState {
    std::unique_ptr<TreeBuilder> builder;
    Vector assembled;  // r(j): kept slice + received slices.
    Vector children;   // Partials folded in from tree children.
    Vector last_partial;  // What Report() sent (resent on failover).
    std::optional<Query> received_query;
    std::vector<PendingSlice> pending_slices;
    std::vector<net::NodeId> dead_neighbors;  // Declared dead by ARQ.
    // Advancing per-node stream for churn-control jitter/backoff draws
    // (Rng::Fork is label-deterministic, so repeated forks would repeat
    // the same values; this one is forked once and then stepped).
    std::optional<util::Rng> repair_rng;
    uint32_t repair_attempts = 0;  // Control-attempt budget consumed.
    bool join_pending = false;     // Mid-round joiner awaiting admission.
    bool participated = false;
    bool excluded = false;
    bool reported = false;  // Phase III partial already transmitted.
  };

  void ProvisionPairwiseKeys();
  void OnPacket(net::NodeId self, const net::Packet& packet);
  void OnSendFailure(net::NodeId self, const net::Packet& packet);
  void RetargetSlice(net::NodeId self, net::NodeId dead_target);
  void FailoverReport(net::NodeId self);
  // Jittered exponential backoff for tree-control retries:
  // min(base * 2^attempt, max) + U[0, base).
  sim::SimTime BackoffDelay(NodeState& state, uint32_t attempt);
  // kRepair: broadcast a kJoin solicitation, re-checking coverage (and
  // retrying under backoff) until admitted or the budget runs out.
  void SendJoinSolicit(net::NodeId self, uint32_t attempt);
  // Leaf admission once a joiner is covered; slices late if time allows.
  void CompleteJoin(net::NodeId self);
  // kRepair: re-parent an orphaned aggregator, preserving disjointness
  // when possible, falling back to a degraded cross-tree kRelay.
  void RepairGraft(net::NodeId self);
  // kRebuild: re-flood HELLOs from the base station and every decided
  // aggregator (the from-scratch baseline).
  void DoRebuildFlood();
  bool IsDeadNeighbor(const NodeState& state, net::NodeId id) const;
  void ScheduleHellos(net::NodeId self, const HelloMsg& hello,
                      util::Rng& rng);
  void OnJoined(net::NodeId self, const HelloMsg& hello);
  void DoSlicing(net::NodeId self);
  void DeliverSlices(net::NodeId self, TreeColor color,
                     const ColorPlan& plan, const Vector& contribution,
                     util::Rng& rng);
  void SendSlice(net::NodeId self, net::NodeId target, TreeColor color,
                 const Vector& slice);
  void Report(net::NodeId self);
  crypto::LinkCrypto& crypto_for(net::NodeId id) { return (*cryptos_)[id]; }

  net::Network* network_;
  const AggregateFunction* function_;
  IpdaConfig config_;
  std::optional<Query> query_;
  std::vector<double> readings_;
  std::vector<NodeState> states_;
  BaseStationAccumulator bs_acc_;
  std::vector<crypto::LinkCrypto> owned_cryptos_;
  std::vector<crypto::LinkCrypto>* cryptos_ = nullptr;
  PollutionHook pollution_hook_;
  SliceObserver slice_observer_;
  // partial_delivered_[id]: aggregator id's Phase III partial was absorbed
  // somewhere useful (at its parent before the parent reported, or at the
  // base station). Feeds the per-tree completeness ratios.
  std::vector<bool> partial_delivered_;
  std::vector<GraftRecord> grafts_;
  sim::SimTime last_rebuild_ = -1;
  bool rebuild_pending_ = false;
  IpdaStats stats_;
  bool started_ = false;
  bool finished_ = false;
};

}  // namespace ipda::agg

#endif  // IPDA_AGG_IPDA_PROTOCOL_H_
