#include "agg/ipda/messages.h"

#include "agg/partial.h"

namespace ipda::agg {

const char* TreeColorName(TreeColor color) {
  switch (color) {
    case TreeColor::kRed:
      return "red";
    case TreeColor::kBlue:
      return "blue";
    case TreeColor::kBoth:
      return "both";
  }
  return "?";
}

const char* NodeRoleName(NodeRole role) {
  switch (role) {
    case NodeRole::kUndecided:
      return "undecided";
    case NodeRole::kLeaf:
      return "leaf";
    case NodeRole::kRedAggregator:
      return "red";
    case NodeRole::kBlueAggregator:
      return "blue";
    case NodeRole::kBaseStation:
      return "base-station";
    case NodeRole::kExcluded:
      return "excluded";
  }
  return "?";
}

bool RoleMatchesColor(NodeRole role, TreeColor color) {
  switch (color) {
    case TreeColor::kRed:
      return role == NodeRole::kRedAggregator ||
             role == NodeRole::kBaseStation;
    case TreeColor::kBlue:
      return role == NodeRole::kBlueAggregator ||
             role == NodeRole::kBaseStation;
    case TreeColor::kBoth:
      return role == NodeRole::kBaseStation;
  }
  return false;
}

util::Bytes EncodeHelloMsg(const HelloMsg& msg) {
  util::ByteWriter writer;
  writer.WriteU8(static_cast<uint8_t>(msg.color));
  writer.WriteU16(static_cast<uint16_t>(msg.hop > 0xffff ? 0xffff : msg.hop));
  writer.WriteU8(msg.query.has_value() ? 1 : 0);
  if (msg.query.has_value()) EncodeQueryInto(*msg.query, writer);
  return writer.TakeBytes();
}

util::Result<HelloMsg> DecodeHelloMsg(const util::Bytes& payload) {
  util::ByteReader reader(payload);
  IPDA_ASSIGN_OR_RETURN(uint8_t color, reader.ReadU8());
  IPDA_ASSIGN_OR_RETURN(uint16_t hop, reader.ReadU16());
  IPDA_ASSIGN_OR_RETURN(uint8_t has_query, reader.ReadU8());
  if (color < 1 || color > 3) {
    return util::InvalidArgumentError("bad HELLO color");
  }
  HelloMsg msg{static_cast<TreeColor>(color), hop, std::nullopt};
  if (has_query != 0) {
    IPDA_ASSIGN_OR_RETURN(Query query, DecodeQueryFrom(reader));
    msg.query = query;
  }
  return msg;
}

util::Bytes EncodeSliceMsg(const SliceMsg& msg) {
  util::ByteWriter writer;
  writer.WriteU8(static_cast<uint8_t>(msg.color));
  EncodePartialInto(msg.slice, writer);
  return writer.TakeBytes();
}

util::Result<SliceMsg> DecodeSliceMsg(const util::Bytes& payload) {
  util::ByteReader reader(payload);
  IPDA_ASSIGN_OR_RETURN(uint8_t color, reader.ReadU8());
  if (color != 1 && color != 2) {
    return util::InvalidArgumentError("bad SLICE color");
  }
  IPDA_ASSIGN_OR_RETURN(Vector slice, DecodePartialFrom(reader));
  return SliceMsg{static_cast<TreeColor>(color), std::move(slice)};
}

util::Bytes EncodeAggregateMsg(const AggregateMsg& msg) {
  util::ByteWriter writer;
  writer.WriteU8(static_cast<uint8_t>(msg.color));
  EncodePartialInto(msg.partial, writer);
  return writer.TakeBytes();
}

util::Result<AggregateMsg> DecodeAggregateMsg(const util::Bytes& payload) {
  util::ByteReader reader(payload);
  IPDA_ASSIGN_OR_RETURN(uint8_t color, reader.ReadU8());
  if (color != 1 && color != 2) {
    return util::InvalidArgumentError("bad AGGREGATE color");
  }
  IPDA_ASSIGN_OR_RETURN(Vector partial, DecodePartialFrom(reader));
  return AggregateMsg{static_cast<TreeColor>(color), std::move(partial)};
}

namespace {
// "JN" + version byte; kJoin frames carry no further state.
constexpr uint8_t kJoinMagic[3] = {0x4a, 0x4e, 0x01};
}  // namespace

util::Bytes EncodeJoinSolicitMsg() {
  util::ByteWriter writer;
  writer.WriteU8(kJoinMagic[0]);
  writer.WriteU8(kJoinMagic[1]);
  writer.WriteU8(kJoinMagic[2]);
  return writer.TakeBytes();
}

bool IsJoinSolicitMsg(const util::Bytes& payload) {
  return payload.size() == 3 && payload[0] == kJoinMagic[0] &&
         payload[1] == kJoinMagic[1] && payload[2] == kJoinMagic[2];
}

util::Bytes EncodeRelayMsg(const RelayMsg& msg) {
  util::ByteWriter writer;
  writer.WriteU8(static_cast<uint8_t>(msg.color));
  writer.WriteU32(msg.origin);
  EncodePartialInto(msg.partial, writer);
  return writer.TakeBytes();
}

util::Result<RelayMsg> DecodeRelayMsg(const util::Bytes& payload) {
  util::ByteReader reader(payload);
  IPDA_ASSIGN_OR_RETURN(uint8_t color, reader.ReadU8());
  if (color != 1 && color != 2) {
    return util::InvalidArgumentError("bad RELAY color");
  }
  IPDA_ASSIGN_OR_RETURN(uint32_t origin, reader.ReadU32());
  IPDA_ASSIGN_OR_RETURN(Vector partial, DecodePartialFrom(reader));
  return RelayMsg{static_cast<TreeColor>(color), origin, std::move(partial)};
}

}  // namespace ipda::agg
