#include "agg/ipda/messages.h"

#include "agg/partial.h"

namespace ipda::agg {

const char* TreeColorName(TreeColor color) {
  switch (color) {
    case TreeColor::kRed:
      return "red";
    case TreeColor::kBlue:
      return "blue";
    case TreeColor::kBoth:
      return "both";
  }
  return "?";
}

const char* NodeRoleName(NodeRole role) {
  switch (role) {
    case NodeRole::kUndecided:
      return "undecided";
    case NodeRole::kLeaf:
      return "leaf";
    case NodeRole::kRedAggregator:
      return "red";
    case NodeRole::kBlueAggregator:
      return "blue";
    case NodeRole::kBaseStation:
      return "base-station";
    case NodeRole::kExcluded:
      return "excluded";
  }
  return "?";
}

bool RoleMatchesColor(NodeRole role, TreeColor color) {
  switch (color) {
    case TreeColor::kRed:
      return role == NodeRole::kRedAggregator ||
             role == NodeRole::kBaseStation;
    case TreeColor::kBlue:
      return role == NodeRole::kBlueAggregator ||
             role == NodeRole::kBaseStation;
    case TreeColor::kBoth:
      return role == NodeRole::kBaseStation;
  }
  return false;
}

util::Bytes EncodeHelloMsg(const HelloMsg& msg) {
  util::ByteWriter writer;
  writer.WriteU8(static_cast<uint8_t>(msg.color));
  writer.WriteU16(static_cast<uint16_t>(msg.hop > 0xffff ? 0xffff : msg.hop));
  writer.WriteU8(msg.query.has_value() ? 1 : 0);
  util::Bytes out = writer.TakeBytes();
  if (msg.query.has_value()) {
    const util::Bytes query = EncodeQuery(*msg.query);
    out.insert(out.end(), query.begin(), query.end());
  }
  return out;
}

util::Result<HelloMsg> DecodeHelloMsg(const util::Bytes& payload) {
  util::ByteReader reader(payload);
  IPDA_ASSIGN_OR_RETURN(uint8_t color, reader.ReadU8());
  IPDA_ASSIGN_OR_RETURN(uint16_t hop, reader.ReadU16());
  IPDA_ASSIGN_OR_RETURN(uint8_t has_query, reader.ReadU8());
  if (color < 1 || color > 3) {
    return util::InvalidArgumentError("bad HELLO color");
  }
  HelloMsg msg{static_cast<TreeColor>(color), hop, std::nullopt};
  if (has_query != 0) {
    util::Bytes rest(payload.begin() + 4, payload.end());
    IPDA_ASSIGN_OR_RETURN(Query query, DecodeQuery(rest));
    msg.query = query;
  }
  return msg;
}

util::Bytes EncodeSliceMsg(const SliceMsg& msg) {
  util::ByteWriter writer;
  writer.WriteU8(static_cast<uint8_t>(msg.color));
  util::Bytes body = EncodePartial(msg.slice);
  util::Bytes out = writer.TakeBytes();
  out.insert(out.end(), body.begin(), body.end());
  return out;
}

util::Result<SliceMsg> DecodeSliceMsg(const util::Bytes& payload) {
  util::ByteReader reader(payload);
  IPDA_ASSIGN_OR_RETURN(uint8_t color, reader.ReadU8());
  if (color != 1 && color != 2) {
    return util::InvalidArgumentError("bad SLICE color");
  }
  util::Bytes rest(payload.begin() + 1, payload.end());
  IPDA_ASSIGN_OR_RETURN(Vector slice, DecodePartial(rest));
  return SliceMsg{static_cast<TreeColor>(color), std::move(slice)};
}

util::Bytes EncodeAggregateMsg(const AggregateMsg& msg) {
  util::ByteWriter writer;
  writer.WriteU8(static_cast<uint8_t>(msg.color));
  util::Bytes partial = EncodePartial(msg.partial);
  util::Bytes out = writer.TakeBytes();
  out.insert(out.end(), partial.begin(), partial.end());
  return out;
}

util::Result<AggregateMsg> DecodeAggregateMsg(const util::Bytes& payload) {
  util::ByteReader reader(payload);
  IPDA_ASSIGN_OR_RETURN(uint8_t color, reader.ReadU8());
  if (color != 1 && color != 2) {
    return util::InvalidArgumentError("bad AGGREGATE color");
  }
  util::Bytes rest(payload.begin() + 1, payload.end());
  IPDA_ASSIGN_OR_RETURN(Vector partial, DecodePartial(rest));
  return AggregateMsg{static_cast<TreeColor>(color), std::move(partial)};
}

}  // namespace ipda::agg
