#include "agg/ipda/config.h"

namespace ipda::agg {

util::Status ValidateIpdaConfig(const IpdaConfig& config) {
  if (config.slice_count == 0) {
    return util::InvalidArgumentError("slice_count (l) must be >= 1");
  }
  if (config.k < 2) {
    return util::InvalidArgumentError("k must be >= 2 (paper: k >= 2)");
  }
  if (config.threshold < 0.0) {
    return util::InvalidArgumentError("threshold Th must be non-negative");
  }
  if (config.slice_range <= 0.0) {
    return util::InvalidArgumentError("slice_range must be positive");
  }
  if (config.phase1_window <= 0 || config.slice_window <= 0 ||
      config.slot <= 0) {
    return util::InvalidArgumentError("phase windows must be positive");
  }
  if (config.max_depth == 0) {
    return util::InvalidArgumentError("max_depth must be positive");
  }
  if (config.round_deadline < 0) {
    return util::InvalidArgumentError("round_deadline must be >= 0");
  }
  if (config.retarget_slices && config.slice_retarget_max == 0) {
    return util::InvalidArgumentError(
        "retarget_slices needs slice_retarget_max >= 1");
  }
  if (config.churn_response != ChurnResponse::kNone) {
    if (config.repair_attempt_budget == 0) {
      return util::InvalidArgumentError(
          "churn response needs repair_attempt_budget >= 1");
    }
    if (config.repair_backoff_base <= 0 ||
        config.repair_backoff_max < config.repair_backoff_base) {
      return util::InvalidArgumentError(
          "repair backoff needs 0 < base <= max");
    }
    if (config.rebuild_min_interval <= 0) {
      return util::InvalidArgumentError(
          "rebuild_min_interval must be positive");
    }
  }
  return util::OkStatus();
}

sim::SimTime IpdaSliceStart(const IpdaConfig& config) {
  return config.phase1_window;
}

sim::SimTime IpdaReportStart(const IpdaConfig& config) {
  // Margin after the slicing window so assembly sees every slice the MAC
  // will ever deliver.
  return IpdaSliceStart(config) + config.slice_window +
         sim::Milliseconds(200);
}

sim::SimTime IpdaDuration(const IpdaConfig& config) {
  return IpdaReportStart(config) +
         config.slot * static_cast<sim::SimTime>(config.max_depth + 1) +
         config.report_jitter_max + sim::Milliseconds(200);
}

sim::SimTime IpdaRoundDeadline(const IpdaConfig& config) {
  return config.round_deadline > 0 ? config.round_deadline
                                   : IpdaDuration(config);
}

}  // namespace ipda::agg
