// iPDA Phase I: disjoint aggregation-tree construction (§III-B).
//
// TreeBuilder is one node's role state machine, deliberately decoupled from
// the network: HELLO receptions are fed in, joins come out through a
// callback, and timers go through an injected scheduler — so the decision
// logic (Eq. 1 adaptive probabilities, Eq. 2 fixed 0.5/0.5, parent choice,
// conflicting-color detection) is unit-testable without radios.
//
// Protocol recap: the base station HELLOs as both colors; a node waits
// until it has heard both a red and a blue aggregator, gathers HELLOs for
// `decide_window`, then draws its role. Aggregators adopt the lowest-hop
// same-color sender as parent and rebroadcast HELLO; leaves stay silent.
// Nodes that never hear both colors never join (coverage loss factor (a)).

#ifndef IPDA_AGG_IPDA_TREE_CONSTRUCTION_H_
#define IPDA_AGG_IPDA_TREE_CONSTRUCTION_H_

#include <functional>
#include <optional>
#include <unordered_map>
#include <vector>

#include "agg/ipda/config.h"
#include "agg/ipda/messages.h"
#include "net/topology.h"
#include "sim/time.h"
#include "util/random.h"

namespace ipda::agg {

// A neighbor known (from its HELLO) to aggregate on some tree.
struct NeighborAggregator {
  net::NodeId id;
  TreeColor color;
  uint32_t hop;
};

class TreeBuilder {
 public:
  // Relative-delay timer, supplied by the owner (usually the simulator).
  using ScheduleFn =
      std::function<void(sim::SimTime delay, std::function<void()> fn)>;
  // Invoked exactly once if/when this node joins a tree.
  using JoinedFn = std::function<void(const HelloMsg& hello)>;

  TreeBuilder(net::NodeId self, const IpdaConfig* config, util::Rng rng,
              ScheduleFn schedule, JoinedFn joined);

  TreeBuilder(const TreeBuilder&) = delete;
  TreeBuilder& operator=(const TreeBuilder&) = delete;

  // Administratively fixes the role before any HELLO arrives (base station,
  // or kExcluded during polluter-localization rounds).
  void ForceRole(NodeRole role);

  // Late joiners (mid-round churn) must not perturb the decided trees, so
  // the role draw is pinned to kLeaf: an undecided node with this set
  // becomes a leaf the moment it is covered (DESIGN.md §12).
  void SetLeafOnly(bool leaf_only) { leaf_only_ = leaf_only; }

  // Immediately decides kLeaf if undecided and covered (the join-solicit
  // completion path). Returns true if the node is now a decided leaf.
  bool JoinAsLeaf();

  // Re-points a decided aggregator at a new parent with the given parent
  // hop (incremental graft repair). The node's own hop becomes
  // parent_hop + 1; its color is unchanged.
  void Reparent(net::NodeId parent, uint32_t parent_hop);

  // Feeds one received HELLO. A node advertising two different colors is a
  // protocol violation (§III-B); it is blacklisted from neighbor lists.
  void OnHello(net::NodeId src, const HelloMsg& msg);

  bool decided() const { return role_ != NodeRole::kUndecided; }
  NodeRole role() const { return role_; }
  bool heard_red() const { return n_red_ > 0; }
  bool heard_blue() const { return n_blue_ > 0; }
  // Covered = can reach both trees in one hop (Fig. 8a numerator).
  bool covered() const { return heard_red() && heard_blue(); }

  // Valid only for aggregator roles.
  net::NodeId parent() const;
  uint32_t hop() const;

  // Neighbor aggregators of `color` heard so far (excludes blacklisted
  // double-color senders; includes the base station for either color).
  std::vector<net::NodeId> AggregatorNeighbors(TreeColor color) const;

  // Same set with each neighbor's advertised hop, in first-heard order.
  // Parent failover needs hops to re-route partials strictly rootward.
  std::vector<NeighborAggregator> AggregatorNeighborInfos(
      TreeColor color) const;

  size_t hello_count(TreeColor color) const {
    return color == TreeColor::kRed ? n_red_ : n_blue_;
  }

  // The role-draw probabilities this node would use right now; exposed for
  // tests and the analysis module.
  double ProbRed() const;
  double ProbBlue() const;

 private:
  void Decide();

  net::NodeId self_;
  const IpdaConfig* config_;
  util::Rng rng_;
  ScheduleFn schedule_;
  JoinedFn joined_;

  void ImpatientDecide();

  NodeRole role_ = NodeRole::kUndecided;
  bool leaf_only_ = false;
  bool timer_armed_ = false;
  bool impatient_armed_ = false;
  size_t n_red_ = 0;   // HELLOs heard from red aggregators (+ BS).
  size_t n_blue_ = 0;  // HELLOs heard from blue aggregators (+ BS).
  net::NodeId parent_ = net::kBroadcastId;
  uint32_t hop_ = 0;

  struct HeardEntry {
    TreeColor color;
    uint32_t hop;
    bool conflicted = false;  // Sent HELLOs with different colors.
  };
  std::unordered_map<net::NodeId, HeardEntry> heard_;
  std::vector<net::NodeId> heard_order_;  // First-heard tiebreaking.
};

}  // namespace ipda::agg

#endif  // IPDA_AGG_IPDA_TREE_CONSTRUCTION_H_
