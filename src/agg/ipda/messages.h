// Wire formats for the three iPDA phases.
//
// HELLO carries the sender's tree color and hop count (Phase I); SLICE
// carries one encrypted contribution-vector slice (Phase II); AGGREGATE
// carries a colored partial so the base station can attribute it to the
// red or blue tree (Phase III).

#ifndef IPDA_AGG_IPDA_MESSAGES_H_
#define IPDA_AGG_IPDA_MESSAGES_H_

#include <cstdint>
#include <optional>

#include "agg/aggregate_function.h"
#include "agg/query.h"
#include "net/topology.h"
#include "util/bytes.h"
#include "util/result.h"

namespace ipda::agg {

// Aggregation-tree color. The base station broadcasts kBoth: it roots the
// red and the blue tree simultaneously (§III-B).
enum class TreeColor : uint8_t {
  kRed = 1,
  kBlue = 2,
  kBoth = 3,
};

// Role a node assumes in Phase I.
enum class NodeRole : uint8_t {
  kUndecided = 0,
  kLeaf = 1,
  kRedAggregator = 2,
  kBlueAggregator = 3,
  kBaseStation = 4,
  kExcluded = 5,  // Administratively barred (polluter localization rounds).
};

const char* TreeColorName(TreeColor color);
const char* NodeRoleName(NodeRole role);

// True if `role` aggregates on the tree of `color`.
bool RoleMatchesColor(NodeRole role, TreeColor color);

struct HelloMsg {
  TreeColor color = TreeColor::kBoth;
  uint32_t hop = 0;
  // Piggybacked query spec (§III-A): dissemination and tree construction
  // share the flood, exactly as in TAG.
  std::optional<Query> query;
};

util::Bytes EncodeHelloMsg(const HelloMsg& msg);
util::Result<HelloMsg> DecodeHelloMsg(const util::Bytes& payload);

// Plaintext slice body (sealed by LinkCrypto before transmission). The
// color says which tree the slice feeds — receivers of a single color
// could infer it, but the base station aggregates on both trees.
struct SliceMsg {
  TreeColor color = TreeColor::kRed;
  Vector slice;
};

util::Bytes EncodeSliceMsg(const SliceMsg& msg);
util::Result<SliceMsg> DecodeSliceMsg(const util::Bytes& payload);

struct AggregateMsg {
  TreeColor color = TreeColor::kRed;
  Vector partial;
};

util::Bytes EncodeAggregateMsg(const AggregateMsg& msg);
util::Result<AggregateMsg> DecodeAggregateMsg(const util::Bytes& payload);

// Late-join solicitation (net::PacketType::kJoin): a node that missed the
// Phase I flood asks decided neighbors to re-advertise their tree
// position. Body is a fixed magic so a truncated frame is detectable.
util::Bytes EncodeJoinSolicitMsg();
bool IsJoinSolicitMsg(const util::Bytes& payload);

// Degraded cross-tree relay (net::PacketType::kRelay): when a repair
// cannot find a node-disjoint parent, the orphaned partial travels up the
// *other* tree tagged with its true color and origin, so the base station
// still books it against the right tree (flagged degraded; DESIGN.md §12).
struct RelayMsg {
  TreeColor color = TreeColor::kRed;
  net::NodeId origin = 0;
  Vector partial;
};

util::Bytes EncodeRelayMsg(const RelayMsg& msg);
util::Result<RelayMsg> DecodeRelayMsg(const util::Bytes& payload);

}  // namespace ipda::agg

#endif  // IPDA_AGG_IPDA_MESSAGES_H_
