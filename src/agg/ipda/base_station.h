// iPDA base-station logic: per-tree accumulation and the redundancy-based
// integrity decision |S_red − S_blue| ≤ Th (§III-D, §IV-A-4).

#ifndef IPDA_AGG_IPDA_BASE_STATION_H_
#define IPDA_AGG_IPDA_BASE_STATION_H_

#include "agg/aggregate_function.h"
#include "agg/ipda/messages.h"

namespace ipda::agg {

struct IntegrityDecision {
  bool accepted = false;
  Vector acc_red;    // S_red, additive components.
  Vector acc_blue;   // S_blue.
  double max_component_diff = 0.0;  // max_i |S_red[i] − S_blue[i]|.
  double threshold = 0.0;

  // The value the base station reports when accepted: the red/blue mean,
  // which equals either tree's sum in the loss-free case.
  Vector Agreed() const;
};

class BaseStationAccumulator {
 public:
  explicit BaseStationAccumulator(size_t arity);

  // Folds a partial (from a child's AGGREGATE, or a slice addressed to the
  // base station itself) into the given tree's total.
  void Add(TreeColor color, const Vector& partial);

  const Vector& acc(TreeColor color) const;

  // Applies the Th test. Pollution on either tree — and only on one, since
  // the trees are node-disjoint — makes the totals disagree and the result
  // is rejected.
  IntegrityDecision Decide(double threshold) const;

  void Reset();

 private:
  Vector red_;
  Vector blue_;
};

}  // namespace ipda::agg

#endif  // IPDA_AGG_IPDA_BASE_STATION_H_
