// Cross-layer metrics collection for one completed run (DESIGN.md §11).
//
// The registry lives on the run's Simulator, but most layers already keep
// their own tallies (NodeCounters, IpdaStats, thread-local crypto stats).
// This collector is the one place that pulls them all into the registry —
// agg is the only library that links every subsystem, so the pull happens
// here without adding a dependency edge anywhere below.
//
// All writes are Counter::Set / Gauge::Set, so collection is idempotent
// and pure observation: calling it cannot perturb the run it measures.

#ifndef IPDA_AGG_RUN_METRICS_H_
#define IPDA_AGG_RUN_METRICS_H_

#include "agg/ipda/config.h"
#include "agg/ipda/protocol.h"
#include "crypto/stats.h"
#include "fault/churn_injector.h"
#include "fault/fault_injector.h"
#include "net/network.h"
#include "sim/simulator.h"

namespace ipda::agg {

// Pulls every layer's tallies into the run simulator's registry:
//   sim.* / pool.*  — kernel health (Simulator::CollectKernelMetrics)
//   net.*           — CounterBoard totals, derived protocol-only traffic
//                     (frames/bytes minus the MAC-ACK subset), per-node
//                     bytes histogram, energy gauges
//   crypto.*        — hot-path deltas vs `crypto_base`, the tally
//                     ThreadCryptoStats() returned before the run started
//                     (runs execute whole on one thread), plus a
//                     crypto.backend.<name> gauge naming the run's active
//                     cipher backend
//   fault.*         — injector totals when a fault or churn plan was armed
// Call after the simulation has run and before taking a snapshot.
void CollectRunMetrics(sim::Simulator& simulator,
                       const net::Network& network,
                       const crypto::CryptoStats& crypto_base,
                       const fault::FaultInjector* injector = nullptr,
                       const fault::ChurnInjector* churn = nullptr,
                       crypto::CipherKind cipher = crypto::CipherKind::kXtea);

// iPDA layer: IpdaStats as agg.* instruments, plus the round's phase
// spans — query.dissemination, slicing, assembly, aggregation,
// verification — derived from the config's deterministic phase schedule
// (agg/ipda/config.h), with verification closing at the simulator's
// current time.
void CollectIpdaMetrics(sim::Simulator& simulator, const IpdaStats& stats,
                        const IpdaConfig& config);

}  // namespace ipda::agg

#endif  // IPDA_AGG_RUN_METRICS_H_
