// Graphviz/CSV export of deployments and the constructed disjoint trees,
// for debugging protocols and making paper-style pictures (cf. Fig. 1).

#ifndef IPDA_AGG_EXPORT_H_
#define IPDA_AGG_EXPORT_H_

#include <string>

#include "agg/ipda/protocol.h"
#include "net/topology.h"
#include "util/status.h"

namespace ipda::agg {

// Undirected connectivity graph with node positions (`pos` attributes are
// meters; render with `neato -n`).
std::string TopologyToDot(const net::Topology& topology);

// The red and blue aggregation trees after a run: nodes colored by role
// (red/blue aggregator, leaf gray, base station black, unreached hollow),
// tree edges solid and child->parent directed. Call after the simulation
// finished (roles final).
std::string IpdaTreesToDot(const IpdaProtocol& protocol,
                           const net::Topology& topology);

// One CSV row per node: id,x,y,role,parent,hop,covered,participated.
std::string IpdaRolesToCsv(const IpdaProtocol& protocol,
                           const net::Topology& topology);

// Writes `content` to `path` (overwrites).
util::Status WriteTextFile(const std::string& path,
                           const std::string& content);

}  // namespace ipda::agg

#endif  // IPDA_AGG_EXPORT_H_
