#include "agg/export.h"

#include <cstdarg>
#include <cstdio>

namespace ipda::agg {
namespace {

void AppendF(std::string& out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string& out, const char* format, ...) {
  char buf[256];
  va_list args;
  va_start(args, format);
  std::vsnprintf(buf, sizeof(buf), format, args);
  va_end(args);
  out += buf;
}

const char* RoleFillColor(NodeRole role) {
  switch (role) {
    case NodeRole::kRedAggregator:
      return "indianred1";
    case NodeRole::kBlueAggregator:
      return "steelblue1";
    case NodeRole::kLeaf:
      return "gray80";
    case NodeRole::kBaseStation:
      return "black";
    case NodeRole::kExcluded:
      return "khaki";
    case NodeRole::kUndecided:
      return "white";
  }
  return "white";
}

}  // namespace

std::string TopologyToDot(const net::Topology& topology) {
  std::string out = "graph topology {\n  node [shape=point];\n";
  for (net::NodeId id = 0; id < topology.node_count(); ++id) {
    const net::Point2D& p = topology.position(id);
    AppendF(out, "  n%u [pos=\"%.1f,%.1f\"];\n", id, p.x, p.y);
  }
  for (net::NodeId a = 0; a < topology.node_count(); ++a) {
    for (net::NodeId b : topology.neighbors(a)) {
      if (a < b) AppendF(out, "  n%u -- n%u;\n", a, b);
    }
  }
  out += "}\n";
  return out;
}

std::string IpdaTreesToDot(const IpdaProtocol& protocol,
                           const net::Topology& topology) {
  std::string out =
      "digraph ipda_trees {\n  node [shape=circle, style=filled, "
      "width=0.15, label=\"\"];\n";
  for (net::NodeId id = 0; id < topology.node_count(); ++id) {
    const net::Point2D& p = topology.position(id);
    const NodeRole role = id == net::kBaseStationId
                              ? NodeRole::kBaseStation
                              : protocol.builder(id).role();
    AppendF(out, "  n%u [pos=\"%.1f,%.1f\", fillcolor=%s];\n", id, p.x,
            p.y, RoleFillColor(role));
  }
  for (net::NodeId id = 1; id < topology.node_count(); ++id) {
    const TreeBuilder& builder = protocol.builder(id);
    const NodeRole role = builder.role();
    if (role != NodeRole::kRedAggregator &&
        role != NodeRole::kBlueAggregator) {
      continue;
    }
    AppendF(out, "  n%u -> n%u [color=%s];\n", id, builder.parent(),
            role == NodeRole::kRedAggregator ? "red" : "blue");
  }
  out += "}\n";
  return out;
}

std::string IpdaRolesToCsv(const IpdaProtocol& protocol,
                           const net::Topology& topology) {
  std::string out = "id,x,y,role,parent,hop,covered,participated\n";
  for (net::NodeId id = 0; id < topology.node_count(); ++id) {
    const net::Point2D& p = topology.position(id);
    if (id == net::kBaseStationId) {
      AppendF(out, "%u,%.2f,%.2f,base-station,,0,1,0\n", id, p.x, p.y);
      continue;
    }
    const TreeBuilder& builder = protocol.builder(id);
    const NodeRole role = builder.role();
    const bool is_aggregator = role == NodeRole::kRedAggregator ||
                               role == NodeRole::kBlueAggregator;
    AppendF(out, "%u,%.2f,%.2f,%s,", id, p.x, p.y, NodeRoleName(role));
    if (is_aggregator) {
      AppendF(out, "%u,%u,", builder.parent(), builder.hop());
    } else {
      out += ",,";
    }
    AppendF(out, "%d,%d\n", builder.covered() ? 1 : 0,
            protocol.participated(id) ? 1 : 0);
  }
  return out;
}

util::Status WriteTextFile(const std::string& path,
                           const std::string& content) {
  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) {
    return util::UnavailableError("cannot open " + path + " for writing");
  }
  const size_t written = std::fwrite(content.data(), 1, content.size(),
                                     file);
  const int close_result = std::fclose(file);
  if (written != content.size() || close_result != 0) {
    return util::UnavailableError("short write to " + path);
  }
  return util::OkStatus();
}

}  // namespace ipda::agg
