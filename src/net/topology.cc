#include "net/topology.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/check.h"

namespace ipda::net {

util::Result<Topology> Topology::Build(std::vector<Point2D> positions,
                                       double range) {
  if (range <= 0.0) {
    return util::InvalidArgumentError("transmission range must be positive");
  }
  if (positions.empty()) {
    return util::InvalidArgumentError("topology needs at least one node");
  }
  const size_t n = positions.size();
  std::vector<std::vector<NodeId>> adjacency(n);
  const double range_sq = range * range;
  // O(n^2) pair scan; fine for the paper's N <= 1000 scale.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (DistanceSquared(positions[i], positions[j]) <= range_sq) {
        adjacency[i].push_back(static_cast<NodeId>(j));
        adjacency[j].push_back(static_cast<NodeId>(i));
      }
    }
  }
  return Topology(std::move(positions), range, std::move(adjacency));
}

util::Result<Topology> Topology::RandomGeometric(
    const DeploymentConfig& config, double range, util::Rng& rng) {
  IPDA_ASSIGN_OR_RETURN(std::vector<Point2D> positions,
                        UniformDeployment(config, rng));
  return Build(std::move(positions), range);
}

util::Result<Topology> Topology::RegularRing(size_t n, size_t d) {
  if (d == 0 || d % 2 != 0 || d >= n) {
    return util::InvalidArgumentError(
        "regular ring requires even degree d with 0 < d < n");
  }
  constexpr double kRadius = 1000.0;
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  std::vector<Point2D> positions;
  positions.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double theta = kTwoPi * static_cast<double>(i) /
                         static_cast<double>(n);
    positions.push_back(
        Point2D{kRadius * std::cos(theta), kRadius * std::sin(theta)});
  }
  std::vector<std::vector<NodeId>> adjacency(n);
  const size_t half = d / 2;
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 1; k <= half; ++k) {
      const NodeId fwd = static_cast<NodeId>((i + k) % n);
      adjacency[i].push_back(fwd);
      adjacency[fwd].push_back(static_cast<NodeId>(i));
    }
  }
  for (auto& list : adjacency) std::sort(list.begin(), list.end());
  // Range is nominal here: adjacency was constructed directly.
  return Topology(std::move(positions), 1.0, std::move(adjacency));
}

Topology::Topology(std::vector<Point2D> positions, double range,
                   const std::vector<std::vector<NodeId>>& adjacency)
    : positions_(std::move(positions)), range_(range) {
  const size_t n = adjacency.size();
  offsets_.resize(n + 1);
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    offsets_[i] = static_cast<uint32_t>(total);
    total += adjacency[i].size();
  }
  offsets_[n] = static_cast<uint32_t>(total);
  flat_.reserve(total);
  for (const auto& list : adjacency) {
    flat_.insert(flat_.end(), list.begin(), list.end());
  }
}

bool Topology::AreNeighbors(NodeId a, NodeId b) const {
  IPDA_DCHECK(a < node_count() && b < node_count());
  // Neighbor lists are sorted ascending by construction.
  const NeighborSpan list = neighbors(a);
  return std::binary_search(list.begin(), list.end(), b);
}

double Topology::AverageDegree() const {
  if (positions_.empty()) return 0.0;
  return static_cast<double>(flat_.size()) /
         static_cast<double>(positions_.size());
}

size_t Topology::MinDegree() const {
  if (positions_.empty()) return 0;
  size_t best = SIZE_MAX;
  for (NodeId i = 0; i < node_count(); ++i) best = std::min(best, degree(i));
  return best;
}

size_t Topology::MaxDegree() const {
  size_t best = 0;
  for (NodeId i = 0; i < node_count(); ++i) best = std::max(best, degree(i));
  return best;
}

std::vector<uint32_t> Topology::HopCounts() const {
  std::vector<uint32_t> hops(node_count(), UINT32_MAX);
  std::queue<NodeId> frontier;
  hops[kBaseStationId] = 0;
  frontier.push(kBaseStationId);
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : neighbors(u)) {
      if (hops[v] == UINT32_MAX) {
        hops[v] = hops[u] + 1;
        frontier.push(v);
      }
    }
  }
  return hops;
}

bool Topology::IsConnected() const {
  for (uint32_t h : HopCounts()) {
    if (h == UINT32_MAX) return false;
  }
  return true;
}

}  // namespace ipda::net
