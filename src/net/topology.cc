#include "net/topology.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/check.h"

namespace ipda::net {
namespace {

util::Status ValidateBuild(const std::vector<Point2D>& positions,
                           double range) {
  if (range <= 0.0) {
    return util::InvalidArgumentError("transmission range must be positive");
  }
  if (positions.empty()) {
    return util::InvalidArgumentError("topology needs at least one node");
  }
  return util::OkStatus();
}

}  // namespace

util::Result<Topology> Topology::Build(std::vector<Point2D> positions,
                                       double range) {
  IPDA_RETURN_IF_ERROR(ValidateBuild(positions, range));
  const size_t n = positions.size();
  // Split into the SoA arrays first so the grid and the distance loop both
  // stream the coordinate columns.
  std::vector<double> xs(n), ys(n);
  for (size_t i = 0; i < n; ++i) {
    xs[i] = positions[i].x;
    ys[i] = positions[i].y;
  }
  SpatialHash grid(xs.data(), ys.data(), n, range);
  const double range_sq = range * range;
  // One sweep over cell blocks straight into CSR form, exploiting edge
  // symmetry: each node keeps only candidates with LARGER ids (half the
  // edge records, and the self-pair drops out for free). The candidate
  // block is gathered once per CELL (not once per node, amortizing the
  // bucket walk over every member); candidate coordinates are copied
  // into contiguous scratch so the distance loop streams instead of
  // chasing ids. Only the ~half-degree larger-lists ever need sorting —
  // the smaller-neighbor half of every list is reconstructed afterwards
  // by scattering the larger-lists in global id order, which lands each
  // target's entries ascending by construction — so the sort cost is a
  // per-node insertion-depth sort of ~k/2 ids instead of a per-cell
  // candidate-block sort. The final CSR bytes are exactly the
  // brute-force build's.
  std::vector<uint32_t> candidates;
  std::vector<double> cand_xs, cand_ys;
  std::vector<NodeId> scratch;
  size_t scratch_len = 0;
  // Node i's LARGER-id neighbors occupy scratch[span_start[i] ..+ len],
  // with len accumulated in larger_len[i].
  std::vector<uint32_t> span_start(n, 0);
  std::vector<uint32_t> larger_len(n, 0);
  std::vector<uint32_t> offsets(n + 1, 0);
  for (size_t c = 0; c < grid.cell_count(); ++c) {
    const std::vector<uint32_t>& members = grid.cell_members(c);
    if (members.empty()) continue;
    candidates.clear();
    grid.CellCandidates(c, range, xs.data(), ys.data(), candidates);
    const size_t k = candidates.size();
    cand_xs.resize(k);
    cand_ys.resize(k);
    for (size_t t = 0; t < k; ++t) {
      cand_xs[t] = xs[candidates[t]];
      cand_ys[t] = ys[candidates[t]];
    }
    // Room for the worst case (every candidate accepted for every
    // member) so the inner loop can run branchless stream compaction:
    // write unconditionally, advance by the predicate. The accept branch
    // is ~1/6-taken here — mispredicting it per candidate costs more
    // than the always-taken store.
    if (scratch.size() < scratch_len + members.size() * k) {
      scratch.resize(scratch_len + members.size() * k);
    }
    for (uint32_t i : members) {
      const double xi = xs[i], yi = ys[i];
      span_start[i] = static_cast<uint32_t>(scratch_len);
      NodeId* out = scratch.data() + scratch_len;
      size_t accepted = 0;
      for (size_t t = 0; t < k; ++t) {
        const double dx = xi - cand_xs[t];
        const double dy = yi - cand_ys[t];
        out[accepted] = static_cast<NodeId>(candidates[t]);
        accepted += static_cast<size_t>(
            (candidates[t] > i) & (dx * dx + dy * dy <= range_sq));
      }
      // Candidates arrive bucket-run-ordered, not globally sorted; the
      // accepted half-list is tiny, so sort it here.
      std::sort(out, out + accepted);
      larger_len[i] = static_cast<uint32_t>(accepted);
      scratch_len += accepted;
    }
  }
  // Total degree = larger-list length + incoming count from smaller ids.
  for (size_t i = 0; i < n; ++i) {
    offsets[i + 1] += larger_len[i];
    const NodeId* larger = scratch.data() + span_start[i];
    for (uint32_t t = 0; t < larger_len[i]; ++t) ++offsets[larger[t] + 1];
  }
  for (size_t i = 0; i < n; ++i) offsets[i + 1] += offsets[i];
  std::vector<NodeId> flat(offsets[n]);
  std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  // Scatter the smaller-id halves first: iterating sources in ascending
  // id order lands every target's entries ascending, and all of them
  // precede the (strictly larger) ids appended from the scratch spans.
  for (size_t i = 0; i < n; ++i) {
    const NodeId* larger = scratch.data() + span_start[i];
    for (uint32_t t = 0; t < larger_len[i]; ++t) {
      flat[cursor[larger[t]]++] = static_cast<NodeId>(i);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    std::copy(scratch.begin() + span_start[i],
              scratch.begin() + span_start[i] + larger_len[i],
              flat.begin() + cursor[i]);
  }
  Topology topology(std::move(xs), std::move(ys), range, std::move(offsets),
                    std::move(flat));
  topology.grid_ = std::move(grid);
  return topology;
}

util::Result<Topology> Topology::BuildBruteForce(
    std::vector<Point2D> positions, double range) {
  IPDA_RETURN_IF_ERROR(ValidateBuild(positions, range));
  const size_t n = positions.size();
  std::vector<std::vector<NodeId>> adjacency(n);
  const double range_sq = range * range;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (DistanceSquared(positions[i], positions[j]) <= range_sq) {
        adjacency[i].push_back(static_cast<NodeId>(j));
        adjacency[j].push_back(static_cast<NodeId>(i));
      }
    }
  }
  return Topology(std::move(positions), range, adjacency);
}

util::Result<Topology> Topology::RandomGeometric(
    const DeploymentConfig& config, double range, util::Rng& rng) {
  IPDA_ASSIGN_OR_RETURN(std::vector<Point2D> positions,
                        UniformDeployment(config, rng));
  return Build(std::move(positions), range);
}

util::Result<Topology> Topology::RegularRing(size_t n, size_t d) {
  if (d == 0 || d % 2 != 0 || d >= n) {
    return util::InvalidArgumentError(
        "regular ring requires even degree d with 0 < d < n");
  }
  constexpr double kRadius = 1000.0;
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  std::vector<Point2D> positions;
  positions.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double theta = kTwoPi * static_cast<double>(i) /
                         static_cast<double>(n);
    positions.push_back(
        Point2D{kRadius * std::cos(theta), kRadius * std::sin(theta)});
  }
  std::vector<std::vector<NodeId>> adjacency(n);
  const size_t half = d / 2;
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 1; k <= half; ++k) {
      const NodeId fwd = static_cast<NodeId>((i + k) % n);
      adjacency[i].push_back(fwd);
      adjacency[fwd].push_back(static_cast<NodeId>(i));
    }
  }
  for (auto& list : adjacency) std::sort(list.begin(), list.end());
  // Range is nominal here: adjacency was constructed directly.
  return Topology(std::move(positions), 1.0, adjacency);
}

Topology::Topology(std::vector<double> xs, std::vector<double> ys,
                   double range, std::vector<uint32_t> offsets,
                   std::vector<NodeId> flat)
    : xs_(std::move(xs)),
      ys_(std::move(ys)),
      range_(range),
      offsets_(std::move(offsets)),
      flat_(std::move(flat)) {}

Topology::Topology(std::vector<Point2D> positions, double range,
                   const std::vector<std::vector<NodeId>>& adjacency)
    : range_(range) {
  const size_t n = adjacency.size();
  xs_.resize(n);
  ys_.resize(n);
  for (size_t i = 0; i < n; ++i) {
    xs_[i] = positions[i].x;
    ys_[i] = positions[i].y;
  }
  offsets_.resize(n + 1);
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    offsets_[i] = static_cast<uint32_t>(total);
    total += adjacency[i].size();
  }
  offsets_[n] = static_cast<uint32_t>(total);
  flat_.reserve(total);
  for (const auto& list : adjacency) {
    flat_.insert(flat_.end(), list.begin(), list.end());
  }
}

std::vector<Point2D> Topology::positions() const {
  std::vector<Point2D> out;
  out.reserve(node_count());
  for (size_t i = 0; i < node_count(); ++i) {
    out.push_back(Point2D{xs_[i], ys_[i]});
  }
  return out;
}

void Topology::EnsureGrid() {
  if (grid_.empty()) {
    grid_ = SpatialHash(xs_.data(), ys_.data(), node_count(), range_);
  }
}

void Topology::EnsureActiveFlags() {
  if (active_.empty()) active_.assign(node_count(), 1);
}

std::vector<NodeId>& Topology::PatchFor(NodeId id) {
  if (patch_index_.empty()) patch_index_.assign(node_count(), -1);
  int32_t p = patch_index_[id];
  if (p < 0) {
    p = static_cast<int32_t>(patch_lists_.size());
    // Materialize from the CSR arrays directly: patch_index_[id] is still
    // -1, so neighbors(id) would read the same bytes.
    const uint32_t begin = offsets_[id];
    patch_lists_.emplace_back(flat_.begin() + begin,
                              flat_.begin() + offsets_[id + 1]);
    patch_index_[id] = p;
  }
  return patch_lists_[p];
}

void Topology::RefreshEdges(NodeId id) {
  // Desired edge set under the unit-disk model, active nodes only. The
  // grid prunes the scan to the cell block around `id`; the exact
  // predicate below matches the build, so churn re-links agree with a
  // from-scratch rebuild bit for bit.
  EnsureGrid();
  scratch_.clear();
  grid_.Candidates(position(id), range_, scratch_);
  std::vector<NodeId> desired;
  const double range_sq = range_ * range_;
  for (NodeId v : scratch_) {
    if (v == id || !active(v)) continue;
    const double dx = xs_[id] - xs_[v];
    const double dy = ys_[id] - ys_[v];
    if (dx * dx + dy * dy <= range_sq) desired.push_back(v);
  }
  std::sort(desired.begin(), desired.end());
  // Current edges, copied before any PatchFor call can reallocate the
  // overlay storage a NeighborSpan would point into.
  const NeighborSpan span = neighbors(id);
  const std::vector<NodeId> current(span.begin(), span.end());
  for (NodeId v : current) {
    if (!std::binary_search(desired.begin(), desired.end(), v)) {
      std::vector<NodeId>& list = PatchFor(v);
      const auto it = std::lower_bound(list.begin(), list.end(), id);
      if (it != list.end() && *it == id) list.erase(it);
    }
  }
  for (NodeId v : desired) {
    if (!std::binary_search(current.begin(), current.end(), v)) {
      std::vector<NodeId>& list = PatchFor(v);
      const auto it = std::lower_bound(list.begin(), list.end(), id);
      if (it == list.end() || *it != id) list.insert(it, id);
    }
  }
  PatchFor(id) = std::move(desired);
}

void Topology::DetachNode(NodeId id) {
  IPDA_DCHECK(id < node_count());
  EnsureActiveFlags();
  active_[id] = 0;
  const NeighborSpan span = neighbors(id);
  const std::vector<NodeId> current(span.begin(), span.end());
  for (NodeId v : current) {
    std::vector<NodeId>& list = PatchFor(v);
    const auto it = std::lower_bound(list.begin(), list.end(), id);
    if (it != list.end() && *it == id) list.erase(it);
  }
  PatchFor(id).clear();
}

void Topology::AttachNode(NodeId id) {
  IPDA_DCHECK(id < node_count());
  EnsureActiveFlags();
  active_[id] = 1;
  RefreshEdges(id);
}

void Topology::MoveNode(NodeId id, Point2D to) {
  IPDA_DCHECK(id < node_count());
  if (!grid_.empty()) grid_.Move(id, position(id), to);
  xs_[id] = to.x;
  ys_[id] = to.y;
  if (!active(id)) return;  // Rejoin at the new position picks this up.
  RefreshEdges(id);
}

void Topology::Compact() {
  if (patch_index_.empty()) return;
  std::vector<std::vector<NodeId>> adjacency(node_count());
  for (NodeId i = 0; i < node_count(); ++i) {
    const NeighborSpan span = neighbors(i);
    adjacency[i].assign(span.begin(), span.end());
  }
  offsets_.assign(node_count() + 1, 0);
  size_t total = 0;
  for (size_t i = 0; i < adjacency.size(); ++i) {
    offsets_[i] = static_cast<uint32_t>(total);
    total += adjacency[i].size();
  }
  offsets_[adjacency.size()] = static_cast<uint32_t>(total);
  flat_.clear();
  flat_.reserve(total);
  for (const auto& list : adjacency) {
    flat_.insert(flat_.end(), list.begin(), list.end());
  }
  patch_index_.clear();
  patch_lists_.clear();
}

bool Topology::AreNeighbors(NodeId a, NodeId b) const {
  IPDA_DCHECK(a < node_count() && b < node_count());
  // Neighbor lists are sorted ascending by construction.
  const NeighborSpan list = neighbors(a);
  return std::binary_search(list.begin(), list.end(), b);
}

double Topology::AverageDegree() const {
  if (xs_.empty()) return 0.0;
  if (!mutated()) {
    return static_cast<double>(flat_.size()) /
           static_cast<double>(xs_.size());
  }
  size_t total = 0;
  for (NodeId i = 0; i < node_count(); ++i) total += degree(i);
  return static_cast<double>(total) / static_cast<double>(xs_.size());
}

size_t Topology::MinDegree() const {
  if (xs_.empty()) return 0;
  size_t best = SIZE_MAX;
  for (NodeId i = 0; i < node_count(); ++i) best = std::min(best, degree(i));
  return best;
}

size_t Topology::MaxDegree() const {
  size_t best = 0;
  for (NodeId i = 0; i < node_count(); ++i) best = std::max(best, degree(i));
  return best;
}

std::vector<uint32_t> Topology::HopCounts() const {
  std::vector<uint32_t> hops(node_count(), UINT32_MAX);
  std::queue<NodeId> frontier;
  hops[kBaseStationId] = 0;
  frontier.push(kBaseStationId);
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : neighbors(u)) {
      if (hops[v] == UINT32_MAX) {
        hops[v] = hops[u] + 1;
        frontier.push(v);
      }
    }
  }
  return hops;
}

bool Topology::IsConnected() const {
  for (uint32_t h : HopCounts()) {
    if (h == UINT32_MAX) return false;
  }
  return true;
}

}  // namespace ipda::net
