#include "net/topology.h"

#include <algorithm>
#include <cmath>
#include <queue>

#include "util/check.h"

namespace ipda::net {

util::Result<Topology> Topology::Build(std::vector<Point2D> positions,
                                       double range) {
  if (range <= 0.0) {
    return util::InvalidArgumentError("transmission range must be positive");
  }
  if (positions.empty()) {
    return util::InvalidArgumentError("topology needs at least one node");
  }
  const size_t n = positions.size();
  std::vector<std::vector<NodeId>> adjacency(n);
  const double range_sq = range * range;
  // O(n^2) pair scan; fine for the paper's N <= 1000 scale.
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (DistanceSquared(positions[i], positions[j]) <= range_sq) {
        adjacency[i].push_back(static_cast<NodeId>(j));
        adjacency[j].push_back(static_cast<NodeId>(i));
      }
    }
  }
  return Topology(std::move(positions), range, std::move(adjacency));
}

util::Result<Topology> Topology::RandomGeometric(
    const DeploymentConfig& config, double range, util::Rng& rng) {
  IPDA_ASSIGN_OR_RETURN(std::vector<Point2D> positions,
                        UniformDeployment(config, rng));
  return Build(std::move(positions), range);
}

util::Result<Topology> Topology::RegularRing(size_t n, size_t d) {
  if (d == 0 || d % 2 != 0 || d >= n) {
    return util::InvalidArgumentError(
        "regular ring requires even degree d with 0 < d < n");
  }
  constexpr double kRadius = 1000.0;
  constexpr double kTwoPi = 6.283185307179586476925286766559;
  std::vector<Point2D> positions;
  positions.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    const double theta = kTwoPi * static_cast<double>(i) /
                         static_cast<double>(n);
    positions.push_back(
        Point2D{kRadius * std::cos(theta), kRadius * std::sin(theta)});
  }
  std::vector<std::vector<NodeId>> adjacency(n);
  const size_t half = d / 2;
  for (size_t i = 0; i < n; ++i) {
    for (size_t k = 1; k <= half; ++k) {
      const NodeId fwd = static_cast<NodeId>((i + k) % n);
      adjacency[i].push_back(fwd);
      adjacency[fwd].push_back(static_cast<NodeId>(i));
    }
  }
  for (auto& list : adjacency) std::sort(list.begin(), list.end());
  // Range is nominal here: adjacency was constructed directly.
  return Topology(std::move(positions), 1.0, std::move(adjacency));
}

Topology::Topology(std::vector<Point2D> positions, double range,
                   const std::vector<std::vector<NodeId>>& adjacency)
    : positions_(std::move(positions)), range_(range) {
  const size_t n = adjacency.size();
  offsets_.resize(n + 1);
  size_t total = 0;
  for (size_t i = 0; i < n; ++i) {
    offsets_[i] = static_cast<uint32_t>(total);
    total += adjacency[i].size();
  }
  offsets_[n] = static_cast<uint32_t>(total);
  flat_.reserve(total);
  for (const auto& list : adjacency) {
    flat_.insert(flat_.end(), list.begin(), list.end());
  }
}

void Topology::EnsureActiveFlags() {
  if (active_.empty()) active_.assign(node_count(), 1);
}

std::vector<NodeId>& Topology::PatchFor(NodeId id) {
  if (patch_index_.empty()) patch_index_.assign(node_count(), -1);
  int32_t p = patch_index_[id];
  if (p < 0) {
    p = static_cast<int32_t>(patch_lists_.size());
    // Materialize from the CSR arrays directly: patch_index_[id] is still
    // -1, so neighbors(id) would read the same bytes.
    const uint32_t begin = offsets_[id];
    patch_lists_.emplace_back(flat_.begin() + begin,
                              flat_.begin() + offsets_[id + 1]);
    patch_index_[id] = p;
  }
  return patch_lists_[p];
}

void Topology::RefreshEdges(NodeId id) {
  // Desired edge set under the unit-disk model, active nodes only.
  std::vector<NodeId> desired;
  const double range_sq = range_ * range_;
  for (NodeId v = 0; v < node_count(); ++v) {
    if (v == id || !active(v)) continue;
    if (DistanceSquared(positions_[id], positions_[v]) <= range_sq) {
      desired.push_back(v);
    }
  }
  // Current edges, copied before any PatchFor call can reallocate the
  // overlay storage a NeighborSpan would point into.
  const NeighborSpan span = neighbors(id);
  const std::vector<NodeId> current(span.begin(), span.end());
  for (NodeId v : current) {
    if (!std::binary_search(desired.begin(), desired.end(), v)) {
      std::vector<NodeId>& list = PatchFor(v);
      const auto it = std::lower_bound(list.begin(), list.end(), id);
      if (it != list.end() && *it == id) list.erase(it);
    }
  }
  for (NodeId v : desired) {
    if (!std::binary_search(current.begin(), current.end(), v)) {
      std::vector<NodeId>& list = PatchFor(v);
      const auto it = std::lower_bound(list.begin(), list.end(), id);
      if (it == list.end() || *it != id) list.insert(it, id);
    }
  }
  PatchFor(id) = std::move(desired);
}

void Topology::DetachNode(NodeId id) {
  IPDA_DCHECK(id < node_count());
  EnsureActiveFlags();
  active_[id] = 0;
  const NeighborSpan span = neighbors(id);
  const std::vector<NodeId> current(span.begin(), span.end());
  for (NodeId v : current) {
    std::vector<NodeId>& list = PatchFor(v);
    const auto it = std::lower_bound(list.begin(), list.end(), id);
    if (it != list.end() && *it == id) list.erase(it);
  }
  PatchFor(id).clear();
}

void Topology::AttachNode(NodeId id) {
  IPDA_DCHECK(id < node_count());
  EnsureActiveFlags();
  active_[id] = 1;
  RefreshEdges(id);
}

void Topology::MoveNode(NodeId id, Point2D to) {
  IPDA_DCHECK(id < node_count());
  positions_[id] = to;
  if (!active(id)) return;  // Rejoin at the new position picks this up.
  RefreshEdges(id);
}

void Topology::Compact() {
  if (patch_index_.empty()) return;
  std::vector<std::vector<NodeId>> adjacency(node_count());
  for (NodeId i = 0; i < node_count(); ++i) {
    const NeighborSpan span = neighbors(i);
    adjacency[i].assign(span.begin(), span.end());
  }
  offsets_.assign(node_count() + 1, 0);
  size_t total = 0;
  for (size_t i = 0; i < adjacency.size(); ++i) {
    offsets_[i] = static_cast<uint32_t>(total);
    total += adjacency[i].size();
  }
  offsets_[adjacency.size()] = static_cast<uint32_t>(total);
  flat_.clear();
  flat_.reserve(total);
  for (const auto& list : adjacency) {
    flat_.insert(flat_.end(), list.begin(), list.end());
  }
  patch_index_.clear();
  patch_lists_.clear();
}

bool Topology::AreNeighbors(NodeId a, NodeId b) const {
  IPDA_DCHECK(a < node_count() && b < node_count());
  // Neighbor lists are sorted ascending by construction.
  const NeighborSpan list = neighbors(a);
  return std::binary_search(list.begin(), list.end(), b);
}

double Topology::AverageDegree() const {
  if (positions_.empty()) return 0.0;
  if (!mutated()) {
    return static_cast<double>(flat_.size()) /
           static_cast<double>(positions_.size());
  }
  size_t total = 0;
  for (NodeId i = 0; i < node_count(); ++i) total += degree(i);
  return static_cast<double>(total) / static_cast<double>(positions_.size());
}

size_t Topology::MinDegree() const {
  if (positions_.empty()) return 0;
  size_t best = SIZE_MAX;
  for (NodeId i = 0; i < node_count(); ++i) best = std::min(best, degree(i));
  return best;
}

size_t Topology::MaxDegree() const {
  size_t best = 0;
  for (NodeId i = 0; i < node_count(); ++i) best = std::max(best, degree(i));
  return best;
}

std::vector<uint32_t> Topology::HopCounts() const {
  std::vector<uint32_t> hops(node_count(), UINT32_MAX);
  std::queue<NodeId> frontier;
  hops[kBaseStationId] = 0;
  frontier.push(kBaseStationId);
  while (!frontier.empty()) {
    NodeId u = frontier.front();
    frontier.pop();
    for (NodeId v : neighbors(u)) {
      if (hops[v] == UINT32_MAX) {
        hops[v] = hops[u] + 1;
        frontier.push(v);
      }
    }
  }
  return hops;
}

bool Topology::IsConnected() const {
  for (uint32_t h : HopCounts()) {
    if (h == UINT32_MAX) return false;
  }
  return true;
}

}  // namespace ipda::net
