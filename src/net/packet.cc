#include "net/packet.h"

namespace ipda::net {

std::string PacketTypeName(PacketType type) {
  switch (type) {
    case PacketType::kHello:
      return "HELLO";
    case PacketType::kSlice:
      return "SLICE";
    case PacketType::kAggregate:
      return "AGGREGATE";
    case PacketType::kQuery:
      return "QUERY";
    case PacketType::kControl:
      return "CONTROL";
    case PacketType::kAck:
      return "ACK";
    case PacketType::kJoin:
      return "JOIN";
    case PacketType::kRelay:
      return "RELAY";
  }
  return "UNKNOWN";
}

}  // namespace ipda::net
