// Connectivity graph over deployed nodes.
//
// Two nodes share a (bidirectional) wireless link iff their distance is at
// most the transmission range — the unit-disk model the paper assumes.
// Node ids index into the position vector; id 0 is the base station.

#ifndef IPDA_NET_TOPOLOGY_H_
#define IPDA_NET_TOPOLOGY_H_

#include <cstdint>
#include <vector>

#include "net/deployment.h"
#include "net/geometry.h"
#include "util/random.h"
#include "util/result.h"

namespace ipda::net {

using NodeId = uint32_t;
constexpr NodeId kBaseStationId = 0;
constexpr NodeId kBroadcastId = UINT32_MAX;

class Topology {
 public:
  // Builds the unit-disk graph; range must be positive.
  static util::Result<Topology> Build(std::vector<Point2D> positions,
                                      double range);

  // Uniform-random deployment + unit-disk graph in one call.
  static util::Result<Topology> RandomGeometric(
      const DeploymentConfig& config, double range, util::Rng& rng);

  // A ring lattice where every node links to its d/2 nearest neighbors on
  // each side: the "d-regular graph" used in the paper's analysis examples.
  // Requires d even, 0 < d < n. Positions are placed on a circle.
  static util::Result<Topology> RegularRing(size_t n, size_t d);

  size_t node_count() const { return positions_.size(); }
  double range() const { return range_; }
  const std::vector<Point2D>& positions() const { return positions_; }
  const Point2D& position(NodeId id) const { return positions_[id]; }

  const std::vector<NodeId>& neighbors(NodeId id) const {
    return adjacency_[id];
  }
  size_t degree(NodeId id) const { return adjacency_[id].size(); }
  bool AreNeighbors(NodeId a, NodeId b) const;

  // Mean degree over all nodes.
  double AverageDegree() const;
  size_t MinDegree() const;
  size_t MaxDegree() const;

  // True if every node can reach the base station.
  bool IsConnected() const;

  // Hop distance from the base station to every node (UINT32_MAX if
  // unreachable).
  std::vector<uint32_t> HopCounts() const;

 private:
  Topology(std::vector<Point2D> positions, double range,
           std::vector<std::vector<NodeId>> adjacency)
      : positions_(std::move(positions)),
        range_(range),
        adjacency_(std::move(adjacency)) {}

  std::vector<Point2D> positions_;
  double range_ = 0.0;
  std::vector<std::vector<NodeId>> adjacency_;
};

}  // namespace ipda::net

#endif  // IPDA_NET_TOPOLOGY_H_
