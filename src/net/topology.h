// Connectivity graph over deployed nodes.
//
// Two nodes share a (bidirectional) wireless link iff their distance is at
// most the transmission range — the unit-disk model the paper assumes.
// Node ids index into the position arrays; id 0 is the base station.
//
// City-scale layout (DESIGN.md §13): positions are stored as SoA
// coordinate arrays (xs_/ys_) indexed by the CSR node id, and the graph is
// built through a uniform-grid SpatialHash, so construction and churn
// re-links are O(N·k) instead of the old O(N²) all-pairs scan. The grid
// only prunes candidates; the exact distance predicate is unchanged, so
// the adjacency (and every golden trace downstream) is byte-identical to
// the brute-force build, which survives as BuildBruteForce for property
// tests and the city_scale bench's speedup referee.

#ifndef IPDA_NET_TOPOLOGY_H_
#define IPDA_NET_TOPOLOGY_H_

#include <cstdint>
#include <vector>

#include "net/deployment.h"
#include "net/geometry.h"
#include "net/spatial_hash.h"
#include "util/random.h"
#include "util/result.h"

namespace ipda::net {

using NodeId = uint32_t;
constexpr NodeId kBaseStationId = 0;
constexpr NodeId kBroadcastId = UINT32_MAX;

// Borrowed view of one node's neighbor list inside the CSR arrays. Cheap
// to copy; valid as long as the owning Topology lives.
class NeighborSpan {
 public:
  NeighborSpan(const NodeId* data, size_t size) : data_(data), size_(size) {}

  const NodeId* begin() const { return data_; }
  const NodeId* end() const { return data_ + size_; }
  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  NodeId operator[](size_t i) const { return data_[i]; }

 private:
  const NodeId* data_;
  size_t size_;
};

class Topology {
 public:
  // Builds the unit-disk graph via the spatial hash; range must be
  // positive.
  static util::Result<Topology> Build(std::vector<Point2D> positions,
                                      double range);

  // The O(N²) all-pairs reference build. Produces a Topology identical to
  // Build() (the property suite asserts exactly this); kept for tests and
  // for the city_scale bench's speedup measurement.
  static util::Result<Topology> BuildBruteForce(
      std::vector<Point2D> positions, double range);

  // Uniform-random deployment + unit-disk graph in one call.
  static util::Result<Topology> RandomGeometric(
      const DeploymentConfig& config, double range, util::Rng& rng);

  // A ring lattice where every node links to its d/2 nearest neighbors on
  // each side: the "d-regular graph" used in the paper's analysis examples.
  // Requires d even, 0 < d < n. Positions are placed on a circle.
  static util::Result<Topology> RegularRing(size_t n, size_t d);

  size_t node_count() const { return xs_.size(); }
  double range() const { return range_; }
  // Materialized AoS copy of the SoA coordinate arrays (cold-path helper
  // for tests and exports; hot paths use position()/x()/y()).
  std::vector<Point2D> positions() const;
  Point2D position(NodeId id) const { return Point2D{xs_[id], ys_[id]}; }
  double x(NodeId id) const { return xs_[id]; }
  double y(NodeId id) const { return ys_[id]; }

  // Neighbor ids in ascending order. Adjacency is stored CSR-style (flat
  // offsets + one contiguous neighbor array), so iterating a node's
  // neighborhood is a linear walk with no per-node vector indirection.
  // Mid-round churn mutations live in a patch overlay: a node touched by a
  // mutation is redirected to its patched list, everyone else stays on the
  // CSR arrays, and the steady state (no mutations) pays one branch.
  NeighborSpan neighbors(NodeId id) const {
    if (!patch_index_.empty()) {
      const int32_t p = patch_index_[id];
      if (p >= 0) {
        const std::vector<NodeId>& list = patch_lists_[p];
        return NeighborSpan(list.data(), list.size());
      }
    }
    const uint32_t begin = offsets_[id];
    return NeighborSpan(flat_.data() + begin, offsets_[id + 1] - begin);
  }
  size_t degree(NodeId id) const { return neighbors(id).size(); }
  bool AreNeighbors(NodeId a, NodeId b) const;

  // --- Mid-round topology churn (DESIGN.md §12) ---
  // Detached nodes keep their slot (ids stay stable) but have no edges.
  bool active(NodeId id) const {
    return active_.empty() || active_[id] != 0;
  }
  // True while the patch overlay holds uncompacted mutations.
  bool mutated() const { return !patch_index_.empty(); }
  // Removes every edge of `id` and marks it inactive (leave / pre-join).
  void DetachNode(NodeId id);
  // Marks `id` active and recomputes its unit-disk edges against the
  // currently active nodes (join / rejoin).
  void AttachNode(NodeId id);
  // Updates `id`'s position; if active, refreshes its unit-disk edge set.
  void MoveNode(NodeId id, Point2D to);
  // Folds the patch overlay back into CSR form (round boundary). Active
  // flags persist; only the adjacency representation is rebuilt.
  void Compact();

  // Mean degree over all nodes.
  double AverageDegree() const;
  size_t MinDegree() const;
  size_t MaxDegree() const;

  // True if every node can reach the base station.
  bool IsConnected() const;

  // Hop distance from the base station to every node (UINT32_MAX if
  // unreachable).
  std::vector<uint32_t> HopCounts() const;

 private:
  // Flattens the per-node lists (already sorted ascending) into CSR form.
  Topology(std::vector<Point2D> positions, double range,
           const std::vector<std::vector<NodeId>>& adjacency);

  // Adopts already-built SoA columns and CSR arrays (Build()'s direct
  // construction path — no intermediate per-node lists).
  Topology(std::vector<double> xs, std::vector<double> ys, double range,
           std::vector<uint32_t> offsets, std::vector<NodeId> flat);

  // Builds the grid over the current coordinates on first churn use
  // (Build() installs it eagerly; RegularRing and brute-force graphs get
  // it lazily so the steady state never pays for it).
  void EnsureGrid();

  // Returns `id`'s mutable patched neighbor list, materializing it from
  // the CSR arrays on first touch.
  std::vector<NodeId>& PatchFor(NodeId id);
  void EnsureActiveFlags();
  // Recomputes `id`'s unit-disk edge set against active nodes and patches
  // both sides of every gained/lost edge. O(k) via the spatial hash.
  void RefreshEdges(NodeId id);

  // SoA node coordinates, indexed by CSR node id.
  std::vector<double> xs_;
  std::vector<double> ys_;
  double range_ = 0.0;
  // Uniform-grid index over xs_/ys_ (empty until EnsureGrid).
  SpatialHash grid_;
  std::vector<uint32_t> scratch_;  // Candidate buffer for grid queries.
  // CSR adjacency: node i's neighbors are flat_[offsets_[i]..offsets_[i+1]).
  std::vector<uint32_t> offsets_;
  std::vector<NodeId> flat_;
  // Churn patch overlay. Empty patch_index_ = pristine CSR (the hot path);
  // patch_index_[i] >= 0 redirects node i to patch_lists_[patch_index_[i]].
  std::vector<int32_t> patch_index_;
  std::vector<std::vector<NodeId>> patch_lists_;
  std::vector<uint8_t> active_;  // Empty = everyone active.
};

}  // namespace ipda::net

#endif  // IPDA_NET_TOPOLOGY_H_
