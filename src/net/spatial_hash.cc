#include "net/spatial_hash.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace ipda::net {
namespace {

// Cap on cells per axis: ~2*sqrt(N) keeps the table O(N) even when the
// bounding box spans thousands of range-lengths (e.g. RegularRing's
// nominal range of 1 m over a 2 km circle).
size_t AxisCap(size_t count) {
  const size_t cap = 2 * static_cast<size_t>(
                             std::ceil(std::sqrt(static_cast<double>(
                                 count == 0 ? 1 : count))));
  return std::max<size_t>(cap, 1);
}

}  // namespace

SpatialHash::SpatialHash(const double* xs, const double* ys, size_t count,
                         double cell_size) {
  IPDA_CHECK_GT(cell_size, 0.0);
  IPDA_CHECK_GT(count, 0u);
  double max_x = xs[0], max_y = ys[0];
  min_x_ = xs[0];
  min_y_ = ys[0];
  for (size_t i = 1; i < count; ++i) {
    min_x_ = std::min(min_x_, xs[i]);
    min_y_ = std::min(min_y_, ys[i]);
    max_x = std::max(max_x, xs[i]);
    max_y = std::max(max_y, ys[i]);
  }
  const size_t cap = AxisCap(count);
  const auto axis_cells = [cap, cell_size](double extent) {
    if (extent <= 0.0) return size_t{1};
    const double want = std::ceil(extent / cell_size);
    return std::min(cap, static_cast<size_t>(std::max(want, 1.0)));
  };
  nx_ = axis_cells(max_x - min_x_);
  ny_ = axis_cells(max_y - min_y_);
  // Effective cell edge (>= cell_size when the cap did not bite).
  const double cell_x =
      std::max((max_x - min_x_) / static_cast<double>(nx_), cell_size);
  const double cell_y =
      std::max((max_y - min_y_) / static_cast<double>(ny_), cell_size);
  inv_cell_x_ = 1.0 / cell_x;
  inv_cell_y_ = 1.0 / cell_y;
  // Two-pass binning with exact reserves: one realloc per occupied cell
  // instead of log(k) growth reallocations each.
  std::vector<uint32_t> home(count);
  std::vector<uint32_t> counts(nx_ * ny_, 0);
  for (size_t i = 0; i < count; ++i) {
    home[i] = static_cast<uint32_t>(CellOf(xs[i], ys[i]));
    ++counts[home[i]];
  }
  cells_.resize(nx_ * ny_);
  for (size_t c = 0; c < cells_.size(); ++c) cells_[c].reserve(counts[c]);
  for (size_t i = 0; i < count; ++i) {
    cells_[home[i]].push_back(static_cast<uint32_t>(i));
  }
}

size_t SpatialHash::ClampedX(double x) const {
  const double f = std::floor((x - min_x_) * inv_cell_x_);
  if (!(f > 0.0)) return 0;  // Also catches NaN.
  const size_t c = static_cast<size_t>(f);
  return std::min(c, nx_ - 1);
}

size_t SpatialHash::ClampedY(double y) const {
  const double f = std::floor((y - min_y_) * inv_cell_y_);
  if (!(f > 0.0)) return 0;
  const size_t c = static_cast<size_t>(f);
  return std::min(c, ny_ - 1);
}

void SpatialHash::Move(uint32_t id, Point2D from, Point2D to) {
  const size_t old_cell = CellOf(from.x, from.y);
  const size_t new_cell = CellOf(to.x, to.y);
  if (old_cell == new_cell) return;
  std::vector<uint32_t>& old_bucket = cells_[old_cell];
  const auto it = std::find(old_bucket.begin(), old_bucket.end(), id);
  IPDA_DCHECK(it != old_bucket.end());
  old_bucket.erase(it);
  cells_[new_cell].push_back(id);
}

void SpatialHash::Candidates(Point2D center, double radius,
                             std::vector<uint32_t>& out) const {
  const size_t cx_lo = ClampedX(center.x - radius);
  const size_t cx_hi = ClampedX(center.x + radius);
  const size_t cy_lo = ClampedY(center.y - radius);
  const size_t cy_hi = ClampedY(center.y + radius);
  for (size_t cy = cy_lo; cy <= cy_hi; ++cy) {
    for (size_t cx = cx_lo; cx <= cx_hi; ++cx) {
      const std::vector<uint32_t>& bucket = cells_[cy * nx_ + cx];
      out.insert(out.end(), bucket.begin(), bucket.end());
    }
  }
}

void SpatialHash::CellCandidates(size_t c, double radius, const double* xs,
                                 const double* ys,
                                 std::vector<uint32_t>& out) const {
  const std::vector<uint32_t>& members = cells_[c];
  if (members.empty()) return;
  // Bound the members' true coordinates rather than the cell's nominal
  // box: border cells hold clamped outliers whose positions lie outside
  // it, and ClampedX/Y are monotone, so [min-r, max+r] through the same
  // lookup covers every member's per-point block.
  double lo_x = xs[members[0]], hi_x = lo_x;
  double lo_y = ys[members[0]], hi_y = lo_y;
  for (uint32_t id : members) {
    lo_x = std::min(lo_x, xs[id]);
    hi_x = std::max(hi_x, xs[id]);
    lo_y = std::min(lo_y, ys[id]);
    hi_y = std::max(hi_y, ys[id]);
  }
  const size_t cx_lo = ClampedX(lo_x - radius);
  const size_t cx_hi = ClampedX(hi_x + radius);
  const size_t cy_lo = ClampedY(lo_y - radius);
  const size_t cy_hi = ClampedY(hi_y + radius);
  for (size_t cy = cy_lo; cy <= cy_hi; ++cy) {
    for (size_t cx = cx_lo; cx <= cx_hi; ++cx) {
      const std::vector<uint32_t>& bucket = cells_[cy * nx_ + cx];
      out.insert(out.end(), bucket.begin(), bucket.end());
    }
  }
}

}  // namespace ipda::net
