#include "net/counters.h"

#include <numeric>

namespace ipda::net {

NodeCounters& NodeCounters::operator+=(const NodeCounters& other) {
  frames_sent += other.frames_sent;
  bytes_sent += other.bytes_sent;
  ack_frames_sent += other.ack_frames_sent;
  ack_bytes_sent += other.ack_bytes_sent;
  frames_delivered += other.frames_delivered;
  bytes_delivered += other.bytes_delivered;
  frames_collided += other.frames_collided;
  frames_missed_tx += other.frames_missed_tx;
  mac_drops += other.mac_drops;
  arq_retries += other.arq_retries;
  injected_drops += other.injected_drops;
  injected_dup += other.injected_dup;
  recoveries += other.recoveries;
  energy_tx_j += other.energy_tx_j;
  energy_rx_j += other.energy_rx_j;
  return *this;
}

CounterBoard::CounterBoard(size_t node_count)
    : frames_sent_(node_count, 0),
      bytes_sent_(node_count, 0),
      ack_frames_sent_(node_count, 0),
      ack_bytes_sent_(node_count, 0),
      frames_delivered_(node_count, 0),
      bytes_delivered_(node_count, 0),
      frames_collided_(node_count, 0),
      frames_missed_tx_(node_count, 0),
      mac_drops_(node_count, 0),
      arq_retries_(node_count, 0),
      injected_drops_(node_count, 0),
      injected_dup_(node_count, 0),
      recoveries_(node_count, 0),
      energy_tx_j_(node_count, 0.0),
      energy_rx_j_(node_count, 0.0) {}

NodeCounters CounterBoard::at(NodeId id) const {
  NodeCounters c;
  c.frames_sent = frames_sent_[id];
  c.bytes_sent = bytes_sent_[id];
  c.ack_frames_sent = ack_frames_sent_[id];
  c.ack_bytes_sent = ack_bytes_sent_[id];
  c.frames_delivered = frames_delivered_[id];
  c.bytes_delivered = bytes_delivered_[id];
  c.frames_collided = frames_collided_[id];
  c.frames_missed_tx = frames_missed_tx_[id];
  c.mac_drops = mac_drops_[id];
  c.arq_retries = arq_retries_[id];
  c.injected_drops = injected_drops_[id];
  c.injected_dup = injected_dup_[id];
  c.recoveries = recoveries_[id];
  c.energy_tx_j = energy_tx_j_[id];
  c.energy_rx_j = energy_rx_j_[id];
  return c;
}

NodeCounters CounterBoard::Totals() const {
  const auto sum_u64 = [](const std::vector<uint64_t>& column) {
    return std::accumulate(column.begin(), column.end(), uint64_t{0});
  };
  const auto sum_f64 = [](const std::vector<double>& column) {
    return std::accumulate(column.begin(), column.end(), 0.0);
  };
  NodeCounters total;
  total.frames_sent = sum_u64(frames_sent_);
  total.bytes_sent = sum_u64(bytes_sent_);
  total.ack_frames_sent = sum_u64(ack_frames_sent_);
  total.ack_bytes_sent = sum_u64(ack_bytes_sent_);
  total.frames_delivered = sum_u64(frames_delivered_);
  total.bytes_delivered = sum_u64(bytes_delivered_);
  total.frames_collided = sum_u64(frames_collided_);
  total.frames_missed_tx = sum_u64(frames_missed_tx_);
  total.mac_drops = sum_u64(mac_drops_);
  total.arq_retries = sum_u64(arq_retries_);
  total.injected_drops = sum_u64(injected_drops_);
  total.injected_dup = sum_u64(injected_dup_);
  total.recoveries = sum_u64(recoveries_);
  total.energy_tx_j = sum_f64(energy_tx_j_);
  total.energy_rx_j = sum_f64(energy_rx_j_);
  return total;
}

void CounterBoard::Reset() {
  const auto zero_u64 = [](std::vector<uint64_t>& column) {
    std::fill(column.begin(), column.end(), 0);
  };
  zero_u64(frames_sent_);
  zero_u64(bytes_sent_);
  zero_u64(ack_frames_sent_);
  zero_u64(ack_bytes_sent_);
  zero_u64(frames_delivered_);
  zero_u64(bytes_delivered_);
  zero_u64(frames_collided_);
  zero_u64(frames_missed_tx_);
  zero_u64(mac_drops_);
  zero_u64(arq_retries_);
  zero_u64(injected_drops_);
  zero_u64(injected_dup_);
  zero_u64(recoveries_);
  std::fill(energy_tx_j_.begin(), energy_tx_j_.end(), 0.0);
  std::fill(energy_rx_j_.begin(), energy_rx_j_.end(), 0.0);
}

}  // namespace ipda::net
