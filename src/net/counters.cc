#include "net/counters.h"

namespace ipda::net {

NodeCounters& NodeCounters::operator+=(const NodeCounters& other) {
  frames_sent += other.frames_sent;
  bytes_sent += other.bytes_sent;
  ack_frames_sent += other.ack_frames_sent;
  ack_bytes_sent += other.ack_bytes_sent;
  frames_delivered += other.frames_delivered;
  bytes_delivered += other.bytes_delivered;
  frames_collided += other.frames_collided;
  frames_missed_tx += other.frames_missed_tx;
  mac_drops += other.mac_drops;
  arq_retries += other.arq_retries;
  injected_drops += other.injected_drops;
  injected_dup += other.injected_dup;
  recoveries += other.recoveries;
  energy_tx_j += other.energy_tx_j;
  energy_rx_j += other.energy_rx_j;
  return *this;
}

NodeCounters CounterBoard::Totals() const {
  NodeCounters total;
  for (const auto& c : per_node_) total += c;
  return total;
}

void CounterBoard::Reset() {
  for (auto& c : per_node_) c = NodeCounters{};
}

}  // namespace ipda::net
