// Uniform-grid spatial index over node positions.
//
// Cells are sized to the radio range, so a unit-disk neighbor query visits
// at most the 3x3 cell block around a node instead of every node: the
// O(N^2) all-pairs scan becomes O(N*k) for k points per block. The grid is
// exact, not approximate — callers still apply the precise distance test,
// the grid only prunes candidates — so a graph built through it is
// byte-identical to the brute-force result.
//
// Grid dimensions are clamped to O(sqrt(N)) per axis so degenerate inputs
// (huge area, tiny range) cannot allocate an unbounded cell table; cells
// then cover more than one range-length and queries simply scan a wider
// block.

#ifndef IPDA_NET_SPATIAL_HASH_H_
#define IPDA_NET_SPATIAL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "net/geometry.h"

namespace ipda::net {

class SpatialHash {
 public:
  SpatialHash() = default;

  // Bins the SoA coordinate arrays with target cell edge `cell_size`
  // (the radio range). Both arrays must have `count` entries.
  SpatialHash(const double* xs, const double* ys, size_t count,
              double cell_size);

  bool empty() const { return cells_.empty(); }

  // Re-bins `id` after a position change. Positions outside the original
  // bounding box clamp into the border cells, which keeps queries exact
  // (cell lookup is monotone and clamped identically on both sides).
  void Move(uint32_t id, Point2D from, Point2D to);

  // Appends every id whose cell intersects the disk around `center` to
  // `out`, the node's own cell included. A superset of the true in-range
  // set: callers filter with the exact distance predicate.
  void Candidates(Point2D center, double radius,
                  std::vector<uint32_t>& out) const;

  // Bulk variant for cell-at-a-time builds: appends a superset of the
  // union of Candidates(p, radius) over every member p of cell `c`. The
  // block is derived from the members' actual coordinate min/max through
  // the same monotone clamped lookup as the per-point query, so the
  // superset guarantee is inherited, clamped border cells included.
  void CellCandidates(size_t c, double radius, const double* xs,
                      const double* ys, std::vector<uint32_t>& out) const;

  // Members of cell `c` in ascending id order (binning is id-ordered).
  const std::vector<uint32_t>& cell_members(size_t c) const {
    return cells_[c];
  }

  size_t cell_count() const { return cells_.size(); }

 private:
  size_t ClampedX(double x) const;
  size_t ClampedY(double y) const;
  size_t CellOf(double x, double y) const {
    return ClampedY(y) * nx_ + ClampedX(x);
  }

  double min_x_ = 0.0, min_y_ = 0.0;
  double inv_cell_x_ = 0.0, inv_cell_y_ = 0.0;
  size_t nx_ = 0, ny_ = 0;
  std::vector<std::vector<uint32_t>> cells_;
};

}  // namespace ipda::net

#endif  // IPDA_NET_SPATIAL_HASH_H_
