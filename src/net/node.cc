#include "net/node.h"

#include <utility>

namespace ipda::net {

Node::Node(NodeId id, sim::Simulator* sim, Channel* channel,
           CounterBoard* counters, util::Rng rng,
           const MacConfig& mac_config)
    : id_(id),
      sim_(sim),
      rng_(std::move(rng)),
      mac_(sim, channel, counters, id, rng_.Fork("mac"), mac_config) {}

void Node::Broadcast(PacketType type, util::Bytes payload) {
  Packet packet;
  packet.dst = kBroadcastId;
  packet.type = type;
  packet.payload = std::move(payload);
  Send(std::move(packet));
}

void Node::Unicast(NodeId dst, PacketType type, util::Bytes payload) {
  Packet packet;
  packet.dst = dst;
  packet.type = type;
  packet.payload = std::move(payload);
  Send(std::move(packet));
}

}  // namespace ipda::net
