// Per-node and network-wide traffic counters.
//
// Fig. 7 plots total bytes transmitted; Fig. 8's accuracy loss partially
// comes from collisions, so both are first-class counters here.

#ifndef IPDA_NET_COUNTERS_H_
#define IPDA_NET_COUNTERS_H_

#include <cstdint>
#include <vector>

#include "net/topology.h"

namespace ipda::net {

struct NodeCounters {
  uint64_t frames_sent = 0;      // All transmissions, ACKs included.
  uint64_t bytes_sent = 0;
  uint64_t ack_frames_sent = 0;  // MAC-layer ACK subset of the above.
  uint64_t ack_bytes_sent = 0;
  uint64_t frames_delivered = 0;   // Passed up to the application.
  uint64_t bytes_delivered = 0;
  uint64_t frames_collided = 0;    // Corrupted at this receiver.
  uint64_t frames_missed_tx = 0;   // Lost because receiver was transmitting.
  uint64_t mac_drops = 0;          // Gave up after max CSMA attempts.
  uint64_t arq_retries = 0;        // ACK-timeout retransmissions attempted.
  uint64_t injected_drops = 0;     // Vanished by fault-injected link loss.
  uint64_t injected_dup = 0;       // Extra copies from fault-injected dup.
  uint64_t recoveries = 0;         // Times this node came back from a crash.
  double energy_tx_j = 0.0;        // Radio energy spent transmitting.
  double energy_rx_j = 0.0;        // Radio energy spent receiving.

  double TotalEnergyJ() const { return energy_tx_j + energy_rx_j; }

  NodeCounters& operator+=(const NodeCounters& other);
};

class CounterBoard {
 public:
  explicit CounterBoard(size_t node_count) : per_node_(node_count) {}

  NodeCounters& at(NodeId id) { return per_node_[id]; }
  const NodeCounters& at(NodeId id) const { return per_node_[id]; }
  size_t node_count() const { return per_node_.size(); }

  // Sum over all nodes.
  NodeCounters Totals() const;

  void Reset();

 private:
  std::vector<NodeCounters> per_node_;
};

}  // namespace ipda::net

#endif  // IPDA_NET_COUNTERS_H_
