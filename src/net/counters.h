// Per-node and network-wide traffic counters.
//
// Fig. 7 plots total bytes transmitted; Fig. 8's accuracy loss partially
// comes from collisions, so both are first-class counters here.
//
// Storage is SoA (DESIGN.md §13): one dense column per counter, indexed by
// the CSR node id, instead of one 120-byte struct per node. Network-wide
// reductions (Totals, the metrics census) stream contiguous columns, and a
// 25k-node board is 15 flat arrays instead of a strided struct walk.
// NodeCounters survives as the value/aggregate type; at() hands out a
// reference bundle with the same field names, so call sites are unchanged.

#ifndef IPDA_NET_COUNTERS_H_
#define IPDA_NET_COUNTERS_H_

#include <cstdint>
#include <vector>

#include "net/topology.h"

namespace ipda::net {

struct NodeCounters {
  uint64_t frames_sent = 0;      // All transmissions, ACKs included.
  uint64_t bytes_sent = 0;
  uint64_t ack_frames_sent = 0;  // MAC-layer ACK subset of the above.
  uint64_t ack_bytes_sent = 0;
  uint64_t frames_delivered = 0;   // Passed up to the application.
  uint64_t bytes_delivered = 0;
  uint64_t frames_collided = 0;    // Corrupted at this receiver.
  uint64_t frames_missed_tx = 0;   // Lost because receiver was transmitting.
  uint64_t mac_drops = 0;          // Gave up after max CSMA attempts.
  uint64_t arq_retries = 0;        // ACK-timeout retransmissions attempted.
  uint64_t injected_drops = 0;     // Vanished by fault-injected link loss.
  uint64_t injected_dup = 0;       // Extra copies from fault-injected dup.
  uint64_t recoveries = 0;         // Times this node came back from a crash.
  double energy_tx_j = 0.0;        // Radio energy spent transmitting.
  double energy_rx_j = 0.0;        // Radio energy spent receiving.

  double TotalEnergyJ() const { return energy_tx_j + energy_rx_j; }

  NodeCounters& operator+=(const NodeCounters& other);
};

class CounterBoard {
 public:
  // Mutable view of one node's row across the SoA columns. Field names
  // mirror NodeCounters so `board.at(id).frames_sent += 1` reads the same
  // as the old AoS board.
  struct Row {
    uint64_t& frames_sent;
    uint64_t& bytes_sent;
    uint64_t& ack_frames_sent;
    uint64_t& ack_bytes_sent;
    uint64_t& frames_delivered;
    uint64_t& bytes_delivered;
    uint64_t& frames_collided;
    uint64_t& frames_missed_tx;
    uint64_t& mac_drops;
    uint64_t& arq_retries;
    uint64_t& injected_drops;
    uint64_t& injected_dup;
    uint64_t& recoveries;
    double& energy_tx_j;
    double& energy_rx_j;

    double TotalEnergyJ() const { return energy_tx_j + energy_rx_j; }
  };

  explicit CounterBoard(size_t node_count);

  Row at(NodeId id) {
    return Row{frames_sent_[id],    bytes_sent_[id],
               ack_frames_sent_[id], ack_bytes_sent_[id],
               frames_delivered_[id], bytes_delivered_[id],
               frames_collided_[id], frames_missed_tx_[id],
               mac_drops_[id],       arq_retries_[id],
               injected_drops_[id],  injected_dup_[id],
               recoveries_[id],      energy_tx_j_[id],
               energy_rx_j_[id]};
  }
  // Value snapshot of one node's row (readers only).
  NodeCounters at(NodeId id) const;
  size_t node_count() const { return frames_sent_.size(); }

  // Sum over all nodes (column-wise over the SoA arrays).
  NodeCounters Totals() const;

  void Reset();

 private:
  std::vector<uint64_t> frames_sent_;
  std::vector<uint64_t> bytes_sent_;
  std::vector<uint64_t> ack_frames_sent_;
  std::vector<uint64_t> ack_bytes_sent_;
  std::vector<uint64_t> frames_delivered_;
  std::vector<uint64_t> bytes_delivered_;
  std::vector<uint64_t> frames_collided_;
  std::vector<uint64_t> frames_missed_tx_;
  std::vector<uint64_t> mac_drops_;
  std::vector<uint64_t> arq_retries_;
  std::vector<uint64_t> injected_drops_;
  std::vector<uint64_t> injected_dup_;
  std::vector<uint64_t> recoveries_;
  std::vector<double> energy_tx_j_;
  std::vector<double> energy_rx_j_;
};

}  // namespace ipda::net

#endif  // IPDA_NET_COUNTERS_H_
