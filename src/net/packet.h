// Over-the-air frame model with byte accounting.
//
// Every transmission is physically a broadcast; `dst` is a filter applied by
// receivers (kBroadcastId accepts everywhere). `size_bytes()` drives both
// airtime (1 Mbps in the paper) and the communication-overhead metrics of
// Fig. 7, so the header size is part of the model, not cosmetics.

#ifndef IPDA_NET_PACKET_H_
#define IPDA_NET_PACKET_H_

#include <cstdint>
#include <string>

#include "net/topology.h"
#include "util/bytes.h"

namespace ipda::net {

// Protocol-level frame kinds. The net layer does not interpret these; they
// exist so protocol code and traces can dispatch without peeking payloads.
enum class PacketType : uint8_t {
  kHello = 1,        // Tree-construction flood (TAG and iPDA Phase I).
  kSlice = 2,        // Encrypted data slice (iPDA Phase II).
  kAggregate = 3,    // Intermediate aggregation result (Phase III / TAG).
  kQuery = 4,        // Base-station query dissemination.
  kControl = 5,      // Anything else (localization control, etc.).
  kAck = 6,          // Link-layer acknowledgement (MAC-internal).
  kJoin = 7,         // Late-join solicitation (mid-round churn admission).
  kRelay = 8,        // Degraded cross-tree relay of an orphaned partial.
};

std::string PacketTypeName(PacketType type);

// Fixed per-frame overhead: 2B frame control + 1B type + 4B src + 4B dst +
// 2B sequence + 2B length + 2B CRC = 17 bytes, a TinyOS-like framing.
constexpr size_t kFrameHeaderBytes = 17;

struct Packet {
  NodeId src = 0;
  NodeId dst = kBroadcastId;
  PacketType type = PacketType::kControl;
  util::Bytes payload;
  uint64_t uid = 0;  // Assigned by the channel at transmission time.
  uint64_t seq = 0;  // Sender-MAC sequence; stable across retransmissions.

  size_t size_bytes() const { return kFrameHeaderBytes + payload.size(); }
  bool IsBroadcast() const { return dst == kBroadcastId; }
};

}  // namespace ipda::net

#endif  // IPDA_NET_PACKET_H_
