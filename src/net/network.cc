#include "net/network.h"

#include <utility>

namespace ipda::net {

Network::Network(sim::Simulator* sim, Topology topology, PhyConfig phy_config,
                 MacConfig mac_config)
    : sim_(sim),
      topology_(std::move(topology)),
      counters_(topology_.node_count()),
      channel_(sim, &topology_, phy_config, &counters_) {
  nodes_.reserve(topology_.node_count());
  for (NodeId id = 0; id < topology_.node_count(); ++id) {
    nodes_.push_back(std::make_unique<Node>(
        id, sim, &channel_, &counters_, sim->ForkRng("node", id),
        mac_config));
  }
}

}  // namespace ipda::net
