// A sensor node: id + position + radio (MAC). Protocol logic attaches via
// the receive handler rather than subclassing, so one Network instance can
// host TAG, iPDA, or both across experiments.

#ifndef IPDA_NET_NODE_H_
#define IPDA_NET_NODE_H_

#include <memory>

#include "net/mac.h"
#include "net/packet.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "util/random.h"

namespace ipda::net {

class Node {
 public:
  Node(NodeId id, sim::Simulator* sim, Channel* channel,
       CounterBoard* counters, util::Rng rng, const MacConfig& mac_config);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  NodeId id() const { return id_; }
  bool IsBaseStation() const { return id_ == kBaseStationId; }

  // Queues a frame; src is stamped with this node's id by the MAC.
  void Send(Packet packet) { mac_.Send(std::move(packet)); }

  // Convenience: broadcast `payload` with the given type.
  void Broadcast(PacketType type, util::Bytes payload);
  // Convenience: addressed frame (still physically overhearable).
  void Unicast(NodeId dst, PacketType type, util::Bytes payload);

  void SetReceiveHandler(CsmaMac::ReceiveHandler handler) {
    mac_.SetReceiveHandler(std::move(handler));
  }

  void SetSendFailureHandler(CsmaMac::SendFailureHandler handler) {
    mac_.SetSendFailureHandler(std::move(handler));
  }

  CsmaMac& mac() { return mac_; }
  util::Rng& rng() { return rng_; }
  sim::Simulator& sim() { return *sim_; }

 private:
  NodeId id_;
  sim::Simulator* sim_;
  util::Rng rng_;
  CsmaMac mac_;
};

}  // namespace ipda::net

#endif  // IPDA_NET_NODE_H_
