// Sensor placement over the deployment area.
//
// The paper's evaluation deploys N nodes uniformly at random over a
// 400 m x 400 m square; the base station is node 0. A grid layout is also
// provided for tests that want predictable neighborhoods.

#ifndef IPDA_NET_DEPLOYMENT_H_
#define IPDA_NET_DEPLOYMENT_H_

#include <cstddef>
#include <vector>

#include "net/geometry.h"
#include "util/random.h"
#include "util/result.h"

namespace ipda::net {

enum class BaseStationPlacement {
  kCenter,   // Middle of the area (default; maximizes connectivity).
  kCorner,   // Origin corner.
  kRandom,   // Uniform like every other node.
};

struct DeploymentConfig {
  Area area{400.0, 400.0};     // Meters; the paper's evaluation area.
  size_t node_count = 400;     // Including the base station.
  BaseStationPlacement base_station = BaseStationPlacement::kCenter;
};

// Uniform-random placement. positions[0] is the base station.
util::Result<std::vector<Point2D>> UniformDeployment(
    const DeploymentConfig& config, util::Rng& rng);

// Evenly spaced grid (row-major), base station at index 0 per `config`.
// node_count is rounded down to the largest full grid.
util::Result<std::vector<Point2D>> GridDeployment(
    const DeploymentConfig& config);

}  // namespace ipda::net

#endif  // IPDA_NET_DEPLOYMENT_H_
