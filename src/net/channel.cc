#include "net/channel.h"

#include <cmath>
#include <memory>
#include <utility>

#include "util/check.h"
#include "util/pool.h"

namespace ipda::net {

Channel::Channel(sim::Simulator* sim, const Topology* topology,
                 PhyConfig config, CounterBoard* counters)
    : sim_(sim),
      topology_(topology),
      config_(config),
      counters_(counters),
      radio_(topology != nullptr ? topology->node_count() : 0) {
  IPDA_CHECK(sim != nullptr);
  IPDA_CHECK(topology != nullptr);
  IPDA_CHECK(counters != nullptr);
  IPDA_CHECK_GT(config_.data_rate_bps, 0.0);
  const size_t n = topology_->node_count();
  delivery_.resize(n);
  active_rx_.resize(n);
}

void Channel::FailNode(NodeId id) {
  IPDA_CHECK_LT(id, radio_.node_count());
  radio_.failed[id] = 1;
  // Anything the radio was mid-receiving dies with it; marking here keeps
  // the frame lost even if the node recovers before the frame ends.
  for (auto& rx : active_rx_[id]) rx.dead_rx = true;
}

void Channel::RecoverNode(NodeId id) {
  IPDA_CHECK_LT(id, radio_.node_count());
  if (radio_.failed[id] == 0) return;
  radio_.failed[id] = 0;
  counters_->at(id).recoveries += 1;
}

void Channel::SetLinkFaultHook(LinkFaultHook hook) {
  link_fault_ = std::move(hook);
}

void Channel::SetDeliveryHandler(NodeId id, DeliveryHandler handler) {
  IPDA_CHECK_LT(id, delivery_.size());
  delivery_[id] = std::move(handler);
}

void Channel::SetOverhearHandler(OverhearHandler handler) {
  overhear_ = std::move(handler);
}

sim::SimTime Channel::AirTime(size_t bytes) const {
  const double seconds =
      static_cast<double>(bytes) * 8.0 / config_.data_rate_bps;
  return sim::SecondsF(seconds);
}

sim::SimTime Channel::PropagationDelay(NodeId a, NodeId b) const {
  const double meters = Distance(topology_->position(a),
                                 topology_->position(b));
  const sim::SimTime delay = sim::SecondsF(meters /
                                           config_.propagation_speed);
  // Never zero: reception must strictly follow the transmit decision.
  return delay > 0 ? delay : sim::Nanoseconds(1);
}

void Channel::StartTransmission(NodeId sender, Packet packet) {
  IPDA_CHECK_LT(sender, topology_->node_count());
  if (radio_.failed[sender] != 0) return;  // Dead radio: nothing leaves the node.
  packet.uid = next_uid_++;
  const sim::SimTime now = sim_->now();
  const sim::SimTime airtime = AirTime(packet.size_bytes());

  auto sender_counters = counters_->at(sender);
  sender_counters.frames_sent += 1;
  sender_counters.bytes_sent += packet.size_bytes();
  sender_counters.energy_tx_j +=
      config_.energy.TxCost(packet.size_bytes(), topology_->range());
  if (packet.type == PacketType::kAck) {
    sender_counters.ack_frames_sent += 1;
    sender_counters.ack_bytes_sent += packet.size_bytes();
  }

  // Half duplex: anything this node was receiving is now lost.
  for (auto& rx : active_rx_[sender]) rx.lost_to_tx = true;
  radio_.tx_until[sender] = std::max(radio_.tx_until[sender], now + airtime);

  // Pool-backed allocate_shared: Packet and control block recycle through
  // the run's arena. The arena lives on the Simulator (not here) because
  // queued delivery events copy `shared` and the scheduler outlives the
  // Channel at teardown.
  std::shared_ptr<const Packet> shared = std::allocate_shared<Packet>(
      util::PoolAllocator<Packet>(&sim_->arena()), std::move(packet));
  for (NodeId receiver : topology_->neighbors(sender)) {
    LinkFault fault;
    if (link_fault_) fault = link_fault_(sender, receiver, *shared);
    if (fault.drop) {
      counters_->at(receiver).injected_drops += 1;
      continue;
    }
    IPDA_CHECK_GE(fault.extra_delay, 0);
    const sim::SimTime prop =
        PropagationDelay(sender, receiver) + fault.extra_delay;
    const uint64_t uid = shared->uid;
    sim_->At(now + prop, [this, receiver, uid, shared] {
      BeginReception(receiver, uid, shared);
    });
    sim_->At(now + prop + airtime, [this, receiver, uid] {
      EndReception(receiver, uid);
    });
    if (fault.duplicate) {
      // A stale second copy abuts the first (end == start, so the copies
      // do not collide with each other). MAC-level dedup decides its fate.
      counters_->at(receiver).injected_dup += 1;
      sim_->At(now + prop + airtime, [this, receiver, uid, shared] {
        BeginReception(receiver, uid, shared);
      });
      sim_->At(now + prop + 2 * airtime, [this, receiver, uid] {
        EndReception(receiver, uid);
      });
    }
  }
}

bool Channel::IsBusy(NodeId id) const {
  IPDA_CHECK_LT(id, active_rx_.size());
  if (radio_.tx_until[id] > sim_->now()) return true;
  return !active_rx_[id].empty();
}

void Channel::BeginReception(NodeId receiver, uint64_t uid,
                             std::shared_ptr<const Packet> packet) {
  auto& actives = active_rx_[receiver];
  ActiveReception rx{uid, std::move(packet)};
  if (radio_.tx_until[receiver] > sim_->now()) rx.lost_to_tx = true;
  if (radio_.failed[receiver] != 0) rx.dead_rx = true;
  if (!actives.empty()) {
    rx.collided = true;
    for (auto& other : actives) other.collided = true;
  }
  actives.push_back(std::move(rx));
}

void Channel::EndReception(NodeId receiver, uint64_t uid) {
  auto& actives = active_rx_[receiver];
  for (size_t i = 0; i < actives.size(); ++i) {
    if (actives[i].uid != uid) continue;
    ActiveReception rx = std::move(actives[i]);
    actives.erase(actives.begin() + static_cast<long>(i));
    auto rc = counters_->at(receiver);
    // The radio listens for the whole frame whatever its fate.
    rc.energy_rx_j += config_.energy.RxCost(rx.packet->size_bytes());
    if (rx.lost_to_tx) {
      rc.frames_missed_tx += 1;
      return;
    }
    if (rx.collided) {
      rc.frames_collided += 1;
      return;
    }
    // Crashed now, or crashed at any point while the frame was arriving
    // (dead_rx survives a mid-frame recovery): the frame vanishes.
    if (rx.dead_rx || radio_.failed[receiver] != 0) return;
    if (overhear_) overhear_(OverhearEvent{receiver, *rx.packet});
    if (rx.packet->dst == receiver || rx.packet->IsBroadcast()) {
      rc.frames_delivered += 1;
      rc.bytes_delivered += rx.packet->size_bytes();
      if (delivery_[receiver]) delivery_[receiver](*rx.packet);
    }
    return;
  }
  // Reception record must exist; EndReception fires exactly once per Begin.
  IPDA_CHECK(false);
}

}  // namespace ipda::net
