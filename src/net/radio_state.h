// SoA per-node radio state (DESIGN.md §13).
//
// The channel's hot per-node flags — "is this radio transmitting until T"
// and "has this node crash-failed" — live in dense columns indexed by the
// CSR node id, not in per-node objects. Carrier-sense and fan-out loops
// touch one byte / one word per node, and a 25k-node board is two flat
// allocations. (vector<uint8_t>, not vector<bool>: the bit proxy costs a
// shift+mask on the busiest branch in the simulator.)

#ifndef IPDA_NET_RADIO_STATE_H_
#define IPDA_NET_RADIO_STATE_H_

#include <cstdint>
#include <vector>

#include "sim/time.h"

namespace ipda::net {

struct RadioBoard {
  // tx_until[id]: the node's own transmission occupies the air until this
  // sim time (half-duplex carrier state).
  std::vector<sim::SimTime> tx_until;
  // failed[id] != 0: crash-failed; the radio neither sends nor receives.
  std::vector<uint8_t> failed;

  explicit RadioBoard(size_t node_count)
      : tx_until(node_count, sim::kSimTimeZero), failed(node_count, 0) {}

  size_t node_count() const { return failed.size(); }
};

}  // namespace ipda::net

#endif  // IPDA_NET_RADIO_STATE_H_
