// First-order radio energy model (Heinzelman et al., the standard WSN
// accounting): transmitting k bits over distance d costs
//   E_tx = E_elec·k + ε_amp·k·d²,
// receiving k bits costs E_rx = E_elec·k. The paper motivates aggregation
// by energy ("save resource consumptions and increase the lifetime of
// WSNs"); this model turns the byte counters into joules so protocols can
// be compared on lifetime, not just bandwidth.

#ifndef IPDA_NET_ENERGY_H_
#define IPDA_NET_ENERGY_H_

#include <cstddef>

namespace ipda::net {

struct EnergyModel {
  double e_elec_j_per_bit = 50e-9;     // Electronics: 50 nJ/bit.
  double e_amp_j_per_bit_m2 = 100e-12; // Amplifier: 100 pJ/bit/m².

  // Cost of clocking out `bytes` at transmit power reaching `range` m.
  double TxCost(size_t bytes, double range_m) const {
    const double bits = static_cast<double>(bytes) * 8.0;
    return e_elec_j_per_bit * bits +
           e_amp_j_per_bit_m2 * bits * range_m * range_m;
  }

  // Cost of receiving `bytes` (paid for every frame on the air in range,
  // corrupted or not — the radio listens regardless).
  double RxCost(size_t bytes) const {
    return e_elec_j_per_bit * static_cast<double>(bytes) * 8.0;
  }
};

}  // namespace ipda::net

#endif  // IPDA_NET_ENERGY_H_
