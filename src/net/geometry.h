// 2-D geometry primitives for node placement.

#ifndef IPDA_NET_GEOMETRY_H_
#define IPDA_NET_GEOMETRY_H_

namespace ipda::net {

struct Point2D {
  double x = 0.0;
  double y = 0.0;

  friend bool operator==(const Point2D& a, const Point2D& b) {
    return a.x == b.x && a.y == b.y;
  }
};

double DistanceSquared(const Point2D& a, const Point2D& b);
double Distance(const Point2D& a, const Point2D& b);

// Axis-aligned rectangle with corner at the origin.
struct Area {
  double width = 0.0;
  double height = 0.0;

  bool Contains(const Point2D& p) const {
    return p.x >= 0.0 && p.x <= width && p.y >= 0.0 && p.y <= height;
  }
  Point2D Center() const { return Point2D{width / 2.0, height / 2.0}; }
};

}  // namespace ipda::net

#endif  // IPDA_NET_GEOMETRY_H_
