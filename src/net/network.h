// Network: topology + channel + one node per vertex, wired to a simulator.
// The standard substrate every protocol and experiment runs on.

#ifndef IPDA_NET_NETWORK_H_
#define IPDA_NET_NETWORK_H_

#include <memory>
#include <vector>

#include "net/channel.h"
#include "net/counters.h"
#include "net/node.h"
#include "net/topology.h"
#include "sim/simulator.h"

namespace ipda::net {

class Network {
 public:
  Network(sim::Simulator* sim, Topology topology, PhyConfig phy_config = {},
          MacConfig mac_config = {});

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  size_t size() const { return nodes_.size(); }
  Node& node(NodeId id) { return *nodes_[id]; }
  const Node& node(NodeId id) const { return *nodes_[id]; }
  Node& base_station() { return *nodes_[kBaseStationId]; }

  const Topology& topology() const { return topology_; }
  // Mutable access for mid-round churn (fault::ChurnInjector). The channel
  // reads the same object, so mutations affect reachability immediately.
  Topology* mutable_topology() { return &topology_; }
  Channel& channel() { return channel_; }
  CounterBoard& counters() { return counters_; }
  const CounterBoard& counters() const { return counters_; }
  sim::Simulator& sim() { return *sim_; }

 private:
  sim::Simulator* sim_;
  Topology topology_;
  CounterBoard counters_;
  Channel channel_;
  std::vector<std::unique_ptr<Node>> nodes_;
};

}  // namespace ipda::net

#endif  // IPDA_NET_NETWORK_H_
