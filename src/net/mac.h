// CSMA/CA medium access with 802.11-style link-layer ARQ.
//
// Outgoing frames queue FIFO. Before each transmission the MAC waits a
// uniform random backoff, then carrier-senses: a clear channel transmits,
// a busy one re-arms with a doubled (capped) window; `max_attempts` busy
// senses drop the frame. Unicast frames are acknowledged: the receiver
// returns an ACK after SIFS, the sender retransmits on ACK timeout up to
// `max_retries` times, and receivers deduplicate retransmissions by
// per-sender sequence number. Broadcasts are fire-and-forget — which is
// why HELLO floods stay lossy while slices and partials almost always get
// through, matching the ns-2/802.11 stack the paper evaluated on.

#ifndef IPDA_NET_MAC_H_
#define IPDA_NET_MAC_H_

#include <deque>
#include <functional>
#include <unordered_map>

#include "net/channel.h"
#include "net/counters.h"
#include "net/packet.h"
#include "sim/simulator.h"
#include "util/random.h"

namespace ipda::net {

struct MacConfig {
  sim::SimTime backoff_min = sim::Microseconds(100);
  sim::SimTime initial_window = sim::Milliseconds(1);  // First-try spread.
  sim::SimTime backoff_max = sim::Milliseconds(8);     // Window cap.
  int max_attempts = 8;        // Busy carrier senses before dropping.
  double window_growth = 2.0;  // Busy sense multiplies the window by this.
  bool arq = true;             // Acknowledge + retransmit unicast frames.
  int max_retries = 5;         // Retransmissions per unicast frame.
  sim::SimTime ack_timeout = sim::Microseconds(400);
  sim::SimTime sifs = sim::Microseconds(10);
};

class CsmaMac {
 public:
  using ReceiveHandler = std::function<void(const Packet&)>;
  // Invoked with the abandoned frame when the MAC gives up on it: either
  // `max_attempts` busy carrier senses, or a unicast that exhausted its
  // ARQ retries without an ACK. The latter is the liveness signal upper
  // layers use to detect a dead peer. The handler may call Send() to
  // re-route the payload; the failed frame is already off the queue.
  using SendFailureHandler = std::function<void(const Packet&)>;

  CsmaMac(sim::Simulator* sim, Channel* channel, CounterBoard* counters,
          NodeId id, util::Rng rng, MacConfig config);

  CsmaMac(const CsmaMac&) = delete;
  CsmaMac& operator=(const CsmaMac&) = delete;

  // Queues a frame for transmission. src is forced to this node's id.
  void Send(Packet packet);

  // Application-layer sink for intact frames addressed to this node
  // (deduplicated; ACKs are consumed internally).
  void SetReceiveHandler(ReceiveHandler handler);

  // Optional notification for frames the MAC dropped (see above).
  void SetSendFailureHandler(SendFailureHandler handler);

  NodeId id() const { return id_; }
  size_t queue_depth() const { return queue_.size(); }
  bool idle() const { return !armed_ && !transmitting_ && queue_.empty(); }

 private:
  void OnDelivery(const Packet& packet);
  void MaybeArm();
  void Attempt();
  void TransmitHead();
  void OnTransmitComplete(uint64_t seq);
  void OnAckTimeout(uint64_t seq);
  void ResolveHead(bool delivered_unknown);
  void DropHead();
  void SendAck(NodeId to, uint64_t seq);

  sim::Simulator* sim_;
  Channel* channel_;
  CounterBoard* counters_;
  NodeId id_;
  util::Rng rng_;
  MacConfig config_;
  ReceiveHandler receive_handler_;
  SendFailureHandler send_failure_handler_;
  std::deque<Packet> queue_;  // Head is the in-flight frame.
  uint64_t next_seq_ = 1;
  bool armed_ = false;         // Backoff timer pending.
  bool transmitting_ = false;  // Frame currently on the air.
  bool awaiting_ack_ = false;
  sim::EventId ack_timer_ = sim::kInvalidEventId;
  int attempts_ = 0;  // Busy senses for the current transmission attempt.
  int retries_ = 0;   // Retransmissions of the head frame.
  sim::SimTime window_;
  std::unordered_map<NodeId, uint64_t> last_delivered_seq_;
};

}  // namespace ipda::net

#endif  // IPDA_NET_MAC_H_
