#include "net/mac.h"

#include <algorithm>
#include <utility>

#include "util/check.h"

namespace ipda::net {

CsmaMac::CsmaMac(sim::Simulator* sim, Channel* channel,
                 CounterBoard* counters, NodeId id, util::Rng rng,
                 MacConfig config)
    : sim_(sim),
      channel_(channel),
      counters_(counters),
      id_(id),
      rng_(std::move(rng)),
      config_(config),
      window_(config.initial_window) {
  IPDA_CHECK(sim != nullptr);
  IPDA_CHECK(channel != nullptr);
  IPDA_CHECK_GT(config_.max_attempts, 0);
  IPDA_CHECK_GE(config_.max_retries, 0);
  IPDA_CHECK_GE(config_.backoff_max, config_.initial_window);
  channel_->SetDeliveryHandler(
      id_, [this](const Packet& packet) { OnDelivery(packet); });
}

void CsmaMac::SetReceiveHandler(ReceiveHandler handler) {
  receive_handler_ = std::move(handler);
}

void CsmaMac::SetSendFailureHandler(SendFailureHandler handler) {
  send_failure_handler_ = std::move(handler);
}

void CsmaMac::DropHead() {
  IPDA_CHECK(!queue_.empty());
  Packet dropped = std::move(queue_.front());
  queue_.pop_front();
  counters_->at(id_).mac_drops += 1;
  attempts_ = 0;
  retries_ = 0;
  window_ = config_.initial_window;
  // Notify with the MAC state already reset: the handler may Send() a
  // replacement frame, which queues behind anything still pending.
  if (send_failure_handler_) send_failure_handler_(dropped);
  MaybeArm();
}

void CsmaMac::Send(Packet packet) {
  packet.src = id_;
  packet.seq = next_seq_++;
  queue_.push_back(std::move(packet));
  MaybeArm();
}

void CsmaMac::OnDelivery(const Packet& packet) {
  if (packet.type == PacketType::kAck) {
    // ACKs are MAC-internal. Match the in-flight unicast by (peer, seq).
    if (awaiting_ack_ && !queue_.empty() && packet.src == queue_.front().dst &&
        packet.seq == queue_.front().seq) {
      awaiting_ack_ = false;
      if (ack_timer_ != sim::kInvalidEventId) {
        sim_->scheduler().Cancel(ack_timer_);
        ack_timer_ = sim::kInvalidEventId;
      }
      ResolveHead(/*delivered_unknown=*/false);
    }
    return;
  }

  if (!packet.IsBroadcast() && config_.arq) {
    // Always acknowledge — the previous ACK may have been lost.
    SendAck(packet.src, packet.seq);
    auto [it, inserted] =
        last_delivered_seq_.try_emplace(packet.src, packet.seq);
    if (!inserted) {
      if (packet.seq <= it->second) return;  // Duplicate retransmission.
      it->second = packet.seq;
    }
  }
  if (receive_handler_) receive_handler_(packet);
}

void CsmaMac::SendAck(NodeId to, uint64_t seq) {
  Packet ack;
  ack.src = id_;
  ack.dst = to;
  ack.type = PacketType::kAck;
  ack.seq = seq;
  // ACKs skip contention: sent a SIFS after reception, like 802.11.
  sim_->After(config_.sifs, [this, ack] {
    channel_->StartTransmission(id_, ack);
  });
}

void CsmaMac::MaybeArm() {
  if (armed_ || transmitting_ || awaiting_ack_ || queue_.empty()) return;
  armed_ = true;
  const sim::SimTime lo = config_.backoff_min;
  const sim::SimTime hi = std::max(lo + window_, lo + 1);
  const sim::SimTime backoff =
      lo + static_cast<sim::SimTime>(
               rng_.UniformUint64(static_cast<uint64_t>(hi - lo + 1)));
  sim_->After(backoff, [this] { Attempt(); });
}

void CsmaMac::Attempt() {
  armed_ = false;
  if (queue_.empty()) return;  // Head resolved by a late ACK.
  if (!channel_->IsBusy(id_)) {
    TransmitHead();
    return;
  }
  ++attempts_;
  if (attempts_ >= config_.max_attempts) {
    DropHead();
    return;
  }
  window_ = std::min(
      static_cast<sim::SimTime>(static_cast<double>(window_) *
                                config_.window_growth),
      config_.backoff_max);
  MaybeArm();
}

void CsmaMac::TransmitHead() {
  IPDA_CHECK(!queue_.empty());
  const Packet& head = queue_.front();
  const uint64_t seq = head.seq;
  attempts_ = 0;
  transmitting_ = true;
  const sim::SimTime airtime = channel_->AirTime(head.size_bytes());
  channel_->StartTransmission(id_, head);  // Copies the frame.
  sim_->After(airtime, [this, seq] { OnTransmitComplete(seq); });
}

void CsmaMac::OnTransmitComplete(uint64_t seq) {
  transmitting_ = false;
  if (queue_.empty() || queue_.front().seq != seq) {
    // Head already resolved (ACK raced the completion callback).
    MaybeArm();
    return;
  }
  const Packet& head = queue_.front();
  if (head.IsBroadcast() || !config_.arq) {
    ResolveHead(/*delivered_unknown=*/true);
    return;
  }
  awaiting_ack_ = true;
  ack_timer_ = sim_->After(config_.ack_timeout,
                           [this, seq] { OnAckTimeout(seq); });
}

void CsmaMac::OnAckTimeout(uint64_t seq) {
  ack_timer_ = sim::kInvalidEventId;
  if (!awaiting_ack_ || queue_.empty() || queue_.front().seq != seq) return;
  awaiting_ack_ = false;
  ++retries_;
  if (retries_ > config_.max_retries) {
    DropHead();
    return;
  }
  counters_->at(id_).arq_retries += 1;
  // Contend again with a grown window.
  window_ = std::min(
      static_cast<sim::SimTime>(static_cast<double>(window_) *
                                config_.window_growth),
      config_.backoff_max);
  MaybeArm();
}

void CsmaMac::ResolveHead(bool delivered_unknown) {
  (void)delivered_unknown;
  IPDA_CHECK(!queue_.empty());
  queue_.pop_front();
  retries_ = 0;
  window_ = config_.initial_window;
  MaybeArm();
}

}  // namespace ipda::net
