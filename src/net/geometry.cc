#include "net/geometry.h"

#include <cmath>

namespace ipda::net {

double DistanceSquared(const Point2D& a, const Point2D& b) {
  const double dx = a.x - b.x;
  const double dy = a.y - b.y;
  return dx * dx + dy * dy;
}

double Distance(const Point2D& a, const Point2D& b) {
  return std::sqrt(DistanceSquared(a, b));
}

}  // namespace ipda::net
