// Shared wireless medium with receiver-side collision modeling.
//
// A transmission physically reaches every topology neighbor of the sender.
// At each receiver, two frames whose airtimes overlap corrupt each other
// (no capture effect), and a half-duplex radio loses frames that arrive
// while it is itself transmitting. Frames that abut exactly (end == start)
// do not collide. This is the loss source the paper calls "factor (c)".

#ifndef IPDA_NET_CHANNEL_H_
#define IPDA_NET_CHANNEL_H_

#include <functional>
#include <memory>
#include <vector>

#include "net/counters.h"
#include "net/energy.h"
#include "net/packet.h"
#include "net/radio_state.h"
#include "net/topology.h"
#include "sim/simulator.h"
#include "sim/time.h"

namespace ipda::net {

struct PhyConfig {
  double data_rate_bps = 1e6;        // Paper: 1 Mbps.
  double propagation_speed = 3e8;    // m/s.
  EnergyModel energy;                // Per-frame radio energy accounting.
};

// Observer invoked for every frame that reaches a receiver intact,
// regardless of addressing. This is the eavesdropping surface: attack
// models subscribe here, exactly like an adversary parked next to a node.
struct OverhearEvent {
  NodeId receiver;
  Packet packet;  // Note: ciphertext payload if the sender encrypted.
};

// Per-(sender, receiver, frame) fault decision, produced by an installed
// LinkFaultHook (see fault/fault_injector.h). The channel applies it when
// fanning a transmission out to each topology neighbor.
struct LinkFault {
  bool drop = false;             // Frame never reaches this receiver.
  bool duplicate = false;        // Receiver hears a stale second copy.
  sim::SimTime extra_delay = 0;  // Added one-way latency on this link.
};

class Channel {
 public:
  using DeliveryHandler = std::function<void(const Packet&)>;
  using OverhearHandler = std::function<void(const OverhearEvent&)>;
  using LinkFaultHook =
      std::function<LinkFault(NodeId sender, NodeId receiver,
                              const Packet& packet)>;

  Channel(sim::Simulator* sim, const Topology* topology, PhyConfig config,
          CounterBoard* counters);

  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  // MAC layers register here to receive intact, addressed frames.
  void SetDeliveryHandler(NodeId id, DeliveryHandler handler);

  // Optional promiscuous tap (attack models, tracing).
  void SetOverhearHandler(OverhearHandler handler);

  // Begins transmitting `packet` from `sender` now. The caller (MAC) is
  // responsible for carrier-sensing first; the channel faithfully models
  // whatever overlap results.
  void StartTransmission(NodeId sender, Packet packet);

  // Carrier sense at `id`: any reception in progress, or own transmission.
  bool IsBusy(NodeId id) const;

  // Crash-fails a node: from now on it neither transmits nor receives.
  // Upper layers are untouched — their timers fire into a dead radio,
  // which is exactly what a mote crash looks like to the network.
  void FailNode(NodeId id);
  bool IsFailed(NodeId id) const { return radio_.failed[id] != 0; }

  // Brings a crashed node back: it resumes both TX and RX. Frames whose
  // reception started while the node was down stay lost (the radio missed
  // their preamble), but anything arriving after this call is heard.
  // No-op on a node that is not failed.
  void RecoverNode(NodeId id);

  // Optional fault-injection tap consulted once per (sender, receiver)
  // pair at transmission time. Installed by fault::FaultInjector; the
  // decisions it returns are accounted in NodeCounters::injected_*.
  void SetLinkFaultHook(LinkFaultHook hook);

  // Time to clock out `bytes` at the configured data rate.
  sim::SimTime AirTime(size_t bytes) const;

  sim::SimTime PropagationDelay(NodeId a, NodeId b) const;

  const PhyConfig& config() const { return config_; }

 private:
  struct ActiveReception {
    uint64_t uid;
    std::shared_ptr<const Packet> packet;
    bool collided = false;      // Overlapped another reception.
    bool lost_to_tx = false;    // Receiver was transmitting.
    bool dead_rx = false;       // Receiver was crashed when it started.
  };

  void BeginReception(NodeId receiver, uint64_t uid,
                      std::shared_ptr<const Packet> packet);
  void EndReception(NodeId receiver, uint64_t uid);

  sim::Simulator* sim_;
  const Topology* topology_;
  PhyConfig config_;
  CounterBoard* counters_;
  uint64_t next_uid_ = 1;
  std::vector<DeliveryHandler> delivery_;
  OverhearHandler overhear_;
  LinkFaultHook link_fault_;
  std::vector<std::vector<ActiveReception>> active_rx_;  // Per receiver.
  RadioBoard radio_;  // SoA per-node tx-busy / crash-failed columns.
};

}  // namespace ipda::net

#endif  // IPDA_NET_CHANNEL_H_
