#include "net/deployment.h"

#include <cmath>

namespace ipda::net {
namespace {

util::Status ValidateConfig(const DeploymentConfig& config) {
  if (config.node_count < 2) {
    return util::InvalidArgumentError("deployment needs at least 2 nodes");
  }
  if (config.area.width <= 0.0 || config.area.height <= 0.0) {
    return util::InvalidArgumentError("deployment area must be positive");
  }
  return util::OkStatus();
}

Point2D BaseStationPosition(const DeploymentConfig& config, util::Rng& rng) {
  switch (config.base_station) {
    case BaseStationPlacement::kCenter:
      return config.area.Center();
    case BaseStationPlacement::kCorner:
      return Point2D{0.0, 0.0};
    case BaseStationPlacement::kRandom:
      return Point2D{rng.UniformDouble(0.0, config.area.width),
                     rng.UniformDouble(0.0, config.area.height)};
  }
  return config.area.Center();
}

}  // namespace

util::Result<std::vector<Point2D>> UniformDeployment(
    const DeploymentConfig& config, util::Rng& rng) {
  IPDA_RETURN_IF_ERROR(ValidateConfig(config));
  std::vector<Point2D> positions;
  positions.reserve(config.node_count);
  positions.push_back(BaseStationPosition(config, rng));
  for (size_t i = 1; i < config.node_count; ++i) {
    positions.push_back(Point2D{rng.UniformDouble(0.0, config.area.width),
                                rng.UniformDouble(0.0, config.area.height)});
  }
  return positions;
}

util::Result<std::vector<Point2D>> GridDeployment(
    const DeploymentConfig& config) {
  IPDA_RETURN_IF_ERROR(ValidateConfig(config));
  const size_t side =
      static_cast<size_t>(std::floor(std::sqrt(
          static_cast<double>(config.node_count))));
  const size_t count = side * side;
  const double dx = config.area.width / static_cast<double>(side + 1);
  const double dy = config.area.height / static_cast<double>(side + 1);
  std::vector<Point2D> positions;
  positions.reserve(count);
  for (size_t row = 0; row < side; ++row) {
    for (size_t col = 0; col < side; ++col) {
      positions.push_back(Point2D{dx * static_cast<double>(col + 1),
                                  dy * static_cast<double>(row + 1)});
    }
  }
  if (config.base_station == BaseStationPlacement::kCenter) {
    positions[0] = config.area.Center();
  } else if (config.base_station == BaseStationPlacement::kCorner) {
    positions[0] = Point2D{0.0, 0.0};
  }
  return positions;
}

}  // namespace ipda::net
