#include "obs/metrics.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <utility>

namespace ipda::obs {
namespace {

// One metrics-file format version; bumped when the line grammar changes.
constexpr unsigned kMetricsVersion = 1;

void AppendEscaped(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

void AppendString(std::string& out, std::string_view s) {
  out += '"';
  AppendEscaped(out, s);
  out += '"';
}

void AppendU64(std::string& out, uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out += buf;
}

// %.17g round-trips every double exactly, so replayed and re-parsed
// snapshots serialize to the same bytes a live run produced.
void AppendDouble(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

}  // namespace

Counter* Registry::GetCounter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* Registry::GetGauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* Registry::GetHistogram(std::string_view name,
                                  std::vector<double> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

double Snapshot::CounterOr(std::string_view name, double fallback) const {
  for (const auto& [n, v] : counters) {
    if (n == name) return static_cast<double>(v);
  }
  return fallback;
}

double Snapshot::GaugeOr(std::string_view name, double fallback) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) return v;
  }
  return fallback;
}

Snapshot TakeSnapshot(const Registry& registry, const Trace* trace) {
  Snapshot snap;
  snap.counters.reserve(registry.counters().size());
  for (const auto& [name, cell] : registry.counters()) {
    snap.counters.emplace_back(name, cell->value());
  }
  snap.gauges.reserve(registry.gauges().size());
  for (const auto& [name, cell] : registry.gauges()) {
    snap.gauges.emplace_back(name, cell->value());
  }
  snap.histograms.reserve(registry.histograms().size());
  for (const auto& [name, cell] : registry.histograms()) {
    HistogramData data;
    data.bounds = cell->bounds();
    data.counts = cell->counts();
    data.count = cell->count();
    data.sum = cell->sum();
    snap.histograms.emplace_back(name, std::move(data));
  }
  if (trace != nullptr) snap.spans = trace->spans();
  return snap;
}

std::string SnapshotJsonFields(const Snapshot& snapshot) {
  std::string out;
  out += "\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i > 0) out += ',';
    AppendString(out, snapshot.counters[i].first);
    out += ':';
    AppendU64(out, snapshot.counters[i].second);
  }
  out += "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i > 0) out += ',';
    AppendString(out, snapshot.gauges[i].first);
    out += ':';
    AppendDouble(out, snapshot.gauges[i].second);
  }
  out += "},\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    if (i > 0) out += ',';
    const auto& [name, h] = snapshot.histograms[i];
    AppendString(out, name);
    out += ":{\"bounds\":[";
    for (size_t b = 0; b < h.bounds.size(); ++b) {
      if (b > 0) out += ',';
      AppendDouble(out, h.bounds[b]);
    }
    out += "],\"counts\":[";
    for (size_t b = 0; b < h.counts.size(); ++b) {
      if (b > 0) out += ',';
      AppendU64(out, h.counts[b]);
    }
    out += "],\"count\":";
    AppendU64(out, h.count);
    out += ",\"sum\":";
    AppendDouble(out, h.sum);
    out += '}';
  }
  out += "},\"spans\":[";
  for (size_t i = 0; i < snapshot.spans.size(); ++i) {
    if (i > 0) out += ',';
    const SpanData& span = snapshot.spans[i];
    out += "{\"name\":";
    AppendString(out, span.name);
    out += ",\"begin_ns\":";
    AppendU64(out, static_cast<uint64_t>(span.begin_ns));
    out += ",\"end_ns\":";
    AppendU64(out, static_cast<uint64_t>(span.end_ns));
    out += '}';
  }
  out += ']';
  return out;
}

std::string SnapshotJsonLine(const Snapshot& snapshot, uint64_t run,
                             uint64_t seed) {
  std::string out = "{\"kind\":\"run_metrics\",\"run\":";
  AppendU64(out, run);
  out += ",\"seed\":";
  AppendU64(out, seed);
  out += ',';
  out += SnapshotJsonFields(snapshot);
  out += "}\n";
  return out;
}

std::string MetricsHeaderLine(std::string_view experiment, uint64_t runs,
                              uint64_t seed) {
  std::string out = "{\"kind\":\"metrics_header\",\"v\":";
  AppendU64(out, kMetricsVersion);
  out += ",\"experiment\":";
  AppendString(out, experiment);
  out += ",\"runs\":";
  AppendU64(out, runs);
  out += ",\"seed\":";
  AppendU64(out, seed);
  out += "}\n";
  return out;
}

namespace {

// Recursive-descent reader for exactly the JSON subset the emitters above
// produce (string keys; number/string/object/array values; no nulls,
// booleans, or nested escapes beyond \" \\ \uXXXX).
class LineReader {
 public:
  explicit LineReader(std::string_view s) : s_(s) {}

  bool Fail(const std::string& message, std::string* error) {
    if (error != nullptr) {
      *error = message + " at offset " + std::to_string(i_);
    }
    return false;
  }

  void SkipWs() {
    while (i_ < s_.size() &&
           (s_[i_] == ' ' || s_[i_] == '\t' || s_[i_] == '\n' ||
            s_[i_] == '\r')) {
      ++i_;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (i_ >= s_.size() || s_[i_] != c) return false;
    ++i_;
    return true;
  }

  bool Peek(char c) {
    SkipWs();
    return i_ < s_.size() && s_[i_] == c;
  }

  bool ParseString(std::string& out, std::string* error) {
    if (!Consume('"')) return Fail("expected string", error);
    out.clear();
    while (i_ < s_.size() && s_[i_] != '"') {
      char c = s_[i_];
      if (c == '\\') {
        if (i_ + 1 >= s_.size()) return Fail("truncated escape", error);
        const char esc = s_[i_ + 1];
        if (esc == '"' || esc == '\\') {
          out += esc;
          i_ += 2;
        } else if (esc == 'u' && i_ + 5 < s_.size()) {
          const std::string hex(s_.substr(i_ + 2, 4));
          out += static_cast<char>(std::strtoul(hex.c_str(), nullptr, 16));
          i_ += 6;
        } else {
          return Fail("unsupported escape", error);
        }
      } else {
        out += c;
        ++i_;
      }
    }
    if (!Consume('"')) return Fail("unterminated string", error);
    return true;
  }

  bool ParseDouble(double& out, std::string* error) {
    SkipWs();
    const std::string num(s_.substr(i_, 32));
    char* end = nullptr;
    out = std::strtod(num.c_str(), &end);
    if (end == num.c_str()) return Fail("expected number", error);
    i_ += static_cast<size_t>(end - num.c_str());
    return true;
  }

  bool ParseU64(uint64_t& out, std::string* error) {
    SkipWs();
    const std::string num(s_.substr(i_, 24));
    char* end = nullptr;
    out = std::strtoull(num.c_str(), &end, 10);
    if (end == num.c_str()) return Fail("expected integer", error);
    i_ += static_cast<size_t>(end - num.c_str());
    return true;
  }

  bool AtEnd() {
    SkipWs();
    return i_ >= s_.size();
  }

 private:
  std::string_view s_;
  size_t i_ = 0;
};

// Parses {"name":number,...} with the given per-entry sink.
template <typename Sink>
bool ParseNumberMap(LineReader& r, std::string* error, Sink&& sink) {
  if (!r.Consume('{')) return r.Fail("expected object", error);
  if (r.Consume('}')) return true;
  do {
    std::string key;
    if (!r.ParseString(key, error)) return false;
    if (!r.Consume(':')) return r.Fail("expected ':'", error);
    double value = 0.0;
    if (!r.ParseDouble(value, error)) return false;
    sink(std::move(key), value);
  } while (r.Consume(','));
  if (!r.Consume('}')) return r.Fail("expected '}'", error);
  return true;
}

bool ParseDoubleArray(LineReader& r, std::vector<double>& out,
                      std::string* error) {
  if (!r.Consume('[')) return r.Fail("expected array", error);
  out.clear();
  if (r.Consume(']')) return true;
  do {
    double v = 0.0;
    if (!r.ParseDouble(v, error)) return false;
    out.push_back(v);
  } while (r.Consume(','));
  if (!r.Consume(']')) return r.Fail("expected ']'", error);
  return true;
}

bool ParseHistograms(LineReader& r, Snapshot& snap, std::string* error) {
  if (!r.Consume('{')) return r.Fail("expected object", error);
  if (r.Consume('}')) return true;
  do {
    std::string name;
    if (!r.ParseString(name, error)) return false;
    if (!r.Consume(':')) return r.Fail("expected ':'", error);
    if (!r.Consume('{')) return r.Fail("expected histogram object", error);
    HistogramData h;
    do {
      std::string key;
      if (!r.ParseString(key, error)) return false;
      if (!r.Consume(':')) return r.Fail("expected ':'", error);
      if (key == "bounds") {
        if (!ParseDoubleArray(r, h.bounds, error)) return false;
      } else if (key == "counts") {
        std::vector<double> counts;
        if (!ParseDoubleArray(r, counts, error)) return false;
        h.counts.assign(counts.begin(), counts.end());
      } else if (key == "count") {
        if (!r.ParseU64(h.count, error)) return false;
      } else if (key == "sum") {
        if (!r.ParseDouble(h.sum, error)) return false;
      } else {
        return r.Fail("unknown histogram field '" + key + "'", error);
      }
    } while (r.Consume(','));
    if (!r.Consume('}')) return r.Fail("expected '}'", error);
    snap.histograms.emplace_back(std::move(name), std::move(h));
  } while (r.Consume(','));
  if (!r.Consume('}')) return r.Fail("expected '}'", error);
  return true;
}

bool ParseSpans(LineReader& r, Snapshot& snap, std::string* error) {
  if (!r.Consume('[')) return r.Fail("expected array", error);
  if (r.Consume(']')) return true;
  do {
    if (!r.Consume('{')) return r.Fail("expected span object", error);
    SpanData span;
    do {
      std::string key;
      if (!r.ParseString(key, error)) return false;
      if (!r.Consume(':')) return r.Fail("expected ':'", error);
      if (key == "name") {
        if (!r.ParseString(span.name, error)) return false;
      } else if (key == "begin_ns" || key == "end_ns") {
        uint64_t v = 0;
        if (!r.ParseU64(v, error)) return false;
        (key == "begin_ns" ? span.begin_ns : span.end_ns) =
            static_cast<int64_t>(v);
      } else {
        return r.Fail("unknown span field '" + key + "'", error);
      }
    } while (r.Consume(','));
    if (!r.Consume('}')) return r.Fail("expected '}'", error);
    snap.spans.push_back(std::move(span));
  } while (r.Consume(','));
  if (!r.Consume(']')) return r.Fail("expected ']'", error);
  return true;
}

}  // namespace

bool ParseMetricsLine(std::string_view line, ParsedLine& out,
                      std::string* error) {
  out = ParsedLine{};
  LineReader r(line);
  if (!r.Consume('{')) return r.Fail("expected '{'", error);
  if (r.Consume('}')) return r.Fail("empty record", error);
  do {
    std::string key;
    if (!r.ParseString(key, error)) return false;
    if (!r.Consume(':')) return r.Fail("expected ':'", error);
    if (key == "kind") {
      if (!r.ParseString(out.kind, error)) return false;
    } else if (key == "experiment") {
      if (!r.ParseString(out.experiment, error)) return false;
    } else if (key == "run") {
      if (!r.ParseU64(out.run, error)) return false;
    } else if (key == "seed") {
      if (!r.ParseU64(out.seed, error)) return false;
    } else if (key == "runs") {
      if (!r.ParseU64(out.runs, error)) return false;
    } else if (key == "v") {
      uint64_t version = 0;
      if (!r.ParseU64(version, error)) return false;
    } else if (key == "counters") {
      if (!ParseNumberMap(r, error, [&](std::string name, double v) {
            out.snapshot.counters.emplace_back(
                std::move(name), static_cast<uint64_t>(v));
          })) {
        return false;
      }
    } else if (key == "gauges") {
      if (!ParseNumberMap(r, error, [&](std::string name, double v) {
            out.snapshot.gauges.emplace_back(std::move(name), v);
          })) {
        return false;
      }
    } else if (key == "histograms") {
      if (!ParseHistograms(r, out.snapshot, error)) return false;
    } else if (key == "spans") {
      if (!ParseSpans(r, out.snapshot, error)) return false;
    } else {
      return r.Fail("unknown field '" + key + "'", error);
    }
  } while (r.Consume(','));
  if (!r.Consume('}')) return r.Fail("expected '}'", error);
  if (!r.AtEnd()) return r.Fail("trailing bytes", error);
  if (out.kind.empty()) return r.Fail("record has no kind", error);
  if (out.kind != "run_metrics" && out.kind != "metrics_header") {
    return r.Fail("unknown record kind", error);
  }
  return true;
}

}  // namespace ipda::obs
