#include "obs/trace.h"

#include <utility>

#include "util/check.h"

namespace ipda::obs {

void Trace::Span(std::string name, int64_t begin_ns, int64_t end_ns) {
  IPDA_CHECK_GE(end_ns, begin_ns);
  spans_.push_back(SpanData{std::move(name), begin_ns, end_ns});
}

}  // namespace ipda::obs
