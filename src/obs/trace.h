// Round/phase trace spans with deterministic sim-time timestamps.
//
// A span names one contiguous stretch of a run on the simulation clock —
// query dissemination, slicing, assembly, per-tree aggregation,
// verification. Timestamps are the int64 nanoseconds of sim/time.h
// (passed in as plain integers so obs stays below sim in the layering);
// the wall clock never appears, which is what keeps traces byte-identical
// across machines and --jobs values.
//
// Spans are recorded in call order by single-threaded run code, so the
// serialized order is itself deterministic and no sorting is needed.

#ifndef IPDA_OBS_TRACE_H_
#define IPDA_OBS_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace ipda::obs {

struct SpanData {
  std::string name;
  int64_t begin_ns = 0;
  int64_t end_ns = 0;
};

class Trace {
 public:
  Trace() = default;
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  // Records a completed span. `end_ns` must not precede `begin_ns`.
  void Span(std::string name, int64_t begin_ns, int64_t end_ns);

  const std::vector<SpanData>& spans() const { return spans_; }
  void Clear() { spans_.clear(); }

 private:
  std::vector<SpanData> spans_;
};

}  // namespace ipda::obs

#endif  // IPDA_OBS_TRACE_H_
