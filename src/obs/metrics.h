// Metrics registry: the uniform resource-accounting surface of a run.
//
// Every paper claim this repo reproduces is ultimately a resource claim —
// messages per round, bytes on air, collisions, energy — and the engine
// internals (flat scheduler, pools, batched CTR) expose their health
// through counters of the same shape. This registry gives both one home:
// instruments are registered once at Start(), sampled on hot paths as a
// plain u64/double store through a held pointer (no lookup, no lock, no
// allocation), and serialized to a stable JSONL snapshot only when a
// caller asks for one.
//
// Determinism contract (DESIGN.md §11): instruments never read the wall
// clock, never allocate on sample, and never feed back into simulation
// decisions, so a run with metrics collection enabled is event-for-event
// identical to one without. Snapshots sort instruments by name, so two
// registries populated in different orders serialize byte-identically.
//
// The library is zero-dependency below the simulator: sim, net, crypto,
// and agg all link it without cycles.

#ifndef IPDA_OBS_METRICS_H_
#define IPDA_OBS_METRICS_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/trace.h"
#include "util/check.h"

namespace ipda::obs {

// Monotonic event count. Hot paths hold the pointer returned by
// Registry::GetCounter and bump it inline; pull-model collectors that
// mirror an externally accumulated total call Set once per snapshot
// (idempotent, so re-collection never double-counts).
class Counter {
 public:
  void Inc() { ++value_; }
  void Add(uint64_t n) { value_ += n; }
  void Set(uint64_t v) { value_ = v; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

// Point-in-time level: capacities, high-water marks, ratios, 0/1 flags.
class Gauge {
 public:
  void Set(double v) { value_ = v; }
  // High-water helper: keeps the maximum of all observations.
  void SetMax(double v) {
    if (v > value_) value_ = v;
  }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

// Fixed-bucket histogram. Bucket i counts observations with
// value <= bounds[i]; one implicit overflow bucket catches the rest.
// Bounds are frozen at registration, so Observe() touches no allocator.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds)
      : bounds_(std::move(bounds)), counts_(bounds_.size() + 1, 0) {
    for (size_t i = 1; i < bounds_.size(); ++i) {
      IPDA_CHECK(bounds_[i - 1] < bounds_[i]);
    }
  }

  void Observe(double v) {
    size_t i = 0;
    while (i < bounds_.size() && v > bounds_[i]) ++i;
    ++counts_[i];
    ++count_;
    sum_ += v;
  }

  const std::vector<double>& bounds() const { return bounds_; }
  const std::vector<uint64_t>& counts() const { return counts_; }
  uint64_t count() const { return count_; }
  double sum() const { return sum_; }

 private:
  std::vector<double> bounds_;
  std::vector<uint64_t> counts_;  // bounds_.size() + 1 (overflow last).
  uint64_t count_ = 0;
  double sum_ = 0.0;
};

// Owns the instruments of one run. Registration is by name and idempotent
// (the same name returns the same cell), so components can register at
// Start() without coordinating; instrument pointers stay stable for the
// registry's lifetime. Single-threaded by design, matching the
// shared-nothing run model — parallel sweeps hold one registry per run.
class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  Counter* GetCounter(std::string_view name);
  Gauge* GetGauge(std::string_view name);
  // Re-registering an existing histogram ignores `bounds` and returns the
  // original cell (bounds are part of the instrument's identity).
  Histogram* GetHistogram(std::string_view name, std::vector<double> bounds);

  size_t size() const {
    return counters_.size() + gauges_.size() + histograms_.size();
  }

  // Iteration for snapshots (sorted by name — std::map order).
  const std::map<std::string, std::unique_ptr<Counter>, std::less<>>&
  counters() const {
    return counters_;
  }
  const std::map<std::string, std::unique_ptr<Gauge>, std::less<>>& gauges()
      const {
    return gauges_;
  }
  const std::map<std::string, std::unique_ptr<Histogram>, std::less<>>&
  histograms() const {
    return histograms_;
  }

 private:
  // unique_ptr cells so instrument pointers survive rebalancing.
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

// Value-type copy of a registry (plus optional trace spans) at one
// instant. Instruments are sorted by name; spans keep recorded order.
// This is what run results carry and what the JSONL emitter serializes.
struct HistogramData {
  std::vector<double> bounds;
  std::vector<uint64_t> counts;
  uint64_t count = 0;
  double sum = 0.0;
};

struct Snapshot {
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<std::pair<std::string, HistogramData>> histograms;
  std::vector<SpanData> spans;

  // Lookup helpers for benches and tests; `fallback` when absent.
  double CounterOr(std::string_view name, double fallback) const;
  double GaugeOr(std::string_view name, double fallback) const;
};

Snapshot TakeSnapshot(const Registry& registry, const Trace* trace = nullptr);

// The inner JSON fields of one snapshot —
//   "counters":{...},"gauges":{...},"histograms":{...},"spans":[...]
// — without the surrounding braces, so callers can splice run metadata
// into the same object. Deterministic byte-for-byte: keys sorted, doubles
// round-tripped with %.17g.
std::string SnapshotJsonFields(const Snapshot& snapshot);

// One self-contained JSONL line: {"kind":"run_metrics","run":R,"seed":S,
// <fields>}\n. This is the per-run record format of `--metrics` files.
std::string SnapshotJsonLine(const Snapshot& snapshot, uint64_t run,
                             uint64_t seed);

// Header line pinning a metrics file to its producing sweep, mirroring
// the run journal's header discipline (exp/journal.h).
std::string MetricsHeaderLine(std::string_view experiment, uint64_t runs,
                              uint64_t seed);

// Parses one line previously produced by SnapshotJsonLine /
// MetricsHeaderLine. Only the subset of JSON those emitters produce is
// accepted; anything else reports the offending offset.
struct ParsedLine {
  std::string kind;      // "metrics_header" or "run_metrics".
  std::string experiment;  // Header lines only.
  uint64_t run = 0;
  uint64_t seed = 0;
  uint64_t runs = 0;  // Header lines only.
  Snapshot snapshot;  // Run lines only.
};
bool ParseMetricsLine(std::string_view line, ParsedLine& out,
                      std::string* error);

}  // namespace ipda::obs

#endif  // IPDA_OBS_METRICS_H_
