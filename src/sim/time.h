// Simulated time as integer nanoseconds. Integer time keeps event ordering
// exact and runs bit-identical across platforms, unlike double seconds.

#ifndef IPDA_SIM_TIME_H_
#define IPDA_SIM_TIME_H_

#include <cstdint>

namespace ipda::sim {

// A point or span on the simulation clock, in nanoseconds.
using SimTime = int64_t;

constexpr SimTime kSimTimeZero = 0;
constexpr SimTime kSimTimeNever = INT64_MAX;

constexpr SimTime Nanoseconds(int64_t n) { return n; }
constexpr SimTime Microseconds(int64_t n) { return n * 1000; }
constexpr SimTime Milliseconds(int64_t n) { return n * 1000 * 1000; }
constexpr SimTime Seconds(int64_t n) { return n * 1000 * 1000 * 1000; }

// Converts a real-valued second count; rounds toward zero.
constexpr SimTime SecondsF(double s) {
  return static_cast<SimTime>(s * 1e9);
}

constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e9; }

}  // namespace ipda::sim

#endif  // IPDA_SIM_TIME_H_
