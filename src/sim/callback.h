// Small-buffer-optimized event closure for the discrete-event kernel.
//
// std::function heap-allocates any capture beyond ~16 bytes, which made
// every scheduled delivery/timer event a malloc. Callback stores captures
// up to kInlineBytes directly inside the object; larger captures fall back
// to a caller-supplied BytePool (or, pool-less, to operator new — counted,
// so tests can assert the scheduler hot path never takes it). Move-only,
// like the closures it carries.

#ifndef IPDA_SIM_CALLBACK_H_
#define IPDA_SIM_CALLBACK_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <utility>

#include "util/check.h"
#include "util/pool.h"

namespace ipda::sim {

class Callback {
 public:
  // Fits every steady-state capture in the simulator (the largest is a
  // MAC ACK lambda at 64 bytes, which deliberately exercises the pool
  // path; delivery events are [this, id, u64, shared_ptr] = 40 bytes).
  static constexpr size_t kInlineBytes = 48;

  Callback() = default;

  // Pool-less form: oversized captures hit operator new (counted).
  template <typename F, typename = std::enable_if_t<
                            !std::is_same_v<std::decay_t<F>, Callback>>>
  Callback(F&& fn) : Callback(nullptr, std::forward<F>(fn)) {}  // NOLINT

  // Oversized captures recycle through `pool` (may be null).
  template <typename F, typename = std::enable_if_t<
                            !std::is_same_v<std::decay_t<F>, Callback>>>
  Callback(util::BytePool* pool, F&& fn) {
    using Fn = std::decay_t<F>;
    static_assert(std::is_invocable_r_v<void, Fn&>,
                  "Callback requires a void() callable");
    if constexpr (sizeof(Fn) <= kInlineBytes &&
                  alignof(Fn) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<Fn>) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = &kInlineOps<Fn>;
    } else {
      void* mem;
      if (pool != nullptr) {
        mem = pool->Allocate(sizeof(Fn));
      } else {
        mem = ::operator new(sizeof(Fn));
        heap_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      }
      ::new (mem) Fn(std::forward<F>(fn));
      ::new (static_cast<void*>(buf_)) Outline{mem, pool};
      ops_ = &kOutlineOps<Fn>;
    }
  }

  Callback(Callback&& other) noexcept { MoveFrom(std::move(other)); }

  Callback& operator=(Callback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  Callback(const Callback&) = delete;
  Callback& operator=(const Callback&) = delete;

  ~Callback() { Reset(); }

  void operator()() {
    IPDA_DCHECK(ops_ != nullptr);
    ops_->invoke(target());
  }

  explicit operator bool() const { return ops_ != nullptr; }

  // Destroys the held callable (releasing any pool/heap block).
  void Reset() {
    if (ops_ == nullptr) return;
    ops_->destroy(target());
    if (!ops_->inline_stored) {
      Outline& out = outline();
      if (out.pool != nullptr) {
        out.pool->Deallocate(out.obj, ops_->size);
      } else {
        ::operator delete(out.obj);
      }
    }
    ops_ = nullptr;
  }

  // Times a pool-less Callback construction spilled to operator new.
  // Scheduler paths always pass a pool, so their steady state keeps this
  // flat — asserted by the scheduler stress test.
  static uint64_t heap_fallback_count() {
    return heap_fallbacks_.load(std::memory_order_relaxed);
  }

 private:
  struct Ops {
    void (*invoke)(void* obj);
    void (*relocate)(void* from, void* to);  // Move-construct + destroy src.
    void (*destroy)(void* obj);
    size_t size;          // sizeof the callable (pool deallocation key).
    bool inline_stored;
  };
  struct Outline {
    void* obj;
    util::BytePool* pool;
  };

  template <typename Fn>
  static constexpr Ops kInlineOps = {
      [](void* obj) { (*static_cast<Fn*>(obj))(); },
      [](void* from, void* to) {
        Fn* src = static_cast<Fn*>(from);
        ::new (to) Fn(std::move(*src));
        src->~Fn();
      },
      [](void* obj) { static_cast<Fn*>(obj)->~Fn(); },
      sizeof(Fn),
      /*inline_stored=*/true,
  };

  template <typename Fn>
  static constexpr Ops kOutlineOps = {
      [](void* obj) { (*static_cast<Fn*>(obj))(); },
      nullptr,  // Outline moves steal the pointer; no relocation needed.
      [](void* obj) { static_cast<Fn*>(obj)->~Fn(); },
      sizeof(Fn),
      /*inline_stored=*/false,
  };

  Outline& outline() { return *std::launder(reinterpret_cast<Outline*>(buf_)); }

  void* target() {
    return ops_->inline_stored ? static_cast<void*>(buf_) : outline().obj;
  }

  void MoveFrom(Callback&& other) noexcept {
    ops_ = other.ops_;
    if (ops_ == nullptr) return;
    if (ops_->inline_stored) {
      ops_->relocate(other.buf_, buf_);
    } else {
      ::new (static_cast<void*>(buf_)) Outline(other.outline());
    }
    other.ops_ = nullptr;
  }

  inline static std::atomic<uint64_t> heap_fallbacks_{0};

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace ipda::sim

#endif  // IPDA_SIM_CALLBACK_H_
