// Cooperative cancellation for simulation runs.
//
// A CancelToken is a tiny thread-safe flag shared between a run's
// scheduler (which polls it between event dispatches, see
// Scheduler::SetCancelToken) and an external controller — a watchdog
// thread enforcing a wall-clock deadline, or a drain handler winding the
// sweep down after SIGTERM. Cancellation is cooperative: the event in
// flight finishes, RunUntil returns with interrupted() set, and nothing
// is torn down mid-callback, so a cancelled run's state is consistent
// (just incomplete) and can be discarded or reported as a failure.

#ifndef IPDA_SIM_CANCEL_H_
#define IPDA_SIM_CANCEL_H_

#include <atomic>
#include <cstdint>
#include <string_view>

namespace ipda::sim {

// Why a run was asked to stop; the first requester wins.
enum class CancelReason : uint8_t {
  kNone = 0,
  kDeadline,  // Wall-clock watchdog deadline expired.
  kDrain,     // Process-wide graceful drain (SIGINT/SIGTERM).
  kExternal,  // Any other caller.
};

constexpr std::string_view CancelReasonName(CancelReason reason) {
  switch (reason) {
    case CancelReason::kNone:
      return "none";
    case CancelReason::kDeadline:
      return "watchdog deadline";
    case CancelReason::kDrain:
      return "drain";
    case CancelReason::kExternal:
      return "external";
  }
  return "?";
}

class CancelToken {
 public:
  CancelToken() = default;

  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  // First call wins; later calls keep the original reason.
  void RequestCancel(CancelReason reason = CancelReason::kExternal) {
    uint8_t expected = 0;
    state_.compare_exchange_strong(expected, static_cast<uint8_t>(reason),
                                   std::memory_order_relaxed);
  }

  bool cancelled() const {
    return state_.load(std::memory_order_relaxed) != 0;
  }

  CancelReason reason() const {
    return static_cast<CancelReason>(
        state_.load(std::memory_order_relaxed));
  }

  // Re-arm for another attempt (the owning worker only, between runs).
  void Reset() { state_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<uint8_t> state_{0};
};

}  // namespace ipda::sim

#endif  // IPDA_SIM_CANCEL_H_
