#include "sim/scheduler.h"

#include <utility>

#include "util/check.h"

namespace ipda::sim {

EventId Scheduler::ScheduleAt(SimTime at, std::function<void()> fn) {
  IPDA_CHECK_GE(at, now_);
  IPDA_CHECK(fn != nullptr);
  EventId id = next_id_++;
  queue_.push(entry_pool_.New(at, next_seq_++, id, std::move(fn)));
  pending_.insert(id);
  return id;
}

EventId Scheduler::ScheduleAfter(SimTime delay, std::function<void()> fn) {
  IPDA_CHECK_GE(delay, 0);
  return ScheduleAt(now_ + delay, std::move(fn));
}

bool Scheduler::Cancel(EventId id) {
  auto it = pending_.find(id);
  if (it == pending_.end()) return false;
  pending_.erase(it);
  cancelled_.insert(id);
  if (cancelled_.size() >= kCompactThreshold &&
      cancelled_.size() * 2 >= queue_.size()) {
    Compact();
  }
  return true;
}

void Scheduler::Compact() {
  std::vector<Entry*> live;
  live.reserve(queue_.size() - cancelled_.size());
  while (!queue_.empty()) {
    Entry* entry = queue_.top();
    queue_.pop();
    auto it = cancelled_.find(entry->id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      entry_pool_.Delete(entry);
    } else {
      live.push_back(entry);
    }
  }
  // Every tombstone shadows exactly one queued entry, so a full drain
  // must consume them all.
  IPDA_CHECK(cancelled_.empty());
  queue_ = std::priority_queue<Entry*, std::vector<Entry*>, EntryLater>(
      EntryLater{}, std::move(live));
}

void Scheduler::SkipCancelled() {
  while (!queue_.empty()) {
    auto it = cancelled_.find(queue_.top()->id);
    if (it == cancelled_.end()) return;
    cancelled_.erase(it);
    entry_pool_.Delete(queue_.top());
    queue_.pop();
  }
}

bool Scheduler::RunOne() {
  SkipCancelled();
  if (queue_.empty()) return false;
  Entry* entry = queue_.top();
  queue_.pop();
  pending_.erase(entry->id);
  IPDA_CHECK_GE(entry->at, now_);
  now_ = entry->at;
  ++events_run_;
  // Recycle the slot before running: the handler may schedule new events
  // and should find a warm free list.
  std::function<void()> fn = std::move(entry->fn);
  entry_pool_.Delete(entry);
  fn();
  return true;
}

size_t Scheduler::RunUntil(SimTime deadline) {
  size_t n = 0;
  for (;;) {
    SkipCancelled();
    if (queue_.empty() || queue_.top()->at > deadline) break;
    if (!RunOne()) break;
    ++n;
  }
  return n;
}

size_t Scheduler::RunAll() { return RunUntil(kSimTimeNever); }

}  // namespace ipda::sim
