#include "sim/scheduler.h"

#include <utility>

#include "util/check.h"

namespace ipda::sim {

// 4-ary layout: children of i are 4i+1..4i+4, parent is (i-1)/4. Shallower
// than binary for the same size, so a sift touches fewer cache lines.
namespace {
constexpr size_t kArity = 4;
}  // namespace

EventId Scheduler::PushEvent(SimTime at, Callback cb) {
  IPDA_CHECK_GE(at, now_);
  uint32_t slot;
  if (free_head_ != kNoSlot) {
    slot = free_head_;
    free_head_ = slots_[slot].next_free;
  } else {
    IPDA_CHECK_LT(slots_.size(), static_cast<size_t>(UINT32_MAX) - 1);
    slots_.emplace_back();
    slot = static_cast<uint32_t>(slots_.size() - 1);
  }
  Slot& s = slots_[slot];
  s.fn = std::move(cb);
  s.live = true;
  heap_.push_back(HeapEntry{at, next_seq_++, slot, s.gen});
  SiftUp(heap_.size() - 1);
  ++live_;
  return (static_cast<uint64_t>(s.gen) << 32) |
         static_cast<uint64_t>(slot + 1);
}

void Scheduler::FreeSlot(uint32_t slot) {
  Slot& s = slots_[slot];
  s.fn.Reset();
  s.live = false;
  // Invalidates every outstanding handle and heap entry naming this slot.
  ++s.gen;
  s.next_free = free_head_;
  free_head_ = slot;
}

bool Scheduler::Cancel(EventId id) {
  const uint32_t low = static_cast<uint32_t>(id);
  if (low == 0) return false;
  const uint32_t slot = low - 1;
  if (slot >= slots_.size()) return false;
  const Slot& s = slots_[slot];
  if (!s.live || s.gen != static_cast<uint32_t>(id >> 32)) return false;
  FreeSlot(slot);
  --live_;
  const size_t stale = heap_.size() - live_;
  if (stale >= kPruneThreshold && stale * 2 >= heap_.size()) PruneStale();
  return true;
}

void Scheduler::SiftUp(size_t i) {
  const HeapEntry moving = heap_[i];
  while (i > 0) {
    const size_t parent = (i - 1) / kArity;
    if (!Earlier(moving, heap_[parent])) break;
    heap_[i] = heap_[parent];
    i = parent;
  }
  heap_[i] = moving;
}

void Scheduler::SiftDown(size_t i) {
  const size_t n = heap_.size();
  const HeapEntry moving = heap_[i];
  for (;;) {
    const size_t first = kArity * i + 1;
    if (first >= n) break;
    size_t best = first;
    const size_t last = first + kArity < n ? first + kArity : n;
    for (size_t c = first + 1; c < last; ++c) {
      if (Earlier(heap_[c], heap_[best])) best = c;
    }
    if (!Earlier(heap_[best], moving)) break;
    heap_[i] = heap_[best];
    i = best;
  }
  heap_[i] = moving;
}

void Scheduler::PopTop() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (heap_.size() > 1) SiftDown(0);
}

void Scheduler::DropStaleHead() {
  while (!heap_.empty() && !EntryLive(heap_.front())) {
    PopTop();
    ++stale_skips_;
  }
}

void Scheduler::PruneStale() {
  ++prune_passes_;
  size_t out = 0;
  for (const HeapEntry& e : heap_) {
    if (EntryLive(e)) heap_[out++] = e;
  }
  heap_.resize(out);
  if (out > 1) {
    // Floyd heapify from the last parent down; leaves are already heaps.
    for (size_t i = (out - 2) / kArity + 1; i-- > 0;) SiftDown(i);
  }
  IPDA_DCHECK(heap_.size() == live_);
}

void Scheduler::DispatchTop() {
  const HeapEntry top = heap_.front();
  PopTop();
  IPDA_CHECK_GE(top.at, now_);
  now_ = top.at;
  ++events_run_;
  Slot& s = slots_[top.slot];
  // Recycle the slot before running: the handler may schedule new events
  // and should find a warm free list.
  Callback fn = std::move(s.fn);
  FreeSlot(top.slot);
  --live_;
  fn();
}

bool Scheduler::CheckInterrupt() {
  if (event_budget_ != 0 && events_run_ >= event_budget_) {
    interrupt_cause_ = InterruptCause::kEventBudget;
    return true;
  }
  if (cancel_ != nullptr && cancel_->cancelled()) {
    interrupt_cause_ = InterruptCause::kCancel;
    return true;
  }
  return false;
}

bool Scheduler::RunOne() {
  interrupt_cause_ = InterruptCause::kNone;
  DropStaleHead();
  if (heap_.empty()) return false;
  if (CheckInterrupt()) return false;
  DispatchTop();
  return true;
}

size_t Scheduler::RunUntil(SimTime deadline) {
  interrupt_cause_ = InterruptCause::kNone;
  size_t n = 0;
  for (;;) {
    DropStaleHead();
    if (heap_.empty() || heap_.front().at > deadline) break;
    if (CheckInterrupt()) break;
    DispatchTop();
    ++n;
  }
  return n;
}

size_t Scheduler::RunAll() { return RunUntil(kSimTimeNever); }

}  // namespace ipda::sim
