// Simulator: the per-run simulation context shared by every component.
//
// Owns the scheduler and the root Rng; components fork label-addressed
// child streams so random draws stay independent across subsystems.

#ifndef IPDA_SIM_SIMULATOR_H_
#define IPDA_SIM_SIMULATOR_H_

#include <cstdint>
#include <string_view>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/scheduler.h"
#include "sim/time.h"
#include "util/pool.h"
#include "util/random.h"

namespace ipda::sim {

class Simulator {
 public:
  explicit Simulator(uint64_t seed);

  Simulator(const Simulator&) = delete;
  Simulator& operator=(const Simulator&) = delete;

  Scheduler& scheduler() { return scheduler_; }
  const Scheduler& scheduler() const { return scheduler_; }

  SimTime now() const { return scheduler_.now(); }
  uint64_t seed() const { return seed_; }

  // Independent random stream for the named subsystem.
  util::Rng ForkRng(std::string_view label) const;
  // Independent random stream for (subsystem, index), e.g. per node.
  util::Rng ForkRng(std::string_view label, uint64_t index) const;

  // Per-run allocation arena for hot-path objects whose lifetime can
  // extend into queued events (shared packets, message buffers). Owned by
  // the run context — and declared before the scheduler — so closures
  // still holding arena blocks at teardown release them into a live pool.
  util::BytePool& arena() { return arena_; }

  // Per-run metrics registry and trace span log (DESIGN.md §11).
  // Components register instruments once at their Start() and sample them
  // through held pointers; nothing here feeds back into the simulation.
  obs::Registry& metrics() { return metrics_; }
  const obs::Registry& metrics() const { return metrics_; }
  obs::Trace& trace() { return trace_; }
  const obs::Trace& trace() const { return trace_; }

  // Pulls kernel-level health into the registry: scheduler dispatch and
  // cancellation counters, heap/slot capacities (the PR-3 zero-alloc
  // referee, ex Scheduler::alloc_stats), and arena pool stats. Idempotent;
  // call before taking a snapshot.
  void CollectKernelMetrics();

  // Convenience passthroughs. Templated so lambdas reach the scheduler's
  // small-buffer Callback directly, never boxed through std::function.
  template <typename F>
  EventId At(SimTime t, F&& fn) {
    return scheduler_.ScheduleAt(t, std::forward<F>(fn));
  }
  template <typename F>
  EventId After(SimTime delay, F&& fn) {
    return scheduler_.ScheduleAfter(delay, std::forward<F>(fn));
  }
  size_t RunUntil(SimTime deadline) { return scheduler_.RunUntil(deadline); }
  size_t RunAll() { return scheduler_.RunAll(); }

 private:
  uint64_t seed_;
  util::Rng root_rng_;
  obs::Registry metrics_;
  obs::Trace trace_;
  util::BytePool arena_;  // Must be declared before (destroyed after)
  Scheduler scheduler_;   // the scheduler and its pending closures.
};

}  // namespace ipda::sim

#endif  // IPDA_SIM_SIMULATOR_H_
