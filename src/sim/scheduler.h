// Event queue for the discrete-event kernel.
//
// Events are closures ordered by (time, insertion sequence); ties at the
// same timestamp run in scheduling order, which makes simulations
// deterministic. Scheduled events can be cancelled through their EventId.
//
// Hot-path layout: a flat 4-ary min-heap of 24-byte POD entries (no
// pointer chasing, sift moves touch one cache line per level) over a slot
// array holding the closures. EventIds are generation-tagged handles
// (slot, generation), so Cancel() is O(1) — bump the generation, free the
// slot — with no tombstone side tables; a stale heap entry is recognized
// at pop time by a single integer compare. Steady-state dispatch performs
// zero heap allocations: slots recycle through a free list, closures live
// inline in the slot (sim/callback.h) or in the scheduler's byte pool.

#ifndef IPDA_SIM_SCHEDULER_H_
#define IPDA_SIM_SCHEDULER_H_

#include <cstdint>
#include <vector>

#include "sim/callback.h"
#include "sim/cancel.h"
#include "sim/time.h"
#include "util/check.h"
#include "util/pool.h"

namespace ipda::sim {

// (generation << 32) | (slot + 1); 0 never names a live event.
using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

class Scheduler {
 public:
  Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Schedules `fn` at absolute time `at` (must be >= now). Returns a handle
  // usable with Cancel().
  template <typename F>
  EventId ScheduleAt(SimTime at, F&& fn) {
    // Null-testable callables (std::function, function pointers) must not
    // be empty; plain lambdas skip the check at compile time.
    if constexpr (requires { static_cast<bool>(fn); }) {
      IPDA_CHECK(static_cast<bool>(fn));
    }
    return PushEvent(at, Callback(&overflow_, std::forward<F>(fn)));
  }

  // Schedules `fn` after a non-negative delay from now.
  template <typename F>
  EventId ScheduleAfter(SimTime delay, F&& fn) {
    IPDA_CHECK_GE(delay, 0);
    return ScheduleAt(now_ + delay, std::forward<F>(fn));
  }

  // Cancels a pending event; returns false if it already ran, was already
  // cancelled, or never existed. O(1): the handle's generation goes stale
  // and its closure is destroyed immediately.
  bool Cancel(EventId id);

  // Runs the earliest pending event, advancing the clock. Returns false if
  // the queue is empty.
  bool RunOne();

  // Runs events until the queue is empty or the clock would pass `deadline`
  // (events at exactly `deadline` run). Returns the number of events run.
  // The deadline check and the stale-entry skip share one peek of the heap
  // top — there is no separate skip pass.
  size_t RunUntil(SimTime deadline);

  // Runs everything. Returns the number of events run.
  size_t RunAll();

  // Cooperative interruption (the watchdog hook): when a cancel token is
  // armed or the event budget is exhausted, RunOne/RunUntil/RunAll stop
  // between events and interrupt_cause() says why. A hung run — an
  // adversarial configuration spinning in a same-timestamp reschedule
  // loop — is thereby convertible into a recordable failure instead of a
  // stalled worker. Both guards cost one compare per dispatch when unset.
  enum class InterruptCause : uint8_t { kNone = 0, kCancel, kEventBudget };

  // `token` may be null (no cancellation); otherwise it must outlive
  // every Run* call. Polled with a relaxed load, so another thread's
  // RequestCancel is picked up within one event.
  void SetCancelToken(const CancelToken* token) { cancel_ = token; }
  // Caps lifetime events_run(); 0 = unlimited.
  void SetEventBudget(uint64_t budget) { event_budget_ = budget; }
  // Why the most recent Run* call stopped early (kNone: it did not).
  InterruptCause interrupt_cause() const { return interrupt_cause_; }
  bool interrupted() const {
    return interrupt_cause_ != InterruptCause::kNone;
  }

  SimTime now() const { return now_; }
  bool empty() const { return live_ == 0; }
  size_t pending() const { return live_; }
  // Stale heap entries left by Cancel(). Bounded: head entries purge as
  // the clock reaches them, and Cancel() prunes the heap in one linear
  // lookup-free pass once stale entries are both >= kPruneThreshold and
  // at least half the heap.
  size_t cancelled_pending() const { return heap_.size() - live_; }
  uint64_t events_run() const { return events_run_; }
  // Stale (cancelled) heap entries recognized and dropped at pop time.
  uint64_t stale_skips() const { return stale_skips_; }
  // Linear PruneStale() passes triggered by cancel-heavy churn.
  uint64_t prune_passes() const { return prune_passes_; }

  // DEPRECATED shim: these numbers now live in the metrics registry
  // (sim.sched_* gauges/counters filled by Simulator::CollectKernelMetrics,
  // DESIGN.md §11). Kept so pre-registry callers keep compiling; both
  // surfaces read the same fields, so they can never disagree.
  struct AllocStats {
    size_t heap_capacity = 0;       // Flat heap vector capacity.
    size_t slot_capacity = 0;       // Closure slot array capacity.
    size_t overflow_slabs = 0;      // Slabs backing oversized closures.
    uint64_t callback_heap_fallbacks = 0;  // Pool-less spills (global).
  };
  AllocStats alloc_stats() const {
    return AllocStats{heap_.capacity(), slots_.capacity(),
                      overflow_.slab_count(), Callback::heap_fallback_count()};
  }

 private:
  // POD heap entry; ordering compares (at, seq) only, so the flat layout
  // cannot perturb determinism relative to the old pointer heap.
  struct HeapEntry {
    SimTime at;
    uint64_t seq;
    uint32_t slot;
    uint32_t gen;
  };
  static constexpr uint32_t kNoSlot = UINT32_MAX;
  struct Slot {
    Callback fn;
    uint32_t gen = 0;
    uint32_t next_free = kNoSlot;
    bool live = false;
  };

  // Cancel() prunes once this many stale entries accumulate AND they make
  // up at least half the heap (so pruning stays amortized O(1) per event).
  static constexpr size_t kPruneThreshold = 64;

  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  bool EntryLive(const HeapEntry& e) const {
    const Slot& s = slots_[e.slot];
    return s.live && s.gen == e.gen;
  }

  EventId PushEvent(SimTime at, Callback cb);
  void FreeSlot(uint32_t slot);

  // Sets interrupt_cause_ and returns true when a guard tripped.
  bool CheckInterrupt();

  // Removes heap_[0] and restores the heap property.
  void PopTop();
  // Pops stale entries until the top is live (or the heap is empty).
  void DropStaleHead();
  // Pops and runs the (live) top entry, advancing the clock.
  void DispatchTop();
  // Rebuilds the heap without stale entries, in one linear pass.
  void PruneStale();

  void SiftUp(size_t i);
  void SiftDown(size_t i);

  SimTime now_ = kSimTimeZero;
  uint64_t next_seq_ = 0;
  uint64_t events_run_ = 0;
  uint64_t stale_skips_ = 0;
  uint64_t prune_passes_ = 0;
  const CancelToken* cancel_ = nullptr;
  uint64_t event_budget_ = 0;  // 0 = unlimited.
  InterruptCause interrupt_cause_ = InterruptCause::kNone;
  size_t live_ = 0;
  // Declared before slots_: slot teardown returns oversized closures here.
  util::BytePool overflow_;
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  uint32_t free_head_ = kNoSlot;
};

}  // namespace ipda::sim

#endif  // IPDA_SIM_SCHEDULER_H_
