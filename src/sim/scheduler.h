// Event queue for the discrete-event kernel.
//
// Events are closures ordered by (time, insertion sequence); ties at the
// same timestamp run in scheduling order, which makes simulations
// deterministic. Scheduled events can be cancelled through their EventId.

#ifndef IPDA_SIM_SCHEDULER_H_
#define IPDA_SIM_SCHEDULER_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.h"
#include "util/pool.h"

namespace ipda::sim {

using EventId = uint64_t;
constexpr EventId kInvalidEventId = 0;

class Scheduler {
 public:
  Scheduler() = default;

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Schedules `fn` at absolute time `at` (must be >= now). Returns a handle
  // usable with Cancel().
  EventId ScheduleAt(SimTime at, std::function<void()> fn);

  // Schedules `fn` after a non-negative delay from now.
  EventId ScheduleAfter(SimTime delay, std::function<void()> fn);

  // Cancels a pending event; returns false if it already ran, was already
  // cancelled, or never existed.
  bool Cancel(EventId id);

  // Runs the earliest pending event, advancing the clock. Returns false if
  // the queue is empty.
  bool RunOne();

  // Runs events until the queue is empty or the clock would pass `deadline`
  // (events at exactly `deadline` run). Returns the number of events run.
  size_t RunUntil(SimTime deadline);

  // Runs everything. Returns the number of events run.
  size_t RunAll();

  SimTime now() const { return now_; }
  bool empty() const { return pending_.empty(); }
  size_t pending() const { return pending_.size(); }
  // Tombstones still sitting in the queue. Bounded: head tombstones are
  // purged as the clock reaches them, and Cancel() compacts the queue once
  // tombstones pile up — a long run that cancels heavily (ARQ timers) can
  // never hold more than max(kCompactThreshold, live events) of them.
  size_t cancelled_pending() const { return cancelled_.size(); }
  uint64_t events_run() const { return events_run_; }

 private:
  struct Entry {
    SimTime at;
    uint64_t seq;
    EventId id;
    std::function<void()> fn;
  };
  // The heap holds pooled pointers: sift operations move 8 bytes instead
  // of a ~64-byte Entry with a std::function inside, and entries recycle
  // through the free list instead of hitting malloc per event. Ordering
  // still compares (at, seq) only — never addresses — so pooling cannot
  // perturb determinism.
  struct EntryLater {
    bool operator()(const Entry* a, const Entry* b) const {
      if (a->at != b->at) return a->at > b->at;
      return a->seq > b->seq;
    }
  };

  // Pops queue entries whose ids were cancelled. Ensures queue_.top() (when
  // non-empty) is a live event.
  void SkipCancelled();

  // Rebuilds the queue without tombstoned entries; empties cancelled_.
  void Compact();

  // Cancel() compacts once this many tombstones accumulate AND they make
  // up at least half the queue (so compaction stays amortized O(log n)).
  static constexpr size_t kCompactThreshold = 64;

  SimTime now_ = kSimTimeZero;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  uint64_t events_run_ = 0;
  util::ObjectPool<Entry> entry_pool_;     // Owns every queued Entry.
  std::priority_queue<Entry*, std::vector<Entry*>, EntryLater> queue_;
  std::unordered_set<EventId> pending_;    // Scheduled, not yet run/cancelled.
  std::unordered_set<EventId> cancelled_;  // Tombstones awaiting pop.
};

}  // namespace ipda::sim

#endif  // IPDA_SIM_SCHEDULER_H_
