#include "sim/simulator.h"

namespace ipda::sim {

Simulator::Simulator(uint64_t seed) : seed_(seed), root_rng_(seed) {}

util::Rng Simulator::ForkRng(std::string_view label) const {
  return root_rng_.Fork(label);
}

util::Rng Simulator::ForkRng(std::string_view label, uint64_t index) const {
  return root_rng_.Fork(label).Fork(index);
}

void Simulator::CollectKernelMetrics() {
  metrics_.GetCounter("sim.events_run")->Set(scheduler_.events_run());
  metrics_.GetCounter("sim.sched_stale_skips")->Set(scheduler_.stale_skips());
  metrics_.GetCounter("sim.sched_prunes")->Set(scheduler_.prune_passes());
  metrics_.GetGauge("sim.sched_cancelled_pending")
      ->Set(static_cast<double>(scheduler_.cancelled_pending()));

  const Scheduler::AllocStats alloc = scheduler_.alloc_stats();
  metrics_.GetGauge("sim.sched_heap_capacity")
      ->Set(static_cast<double>(alloc.heap_capacity));
  metrics_.GetGauge("sim.sched_slot_capacity")
      ->Set(static_cast<double>(alloc.slot_capacity));
  metrics_.GetGauge("sim.sched_overflow_slabs")
      ->Set(static_cast<double>(alloc.overflow_slabs));
  // Process-global (thread-local in practice: one run per worker thread).
  metrics_.GetCounter("sim.callback_heap_fallbacks")
      ->Set(alloc.callback_heap_fallbacks);

  metrics_.GetCounter("pool.arena_allocs")->Set(arena_.alloc_count());
  metrics_.GetGauge("pool.arena_high_water")
      ->Set(static_cast<double>(arena_.high_water()));
  metrics_.GetGauge("pool.arena_slabs")
      ->Set(static_cast<double>(arena_.slab_count()));
  metrics_.GetGauge("pool.arena_live_blocks")
      ->Set(static_cast<double>(arena_.live_blocks()));
}

}  // namespace ipda::sim
