#include "sim/simulator.h"

namespace ipda::sim {

Simulator::Simulator(uint64_t seed) : seed_(seed), root_rng_(seed) {}

util::Rng Simulator::ForkRng(std::string_view label) const {
  return root_rng_.Fork(label);
}

util::Rng Simulator::ForkRng(std::string_view label, uint64_t index) const {
  return root_rng_.Fork(label).Fork(index);
}

}  // namespace ipda::sim
