#include "crypto/xtea.h"

namespace ipda::crypto {
namespace {

constexpr uint32_t kDelta = 0x9e3779b9;

inline uint32_t Mix(uint32_t v) { return ((v << 4) ^ (v >> 5)) + v; }

}  // namespace

XteaSchedule::XteaSchedule(const Key128& key) {
  uint32_t sum = 0;
  for (int i = 0; i < kXteaRounds; ++i) {
    k[2 * i] = sum + key.words[sum & 3];
    sum += kDelta;
    k[2 * i + 1] = sum + key.words[(sum >> 11) & 3];
  }
}

uint64_t XteaEncryptBlock(const Key128& key, uint64_t block) {
  uint32_t v0 = static_cast<uint32_t>(block);
  uint32_t v1 = static_cast<uint32_t>(block >> 32);
  uint32_t sum = 0;
  for (int i = 0; i < kXteaRounds; ++i) {
    v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key.words[sum & 3]);
    sum += kDelta;
    v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^
          (sum + key.words[(sum >> 11) & 3]);
  }
  return static_cast<uint64_t>(v0) | (static_cast<uint64_t>(v1) << 32);
}

uint64_t XteaEncryptBlock(const XteaSchedule& sched, uint64_t block) {
  uint32_t v0 = static_cast<uint32_t>(block);
  uint32_t v1 = static_cast<uint32_t>(block >> 32);
  for (int i = 0; i < kXteaRounds; ++i) {
    v0 += Mix(v1) ^ sched.k[2 * i];
    v1 += Mix(v0) ^ sched.k[2 * i + 1];
  }
  return static_cast<uint64_t>(v0) | (static_cast<uint64_t>(v1) << 32);
}

uint64_t XteaDecryptBlock(const Key128& key, uint64_t block) {
  uint32_t v0 = static_cast<uint32_t>(block);
  uint32_t v1 = static_cast<uint32_t>(block >> 32);
  uint32_t sum = kDelta * static_cast<uint32_t>(kXteaRounds);
  for (int i = 0; i < kXteaRounds; ++i) {
    v1 -= (((v0 << 4) ^ (v0 >> 5)) + v0) ^
          (sum + key.words[(sum >> 11) & 3]);
    sum -= kDelta;
    v0 -= (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key.words[sum & 3]);
  }
  return static_cast<uint64_t>(v0) | (static_cast<uint64_t>(v1) << 32);
}

uint64_t XteaDecryptBlock(const XteaSchedule& sched, uint64_t block) {
  uint32_t v0 = static_cast<uint32_t>(block);
  uint32_t v1 = static_cast<uint32_t>(block >> 32);
  for (int i = kXteaRounds; i-- > 0;) {
    v1 -= Mix(v0) ^ sched.k[2 * i + 1];
    v0 -= Mix(v1) ^ sched.k[2 * i];
  }
  return static_cast<uint64_t>(v0) | (static_cast<uint64_t>(v1) << 32);
}

void XteaEncryptBlocks(const uint32_t k[2 * kXteaRounds], const uint64_t* in,
                       uint64_t* out, size_t n) {
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    uint32_t a0 = static_cast<uint32_t>(in[i]);
    uint32_t a1 = static_cast<uint32_t>(in[i] >> 32);
    uint32_t b0 = static_cast<uint32_t>(in[i + 1]);
    uint32_t b1 = static_cast<uint32_t>(in[i + 1] >> 32);
    uint32_t c0 = static_cast<uint32_t>(in[i + 2]);
    uint32_t c1 = static_cast<uint32_t>(in[i + 2] >> 32);
    uint32_t d0 = static_cast<uint32_t>(in[i + 3]);
    uint32_t d1 = static_cast<uint32_t>(in[i + 3] >> 32);
    for (int r = 0; r < kXteaRounds; ++r) {
      const uint32_t k0 = k[2 * r];
      const uint32_t k1 = k[2 * r + 1];
      a0 += Mix(a1) ^ k0;
      b0 += Mix(b1) ^ k0;
      c0 += Mix(c1) ^ k0;
      d0 += Mix(d1) ^ k0;
      a1 += Mix(a0) ^ k1;
      b1 += Mix(b0) ^ k1;
      c1 += Mix(c0) ^ k1;
      d1 += Mix(d0) ^ k1;
    }
    out[i] = static_cast<uint64_t>(a0) | (static_cast<uint64_t>(a1) << 32);
    out[i + 1] = static_cast<uint64_t>(b0) | (static_cast<uint64_t>(b1) << 32);
    out[i + 2] = static_cast<uint64_t>(c0) | (static_cast<uint64_t>(c1) << 32);
    out[i + 3] = static_cast<uint64_t>(d0) | (static_cast<uint64_t>(d1) << 32);
  }
  for (; i < n; ++i) {
    uint32_t v0 = static_cast<uint32_t>(in[i]);
    uint32_t v1 = static_cast<uint32_t>(in[i] >> 32);
    for (int r = 0; r < kXteaRounds; ++r) {
      v0 += Mix(v1) ^ k[2 * r];
      v1 += Mix(v0) ^ k[2 * r + 1];
    }
    out[i] = static_cast<uint64_t>(v0) | (static_cast<uint64_t>(v1) << 32);
  }
}

}  // namespace ipda::crypto
