#include "crypto/xtea.h"

namespace ipda::crypto {
namespace {

constexpr uint32_t kDelta = 0x9e3779b9;

}  // namespace

uint64_t XteaEncryptBlock(const Key128& key, uint64_t block) {
  uint32_t v0 = static_cast<uint32_t>(block);
  uint32_t v1 = static_cast<uint32_t>(block >> 32);
  uint32_t sum = 0;
  for (int i = 0; i < kXteaRounds; ++i) {
    v0 += (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key.words[sum & 3]);
    sum += kDelta;
    v1 += (((v0 << 4) ^ (v0 >> 5)) + v0) ^
          (sum + key.words[(sum >> 11) & 3]);
  }
  return static_cast<uint64_t>(v0) | (static_cast<uint64_t>(v1) << 32);
}

uint64_t XteaDecryptBlock(const Key128& key, uint64_t block) {
  uint32_t v0 = static_cast<uint32_t>(block);
  uint32_t v1 = static_cast<uint32_t>(block >> 32);
  uint32_t sum = kDelta * static_cast<uint32_t>(kXteaRounds);
  for (int i = 0; i < kXteaRounds; ++i) {
    v1 -= (((v0 << 4) ^ (v0 >> 5)) + v0) ^
          (sum + key.words[(sum >> 11) & 3]);
    sum -= kDelta;
    v0 -= (((v1 << 4) ^ (v1 >> 5)) + v1) ^ (sum + key.words[sum & 3]);
  }
  return static_cast<uint64_t>(v0) | (static_cast<uint64_t>(v1) << 32);
}

}  // namespace ipda::crypto
