#include "crypto/ctr.h"

#include <algorithm>
#include <bit>
#include <cstring>

#include "crypto/stats.h"

namespace ipda::crypto {

void CtrCrypt(const Key128& key, uint64_t nonce, util::Bytes& data) {
  ThreadCryptoStats().ctr_blocks_scalar += (data.size() + 7) / 8;
  uint64_t counter = 0;
  size_t offset = 0;
  while (offset < data.size()) {
    // Standard CTR: block input is nonce + block index. Within one message
    // inputs are distinct; across messages callers must supply well-mixed
    // nonces (LinkCrypto derives them from per-link send counters).
    const uint64_t keystream = XteaEncryptBlock(key, nonce + counter);
    for (int i = 0; i < 8 && offset < data.size(); ++i, ++offset) {
      data[offset] ^= static_cast<uint8_t>(keystream >> (8 * i));
    }
    ++counter;
  }
}

void CtrKeystream(const XteaSchedule& sched, uint64_t nonce,
                  uint64_t counter0, uint64_t* out, size_t blocks) {
  // Counter inputs are consecutive, so build them in place and encrypt
  // four lanes at a time.
  for (size_t i = 0; i < blocks; ++i) out[i] = nonce + counter0 + i;
  XteaEncryptBlocks(sched, out, out, blocks);
}

void CtrCrypt(const XteaSchedule& sched, uint64_t nonce, uint8_t* data,
              size_t size) {
  ThreadCryptoStats().ctr_blocks_batched += (size + 7) / 8;
  // Chunked so the keystream stays in L1 whatever the payload size.
  constexpr size_t kChunkBlocks = 32;
  uint64_t ks[kChunkBlocks];
  uint64_t counter = 0;
  size_t offset = 0;
  while (offset < size) {
    const size_t blocks =
        std::min(kChunkBlocks, (size - offset + 7) / 8);
    CtrKeystream(sched, nonce, counter, ks, blocks);
    counter += blocks;
    size_t b = 0;
    if constexpr (std::endian::native == std::endian::little) {
      // Word XOR equals the byte loop on little-endian hosts: byte i of a
      // loaded u64 is exactly (ks >> 8i).
      for (; b < blocks && offset + 8 <= size; ++b, offset += 8) {
        uint64_t w;
        std::memcpy(&w, data + offset, 8);
        w ^= ks[b];
        std::memcpy(data + offset, &w, 8);
      }
    }
    for (; b < blocks && offset < size; ++b) {
      for (int i = 0; i < 8 && offset < size; ++i, ++offset) {
        data[offset] ^= static_cast<uint8_t>(ks[b] >> (8 * i));
      }
    }
  }
}

void CtrCrypt(const XteaSchedule& sched, uint64_t nonce, util::Bytes& data) {
  CtrCrypt(sched, nonce, data.data(), data.size());
}

util::Bytes CtrCryptCopy(const Key128& key, uint64_t nonce,
                         const util::Bytes& data) {
  util::Bytes out = data;
  CtrCrypt(key, nonce, out);
  return out;
}

}  // namespace ipda::crypto
