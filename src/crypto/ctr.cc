#include "crypto/ctr.h"

#include "crypto/xtea.h"

namespace ipda::crypto {

void CtrCrypt(const Key128& key, uint64_t nonce, util::Bytes& data) {
  uint64_t counter = 0;
  size_t offset = 0;
  while (offset < data.size()) {
    // Standard CTR: block input is nonce + block index. Within one message
    // inputs are distinct; across messages callers must supply well-mixed
    // nonces (LinkCrypto derives them from per-link send counters).
    const uint64_t keystream = XteaEncryptBlock(key, nonce + counter);
    for (int i = 0; i < 8 && offset < data.size(); ++i, ++offset) {
      data[offset] ^= static_cast<uint8_t>(keystream >> (8 * i));
    }
    ++counter;
  }
}

util::Bytes CtrCryptCopy(const Key128& key, uint64_t nonce,
                         const util::Bytes& data) {
  util::Bytes out = data;
  CtrCrypt(key, nonce, out);
  return out;
}

}  // namespace ipda::crypto
